// Ablations on the design choices DESIGN.md calls out: which resource
// actually dominates each substrate's latency?
//
//  A1  Charlotte ring speed: the paper's point that Charlotte is
//      *kernel-software-bound* — "Charlotte programmers made a
//      deliberate decision to sacrifice efficiency" — predicts that a
//      10x faster wire barely moves the null-RPC number.
//  A2  Charlotte kernel cost: scaling the kernel software costs moves
//      the number almost linearly (same prediction, other direction).
//  A3  SODA MTU: fragmentation sets SODA's large-message slope; growing
//      the MTU shifts the SODA/Charlotte crossover outward — the
//      break-even position is a *wire* property, not a protocol one.
#include "harness.hpp"

#include "common/assert.hpp"

namespace {

using namespace bench;

double charlotte_rpc_ms(std::size_t bytes, net::TokenRingParams ring,
                        charlotte::Costs costs) {
  sim::Engine engine;
  charlotte::Cluster cluster(engine, 4, ring, costs);
  lynx::Process server(engine, "server",
                       lynx::make_charlotte_backend(cluster, net::NodeId(0)),
                       lynx::vax_runtime_costs());
  lynx::Process client(engine, "client",
                       lynx::make_charlotte_backend(cluster, net::NodeId(1)),
                       lynx::vax_runtime_costs());
  server.start();
  client.start();
  lynx::LinkHandle se, ce;
  engine.spawn("wire", [](lynx::Process* s, lynx::Process* c,
                          lynx::LinkHandle* a,
                          lynx::LinkHandle* b) -> sim::Task<> {
    auto [x, y] = co_await lynx::CharlotteBackend::connect(*s, *c);
    *a = x;
    *b = y;
  }(&server, &client, &se, &ce));
  engine.run();
  sim::Time t0 = 0, t1 = 0;
  server.spawn_thread("srv", [&](lynx::ThreadCtx& ctx) {
    return echo_server(ctx, se, 7);
  });
  client.spawn_thread("cli", [&](lynx::ThreadCtx& ctx) {
    return echo_client(ctx, ce, 6, bytes, &t0, &t1, &engine);
  });
  engine.run();
  RELYNX_ASSERT(engine.process_failures().empty());
  return sim::to_msec(t1 - t0) / 6;
}

double soda_rpc_ms(std::size_t bytes, std::size_t mtu) {
  sim::Engine engine;
  lynx::SodaDirectory directory;
  net::CsmaBusParams bus;
  bus.broadcast_drop_prob = 0.0;
  soda::Costs costs;
  costs.mtu_bytes = mtu;
  soda::Network network(engine, 4, sim::Rng(3), bus, costs);
  lynx::Process server(engine, "server",
                       lynx::make_soda_backend(network, directory,
                                               net::NodeId(0)),
                       lynx::pdp11_runtime_costs());
  lynx::Process client(engine, "client",
                       lynx::make_soda_backend(network, directory,
                                               net::NodeId(1)),
                       lynx::pdp11_runtime_costs());
  server.start();
  client.start();
  lynx::LinkHandle se, ce;
  engine.spawn("wire", [](lynx::Process* s, lynx::Process* c,
                          lynx::LinkHandle* a,
                          lynx::LinkHandle* b) -> sim::Task<> {
    auto [x, y] = co_await lynx::SodaBackend::connect(*s, *c);
    *a = x;
    *b = y;
  }(&server, &client, &se, &ce));
  engine.run();
  sim::Time t0 = 0, t1 = 0;
  server.spawn_thread("srv", [&](lynx::ThreadCtx& ctx) {
    return echo_server(ctx, se, 7);
  });
  client.spawn_thread("cli", [&](lynx::ThreadCtx& ctx) {
    return echo_client(ctx, ce, 6, bytes, &t0, &t1, &engine);
  });
  engine.run();
  RELYNX_ASSERT(engine.process_failures().empty());
  return sim::to_msec(t1 - t0) / 6;
}

charlotte::Costs scaled_charlotte(double s) {
  charlotte::Costs c;
  c.call_overhead =
      static_cast<sim::Duration>(static_cast<double>(c.call_overhead) * s);
  c.frame_processing = static_cast<sim::Duration>(
      static_cast<double>(c.frame_processing) * s);
  return c;
}

void report() {
  table_header("A1: Charlotte null RPC vs ring speed (kernel-bound?)");
  std::printf("%-22s %14s\n", "ring speed", "null RPC ms");
  double base = 0;
  for (std::int64_t mbit : {10, 100, 1000}) {
    net::TokenRingParams ring;
    ring.bits_per_second = mbit * 1'000'000;
    const double ms = charlotte_rpc_ms(0, ring, charlotte::Costs{});
    if (mbit == 10) base = ms;
    std::printf("%3lld Mb/s %28.2f\n", static_cast<long long>(mbit), ms);
  }
  {
    net::TokenRingParams ring;
    ring.bits_per_second = 1'000'000'000;
    const double fast = charlotte_rpc_ms(0, ring, charlotte::Costs{});
    print_note("a 100x faster wire changes the null RPC by " +
               std::to_string(100.0 * (base - fast) / base) +
               "% - the kernel software dominates (paper §3.3/§6).");
    RELYNX_ASSERT((base - fast) / base < 0.10);
  }

  table_header("A2: Charlotte null RPC vs kernel software cost");
  std::printf("%-22s %14s\n", "kernel cost scale", "null RPC ms");
  double slow = 0, quick = 0;
  for (double s : {1.0, 0.5, 0.25}) {
    const double ms =
        charlotte_rpc_ms(0, net::TokenRingParams{}, scaled_charlotte(s));
    if (s == 1.0) slow = ms;
    if (s == 0.25) quick = ms;
    std::printf("%.2fx %30.2f\n", s, ms);
  }
  print_note("scaling the kernel software scales the latency almost");
  print_note("linearly - 'simple primitives are best' is also 'cheap");
  print_note("primitives are best'.");
  RELYNX_ASSERT(quick < 0.45 * slow);

  table_header("A3: SODA/Charlotte crossover vs SODA MTU");
  std::printf("%-10s %16s %16s %14s\n", "mtu", "soda @1KB ms",
              "soda @2KB ms", "crossover B");
  const double ch1k = charlotte_rpc_ms(1024, net::TokenRingParams{},
                                       charlotte::Costs{});
  const double ch2k = charlotte_rpc_ms(2048, net::TokenRingParams{},
                                       charlotte::Costs{});
  for (std::size_t mtu : {128u, 256u, 1024u}) {
    const double s1 = soda_rpc_ms(1024, mtu);
    const double s2 = soda_rpc_ms(2048, mtu);
    // linear interpolation of the crossover between 1KB and 2KB samples
    const double d1 = s1 - ch1k;
    const double d2 = s2 - ch2k;
    double cross = std::numeric_limits<double>::quiet_NaN();
    if (d1 < 0 && d2 > 0) {
      cross = 1024.0 + 1024.0 * (-d1) / (d2 - d1);
    } else if (d1 < 0 && d2 < 0) {
      cross = 2048.0;  // beyond the window
    } else if (d1 > 0) {
      cross = 1024.0;  // before the window
    }
    std::printf("%-10zu %16.2f %16.2f %14.0f\n", mtu, s1, s2, cross);
  }
  print_note("smaller fragments = more per-frame overhead = earlier");
  print_note("crossover; the break-even is a property of SODA's slow");
  print_note("wire and framing, exactly the paper's footnote 2.");
}

void BM_AblationCharlotteFastRing(benchmark::State& state) {
  net::TokenRingParams ring;
  ring.bits_per_second = 1'000'000'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(charlotte_rpc_ms(0, ring, charlotte::Costs{}));
  }
}
BENCHMARK(BM_AblationCharlotteFastRing)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::init(&argc, argv, "ablations");
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
