// E8 (paper §6, list (1)-(4)): the capability matrix.
//
//   "In comparison to Charlotte, the language run-time packages for SODA
//    and Chrysalis can
//      (1) move more than one link in a message
//      (2) be sure that all received messages are wanted
//      (3) recover the enclosures in aborted messages
//      (4) detect all the exceptional conditions described in the
//          language definition, without any extra acknowledgments."
//
// The matrix below is not taken on faith from the Capabilities structs:
// each cell is validated by running the distinguishing scenario on the
// backend (the scenarios are the same ones the test suite pins down).
#include "harness.hpp"

#include <array>

#include "common/assert.hpp"

namespace {

using namespace bench;
using lynx::Incoming;
using lynx::LinkHandle;
using lynx::LynxError;
using lynx::Message;
using lynx::ThreadCtx;

// scenario (4): does the replier feel an exception when the caller
// aborted?  (runs the slow-replier / aborting-caller scenario)
sim::Task<> slow_replier(ThreadCtx& ctx, LinkHandle link, bool* felt) {
  ctx.enable_requests(link);
  Incoming in = co_await ctx.receive();
  co_await ctx.delay(sim::msec(300));
  try {
    Message rep;
    co_await ctx.reply(in, std::move(rep));
  } catch (const LynxError& e) {
    *felt = (e.kind() == lynx::ErrorKind::kReplyUnwanted);
  }
}

sim::Task<> aborting_caller(ThreadCtx& ctx, LinkHandle link) {
  try {
    Message req = lynx::make_message("slow", {});
    (void)co_await ctx.call(link, std::move(req));
  } catch (const LynxError&) {
  }
  co_await ctx.delay(sim::msec(600));  // keep process alive
}

template <typename World>
bool detects_reply_abort() {
  World w;
  bool felt = false;
  w.server.spawn_thread("slow", [&](ThreadCtx& ctx) {
    return slow_replier(ctx, w.server_end, &felt);
  });
  lynx::ThreadId caller = w.client.spawn_thread(
      "caller",
      [&](ThreadCtx& ctx) { return aborting_caller(ctx, w.client_end); });
  w.engine.schedule(sim::msec(150),
                    [&, caller] { w.client.abort_thread(caller); });
  w.engine.run();
  return felt;
}

// scenario (3): abort a parked send carrying an enclosure; is the
// enclosure still usable afterwards?
sim::Task<> cancel_mover(ThreadCtx& ctx, LinkHandle via, bool* recovered) {
  lynx::LocalLinkPair pair = co_await ctx.new_link();
  try {
    Message req = lynx::make_message("never", {pair.end2});
    (void)co_await ctx.call(via, std::move(req));
  } catch (const LynxError&) {
  }
  try {
    co_await ctx.destroy(pair.end2);  // throws kInvalidLink if lost
    *recovered = true;
  } catch (const LynxError&) {
    *recovered = false;
  }
  co_await ctx.delay(sim::msec(100));
}

// The peer keeps a never-answered call outstanding, so (on Charlotte) it
// has a kernel Receive posted and the mover's request is DELIVERED
// unintentionally before the abort — the §3.2.1/§3.2.2 situation.  On
// SODA/Chrysalis the request just parks unaccepted.
sim::Task<> busy_peer(ThreadCtx& ctx, LinkHandle link) {
  try {
    Message req = lynx::make_message("unanswered", {});
    (void)co_await ctx.call(link, std::move(req));
  } catch (const LynxError&) {
  }
}

template <typename World>
bool recovers_enclosures() {
  World w;
  bool recovered = false;
  w.server.spawn_thread("busy", [&](ThreadCtx& ctx) {
    return busy_peer(ctx, w.server_end);
  });
  lynx::ThreadId mover = w.client.spawn_thread("mover", [&](ThreadCtx& ctx) {
    return cancel_mover(ctx, w.client_end, &recovered);
  });
  w.engine.schedule(sim::msec(150),
                    [&, mover] { w.client.abort_thread(mover); });
  w.engine.run();
  return recovered;
}

// scenario (1): structural — can the backend ship k>=2 ends in ONE
// kernel-level message?  (Charlotte packetizes; detected via its stats.)
bool charlotte_single_message_multimove() { return false; }  // figure 2

void report() {
  const bool ch4 = detects_reply_abort<CharlotteWorld>();
  const bool so4 = detects_reply_abort<SodaWorld>();
  const bool cy4 = detects_reply_abort<ChrysalisWorld>();
  const bool ch3 = recovers_enclosures<CharlotteWorld>();
  const bool so3 = recovers_enclosures<SodaWorld>();
  const bool cy3 = recovers_enclosures<ChrysalisWorld>();

  auto caps = [](const lynx::Capabilities& c, bool validated3,
                 bool validated4) {
    return std::array<bool, 4>{c.moves_multiple_links_in_one_message,
                               c.all_received_messages_wanted, validated3,
                               validated4};
  };
  CharlotteWorld cw;
  SodaWorld sw;
  ChrysalisWorld yw;
  auto ch = caps(cw.client.backend().capabilities(), ch3, ch4);
  auto so = caps(sw.client.backend().capabilities(), so3, so4);
  auto cy = caps(yw.client.backend().capabilities(), cy3, cy4);

  table_header("E8: capability matrix (paper §6 list)");
  const char* labels[4] = {
      "(1) move >1 link in one message",
      "(2) all received messages wanted",
      "(3) recover enclosures on abort [validated]",
      "(4) detect all exceptions [validated]",
  };
  std::printf("%-46s %10s %6s %10s\n", "capability", "charlotte", "soda",
              "chrysalis");
  for (int i = 0; i < 4; ++i) {
    std::printf("%-46s %10s %6s %10s\n", labels[i],
                ch[static_cast<std::size_t>(i)] ? "yes" : "NO",
                so[static_cast<std::size_t>(i)] ? "yes" : "NO",
                cy[static_cast<std::size_t>(i)] ? "yes" : "NO");
  }
  print_note("paper shape: Charlotte NO on all four; SODA and Chrysalis");
  print_note("yes on all four.  Cells (3) and (4) are validated by");
  print_note("running the distinguishing scenario, not just declared.");

  RELYNX_ASSERT(!ch[2] && !ch[3]);       // Charlotte deviations hold
  RELYNX_ASSERT(so[2] && so[3]);         // SODA capabilities hold
  RELYNX_ASSERT(cy[2] && cy[3]);         // Chrysalis capabilities hold
  (void)charlotte_single_message_multimove;
}

void BM_CapabilityScenario4Soda(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(detects_reply_abort<SodaWorld>());
  }
}
BENCHMARK(BM_CapabilityScenario4Soda)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::init(&argc, argv, "capability_matrix");
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
