// E12: capacity — throughput–latency curves and saturation search.
//
// The paper ranks the kernels by single-RPC latency; this bench asks
// the follow-up question a server workload cares about: how much
// offered load does each kernel *sustain*?  An open-loop Poisson
// generator (coordinated-omission-correct; src/load/) sweeps a shared
// offered-rate grid on every substrate, producing one throughput and
// one latency-tail series per kernel, and load::find_capacity bisects
// each kernel's knee.  A payload sweep under overload then reruns E5's
// SODA-vs-Charlotte break-even in throughput terms.
//
// Flags (bench::init): --json-out, --trace-out, --seed, plus --smoke
// for the CI-sized version (short windows, 3 rates) and
// --baseline=PATH / --baseline-soda=PATH / --baseline-chrysalis=PATH
// to compare each kernel's measured peak against a checked-in baseline
// (bench/baselines/): exits nonzero on a >10% regression, so CI
// catches an ack-protocol slowdown — on any substrate — at the PR.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "charlotte/types.hpp"
#include "harness.hpp"
#include "load/load.hpp"
#include "lynx/chrysalis_backend.hpp"
#include "soda/types.hpp"

namespace {

using namespace bench;

// p99 bound for the knee report: late enough that every kernel's
// uncontended tail (Charlotte's ~57 ms included) sits far below it.
constexpr double kKneeBoundMs = 250.0;

// --formation=on arms RPC formation (src/form/, DESIGN.md §14) in every
// scenario this bench runs; the scenario name gains a "+form" suffix so
// curve JSON from the two modes never collides, and the baseline gate
// (calibrated formation-off) refuses to gate a formation run.
bool g_formation = false;
constexpr sim::Duration kFormDelay = sim::msec(2);

load::Scenario base_scenario(bool smoke) {
  load::Scenario sc;
  sc.name = g_formation ? "fan-in-4x1+form" : "fan-in-4x1";
  sc.clients = 4;
  sc.servers = 1;
  sc.arrival = load::Arrival::kOpenPoisson;
  sc.mix = {{64, 64, 1.0}};
  sc.seed = bench::seed();
  if (g_formation) sc.form_delay = kFormDelay;
  if (smoke) {
    sc.warmup = sim::msec(250);
    sc.measure = sim::sec(1);
    sc.drain = sim::msec(500);
  } else {
    sc.warmup = sim::sec(1);
    sc.measure = sim::sec(4);
    sc.drain = sim::sec(2);
  }
  return sc;
}

void emit_point(const char* kind, const load::Report& r, double rate) {
  json()
      .field("kind", kind)
      .field("backend", r.backend)
      .field("scenario", r.scenario)
      .field("offered_rate", rate)
      .field("throughput", r.throughput)
      .field("p50_ms", r.p50_ms)
      .field("p99_ms", r.p99_ms)
      .field("samples", r.samples)
      .field("dropped", r.dropped)
      .field("backlog_end", r.backlog_end)
      .field("wire_ops", r.wire_ops)
      .field("frames_per_op", r.frames_per_op)
      .emit();
}

// ---- throughput–latency curves --------------------------------------------

void curves_report(bool smoke, sweep::ThreadPool& pool) {
  const std::vector<double> rates =
      smoke ? std::vector<double>{8, 32, 128}
            : std::vector<double>{4, 8, 16, 32, 64, 128, 256, 512};
  table_header("E12: throughput-latency curves (open-loop Poisson, 64 B)");
  std::printf("%-10s %-10s %12s %12s %12s %10s\n", "backend", "rate",
              "delivered/s", "p50 ms", "p99 ms", "backlog");

  sim::Series bound("p99-bound");
  for (double r : rates) bound.add(r, kKneeBoundMs);

  for (load::Substrate sub : load::all_substrates()) {
    const auto reports = sweep::map<double, load::Report>(
        rates,
        [sub, smoke](const double& rate) {
          load::Scenario sc = base_scenario(smoke);
          sc.offered_rate = rate;
          return load::run_scenario(sub, sc);
        },
        pool);
    sim::Series p99(std::string(to_string(sub)) + "-p99");
    for (std::size_t i = 0; i < rates.size(); ++i) {
      const auto& r = reports[i];
      std::printf("%-10s %-10.0f %12.1f %12.2f %12.2f %10ld\n",
                  r.backend.c_str(), rates[i], r.throughput, r.p50_ms,
                  r.p99_ms, static_cast<long>(r.backlog_end));
      emit_point("curve", r, rates[i]);
      p99.add(rates[i], r.p99_ms);
    }
    // Series::crossover_x against the flat bound: the offered rate at
    // which this kernel's tail blows through 250 ms.
    const double knee = p99.crossover_x(bound);
    if (std::isnan(knee)) {
      std::printf("%-10s knee: p99 stays under %.0f ms on this grid\n",
                  to_string(sub), kKneeBoundMs);
    } else {
      std::printf("%-10s knee: p99 crosses %.0f ms near %.1f req/s\n",
                  to_string(sub), kKneeBoundMs, knee);
      json()
          .field("kind", "knee")
          .field("backend", to_string(sub))
          .field("p99_bound_ms", kKneeBoundMs)
          .field("knee_rate", knee)
          .emit();
    }
  }
}

// ---- saturation search -----------------------------------------------------

// The protocol knobs each substrate ran with, recorded alongside every
// peak so a baseline JSON is self-describing: a reviewer diffing a
// refreshed baseline sees *which* knob moved with the number.  Values
// mirror what load::Fleet configures — default kernel cost structs plus
// the scenario's formation window.
void emit_capacity_knobs(load::Substrate sub, const load::Scenario& sc) {
  auto j = json();
  j.field("kind", "capacity_knobs").field("backend", to_string(sub));
  j.field("form_delay_ms", sim::to_msec(sc.form_delay));
  switch (sub) {
    case load::Substrate::kCharlotte: {
      const charlotte::Costs c;
      j.field("send_retransmit_timeout_ms",
              sim::to_msec(c.send_retransmit_timeout))
          .field("ack_coalesce_delay_ms", sim::to_msec(c.ack_coalesce_delay))
          .field("adaptive_rto", c.adaptive_rto ? 1.0 : 0.0)
          .field("rto_min_ms", sim::to_msec(c.rto_min))
          .field("rto_max_ms", sim::to_msec(c.rto_max));
      break;
    }
    case load::Substrate::kSoda: {
      const soda::Costs c;
      j.field("ack_timeout_ms", sim::to_msec(c.ack_timeout))
          .field("cumulative_acks", c.cumulative_acks ? 1.0 : 0.0)
          .field("ack_coalesce_delay_ms", sim::to_msec(c.ack_coalesce_delay))
          .field("adaptive_rto", c.adaptive_rto ? 1.0 : 0.0)
          .field("rto_min_ms", sim::to_msec(c.rto_min))
          .field("rto_max_ms", sim::to_msec(c.rto_max));
      break;
    }
    case load::Substrate::kChrysalis: {
      const lynx::ChrysalisBackendParams p;
      j.field("batched_drain", p.batched_drain ? 1.0 : 0.0)
          .field("drain_max_notices", static_cast<double>(p.drain_max_notices))
          .field("consumed_coalesce_delay_ms",
                 sim::to_msec(p.consumed_coalesce_delay));
      break;
    }
  }
  j.emit();
}

// Measured peak delivered/s per substrate, for the baseline gates.
struct CapacityPeaks {
  double throughput[3] = {0, 0, 0};
  [[nodiscard]] double of(load::Substrate sub) const {
    return throughput[static_cast<int>(sub)];
  }
};

CapacityPeaks capacity_report(bool smoke, sweep::ThreadPool& pool) {
  table_header("E12: peak sustainable throughput (load::find_capacity)");
  std::printf("%-10s %12s %12s %14s\n", "backend", "peak rate", "delivered/s",
              "p99 bound ms");
  double peaks[3] = {0, 0, 0};
  CapacityPeaks out;
  for (load::Substrate sub : load::all_substrates()) {
    load::CapacityParams p;
    p.rate_lo = smoke ? 8.0 : 4.0;
    p.refine_iters = smoke ? 2 : 5;
    p.pool = &pool;  // ladder probes fan out; the curve is bit-identical
    const load::CapacityResult cap =
        load::find_capacity(sub, base_scenario(smoke), p);
    peaks[static_cast<int>(sub)] = cap.peak_rate;
    out.throughput[static_cast<int>(sub)] = cap.peak_throughput;
    std::printf("%-10s %12.1f %12.1f %14.2f\n", to_string(sub), cap.peak_rate,
                cap.peak_throughput, cap.p99_bound_ms);
    json()
        .field("kind", "capacity")
        .field("backend", to_string(sub))
        .field("peak_rate", cap.peak_rate)
        .field("peak_throughput", cap.peak_throughput)
        .field("p99_bound_ms", cap.p99_bound_ms)
        .emit();
    emit_capacity_knobs(sub, base_scenario(smoke));
    for (const auto& pt : cap.curve) emit_point("probe", pt.report, pt.rate);
  }
  if (!g_formation) {
    // Formation shifts both kernels' knees (batching trades latency for
    // frames), so the paper-ordering invariant is only asserted on the
    // frame-per-message wire the paper describes.
    RELYNX_ASSERT_MSG(
        peaks[static_cast<int>(load::Substrate::kSoda)] >
            peaks[static_cast<int>(load::Substrate::kCharlotte)],
        "SODA must out-sustain Charlotte (paper latency ordering)");
    print_note("every peak is finite, and SODA sustains more than Charlotte —");
    print_note("the paper's latency ordering carries over to capacity.");
  }
  return out;
}

// ---- E16: formation ablation at pipeline depth 8 ---------------------------

// The formation layer's target workload: one client keeps 8 concurrent
// calls in flight on independent channels to one server (closed loop,
// zero think — RPC pipelining at depth 8), so both directions of the
// single client<->server pair carry two co-destined small frames per
// op.  The ablation runs every substrate with formation off and on and
// reports the frames-per-delivered-message ratio — the ISSUE's
// acceptance bar is >= 2x fewer wire frames per op at this depth.
//
// The formation window is matched per substrate to the kernel's frame
// service timescale; a window far below it never sees a second
// co-destined frame, and a window far above it starves the transport
// (SODA retransmits, Charlotte idles the token):
//   * Charlotte: 20 ms ~ one token rotation of the loaded ring — frames
//     queue behind the token anyway, so forming is nearly free and
//     batches span ops (measured ~2.9x).
//   * SODA: 5 ms, under the transport RTO (12 ms) so held frames never
//     masquerade as loss.  Each op's accept+reply (and reply-accept +
//     next request) pair per direction: exactly 2x.
//   * Chrysalis: 10 ms ~ the pump's service time for a full window of
//     8 ops.  Consume-ack + reply notices pair per direction: 2x.
sim::Duration form_delay_for(load::Substrate sub) {
  switch (sub) {
    case load::Substrate::kCharlotte: return sim::msec(20);
    case load::Substrate::kSoda: return sim::msec(5);
    case load::Substrate::kChrysalis: return sim::msec(10);
  }
  return kFormDelay;
}

load::Scenario depth8_scenario(bool smoke, load::Substrate sub,
                               bool formation) {
  load::Scenario sc = base_scenario(smoke);
  sc.name = formation ? "depth8+form" : "depth8";
  sc.clients = 1;
  sc.servers = 1;
  sc.channels_per_client = 8;
  sc.arrival = load::Arrival::kClosed;
  sc.think = 0;
  sc.form_delay = formation ? form_delay_for(sub) : sim::Duration(0);
  return sc;
}

void formation_report(bool smoke, sweep::ThreadPool& pool) {
  table_header("E16: RPC formation on/off (closed loop, pipeline depth 8)");
  std::printf("%-10s %-6s %12s %10s %10s %12s %10s\n", "backend", "form",
              "delivered/s", "p50 ms", "p99 ms", "frames/op", "ratio");
  const std::vector<int> modes = {0, 1};
  for (load::Substrate sub : load::all_substrates()) {
    const auto reports = sweep::map<int, load::Report>(
        modes,
        [sub, smoke](const int& on) {
          return load::run_scenario(sub, depth8_scenario(smoke, sub, on != 0));
        },
        pool);
    const load::Report& off = reports[0];
    const load::Report& on = reports[1];
    const double ratio =
        on.frames_per_op > 0 ? off.frames_per_op / on.frames_per_op : 0.0;
    for (const int mode : modes) {
      const load::Report& r = reports[static_cast<std::size_t>(mode)];
      char ratio_col[16] = "-";
      if (mode != 0) std::snprintf(ratio_col, sizeof ratio_col, "%.2fx", ratio);
      std::printf("%-10s %-6s %12.1f %10.2f %10.2f %12.3f %10s\n",
                  r.backend.c_str(), mode != 0 ? "on" : "off", r.throughput,
                  r.p50_ms, r.p99_ms, r.frames_per_op, ratio_col);
      emit_point(mode != 0 ? "formation-on" : "formation-off", r, 0.0);
    }
    json()
        .field("kind", "formation_ablation")
        .field("backend", off.backend)
        .field("form_delay_ms", sim::to_msec(form_delay_for(sub)))
        .field("frames_per_op_off", off.frames_per_op)
        .field("frames_per_op_on", on.frames_per_op)
        .field("frame_ratio", ratio)
        .field("throughput_off", off.throughput)
        .field("throughput_on", on.throughput)
        .emit();
  }
  print_note("frames/op counts wire frames (Charlotte/SODA medium frames,");
  print_note("Chrysalis dual-queue enqueue calls) per delivered reply; the");
  print_note("ratio column is the off/on frame saving from batching.");
}

// ---- baseline gate ---------------------------------------------------------

// Reads one numeric field out of a flat JSON object, the same
// hand-rolled idiom as the explorer's repro-token parsing: find the
// quoted key, skip the colon, strtod the value.  Returns NaN if absent.
double json_number_field(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return std::nan("");
  std::size_t p = text.find(':', at + needle.size());
  if (p == std::string::npos) return std::nan("");
  return std::strtod(text.c_str() + p + 1, nullptr);
}

// Reads one string field out of the same flat JSON object.  Returns ""
// if the key is absent or not a quoted string.
std::string json_string_field(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return "";
  std::size_t p = text.find(':', at + needle.size());
  if (p == std::string::npos) return "";
  p = text.find('"', p + 1);
  if (p == std::string::npos) return "";
  const std::size_t end = text.find('"', p + 1);
  if (end == std::string::npos) return "";
  return text.substr(p + 1, end - p - 1);
}

// Compares one substrate's measured peak against its checked-in
// baseline.  Returns false (CI failure) on a >10% throughput
// regression.  Better peaks pass with a note: refreshing the baseline
// file is a deliberate, reviewed act, not something a lucky run does
// implicitly.  Pass or fail, the verdict line names the backend, the
// scenario, the metric, and the signed delta, so a red CI log says
// *what* regressed without opening JSON.  The file's own "backend"
// field must name the substrate being gated — handing the SODA
// baseline to the Charlotte gate is a config bug, not a pass.
bool baseline_gate(const std::string& path, const char* backend,
                   double measured) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "baseline gate (%s): cannot read %s\n", backend,
                 path.c_str());
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  const std::string file_backend = json_string_field(text, "backend");
  if (file_backend != backend) {
    std::fprintf(stderr,
                 "baseline gate (%s): %s is a baseline for backend \"%s\"\n",
                 backend, path.c_str(), file_backend.c_str());
    return false;
  }
  const double expected = json_number_field(text, "peak_throughput");
  if (!(expected > 0)) {
    std::fprintf(stderr, "baseline gate (%s): no peak_throughput metric in %s\n",
                 backend, path.c_str());
    return false;
  }
  std::string scenario = json_string_field(text, "scenario");
  if (scenario.empty()) scenario = "(unnamed)";
  constexpr double kTolerance = 0.10;
  const double floor = expected * (1.0 - kTolerance);
  const double delta_pct = (measured - expected) / expected * 100.0;
  const bool ok = measured >= floor;
  std::printf(
      "baseline gate %s: scenario %s, metric peak_throughput (%s): "
      "measured %.2f/s vs baseline %.2f/s, delta %+.1f%% "
      "(tolerance -%.0f%%, floor %.2f/s)\n",
      ok ? "ok" : "REGRESSION", scenario.c_str(), backend, measured, expected,
      delta_pct, kTolerance * 100.0, floor);
  json()
      .field("kind", "baseline_check")
      .field("backend", backend)
      .field("scenario", scenario)
      .field("metric", "peak_throughput")
      .field("measured_peak_throughput", measured)
      .field("baseline_peak_throughput", expected)
      .field("delta_pct", delta_pct)
      .field("tolerance", kTolerance)
      .field("ok", ok ? 1.0 : 0.0)
      .emit();
  return ok;
}

// ---- payload break-even under load (E5 revisited) --------------------------

void payload_report(bool smoke, sweep::ThreadPool& pool) {
  const std::vector<double> payloads =
      smoke ? std::vector<double>{0, 2048, 4096}
            : std::vector<double>{0, 512, 1024, 2048, 3072, 4096};
  // Overload both kernels (both saturate well under 120 req/s) and
  // compare *delivered* throughput: E5's latency break-even, re-asked
  // as "which kernel moves more requests per second at this size?".
  auto delivered = [smoke, &pool, &payloads](load::Substrate sub) {
    return sweep::map<double, load::Report>(
        payloads,
        [sub, smoke](const double& payload) {
          load::Scenario sc = base_scenario(smoke);
          sc.arrival = load::Arrival::kOpenDeterministic;
          sc.offered_rate = 120.0;
          sc.max_backlog_per_client = 256;
          sc.mix = {{static_cast<std::size_t>(payload), 16, 1.0}};
          return load::run_scenario(sub, sc);
        },
        pool);
  };
  const auto soda = delivered(load::Substrate::kSoda);
  const auto charlotte = delivered(load::Substrate::kCharlotte);

  table_header("E12: delivered throughput vs payload at 120 req/s offered");
  std::printf("%-10s %14s %14s\n", "payload", "soda /s", "charlotte /s");
  sim::Series soda_s("soda"), charl_s("charlotte");
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    std::printf("%-10.0f %14.1f %14.1f\n", payloads[i], soda[i].throughput,
                charlotte[i].throughput);
    soda_s.add(payloads[i], soda[i].throughput);
    charl_s.add(payloads[i], charlotte[i].throughput);
    json()
        .field("kind", "payload")
        .field("payload", payloads[i])
        .field("soda_throughput", soda[i].throughput)
        .field("charlotte_throughput", charlotte[i].throughput)
        .emit();
  }
  const double cross = soda_s.crossover_x(charl_s);
  if (std::isnan(cross)) {
    print_note("no break-even on this payload grid");
  } else {
    std::printf("break-even: Charlotte overtakes SODA near %.0f B\n", cross);
    json().field("kind", "breakeven").field("payload_bytes", cross).emit();
    print_note("the throughput twin of E5's latency break-even: SODA's");
    print_note("per-byte cost eventually hands large payloads to Charlotte.");
  }
}

// ---- traced run ------------------------------------------------------------

void traced_run(bool smoke) {
  if (trace_out_path().empty()) return;
  load::Scenario sc = base_scenario(smoke);
  sc.offered_rate = 40.0;
  load::Runner runner(load::Substrate::kSoda, sc);
  trace::Recorder rec(runner.engine(), 1u << 20);
  const load::Report r = runner.run();
  if (trace::write_chrome_trace_file(rec, trace_out_path())) {
    std::printf("loaded SODA run (%.0f req/s, %ld samples) traced to %s\n",
                sc.offered_rate, static_cast<long>(r.samples),
                trace_out_path().c_str());
  }
}

void BM_ChrysalisLoadProbe(benchmark::State& state) {
  double tput = 0;
  for (auto _ : state) {
    load::Scenario sc = base_scenario(/*smoke=*/true);
    sc.offered_rate = 100.0;
    tput = load::run_scenario(load::Substrate::kChrysalis, sc).throughput;
  }
  state.counters["delivered_per_s"] = tput;
}
BENCHMARK(BM_ChrysalisLoadProbe)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  // One optional baseline path per substrate: --baseline= stays the
  // Charlotte spelling CI has used all along; the SODA and Chrysalis
  // wires got their own gates when the ack-v2 playbook was ported to
  // them.  Indexed by load::Substrate.
  std::string baselines[3];
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
      continue;
    }
    if (arg.rfind("--baseline=", 0) == 0) {
      baselines[static_cast<int>(load::Substrate::kCharlotte)] =
          arg.substr(std::string("--baseline=").size());
      continue;
    }
    if (arg.rfind("--baseline-soda=", 0) == 0) {
      baselines[static_cast<int>(load::Substrate::kSoda)] =
          arg.substr(std::string("--baseline-soda=").size());
      continue;
    }
    if (arg.rfind("--baseline-chrysalis=", 0) == 0) {
      baselines[static_cast<int>(load::Substrate::kChrysalis)] =
          arg.substr(std::string("--baseline-chrysalis=").size());
      continue;
    }
    if (arg == "--formation=on" || arg == "--formation=off") {
      g_formation = arg == "--formation=on";
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  bench::init(&argc, argv, "capacity");

  sweep::ThreadPool pool;
  curves_report(smoke, pool);
  const CapacityPeaks peaks = capacity_report(smoke, pool);
  payload_report(smoke, pool);
  formation_report(smoke, pool);
  traced_run(smoke);

  bool gate_ok = true;
  const bool any_baseline = !baselines[0].empty() || !baselines[1].empty() ||
                            !baselines[2].empty();
  if (any_baseline && g_formation) {
    // The checked-in baselines measure the frame-per-message wire; a
    // formation-on peak is a different quantity and must not be gated
    // (or silently refreshed) against it.
    print_note("baseline gate skipped: --formation=on changes the measured");
    print_note("quantity; the gate only runs on formation-off invocations.");
    for (auto& b : baselines) b.clear();
  }
  for (load::Substrate sub : load::all_substrates()) {
    const std::string& path = baselines[static_cast<int>(sub)];
    if (path.empty()) continue;
    // Every configured gate runs and reports — a SODA regression is
    // named even when Charlotte also regressed.
    gate_ok = baseline_gate(path, to_string(sub), peaks.of(sub)) && gate_ok;
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return gate_ok ? 0 : 1;
}
