// E3 (paper §3.3): Charlotte remote-operation latency.
//
//   "A simple remote operation (no enclosures) requires approximately
//    57 ms with no data transfer and about 65 ms with 1000 bytes of
//    parameters in both directions.  C programs that make the same
//    series of kernel calls require 55 and 60 ms, respectively."
//
// Reproduced: the LYNX run-time package over the simulated Charlotte
// kernel, versus a raw-kernel C-style client making Send / Receive /
// Wait calls directly.
#include "harness.hpp"

namespace {

using namespace bench;

// ---- raw kernel workload (the paper's "C programs") -------------------------

sim::Task<> raw_server(charlotte::Cluster* cl, charlotte::Pid pid,
                       charlotte::EndId end, int n, std::size_t bytes) {
  charlotte::Kernel& k = cl->kernel_of(pid);
  for (int i = 0; i < n; ++i) {
    (void)co_await k.receive(pid, end, 64 * 1024);
    charlotte::Completion c = co_await k.wait(pid);
    RELYNX_ASSERT(c.status == charlotte::Status::kOk);
    (void)co_await k.send(pid, end, charlotte::Payload(bytes, 0));
    c = co_await k.wait(pid);
    RELYNX_ASSERT(c.status == charlotte::Status::kOk);
  }
}

sim::Task<> raw_client(charlotte::Cluster* cl, charlotte::Pid pid,
                       charlotte::EndId end, int n, std::size_t bytes,
                       sim::Time* t0, sim::Time* t1) {
  charlotte::Kernel& k = cl->kernel_of(pid);
  *t0 = cl->engine().now();
  for (int i = 0; i < n; ++i) {
    (void)co_await k.send(pid, end, charlotte::Payload(bytes, 0));
    charlotte::Completion c = co_await k.wait(pid);
    RELYNX_ASSERT(c.status == charlotte::Status::kOk);
    (void)co_await k.receive(pid, end, 64 * 1024);
    c = co_await k.wait(pid);
    RELYNX_ASSERT(c.status == charlotte::Status::kOk);
  }
  *t1 = cl->engine().now();
}

double raw_kernel_rpc_ms(std::size_t bytes, int reps = 10) {
  sim::Engine engine;
  charlotte::Cluster cluster(engine, 4);
  charlotte::Pid ps = cluster.create_process(net::NodeId(0));
  charlotte::Pid pc = cluster.create_process(net::NodeId(1));
  charlotte::LinkPair pair = cluster.bootstrap_link(pc, ps);
  sim::Time t0 = 0, t1 = 0;
  engine.spawn("raw-server",
               raw_server(&cluster, ps, pair.end2, reps, bytes));
  engine.spawn("raw-client",
               raw_client(&cluster, pc, pair.end1, reps, bytes, &t0, &t1));
  engine.run();
  RELYNX_ASSERT(engine.process_failures().empty());
  return sim::to_msec(t1 - t0) / reps;
}

double lynx_charlotte_ms(std::size_t bytes) {
  CharlotteWorld w;
  return lynx_rpc_ms(w, bytes);
}

void report() {
  const double lynx0 = lynx_charlotte_ms(0);
  const double lynx1000 = lynx_charlotte_ms(1000);
  const double raw0 = raw_kernel_rpc_ms(0);
  const double raw1000 = raw_kernel_rpc_ms(1000);

  table_header("E3: Charlotte simple remote operation (paper §3.3)");
  print_rows({
      {"LYNX remote op, no data", 57.0, lynx0, "ms"},
      {"LYNX remote op, 1000 B both ways", 65.0, lynx1000, "ms"},
      {"raw kernel calls (C), no data", 55.0, raw0, "ms"},
      {"raw kernel calls (C), 1000 B both ways", 60.0, raw1000, "ms"},
  });
  print_note("shape checks: LYNX > raw (run-time package overhead), and");
  print_note("payload adds single-digit ms at 10 Mb/s.");
  std::printf("  run-time overhead, null op: paper %.1f ms, measured %.2f ms\n",
              57.0 - 55.0, lynx0 - raw0);

  // The same table, decomposed: where does a 1000-byte round trip spend
  // its time?  Derived from the trace spans of one recorded run.
  CharlotteWorld tw;
  traced_phase_report(tw, "E3 Charlotte RPC (1000 B both ways)", 1000);
}

void BM_LynxCharlotteNullRpc(benchmark::State& state) {
  double ms = 0;
  for (auto _ : state) ms = lynx_charlotte_ms(0);
  state.counters["sim_ms_per_op"] = ms;
}
BENCHMARK(BM_LynxCharlotteNullRpc)->Unit(benchmark::kMillisecond);

void BM_RawCharlotteNullRpc(benchmark::State& state) {
  double ms = 0;
  for (auto _ : state) ms = raw_kernel_rpc_ms(0);
  state.counters["sim_ms_per_op"] = ms;
}
BENCHMARK(BM_RawCharlotteNullRpc)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::init(&argc, argv, "charlotte_rpc");
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
