// E7 (paper §5.3): Chrysalis remote-operation latency.
//
//   "a simple remote operation requires about 2.4 ms with no data
//    transfer and about 4.6 ms with 1000 bytes of parameters in both
//    directions.  Code tuning and protocol optimizations now under
//    development are likely to improve both figures by 30 to 40%."
//
// Also checks the >10x gap to Charlotte that the paper highlights
// ("Message transmission times are also faster on the Butterfly, by
// more than an order of magnitude").
#include "harness.hpp"

namespace {

using namespace bench;

double chrysalis_ms(std::size_t bytes, double tuning_scale = 1.0) {
  ChrysalisWorld w(tuning_scale);
  return lynx_rpc_ms(w, bytes);
}

void report() {
  const double null_ms = chrysalis_ms(0);
  const double kb_ms = chrysalis_ms(1000);
  // "code tuning and protocol optimizations" — the ablation scales the
  // microcode-adjacent op costs and the run-time package overhead by
  // 0.65 (a 35% improvement, the middle of the paper's 30-40% band).
  const double tuned_null = chrysalis_ms(0, 0.65);
  const double tuned_kb = chrysalis_ms(1000, 0.65);

  CharlotteWorld cw;
  const double charlotte_null = lynx_rpc_ms(cw, 0);

  table_header("E7: Chrysalis simple remote operation (paper §5.3)");
  print_rows({
      {"LYNX remote op, no data", 2.4, null_ms, "ms"},
      {"LYNX remote op, 1000 B both ways", 4.6, kb_ms, "ms"},
      {"tuned (-35%), no data", 2.4 * 0.65, tuned_null, "ms"},
      {"tuned (-35%), 1000 B both ways", 4.6 * 0.65, tuned_kb, "ms"},
      {"Charlotte/Chrysalis null-op ratio (>10x)", 57.0 / 2.4,
       charlotte_null / null_ms, "x"},
  });
  print_note("shape checks: ~2.4/4.6 ms band; order-of-magnitude faster");
  print_note("than Charlotte; tuning knob moves both figures 30-40%.");

  ChrysalisWorld tw;
  traced_phase_report(tw, "E7 Chrysalis RPC (1000 B both ways)", 1000);
}

void BM_LynxChrysalisNullRpc(benchmark::State& state) {
  double ms = 0;
  for (auto _ : state) ms = chrysalis_ms(0);
  state.counters["sim_ms_per_op"] = ms;
}
BENCHMARK(BM_LynxChrysalisNullRpc)->Unit(benchmark::kMillisecond);

void BM_LynxChrysalisKilobyteRpc(benchmark::State& state) {
  double ms = 0;
  for (auto _ : state) ms = chrysalis_ms(1000);
  state.counters["sim_ms_per_op"] = ms;
}
BENCHMARK(BM_LynxChrysalisKilobyteRpc)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::init(&argc, argv, "chrysalis_rpc");
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
