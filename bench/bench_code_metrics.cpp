// E4 + E6 (paper §3.3 ¶1, §4.3 ¶1): run-time package size/complexity.
//
//   Charlotte: "just over 4000 lines of C and 200 lines of VAX
//   assembler, compiling to about 21K ... approximately 45% is devoted
//   to the communication routines ... including perhaps 5K for unwanted
//   messages and multiple enclosures."
//   SODA:      "it seems reasonable to expect a savings on the order of
//   4K bytes" (no unwanted-message / multi-enclosure special cases).
//   Chrysalis: "approximately 3600 lines of C and 200 lines of
//   assembler, compiling to 15 or 16K ... appreciably smaller."
//
// We cannot reproduce VAX object bytes; we reproduce the structure with
// three measurements (see metrics/complexity.hpp): protocol shape,
// backend source size measured from this repository, and the size of
// the screening/packetization special-case code.
#include <cstdio>

#include "harness.hpp"

#include "common/assert.hpp"
#include "metrics/complexity.hpp"

namespace {

void report() {
  const metrics::BackendProfile ch = metrics::profile_charlotte();
  const metrics::BackendProfile so = metrics::profile_soda();
  const metrics::BackendProfile cy = metrics::profile_chrysalis();

  std::printf(
      "\n=== E4/E6: run-time package complexity (paper §3.3, §4.3) ===\n");
  std::printf("%-36s %12s %10s %12s\n", "metric", "charlotte", "soda",
              "chrysalis");
  auto row_i = [](const char* label, int a, int b, int c) {
    std::printf("%-36s %12d %10d %12d\n", label, a, b, c);
  };
  auto row_z = [](const char* label, std::size_t a, std::size_t b,
                  std::size_t c) {
    std::printf("%-36s %12zu %10zu %12zu\n", label, a, b, c);
  };
  row_i("protocol message types", ch.protocol_message_types,
        so.protocol_message_types, cy.protocol_message_types);
  row_i("screening state bits per link", ch.screening_states,
        so.screening_states, cy.screening_states);
  row_i("parties agreeing on a move", ch.move_agreement_parties,
        so.move_agreement_parties, cy.move_agreement_parties);
  row_i("extra packets to move 4 ends", ch.extra_packets_multi_move(4),
        so.extra_packets_multi_move(4), cy.extra_packets_multi_move(4));
  row_z("backend source lines (measured)", ch.source_lines, so.source_lines,
        cy.source_lines);
  row_z("special-case lines (measured)", ch.special_case_lines,
        so.special_case_lines, cy.special_case_lines);

  std::printf(
      "\npaper anchors: Charlotte 4000+200 lines -> 21K object, ~45%% comm\n"
      "code, ~5K of it for unwanted msgs & multi enclosures; Chrysalis\n"
      "3600+200 lines -> 15-16K; SODA predicted ~4K smaller than\n"
      "Charlotte.  Shape check: only the Charlotte backend carries\n"
      "retry/forbid/allow/goahead/enc machinery (special-case lines > 0),\n"
      "and it needs the most protocol message types and screening state.\n");

  // machine-checkable shape
  RELYNX_ASSERT(ch.protocol_message_types > so.protocol_message_types);
  RELYNX_ASSERT(ch.protocol_message_types > cy.protocol_message_types);
  RELYNX_ASSERT(ch.special_case_lines > 0);
  RELYNX_ASSERT(so.special_case_lines == 0);
  RELYNX_ASSERT(cy.special_case_lines == 0);
  RELYNX_ASSERT(ch.screening_states > so.screening_states);
}

void BM_MeasureComplexity(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::profile_charlotte().source_lines);
  }
}
BENCHMARK(BM_MeasureComplexity);

}  // namespace

int main(int argc, char** argv) {
  bench::init(&argc, argv, "code_metrics");
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
