// E2 (paper figure 2 / §3.2.2): the Charlotte link-enclosure protocol.
//
//   simple case:          connect --request--> accept, reply <-- compute
//   multiple enclosures:  request --> goahead <-- enc --> enc --> ...
//
// For a LYNX request moving k link ends, Charlotte needs:
//   k <= 1 : 1 request packet                (figure 2 top)
//   k >= 2 : 1 request + 1 goahead + (k-1) enc packets (figure 2 bottom)
// while SODA and Chrysalis always move any k in ONE message.  This
// bench regenerates the packet counts and the latency penalty.
#include "harness.hpp"

namespace {

using namespace bench;
using lynx::Incoming;
using lynx::LinkHandle;
using lynx::LocalLinkPair;
using lynx::Message;
using lynx::ThreadCtx;
using lynx::Value;

sim::Task<> mover(ThreadCtx& ctx, LinkHandle via, int n, sim::Time* t0,
                  sim::Time* t1, sim::Engine* engine) {
  std::vector<LinkHandle> keep;
  Message req = lynx::make_message("take", {});
  for (int i = 0; i < n; ++i) {
    LocalLinkPair pair = co_await ctx.new_link();
    keep.push_back(pair.end1);
    req.args.emplace_back(pair.end2);
  }
  *t0 = engine->now();
  Message rep = co_await ctx.call(via, std::move(req));
  *t1 = engine->now();
  (void)rep;
}

sim::Task<> taker(ThreadCtx& ctx, LinkHandle via, int n) {
  ctx.enable_requests(via);
  Incoming in = co_await ctx.receive();
  RELYNX_ASSERT(static_cast<int>(in.msg.count_links()) == n);
  Message empty;
  co_await ctx.reply(in, std::move(empty));
}

struct MoveResult {
  double ms = 0;
  std::uint64_t goaheads = 0;
  std::uint64_t enc_packets = 0;
  std::uint64_t packets = 0;
};

template <typename World>
MoveResult run_move(int enclosures) {
  World w;
  sim::Time t0 = 0, t1 = 0;
  w.server.spawn_thread("taker", [&](ThreadCtx& ctx) {
    return taker(ctx, w.server_end, enclosures);
  });
  w.client.spawn_thread("mover", [&](ThreadCtx& ctx) {
    return mover(ctx, w.client_end, enclosures, &t0, &t1, &w.engine);
  });
  w.engine.run();
  RELYNX_ASSERT(w.engine.process_failures().empty());
  MoveResult r;
  r.ms = sim::to_msec(t1 - t0);
  return r;
}

MoveResult run_move_charlotte(int enclosures) {
  CharlotteWorld w;
  sim::Time t0 = 0, t1 = 0;
  w.server.spawn_thread("taker", [&](ThreadCtx& ctx) {
    return taker(ctx, w.server_end, enclosures);
  });
  w.client.spawn_thread("mover", [&](ThreadCtx& ctx) {
    return mover(ctx, w.client_end, enclosures, &t0, &t1, &w.engine);
  });
  w.engine.run();
  RELYNX_ASSERT(w.engine.process_failures().empty());
  MoveResult r;
  r.ms = sim::to_msec(t1 - t0);
  r.goaheads = w.server_stats().goaheads_sent;
  r.enc_packets = w.client_stats().enc_packets_sent;
  r.packets = w.client_stats().packets_sent + w.server_stats().packets_sent;
  return r;
}

void report() {
  table_header("E2: link enclosure protocol (paper figure 2)");
  std::printf("%-6s %18s %10s %8s %14s %14s\n", "encls",
              "charlotte packets", "goaheads", "encs", "charlotte ms",
              "chrysalis ms");
  for (int k : {0, 1, 2, 3, 4, 6, 8}) {
    MoveResult ch = run_move_charlotte(k);
    MoveResult cy = run_move<ChrysalisWorld>(k);
    std::printf("%-6d %18llu %10llu %8llu %14.2f %14.3f\n", k,
                static_cast<unsigned long long>(ch.packets),
                static_cast<unsigned long long>(ch.goaheads),
                static_cast<unsigned long long>(ch.enc_packets), ch.ms,
                cy.ms);
    // figure-2 structure:
    const auto expected_goaheads = static_cast<std::uint64_t>(k >= 2 ? 1 : 0);
    const auto expected_encs =
        static_cast<std::uint64_t>(k >= 2 ? k - 1 : 0);
    RELYNX_ASSERT(ch.goaheads == expected_goaheads);
    RELYNX_ASSERT(ch.enc_packets == expected_encs);
  }
  print_note("shape checks: k<=1 needs no goahead/enc packets; k>=2 costs");
  print_note("1 goahead + (k-1) enc packets on Charlotte; the primitive");
  print_note("kernels move any k in one message.");
}

void BM_CharlotteMoveFourLinks(benchmark::State& state) {
  double ms = 0;
  for (auto _ : state) ms = run_move_charlotte(4).ms;
  state.counters["sim_ms"] = ms;
}
BENCHMARK(BM_CharlotteMoveFourLinks)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::init(&argc, argv, "enclosure_protocol");
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
