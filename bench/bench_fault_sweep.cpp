// E11: RPC latency under an impaired medium — latency vs. frame drop
// rate for all three substrates.
//
// The paper's failure-semantics contrast (§2, §3.1) has a performance
// shadow: Charlotte buys its absolute failure notices with per-Msg
// acknowledgement state, so under loss it degrades by retransmit
// timeouts; SODA's hint-based transport retries per fragment on a much
// shorter clock; Chrysalis lives inside one Butterfly and has no wire
// to impair at all.  Each world boots over a clean medium, then the
// fault layer turns on background loss for the measured region only.
// Every (backend, drop-rate) point also emits a JSON line for plotting.
#include "fault/faulty_medium.hpp"
#include "harness.hpp"
#include "net/token_ring.hpp"

namespace {

using namespace bench;

struct FaultyCharlotteWorld {
  sim::Engine engine;
  net::TokenRing ring{engine};
  fault::FaultyMedium medium;
  charlotte::Cluster cluster;
  lynx::Process server;
  lynx::Process client;
  lynx::LinkHandle server_end;
  lynx::LinkHandle client_end;

  explicit FaultyCharlotteWorld(std::uint64_t seed)
      : medium(engine, ring, seed),
        cluster(engine, 2, medium, robust_costs()),
        server(engine, "server",
               lynx::make_charlotte_backend(cluster, net::NodeId(0)),
               lynx::vax_runtime_costs()),
        client(engine, "client",
               lynx::make_charlotte_backend(cluster, net::NodeId(1)),
               lynx::vax_runtime_costs()) {
    server.start();
    client.start();
    engine.spawn("wire", wire(this));
    engine.run();
  }
  static charlotte::Costs robust_costs() {
    charlotte::Costs c;
    c.send_retransmit_timeout = sim::msec(150);
    c.max_send_attempts = 20;  // loss, not failure: keep trying
    return c;
  }
  static sim::Task<> wire(FaultyCharlotteWorld* w) {
    auto [se, ce] =
        co_await lynx::CharlotteBackend::connect(w->server, w->client);
    w->server_end = se;
    w->client_end = ce;
  }
};

struct FaultySodaWorld {
  sim::Engine engine;
  net::CsmaBus bus;
  fault::FaultyMedium medium;
  lynx::SodaDirectory directory;
  soda::Network network;
  lynx::Process server;
  lynx::Process client;
  lynx::LinkHandle server_end;
  lynx::LinkHandle client_end;

  explicit FaultySodaWorld(std::uint64_t seed)
      : bus(engine, sim::Rng(2026), quiet_bus()),
        medium(engine, bus, seed),
        network(engine, 2, medium, robust_costs()),
        server(engine, "server",
               lynx::make_soda_backend(network, directory, net::NodeId(0)),
               lynx::pdp11_runtime_costs()),
        client(engine, "client",
               lynx::make_soda_backend(network, directory, net::NodeId(1)),
               lynx::pdp11_runtime_costs()) {
    server.start();
    client.start();
    engine.spawn("wire", wire(this));
    engine.run();
  }
  static net::CsmaBusParams quiet_bus() {
    net::CsmaBusParams p;
    p.broadcast_drop_prob = 0.0;  // the fault layer owns all loss here
    return p;
  }
  static soda::Costs robust_costs() {
    soda::Costs c;
    c.ack_timeout = sim::msec(8);
    c.max_transport_attempts = 20;
    return c;
  }
  static sim::Task<> wire(FaultySodaWorld* w) {
    auto [se, ce] = co_await lynx::SodaBackend::connect(w->server, w->client);
    w->server_end = se;
    w->client_end = ce;
  }
};

constexpr std::size_t kPayload = 16;
constexpr int kReps = 8;

template <typename World>
double impaired_rpc_ms(std::uint64_t seed, double drop) {
  World w(seed);  // boots over a clean wire
  w.medium.set_background({.drop_prob = drop});
  return lynx_rpc_ms(w, kPayload, kReps);
}

void report() {
  const std::vector<double> rates{0.0, 0.05, 0.1, 0.2, 0.3};

  // Chrysalis: no Medium anywhere in the stack — one measurement serves
  // every rate, and the flat line is itself the result.
  ChrysalisWorld chw;
  const double chrysalis_ms = lynx_rpc_ms(chw, kPayload, kReps);

  sweep::ThreadPool pool;
  auto charlotte = sweep::map<double, double>(
      rates,
      [](const double& r) {
        return impaired_rpc_ms<FaultyCharlotteWorld>(401, r);
      },
      pool);
  auto soda = sweep::map<double, double>(
      rates,
      [](const double& r) { return impaired_rpc_ms<FaultySodaWorld>(402, r); },
      pool);

  table_header("E11: small-RPC latency vs frame drop rate (fault layer)");
  std::printf("%-10s %14s %14s %14s\n", "drop", "charlotte ms", "soda ms",
              "chrysalis ms");
  for (std::size_t i = 0; i < rates.size(); ++i) {
    std::printf("%-10.2f %14.2f %14.2f %14.2f\n", rates[i], charlotte[i],
                soda[i], chrysalis_ms);
  }
  for (std::size_t i = 0; i < rates.size(); ++i) {
    JsonLine()
        .field("bench", "fault_sweep")
        .field("backend", "charlotte")
        .field("drop_rate", rates[i])
        .field("ms_per_op", charlotte[i])
        .emit();
    JsonLine()
        .field("bench", "fault_sweep")
        .field("backend", "soda")
        .field("drop_rate", rates[i])
        .field("ms_per_op", soda[i])
        .emit();
    JsonLine()
        .field("bench", "fault_sweep")
        .field("backend", "chrysalis")
        .field("drop_rate", rates[i])
        .field("ms_per_op", chrysalis_ms)
        .emit();
  }
  print_note("shape checks: both wire substrates rise with loss; Charlotte");
  print_note("degrades in ~150 ms retransmit-timeout steps while SODA's");
  print_note("8 ms per-fragment ack clock recovers far more gently;");
  print_note("Chrysalis is flat because no Medium exists to impair.");
}

void BM_CharlotteLossyRpc(benchmark::State& state) {
  double ms = 0;
  for (auto _ : state) ms = impaired_rpc_ms<FaultyCharlotteWorld>(401, 0.1);
  state.counters["sim_ms_per_op"] = ms;
}
BENCHMARK(BM_CharlotteLossyRpc)->Unit(benchmark::kMillisecond);

void BM_SodaLossyRpc(benchmark::State& state) {
  double ms = 0;
  for (auto _ : state) ms = impaired_rpc_ms<FaultySodaWorld>(402, 0.1);
  state.counters["sim_ms_per_op"] = ms;
}
BENCHMARK(BM_SodaLossyRpc)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::init(&argc, argv, "fault_sweep");
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
