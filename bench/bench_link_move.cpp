// E1 (paper figure 1 / §6 lesson one): moving link ends, including the
// figure-1 scenario where both ends of a link move simultaneously.
//
// Charlotte admits a move "only when all three parties agree" — our
// kernel's registrar protocol spends 3+ frames per moved end — while
// SODA and Chrysalis rely on hints and spend nothing up front.  The
// bench measures per-backend move cost and move-protocol traffic, and
// replays figure 1 on every backend.
#include "harness.hpp"

namespace {

using namespace bench;
using lynx::Incoming;
using lynx::LinkHandle;
using lynx::LocalLinkPair;
using lynx::Message;
using lynx::ThreadCtx;

// move one fresh end across, then ping over it to prove it works
sim::Task<> move_and_ping(ThreadCtx& ctx, LinkHandle via, sim::Time* t0,
                          sim::Time* t1, sim::Engine* engine) {
  LocalLinkPair pair = co_await ctx.new_link();
  *t0 = engine->now();
  Message req = lynx::make_message("take", {pair.end2});
  (void)co_await ctx.call(via, std::move(req));
  Message ping = lynx::make_message("ping", {});
  (void)co_await ctx.call(pair.end1, std::move(ping));
  *t1 = engine->now();
}

sim::Task<> take_and_serve(ThreadCtx& ctx, LinkHandle via) {
  ctx.enable_requests(via);
  Incoming in = co_await ctx.receive();
  LinkHandle got = std::get<LinkHandle>(in.msg.args.at(0));
  Message empty;
  co_await ctx.reply(in, std::move(empty));
  ctx.enable_requests(got);
  Incoming ping = co_await ctx.receive();
  Message rep;
  co_await ctx.reply(ping, std::move(rep));
}

template <typename World>
double move_ping_ms(World& w) {
  sim::Time t0 = 0, t1 = 0;
  w.server.spawn_thread("taker", [&](ThreadCtx& ctx) {
    return take_and_serve(ctx, w.server_end);
  });
  w.client.spawn_thread("mover", [&](ThreadCtx& ctx) {
    return move_and_ping(ctx, w.client_end, &t0, &t1, &w.engine);
  });
  w.engine.run();
  RELYNX_ASSERT(w.engine.process_failures().empty());
  return sim::to_msec(t1 - t0);
}

// ---- figure 1 on the LYNX level, generic over backends ----------------------

sim::Task<> fig1_mover(ThreadCtx& ctx, LinkHandle via, LinkHandle moving) {
  Message req = lynx::make_message("take", {moving});
  (void)co_await ctx.call(via, std::move(req));
}

sim::Task<> fig1_speaker(ThreadCtx& ctx, LinkHandle via) {
  ctx.enable_requests(via);
  Incoming in = co_await ctx.receive();
  LinkHandle mine = std::get<LinkHandle>(in.msg.args.at(0));
  Message empty;
  co_await ctx.reply(in, std::move(empty));
  Message m = lynx::make_message("across", {});
  (void)co_await ctx.call(mine, std::move(m));
}

sim::Task<> fig1_listener(ThreadCtx& ctx, LinkHandle via, bool* heard) {
  ctx.enable_requests(via);
  Incoming in = co_await ctx.receive();
  LinkHandle mine = std::get<LinkHandle>(in.msg.args.at(0));
  Message empty;
  co_await ctx.reply(in, std::move(empty));
  ctx.enable_requests(mine);
  Incoming m = co_await ctx.receive();
  *heard = (m.msg.op == "across");
  Message rep;
  co_await ctx.reply(m, std::move(rep));
}

// Runs figure 1: A and D hold link 3; A ships its end to B while D ships
// its end to C concurrently; then a message crosses B->C.
// Returns (worked, move-protocol frames at kernel level if measurable).
struct Fig1Result {
  bool worked = false;
  double ms = 0;
  std::uint64_t kernel_move_frames = 0;
};

Fig1Result fig1_charlotte() {
  sim::Engine engine;
  charlotte::Cluster cluster(engine, 4);
  std::vector<std::unique_ptr<lynx::Process>> procs;
  for (int i = 0; i < 4; ++i) {
    procs.push_back(std::make_unique<lynx::Process>(
        engine, std::string(1, static_cast<char>('A' + i)),
        lynx::make_charlotte_backend(cluster,
                                     net::NodeId(static_cast<std::uint32_t>(i))),
        lynx::vax_runtime_costs()));
    procs.back()->start();
  }
  LinkHandle ab_a, ab_b, dc_d, dc_c, l3_a, l3_d;
  engine.spawn("wire", [](lynx::Process* a, lynx::Process* b,
                          lynx::Process* c, lynx::Process* d, LinkHandle* o1,
                          LinkHandle* o2, LinkHandle* o3, LinkHandle* o4,
                          LinkHandle* o5, LinkHandle* o6) -> sim::Task<> {
    auto [x1, y1] = co_await lynx::CharlotteBackend::connect(*a, *b);
    *o1 = x1;
    *o2 = y1;
    auto [x2, y2] = co_await lynx::CharlotteBackend::connect(*d, *c);
    *o3 = x2;
    *o4 = y2;
    auto [x3, y3] = co_await lynx::CharlotteBackend::connect(*a, *d);
    *o5 = x3;
    *o6 = y3;
  }(procs[0].get(), procs[1].get(), procs[2].get(), procs[3].get(), &ab_a,
                          &ab_b, &dc_d, &dc_c, &l3_a, &l3_d));
  engine.run();

  bool heard = false;
  const sim::Time t0 = engine.now();
  procs[0]->spawn_thread("A", [&](ThreadCtx& ctx) {
    return fig1_mover(ctx, ab_a, l3_a);
  });
  procs[3]->spawn_thread("D", [&](ThreadCtx& ctx) {
    return fig1_mover(ctx, dc_d, l3_d);
  });
  procs[1]->spawn_thread("B",
                         [&](ThreadCtx& ctx) { return fig1_speaker(ctx, ab_b); });
  procs[2]->spawn_thread("C", [&](ThreadCtx& ctx) {
    return fig1_listener(ctx, dc_c, &heard);
  });
  engine.run();
  Fig1Result r;
  r.worked = heard && engine.process_failures().empty();
  r.ms = sim::to_msec(engine.now() - t0);
  r.kernel_move_frames = cluster.total_move_frames();
  return r;
}

Fig1Result fig1_chrysalis() {
  sim::Engine engine;
  chrysalis::Kernel kernel(engine);
  std::vector<std::unique_ptr<lynx::Process>> procs;
  for (int i = 0; i < 4; ++i) {
    procs.push_back(std::make_unique<lynx::Process>(
        engine, std::string(1, static_cast<char>('A' + i)),
        lynx::make_chrysalis_backend(kernel,
                                     net::NodeId(static_cast<std::uint32_t>(i))),
        lynx::mc68000_runtime_costs()));
    procs.back()->start();
  }
  LinkHandle ab_a, ab_b, dc_d, dc_c, l3_a, l3_d;
  engine.spawn("wire", [](lynx::Process* a, lynx::Process* b,
                          lynx::Process* c, lynx::Process* d, LinkHandle* o1,
                          LinkHandle* o2, LinkHandle* o3, LinkHandle* o4,
                          LinkHandle* o5, LinkHandle* o6) -> sim::Task<> {
    auto [x1, y1] = co_await lynx::ChrysalisBackend::connect(*a, *b);
    *o1 = x1;
    *o2 = y1;
    auto [x2, y2] = co_await lynx::ChrysalisBackend::connect(*d, *c);
    *o3 = x2;
    *o4 = y2;
    auto [x3, y3] = co_await lynx::ChrysalisBackend::connect(*a, *d);
    *o5 = x3;
    *o6 = y3;
  }(procs[0].get(), procs[1].get(), procs[2].get(), procs[3].get(), &ab_a,
                          &ab_b, &dc_d, &dc_c, &l3_a, &l3_d));
  engine.run();

  bool heard = false;
  const sim::Time t0 = engine.now();
  procs[0]->spawn_thread("A", [&](ThreadCtx& ctx) {
    return fig1_mover(ctx, ab_a, l3_a);
  });
  procs[3]->spawn_thread("D", [&](ThreadCtx& ctx) {
    return fig1_mover(ctx, dc_d, l3_d);
  });
  procs[1]->spawn_thread("B",
                         [&](ThreadCtx& ctx) { return fig1_speaker(ctx, ab_b); });
  procs[2]->spawn_thread("C", [&](ThreadCtx& ctx) {
    return fig1_listener(ctx, dc_c, &heard);
  });
  engine.run();
  Fig1Result r;
  r.worked = heard && engine.process_failures().empty();
  r.ms = sim::to_msec(engine.now() - t0);
  r.kernel_move_frames = 0;  // shared memory: no move protocol at all
  return r;
}

void report() {
  table_header("E1: moving a link end (paper figure 1, lesson one)");

  CharlotteWorld cw;
  const double ch_ms = move_ping_ms(cw);
  ChrysalisWorld yw;
  const double cy_ms = move_ping_ms(yw);
  SodaWorld sw;
  const double so_ms = move_ping_ms(sw);
  std::printf("%-34s %12s\n", "move one end + first use", "sim ms");
  std::printf("%-34s %12.2f\n", "charlotte (3-party agreement)", ch_ms);
  std::printf("%-34s %12.2f\n", "soda (hints)", so_ms);
  std::printf("%-34s %12.3f\n", "chrysalis (remap + hint rewrite)", cy_ms);

  Fig1Result f_ch = fig1_charlotte();
  Fig1Result f_cy = fig1_chrysalis();
  std::printf("\nfigure-1 simultaneous both-end move:\n");
  std::printf("%-14s %8s %10s %22s\n", "backend", "works", "sim ms",
              "kernel move frames");
  std::printf("%-14s %8s %10.2f %22llu\n", "charlotte",
              f_ch.worked ? "yes" : "NO", f_ch.ms,
              static_cast<unsigned long long>(f_ch.kernel_move_frames));
  std::printf("%-14s %8s %10.2f %22llu\n", "chrysalis",
              f_cy.worked ? "yes" : "NO", f_cy.ms,
              static_cast<unsigned long long>(f_cy.kernel_move_frames));
  RELYNX_ASSERT(f_ch.worked && f_cy.worked);
  print_note("shape checks: every backend survives simultaneous moves;");
  print_note("only Charlotte pays kernel-level agreement traffic (hints");
  print_note("cost nothing until they miss).");
}

void BM_Fig1Charlotte(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(fig1_charlotte().worked);
}
BENCHMARK(BM_Fig1Charlotte)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::init(&argc, argv, "link_move");
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
