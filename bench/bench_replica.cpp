// E15: the replicated KV service — commit latency, throughput, and
// fail-over recovery per substrate (DESIGN.md §13).
//
// The paper ranks the kernels by single-RPC latency; replication asks
// the compound question: a committed write is one client RPC *plus* a
// sequential fan-out RPC per backup, so the substrate ordering should
// survive — amplified — in commit latency.  A clean closed-loop run
// measures commit (write) and read latency distributions and delivered
// throughput on each substrate; a crash run then measures what
// fail-over costs: the gap between the primary's crash and the first
// commit of the successor's view.
//
// Flags (bench::init): --json-out, --trace-out, --seed, plus --smoke
// for the CI-sized version and --baseline=PATH to gate the Charlotte
// smoke commit p50 against bench/baselines/replica.json: exits nonzero
// when the measured latency climbs more than 10% above the baseline,
// so CI catches an ack-protocol or replication-path slowdown at the PR.
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "harness.hpp"
#include "replica/replica.hpp"

namespace {

using namespace bench;

replica::Options base_options(bool smoke) {
  replica::Options o;
  o.replicas = 3;
  o.clients = smoke ? 2 : 4;
  o.ops_per_client = smoke ? 8 : 24;
  o.keys = 4;
  o.seed = bench::seed();
  return o;
}

// Crash/restart instants per substrate, mid-commit-stream for the
// workload above (same constants as the explorer's crash plans).
struct FaultTimes {
  sim::Time crash;
  sim::Time restart;
};

FaultTimes fault_times(load::Substrate s) {
  switch (s) {
    case load::Substrate::kCharlotte: return {sim::msec(300), sim::msec(700)};
    case load::Substrate::kSoda: return {sim::msec(120), sim::msec(280)};
    case load::Substrate::kChrysalis: return {sim::msec(20), sim::msec(45)};
  }
  return {sim::msec(100), sim::msec(200)};
}

// ---- clean commits ---------------------------------------------------------

// Returns the Charlotte commit p50 (ms) for the baseline gate.
double commit_report(bool smoke) {
  table_header("E15: replicated commit latency and throughput (3 replicas)");
  std::printf("%-10s %10s %10s %10s %10s %12s\n", "backend", "commit p50",
              "commit p99", "read p50", "read p99", "delivered/s");
  double charlotte_p50 = 0;
  for (load::Substrate sub : load::all_substrates()) {
    sim::Engine engine;
    replica::Group g(engine, sub, base_options(smoke));
    engine.run();
    const replica::Metrics& m = g.metrics();
    RELYNX_ASSERT_MSG(m.err == 0, "clean replica run must not error");
    const double wp50 = m.write_latency.quantile(0.50) / 1000.0;
    const double wp99 = m.write_latency.quantile(0.99) / 1000.0;
    const double rp50 = m.read_latency.quantile(0.50) / 1000.0;
    const double rp99 = m.read_latency.quantile(0.99) / 1000.0;
    const double secs = sim::to_usec(engine.now()) / 1e6;
    const double tput = secs > 0 ? static_cast<double>(m.ok) / secs : 0;
    if (sub == load::Substrate::kCharlotte) charlotte_p50 = wp50;
    std::printf("%-10s %10.2f %10.2f %10.2f %10.2f %12.1f\n",
                load::to_string(sub), wp50, wp99, rp50, rp99, tput);
    json()
        .field("kind", "commit")
        .field("backend", load::to_string(sub))
        .field("commit_p50_ms", wp50)
        .field("commit_p99_ms", wp99)
        .field("read_p50_ms", rp50)
        .field("read_p99_ms", rp99)
        .field("throughput", tput)
        .field("ops", static_cast<double>(m.ok))
        .emit();
  }
  print_note("a commit is 1 client RPC + 2 sequential backup RPCs: the");
  print_note("paper's single-RPC substrate ordering survives, roughly x3.");
  return charlotte_p50;
}

// ---- fail-over -------------------------------------------------------------

void failover_report(bool smoke) {
  table_header("E15: primary fail-over (crash mid-stream, bounce back)");
  std::printf("%-10s %12s %10s %10s %10s\n", "backend", "recovery ms", "ok",
              "err", "view");
  for (load::Substrate sub : load::all_substrates()) {
    sim::Engine engine;
    replica::Options o = base_options(smoke);
    const FaultTimes ft = fault_times(sub);
    o.crash_primary_at = ft.crash;
    o.restart_primary_at = ft.restart;
    replica::Group g(engine, sub, o);
    const bool finished = engine.run_until(sim::sec(120));
    RELYNX_ASSERT_MSG(finished, "fail-over run must quiesce");
    const auto recovery = g.failover_recovery();
    RELYNX_ASSERT_MSG(recovery.has_value(), "fail-over must have happened");
    const double rec_ms = sim::to_usec(*recovery) / 1000.0;
    std::printf("%-10s %12.2f %10llu %10llu %10llu\n", load::to_string(sub),
                rec_ms, static_cast<unsigned long long>(g.metrics().ok),
                static_cast<unsigned long long>(g.metrics().err),
                static_cast<unsigned long long>(g.view()));
    json()
        .field("kind", "failover")
        .field("backend", load::to_string(sub))
        .field("recovery_ms", rec_ms)
        .field("ok", static_cast<double>(g.metrics().ok))
        .field("err", static_cast<double>(g.metrics().err))
        .emit();
  }
  print_note("recovery = first commit of the new view minus the crash");
  print_note("instant; dominated by crash detection plus one view rewire.");
}

// ---- baseline gate ---------------------------------------------------------

double json_number_field(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return std::nan("");
  std::size_t p = text.find(':', at + needle.size());
  if (p == std::string::npos) return std::nan("");
  return std::strtod(text.c_str() + p + 1, nullptr);
}

// Latency gate: fails when the measured Charlotte smoke commit p50
// climbs more than 10% ABOVE the checked-in baseline (lower is always
// fine; refreshing the baseline is a deliberate, reviewed act).
bool baseline_gate(const std::string& path, double measured_ms) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "baseline gate: cannot read %s\n", path.c_str());
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const double expected = json_number_field(buf.str(), "commit_p50_ms");
  if (!(expected > 0)) {
    std::fprintf(stderr, "baseline gate: no commit_p50_ms in %s\n",
                 path.c_str());
    return false;
  }
  constexpr double kTolerance = 0.10;
  const double ceiling = expected * (1.0 + kTolerance);
  const bool ok = measured_ms <= ceiling;
  std::printf("baseline gate: charlotte commit p50 %.2f ms vs baseline "
              "%.2f ms (ceiling %.2f ms): %s\n",
              measured_ms, expected, ceiling, ok ? "ok" : "REGRESSION");
  json()
      .field("kind", "baseline_check")
      .field("backend", "charlotte")
      .field("measured_commit_p50_ms", measured_ms)
      .field("baseline_commit_p50_ms", expected)
      .field("tolerance", kTolerance)
      .field("ok", ok ? 1.0 : 0.0)
      .emit();
  return ok;
}

// ---- traced run ------------------------------------------------------------

void traced_run(bool smoke) {
  if (trace_out_path().empty()) return;
  sim::Engine engine;
  trace::Recorder rec(engine, 1u << 20);
  replica::Group g(engine, load::Substrate::kSoda, base_options(smoke));
  engine.run();
  if (trace::write_chrome_trace_file(rec, trace_out_path())) {
    std::printf("replicated SODA run (%llu commits) traced to %s\n",
                static_cast<unsigned long long>(g.metrics().ok),
                trace_out_path().c_str());
  }
}

void BM_ChrysalisReplicatedCommit(benchmark::State& state) {
  double p50 = 0;
  for (auto _ : state) {
    sim::Engine engine;
    replica::Group g(engine, load::Substrate::kChrysalis,
                     base_options(/*smoke=*/true));
    engine.run();
    p50 = g.metrics().write_latency.quantile(0.50);
  }
  state.counters["commit_p50_us"] = p50;
}
BENCHMARK(BM_ChrysalisReplicatedCommit)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string baseline;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
      continue;
    }
    if (arg.rfind("--baseline=", 0) == 0) {
      baseline = arg.substr(std::string("--baseline=").size());
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  bench::init(&argc, argv, "replica");

  const double charlotte_p50 = commit_report(smoke);
  failover_report(smoke);
  traced_run(smoke);

  bool gate_ok = true;
  if (!baseline.empty()) gate_ok = baseline_gate(baseline, charlotte_p50);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return gate_ok ? 0 : 1;
}
