// E17: bench_sim — how fast is the simulator itself?
//
// Every capacity number the other benches publish is bounded by the
// discrete-event engine's wall-clock throughput: a million-request
// window is only affordable if the engine retires tens of millions of
// events per second.  This bench measures exactly that, as
// simulated-events-per-wall-second (the BENCH_SIM trajectory), on three
// workloads:
//
//   * storm      — a raw engine event storm (self-rescheduling chains
//                  with same-instant bursts, no kernels): pure event
//                  queue cost, the tentpole's microbenchmark.
//   * cancel     — arm-then-cancel timer churn (the retransmit-timer
//                  pattern every kernel uses): cancellation path cost.
//   * fanin      — the engine-level fan-in scenario (the acceptance
//                  workload for the queue overhaul): 4096 producers
//                  fanning into one sink, every delivery carrying a
//                  frame-sized closure payload.  Queue depth stays in
//                  the thousands, so this is exactly the regime where
//                  the old binary heap paid a deep sift plus a
//                  std::function heap allocation per event.
//   * fanin-*    — the E12 fan-in-4x1 open-loop scenario per substrate:
//                  the full stack (kernels, media, trace gate, LYNX
//                  runtimes) driven at a fixed offered rate.  This is
//                  the acceptance workload: events/wall-second here is
//                  what bounds bench_capacity and the explorer sweeps.
//
// Flags (bench::init): --json-out, --seed, plus --smoke for the
// CI-sized version and --baseline=PATH to gate each metric against an
// events-per-second floor (bench/baselines/sim.json): exits nonzero
// when any measured metric drops below its floor, so CI catches an
// engine slowdown at the PR that introduces it.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "harness.hpp"
#include "load/load.hpp"

namespace {

using namespace bench;

// ---- wall-clock measurement ------------------------------------------------

double wall_seconds_since(
    std::chrono::steady_clock::time_point t0) {
  const auto dt = std::chrono::steady_clock::now() - t0;
  return std::chrono::duration<double>(dt).count();
}

struct Metric {
  std::string name;
  std::uint64_t events = 0;
  double wall_s = 0.0;
  [[nodiscard]] double events_per_sec() const {
    return wall_s > 0 ? static_cast<double>(events) / wall_s : 0.0;
  }
};

// ---- storm: raw engine event throughput ------------------------------------

// splitmix64, the engine's own mixing function: the storm's delays are a
// pure function of (seed, event index), so the workload is identical
// run over run and engine over engine.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// `chains` self-rescheduling event chains, each firing `hops` times.
// Delays are 0..127 us, so chains collide on the same instant constantly
// (the FIFO tie-break path) and spread across timer-wheel buckets; every
// 8th hop is a zero-delay reschedule (the spawn/mailbox fairness-point
// pattern).
Metric run_storm(std::uint64_t seed, int chains, int hops) {
  sim::Engine e;
  std::int64_t remaining = static_cast<std::int64_t>(chains) * hops;
  const auto t0 = std::chrono::steady_clock::now();
  struct Chain {
    sim::Engine* e;
    std::int64_t* remaining;
    std::uint64_t state;
    void fire() {
      if (--*remaining <= 0) return;
      state = mix(state);
      const sim::Duration d =
          (state & 7) == 0 ? 0 : sim::usec(static_cast<std::int64_t>(state & 127));
      e->schedule(d, [c = *this]() mutable { c.fire(); });
    }
  };
  for (int i = 0; i < chains; ++i) {
    Chain c{&e, &remaining, seed * 0x9e3779b9ULL + static_cast<std::uint64_t>(i)};
    e.schedule(sim::usec(i), [c]() mutable { c.fire(); });
  }
  e.run();
  return {"storm", e.events_fired(), wall_seconds_since(t0)};
}

// Arm-then-cancel churn: every fired event arms a far-future cancellable
// "retransmit timer" and cancels the one it armed last hop — the
// steady-state pattern of a kernel under load (timers almost never
// fire; they are armed, outlived by the ack, and cancelled).
Metric run_cancel_storm(std::uint64_t seed, int chains, int hops) {
  sim::Engine e;
  std::int64_t remaining = static_cast<std::int64_t>(chains) * hops;
  const auto t0 = std::chrono::steady_clock::now();
  struct Chain {
    sim::Engine* e;
    std::int64_t* remaining;
    std::uint64_t state;
    sim::TimerHandle armed;
    void fire() {
      armed.cancel();
      if (--*remaining <= 0) return;
      state = mix(state);
      armed = e->schedule_cancellable(sim::msec(50), [] {});
      e->schedule(sim::usec(static_cast<std::int64_t>(state & 63) + 1),
                  [c = *this]() mutable { c.fire(); });
    }
  };
  for (int i = 0; i < chains; ++i) {
    Chain c{&e, &remaining, seed + static_cast<std::uint64_t>(i) * 7919, {}};
    e.schedule(sim::usec(i), [c]() mutable { c.fire(); });
  }
  e.run();
  return {"cancel", e.events_fired(), wall_seconds_since(t0)};
}

// The engine-level fan-in scenario: `sources` producers fan into one
// sink, each delivery carrying a frame-sized payload (56-byte capture —
// the size a media frame-delivery closure actually has; far past
// std::function's 16-byte small-buffer, comfortably inside EventFn's 64).
// Delays spread deliveries across ~2 ms so thousands of events are
// pending at once, and every 64th delivery is scheduled at a
// retransmit-horizon 8 ms out to exercise the overflow-heap path.
Metric run_fanin_storm(std::uint64_t seed, int sources, int rounds) {
  sim::Engine e;
  std::int64_t remaining = static_cast<std::int64_t>(sources) * rounds;
  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  struct Source {
    sim::Engine* e;
    std::int64_t* remaining;
    std::uint64_t* sink;
    std::uint64_t state;
    void fire() {
      if (--*remaining <= 0) return;
      state = mix(state);
      struct Payload {
        std::uint64_t words[3];
      } p{{state, state ^ 0xa5a5a5a5a5a5a5a5ULL, ~state}};
      const sim::Duration d =
          (state & 63) == 0
              ? sim::msec(8)
              : sim::usec(static_cast<std::int64_t>(state & 2047));
      e->schedule(d, [c = *this, p]() mutable {
        *c.sink += p.words[0] ^ p.words[1] ^ p.words[2];
        c.fire();
      });
    }
  };
  for (int i = 0; i < sources; ++i) {
    Source s{&e, &remaining, &sink,
             mix(seed ^ (0x517cc1b727220a95ULL * static_cast<std::uint64_t>(i + 1)))};
    e.schedule(sim::usec(i & 1023), [s]() mutable { s.fire(); });
  }
  e.run();
  benchmark::DoNotOptimize(sink);
  return {"fanin", e.events_fired(), wall_seconds_since(t0)};
}

// ---- fan-in: the E12 capacity workload, timed on the wall ------------------

// The E12 fan-in scenario scaled out to a fleet: 64 clients fanning in
// on 16 server processes (client i → server i mod 16), at a fixed
// offered rate per substrate (roughly 16× each kernel's single-server
// sustainable rate, so the event mix is steady-state request service,
// not queueing divergence).  The metric divides the engine's
// fired-event count by the wall-clock of the whole run — exactly the
// regime ROADMAP item 2's "1 000+-node fleets, million-request windows"
// cares about.
load::Scenario fanin_scenario(bool smoke, double rate) {
  load::Scenario sc;
  sc.name = "fleet-fanin-64x16";
  sc.clients = 64;
  sc.servers = 16;
  sc.arrival = load::Arrival::kOpenPoisson;
  sc.mix = {{64, 64, 1.0}};
  sc.seed = bench::seed();
  sc.offered_rate = rate;
  if (smoke) {
    sc.warmup = sim::msec(250);
    sc.measure = sim::sec(4);
    sc.drain = sim::msec(500);
  } else {
    sc.warmup = sim::sec(1);
    sc.measure = sim::sec(20);
    sc.drain = sim::sec(2);
  }
  return sc;
}

double fanin_rate_for(load::Substrate sub) {
  switch (sub) {
    case load::Substrate::kCharlotte: return 480.0;
    case load::Substrate::kSoda: return 1024.0;
    case load::Substrate::kChrysalis: return 3584.0;
  }
  return 480.0;
}

Metric run_fanin(load::Substrate sub, bool smoke) {
  const auto t0 = std::chrono::steady_clock::now();
  load::Runner runner(sub, fanin_scenario(smoke, fanin_rate_for(sub)));
  const load::Report r = runner.run();
  Metric m{std::string("fanin-") + to_string(sub),
           runner.engine().events_fired(), wall_seconds_since(t0)};
  RELYNX_ASSERT_MSG(r.errors == 0, "fan-in run must be clean");
  RELYNX_ASSERT_MSG(r.samples > 0, "fan-in run must complete requests");
  return m;
}

// ---- reporting and the baseline gate ---------------------------------------

void report(const Metric& m) {
  std::printf("%-16s %14llu events %10.3f s %16.0f events/s\n",
              m.name.c_str(), static_cast<unsigned long long>(m.events),
              m.wall_s, m.events_per_sec());
  json()
      .field("kind", "sim_speed")
      .field("metric", m.name)
      .field("events", static_cast<std::int64_t>(m.events))
      .field("wall_s", m.wall_s)
      .field("events_per_sec", m.events_per_sec())
      .emit();
}

// Flat-JSON field read, the same idiom as bench_capacity's gate.
double json_number_field(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return std::nan("");
  const std::size_t p = text.find(':', at + needle.size());
  if (p == std::string::npos) return std::nan("");
  return std::strtod(text.c_str() + p + 1, nullptr);
}

// Each metric is gated against "<name>_floor" in the baseline file
// (events per wall-second).  Floors are deliberately set well under a
// healthy run — CI machines are noisy — so a trip means a structural
// slowdown, not scheduler jitter.  Metrics without a floor pass with a
// note, so adding a workload does not require touching the baseline.
bool baseline_gate(const std::string& path, const std::vector<Metric>& ms) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "baseline gate (sim): cannot read %s\n", path.c_str());
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  bool ok = true;
  for (const Metric& m : ms) {
    const double floor = json_number_field(text, m.name + "_floor");
    if (std::isnan(floor)) {
      std::printf("baseline gate: %s has no floor in %s (ungated)\n",
                  m.name.c_str(), path.c_str());
      continue;
    }
    const bool pass = m.events_per_sec() >= floor;
    std::printf(
        "baseline gate %s: metric %s: measured %.0f events/s vs floor %.0f "
        "(%+.1f%%)\n",
        pass ? "ok" : "REGRESSION", m.name.c_str(), m.events_per_sec(), floor,
        (m.events_per_sec() - floor) / floor * 100.0);
    json()
        .field("kind", "baseline_check")
        .field("metric", m.name)
        .field("measured_events_per_sec", m.events_per_sec())
        .field("floor_events_per_sec", floor)
        .field("ok", pass ? 1.0 : 0.0)
        .emit();
    ok = ok && pass;
  }
  return ok;
}

void BM_EngineStorm(benchmark::State& state) {
  double eps = 0;
  for (auto _ : state) {
    eps = run_storm(bench::seed(), 64, 2000).events_per_sec();
  }
  state.counters["events_per_sec"] = eps;
}
BENCHMARK(BM_EngineStorm)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string baseline;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
      continue;
    }
    if (arg.rfind("--baseline=", 0) == 0) {
      baseline = arg.substr(std::string("--baseline=").size());
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  bench::init(&argc, argv, "sim");

  table_header("E17: simulator speed (simulated events per wall-second)");
  std::printf("%-16s %21s %12s %25s\n", "workload", "fired", "wall", "rate");

  // Two reps per metric, best-of: the first rep also pages everything
  // in, so best-of-2 is a cheap warm-cache number without a separate
  // warmup phase.
  const int reps = smoke ? 2 : 3;
  const int storm_chains = 256;
  const int storm_hops = smoke ? 4000 : 20000;
  std::vector<Metric> metrics;
  auto best_of = [&](auto fn) {
    Metric best = fn();
    for (int r = 1; r < reps; ++r) {
      Metric m = fn();
      RELYNX_ASSERT_MSG(m.events == best.events,
                        "sim workloads must be deterministic");
      if (m.events_per_sec() > best.events_per_sec()) best = m;
    }
    return best;
  };

  metrics.push_back(
      best_of([&] { return run_storm(bench::seed(), storm_chains, storm_hops); }));
  metrics.push_back(best_of(
      [&] { return run_cancel_storm(bench::seed(), storm_chains, storm_hops / 2); }));
  metrics.push_back(best_of([&] {
    return run_fanin_storm(bench::seed(), 4096, smoke ? 500 : 2500);
  }));
  for (load::Substrate sub : load::all_substrates()) {
    metrics.push_back(best_of([&] { return run_fanin(sub, smoke); }));
  }
  for (const Metric& m : metrics) report(m);

  bool gate_ok = true;
  if (!baseline.empty()) gate_ok = baseline_gate(baseline, metrics);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return gate_ok ? 0 : 1;
}
