// E10 (paper §4.2, §4.2.1): SODA hint maintenance under moved links.
//
//   "The only real problems occur when an end of a dormant link is
//    moved. ... If each process keeps a cache of links it has known
//    about recently ... then A may remember it sent L to B, and can
//    tell C where it went.  If A has forgotten, C can use the discover
//    command ... A process that is unable to find the far end of a link
//    must assume it has been destroyed."
//
// This bench moves a dormant link down a chain of processes, then has
// the fixed end finally speak.  Depending on cache capacity and
// broadcast loss, the late user is served by (a) cache redirects hop by
// hop, (b) a discover broadcast, or (c) the freeze/unfreeze search.
#include "harness.hpp"

#include "common/assert.hpp"

namespace {

using namespace bench;
using lynx::Incoming;
using lynx::LinkHandle;
using lynx::Message;
using lynx::ThreadCtx;

bool& flag_slot() {
  static bool flag = false;
  return flag;
}

struct ChainResult {
  bool served = false;
  double late_call_ms = 0;
  std::uint64_t redirects = 0;
  std::uint64_t discovers = 0;
  std::uint64_t discover_failures = 0;
  std::uint64_t freezes = 0;
};

// C holds one end of L; the other end hops A -> B -> ... -> Z through a
// chain of transfer links; then C makes one call on L.
ChainResult run_chain(int hops, std::size_t cache_capacity,
                      double broadcast_drop, std::uint64_t seed) {
  sim::Engine engine;
  lynx::SodaDirectory directory;
  net::CsmaBusParams bus;
  bus.broadcast_drop_prob = broadcast_drop;
  soda::Network network(engine,
                        static_cast<std::size_t>(hops) + 3, sim::Rng(seed),
                        bus);
  lynx::SodaBackendParams bp;
  bp.moved_cache_capacity = cache_capacity;

  std::vector<std::unique_ptr<lynx::Process>> chain;
  for (int i = 0; i <= hops; ++i) {
    chain.push_back(std::make_unique<lynx::Process>(
        engine, "hop" + std::to_string(i),
        lynx::make_soda_backend(network, directory,
                                net::NodeId(static_cast<std::uint32_t>(i)),
                                bp),
        lynx::pdp11_runtime_costs()));
    chain.back()->start();
  }
  lynx::Process user(engine, "user",
                     lynx::make_soda_backend(
                         network, directory,
                         net::NodeId(static_cast<std::uint32_t>(hops) + 1),
                         bp),
                     lynx::pdp11_runtime_costs());
  user.start();

  // wiring: transfer links hop[i] <-> hop[i+1]; link L: hop0 <-> user
  std::vector<LinkHandle> xfer_out(static_cast<std::size_t>(hops));
  std::vector<LinkHandle> xfer_in(static_cast<std::size_t>(hops));
  LinkHandle l_mover, l_user;
  engine.spawn("wire", [](std::vector<std::unique_ptr<lynx::Process>>* ch,
                          lynx::Process* usr, std::vector<LinkHandle>* xo,
                          std::vector<LinkHandle>* xi, LinkHandle* lm,
                          LinkHandle* lu, int n) -> sim::Task<> {
    for (int i = 0; i < n; ++i) {
      auto [a, b] = co_await lynx::SodaBackend::connect(
          *(*ch)[static_cast<std::size_t>(i)],
          *(*ch)[static_cast<std::size_t>(i) + 1]);
      (*xo)[static_cast<std::size_t>(i)] = a;
      (*xi)[static_cast<std::size_t>(i)] = b;
    }
    auto [m, u] = co_await lynx::SodaBackend::connect(*(*ch)[0], *usr);
    *lm = m;
    *lu = u;
  }(&chain, &user, &xfer_out, &xfer_in, &l_mover, &l_user, hops));
  engine.run();

  // hop0 ships L's end down the chain; every hop forwards; the last hop
  // serves.  The user waits until the dust settles, then calls.
  chain[0]->spawn_thread("ship", [&](ThreadCtx& ctx) {
    return [](ThreadCtx& cx, LinkHandle via, LinkHandle moving) -> sim::Task<> {
      Message req = lynx::make_message("take", {moving});
      (void)co_await cx.call(via, std::move(req));
      co_await cx.delay(sim::sec(30));  // stay alive (cache source)
    }(ctx, xfer_out[0], l_mover);
  });
  for (int i = 1; i < hops; ++i) {
    chain[static_cast<std::size_t>(i)]->spawn_thread(
        "forward", [&, i](ThreadCtx& ctx) {
          return [](ThreadCtx& cx, LinkHandle in_link,
                    LinkHandle out_link) -> sim::Task<> {
            cx.enable_requests(in_link);
            Incoming in = co_await cx.receive();
            LinkHandle got = std::get<LinkHandle>(in.msg.args.at(0));
            Message empty;
            co_await cx.reply(in, std::move(empty));
            Message fwd = lynx::make_message("take", {got});
            (void)co_await cx.call(out_link, std::move(fwd));
            co_await cx.delay(sim::sec(30));
          }(ctx, xfer_in[static_cast<std::size_t>(i) - 1],
                                xfer_out[static_cast<std::size_t>(i)]);
        });
  }
  flag_slot() = false;
  chain[static_cast<std::size_t>(hops)]->spawn_thread(
      "serve", [&](ThreadCtx& ctx) {
        return [](ThreadCtx& cx, LinkHandle in_link,
                  bool* flag) -> sim::Task<> {
          cx.enable_requests(in_link);
          Incoming in = co_await cx.receive();
          LinkHandle got = std::get<LinkHandle>(in.msg.args.at(0));
          Message empty;
          co_await cx.reply(in, std::move(empty));
          cx.enable_requests(got);
          Incoming late = co_await cx.receive();
          *flag = true;
          Message rep;
          co_await cx.reply(late, std::move(rep));
        }(ctx, xfer_in[static_cast<std::size_t>(hops) - 1], &flag_slot());
      });

  sim::Time t0 = 0, t1 = 0;
  user.spawn_thread("late", [&](ThreadCtx& ctx) {
    return [](ThreadCtx& cx, LinkHandle l, sim::Time* a, sim::Time* b,
              sim::Engine* e) -> sim::Task<> {
      co_await cx.delay(sim::sec(2));  // the link goes dormant
      *a = e->now();
      Message req = lynx::make_message("late", {});
      (void)co_await cx.call(l, std::move(req));
      *b = e->now();
    }(ctx, l_user, &t0, &t1, &engine);
  });
  engine.run_until(sim::sec(40));

  ChainResult r;
  r.served = flag_slot();
  flag_slot() = false;
  r.late_call_ms = sim::to_msec(t1 - t0);
  for (auto& p : chain) {
    const auto& st = dynamic_cast<lynx::SodaBackend&>(p->backend()).stats();
    r.redirects += st.moved_redirects;
  }
  const auto& ust = dynamic_cast<lynx::SodaBackend&>(user.backend()).stats();
  r.discovers = ust.discover_searches;
  r.discover_failures = ust.discover_failures;
  r.freezes = ust.freeze_searches;
  return r;
}

void report() {
  table_header("E10: dormant-link moves, hints and fallbacks (paper §4.2)");
  std::printf("%-6s %-8s %-6s | %-6s %10s %10s %10s %8s\n", "hops",
              "cache", "drop", "served", "late ms", "redirects",
              "discovers", "freezes");
  struct Case {
    int hops;
    std::size_t cache;
    double drop;
    std::uint64_t seed;
  };
  const std::vector<Case> cases = {
      {1, 64, 0.0, 11}, {2, 64, 0.0, 12},  {3, 64, 0.0, 13},
      {2, 0, 0.0, 14},  {3, 0, 0.05, 15},
  };
  for (const Case& c : cases) {
    ChainResult r = run_chain(c.hops, c.cache, c.drop, c.seed);
    std::printf("%-6d %-8zu %-6.2f | %-6s %10.1f %10llu %10llu %8llu\n",
                c.hops, c.cache, c.drop, r.served ? "yes" : "NO",
                r.late_call_ms,
                static_cast<unsigned long long>(r.redirects),
                static_cast<unsigned long long>(r.discovers),
                static_cast<unsigned long long>(r.discover_failures +
                                                r.freezes));
    RELYNX_ASSERT(r.served);
  }
  print_note("shape checks: with a warm cache the stragglers chase");
  print_note("redirects hop by hop; with an evicted cache (capacity 0)");
  print_note("the user falls back to discover (and, under loss, the");
  print_note("freeze search) — 'hints can be better than absolutes' as");
  print_note("long as the failure path exists.");
}

void BM_DormantChainTwoHops(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_chain(2, 64, 0.0, 99).served);
  }
}
BENCHMARK(BM_DormantChainTwoHops)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::init(&argc, argv, "soda_hints");
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
