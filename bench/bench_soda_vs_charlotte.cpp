// E5 (paper §4.3 + footnote 2): SODA vs Charlotte across message sizes.
//
//   "for small messages SODA was three times as fast as Charlotte.
//    The difference is less dramatic for larger messages: SODA's slow
//    network exacted a heavy toll.  The figures break even somewhere
//    between 1K and 2K bytes."
//
// Regenerates the figure-style series: latency vs payload for both
// substrates, the small-message speed ratio, and the crossover point.
// Sweep points run in parallel on the host (sweep::ThreadPool).
#include "harness.hpp"

namespace {

using namespace bench;

double soda_ms(std::size_t bytes) {
  SodaWorld w;
  return lynx_rpc_ms(w, bytes, 6);
}

double charlotte_ms(std::size_t bytes) {
  CharlotteWorld w;
  return lynx_rpc_ms(w, bytes, 6);
}

void report() {
  const std::vector<std::size_t> sizes{0,    128,  256,  512, 768, 1024,
                                       1536, 2048, 3072, 4096};
  sweep::ThreadPool pool;
  auto soda = sweep::map<std::size_t, double>(
      sizes, [](const std::size_t& b) { return soda_ms(b); }, pool);
  auto charlotte = sweep::map<std::size_t, double>(
      sizes, [](const std::size_t& b) { return charlotte_ms(b); }, pool);

  sim::Series s_soda("soda"), s_charlotte("charlotte");
  table_header(
      "E5: SODA vs Charlotte, latency vs payload (paper §4.3 fn.2)");
  std::printf("%-12s %14s %14s %10s\n", "bytes/way", "charlotte ms",
              "soda ms", "winner");
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    s_soda.add(static_cast<double>(sizes[i]), soda[i]);
    s_charlotte.add(static_cast<double>(sizes[i]), charlotte[i]);
    std::printf("%-12zu %14.2f %14.2f %10s\n", sizes[i], charlotte[i],
                soda[i], soda[i] < charlotte[i] ? "soda" : "charlotte");
  }

  const double ratio_small = charlotte[0] / soda[0];
  const double crossover = s_soda.crossover_x(s_charlotte);
  print_rows({
      {"small-message speedup (SODA vs Charlotte)", 3.0, ratio_small, "x"},
      {"break-even payload (paper: 1K..2K)", 1536.0, crossover, "bytes"},
  });
  print_note("shape checks: SODA ~3x faster near 0 B; Charlotte wins for");
  print_note("large payloads because SODA's 1 Mb/s bus dominates; the");
  print_note("crossover falls inside the paper's 1K-2K band.");

  SodaWorld tw;
  traced_phase_report(tw, "E5 SODA RPC (null op)", 0, 6);
}

void BM_SodaNullRpc(benchmark::State& state) {
  double ms = 0;
  for (auto _ : state) ms = soda_ms(0);
  state.counters["sim_ms_per_op"] = ms;
}
BENCHMARK(BM_SodaNullRpc)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::init(&argc, argv, "soda_vs_charlotte");
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
