// E9 (paper §3.2.1): the cost of screening unwanted messages on
// Charlotte.
//
// The kernel cannot be told "requests no, replies yes" on one link, so
// whenever a process awaits a reply with its request queue closed, a
// peer's request lands unintentionally and must be bounced (RETRY when
// the receiver can drop its kernel Receive, FORBID/ALLOW when it
// cannot).  This bench drives an adversarial bidirectional workload and
// counts the extra traffic and latency; the same workload on the
// primitive kernels generates NO unwanted deliveries at all.
#include "harness.hpp"

#include "common/assert.hpp"

namespace {

using namespace bench;
using lynx::Incoming;
using lynx::LinkHandle;
using lynx::Message;
using lynx::ThreadCtx;

// Server side: one coroutine serves, another keeps firing counter-
// requests in the reverse direction — each lands at the client while
// the client's request queue is closed.
sim::Task<> serve_thread(ThreadCtx& ctx, LinkHandle link, int rounds) {
  ctx.enable_requests(link);
  for (int i = 0; i < rounds; ++i) {
    Incoming in = co_await ctx.receive();
    co_await ctx.delay(sim::msec(60));  // window for the counter-request
    Message rep;
    co_await ctx.reply(in, std::move(rep));
  }
}

sim::Task<> counter_thread(ThreadCtx& ctx, LinkHandle link, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    co_await ctx.delay(sim::msec(35));
    Message req = lynx::make_message("reverse", {});
    (void)co_await ctx.call(link, std::move(req));
  }
}

sim::Task<> client_thread(ThreadCtx& ctx, LinkHandle link, int rounds,
                          sim::Time* t0, sim::Time* t1,
                          sim::Engine* engine) {
  *t0 = engine->now();
  for (int i = 0; i < rounds; ++i) {
    // call with the request queue CLOSED (the §3.2.1 setup)...
    Message req = lynx::make_message("forward", {});
    (void)co_await ctx.call(link, std::move(req));
    // ...then briefly open it to serve the bounced counter-request.
    ctx.enable_requests(link);
    Incoming in = co_await ctx.receive();
    Message rep;
    co_await ctx.reply(in, std::move(rep));
    ctx.disable_requests(link);
  }
  *t1 = engine->now();
}

struct Outcome {
  double ms_per_round = 0;
  std::uint64_t unwanted = 0;
  std::uint64_t forbids = 0;
  std::uint64_t retries = 0;
  std::uint64_t allows = 0;
  std::uint64_t returned = 0;
};

Outcome run_charlotte(int rounds) {
  CharlotteWorld w;
  sim::Time t0 = 0, t1 = 0;
  w.server.spawn_thread("serve", [&](ThreadCtx& ctx) {
    return serve_thread(ctx, w.server_end, rounds);
  });
  w.server.spawn_thread("counter", [&](ThreadCtx& ctx) {
    return counter_thread(ctx, w.server_end, rounds);
  });
  w.client.spawn_thread("client", [&](ThreadCtx& ctx) {
    return client_thread(ctx, w.client_end, rounds, &t0, &t1, &w.engine);
  });
  w.engine.run();
  RELYNX_ASSERT(w.engine.process_failures().empty());
  Outcome o;
  o.ms_per_round = sim::to_msec(t1 - t0) / rounds;
  o.unwanted = w.client_stats().unwanted_received;
  o.forbids = w.client_stats().forbids_sent;
  o.retries = w.client_stats().retries_sent;
  o.allows = w.client_stats().allows_sent;
  o.returned = w.server_stats().requests_returned;
  return o;
}

Outcome run_soda(int rounds) {
  SodaWorld w;
  sim::Time t0 = 0, t1 = 0;
  w.server.spawn_thread("serve", [&](ThreadCtx& ctx) {
    return serve_thread(ctx, w.server_end, rounds);
  });
  w.server.spawn_thread("counter", [&](ThreadCtx& ctx) {
    return counter_thread(ctx, w.server_end, rounds);
  });
  w.client.spawn_thread("client", [&](ThreadCtx& ctx) {
    return client_thread(ctx, w.client_end, rounds, &t0, &t1, &w.engine);
  });
  w.engine.run();
  RELYNX_ASSERT(w.engine.process_failures().empty());
  Outcome o;
  o.ms_per_round = sim::to_msec(t1 - t0) / rounds;
  const auto& st =
      dynamic_cast<lynx::SodaBackend&>(w.client.backend()).stats();
  o.unwanted = st.unwanted_received;  // structurally zero
  return o;
}

void report() {
  constexpr int kRounds = 8;
  Outcome ch = run_charlotte(kRounds);
  Outcome so = run_soda(kRounds);

  table_header("E9: unwanted-message screening (paper §3.2.1)");
  std::printf("%-40s %12s %10s\n", "metric", "charlotte", "soda");
  std::printf("%-40s %12.2f %10.2f\n", "ms per bidirectional round",
              ch.ms_per_round, so.ms_per_round);
  std::printf("%-40s %12llu %10llu\n", "unwanted messages received",
              static_cast<unsigned long long>(ch.unwanted),
              static_cast<unsigned long long>(so.unwanted));
  std::printf("%-40s %12llu %10s\n", "FORBID sent",
              static_cast<unsigned long long>(ch.forbids), "-");
  std::printf("%-40s %12llu %10s\n", "RETRY sent",
              static_cast<unsigned long long>(ch.retries), "-");
  std::printf("%-40s %12llu %10s\n", "ALLOW sent",
              static_cast<unsigned long long>(ch.allows), "-");
  std::printf("%-40s %12llu %10s\n", "requests bounced back to sender",
              static_cast<unsigned long long>(ch.returned), "-");
  print_note("shape checks: Charlotte receives unwanted requests and pays");
  print_note("retry/forbid/allow traffic; SODA never receives an unwanted");
  print_note("message (screening = deciding what to accept).");
  RELYNX_ASSERT(ch.unwanted > 0);
  RELYNX_ASSERT(ch.forbids + ch.retries > 0);
  RELYNX_ASSERT(so.unwanted == 0);
}

void BM_AdversarialRoundCharlotte(benchmark::State& state) {
  for (auto _ : state) benchmark::DoNotOptimize(run_charlotte(4).unwanted);
}
BENCHMARK(BM_AdversarialRoundCharlotte)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::init(&argc, argv, "unwanted_messages");
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
