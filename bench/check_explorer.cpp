// E13: the schedule-exploration checker as a CLI (DESIGN.md §9).
//
// Four phases, all reported as JSON lines and summarized for humans:
//
//   1. sweep           — seeds x {charlotte, soda, chrysalis} x {fifo,
//                        perm} x {none, ack-storm} on the echo
//                        workload; a conforming build finishes with
//                        zero failures.
//   2. self-test       — the same universes with the deliberately
//                        injected Charlotte re-ack bug armed; the
//                        checker must catch it, shrink it, and emit a
//                        replayable repro token.  A checker that cannot
//                        see a planted bug proves nothing about the
//                        absence of real ones.
//   3. replica sweep   — the replicated KV service under {none,
//                        primary-crash, primary-bounce, backup-bounce}
//                        on every substrate; the linearizability oracle
//                        joins the panel (DESIGN.md §13).
//   4. replica selftest— the planted stale-read bug armed; the
//                        linearizability oracle must catch it and its
//                        token must replay failing.
//
// Exit status is 0 only if the sweeps are clean AND both self-tests
// caught their planted bug.  Flags:
//   --smoke            CI budget: 10 seeds/universe instead of 100
//   --seeds=N          explicit seed count
//   --first-seed=N     start of the seed range (default 1)
//   --threads=N        host threads for the sweeps (0 = all cores);
//                      every phase prints its order-sensitive sweep
//                      digest, which is identical for any N
//   --skip-selftest    phase 1 only
//   --repro-out=FILE   append repro-token JSON lines for every failure
//   --replay=TOKEN     run ONE universe from a repro token and report
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "check/explorer.hpp"

namespace {

std::FILE* g_repro = nullptr;

void report_failure(const char* phase, const check::FailureReport& f) {
  std::printf("{\"phase\":\"%s\",\"event\":\"failure\",\"token\":%s}\n", phase,
              f.token().c_str());
  std::printf("  %s\n", f.verdict.failure.c_str());
  if (g_repro != nullptr) {
    std::fprintf(g_repro, "%s\n", f.token().c_str());
  }
}

}  // namespace

namespace {

// --replay=TOKEN: re-run one universe from a repro token, print the
// verdict (with the reference model's causal context on divergence).
// Exit 0 iff the run conforms — so CI can also assert a token FAILS
// with `! check_explorer --replay=...`.
int replay(const std::string& token) {
  const auto cfg = check::parse_token(token);
  if (!cfg.has_value()) {
    std::fprintf(stderr, "unparseable repro token: %s\n", token.c_str());
    return 2;
  }
  const check::RunVerdict v = check::run_one(*cfg);
  std::printf("{\"phase\":\"replay\",\"token\":%s,\"ok\":%d}\n",
              check::to_json(*cfg).c_str(), v.ok ? 1 : 0);
  if (!v.ok) {
    // The failure string already embeds the divergence render (with its
    // causal context) when the reference model objected.
    std::printf("%s\n", v.failure.c_str());
  }
  return v.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seeds = 100;
  std::uint64_t first_seed = 1;
  unsigned threads = 1;
  bool selftest = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--replay=", 0) == 0) {
      return replay(arg.substr(9));
    }
    if (arg == "--smoke") {
      seeds = 10;
    } else if (arg.rfind("--seeds=", 0) == 0) {
      seeds = std::strtoull(arg.c_str() + 8, nullptr, 10);
    } else if (arg.rfind("--first-seed=", 0) == 0) {
      first_seed = std::strtoull(arg.c_str() + 13, nullptr, 10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = static_cast<unsigned>(
          std::strtoul(arg.c_str() + 10, nullptr, 10));
    } else if (arg == "--skip-selftest") {
      selftest = false;
    } else if (arg.rfind("--repro-out=", 0) == 0) {
      g_repro = std::fopen(arg.c_str() + 12, "w");
      if (g_repro == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", arg.c_str() + 12);
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  bool ok = true;

  // ---- phase 1: the conformance sweep --------------------------------
  check::ExploreOptions sweep;
  sweep.seeds = seeds;
  sweep.first_seed = first_seed;
  sweep.threads = threads;
  sweep.plans = {check::PlanSpec::kNone, check::PlanSpec::kAckStorm,
                 check::PlanSpec::kBatchStorm};
  const check::ExploreResult swept = check::explore(sweep);
  std::printf(
      "{\"phase\":\"sweep\",\"runs\":%llu,\"shrink_runs\":%llu,"
      "\"failures\":%zu,\"digest\":\"%016llx\"}\n",
      static_cast<unsigned long long>(swept.runs),
      static_cast<unsigned long long>(swept.shrink_runs),
      swept.failures.size(),
      static_cast<unsigned long long>(swept.sweep_digest));
  for (const check::FailureReport& f : swept.failures) {
    report_failure("sweep", f);
  }
  if (!swept.failures.empty()) ok = false;

  // ---- phase 2: planted-bug self-test --------------------------------
  if (selftest) {
    check::ExploreOptions bug;
    bug.substrates = {load::Substrate::kCharlotte};
    bug.seeds = seeds < 4 ? seeds : 4;  // one caught bug is enough
    bug.first_seed = first_seed;
    bug.threads = threads;
    bug.plans = {check::PlanSpec::kAckStorm};
    bug.inject_reack_bug = true;
    const check::ExploreResult caught = check::explore(bug);
    const bool all_caught = caught.failures.size() ==
                            static_cast<std::size_t>(caught.runs);
    std::printf(
        "{\"phase\":\"selftest\",\"runs\":%llu,\"shrink_runs\":%llu,"
        "\"caught\":%zu,\"all_caught\":%d}\n",
        static_cast<unsigned long long>(caught.runs),
        static_cast<unsigned long long>(caught.shrink_runs),
        caught.failures.size(), all_caught ? 1 : 0);
    if (!all_caught) {
      std::printf("  planted re-ack bug escaped the checker\n");
      ok = false;
    } else {
      // The minimized token must replay to the same failure: print the
      // first one as the repro a developer would be handed.
      const check::FailureReport& f = caught.failures.front();
      const auto parsed = check::parse_token(f.token());
      const bool replays =
          parsed.has_value() && !check::run_one(*parsed).ok;
      std::printf(
          "{\"phase\":\"selftest\",\"event\":\"repro\",\"token\":%s,"
          "\"replays\":%d}\n",
          f.token().c_str(), replays ? 1 : 0);
      if (!replays) ok = false;
    }
  }

  // ---- phase 3: replica sweep ----------------------------------------
  check::ExploreOptions rep;
  rep.workload = check::Workload::kReplica;
  rep.seeds = seeds;
  rep.first_seed = first_seed;
  rep.threads = threads;
  rep.plans = {check::PlanSpec::kNone, check::PlanSpec::kPrimaryCrash,
               check::PlanSpec::kPrimaryBounce, check::PlanSpec::kBackupBounce};
  const check::ExploreResult rep_swept = check::explore(rep);
  std::printf(
      "{\"phase\":\"replica-sweep\",\"runs\":%llu,\"shrink_runs\":%llu,"
      "\"failures\":%zu,\"digest\":\"%016llx\"}\n",
      static_cast<unsigned long long>(rep_swept.runs),
      static_cast<unsigned long long>(rep_swept.shrink_runs),
      rep_swept.failures.size(),
      static_cast<unsigned long long>(rep_swept.sweep_digest));
  for (const check::FailureReport& f : rep_swept.failures) {
    report_failure("replica-sweep", f);
  }
  if (!rep_swept.failures.empty()) ok = false;

  // ---- phase 3b: replica sweep with RPC formation armed --------------
  // The commit fan-out batches Apply frames; the Wing–Gong oracle must
  // stay clean with batches (and whole batches dying mid-fail-over).
  check::ExploreOptions repf = rep;
  repf.seeds = seeds < 10 ? seeds : 10;
  repf.plans = {check::PlanSpec::kNone, check::PlanSpec::kPrimaryBounce};
  repf.formation = true;
  const check::ExploreResult repf_swept = check::explore(repf);
  std::printf(
      "{\"phase\":\"replica-formation\",\"runs\":%llu,\"shrink_runs\":%llu,"
      "\"failures\":%zu,\"digest\":\"%016llx\"}\n",
      static_cast<unsigned long long>(repf_swept.runs),
      static_cast<unsigned long long>(repf_swept.shrink_runs),
      repf_swept.failures.size(),
      static_cast<unsigned long long>(repf_swept.sweep_digest));
  for (const check::FailureReport& f : repf_swept.failures) {
    report_failure("replica-formation", f);
  }
  if (!repf_swept.failures.empty()) ok = false;

  // ---- phase 4: planted stale-read self-test -------------------------
  if (selftest) {
    check::ExploreOptions stale;
    stale.workload = check::Workload::kReplica;
    stale.seeds = seeds < 4 ? seeds : 4;
    stale.first_seed = first_seed;
    stale.threads = threads;
    stale.plans = {check::PlanSpec::kNone};
    stale.inject_stale_bug = true;
    const check::ExploreResult caught = check::explore(stale);
    const bool all_caught = caught.failures.size() ==
                            static_cast<std::size_t>(caught.runs);
    std::printf(
        "{\"phase\":\"replica-selftest\",\"runs\":%llu,\"shrink_runs\":%llu,"
        "\"caught\":%zu,\"all_caught\":%d}\n",
        static_cast<unsigned long long>(caught.runs),
        static_cast<unsigned long long>(caught.shrink_runs),
        caught.failures.size(), all_caught ? 1 : 0);
    if (!all_caught) {
      std::printf("  planted stale-read bug escaped the oracle\n");
      ok = false;
    } else {
      const check::FailureReport& f = caught.failures.front();
      const auto parsed = check::parse_token(f.token());
      const bool replays =
          parsed.has_value() && !check::run_one(*parsed).ok;
      std::printf(
          "{\"phase\":\"replica-selftest\",\"event\":\"repro\",\"token\":%s,"
          "\"replays\":%d}\n",
          f.token().c_str(), replays ? 1 : 0);
      if (!replays) ok = false;
    }
  }

  if (g_repro != nullptr) std::fclose(g_repro);
  std::printf("check_explorer: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
