// Shared infrastructure for the experiment benches.
//
// Every bench binary regenerates one of the paper's tables or figures
// (see DESIGN.md §4).  Each prints a paper-vs-measured table on stdout
// and registers google-benchmark timings of the simulations themselves
// (so the harness also tracks the *simulator's* wall-clock cost).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "lynx/lynx.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "sweep/sweep.hpp"
#include "trace/perfetto.hpp"
#include "trace/phases.hpp"
#include "trace/trace.hpp"

namespace bench {

// ---- unified entry ---------------------------------------------------------
//
// Every bench main starts with
//     bench::init(&argc, argv, "<bench-name>");
// which strips the harness's own flags before google-benchmark sees the
// rest:
//     --json-out=FILE    append every JSON-lines record to FILE as well
//                        as stdout
//     --trace-out=FILE   benches that support causal tracing write a
//                        Chrome-trace/Perfetto JSON of one traced run
//                        (ignored by benches that don't)
//     --seed=N           master seed for every seeded world/scenario in
//                        the bench (default 2026), so a specific run —
//                        one JSON record, one capacity curve — can be
//                        reproduced without recompiling

inline std::FILE*& json_file() {
  static std::FILE* f = nullptr;
  return f;
}
inline std::string& bench_name() {
  static std::string name;
  return name;
}
inline std::string& trace_out_path() {
  static std::string path;
  return path;
}
inline std::uint64_t& seed() {
  static std::uint64_t s = 2026;
  return s;
}

inline void init(int* argc, char** argv, const char* name) {
  bench_name() = name;
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    const std::string json_flag = "--json-out=";
    const std::string trace_flag = "--trace-out=";
    const std::string seed_flag = "--seed=";
    if (arg.rfind(json_flag, 0) == 0) {
      const std::string path = arg.substr(json_flag.size());
      json_file() = std::fopen(path.c_str(), "w");
      if (json_file() == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
      }
    } else if (arg.rfind(trace_flag, 0) == 0) {
      trace_out_path() = arg.substr(trace_flag.size());
    } else if (arg.rfind(seed_flag, 0) == 0) {
      seed() = std::strtoull(arg.substr(seed_flag.size()).c_str(), nullptr, 10);
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
  std::atexit([] {
    if (json_file() != nullptr) {
      std::fclose(json_file());
      json_file() = nullptr;
    }
  });
}

// ---- worlds: one client/server pair per substrate -------------------------

struct CharlotteWorld {
  sim::Engine engine;
  charlotte::Cluster cluster{engine, 4};
  lynx::Process server{engine, "server",
                       lynx::make_charlotte_backend(cluster, net::NodeId(0)),
                       lynx::vax_runtime_costs()};
  lynx::Process client{engine, "client",
                       lynx::make_charlotte_backend(cluster, net::NodeId(1)),
                       lynx::vax_runtime_costs()};
  lynx::LinkHandle server_end;
  lynx::LinkHandle client_end;

  CharlotteWorld() { boot(); }

  void boot() {
    server.start();
    client.start();
    engine.spawn("wire", wire(this));
    engine.run();
  }
  static sim::Task<> wire(CharlotteWorld* w) {
    auto [se, ce] =
        co_await lynx::CharlotteBackend::connect(w->server, w->client);
    w->server_end = se;
    w->client_end = ce;
  }
  [[nodiscard]] const lynx::CharlotteBackend::Stats& client_stats() {
    return dynamic_cast<lynx::CharlotteBackend&>(client.backend()).stats();
  }
  [[nodiscard]] const lynx::CharlotteBackend::Stats& server_stats() {
    return dynamic_cast<lynx::CharlotteBackend&>(server.backend()).stats();
  }
};

struct ChrysalisWorld {
  explicit ChrysalisWorld(double tuning_scale = 1.0,
                          lynx::RuntimeCosts rc = lynx::mc68000_runtime_costs())
      : kernel(engine, net::ButterflyParams{}, scaled_costs(tuning_scale)),
        server(engine, "server",
               lynx::make_chrysalis_backend(kernel, net::NodeId(0)),
               scale_rc(rc, tuning_scale)),
        client(engine, "client",
               lynx::make_chrysalis_backend(kernel, net::NodeId(1)),
               scale_rc(rc, tuning_scale)) {
    boot();
  }

  static chrysalis::Costs scaled_costs(double s) {
    chrysalis::Costs c;
    auto f = [s](sim::Duration d) {
      return static_cast<sim::Duration>(static_cast<double>(d) * s);
    };
    c.primitive_call = f(c.primitive_call);
    c.event_post = f(c.event_post);
    c.event_wait = f(c.event_wait);
    c.dq_enqueue = f(c.dq_enqueue);
    c.dq_dequeue = f(c.dq_dequeue);
    return c;
  }
  static lynx::RuntimeCosts scale_rc(lynx::RuntimeCosts rc, double s) {
    rc.per_operation =
        static_cast<sim::Duration>(static_cast<double>(rc.per_operation) * s);
    return rc;
  }

  sim::Engine engine;
  chrysalis::Kernel kernel;
  lynx::Process server;
  lynx::Process client;
  lynx::LinkHandle server_end;
  lynx::LinkHandle client_end;

  void boot() {
    server.start();
    client.start();
    engine.spawn("wire", wire(this));
    engine.run();
  }
  static sim::Task<> wire(ChrysalisWorld* w) {
    auto [se, ce] =
        co_await lynx::ChrysalisBackend::connect(w->server, w->client);
    w->server_end = se;
    w->client_end = ce;
  }
};

struct SodaWorld {
  explicit SodaWorld(lynx::SodaBackendParams bp = {})
      : network(engine, 6, sim::Rng(bench::seed()), quiet_bus()),
        server(engine, "server",
               lynx::make_soda_backend(network, directory, net::NodeId(0), bp),
               lynx::pdp11_runtime_costs()),
        client(engine, "client",
               lynx::make_soda_backend(network, directory, net::NodeId(1), bp),
               lynx::pdp11_runtime_costs()) {
    boot();
  }
  static net::CsmaBusParams quiet_bus() {
    net::CsmaBusParams p;
    p.broadcast_drop_prob = 0.0;
    return p;
  }

  sim::Engine engine;
  lynx::SodaDirectory directory;
  soda::Network network;
  lynx::Process server;
  lynx::Process client;
  lynx::LinkHandle server_end;
  lynx::LinkHandle client_end;

  void boot() {
    server.start();
    client.start();
    engine.spawn("wire", wire(this));
    engine.run();
  }
  static sim::Task<> wire(SodaWorld* w) {
    auto [se, ce] = co_await lynx::SodaBackend::connect(w->server, w->client);
    w->server_end = se;
    w->client_end = ce;
  }
};

// ---- the standard workload: N echo RPCs with a given payload ---------------

inline sim::Task<> echo_server(lynx::ThreadCtx& ctx, lynx::LinkHandle link,
                               int n) {
  ctx.enable_requests(link);
  for (int i = 0; i < n; ++i) {
    try {
      lynx::Incoming in = co_await ctx.receive();
      lynx::Message rep;
      rep.args = in.msg.args;
      co_await ctx.reply(in, std::move(rep));
    } catch (const lynx::LynxError& e) {
      // The client finished and hung up; under loss its teardown can
      // race our last reply's delivery ack.  End of service, not error.
      if (e.kind() == lynx::ErrorKind::kLinkDestroyed) break;
      throw;
    }
  }
}

inline sim::Task<> echo_client(lynx::ThreadCtx& ctx, lynx::LinkHandle link,
                               int n, std::size_t bytes, sim::Time* t0,
                               sim::Time* t1, sim::Engine* engine) {
  {  // warm-up op excluded from timing
    lynx::Message m = lynx::make_message("op", {lynx::Bytes(1, 0)});
    (void)co_await ctx.call(link, std::move(m));
  }
  *t0 = engine->now();
  for (int i = 0; i < n; ++i) {
    lynx::Message m = lynx::make_message("op", {lynx::Bytes(bytes, 0)});
    (void)co_await ctx.call(link, std::move(m));
  }
  *t1 = engine->now();
}

// Runs N echo RPCs on a world; returns mean simulated ms per operation.
template <typename World>
double lynx_rpc_ms(World& w, std::size_t bytes, int reps = 10) {
  sim::Time t0 = 0, t1 = 0;
  w.server.spawn_thread("srv", [&](lynx::ThreadCtx& ctx) {
    return echo_server(ctx, w.server_end, reps + 1);
  });
  w.client.spawn_thread("cli", [&](lynx::ThreadCtx& ctx) {
    return echo_client(ctx, w.client_end, reps, bytes, &t0, &t1, &w.engine);
  });
  w.engine.run();
  RELYNX_ASSERT_MSG(w.engine.process_failures().empty(),
                    "bench workload failed");
  return sim::to_msec(t1 - t0) / reps;
}

// ---- machine-readable output ----------------------------------------------

// One JSON object per line ("JSON lines"): benches emit a record per
// measured configuration so curves can be re-plotted without parsing
// the human tables.  Records go to stdout and, under --json-out=FILE,
// to that file too.
class JsonLine {
 public:
  JsonLine& field(const std::string& key, const std::string& value) {
    sep();
    buf_ += '"' + key + "\":\"" + value + '"';
    return *this;
  }
  JsonLine& field(const std::string& key, const char* value) {
    return field(key, std::string(value));
  }
  JsonLine& field(const std::string& key, double value) {
    char num[64];
    std::snprintf(num, sizeof num, "%.6g", value);
    sep();
    buf_ += '"' + key + "\":" + num;
    return *this;
  }
  JsonLine& field(const std::string& key, std::int64_t value) {
    sep();
    buf_ += '"' + key + "\":" + std::to_string(value);
    return *this;
  }
  void emit() {
    std::printf("%s}\n", buf_.c_str());
    if (json_file() != nullptr) {
      std::fprintf(json_file(), "%s}\n", buf_.c_str());
    }
  }

 private:
  void sep() {
    if (buf_.size() > 1) buf_ += ',';
  }
  std::string buf_ = "{";
};

// A JsonLine pre-tagged with the bench name given to init().
inline JsonLine json() {
  JsonLine j;
  if (!bench_name().empty()) j.field("bench", bench_name());
  return j;
}

// ---- traced runs -----------------------------------------------------------

// Runs the echo workload once with a live trace recorder and prints the
// per-phase RPC decomposition derived from the spans.  Under
// --trace-out=FILE the run is also exported as Chrome-trace/Perfetto
// JSON.  Coverage compares the mean "call" span against the measured
// per-op end-to-end latency (the warm-up op is traced but untimed, so
// the comparison is per-op, not total).
template <typename World>
void traced_phase_report(World& w, const char* title, std::size_t bytes = 0,
                         int reps = 10) {
  trace::Recorder rec(w.engine, 1u << 18);
  sim::Time t0 = 0, t1 = 0;
  w.server.spawn_thread("srv", [&](lynx::ThreadCtx& ctx) {
    return echo_server(ctx, w.server_end, reps + 1);
  });
  w.client.spawn_thread("cli", [&](lynx::ThreadCtx& ctx) {
    return echo_client(ctx, w.client_end, reps, bytes, &t0, &t1, &w.engine);
  });
  w.engine.run();
  RELYNX_ASSERT_MSG(w.engine.process_failures().empty(),
                    "traced workload failed");

  std::printf("\n--- %s: per-phase decomposition (from trace spans) ---\n",
              title);
  trace::PhaseTable table(rec);
  table.print();

  const double e2e_ms = sim::to_msec(t1 - t0) / reps;
  const double span_ms = table.mean_ms("call");
  const double coverage = e2e_ms > 0 ? 100.0 * span_ms / e2e_ms : 0.0;
  std::printf("  \"call\" spans cover %.1f%% of measured end-to-end latency"
              " (%.3f / %.3f ms per op)\n",
              coverage, span_ms, e2e_ms);
  json()
      .field("phase_span_ms", span_ms)
      .field("e2e_ms", e2e_ms)
      .field("span_coverage_pct", coverage)
      .emit();
  if (!trace_out_path().empty()) {
    if (trace::write_chrome_trace_file(rec, trace_out_path())) {
      std::printf("  trace written to %s (load in ui.perfetto.dev)\n",
                  trace_out_path().c_str());
    } else {
      std::fprintf(stderr, "  cannot write %s\n", trace_out_path().c_str());
    }
  }
}

// ---- table printing ----------------------------------------------------------

inline void table_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

struct Row {
  std::string label;
  double paper;
  double measured;
  std::string unit;
};


inline void print_note(const std::string& s) {
  std::printf("  %s\n", s.c_str());
}

// Human table plus one JSON-lines record per row.
inline void print_rows(const std::vector<Row>& rows) {
  std::printf("%-44s %12s %12s  %s\n", "quantity", "paper", "measured",
              "unit");
  for (const Row& r : rows) {
    std::printf("%-44s %12.2f %12.2f  %s\n", r.label.c_str(), r.paper,
                r.measured, r.unit.c_str());
  }
  for (const Row& r : rows) {
    json()
        .field("label", r.label)
        .field("paper", r.paper)
        .field("measured", r.measured)
        .field("unit", r.unit)
        .emit();
  }
}

}  // namespace bench
