file(REMOVE_RECURSE
  "CMakeFiles/bench_capability_matrix.dir/bench_capability_matrix.cpp.o"
  "CMakeFiles/bench_capability_matrix.dir/bench_capability_matrix.cpp.o.d"
  "bench_capability_matrix"
  "bench_capability_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_capability_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
