# Empty dependencies file for bench_capability_matrix.
# This may be replaced when dependencies are built.
