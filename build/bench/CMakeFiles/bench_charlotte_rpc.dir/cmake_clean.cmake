file(REMOVE_RECURSE
  "CMakeFiles/bench_charlotte_rpc.dir/bench_charlotte_rpc.cpp.o"
  "CMakeFiles/bench_charlotte_rpc.dir/bench_charlotte_rpc.cpp.o.d"
  "bench_charlotte_rpc"
  "bench_charlotte_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_charlotte_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
