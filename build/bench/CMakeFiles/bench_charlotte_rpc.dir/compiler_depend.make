# Empty compiler generated dependencies file for bench_charlotte_rpc.
# This may be replaced when dependencies are built.
