file(REMOVE_RECURSE
  "CMakeFiles/bench_chrysalis_rpc.dir/bench_chrysalis_rpc.cpp.o"
  "CMakeFiles/bench_chrysalis_rpc.dir/bench_chrysalis_rpc.cpp.o.d"
  "bench_chrysalis_rpc"
  "bench_chrysalis_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chrysalis_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
