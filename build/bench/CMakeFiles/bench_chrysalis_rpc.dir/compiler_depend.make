# Empty compiler generated dependencies file for bench_chrysalis_rpc.
# This may be replaced when dependencies are built.
