file(REMOVE_RECURSE
  "CMakeFiles/bench_code_metrics.dir/bench_code_metrics.cpp.o"
  "CMakeFiles/bench_code_metrics.dir/bench_code_metrics.cpp.o.d"
  "bench_code_metrics"
  "bench_code_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_code_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
