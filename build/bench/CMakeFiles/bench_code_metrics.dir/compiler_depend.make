# Empty compiler generated dependencies file for bench_code_metrics.
# This may be replaced when dependencies are built.
