file(REMOVE_RECURSE
  "CMakeFiles/bench_enclosure_protocol.dir/bench_enclosure_protocol.cpp.o"
  "CMakeFiles/bench_enclosure_protocol.dir/bench_enclosure_protocol.cpp.o.d"
  "bench_enclosure_protocol"
  "bench_enclosure_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_enclosure_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
