# Empty compiler generated dependencies file for bench_enclosure_protocol.
# This may be replaced when dependencies are built.
