file(REMOVE_RECURSE
  "CMakeFiles/bench_link_move.dir/bench_link_move.cpp.o"
  "CMakeFiles/bench_link_move.dir/bench_link_move.cpp.o.d"
  "bench_link_move"
  "bench_link_move.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_link_move.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
