# Empty compiler generated dependencies file for bench_link_move.
# This may be replaced when dependencies are built.
