
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_soda_hints.cpp" "bench/CMakeFiles/bench_soda_hints.dir/bench_soda_hints.cpp.o" "gcc" "bench/CMakeFiles/bench_soda_hints.dir/bench_soda_hints.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lynx/CMakeFiles/relynx_lynx.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/relynx_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/charlotte/CMakeFiles/relynx_charlotte.dir/DependInfo.cmake"
  "/root/repo/build/src/soda/CMakeFiles/relynx_soda.dir/DependInfo.cmake"
  "/root/repo/build/src/chrysalis/CMakeFiles/relynx_chrysalis.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/relynx_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/relynx_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
