file(REMOVE_RECURSE
  "CMakeFiles/bench_soda_hints.dir/bench_soda_hints.cpp.o"
  "CMakeFiles/bench_soda_hints.dir/bench_soda_hints.cpp.o.d"
  "bench_soda_hints"
  "bench_soda_hints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_soda_hints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
