# Empty compiler generated dependencies file for bench_soda_hints.
# This may be replaced when dependencies are built.
