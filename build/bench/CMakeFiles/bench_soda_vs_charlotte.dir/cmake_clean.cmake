file(REMOVE_RECURSE
  "CMakeFiles/bench_soda_vs_charlotte.dir/bench_soda_vs_charlotte.cpp.o"
  "CMakeFiles/bench_soda_vs_charlotte.dir/bench_soda_vs_charlotte.cpp.o.d"
  "bench_soda_vs_charlotte"
  "bench_soda_vs_charlotte.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_soda_vs_charlotte.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
