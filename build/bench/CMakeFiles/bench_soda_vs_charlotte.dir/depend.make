# Empty dependencies file for bench_soda_vs_charlotte.
# This may be replaced when dependencies are built.
