file(REMOVE_RECURSE
  "CMakeFiles/bench_unwanted_messages.dir/bench_unwanted_messages.cpp.o"
  "CMakeFiles/bench_unwanted_messages.dir/bench_unwanted_messages.cpp.o.d"
  "bench_unwanted_messages"
  "bench_unwanted_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_unwanted_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
