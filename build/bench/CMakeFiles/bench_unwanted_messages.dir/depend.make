# Empty dependencies file for bench_unwanted_messages.
# This may be replaced when dependencies are built.
