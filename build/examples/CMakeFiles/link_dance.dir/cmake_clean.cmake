file(REMOVE_RECURSE
  "CMakeFiles/link_dance.dir/link_dance.cpp.o"
  "CMakeFiles/link_dance.dir/link_dance.cpp.o.d"
  "link_dance"
  "link_dance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_dance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
