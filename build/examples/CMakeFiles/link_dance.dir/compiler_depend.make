# Empty compiler generated dependencies file for link_dance.
# This may be replaced when dependencies are built.
