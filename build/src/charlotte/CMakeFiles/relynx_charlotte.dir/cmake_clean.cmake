file(REMOVE_RECURSE
  "CMakeFiles/relynx_charlotte.dir/kernel.cpp.o"
  "CMakeFiles/relynx_charlotte.dir/kernel.cpp.o.d"
  "librelynx_charlotte.a"
  "librelynx_charlotte.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relynx_charlotte.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
