file(REMOVE_RECURSE
  "librelynx_charlotte.a"
)
