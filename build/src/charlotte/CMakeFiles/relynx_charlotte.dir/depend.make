# Empty dependencies file for relynx_charlotte.
# This may be replaced when dependencies are built.
