file(REMOVE_RECURSE
  "CMakeFiles/relynx_chrysalis.dir/kernel.cpp.o"
  "CMakeFiles/relynx_chrysalis.dir/kernel.cpp.o.d"
  "librelynx_chrysalis.a"
  "librelynx_chrysalis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relynx_chrysalis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
