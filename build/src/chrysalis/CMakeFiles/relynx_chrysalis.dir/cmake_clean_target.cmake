file(REMOVE_RECURSE
  "librelynx_chrysalis.a"
)
