# Empty dependencies file for relynx_chrysalis.
# This may be replaced when dependencies are built.
