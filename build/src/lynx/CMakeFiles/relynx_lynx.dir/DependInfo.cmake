
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lynx/charlotte_backend.cpp" "src/lynx/CMakeFiles/relynx_lynx.dir/charlotte_backend.cpp.o" "gcc" "src/lynx/CMakeFiles/relynx_lynx.dir/charlotte_backend.cpp.o.d"
  "/root/repo/src/lynx/chrysalis_backend.cpp" "src/lynx/CMakeFiles/relynx_lynx.dir/chrysalis_backend.cpp.o" "gcc" "src/lynx/CMakeFiles/relynx_lynx.dir/chrysalis_backend.cpp.o.d"
  "/root/repo/src/lynx/message.cpp" "src/lynx/CMakeFiles/relynx_lynx.dir/message.cpp.o" "gcc" "src/lynx/CMakeFiles/relynx_lynx.dir/message.cpp.o.d"
  "/root/repo/src/lynx/runtime.cpp" "src/lynx/CMakeFiles/relynx_lynx.dir/runtime.cpp.o" "gcc" "src/lynx/CMakeFiles/relynx_lynx.dir/runtime.cpp.o.d"
  "/root/repo/src/lynx/soda_backend.cpp" "src/lynx/CMakeFiles/relynx_lynx.dir/soda_backend.cpp.o" "gcc" "src/lynx/CMakeFiles/relynx_lynx.dir/soda_backend.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/relynx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/relynx_net.dir/DependInfo.cmake"
  "/root/repo/build/src/charlotte/CMakeFiles/relynx_charlotte.dir/DependInfo.cmake"
  "/root/repo/build/src/soda/CMakeFiles/relynx_soda.dir/DependInfo.cmake"
  "/root/repo/build/src/chrysalis/CMakeFiles/relynx_chrysalis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
