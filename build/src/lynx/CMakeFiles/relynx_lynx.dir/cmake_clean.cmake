file(REMOVE_RECURSE
  "CMakeFiles/relynx_lynx.dir/charlotte_backend.cpp.o"
  "CMakeFiles/relynx_lynx.dir/charlotte_backend.cpp.o.d"
  "CMakeFiles/relynx_lynx.dir/chrysalis_backend.cpp.o"
  "CMakeFiles/relynx_lynx.dir/chrysalis_backend.cpp.o.d"
  "CMakeFiles/relynx_lynx.dir/message.cpp.o"
  "CMakeFiles/relynx_lynx.dir/message.cpp.o.d"
  "CMakeFiles/relynx_lynx.dir/runtime.cpp.o"
  "CMakeFiles/relynx_lynx.dir/runtime.cpp.o.d"
  "CMakeFiles/relynx_lynx.dir/soda_backend.cpp.o"
  "CMakeFiles/relynx_lynx.dir/soda_backend.cpp.o.d"
  "librelynx_lynx.a"
  "librelynx_lynx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relynx_lynx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
