file(REMOVE_RECURSE
  "librelynx_lynx.a"
)
