# Empty compiler generated dependencies file for relynx_lynx.
# This may be replaced when dependencies are built.
