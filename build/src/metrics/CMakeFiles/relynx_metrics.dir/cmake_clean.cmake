file(REMOVE_RECURSE
  "CMakeFiles/relynx_metrics.dir/complexity.cpp.o"
  "CMakeFiles/relynx_metrics.dir/complexity.cpp.o.d"
  "librelynx_metrics.a"
  "librelynx_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relynx_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
