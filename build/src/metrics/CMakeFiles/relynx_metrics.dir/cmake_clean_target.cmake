file(REMOVE_RECURSE
  "librelynx_metrics.a"
)
