# Empty dependencies file for relynx_metrics.
# This may be replaced when dependencies are built.
