
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/csma_bus.cpp" "src/net/CMakeFiles/relynx_net.dir/csma_bus.cpp.o" "gcc" "src/net/CMakeFiles/relynx_net.dir/csma_bus.cpp.o.d"
  "/root/repo/src/net/token_ring.cpp" "src/net/CMakeFiles/relynx_net.dir/token_ring.cpp.o" "gcc" "src/net/CMakeFiles/relynx_net.dir/token_ring.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/relynx_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
