file(REMOVE_RECURSE
  "CMakeFiles/relynx_net.dir/csma_bus.cpp.o"
  "CMakeFiles/relynx_net.dir/csma_bus.cpp.o.d"
  "CMakeFiles/relynx_net.dir/token_ring.cpp.o"
  "CMakeFiles/relynx_net.dir/token_ring.cpp.o.d"
  "librelynx_net.a"
  "librelynx_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relynx_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
