file(REMOVE_RECURSE
  "librelynx_net.a"
)
