# Empty dependencies file for relynx_net.
# This may be replaced when dependencies are built.
