file(REMOVE_RECURSE
  "CMakeFiles/relynx_sim.dir/engine.cpp.o"
  "CMakeFiles/relynx_sim.dir/engine.cpp.o.d"
  "librelynx_sim.a"
  "librelynx_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relynx_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
