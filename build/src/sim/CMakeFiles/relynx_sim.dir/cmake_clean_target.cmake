file(REMOVE_RECURSE
  "librelynx_sim.a"
)
