# Empty compiler generated dependencies file for relynx_sim.
# This may be replaced when dependencies are built.
