file(REMOVE_RECURSE
  "CMakeFiles/relynx_soda.dir/kernel.cpp.o"
  "CMakeFiles/relynx_soda.dir/kernel.cpp.o.d"
  "librelynx_soda.a"
  "librelynx_soda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relynx_soda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
