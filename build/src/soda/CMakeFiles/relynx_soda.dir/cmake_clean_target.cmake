file(REMOVE_RECURSE
  "librelynx_soda.a"
)
