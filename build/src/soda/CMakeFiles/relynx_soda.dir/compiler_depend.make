# Empty compiler generated dependencies file for relynx_soda.
# This may be replaced when dependencies are built.
