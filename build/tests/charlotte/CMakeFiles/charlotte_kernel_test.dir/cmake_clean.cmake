file(REMOVE_RECURSE
  "CMakeFiles/charlotte_kernel_test.dir/kernel_test.cpp.o"
  "CMakeFiles/charlotte_kernel_test.dir/kernel_test.cpp.o.d"
  "charlotte_kernel_test"
  "charlotte_kernel_test.pdb"
  "charlotte_kernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charlotte_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
