# Empty dependencies file for charlotte_kernel_test.
# This may be replaced when dependencies are built.
