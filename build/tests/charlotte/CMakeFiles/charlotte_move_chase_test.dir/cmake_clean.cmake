file(REMOVE_RECURSE
  "CMakeFiles/charlotte_move_chase_test.dir/move_chase_test.cpp.o"
  "CMakeFiles/charlotte_move_chase_test.dir/move_chase_test.cpp.o.d"
  "charlotte_move_chase_test"
  "charlotte_move_chase_test.pdb"
  "charlotte_move_chase_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charlotte_move_chase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
