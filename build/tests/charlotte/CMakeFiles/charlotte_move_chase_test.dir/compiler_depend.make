# Empty compiler generated dependencies file for charlotte_move_chase_test.
# This may be replaced when dependencies are built.
