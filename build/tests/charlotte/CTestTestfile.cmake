# CMake generated Testfile for 
# Source directory: /root/repo/tests/charlotte
# Build directory: /root/repo/build/tests/charlotte
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/charlotte/charlotte_kernel_test[1]_include.cmake")
include("/root/repo/build/tests/charlotte/charlotte_move_chase_test[1]_include.cmake")
