file(REMOVE_RECURSE
  "CMakeFiles/chrysalis_kernel_test.dir/kernel_test.cpp.o"
  "CMakeFiles/chrysalis_kernel_test.dir/kernel_test.cpp.o.d"
  "chrysalis_kernel_test"
  "chrysalis_kernel_test.pdb"
  "chrysalis_kernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chrysalis_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
