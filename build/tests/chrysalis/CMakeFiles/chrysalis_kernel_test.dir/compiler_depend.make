# Empty compiler generated dependencies file for chrysalis_kernel_test.
# This may be replaced when dependencies are built.
