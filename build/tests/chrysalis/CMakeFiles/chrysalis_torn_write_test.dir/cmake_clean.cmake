file(REMOVE_RECURSE
  "CMakeFiles/chrysalis_torn_write_test.dir/torn_write_test.cpp.o"
  "CMakeFiles/chrysalis_torn_write_test.dir/torn_write_test.cpp.o.d"
  "chrysalis_torn_write_test"
  "chrysalis_torn_write_test.pdb"
  "chrysalis_torn_write_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chrysalis_torn_write_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
