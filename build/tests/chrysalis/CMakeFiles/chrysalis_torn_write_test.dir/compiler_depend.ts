# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for chrysalis_torn_write_test.
