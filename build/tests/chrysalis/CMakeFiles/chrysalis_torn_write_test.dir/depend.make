# Empty dependencies file for chrysalis_torn_write_test.
# This may be replaced when dependencies are built.
