# CMake generated Testfile for 
# Source directory: /root/repo/tests/chrysalis
# Build directory: /root/repo/build/tests/chrysalis
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/chrysalis/chrysalis_kernel_test[1]_include.cmake")
include("/root/repo/build/tests/chrysalis/chrysalis_torn_write_test[1]_include.cmake")
