file(REMOVE_RECURSE
  "CMakeFiles/lynx_charlotte_rt_test.dir/charlotte_rt_test.cpp.o"
  "CMakeFiles/lynx_charlotte_rt_test.dir/charlotte_rt_test.cpp.o.d"
  "lynx_charlotte_rt_test"
  "lynx_charlotte_rt_test.pdb"
  "lynx_charlotte_rt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lynx_charlotte_rt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
