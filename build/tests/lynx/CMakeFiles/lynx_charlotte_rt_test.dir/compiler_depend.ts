# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for lynx_charlotte_rt_test.
