# Empty dependencies file for lynx_charlotte_rt_test.
# This may be replaced when dependencies are built.
