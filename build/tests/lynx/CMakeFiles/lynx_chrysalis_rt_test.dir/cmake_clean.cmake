file(REMOVE_RECURSE
  "CMakeFiles/lynx_chrysalis_rt_test.dir/chrysalis_rt_test.cpp.o"
  "CMakeFiles/lynx_chrysalis_rt_test.dir/chrysalis_rt_test.cpp.o.d"
  "lynx_chrysalis_rt_test"
  "lynx_chrysalis_rt_test.pdb"
  "lynx_chrysalis_rt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lynx_chrysalis_rt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
