# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for lynx_chrysalis_rt_test.
