file(REMOVE_RECURSE
  "CMakeFiles/lynx_message_test.dir/message_test.cpp.o"
  "CMakeFiles/lynx_message_test.dir/message_test.cpp.o.d"
  "lynx_message_test"
  "lynx_message_test.pdb"
  "lynx_message_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lynx_message_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
