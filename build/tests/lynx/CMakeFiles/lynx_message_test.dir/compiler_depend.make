# Empty compiler generated dependencies file for lynx_message_test.
# This may be replaced when dependencies are built.
