file(REMOVE_RECURSE
  "CMakeFiles/lynx_runtime_semantics_test.dir/runtime_semantics_test.cpp.o"
  "CMakeFiles/lynx_runtime_semantics_test.dir/runtime_semantics_test.cpp.o.d"
  "lynx_runtime_semantics_test"
  "lynx_runtime_semantics_test.pdb"
  "lynx_runtime_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lynx_runtime_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
