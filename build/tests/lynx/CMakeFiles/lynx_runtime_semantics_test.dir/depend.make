# Empty dependencies file for lynx_runtime_semantics_test.
# This may be replaced when dependencies are built.
