file(REMOVE_RECURSE
  "CMakeFiles/lynx_soda_freeze_test.dir/soda_freeze_test.cpp.o"
  "CMakeFiles/lynx_soda_freeze_test.dir/soda_freeze_test.cpp.o.d"
  "lynx_soda_freeze_test"
  "lynx_soda_freeze_test.pdb"
  "lynx_soda_freeze_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lynx_soda_freeze_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
