# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for lynx_soda_freeze_test.
