# Empty dependencies file for lynx_soda_freeze_test.
# This may be replaced when dependencies are built.
