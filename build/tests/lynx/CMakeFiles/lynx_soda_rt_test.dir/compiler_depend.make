# Empty compiler generated dependencies file for lynx_soda_rt_test.
# This may be replaced when dependencies are built.
