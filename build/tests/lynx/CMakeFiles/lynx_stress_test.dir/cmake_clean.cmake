file(REMOVE_RECURSE
  "CMakeFiles/lynx_stress_test.dir/stress_test.cpp.o"
  "CMakeFiles/lynx_stress_test.dir/stress_test.cpp.o.d"
  "lynx_stress_test"
  "lynx_stress_test.pdb"
  "lynx_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lynx_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
