# Empty dependencies file for lynx_stress_test.
# This may be replaced when dependencies are built.
