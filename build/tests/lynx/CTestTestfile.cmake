# CMake generated Testfile for 
# Source directory: /root/repo/tests/lynx
# Build directory: /root/repo/build/tests/lynx
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/lynx/lynx_message_test[1]_include.cmake")
include("/root/repo/build/tests/lynx/lynx_chrysalis_rt_test[1]_include.cmake")
include("/root/repo/build/tests/lynx/lynx_charlotte_rt_test[1]_include.cmake")
include("/root/repo/build/tests/lynx/lynx_soda_rt_test[1]_include.cmake")
include("/root/repo/build/tests/lynx/lynx_runtime_semantics_test[1]_include.cmake")
include("/root/repo/build/tests/lynx/lynx_stress_test[1]_include.cmake")
include("/root/repo/build/tests/lynx/lynx_soda_freeze_test[1]_include.cmake")
