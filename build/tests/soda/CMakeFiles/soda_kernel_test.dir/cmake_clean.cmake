file(REMOVE_RECURSE
  "CMakeFiles/soda_kernel_test.dir/kernel_test.cpp.o"
  "CMakeFiles/soda_kernel_test.dir/kernel_test.cpp.o.d"
  "soda_kernel_test"
  "soda_kernel_test.pdb"
  "soda_kernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soda_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
