# Empty dependencies file for soda_kernel_test.
# This may be replaced when dependencies are built.
