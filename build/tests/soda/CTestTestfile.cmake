# CMake generated Testfile for 
# Source directory: /root/repo/tests/soda
# Build directory: /root/repo/build/tests/soda
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/soda/soda_kernel_test[1]_include.cmake")
