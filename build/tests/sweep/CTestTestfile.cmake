# CMake generated Testfile for 
# Source directory: /root/repo/tests/sweep
# Build directory: /root/repo/build/tests/sweep
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sweep/sweep_test[1]_include.cmake")
