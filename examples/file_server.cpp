// A long-lived file server with multiple clients — the paper's
// motivating workload ("interaction ... between user programs and
// long-lived system servers", §2).
//
// The server keeps an in-memory file system and serves open / read /
// write / close.  Each "open" mints a fresh link and ENCLOSES one end
// in the reply: the per-file connection travels back to the client as a
// moved link end, after which the client talks to the file directly —
// link movement as an access-control/capability mechanism.
//
// Runs on the Charlotte substrate to show the whole retry/forbid-era
// machinery carrying a real workload.
#include <cstdio>
#include <map>
#include <string>

#include "lynx/lynx.hpp"
#include "sim/engine.hpp"

namespace {

using lynx::Incoming;
using lynx::LinkHandle;
using lynx::Message;
using lynx::ThreadCtx;

struct FileSystem {
  std::map<std::string, std::string> files;
  int opens = 0;
  int reads = 0;
  int writes = 0;
};

// Serves one opened file over a dedicated link until the client
// destroys it.
sim::Task<> file_session(ThreadCtx& ctx, LinkHandle link, std::string name,
                         FileSystem* fs) {
  ctx.enable_requests(link);
  for (;;) {
    Incoming in;
    try {
      in = co_await ctx.receive();
    } catch (const lynx::LynxError&) {
      co_return;  // client closed (destroyed) the file link
    }
    if (in.msg.op == "read") {
      ++fs->reads;
      Message reply;
      reply.args.emplace_back(fs->files[name]);
      co_await ctx.reply(in, std::move(reply));
    } else if (in.msg.op == "write") {
      ++fs->writes;
      fs->files[name] = std::get<std::string>(in.msg.args.at(0));
      Message reply;
      reply.args.emplace_back(std::int64_t(fs->files[name].size()));
      co_await ctx.reply(in, std::move(reply));
    } else if (in.msg.op == "close") {
      Message reply;
      co_await ctx.reply(in, std::move(reply));
      co_return;
    }
  }
}

// The dispatch thread: serves "open" on the well-known link, minting a
// per-file link and handing one end to the client.
sim::Task<> server_main(ThreadCtx& ctx, LinkHandle front, int expected_opens,
                        FileSystem* fs) {
  ctx.enable_requests(front);
  for (int i = 0; i < expected_opens; ++i) {
    Incoming in = co_await ctx.receive();
    RELYNX_ASSERT(in.msg.op == "open");
    const auto name = std::get<std::string>(in.msg.args.at(0));
    ++fs->opens;

    lynx::LocalLinkPair session = co_await ctx.new_link();
    // serve the file on a fresh thread; the client gets the other end
    ctx.process().spawn_thread(
        "file:" + name, [link = session.end1, name, fs](ThreadCtx& c) {
          return file_session(c, link, name, fs);
        });
    Message reply;
    reply.args.emplace_back(session.end2);  // the moved capability
    co_await ctx.reply(in, std::move(reply));
  }
}

sim::Task<> client_main(ThreadCtx& ctx, LinkHandle server, std::string who,
                        std::string file) {
  // open
  Message open_req = lynx::make_message("open", {file});
  Message opened = co_await ctx.call(server, std::move(open_req));
  LinkHandle f = std::get<LinkHandle>(opened.args.at(0));
  std::printf("[%8.1f ms] %s: opened '%s'\n",
              sim::to_msec(ctx.engine().now()), who.c_str(), file.c_str());

  // write then read back
  Message write_req =
      lynx::make_message("write", {who + " was here (" + file + ")"});
  Message wrote = co_await ctx.call(f, std::move(write_req));
  std::printf("[%8.1f ms] %s: wrote %lld bytes\n",
              sim::to_msec(ctx.engine().now()), who.c_str(),
              static_cast<long long>(std::get<std::int64_t>(wrote.args.at(0))));

  Message read_req = lynx::make_message("read", {});
  Message content = co_await ctx.call(f, std::move(read_req));
  std::printf("[%8.1f ms] %s: read back \"%s\"\n",
              sim::to_msec(ctx.engine().now()), who.c_str(),
              std::get<std::string>(content.args.at(0)).c_str());

  Message close_req = lynx::make_message("close", {});
  (void)co_await ctx.call(f, std::move(close_req));
  co_await ctx.destroy(f);
}

}  // namespace

int main() {
  sim::Engine engine;
  charlotte::Cluster crystal(engine, 4);

  lynx::Process server(engine, "fileserver",
                       lynx::make_charlotte_backend(crystal, net::NodeId(0)),
                       lynx::vax_runtime_costs());
  lynx::Process alice(engine, "alice",
                      lynx::make_charlotte_backend(crystal, net::NodeId(1)),
                      lynx::vax_runtime_costs());
  lynx::Process bob(engine, "bob",
                    lynx::make_charlotte_backend(crystal, net::NodeId(2)),
                    lynx::vax_runtime_costs());
  server.start();
  alice.start();
  bob.start();

  LinkHandle s_alice, c_alice, s_bob, c_bob;
  engine.spawn("wire", [](lynx::Process* s, lynx::Process* a,
                          lynx::Process* b, LinkHandle* o1, LinkHandle* o2,
                          LinkHandle* o3, LinkHandle* o4) -> sim::Task<> {
    auto [x1, y1] = co_await lynx::CharlotteBackend::connect(*s, *a);
    *o1 = x1;
    *o2 = y1;
    auto [x2, y2] = co_await lynx::CharlotteBackend::connect(*s, *b);
    *o3 = x2;
    *o4 = y2;
  }(&server, &alice, &bob, &s_alice, &c_alice, &s_bob, &c_bob));
  engine.run();

  FileSystem fs;
  // two front doors, one dispatcher thread each
  server.spawn_thread("front-alice", [&](ThreadCtx& ctx) {
    return server_main(ctx, s_alice, 1, &fs);
  });
  server.spawn_thread("front-bob", [&](ThreadCtx& ctx) {
    return server_main(ctx, s_bob, 1, &fs);
  });
  alice.spawn_thread("alice", [&](ThreadCtx& ctx) {
    return client_main(ctx, c_alice, "alice", "notes.txt");
  });
  bob.spawn_thread("bob", [&](ThreadCtx& ctx) {
    return client_main(ctx, c_bob, "bob", "todo.txt");
  });
  engine.run();

  std::printf(
      "\nfile server handled %d opens, %d reads, %d writes in %.1f "
      "simulated ms\n",
      fs.opens, fs.reads, fs.writes, sim::to_msec(engine.now()));
  return 0;
}
