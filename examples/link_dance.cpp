// Figure 1 from the paper, as a runnable program: "link moving at both
// ends".
//
// Processes A and D are connected by link 3.  A passes its end of link 3
// to B (over link 1) at the same time as D passes its end to C (over
// link 2).  Neither mover knows about the other; the far end of each
// moved link "must be oblivious to the move, even if it is currently
// relocating its end as well."  Afterwards what used to connect A to D
// connects B to C, and a message crosses it.
//
// Run it on Charlotte (three-party agreement through the link's home
// kernel) and compare bench_link_move for the same dance on Chrysalis.
#include <cstdio>

#include "lynx/lynx.hpp"
#include "sim/engine.hpp"

namespace {

using lynx::Incoming;
using lynx::LinkHandle;
using lynx::Message;
using lynx::ThreadCtx;

sim::Task<> process_a(ThreadCtx& ctx, LinkHandle link1, LinkHandle link3) {
  std::printf("[%8.1f ms] A: passing my end of link3 to B\n",
              sim::to_msec(ctx.engine().now()));
  Message req = lynx::make_message("take", {link3});
  (void)co_await ctx.call(link1, std::move(req));
  std::printf("[%8.1f ms] A: done — I no longer hold link3\n",
              sim::to_msec(ctx.engine().now()));
}

sim::Task<> process_d(ThreadCtx& ctx, LinkHandle link2, LinkHandle link3) {
  std::printf("[%8.1f ms] D: passing my end of link3 to C\n",
              sim::to_msec(ctx.engine().now()));
  Message req = lynx::make_message("take", {link3});
  (void)co_await ctx.call(link2, std::move(req));
  std::printf("[%8.1f ms] D: done — I no longer hold link3\n",
              sim::to_msec(ctx.engine().now()));
}

sim::Task<> process_b(ThreadCtx& ctx, LinkHandle link1) {
  ctx.enable_requests(link1);
  Incoming in = co_await ctx.receive();
  LinkHandle mine = std::get<LinkHandle>(in.msg.args.at(0));
  Message ok;
  co_await ctx.reply(in, std::move(ok));
  std::printf("[%8.1f ms] B: received an end of link3; speaking into it\n",
              sim::to_msec(ctx.engine().now()));
  Message hello = lynx::make_message("hello", {std::string("from B")});
  Message reply = co_await ctx.call(mine, std::move(hello));
  std::printf("[%8.1f ms] B: link3 answered: \"%s\"\n",
              sim::to_msec(ctx.engine().now()),
              std::get<std::string>(reply.args.at(0)).c_str());
}

sim::Task<> process_c(ThreadCtx& ctx, LinkHandle link2) {
  ctx.enable_requests(link2);
  Incoming in = co_await ctx.receive();
  LinkHandle mine = std::get<LinkHandle>(in.msg.args.at(0));
  Message ok;
  co_await ctx.reply(in, std::move(ok));
  std::printf("[%8.1f ms] C: received an end of link3; listening\n",
              sim::to_msec(ctx.engine().now()));
  ctx.enable_requests(mine);
  Incoming hello = co_await ctx.receive();
  std::printf("[%8.1f ms] C: heard \"%s\" %s\n",
              sim::to_msec(ctx.engine().now()), hello.msg.op.c_str(),
              std::get<std::string>(hello.msg.args.at(0)).c_str());
  Message reply;
  reply.args.emplace_back(std::string("hello back from C"));
  co_await ctx.reply(hello, std::move(reply));
}

}  // namespace

int main() {
  sim::Engine engine;
  charlotte::Cluster crystal(engine, 4);

  auto mk = [&](const char* name, std::uint32_t node) {
    auto p = std::make_unique<lynx::Process>(
        engine, name, lynx::make_charlotte_backend(crystal, net::NodeId(node)),
        lynx::vax_runtime_costs());
    p->start();
    return p;
  };
  auto a = mk("A", 0), b = mk("B", 1), c = mk("C", 2), d = mk("D", 3);

  LinkHandle l1a, l1b, l2d, l2c, l3a, l3d;
  engine.spawn("wire", [](lynx::Process* pa, lynx::Process* pb,
                          lynx::Process* pc, lynx::Process* pd,
                          LinkHandle* o1, LinkHandle* o2, LinkHandle* o3,
                          LinkHandle* o4, LinkHandle* o5,
                          LinkHandle* o6) -> sim::Task<> {
    auto [x1, y1] = co_await lynx::CharlotteBackend::connect(*pa, *pb);
    *o1 = x1;
    *o2 = y1;
    auto [x2, y2] = co_await lynx::CharlotteBackend::connect(*pd, *pc);
    *o3 = x2;
    *o4 = y2;
    auto [x3, y3] = co_await lynx::CharlotteBackend::connect(*pa, *pd);
    *o5 = x3;
    *o6 = y3;
  }(a.get(), b.get(), c.get(), d.get(), &l1a, &l1b, &l2d, &l2c, &l3a, &l3d));
  engine.run();

  std::printf("figure 1: A--link3--D; A ships to B while D ships to C\n\n");
  a->spawn_thread("A", [&](ThreadCtx& ctx) { return process_a(ctx, l1a, l3a); });
  d->spawn_thread("D", [&](ThreadCtx& ctx) { return process_d(ctx, l2d, l3d); });
  b->spawn_thread("B", [&](ThreadCtx& ctx) { return process_b(ctx, l1b); });
  c->spawn_thread("C", [&](ThreadCtx& ctx) { return process_c(ctx, l2c); });
  engine.run();

  const std::size_t failures =
      a->thread_failures().size() + b->thread_failures().size() +
      c->thread_failures().size() + d->thread_failures().size();
  std::printf(
      "\nlink3 now connects B to C (%zu thread failures), with %llu "
      "kernel move-protocol frames spent on agreement\n",
      failures,
      static_cast<unsigned long long>(crystal.total_move_frames()));
  return failures == 0 ? 0 : 1;
}
