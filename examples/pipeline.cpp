// A reconfigurable processing pipeline over SODA.
//
// LYNX's selling point (paper §2): "LYNX extends the advantages of
// high-level communication facilities to processes designed in
// isolation" — processes can be rewired at run time by moving link
// ends.  Here a coordinator builds a 3-stage pipeline by creating links
// and shipping their ends to independently-written stage processes,
// pushes work through, then REVERSES the pipeline order at run time by
// moving the same ends again.
//
// The run is recorded: each pushed item gets one TraceId, every stage
// joins the item's causal chain via ThreadCtx::set_trace_context before
// forwarding, and at the end the example prints job0's chain — one
// message followed across all four processes, hop by hop, down to the
// wire frames.
#include <cstdio>
#include <string>

#include "lynx/lynx.hpp"
#include "sim/engine.hpp"
#include "trace/trace.hpp"

namespace {

using lynx::Incoming;
using lynx::LinkHandle;
using lynx::Message;
using lynx::ThreadCtx;

// A stage transforms a string and forwards it downstream.  It learns its
// input and output links at run time via "configure" operations on the
// control link, processes until "drain", and then can be reconfigured.
sim::Task<> stage(ThreadCtx& ctx, LinkHandle control, std::string tag,
                  int rounds_per_config, int configs) {
  ctx.enable_requests(control);
  for (int cfg = 0; cfg < configs; ++cfg) {
    Incoming conf = co_await ctx.receive();
    RELYNX_ASSERT(conf.msg.op == "configure");
    LinkHandle in_link = std::get<LinkHandle>(conf.msg.args.at(0));
    LinkHandle out_link = std::get<LinkHandle>(conf.msg.args.at(1));
    Message ok;
    co_await ctx.reply(conf, std::move(ok));

    ctx.enable_requests(in_link);
    for (int i = 0; i < rounds_per_config; ++i) {
      Incoming item = co_await ctx.receive();
      std::string payload = std::get<std::string>(item.msg.args.at(0));
      Message ack;
      co_await ctx.reply(item, std::move(ack));
      payload += ">" + tag;
      Message fwd = lynx::make_message("item", {payload});
      // Join the item's causal chain so the forwarding call — and its
      // wire frames — carry the same TraceId the coordinator minted.
      ctx.set_trace_context(item.trace);
      (void)co_await ctx.call(out_link, std::move(fwd));
      ctx.set_trace_context(0);
    }
    ctx.disable_requests(in_link);
    // hand the stage links back to the coordinator for rewiring
    Message give = lynx::make_message("links", {in_link, out_link});
    (void)co_await ctx.call(control, std::move(give));
  }
}

struct Coordinator {
  ThreadCtx* ctx = nullptr;
  std::vector<LinkHandle> controls;  // to each stage
};

sim::Task<> coordinator(ThreadCtx& ctx, std::vector<LinkHandle> controls,
                        int rounds, std::uint64_t* job0_chain) {
  const int n = static_cast<int>(controls.size());
  // Build the forward pipeline: source -> s0 -> s1 -> s2 -> sink.
  // The coordinator is both source and sink.
  for (int config = 0; config < 2; ++config) {
    // links between coordinator/stages: n+1 links
    std::vector<lynx::LocalLinkPair> hops;
    for (int i = 0; i <= n; ++i) hops.push_back(co_await ctx.new_link());

    // stage order: forward on config 0, reversed on config 1
    for (int slot = 0; slot < n; ++slot) {
      const int stage_idx = (config == 0) ? slot : (n - 1 - slot);
      Message conf = lynx::make_message(
          "configure", {hops[static_cast<std::size_t>(slot)].end2,
                        hops[static_cast<std::size_t>(slot) + 1].end1});
      (void)co_await ctx.call(controls[static_cast<std::size_t>(stage_idx)],
                              std::move(conf));
    }

    // push items in at hop 0, collect at hop n
    LinkHandle source = hops[0].end1;
    LinkHandle sink = hops[static_cast<std::size_t>(n)].end2;
    ctx.enable_requests(sink);
    for (int i = 0; i < rounds; ++i) {
      Message item = lynx::make_message(
          "item", {std::string("job") + std::to_string(i)});
      // One TraceId per pushed item; stages propagate it downstream.
      std::uint64_t chain = 0;
      if (auto* rec = trace::get(ctx.engine())) chain = rec->new_trace();
      if (config == 0 && i == 0) *job0_chain = chain;
      ctx.set_trace_context(chain);
      (void)co_await ctx.call(source, std::move(item));
      ctx.set_trace_context(0);
      Incoming out = co_await ctx.receive();
      std::printf("[%9.1f ms] config %d delivered: %s\n",
                  sim::to_msec(ctx.engine().now()), config,
                  std::get<std::string>(out.msg.args.at(0)).c_str());
      Message ack;
      co_await ctx.reply(out, std::move(ack));
    }
    ctx.disable_requests(sink);

    // collect the stage ends back (each stage returns its two ends)
    for (int slot = 0; slot < n; ++slot) {
      const int stage_idx = (config == 0) ? slot : (n - 1 - slot);
      ctx.enable_requests(controls[static_cast<std::size_t>(stage_idx)]);
      Incoming links = co_await ctx.receive();
      Message ok;
      co_await ctx.reply(links, std::move(ok));
      ctx.disable_requests(controls[static_cast<std::size_t>(stage_idx)]);
    }
    co_await ctx.destroy(source);
    co_await ctx.destroy(sink);
  }
}

}  // namespace

int main() {
  sim::Engine engine;
  trace::Recorder recorder(engine);
  lynx::SodaDirectory directory;
  net::CsmaBusParams bus;
  bus.broadcast_drop_prob = 0.0;
  soda::Network network(engine, 8, sim::Rng(7), bus);

  lynx::Process coord(engine, "coord",
                      lynx::make_soda_backend(network, directory,
                                              net::NodeId(0)),
                      lynx::pdp11_runtime_costs());
  std::vector<std::unique_ptr<lynx::Process>> stages;
  const char* tags[3] = {"parse", "transform", "render"};
  for (int i = 0; i < 3; ++i) {
    stages.push_back(std::make_unique<lynx::Process>(
        engine, tags[i],
        lynx::make_soda_backend(network, directory,
                                net::NodeId(static_cast<std::uint32_t>(i) + 1)),
        lynx::pdp11_runtime_costs()));
  }
  coord.start();
  for (auto& s : stages) s->start();

  std::vector<LinkHandle> controls(3);
  std::vector<LinkHandle> stage_controls(3);
  engine.spawn("wire", [](lynx::Process* c,
                          std::vector<std::unique_ptr<lynx::Process>>* ss,
                          std::vector<LinkHandle>* cc,
                          std::vector<LinkHandle>* sc) -> sim::Task<> {
    for (std::size_t i = 0; i < ss->size(); ++i) {
      auto [a, b] = co_await lynx::SodaBackend::connect(*c, *(*ss)[i]);
      (*cc)[i] = a;
      (*sc)[i] = b;
    }
  }(&coord, &stages, &controls, &stage_controls));
  engine.run();

  for (int i = 0; i < 3; ++i) {
    stages[static_cast<std::size_t>(i)]->spawn_thread(
        "stage", [&, i](ThreadCtx& ctx) {
          return stage(ctx, stage_controls[static_cast<std::size_t>(i)],
                       tags[i], 3, 2);
        });
  }
  std::uint64_t job0_chain = 0;
  coord.spawn_thread("coordinator", [&](ThreadCtx& ctx) {
    return coordinator(ctx, controls, 3, &job0_chain);
  });
  engine.run();

  std::printf("\npipeline ran two configurations (forward and reversed) in "
              "%.1f simulated ms\n",
              sim::to_msec(engine.now()));

  // Follow job0 across the three stage processes and back: every record
  // below carries the single TraceId minted when the item was pushed.
  std::printf("\ncausal chain of job0 (trace %llu):\n",
              static_cast<unsigned long long>(job0_chain));
  for (const trace::Record& r : recorder.snapshot()) {
    const bool labelled = r.kind == trace::Kind::kSpanBegin ||
                          r.kind == trace::Kind::kInstant;
    if (!labelled || r.trace != job0_chain) continue;
    std::printf("  [%9.3f ms] node %u  %-8s %s\n", sim::to_msec(r.at),
                r.node, recorder.track_name(r.track).c_str(),
                recorder.label_name(r.label).c_str());
  }
  return 0;
}
