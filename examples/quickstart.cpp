// Quickstart: two LYNX processes exchanging remote operations over the
// simulated Chrysalis substrate (BBN Butterfly).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Pass --trace-out=FILE to record the run and export it in Chrome
// trace-event format — open the file at https://ui.perfetto.dev to see
// every operation decomposed into gather / send / wait / scatter spans.
//
// The structure mirrors a minimal LYNX program: a server process with an
// open request queue serving "add" operations, and a client process
// connecting to it.  Swap the backend construction (and the connect
// call) to run the same program on Charlotte or SODA.
#include <cstdio>
#include <string>

#include "lynx/lynx.hpp"
#include "sim/engine.hpp"
#include "trace/perfetto.hpp"
#include "trace/trace.hpp"

namespace {

using lynx::Incoming;
using lynx::LinkHandle;
using lynx::Message;
using lynx::ThreadCtx;

// The server thread: open the request queue, serve five "add"
// operations, reply with the sum.
sim::Task<> server_thread(ThreadCtx& ctx, LinkHandle link) {
  ctx.enable_requests(link);
  for (int i = 0; i < 5; ++i) {
    Incoming in = co_await ctx.receive();
    const auto a = std::get<std::int64_t>(in.msg.args.at(0));
    const auto b = std::get<std::int64_t>(in.msg.args.at(1));
    std::printf("[%8.3f ms] server: %s(%lld, %lld)\n",
                sim::to_msec(ctx.engine().now()), in.msg.op.c_str(),
                static_cast<long long>(a), static_cast<long long>(b));
    Message reply;
    reply.args.emplace_back(a + b);
    co_await ctx.reply(in, std::move(reply));
  }
}

// The client thread: five remote "add" calls.
sim::Task<> client_thread(ThreadCtx& ctx, LinkHandle link) {
  for (std::int64_t i = 0; i < 5; ++i) {
    Message request = lynx::make_message("add", {i, i * 10});
    Message reply = co_await ctx.call(link, std::move(request));
    std::printf("[%8.3f ms] client: add(%lld, %lld) = %lld\n",
                sim::to_msec(ctx.engine().now()), static_cast<long long>(i),
                static_cast<long long>(i * 10),
                static_cast<long long>(std::get<std::int64_t>(reply.args.at(0))));
  }
}

sim::Task<> wire(lynx::Process* s, lynx::Process* c, LinkHandle* se,
                 LinkHandle* ce) {
  auto [a, b] = co_await lynx::ChrysalisBackend::connect(*s, *c);
  *se = a;
  *ce = b;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string flag = "--trace-out=";
    if (arg.rfind(flag, 0) == 0) trace_out = arg.substr(flag.size());
  }

  sim::Engine engine;
  trace::Recorder recorder(engine);
  chrysalis::Kernel butterfly(engine);

  lynx::Process server(engine, "server",
                       lynx::make_chrysalis_backend(butterfly, net::NodeId(0)),
                       lynx::mc68000_runtime_costs());
  lynx::Process client(engine, "client",
                       lynx::make_chrysalis_backend(butterfly, net::NodeId(1)),
                       lynx::mc68000_runtime_costs());
  server.start();
  client.start();

  LinkHandle server_end, client_end;
  engine.spawn("wire", wire(&server, &client, &server_end, &client_end));
  engine.run();

  server.spawn_thread("serve", [&](ThreadCtx& ctx) {
    return server_thread(ctx, server_end);
  });
  client.spawn_thread("drive", [&](ThreadCtx& ctx) {
    return client_thread(ctx, client_end);
  });
  engine.run();

  std::printf("done at %.3f simulated ms; thread failures: %zu\n",
              sim::to_msec(engine.now()),
              server.thread_failures().size() +
                  client.thread_failures().size());

  if (!trace_out.empty()) {
    if (trace::write_chrome_trace_file(recorder, trace_out)) {
      std::printf("trace: %llu events -> %s (digest %016llx)\n",
                  static_cast<unsigned long long>(recorder.total_emitted()),
                  trace_out.c_str(),
                  static_cast<unsigned long long>(recorder.digest()));
    } else {
      std::fprintf(stderr, "trace: failed to write %s\n", trace_out.c_str());
      return 1;
    }
  }
  return 0;
}
