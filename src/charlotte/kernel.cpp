#include "charlotte/kernel.hpp"

#include <algorithm>

#include "net/token_ring.hpp"
#include "trace/trace.hpp"

namespace charlotte {

// ===================== Cluster =====================

Cluster::Cluster(sim::Engine& engine, std::size_t nodes,
                 net::TokenRingParams ring_params, Costs costs)
    : engine_(&engine),
      costs_(costs),
      ring_(std::make_unique<net::TokenRing>(engine, ring_params)),
      medium_(ring_.get()) {
  kernels_.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    kernels_.push_back(
        std::make_unique<Kernel>(*this, net::NodeId(static_cast<std::uint32_t>(i))));
  }
}

Cluster::Cluster(sim::Engine& engine, std::size_t nodes, net::Medium& medium,
                 Costs costs)
    : engine_(&engine), costs_(costs), medium_(&medium) {
  kernels_.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    kernels_.push_back(
        std::make_unique<Kernel>(*this, net::NodeId(static_cast<std::uint32_t>(i))));
  }
}

void Cluster::sever(net::NodeId a, net::NodeId b) {
  kernel(a).notify_peer_lost(b);
  kernel(b).notify_peer_lost(a);
}

void Cluster::notify_node_down(net::NodeId down) {
  for (auto& k : kernels_) {
    if (k->node() != down) k->notify_peer_lost(down);
  }
}

Cluster::~Cluster() = default;

Kernel& Cluster::kernel(net::NodeId node) {
  RELYNX_ASSERT(node.value() < kernels_.size());
  return *kernels_[node.value()];
}

Pid Cluster::create_process(net::NodeId node) {
  const Pid pid = pids_.next();
  process_node_.emplace(pid, node);
  kernel(node).register_process(pid);
  return pid;
}

Kernel& Cluster::kernel_of(Pid pid) { return kernel(node_of(pid)); }

net::NodeId Cluster::node_of(Pid pid) const {
  auto it = process_node_.find(pid);
  RELYNX_ASSERT_MSG(it != process_node_.end(), "unknown pid");
  return it->second;
}

void Cluster::terminate(Pid pid) { kernel_of(pid).terminate_process(pid); }

LinkPair Cluster::bootstrap_link(Pid a, Pid b) {
  const net::NodeId na = node_of(a);
  const net::NodeId nb = node_of(b);
  const LinkId link = new_link_id();
  const EndId e1 = new_end();
  const EndId e2 = new_end();
  Kernel& ka = kernel(na);
  Kernel& kb = kernel(nb);
  ka.ends_.emplace(e1, Kernel::EndState{e1, link, e2, a, nb, na, false,
                                        false, std::nullopt, std::nullopt,
                                        {}, 0, {}});
  kb.ends_.emplace(e2, Kernel::EndState{e2, link, e1, b, na, na, false,
                                        false, std::nullopt, std::nullopt,
                                        {}, 0, {}});
  ka.homes_.emplace(link,
                    Kernel::HomeRecord{link, Kernel::HomeEndInfo{e1, na, a},
                                       Kernel::HomeEndInfo{e2, nb, b}, false});
  return LinkPair{e1, e2};
}

std::uint64_t Cluster::total_frames() const {
  std::uint64_t n = 0;
  for (const auto& k : kernels_) n += k->frames_emitted();
  return n;
}

std::uint64_t Cluster::total_move_frames() const {
  std::uint64_t n = 0;
  for (const auto& k : kernels_) n += k->move_protocol_frames();
  return n;
}

// ===================== Kernel: plumbing =====================

Kernel::Kernel(Cluster& cluster, net::NodeId node)
    : cluster_(&cluster), node_(node) {
  cluster_->medium().attach(node_,
                            [this](const net::Frame& f) { on_frame(f); });
}

void Kernel::transmit(net::NodeId dst, wire::KernelFrame frame,
                      std::uint64_t trace) {
  ++frames_out_;
  if (std::holds_alternative<wire::MoveUpdate>(frame) ||
      std::holds_alternative<wire::PeerMoved>(frame) ||
      std::holds_alternative<wire::MoveAck>(frame)) {
    ++move_frames_;
  }
  const std::size_t bytes = wire::frame_bytes(frame);
  if (auto* rec = trace::get(cluster_->engine())) {
    rec->instant(node_.value(), "wire", "frame.tx", trace, frame.index(),
                 bytes);
  }
  if (dst == node_) {
    // Home traffic for a locally-created link: no ring trip, but the
    // kernel still does the protocol work.
    cluster_->engine().schedule(
        cluster_->costs().frame_processing,
        [this, f = std::move(frame)] {
          std::visit([this](const auto& m) { handle(m, node_); }, f);
        });
    return;
  }
  net::Frame out{node_, dst, bytes, std::move(frame)};
  out.trace_id = trace;
  cluster_->medium().send(std::move(out));
}

void Kernel::on_frame(const net::Frame& frame) {
  const auto& kf = frame.as<wire::KernelFrame>();
  sim::Duration cost = cluster_->costs().frame_processing;
  if (const auto* msg = std::get_if<wire::Msg>(&kf)) {
    cost += cluster_->costs().per_byte_copy *
            static_cast<sim::Duration>(msg->data.size());
  }
  if (auto* rec = trace::get(cluster_->engine())) {
    rec->instant(node_.value(), "wire", "frame.rx", frame.trace_id, frame.id,
                 frame.payload_bytes);
  }
  cluster_->engine().schedule(cost, [this, kf, src = frame.src] {
    std::visit([this, src](const auto& m) { handle(m, src); }, kf);
  });
}

Kernel::EndState* Kernel::find_end(EndId id) {
  auto it = ends_.find(id);
  return it == ends_.end() ? nullptr : &it->second;
}

Status Kernel::validate_owned(Pid caller, EndId id, EndState** out) {
  EndState* end = find_end(id);
  if (end == nullptr) return Status::kNoSuchEnd;
  if (end->owner != caller) return Status::kNotOwner;
  *out = end;
  return Status::kOk;
}

void Kernel::complete(Pid pid, Completion c) {
  auto it = completions_.find(pid);
  if (it == completions_.end()) return;  // process gone; drop silently
  it->second->put(std::move(c));
}

void Kernel::register_process(Pid pid) {
  processes_.insert(pid);
  completions_.emplace(
      pid, std::make_unique<sim::Mailbox<Completion>>(cluster_->engine()));
}

// ===================== Kernel calls =====================

sim::Task<common::Result<LinkPair, Status>> Kernel::make_link(Pid caller) {
  co_await cluster_->engine().sleep(cluster_->costs().call_overhead);
  if (!processes_.contains(caller)) {
    co_return common::Err(Status::kNoSuchEnd);
  }
  const LinkId link = cluster_->new_link_id();
  const EndId e1 = cluster_->new_end();
  const EndId e2 = cluster_->new_end();
  EndState s1{e1, link, e2, caller, node_, node_, false, false,
              std::nullopt, std::nullopt, {}, 0, {}};
  EndState s2{e2, link, e1, caller, node_, node_, false, false,
              std::nullopt, std::nullopt, {}, 0, {}};
  ends_.emplace(e1, std::move(s1));
  ends_.emplace(e2, std::move(s2));
  homes_.emplace(link, HomeRecord{link,
                                  HomeEndInfo{e1, node_, caller},
                                  HomeEndInfo{e2, node_, caller}, false});
  co_return LinkPair{e1, e2};
}

sim::Task<Status> Kernel::send(Pid caller, EndId end_id, Payload data,
                               EndId enclosure, std::uint64_t trace) {
  EndState* end = nullptr;
  if (Status st = validate_owned(caller, end_id, &end); st != Status::kOk) {
    co_await cluster_->engine().sleep(cluster_->costs().call_overhead);
    co_return st;
  }
  if (end->destroyed) {
    co_await cluster_->engine().sleep(cluster_->costs().call_overhead);
    co_return Status::kLinkDestroyed;
  }
  if (end->in_transit) {
    co_await cluster_->engine().sleep(cluster_->costs().call_overhead);
    co_return Status::kEndInTransit;
  }
  if (end->send.has_value()) {
    co_await cluster_->engine().sleep(cluster_->costs().call_overhead);
    co_return Status::kActivityPending;
  }

  bool has_enclosure = false;
  wire::EnclosureDesc desc{};
  if (enclosure.valid()) {
    EndState* enc = nullptr;
    if (Status st = validate_owned(caller, enclosure, &enc);
        st != Status::kOk || enc->destroyed || enc->in_transit ||
        enc->send.has_value() || enc->recv.has_value() ||
        enclosure == end_id || enclosure == end->peer) {
      co_await cluster_->engine().sleep(cluster_->costs().call_overhead);
      co_return Status::kBadEnclosure;
    }
    has_enclosure = true;
    desc = wire::EnclosureDesc{enc->id, enc->link, enc->peer, enc->peer_node,
                               enc->home};
    enc->in_transit = true;
  }

  const std::uint64_t seq = next_seq_++;
  wire::Msg msg{seq,  end_id, end->peer, std::move(data),
                has_enclosure, desc,   trace};
  const std::size_t len = msg.data.size();
  end->send = SendActivity{msg, has_enclosure ? desc.end : EndId::invalid(),
                           false, 1, {}};
  const net::NodeId dst = end->peer_node;

  const Costs& costs = cluster_->costs();
  sim::Duration cost = costs.call_overhead + costs.frame_processing +
                       costs.per_byte_copy * static_cast<sim::Duration>(len);
  if (has_enclosure) cost += costs.enclosure_processing;
  co_await cluster_->engine().sleep(cost);
  transmit(dst, std::move(msg), trace);
  // Re-find the end: the sleep may have raced a destroy or a move.
  if (EndState* e = find_end(end_id);
      e != nullptr && e->send.has_value() && e->send->msg.seq == seq) {
    arm_send_timer(*e);
  }
  co_return Status::kOk;
}

void Kernel::arm_send_timer(EndState& end) {
  const sim::Duration timeout = cluster_->costs().send_retransmit_timeout;
  if (timeout <= 0 || !end.send.has_value()) return;
  end.send->retry.cancel();
  end.send->retry = cluster_->engine().schedule_cancellable(
      timeout, [this, id = end.id, seq = end.send->msg.seq] {
        on_send_timeout(id, seq);
      });
}

void Kernel::on_send_timeout(EndId end_id, std::uint64_t seq) {
  EndState* end = find_end(end_id);
  if (end == nullptr || end->destroyed || !end->send.has_value() ||
      end->send->msg.seq != seq) {
    return;
  }
  if (end->send->attempts >= cluster_->costs().max_send_attempts) {
    // Out of patience: the peer, or every path to it, is gone.  Report
    // an absolute failure — Charlotte knows, it does not hint.
    end->destroyed = true;
    fail_end_activities(*end, Status::kLinkFailed);
    return;
  }
  ++end->send->attempts;
  ++retransmits_;
  if (auto* rec = trace::get(cluster_->engine())) {
    rec->instant(node_.value(), "kernel", "msg.retransmit",
                 end->send->msg.trace, seq,
                 static_cast<std::uint64_t>(end->send->attempts));
  }
  transmit(end->peer_node, end->send->msg, end->send->msg.trace);
  arm_send_timer(*end);
}

void Kernel::clear_send(EndState& end) {
  if (end.send.has_value()) {
    end.send->retry.cancel();
    end.send.reset();
  }
}

void Kernel::notify_peer_lost(net::NodeId peer) {
  for (auto& [id, end] : ends_) {
    if (end.destroyed || end.peer_node != peer) continue;
    end.destroyed = true;
    fail_end_activities(end, Status::kLinkFailed);
    // Tell the home (unless the home itself is the lost node) so the
    // record is retired and any third party holding the far end hears
    // LinkDown as well.
    if (end.home != peer) {
      transmit(end.home, wire::DestroyUpdate{end.link, end.id});
    }
  }
}

sim::Task<Status> Kernel::receive(Pid caller, EndId end_id,
                                  std::size_t max_len) {
  co_await cluster_->engine().sleep(cluster_->costs().call_overhead);
  EndState* end = nullptr;
  if (Status st = validate_owned(caller, end_id, &end); st != Status::kOk) {
    co_return st;
  }
  if (end->destroyed) co_return Status::kLinkDestroyed;
  if (end->in_transit) co_return Status::kEndInTransit;
  if (end->recv.has_value()) co_return Status::kActivityPending;
  end->recv = RecvActivity{max_len};
  deliver_pending(*end);
  co_return Status::kOk;
}

sim::Task<Status> Kernel::cancel(Pid caller, EndId end_id,
                                 Direction direction) {
  co_await cluster_->engine().sleep(cluster_->costs().call_overhead);
  EndState* end = nullptr;
  if (Status st = validate_owned(caller, end_id, &end); st != Status::kOk) {
    co_return st;
  }
  if (direction == Direction::kReceive) {
    if (end->recv.has_value()) {
      end->recv.reset();
      co_return Status::kOk;
    }
    if (end->unwaited_recv_completions > 0) co_return Status::kCancelTooLate;
    co_return Status::kNoActivity;
  }
  // Direction::kSend: race the delivery.
  if (!end->send.has_value()) co_return Status::kNoActivity;
  if (end->send->cancel_requested) co_return Status::kActivityPending;
  end->send->cancel_requested = true;
  transmit(end->peer_node,
           wire::CancelReq{end->send->msg.seq, end_id, end->peer});
  co_return Status::kOk;
}

sim::Task<Status> Kernel::destroy(Pid caller, EndId end_id) {
  co_await cluster_->engine().sleep(cluster_->costs().call_overhead);
  EndState* end = nullptr;
  if (Status st = validate_owned(caller, end_id, &end); st != Status::kOk) {
    co_return st;
  }
  if (end->destroyed) co_return Status::kLinkDestroyed;
  begin_destroy(*end);
  co_return Status::kOk;
}

void Kernel::begin_destroy(EndState& end) {
  end.destroyed = true;
  fail_end_activities(end, Status::kLinkDestroyed);
  transmit(end.home, wire::DestroyUpdate{end.link, end.id});
}

sim::Task<Completion> Kernel::wait(Pid caller) {
  co_await cluster_->engine().sleep(cluster_->costs().call_overhead);
  auto it = completions_.find(caller);
  if (it == completions_.end()) {
    // Process terminated while (or just before) waiting: hand back a
    // poison completion (invalid end) so run-time pumps can stop.
    co_return Completion{};
  }
  Completion c = co_await it->second->get();
  if (c.direction == Direction::kReceive) {
    if (EndState* end = find_end(c.end);
        end != nullptr && end->unwaited_recv_completions > 0) {
      --end->unwaited_recv_completions;
    }
  }
  co_return c;
}

bool Kernel::completion_ready(Pid caller) {
  auto it = completions_.find(caller);
  return it != completions_.end() && !it->second->empty();
}

void Kernel::terminate_process(Pid pid) {
  if (!processes_.contains(pid)) return;
  std::vector<EndId> owned;
  for (auto& [id, end] : ends_) {
    if (end.owner == pid && !end.destroyed) owned.push_back(id);
  }
  for (EndId id : owned) {
    if (EndState* end = find_end(id)) begin_destroy(*end);
  }
  processes_.erase(pid);
  completions_.erase(pid);
}

// ===================== delivery =====================

void Kernel::deliver_pending(EndState& end) {
  if (!end.recv.has_value() || end.pending.empty()) return;
  PendingMsg pm = std::move(end.pending.front());
  end.pending.pop_front();
  const std::size_t len = std::min(end.recv->max_len, pm.msg.data.size());
  end.recv.reset();

  Completion c;
  c.end = end.id;
  c.direction = Direction::kReceive;
  c.status = Status::kOk;
  c.length = len;
  c.trace = pm.msg.trace;
  c.data.assign(pm.msg.data.begin(),
                pm.msg.data.begin() + static_cast<std::ptrdiff_t>(len));

  sim::Duration cost = cluster_->costs().per_byte_copy *
                       static_cast<sim::Duration>(len);
  if (pm.msg.has_enclosure) {
    const wire::EnclosureDesc& desc = pm.msg.enclosure;
    // Install the moved end locally and tell the home.
    EndState moved{desc.end, desc.link, desc.peer, end.owner, desc.peer_node,
                   desc.home, false, false, std::nullopt, std::nullopt,
                   {}, 0, {}};
    ends_.emplace(desc.end, std::move(moved));
    transmit(desc.home, wire::MoveUpdate{next_move_seq_++, desc.link,
                                         desc.end, node_, end.owner});
    c.enclosure = desc.end;
    cost += cluster_->costs().enclosure_processing;
  }
  ++end.unwaited_recv_completions;
  end.acked.emplace_back(pm.msg.seq, len);
  if (end.acked.size() > 16) end.acked.pop_front();

  const Pid owner = end.owner;
  const net::NodeId ack_to = pm.from_node;
  const wire::MsgAck ack{pm.msg.seq, pm.msg.from_end, len, pm.msg.trace};
  cluster_->engine().schedule(cost, [this, owner, c = std::move(c), ack,
                                     ack_to] {
    complete(owner, c);
    transmit(ack_to, ack, ack.trace);
  });
}

void Kernel::fail_end_activities(EndState& end, Status status) {
  if (end.send.has_value()) {
    Completion c;
    c.end = end.id;
    c.direction = Direction::kSend;
    c.status = status;
    // A failed send never moved its enclosure; give it back.
    if (end.send->enclosure.valid()) {
      if (EndState* enc = find_end(end.send->enclosure)) {
        enc->in_transit = false;
      }
    }
    clear_send(end);
    complete(end.owner, c);
  }
  if (end.recv.has_value()) {
    Completion c;
    c.end = end.id;
    c.direction = Direction::kReceive;
    c.status = status;
    end.recv.reset();
    ++end.unwaited_recv_completions;
    complete(end.owner, c);
  }
  // Pending undelivered messages: bounce to their senders.
  while (!end.pending.empty()) {
    PendingMsg pm = std::move(end.pending.front());
    end.pending.pop_front();
    transmit(pm.from_node,
             wire::MsgNackDestroyed{pm.msg.seq, pm.msg.from_end});
  }
}

// ===================== frame handlers =====================

void Kernel::handle(const wire::Msg& m, net::NodeId from) {
  EndState* end = find_end(m.to_end);
  if (end == nullptr) {
    if (auto it = forwarded_.find(m.to_end); it != forwarded_.end()) {
      transmit(from,
               wire::MsgNackMoved{m.seq, m.from_end, m.to_end, it->second});
    } else {
      transmit(from, wire::MsgNackDestroyed{m.seq, m.from_end});
    }
    return;
  }
  if (end->destroyed) {
    transmit(from, wire::MsgNackDestroyed{m.seq, m.from_end});
    return;
  }
  if (deduplicate(*end, m, from)) return;
  end->pending.push_back(PendingMsg{m, from});
  deliver_pending(*end);
}

bool Kernel::deduplicate(EndState& end, const wire::Msg& m, net::NodeId from) {
  for (const auto& [seq, len] : end.acked) {
    if (seq == m.seq) {
      // Already delivered; the original ack (or this replacement) was
      // lost in flight.  Re-ack so the sender's timer stands down.
      if (!cluster_->costs().debug_drop_reacks) {
        transmit(from, wire::MsgAck{m.seq, m.from_end, len, m.trace},
                 m.trace);
      }
      return true;
    }
  }
  for (const PendingMsg& pm : end.pending) {
    if (pm.msg.seq == m.seq) return true;  // queued; delivery will ack
  }
  return false;
}

void Kernel::handle(const wire::MsgAck& m, net::NodeId from) {
  EndState* end = find_end(m.to_end);
  if (end == nullptr || !end->send.has_value() ||
      end->send->msg.seq != m.seq) {
    return;  // stale ack (e.g. the send was failed by a LinkDown race)
  }
  const EndId enclosure = end->send->enclosure;
  clear_send(*end);
  Completion c;
  c.end = end->id;
  c.direction = Direction::kSend;
  c.status = Status::kOk;
  c.length = m.delivered_len;
  complete(end->owner, c);

  if (enclosure.valid()) {
    // The enclosure now lives at the receiver: retire the local record,
    // leave a tombstone, bounce anything that was parked on it.
    if (EndState* enc = find_end(enclosure)) {
      while (!enc->pending.empty()) {
        PendingMsg pm = std::move(enc->pending.front());
        enc->pending.pop_front();
        transmit(pm.from_node, wire::MsgNackMoved{pm.msg.seq, pm.msg.from_end,
                                                  enclosure, from});
      }
      ends_.erase(enclosure);
    }
    forwarded_[enclosure] = from;
  }
}

void Kernel::handle(const wire::MsgNackMoved& m, net::NodeId /*from*/) {
  EndState* end = find_end(m.to_end);
  if (end == nullptr || !end->send.has_value() ||
      end->send->msg.seq != m.seq) {
    return;
  }
  end->peer_node = m.new_node;
  ++retransmits_;
  if (auto* rec = trace::get(cluster_->engine())) {
    rec->instant(node_.value(), "kernel", "msg.retransmit.moved",
                 end->send->msg.trace, m.seq, m.new_node.value());
  }
  const Costs& costs = cluster_->costs();
  const sim::Duration cost =
      costs.frame_processing +
      costs.per_byte_copy *
          static_cast<sim::Duration>(end->send->msg.data.size());
  cluster_->engine().schedule(
      cost, [this, msg = end->send->msg, dst = m.new_node] {
        transmit(dst, msg, msg.trace);
      });
  arm_send_timer(*end);
}

void Kernel::handle(const wire::MsgNackDestroyed& m, net::NodeId /*from*/) {
  EndState* end = find_end(m.to_end);
  if (end == nullptr || !end->send.has_value() ||
      end->send->msg.seq != m.seq) {
    return;
  }
  end->destroyed = true;
  fail_end_activities(*end, Status::kLinkDestroyed);
}

void Kernel::handle(const wire::CancelReq& m, net::NodeId from) {
  EndState* end = find_end(m.to_end);
  bool revoked = false;
  if (end != nullptr) {
    auto it = std::find_if(
        end->pending.begin(), end->pending.end(),
        [&](const PendingMsg& pm) { return pm.msg.seq == m.seq; });
    if (it != end->pending.end()) {
      end->pending.erase(it);
      revoked = true;
    }
  }
  transmit(from, wire::CancelReply{m.seq, m.from_end, revoked});
}

void Kernel::handle(const wire::CancelReply& m, net::NodeId /*from*/) {
  if (!m.revoked) return;  // delivery won the race; MsgAck settles it
  EndState* end = find_end(m.to_end);
  if (end == nullptr || !end->send.has_value() ||
      end->send->msg.seq != m.seq) {
    return;
  }
  if (end->send->enclosure.valid()) {
    if (EndState* enc = find_end(end->send->enclosure)) {
      enc->in_transit = false;
    }
  }
  clear_send(*end);
  Completion c;
  c.end = end->id;
  c.direction = Direction::kSend;
  c.status = Status::kCancelled;
  complete(end->owner, c);
}

void Kernel::handle(const wire::MoveUpdate& m, net::NodeId from) {
  auto it = homes_.find(m.link);
  RELYNX_ASSERT_MSG(it != homes_.end(), "MoveUpdate at non-home kernel");
  HomeRecord& rec = it->second;
  if (rec.destroyed) {
    transmit(from, wire::MoveAck{m.move_seq, m.end, true, net::NodeId()});
    return;
  }
  HomeEndInfo& moved = (rec.a.end == m.end) ? rec.a : rec.b;
  HomeEndInfo& fixed = (rec.a.end == m.end) ? rec.b : rec.a;
  RELYNX_ASSERT(moved.end == m.end);
  moved.node = m.new_node;
  moved.owner = m.new_owner;
  transmit(fixed.node, wire::PeerMoved{m.link, fixed.end, m.new_node});
  transmit(from, wire::MoveAck{m.move_seq, m.end, false, fixed.node});
}

void Kernel::handle(const wire::PeerMoved& m, net::NodeId from) {
  EndState* end = find_end(m.end);
  if (end == nullptr) {
    // The informed end itself moved meanwhile; chase it.
    if (auto it = forwarded_.find(m.end); it != forwarded_.end()) {
      transmit(it->second, m);
    }
    return;
  }
  (void)from;
  end->peer_node = m.peer_node;
}

void Kernel::handle(const wire::MoveAck& m, net::NodeId /*from*/) {
  EndState* end = find_end(m.end);
  if (end == nullptr) return;
  if (m.link_destroyed) {
    end->destroyed = true;
    fail_end_activities(*end, Status::kLinkDestroyed);
    return;
  }
  end->peer_node = m.peer_node;
  deliver_pending(*end);
}

void Kernel::handle(const wire::DestroyUpdate& m, net::NodeId /*from*/) {
  auto it = homes_.find(m.link);
  RELYNX_ASSERT_MSG(it != homes_.end(), "DestroyUpdate at non-home kernel");
  HomeRecord& rec = it->second;
  if (rec.destroyed) return;
  rec.destroyed = true;
  transmit(rec.a.node, wire::LinkDown{m.link, rec.a.end});
  transmit(rec.b.node, wire::LinkDown{m.link, rec.b.end});
}

void Kernel::handle(const wire::LinkDown& m, net::NodeId /*from*/) {
  EndState* end = find_end(m.end);
  if (end == nullptr) {
    if (auto it = forwarded_.find(m.end); it != forwarded_.end()) {
      transmit(it->second, m);
    }
    return;
  }
  if (end->destroyed) return;  // we initiated; already failed locally
  end->destroyed = true;
  fail_end_activities(*end, Status::kLinkDestroyed);
}

}  // namespace charlotte
