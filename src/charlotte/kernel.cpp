#include "charlotte/kernel.hpp"

#include <algorithm>

#include "net/token_ring.hpp"
#include "trace/trace.hpp"

namespace charlotte {

// ===================== Cluster =====================

Cluster::Cluster(sim::Engine& engine, std::size_t nodes,
                 net::TokenRingParams ring_params, Costs costs)
    : engine_(&engine),
      costs_(costs),
      ring_(std::make_unique<net::TokenRing>(engine, ring_params)),
      medium_(ring_.get()) {
  kernels_.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    kernels_.push_back(
        std::make_unique<Kernel>(*this, net::NodeId(static_cast<std::uint32_t>(i))));
  }
}

Cluster::Cluster(sim::Engine& engine, std::size_t nodes, net::Medium& medium,
                 Costs costs)
    : engine_(&engine), costs_(costs), medium_(&medium) {
  kernels_.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    kernels_.push_back(
        std::make_unique<Kernel>(*this, net::NodeId(static_cast<std::uint32_t>(i))));
  }
}

void Cluster::sever(net::NodeId a, net::NodeId b) {
  kernel(a).notify_peer_lost(b);
  kernel(b).notify_peer_lost(a);
}

void Cluster::notify_node_down(net::NodeId down) {
  for (auto& k : kernels_) {
    if (k->node() != down) k->notify_peer_lost(down);
  }
}

Cluster::~Cluster() = default;

Kernel& Cluster::kernel(net::NodeId node) {
  RELYNX_ASSERT(node.value() < kernels_.size());
  return *kernels_[node.value()];
}

Pid Cluster::create_process(net::NodeId node) {
  const Pid pid = pids_.next();
  process_node_.emplace(pid, node);
  kernel(node).register_process(pid);
  return pid;
}

Kernel& Cluster::kernel_of(Pid pid) { return kernel(node_of(pid)); }

net::NodeId Cluster::node_of(Pid pid) const {
  auto it = process_node_.find(pid);
  RELYNX_ASSERT_MSG(it != process_node_.end(), "unknown pid");
  return it->second;
}

void Cluster::terminate(Pid pid) { kernel_of(pid).terminate_process(pid); }

LinkPair Cluster::bootstrap_link(Pid a, Pid b) {
  const net::NodeId na = node_of(a);
  const net::NodeId nb = node_of(b);
  const LinkId link = new_link_id();
  const EndId e1 = new_end();
  const EndId e2 = new_end();
  Kernel& ka = kernel(na);
  Kernel& kb = kernel(nb);
  Kernel::EndState s1;
  s1.id = e1;
  s1.link = link;
  s1.peer = e2;
  s1.owner = a;
  s1.peer_node = nb;
  s1.home = na;
  ka.ends_.emplace(e1, std::move(s1));
  Kernel::EndState s2;
  s2.id = e2;
  s2.link = link;
  s2.peer = e1;
  s2.owner = b;
  s2.peer_node = na;
  s2.home = na;
  kb.ends_.emplace(e2, std::move(s2));
  ka.homes_.emplace(link,
                    Kernel::HomeRecord{link, Kernel::HomeEndInfo{e1, na, a},
                                       Kernel::HomeEndInfo{e2, nb, b}, false});
  return LinkPair{e1, e2};
}

std::uint64_t Cluster::total_frames() const {
  std::uint64_t n = 0;
  for (const auto& k : kernels_) n += k->frames_emitted();
  return n;
}

std::uint64_t Cluster::total_move_frames() const {
  std::uint64_t n = 0;
  for (const auto& k : kernels_) n += k->move_protocol_frames();
  return n;
}

// ===================== Kernel: plumbing =====================

Kernel::Kernel(Cluster& cluster, net::NodeId node)
    : cluster_(&cluster),
      node_(node),
      packer_(cluster.engine(), cluster.medium(), node,
              form::Params{cluster.costs().form_delay,
                           cluster.costs().form_max_bytes}) {
  cluster_->medium().attach(node_,
                            [this](const net::Frame& f) { on_frame(f); });
}

void Kernel::transmit(net::NodeId dst, wire::KernelFrame frame,
                      std::uint64_t trace) {
  ++frames_out_;
  if (std::holds_alternative<wire::MoveUpdate>(frame) ||
      std::holds_alternative<wire::PeerMoved>(frame) ||
      std::holds_alternative<wire::MoveAck>(frame)) {
    ++move_frames_;
  }
  const std::size_t bytes = wire::frame_bytes(frame);
  if (auto* rec = trace::get(cluster_->engine())) {
    rec->instant(node_.value(), "wire", "frame.tx", trace, frame.index(),
                 bytes);
  }
  if (dst == node_) {
    // Home traffic for a locally-created link: no ring trip, but the
    // kernel still does the protocol work.
    cluster_->engine().schedule(
        cluster_->costs().frame_processing,
        [this, f = std::move(frame)] {
          std::visit([this](const auto& m) { handle(m, node_); }, f);
        });
    return;
  }
  net::Frame out{node_, dst, bytes, std::move(frame)};
  out.trace_id = trace;
  packer_.submit(std::move(out));
}

void Kernel::on_frame(const net::Frame& frame) {
  if (std::any_cast<form::Batch>(&frame.body) != nullptr) {
    on_batch(frame);
    return;
  }
  const auto& kf = frame.as<wire::KernelFrame>();
  sim::Duration cost = cluster_->costs().frame_processing;
  if (const auto* msg = std::get_if<wire::Msg>(&kf)) {
    cost += cluster_->costs().per_byte_copy *
            static_cast<sim::Duration>(msg->data.size());
  }
  if (auto* rec = trace::get(cluster_->engine())) {
    rec->instant(node_.value(), "wire", "frame.rx", frame.trace_id, frame.id,
                 frame.payload_bytes);
  }
  cluster_->engine().schedule(cost, [this, kf, src = frame.src] {
    std::visit([this, src](const auto& m) { handle(m, src); }, kf);
  });
}

// A form::Batch arrived: pay frame absorption ONCE, then a cheap
// demultiplex per enclosure, and dispatch the enclosures in submission
// order within a single scheduled event — per-link FIFO is exactly what
// it would have been frame-per-message, minus the per-frame overheads.
void Kernel::on_batch(const net::Frame& frame) {
  const auto& batch = frame.as<form::Batch>();
  const Costs& costs = cluster_->costs();
  sim::Duration cost = costs.frame_processing;
  auto* rec = trace::get(cluster_->engine());
  if (rec != nullptr) {
    rec->instant(node_.value(), "wire", "batch.rx", frame.trace_id, frame.id,
                 batch.frames.size());
  }
  std::vector<wire::KernelFrame> enclosed;
  enclosed.reserve(batch.frames.size());
  for (const net::Frame& sub : batch.frames) {
    const auto& kf = sub.as<wire::KernelFrame>();
    cost += costs.form_enclosure_processing;
    if (const auto* msg = std::get_if<wire::Msg>(&kf)) {
      cost += costs.per_byte_copy *
              static_cast<sim::Duration>(msg->data.size());
    }
    // Per-enclosure frame.rx with the enclosure's own TraceId, so the
    // phase tables keep decomposing each RPC even when its frames
    // shared a batch with strangers.
    if (rec != nullptr) {
      rec->instant(node_.value(), "wire", "frame.rx", sub.trace_id, frame.id,
                   sub.payload_bytes);
    }
    enclosed.push_back(kf);
  }
  cluster_->engine().schedule(
      cost, [this, enclosed = std::move(enclosed), src = frame.src] {
        for (const wire::KernelFrame& kf : enclosed) {
          std::visit([this, src](const auto& m) { handle(m, src); }, kf);
        }
      });
}

Kernel::EndState* Kernel::find_end(EndId id) {
  auto it = ends_.find(id);
  return it == ends_.end() ? nullptr : &it->second;
}

Status Kernel::validate_owned(Pid caller, EndId id, EndState** out) {
  EndState* end = find_end(id);
  if (end == nullptr) return Status::kNoSuchEnd;
  if (end->owner != caller) return Status::kNotOwner;
  *out = end;
  return Status::kOk;
}

void Kernel::complete(Pid pid, Completion c) {
  auto it = completions_.find(pid);
  if (it == completions_.end()) return;  // process gone; drop silently
  it->second->put(std::move(c));
}

void Kernel::register_process(Pid pid) {
  processes_.insert(pid);
  completions_.emplace(
      pid, std::make_unique<sim::Mailbox<Completion>>(cluster_->engine()));
}

// ===================== Kernel calls =====================

sim::Task<common::Result<LinkPair, Status>> Kernel::make_link(Pid caller) {
  co_await cluster_->engine().sleep(cluster_->costs().call_overhead);
  if (!processes_.contains(caller)) {
    co_return common::Err(Status::kNoSuchEnd);
  }
  const LinkId link = cluster_->new_link_id();
  const EndId e1 = cluster_->new_end();
  const EndId e2 = cluster_->new_end();
  EndState s1;
  s1.id = e1;
  s1.link = link;
  s1.peer = e2;
  s1.owner = caller;
  s1.peer_node = node_;
  s1.home = node_;
  EndState s2;
  s2.id = e2;
  s2.link = link;
  s2.peer = e1;
  s2.owner = caller;
  s2.peer_node = node_;
  s2.home = node_;
  ends_.emplace(e1, std::move(s1));
  ends_.emplace(e2, std::move(s2));
  homes_.emplace(link, HomeRecord{link,
                                  HomeEndInfo{e1, node_, caller},
                                  HomeEndInfo{e2, node_, caller}, false});
  co_return LinkPair{e1, e2};
}

sim::Task<Status> Kernel::send(Pid caller, EndId end_id, Payload data,
                               EndId enclosure, std::uint64_t trace) {
  EndState* end = nullptr;
  if (Status st = validate_owned(caller, end_id, &end); st != Status::kOk) {
    co_await cluster_->engine().sleep(cluster_->costs().call_overhead);
    co_return st;
  }
  if (end->destroyed) {
    co_await cluster_->engine().sleep(cluster_->costs().call_overhead);
    co_return Status::kLinkDestroyed;
  }
  if (end->in_transit) {
    co_await cluster_->engine().sleep(cluster_->costs().call_overhead);
    co_return Status::kEndInTransit;
  }
  if (end->send.has_value()) {
    co_await cluster_->engine().sleep(cluster_->costs().call_overhead);
    co_return Status::kActivityPending;
  }

  bool has_enclosure = false;
  wire::EnclosureDesc desc{};
  if (enclosure.valid()) {
    EndState* enc = nullptr;
    if (Status st = validate_owned(caller, enclosure, &enc);
        st != Status::kOk || enc->destroyed || enc->in_transit ||
        enc->send.has_value() || enc->recv.has_value() ||
        enclosure == end_id || enclosure == end->peer) {
      co_await cluster_->engine().sleep(cluster_->costs().call_overhead);
      co_return Status::kBadEnclosure;
    }
    has_enclosure = true;
    // The end's ack-protocol counters move with it (wire.hpp): the
    // receiving kernel resumes both streams where this kernel stopped.
    desc = wire::EnclosureDesc{enc->id,           enc->link,
                               enc->peer,         enc->peer_node,
                               enc->home,         enc->next_send_seq,
                               enc->recv_watermark, enc->last_delivered_len};
    enc->in_transit = true;
  }

  const std::uint64_t seq = end->next_send_seq++;
  wire::Msg msg{seq,  end_id, end->peer, std::move(data),
                has_enclosure, desc,   trace};
  const std::size_t len = msg.data.size();
  end->send = SendActivity{msg, has_enclosure ? desc.end : EndId::invalid(),
                           false, 1, {}, 0, 0};
  const net::NodeId dst = end->peer_node;

  const Costs& costs = cluster_->costs();
  sim::Duration cost = costs.call_overhead + costs.frame_processing +
                       costs.per_byte_copy * static_cast<sim::Duration>(len);
  if (has_enclosure) cost += costs.enclosure_processing;
  end->send->planned_tx_at = cluster_->engine().now() + cost;
  co_await cluster_->engine().sleep(cost);
  // Re-find the end: the sleep may have raced a destroy or a move.
  if (EndState* e = find_end(end_id);
      e != nullptr && e->send.has_value() && e->send->msg.seq == seq) {
    attach_piggyback(*e, e->send->msg, dst);
    e->send->first_sent_at = cluster_->engine().now();
    e->send->cur_rto = initial_rto(*e);
    transmit(dst, e->send->msg, trace);
    arm_send_timer(*e);
  } else {
    // Destroyed or failed mid-call; transmit anyway (the peer NACKs) so
    // the wire traffic is identical to the pre-race interleaving.
    transmit(dst, std::move(msg), trace);
  }
  co_return Status::kOk;
}

void Kernel::attach_piggyback(EndState& end, wire::Msg& m, net::NodeId dst) {
  if (!end.owed_ack.has_value() || end.owed_ack->to != dst) return;
  m.has_ack = true;
  m.ack_seq = end.owed_ack->seq;
  m.ack_len = end.owed_ack->len;
  if (auto* rec = trace::get(cluster_->engine())) {
    rec->instant(node_.value(), "kernel", "ack.piggyback", end.owed_ack->trace,
                 end.owed_ack->seq, end.owed_ack->len);
  }
  end.ack_timer.cancel();
  end.owed_ack.reset();
}

sim::Duration Kernel::initial_rto(const EndState& end) const {
  const Costs& costs = cluster_->costs();
  if (!costs.adaptive_rto) {
    return costs.send_retransmit_timeout;
  }
  return end.rtt.rto(costs.send_retransmit_timeout, costs.rto_min,
                     costs.rto_max);
}

void Kernel::arm_send_timer(EndState& end) {
  if (cluster_->costs().send_retransmit_timeout <= 0 ||
      !end.send.has_value()) {
    return;
  }
  const sim::Duration timeout = end.send->cur_rto > 0
                                    ? end.send->cur_rto
                                    : cluster_->costs().send_retransmit_timeout;
  end.send->retry.cancel();
  end.send->retry = cluster_->engine().schedule_cancellable(
      timeout, [this, id = end.id, seq = end.send->msg.seq] {
        on_send_timeout(id, seq);
      });
}

void Kernel::on_send_timeout(EndId end_id, std::uint64_t seq) {
  EndState* end = find_end(end_id);
  if (end == nullptr || end->destroyed || !end->send.has_value() ||
      end->send->msg.seq != seq) {
    return;
  }
  if (end->send->attempts >= cluster_->costs().max_send_attempts) {
    // Out of patience: the peer, or every path to it, is gone.  Report
    // an absolute failure — Charlotte knows, it does not hint.
    end->destroyed = true;
    fail_end_activities(*end, Status::kLinkFailed);
    return;
  }
  ++end->send->attempts;
  ++retransmits_;
  if (auto* rec = trace::get(cluster_->engine())) {
    rec->instant(node_.value(), "kernel", "msg.retransmit",
                 end->send->msg.trace, seq,
                 static_cast<std::uint64_t>(end->send->attempts));
  }
  transmit(end->peer_node, end->send->msg, end->send->msg.trace);
  if (cluster_->costs().adaptive_rto && end->send->cur_rto > 0) {
    // Exponential backoff: a timeout is evidence the estimate was low
    // (or the path is impaired); don't hammer a congested ring.
    end->send->cur_rto =
        std::min(end->send->cur_rto * 2, cluster_->costs().rto_max);
  }
  arm_send_timer(*end);
}

void Kernel::clear_send(EndState& end) {
  if (end.send.has_value()) {
    end.send->retry.cancel();
    end.send.reset();
  }
}

void Kernel::notify_peer_lost(net::NodeId peer) {
  for (auto& [id, end] : ends_) {
    if (end.destroyed || end.peer_node != peer) continue;
    end.destroyed = true;
    fail_end_activities(end, Status::kLinkFailed);
    // Tell the home (unless the home itself is the lost node) so the
    // record is retired and any third party holding the far end hears
    // LinkDown as well.
    if (end.home != peer) {
      transmit(end.home, wire::DestroyUpdate{end.link, end.id});
    }
  }
}

sim::Task<Status> Kernel::receive(Pid caller, EndId end_id,
                                  std::size_t max_len) {
  co_await cluster_->engine().sleep(cluster_->costs().call_overhead);
  EndState* end = nullptr;
  if (Status st = validate_owned(caller, end_id, &end); st != Status::kOk) {
    co_return st;
  }
  if (end->destroyed) co_return Status::kLinkDestroyed;
  if (end->in_transit) co_return Status::kEndInTransit;
  if (end->recv.has_value()) co_return Status::kActivityPending;
  end->recv = RecvActivity{max_len};
  deliver_pending(*end);
  co_return Status::kOk;
}

sim::Task<Status> Kernel::cancel(Pid caller, EndId end_id,
                                 Direction direction) {
  co_await cluster_->engine().sleep(cluster_->costs().call_overhead);
  EndState* end = nullptr;
  if (Status st = validate_owned(caller, end_id, &end); st != Status::kOk) {
    co_return st;
  }
  if (direction == Direction::kReceive) {
    if (end->recv.has_value()) {
      end->recv.reset();
      co_return Status::kOk;
    }
    if (end->unwaited_recv_completions > 0) co_return Status::kCancelTooLate;
    co_return Status::kNoActivity;
  }
  // Direction::kSend: race the delivery.
  if (!end->send.has_value()) co_return Status::kNoActivity;
  if (end->send->cancel_requested) co_return Status::kActivityPending;
  end->send->cancel_requested = true;
  transmit(end->peer_node,
           wire::CancelReq{end->send->msg.seq, end_id, end->peer});
  co_return Status::kOk;
}

sim::Task<Status> Kernel::destroy(Pid caller, EndId end_id) {
  co_await cluster_->engine().sleep(cluster_->costs().call_overhead);
  EndState* end = nullptr;
  if (Status st = validate_owned(caller, end_id, &end); st != Status::kOk) {
    co_return st;
  }
  if (end->destroyed) co_return Status::kLinkDestroyed;
  begin_destroy(*end);
  co_return Status::kOk;
}

void Kernel::begin_destroy(EndState& end) {
  end.destroyed = true;
  fail_end_activities(end, Status::kLinkDestroyed);
  transmit(end.home, wire::DestroyUpdate{end.link, end.id});
}

sim::Task<Completion> Kernel::wait(Pid caller) {
  co_await cluster_->engine().sleep(cluster_->costs().call_overhead);
  auto it = completions_.find(caller);
  if (it == completions_.end()) {
    // Process terminated while (or just before) waiting: hand back a
    // poison completion (invalid end) so run-time pumps can stop.
    co_return Completion{};
  }
  Completion c = co_await it->second->get();
  if (c.direction == Direction::kReceive) {
    if (EndState* end = find_end(c.end);
        end != nullptr && end->unwaited_recv_completions > 0) {
      --end->unwaited_recv_completions;
    }
  }
  co_return c;
}

bool Kernel::completion_ready(Pid caller) {
  auto it = completions_.find(caller);
  return it != completions_.end() && !it->second->empty();
}

void Kernel::terminate_process(Pid pid) {
  if (!processes_.contains(pid)) return;
  std::vector<EndId> owned;
  for (auto& [id, end] : ends_) {
    if (end.owner == pid && !end.destroyed) owned.push_back(id);
  }
  for (EndId id : owned) {
    if (EndState* end = find_end(id)) begin_destroy(*end);
  }
  processes_.erase(pid);
  completions_.erase(pid);
}

// ===================== delivery =====================

void Kernel::deliver_pending(EndState& end) {
  if (!end.recv.has_value() || end.pending.empty()) return;
  PendingMsg pm = std::move(end.pending.front());
  end.pending.pop_front();
  const std::size_t len = std::min(end.recv->max_len, pm.msg.data.size());
  end.recv.reset();

  Completion c;
  c.end = end.id;
  c.direction = Direction::kReceive;
  c.status = Status::kOk;
  c.length = len;
  c.trace = pm.msg.trace;
  c.data.assign(pm.msg.data.begin(),
                pm.msg.data.begin() + static_cast<std::ptrdiff_t>(len));

  sim::Duration cost = cluster_->costs().per_byte_copy *
                       static_cast<sim::Duration>(len);
  if (pm.msg.has_enclosure) {
    const wire::EnclosureDesc& desc = pm.msg.enclosure;
    // Install the moved end locally — resuming its ack-protocol
    // counters where the previous kernel stopped — and tell the home.
    EndState moved;
    moved.id = desc.end;
    moved.link = desc.link;
    moved.peer = desc.peer;
    moved.owner = end.owner;
    moved.peer_node = desc.peer_node;
    moved.home = desc.home;
    moved.next_send_seq = desc.next_send_seq;
    moved.recv_watermark = desc.recv_watermark;
    moved.last_delivered_len = desc.last_delivered_len;
    ends_.emplace(desc.end, std::move(moved));
    transmit(desc.home, wire::MoveUpdate{next_move_seq_++, desc.link,
                                         desc.end, node_, end.owner});
    c.enclosure = desc.end;
    cost += cluster_->costs().enclosure_processing;
  }
  ++end.unwaited_recv_completions;
  end.recv_watermark = pm.msg.seq;
  end.last_delivered_len = len;

  const Pid owner = end.owner;
  const EndId end_id = end.id;
  OwedAck owed{pm.msg.seq, len, pm.msg.from_end, pm.from_node, pm.msg.trace};
  cluster_->engine().schedule(cost, [this, owner, c = std::move(c), end_id,
                                     owed] {
    complete(owner, c);
    owe_ack(end_id, owed);
  });
}

void Kernel::owe_ack(EndId end_id, OwedAck owed) {
  EndState* end = find_end(end_id);
  if (end == nullptr) {
    // The end vanished (moved away or destroyed) between delivery and
    // this point: fall back to an immediate standalone ack, exactly the
    // v1 wire behaviour.
    transmit(owed.to, wire::MsgAck{owed.seq, owed.peer, owed.len, owed.trace},
             owed.trace);
    return;
  }
  flush_owed_ack(*end);  // stop-and-wait should make this a no-op
  end->owed_ack = owed;
  const sim::Duration delay = cluster_->costs().ack_coalesce_delay;
  if (delay <= 0) {
    flush_owed_ack(*end);
    return;
  }
  // Decide one microstep later whether coalescing can pay off.  The
  // delivery completion scheduled just before us wakes the receiving
  // thread first (FIFO tie order), and a reply posts its SendActivity
  // synchronously before sleeping through its send cost — so by the
  // time this runs, any reverse traffic this ack could ride is already
  // visible on the end.  If none is (the link is idle), or the posted
  // frame will not reach the wire inside the coalescing window,
  // withholding the ack buys nothing and costs the remote sender a
  // full ack_coalesce_delay of retransmit-timer exposure (the E3
  // regression): flush immediately instead.
  cluster_->engine().schedule(0, [this, end_id, seq = owed.seq] {
    EndState* e = find_end(end_id);
    if (e == nullptr || !e->owed_ack.has_value() || e->owed_ack->seq != seq) {
      return;
    }
    const sim::Duration window = cluster_->costs().ack_coalesce_delay;
    const bool reverse_pending =
        e->send.has_value() && e->send->first_sent_at == 0 &&
        e->peer_node == e->owed_ack->to &&
        e->send->planned_tx_at <= cluster_->engine().now() + window;
    if (!reverse_pending) {
      flush_owed_ack(*e);
      return;
    }
    // A frame to the acked node hits the wire within the window: hold
    // the ack for attach_piggyback, with the timer as a safety net in
    // case that send dies before transmission.
    e->ack_timer.cancel();
    e->ack_timer = cluster_->engine().schedule_cancellable(
        window, [this, end_id, seq] {
          EndState* e2 = find_end(end_id);
          if (e2 == nullptr || !e2->owed_ack.has_value() ||
              e2->owed_ack->seq != seq) {
            return;
          }
          flush_owed_ack(*e2);
        });
  });
}

void Kernel::flush_owed_ack(EndState& end) {
  if (!end.owed_ack.has_value()) return;
  const OwedAck owed = *end.owed_ack;
  end.ack_timer.cancel();
  end.owed_ack.reset();
  transmit(owed.to, wire::MsgAck{owed.seq, owed.peer, owed.len, owed.trace},
           owed.trace);
}

void Kernel::fail_end_activities(EndState& end, Status status) {
  // An ack still coalescing must not die with the end: the peer's send
  // did complete, and it must hear so before it hears the link is gone.
  flush_owed_ack(end);
  if (end.send.has_value()) {
    Completion c;
    c.end = end.id;
    c.direction = Direction::kSend;
    c.status = status;
    // A failed send never moved its enclosure; give it back.
    if (end.send->enclosure.valid()) {
      if (EndState* enc = find_end(end.send->enclosure)) {
        enc->in_transit = false;
      }
    }
    clear_send(end);
    complete(end.owner, c);
  }
  if (end.recv.has_value()) {
    Completion c;
    c.end = end.id;
    c.direction = Direction::kReceive;
    c.status = status;
    end.recv.reset();
    ++end.unwaited_recv_completions;
    complete(end.owner, c);
  }
  // Pending undelivered messages: bounce to their senders.
  while (!end.pending.empty()) {
    PendingMsg pm = std::move(end.pending.front());
    end.pending.pop_front();
    transmit(pm.from_node,
             wire::MsgNackDestroyed{pm.msg.seq, pm.msg.from_end});
  }
}

// ===================== frame handlers =====================

void Kernel::handle(const wire::Msg& m, net::NodeId from) {
  // A piggybacked ack settles the reverse direction first — it may well
  // be what this very frame's recipient is blocked on.
  if (m.has_ack) apply_ack(m.to_end, m.ack_seq, m.ack_len, from);
  EndState* end = find_end(m.to_end);
  if (end == nullptr) {
    if (auto it = forwarded_.find(m.to_end); it != forwarded_.end()) {
      transmit(from,
               wire::MsgNackMoved{m.seq, m.from_end, m.to_end, it->second});
    } else {
      transmit(from, wire::MsgNackDestroyed{m.seq, m.from_end});
    }
    return;
  }
  if (end->destroyed) {
    transmit(from, wire::MsgNackDestroyed{m.seq, m.from_end});
    return;
  }
  if (deduplicate(*end, m, from)) return;
  end->pending.push_back(PendingMsg{m, from});
  deliver_pending(*end);
}

bool Kernel::deduplicate(EndState& end, const wire::Msg& m, net::NodeId from) {
  // Cumulative-ack watermark: per-end seqs are strictly increasing and
  // the sender is stop-and-wait, so anything at or below the watermark
  // is a duplicate — no matter how long the medium delayed it.  (The
  // old 16-entry `acked` deque forgot deliveries and let a duplicate
  // delayed past 16 later ones through; see
  // CharlotteAckProtocol.DelayedDuplicateBeyondOldWindowIsScreened.)
  if (m.seq <= end.recv_watermark) {
    if (m.seq == end.recv_watermark) {
      // The sender may still be retransmitting this one: its ack (or a
      // predecessor) was lost.  Re-ack immediately — never coalesced —
      // so its timer stands down.
      if (!cluster_->costs().debug_drop_reacks) {
        transmit(from,
                 wire::MsgAck{m.seq, m.from_end, end.last_delivered_len,
                              m.trace},
                 m.trace);
      }
    }
    // Below the watermark the sender has long since moved on (it could
    // only start seq n+1 after settling seq n); nobody needs an ack.
    return true;
  }
  for (const PendingMsg& pm : end.pending) {
    if (pm.msg.seq == m.seq) return true;  // queued; delivery will ack
  }
  return false;
}

void Kernel::apply_ack(EndId to_end, std::uint64_t seq, std::size_t len,
                       net::NodeId from) {
  EndState* end = find_end(to_end);
  if (end == nullptr || !end->send.has_value() ||
      end->send->msg.seq != seq) {
    return;  // stale ack (e.g. the send was failed by a LinkDown race)
  }
  if (cluster_->costs().adaptive_rto && end->send->attempts == 1 &&
      end->send->first_sent_at > 0) {
    // Karn's rule: only unretransmitted exchanges produce samples (a
    // retransmitted one can't tell which copy this ack answers).
    end->rtt.observe(cluster_->engine().now() - end->send->first_sent_at);
  }
  const EndId enclosure = end->send->enclosure;
  clear_send(*end);
  Completion c;
  c.end = end->id;
  c.direction = Direction::kSend;
  c.status = Status::kOk;
  c.length = len;
  complete(end->owner, c);

  if (enclosure.valid()) {
    // The enclosure now lives at the receiver: retire the local record,
    // leave a tombstone, bounce anything that was parked on it.
    if (EndState* enc = find_end(enclosure)) {
      flush_owed_ack(*enc);  // an ack it still owed leaves from here
      while (!enc->pending.empty()) {
        PendingMsg pm = std::move(enc->pending.front());
        enc->pending.pop_front();
        transmit(pm.from_node, wire::MsgNackMoved{pm.msg.seq, pm.msg.from_end,
                                                  enclosure, from});
      }
      ends_.erase(enclosure);
    }
    forwarded_[enclosure] = from;
  }
}

void Kernel::handle(const wire::MsgAck& m, net::NodeId from) {
  apply_ack(m.to_end, m.seq, m.delivered_len, from);
}

void Kernel::handle(const wire::MsgNackMoved& m, net::NodeId /*from*/) {
  EndState* end = find_end(m.to_end);
  if (end == nullptr || !end->send.has_value() ||
      end->send->msg.seq != m.seq) {
    return;
  }
  end->peer_node = m.new_node;
  const Costs& costs = cluster_->costs();
  const sim::Duration cost =
      costs.frame_processing +
      costs.per_byte_copy *
          static_cast<sim::Duration>(end->send->msg.data.size());
  // Count the retransmit, stamp its trace record, and re-arm the timer
  // only when the deferred frame actually leaves.  Doing any of it here
  // — while the repackaging cost is still being paid — double-counts
  // whenever an ack (a racing re-ack, or a CancelReply) lands inside
  // the cost window: the send would already be settled, yet
  // `retransmits_` claimed a retransmission and the freshly-armed timer
  // could fire a spurious copy measured from the wrong origin.
  cluster_->engine().schedule(cost, [this, id = m.to_end, seq = m.seq] {
    EndState* e = find_end(id);
    if (e == nullptr || e->destroyed || !e->send.has_value() ||
        e->send->msg.seq != seq) {
      return;  // settled while the kernel was repackaging; nothing to resend
    }
    ++retransmits_;
    if (auto* rec = trace::get(cluster_->engine())) {
      rec->instant(node_.value(), "kernel", "msg.retransmit.moved",
                   e->send->msg.trace, seq, e->peer_node.value());
    }
    transmit(e->peer_node, e->send->msg, e->send->msg.trace);
    arm_send_timer(*e);
  });
}

void Kernel::handle(const wire::MsgNackDestroyed& m, net::NodeId /*from*/) {
  EndState* end = find_end(m.to_end);
  if (end == nullptr || !end->send.has_value() ||
      end->send->msg.seq != m.seq) {
    return;
  }
  end->destroyed = true;
  fail_end_activities(*end, Status::kLinkDestroyed);
}

void Kernel::handle(const wire::CancelReq& m, net::NodeId from) {
  EndState* end = find_end(m.to_end);
  bool revoked = false;
  if (end != nullptr) {
    auto it = std::find_if(
        end->pending.begin(), end->pending.end(),
        [&](const PendingMsg& pm) { return pm.msg.seq == m.seq; });
    if (it != end->pending.end()) {
      end->pending.erase(it);
      revoked = true;
    }
  }
  transmit(from, wire::CancelReply{m.seq, m.from_end, revoked});
}

void Kernel::handle(const wire::CancelReply& m, net::NodeId /*from*/) {
  if (!m.revoked) return;  // delivery won the race; MsgAck settles it
  EndState* end = find_end(m.to_end);
  if (end == nullptr || !end->send.has_value() ||
      end->send->msg.seq != m.seq) {
    return;
  }
  if (end->send->enclosure.valid()) {
    if (EndState* enc = find_end(end->send->enclosure)) {
      enc->in_transit = false;
    }
  }
  clear_send(*end);
  Completion c;
  c.end = end->id;
  c.direction = Direction::kSend;
  c.status = Status::kCancelled;
  complete(end->owner, c);
}

void Kernel::handle(const wire::MoveUpdate& m, net::NodeId from) {
  auto it = homes_.find(m.link);
  RELYNX_ASSERT_MSG(it != homes_.end(), "MoveUpdate at non-home kernel");
  HomeRecord& rec = it->second;
  if (rec.destroyed) {
    transmit(from, wire::MoveAck{m.move_seq, m.end, true, net::NodeId()});
    return;
  }
  HomeEndInfo& moved = (rec.a.end == m.end) ? rec.a : rec.b;
  HomeEndInfo& fixed = (rec.a.end == m.end) ? rec.b : rec.a;
  RELYNX_ASSERT(moved.end == m.end);
  moved.node = m.new_node;
  moved.owner = m.new_owner;
  transmit(fixed.node, wire::PeerMoved{m.link, fixed.end, m.new_node});
  transmit(from, wire::MoveAck{m.move_seq, m.end, false, fixed.node});
}

void Kernel::handle(const wire::PeerMoved& m, net::NodeId from) {
  EndState* end = find_end(m.end);
  if (end == nullptr) {
    // The informed end itself moved meanwhile; chase it.
    if (auto it = forwarded_.find(m.end); it != forwarded_.end()) {
      transmit(it->second, m);
    }
    return;
  }
  (void)from;
  end->peer_node = m.peer_node;
}

void Kernel::handle(const wire::MoveAck& m, net::NodeId /*from*/) {
  EndState* end = find_end(m.end);
  if (end == nullptr) return;
  if (m.link_destroyed) {
    end->destroyed = true;
    fail_end_activities(*end, Status::kLinkDestroyed);
    return;
  }
  end->peer_node = m.peer_node;
  deliver_pending(*end);
}

void Kernel::handle(const wire::DestroyUpdate& m, net::NodeId /*from*/) {
  auto it = homes_.find(m.link);
  RELYNX_ASSERT_MSG(it != homes_.end(), "DestroyUpdate at non-home kernel");
  HomeRecord& rec = it->second;
  if (rec.destroyed) return;
  rec.destroyed = true;
  transmit(rec.a.node, wire::LinkDown{m.link, rec.a.end});
  transmit(rec.b.node, wire::LinkDown{m.link, rec.b.end});
}

void Kernel::handle(const wire::LinkDown& m, net::NodeId /*from*/) {
  EndState* end = find_end(m.end);
  if (end == nullptr) {
    if (auto it = forwarded_.find(m.end); it != forwarded_.end()) {
      transmit(it->second, m);
    }
    return;
  }
  if (end->destroyed) return;  // we initiated; already failed locally
  end->destroyed = true;
  fail_end_activities(*end, Status::kLinkDestroyed);
}

}  // namespace charlotte
