// The simulated Charlotte kernel (paper §3.1).
//
// One Kernel instance per Crystal node, all attached to a shared token
// ring.  User code (simulated processes) makes kernel calls as
// awaitable coroutines; every call charges the cost model, and all
// inter-node work travels as wire::KernelFrame traffic on the ring.
//
// Semantics reproduced from the paper:
//   * duplex links, one process per end;
//   * MakeLink / Destroy / Send / Receive / Cancel / Wait;
//   * at most one outstanding activity per direction per end;
//   * at most one enclosure per Send;
//   * completions reported only through Wait;
//   * Cancel of a Receive fails once a message has arrived;
//   * Cancel of a Send races the delivery and may lose;
//   * destroying a link (or a process) fails the other side's
//     activities with a distinguishable status;
//   * link location is *absolute*: every move runs a three-party
//     agreement through the link's home kernel (see wire.hpp).
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "charlotte/types.hpp"
#include "charlotte/wire.hpp"
#include "common/result.hpp"
#include "common/rtt_estimator.hpp"
#include "form/packer.hpp"
#include "net/packet.hpp"
#include "net/token_ring.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"

namespace charlotte {

class Cluster;

// Per-node kernel.
class Kernel {
 public:
  Kernel(Cluster& cluster, net::NodeId node);
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  [[nodiscard]] net::NodeId node() const { return node_; }

  // ---- kernel calls (invoked by local processes) ---------------------
  // Bounded-time calls still charge simulated CPU, hence Task-returning.
  [[nodiscard]] sim::Task<common::Result<LinkPair, Status>> make_link(
      Pid caller);
  // `trace` is the causal identity of the RPC this payload serves; the
  // kernel stamps it into the Msg (and its acks and retransmits) so the
  // trace stream can follow it across the ring.
  [[nodiscard]] sim::Task<Status> send(Pid caller, EndId end, Payload data,
                                       EndId enclosure = EndId::invalid(),
                                       std::uint64_t trace = 0);
  [[nodiscard]] sim::Task<Status> receive(Pid caller, EndId end,
                                          std::size_t max_len);
  [[nodiscard]] sim::Task<Status> cancel(Pid caller, EndId end,
                                         Direction direction);
  [[nodiscard]] sim::Task<Status> destroy(Pid caller, EndId end);
  // Blocks until an activity of `caller` completes.
  [[nodiscard]] sim::Task<Completion> wait(Pid caller);

  // Non-blocking poll used by tests.
  [[nodiscard]] bool completion_ready(Pid caller);

  // Posts a synthetic completion to a process's Wait queue.  Used by
  // language run-time packages to wake their own kernel-wait pump (e.g.
  // at process shutdown); not a Charlotte call.
  void inject_completion(Pid pid, Completion c) { complete(pid, std::move(c)); }

  // ---- failure notices -------------------------------------------------
  // The kernel has learned (from the fault layer, or from exhausted
  // retransmission) that `peer` is unreachable.  Every link with an end
  // on `peer` fails absolutely: local activities complete with
  // kLinkFailed and the end is dead, exactly as the paper requires of
  // Charlotte's full link-state knowledge.
  void notify_peer_lost(net::NodeId peer);

  // ---- process lifecycle ---------------------------------------------
  void register_process(Pid pid);
  // Destroys all links attached to the process (normal exit and crash
  // look identical to peers, per the paper's requirement).
  void terminate_process(Pid pid);
  [[nodiscard]] bool process_alive(Pid pid) const {
    return processes_.contains(pid);
  }

  // ---- instrumentation -------------------------------------------------
  [[nodiscard]] std::uint64_t frames_emitted() const { return frames_out_; }
  [[nodiscard]] std::uint64_t move_protocol_frames() const {
    return move_frames_;
  }
  [[nodiscard]] std::uint64_t nack_retransmits() const { return retransmits_; }
  // The RPC-formation packer between this kernel and the medium (E16).
  [[nodiscard]] const form::Packer& packer() const { return packer_; }

 private:
  friend class Cluster;

  struct SendActivity {
    wire::Msg msg;  // retained whole for NACK- and timeout-driven resends
    EndId enclosure = EndId::invalid();
    bool cancel_requested = false;
    int attempts = 1;
    sim::TimerHandle retry;  // armed only when send_retransmit_timeout > 0
    sim::Time first_sent_at = 0;  // first transmission (Karn: RTT samples
                                  // are taken only from unretransmitted
                                  // exchanges)
    sim::Duration cur_rto = 0;    // current timeout; doubles per attempt
    sim::Time planned_tx_at = 0;  // when the posted-but-unsent frame will
                                  // reach the wire; lets the ack path see
                                  // whether coalescing can ever pay off
  };
  struct RecvActivity {
    std::size_t max_len = 0;
  };
  struct PendingMsg {
    wire::Msg msg;
    net::NodeId from_node;
  };
  // An acknowledgement owed for a completed delivery, withheld for
  // ack_coalesce_delay in the hope of piggybacking on reverse traffic.
  struct OwedAck {
    std::uint64_t seq = 0;
    std::size_t len = 0;
    EndId peer;        // the sending end (MsgAck.to_end)
    net::NodeId to;    // the kernel that sent the Msg
    std::uint64_t trace = 0;
  };
  struct EndState {
    EndId id;
    LinkId link;
    EndId peer;
    Pid owner;
    net::NodeId peer_node;  // kept authoritative by the home protocol
    net::NodeId home;
    bool destroyed = false;
    bool in_transit = false;  // enclosed in an unacked outgoing Msg
    std::optional<SendActivity> send;
    std::optional<RecvActivity> recv;
    std::deque<PendingMsg> pending;
    int unwaited_recv_completions = 0;
    // ---- ack protocol v2 (see DESIGN.md) ----
    // Send sequence numbers are allocated per END (not per kernel) and
    // travel with the end when it moves, so the stream of seqs arriving
    // at the peer is strictly increasing for the lifetime of the link.
    std::uint64_t next_send_seq = 1;
    // Cumulative-ack watermark: the highest seq delivered on this end,
    // and the length accepted for it.  Dedup is a single compare — any
    // windowed structure (the old 16-entry deque) can be evaded by a
    // sufficiently delayed duplicate; the watermark cannot.  Stop-and-
    // wait per direction means no out-of-order gap can exist, so the
    // out-of-order bitmap that would normally ride alongside the
    // watermark degenerates to "always empty" and is not stored.
    std::uint64_t recv_watermark = 0;
    std::size_t last_delivered_len = 0;
    std::optional<OwedAck> owed_ack;
    sim::TimerHandle ack_timer;  // standalone-ack fallback (coalescing)
    // Jacobson/Karels RTT estimate for the path to peer_node (shared
    // estimator, common/rtt_estimator.hpp).
    common::RttEstimator rtt;
  };
  struct HomeEndInfo {
    EndId end;
    net::NodeId node;
    Pid owner;
  };
  struct HomeRecord {
    LinkId link;
    HomeEndInfo a;
    HomeEndInfo b;
    bool destroyed = false;
  };

  // frame handling
  void on_frame(const net::Frame& frame);
  void on_batch(const net::Frame& frame);
  void handle(const wire::Msg& m, net::NodeId from);
  void handle(const wire::MsgAck& m, net::NodeId from);
  void handle(const wire::MsgNackMoved& m, net::NodeId from);
  void handle(const wire::MsgNackDestroyed& m, net::NodeId from);
  void handle(const wire::CancelReq& m, net::NodeId from);
  void handle(const wire::CancelReply& m, net::NodeId from);
  void handle(const wire::MoveUpdate& m, net::NodeId from);
  void handle(const wire::PeerMoved& m, net::NodeId from);
  void handle(const wire::MoveAck& m, net::NodeId from);
  void handle(const wire::DestroyUpdate& m, net::NodeId from);
  void handle(const wire::LinkDown& m, net::NodeId from);

  // `trace` stamps the outgoing net::Frame (and the frame.tx record);
  // pass the Msg/MsgAck trace where one exists, 0 for protocol frames.
  void transmit(net::NodeId dst, wire::KernelFrame frame,
                std::uint64_t trace = 0);
  void deliver_pending(EndState& end);
  void complete(Pid pid, Completion c);
  void fail_end_activities(EndState& end, Status status);
  void begin_destroy(EndState& end);
  void arm_send_timer(EndState& end);
  void on_send_timeout(EndId end_id, std::uint64_t seq);
  void clear_send(EndState& end);  // cancels the retry timer too
  // True if `seq` was already delivered on `end` (re-acks if so).
  bool deduplicate(EndState& end, const wire::Msg& m, net::NodeId from);
  // ---- ack protocol v2 helpers ----
  // Settle `end`'s outstanding send if it matches `seq` (shared by
  // standalone MsgAck frames and piggybacked acks on data frames).
  void apply_ack(EndId to_end, std::uint64_t seq, std::size_t len,
                 net::NodeId from);
  // Record an owed ack and start (or restart) the coalescing timer.
  void owe_ack(EndId end_id, OwedAck owed);
  // Transmit the owed standalone MsgAck now, if one is pending.
  void flush_owed_ack(EndState& end);
  // Attach the owed ack to an outgoing Msg bound for `dst`, if it is
  // owed to that kernel.
  void attach_piggyback(EndState& end, wire::Msg& m, net::NodeId dst);
  // Initial retransmission timeout for a fresh send on `end`.
  [[nodiscard]] sim::Duration initial_rto(const EndState& end) const;
  [[nodiscard]] EndState* find_end(EndId id);
  [[nodiscard]] Status validate_owned(Pid caller, EndId id, EndState** out);

  Cluster* cluster_;
  net::NodeId node_;
  form::Packer packer_;  // sits between transmit() and the medium
  std::unordered_map<EndId, EndState> ends_;
  std::unordered_map<LinkId, HomeRecord> homes_;
  std::unordered_map<EndId, net::NodeId> forwarded_;  // tombstones
  std::unordered_set<Pid> processes_;
  std::unordered_map<Pid, std::unique_ptr<sim::Mailbox<Completion>>>
      completions_;
  std::uint64_t next_move_seq_ = 1;
  std::uint64_t frames_out_ = 0;
  std::uint64_t move_frames_ = 0;
  std::uint64_t retransmits_ = 0;
};

// A Crystal: N nodes running Charlotte on a token ring.
class Cluster {
 public:
  Cluster(sim::Engine& engine, std::size_t nodes,
          net::TokenRingParams ring_params = {}, Costs costs = {});
  // Runs the cluster over an externally-owned medium (typically a
  // fault::FaultyMedium wrapping a TokenRing).  The medium must outlive
  // the cluster; ring() is unavailable in this mode.
  Cluster(sim::Engine& engine, std::size_t nodes, net::Medium& medium,
          Costs costs = {});
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;
  ~Cluster();

  [[nodiscard]] sim::Engine& engine() { return *engine_; }
  [[nodiscard]] const Costs& costs() const { return costs_; }
  [[nodiscard]] net::TokenRing& ring() {
    RELYNX_ASSERT_MSG(ring_ != nullptr, "cluster runs on an external medium");
    return *ring_;
  }
  [[nodiscard]] net::Medium& medium() { return *medium_; }
  [[nodiscard]] std::size_t node_count() const { return kernels_.size(); }

  // ---- failure notices (driven by the fault layer) --------------------
  // Both ends of the a<->b path learn the other side is unreachable.
  void sever(net::NodeId a, net::NodeId b);
  // Every other kernel learns `down` is unreachable (node crash).
  void notify_node_down(net::NodeId down);

  [[nodiscard]] Kernel& kernel(net::NodeId node);
  [[nodiscard]] Pid create_process(net::NodeId node);
  [[nodiscard]] Kernel& kernel_of(Pid pid);
  [[nodiscard]] net::NodeId node_of(Pid pid) const;
  void terminate(Pid pid);  // normal exit or injected crash

  // Loader fiat: creates a link with end1 owned by `a` and end2 owned by
  // `b`, as the Crystal loader did when wiring freshly loaded processes
  // to each other and to long-lived servers.  No protocol traffic and no
  // cost; use before (or outside) timed regions.
  [[nodiscard]] LinkPair bootstrap_link(Pid a, Pid b);

  // Total protocol frames (all kernels) — experiment E2/E9 counters.
  [[nodiscard]] std::uint64_t total_frames() const;
  [[nodiscard]] std::uint64_t total_move_frames() const;

 private:
  friend class Kernel;
  [[nodiscard]] EndId new_end() { return end_ids_.next(); }
  [[nodiscard]] LinkId new_link_id() { return link_ids_.next(); }

  sim::Engine* engine_;
  Costs costs_;
  std::unique_ptr<net::TokenRing> ring_;  // null when medium is external
  net::Medium* medium_;                   // the wire all kernels use
  std::vector<std::unique_ptr<Kernel>> kernels_;
  std::unordered_map<Pid, net::NodeId> process_node_;
  common::IdAllocator<EndId> end_ids_;
  common::IdAllocator<LinkId> link_ids_;
  common::IdAllocator<Pid> pids_;
};

}  // namespace charlotte
