// Charlotte kernel interface types (paper §3.1).
//
// Charlotte provides duplex links with a single process at each end, and
// six kernel calls: MakeLink, Destroy, Send, Receive, Cancel, Wait.  All
// calls return a status; all but Wait complete in bounded time; Wait
// blocks until some activity completes and returns its description.
// The kernel allows ONE outstanding activity per direction per link end,
// and a Send may enclose at most one link end.
#pragma once

#include <cstdint>
#include <vector>

#include "common/strong_id.hpp"
#include "host/process.hpp"
#include "sim/time.hpp"

namespace charlotte {

using host::Pid;

struct EndTag {
  static const char* prefix() { return "end"; }
};
// A link end; EndIds are global and survive moves (the end keeps its
// identity when it changes owner).
using EndId = common::StrongId<EndTag>;

struct LinkTag {
  static const char* prefix() { return "link"; }
};
using LinkId = common::StrongId<LinkTag>;

using Payload = std::vector<std::uint8_t>;

enum class Status : std::uint8_t {
  kOk,
  kNoSuchEnd,        // invalid or foreign end handle
  kNotOwner,         // end exists but belongs to another process
  kActivityPending,  // an activity in that direction is already posted
  kNoActivity,       // Cancel with nothing to cancel
  kCancelTooLate,    // the activity already matched
  kLinkDestroyed,    // other end (or this one) was destroyed
  kEndInTransit,     // end is currently enclosed in an unacked message
  kBadEnclosure,     // enclosure invalid / busy / equal to carrier end
  kCancelled,        // activity revoked by a successful Cancel
  kLinkFailed,       // transport gave up: peer node crashed or unreachable.
                     // Distinct from kLinkDestroyed — nobody destroyed the
                     // link; the kernel is reporting an *absolute* failure
                     // notice, which the paper contrasts with SODA's
                     // out-of-date hints (§2, §3.1).
};

[[nodiscard]] constexpr const char* to_string(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kNoSuchEnd: return "no-such-end";
    case Status::kNotOwner: return "not-owner";
    case Status::kActivityPending: return "activity-pending";
    case Status::kNoActivity: return "no-activity";
    case Status::kCancelTooLate: return "cancel-too-late";
    case Status::kLinkDestroyed: return "link-destroyed";
    case Status::kEndInTransit: return "end-in-transit";
    case Status::kBadEnclosure: return "bad-enclosure";
    case Status::kCancelled: return "cancelled";
    case Status::kLinkFailed: return "link-failed";
  }
  return "?";
}

enum class Direction : std::uint8_t { kSend, kReceive };

// What Wait returns: "link end, direction, length, enclosure" plus a
// status (completions can report failure, e.g. a destroyed link).
struct Completion {
  EndId end;
  Direction direction = Direction::kSend;
  Status status = Status::kOk;
  std::size_t length = 0;
  EndId enclosure = EndId::invalid();  // received enclosure, if any
  Payload data;                        // delivered bytes (receive side)
  // Causal identity recovered from the message that produced this
  // completion (receive side), so language run-times continue the
  // sender's trace chain.  0 = untraced.
  std::uint64_t trace = 0;
};

struct LinkPair {
  EndId end1;
  EndId end2;
};

// Cost model, nominally a VAX 11/750 running the (deliberately
// unoptimized) Charlotte kernel.  Calibrated so that a null
// kernel-level RPC round trip lands near the paper's 55 ms and a
// 1000-byte-each-way RPC near 60 ms (§3.3).
struct Costs {
  // user->kernel trap, validation, activity bookkeeping (each call)
  sim::Duration call_overhead = sim::msec(9);
  // kernel work to emit / absorb one ring frame
  sim::Duration frame_processing = sim::msec(9);
  // per-byte copy between user buffer and kernel frame (each crossing)
  sim::Duration per_byte_copy = sim::nsec(900);
  // extra kernel work when a frame carries an enclosure (move protocol
  // bookkeeping on each involved kernel)
  sim::Duration enclosure_processing = sim::msec(2);
  // Ack coalescing (ack protocol v2): after a delivery the owed ack is
  // withheld for this long, hoping to piggyback on a data frame headed
  // the other way on the same link; if none leaves in time a standalone
  // MsgAck goes out so idle links still ack promptly.  0 = ack
  // immediately with a standalone frame (the v1 wire behaviour).
  sim::Duration ack_coalesce_delay = sim::msec(3);
  // ---- RPC formation (src/form/, DESIGN.md §14) ----
  // Kernel frames posted to the same destination node within form_delay
  // of each other are packed into one form::Batch wire frame of up to
  // form_max_bytes; the receiver pays frame_processing once for the
  // batch plus form_enclosure_processing to demultiplex each enclosure
  // (much cheaper than a full frame absorption — no interrupt, no
  // header validation, just a length-prefixed walk).  0 = today's
  // frame-per-message wire (the default until gated wins are recorded).
  sim::Duration form_delay = sim::Duration(0);
  std::size_t form_max_bytes = 1024;
  sim::Duration form_enclosure_processing = sim::msec(1);
  // Transport-level send retransmission, for running over an impaired
  // medium.  0 disables the timer entirely (the seed behaviour: the
  // ring never loses frames, so Charlotte never needed one).  When
  // enabled, an unacked Msg is retransmitted until max_send_attempts,
  // then the kernel declares the link failed — Charlotte's absolute
  // failure notice.
  sim::Duration send_retransmit_timeout = sim::Duration(0);
  int max_send_attempts = 5;
  // Retransmission pacing.  With adaptive_rto the kernel keeps a
  // Jacobson/Karels estimator per link end (srtt + 4*rttvar, Karn's
  // rule for samples) and doubles the timeout on every retransmission;
  // send_retransmit_timeout is then only the initial RTO before the
  // first sample.  false = the v1 behaviour: a fixed timeout re-armed
  // verbatim after every attempt.
  bool adaptive_rto = true;
  sim::Duration rto_min = sim::msec(10);
  sim::Duration rto_max = sim::msec(2000);
  // TESTING ONLY — a deliberately injected semantic bug used by the
  // schedule-exploration checker (src/check/) to prove it can catch and
  // shrink real divergences.  When true, an already-delivered Msg whose
  // ack was lost is deduplicated but never RE-acked, so the sender's
  // retransmit timer can never stand down: it exhausts its attempts and
  // declares the link failed even though the message (and usually the
  // reply) got through.  Never enable outside the checker's self-test.
  bool debug_drop_reacks = false;
};

}  // namespace charlotte
