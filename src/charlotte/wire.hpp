// Inter-kernel frames for the simulated Charlotte kernel.
//
// Charlotte kernels agree on link locations through an "all three
// parties" protocol (paper §6, lesson one).  We realize that agreement
// with a registrar: the kernel on the node where a link was created is
// its *home* and serializes every location change (moves, destruction).
// Movers update the home; the home notifies the stationary end; data
// frames that race a move are NACKed back to the sending kernel with the
// new location and retransmitted.  This keeps the defining property the
// paper contrasts with hints — nobody acts on stale location state;
// every change is acknowledged — while staying tractable, and it charges
// the honest price: four protocol frames per moved end, against zero
// for SODA/Chrysalis hints (experiments E1/E2/E4).
#pragma once

#include <cstdint>
#include <variant>

#include "charlotte/types.hpp"
#include "net/packet.hpp"

namespace charlotte::wire {

// Describes an enclosure riding in a data frame.  Besides routing
// state, it carries the moving end's ack-protocol counters (see
// DESIGN.md "Charlotte ack protocol v2"): sequence numbers are per-end,
// so the receiving kernel must resume the end's send counter and its
// receive watermark exactly where the old kernel left them — otherwise
// a retransmit chasing the moved end could be delivered a second time.
struct EnclosureDesc {
  EndId end;                 // the moving end
  LinkId link;               // its link
  EndId peer;                // the stationary end
  net::NodeId peer_node;     // mover's belief of the peer's location
  net::NodeId home;          // the link's registrar node
  std::uint64_t next_send_seq = 1;     // end's send-sequence counter
  std::uint64_t recv_watermark = 0;    // highest seq delivered to it
  std::size_t last_delivered_len = 0;  // its accepted length (for re-acks)
};

// Data message (the only frame a user payload rides in).
struct Msg {
  std::uint64_t seq;         // sending-END-unique, for acks/cancels
  EndId from_end;
  EndId to_end;
  Payload data;
  bool has_enclosure = false;
  EnclosureDesc enclosure{};
  // Causal identity (trace::TraceId, 0 = untraced).  Retained across
  // NACK- and timeout-driven retransmits so every copy of the message is
  // attributable to the originating RPC.  Simulation metadata: not
  // counted in frame_bytes.
  std::uint64_t trace = 0;
  // Piggybacked acknowledgement (ack protocol v2): an ack the sending
  // end owed for a delivery in the opposite direction rides along
  // instead of costing a standalone MsgAck frame.  It acknowledges
  // `ack_seq` on `to_end`'s outstanding send (the reverse direction of
  // this very link).
  bool has_ack = false;
  std::uint64_t ack_seq = 0;
  std::size_t ack_len = 0;
};

// Delivery acknowledged; sender's Wait may complete.
struct MsgAck {
  std::uint64_t seq;
  EndId to_end;              // the *sending* end
  std::size_t delivered_len;
  std::uint64_t trace = 0;   // inherited from the acked Msg
};

// Addressee end is no longer here; retransmit to `new_node`.
struct MsgNackMoved {
  std::uint64_t seq;
  EndId to_end;              // the sending end (route back)
  EndId moved_end;
  net::NodeId new_node;
};

// Addressee end's link is destroyed; fail the send.
struct MsgNackDestroyed {
  std::uint64_t seq;
  EndId to_end;              // the sending end
};

// Sender asks the receiving kernel to revoke a not-yet-delivered Msg.
struct CancelReq {
  std::uint64_t seq;         // seq of the Msg to revoke
  EndId from_end;            // sending end (route reply back)
  EndId to_end;              // receiving end
};

struct CancelReply {
  std::uint64_t seq;
  EndId to_end;              // the original sending end
  bool revoked;              // false: already delivered (cancel too late)
};

// Mover -> home: end `end` of `link` now lives at `new_node`/`new_owner`.
struct MoveUpdate {
  std::uint64_t move_seq;
  LinkId link;
  EndId end;
  net::NodeId new_node;
  Pid new_owner;
};

// Home -> stationary end's kernel: your peer moved.
struct PeerMoved {
  LinkId link;
  EndId end;                 // the stationary end being informed
  net::NodeId peer_node;
};

// Home -> mover: move recorded (or the link is already dead).  Carries
// the home's authoritative record of the peer's location so the new
// owner starts with fresh routing state.
struct MoveAck {
  std::uint64_t move_seq;
  EndId end;
  bool link_destroyed;
  net::NodeId peer_node;
};

// Either end -> home: destroy the link.
struct DestroyUpdate {
  LinkId link;
  EndId from_end;
};

// Home -> an end's kernel: the link is destroyed; fail everything.
struct LinkDown {
  LinkId link;
  EndId end;                 // which local end this applies to
};

using KernelFrame =
    std::variant<Msg, MsgAck, MsgNackMoved, MsgNackDestroyed, CancelReq,
                 CancelReply, MoveUpdate, PeerMoved, MoveAck, DestroyUpdate,
                 LinkDown>;

// Frame sizes on the wire (headers; Msg adds its payload bytes).
[[nodiscard]] inline std::size_t frame_bytes(const KernelFrame& f) {
  struct Sizer {
    std::size_t operator()(const Msg& m) const {
      return 24 + m.data.size() + (m.has_enclosure ? 48 : 0) +
             (m.has_ack ? 12 : 0);
    }
    std::size_t operator()(const MsgAck&) const { return 16; }
    std::size_t operator()(const MsgNackMoved&) const { return 24; }
    std::size_t operator()(const MsgNackDestroyed&) const { return 16; }
    std::size_t operator()(const CancelReq&) const { return 20; }
    std::size_t operator()(const CancelReply&) const { return 16; }
    std::size_t operator()(const MoveUpdate&) const { return 28; }
    std::size_t operator()(const PeerMoved&) const { return 20; }
    std::size_t operator()(const MoveAck&) const { return 16; }
    std::size_t operator()(const DestroyUpdate&) const { return 16; }
    std::size_t operator()(const LinkDown&) const { return 16; }
  };
  return std::visit(Sizer{}, f);
}

}  // namespace charlotte::wire
