#include "check/explorer.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <memory>
#include <thread>
#include <utility>

#include "charlotte/kernel.hpp"
#include "check/linearizability.hpp"
#include "chrysalis/kernel.hpp"
#include "fault/faulty_medium.hpp"
#include "fault/invariant_checker.hpp"
#include "lynx/connect.hpp"
#include "lynx/lynx.hpp"
#include "net/csma_bus.hpp"
#include "net/token_ring.hpp"
#include "replica/replica.hpp"
#include "sim/random.hpp"
#include "soda/kernel.hpp"
#include "sweep/sweep.hpp"
#include "trace/trace.hpp"

namespace check {

namespace {

using net::NodeId;

// The ack-storm window.  Starts after bootstrap wiring has finished on
// every substrate and ends early enough that the retransmit budgets
// below ride it out with room to spare.
constexpr sim::Time kStormFrom = sim::msec(60);
constexpr sim::Time kStormTo = sim::msec(310);

// Formation window armed by RunConfig::formation / PlanSpec::kBatchStorm.
constexpr sim::Duration kFormDelay = sim::msec(2);

[[nodiscard]] bool formation_on(const RunConfig& cfg) {
  return cfg.formation || cfg.plan == PlanSpec::kBatchStorm;
}

fault::Plan plan_of(PlanSpec spec) {
  switch (spec) {
    case PlanSpec::kNone:
      return {};
    case PlanSpec::kAckStorm:
      // Server node 0 -> client node 1 only: requests keep getting
      // through, but their acks and the replies do not.
      return fault::Plan{}.drop_between(kStormFrom, kStormTo, 1.0, NodeId(0),
                                        NodeId(1));
    case PlanSpec::kBatchStorm:
      // Both directions dark: whole form::Batch frames die, losing all
      // their enclosures at once; the transport must re-deliver them.
      return fault::Plan{}
          .drop_between(kStormFrom, kStormTo, 1.0, NodeId(0), NodeId(1))
          .drop_between(kStormFrom, kStormTo, 1.0, NodeId(1), NodeId(0));
    case PlanSpec::kPrimaryCrash:
    case PlanSpec::kPrimaryBounce:
    case PlanSpec::kBackupBounce:
      // Crash plans are executed by the replica group's fault schedule
      // (medium crash + process termination), not by frame dropping.
      return {};
  }
  return {};
}

[[nodiscard]] constexpr bool is_crash_plan(PlanSpec spec) {
  return spec == PlanSpec::kPrimaryCrash || spec == PlanSpec::kPrimaryBounce ||
         spec == PlanSpec::kBackupBounce;
}

charlotte::Costs charlotte_costs(const RunConfig& cfg) {
  charlotte::Costs c;
  // 8 x 100ms of retransmission outlasts the storm window.
  c.send_retransmit_timeout = sim::msec(100);
  c.max_send_attempts = 8;
  c.debug_drop_reacks = cfg.inject_reack_bug;
  if (formation_on(cfg)) c.form_delay = kFormDelay;
  return c;
}

soda::Costs soda_costs(const RunConfig& cfg) {
  soda::Costs c;
  // 40 x 12ms of per-fragment retransmission outlasts the storm window.
  c.ack_timeout = sim::msec(12);
  c.max_transport_attempts = 40;
  if (formation_on(cfg)) c.form_delay = kFormDelay;
  return c;
}

lynx::ChrysalisBackendParams chrysalis_params(const RunConfig& cfg) {
  lynx::ChrysalisBackendParams p;
  if (formation_on(cfg)) p.form_delay = kFormDelay;
  return p;
}

net::CsmaBusParams quiet_bus() {
  net::CsmaBusParams p;
  p.broadcast_drop_prob = 0.0;  // loss comes from the plan, not the bus
  return p;
}

// Coroutine bodies are free functions (CP.51: no capturing coroutine
// lambdas); spawn sites wrap them in plain capturing lambdas.
sim::Task<> wire(lynx::Process* server, lynx::Process* client, int channels,
                 std::vector<lynx::LinkHandle>* server_ends,
                 std::vector<lynx::LinkHandle>* client_ends) {
  for (int ch = 0; ch < channels; ++ch) {
    auto [se, ce] = co_await lynx::connect_any(*server, *client);
    server_ends->push_back(se);
    client_ends->push_back(ce);
  }
}

sim::Task<> serve(lynx::ThreadCtx& ctx, lynx::LinkHandle link, int n) {
  ctx.enable_requests(link);
  for (int i = 0; i < n; ++i) {
    lynx::Incoming in = co_await ctx.receive();
    lynx::Message rep;
    rep.args = in.msg.args;
    co_await ctx.reply(in, std::move(rep));
  }
}

sim::Task<> drive(lynx::ThreadCtx& ctx, lynx::LinkHandle link, int n,
                  std::size_t bytes) {
  for (int i = 0; i < n; ++i) {
    lynx::Message m = lynx::make_message(
        "echo", {lynx::Bytes(bytes, static_cast<std::uint8_t>(i + 1))});
    (void)co_await ctx.call(link, std::move(m));
  }
}

}  // namespace

const char* to_string(PlanSpec spec) {
  switch (spec) {
    case PlanSpec::kNone: return "none";
    case PlanSpec::kAckStorm: return "ack-storm";
    case PlanSpec::kBatchStorm: return "batch-storm";
    case PlanSpec::kPrimaryCrash: return "primary-crash";
    case PlanSpec::kPrimaryBounce: return "primary-bounce";
    case PlanSpec::kBackupBounce: return "backup-bounce";
  }
  return "?";
}

std::optional<PlanSpec> plan_spec_from(std::string_view name) {
  if (name == "none") return PlanSpec::kNone;
  if (name == "ack-storm") return PlanSpec::kAckStorm;
  if (name == "batch-storm") return PlanSpec::kBatchStorm;
  if (name == "primary-crash") return PlanSpec::kPrimaryCrash;
  if (name == "primary-bounce") return PlanSpec::kPrimaryBounce;
  if (name == "backup-bounce") return PlanSpec::kBackupBounce;
  return std::nullopt;
}

const char* to_string(Workload w) {
  switch (w) {
    case Workload::kEcho: return "echo";
    case Workload::kReplica: return "replica";
  }
  return "?";
}

std::optional<Workload> workload_from(std::string_view name) {
  if (name == "echo") return Workload::kEcho;
  if (name == "replica") return Workload::kReplica;
  return std::nullopt;
}

namespace {

// Crash/restart instants per substrate, chosen to land mid-commit-stream
// for the default workload size: an op takes ~105 ms on Charlotte,
// ~38 ms on SODA, ~5 ms on Chrysalis (tests/replica/replica_test.cpp
// uses the same constants).
struct FaultTimes {
  sim::Time crash;
  sim::Time restart;
};

FaultTimes fault_times(load::Substrate s) {
  switch (s) {
    case load::Substrate::kCharlotte: return {sim::msec(300), sim::msec(700)};
    case load::Substrate::kSoda: return {sim::msec(120), sim::msec(280)};
    case load::Substrate::kChrysalis: return {sim::msec(20), sim::msec(45)};
  }
  return {sim::msec(100), sim::msec(200)};
}

replica::Options replica_options_of(const RunConfig& cfg) {
  replica::Options o;
  o.replicas = 3;
  o.clients = static_cast<std::size_t>(cfg.channels > 0 ? cfg.channels : 1);
  o.ops_per_client = cfg.calls;
  o.seed = cfg.seed;
  o.debug_stale_reads = cfg.inject_stale_bug;
  if (formation_on(cfg)) o.form_delay = kFormDelay;
  const FaultTimes ft = fault_times(cfg.substrate);
  switch (cfg.plan) {
    case PlanSpec::kPrimaryCrash:
      o.crash_primary_at = ft.crash;  // no restart: fail-over only
      break;
    case PlanSpec::kPrimaryBounce:
      o.crash_primary_at = ft.crash;
      o.restart_primary_at = ft.restart;
      break;
    case PlanSpec::kBackupBounce:
      o.crash_backup_at = ft.crash;
      o.restart_backup_at = ft.restart;
      break;
    default:
      break;
  }
  return o;
}

// The replica universe: the group builds the whole world (substrate,
// processes, fault schedule), so this path is mostly oracles.  The
// linearizability oracle leads — it is the one that understands
// replicated state; the reference model still checks the LYNX layer
// underneath it, with the expectation relaxed for orderly link death
// (clients terminate when done) and, under crash plans, for calls the
// crash cut short.
RunVerdict run_replica_one(const RunConfig& cfg) {
  sim::Engine engine;
  engine.set_tie_policy(
      {.kind = cfg.tie, .seed = cfg.seed, .horizon = cfg.horizon});
  trace::Recorder rec(engine, 1u << 18);
  replica::Group group(engine, cfg.substrate, replica_options_of(cfg));
  // A conforming run quiesces well inside a minute of simulated time
  // (slowest: Charlotte with a late restart, ~1.5 s); running against a
  // horizon turns "wedged forever" into a reportable verdict.
  const bool finished = engine.run_until(sim::sec(60));

  RunVerdict v;
  v.trace_digest = rec.digest();
  v.records = rec.total_emitted();

  const LinVerdict lin = check_trace(rec);
  v.calls_checked = lin.ops_checked;

  Expectation exp;
  exp.allowed_errors = {lynx::ErrorKind::kLinkDestroyed};
  exp.require_completion = !is_crash_plan(cfg.plan);
  ReferenceModel model(exp);
  const bool conforms = model.replay(rec);

  const std::uint64_t expected_ops =
      static_cast<std::uint64_t>(group.options().clients) *
      static_cast<std::uint64_t>(group.options().ops_per_client);
  const auto threads = group.thread_failures();
  if (!lin.ok) {
    v.failure = "linearizability: " + lin.failure;
  } else if (!finished) {
    v.failure = "wedged: engine still busy at the 60s horizon";
  } else if (!conforms) {
    v.divergence = model.divergence();
    v.failure = v.divergence->render();
  } else if (group.invariant_violation().has_value()) {
    v.failure = "medium invariant: " + *group.invariant_violation();
  } else if (!engine.process_failures().empty()) {
    v.failure = "process failure: " + engine.process_failures().front();
  } else if (!threads.empty()) {
    v.failure = "thread failure: " + threads.front();
  } else if (cfg.plan == PlanSpec::kNone &&
             (group.metrics().ok != expected_ops || group.metrics().err != 0)) {
    v.failure = "workload mismatch: expected " + std::to_string(expected_ops) +
                " ok ops, saw " + std::to_string(group.metrics().ok) + " ok + " +
                std::to_string(group.metrics().err) + " err";
  } else {
    v.ok = true;
  }
  return v;  // ~Group shuts the engine down before the world unwinds
}

}  // namespace

RunVerdict run_one(const RunConfig& cfg) {
  if (cfg.workload == Workload::kReplica) return run_replica_one(cfg);
  sim::Engine engine;
  // Tie-break keys are assigned at schedule time: the policy must be in
  // place before the first construction schedules anything.
  engine.set_tie_policy(
      {.kind = cfg.tie, .seed = cfg.seed, .horizon = cfg.horizon});
  trace::Recorder rec(engine, 1u << 18);

  // Substrate members, declared engine-first so teardown runs processes
  // -> kernels -> medium; engine.shutdown() below handles parked frames
  // while everything is still alive (the Fleet discipline).
  std::unique_ptr<net::TokenRing> ring;
  std::unique_ptr<net::CsmaBus> bus;
  std::unique_ptr<fault::FaultyMedium> medium;
  std::unique_ptr<fault::InvariantChecker> invariants;
  std::unique_ptr<charlotte::Cluster> cluster;
  lynx::SodaDirectory directory;
  std::unique_ptr<soda::Network> network;
  std::unique_ptr<chrysalis::Kernel> kernel;
  std::unique_ptr<lynx::Process> server;
  std::unique_ptr<lynx::Process> client;

  const fault::Plan plan = plan_of(cfg.plan);
  switch (cfg.substrate) {
    case load::Substrate::kCharlotte: {
      ring = std::make_unique<net::TokenRing>(engine);
      medium =
          std::make_unique<fault::FaultyMedium>(engine, *ring, cfg.seed, plan);
      invariants = std::make_unique<fault::InvariantChecker>(*medium);
      cluster = std::make_unique<charlotte::Cluster>(engine, 2, *medium,
                                                     charlotte_costs(cfg));
      server = std::make_unique<lynx::Process>(
          engine, "server", lynx::make_charlotte_backend(*cluster, NodeId(0)),
          lynx::vax_runtime_costs());
      client = std::make_unique<lynx::Process>(
          engine, "client", lynx::make_charlotte_backend(*cluster, NodeId(1)),
          lynx::vax_runtime_costs());
      break;
    }
    case load::Substrate::kSoda: {
      bus = std::make_unique<net::CsmaBus>(engine, sim::Rng(cfg.seed),
                                           quiet_bus());
      medium =
          std::make_unique<fault::FaultyMedium>(engine, *bus, cfg.seed, plan);
      invariants = std::make_unique<fault::InvariantChecker>(*medium);
      network =
          std::make_unique<soda::Network>(engine, 2, *medium, soda_costs(cfg));
      server = std::make_unique<lynx::Process>(
          engine, "server",
          lynx::make_soda_backend(*network, directory, NodeId(0)),
          lynx::pdp11_runtime_costs());
      client = std::make_unique<lynx::Process>(
          engine, "client",
          lynx::make_soda_backend(*network, directory, NodeId(1)),
          lynx::pdp11_runtime_costs());
      break;
    }
    case load::Substrate::kChrysalis: {
      // Shared-memory Butterfly: no medium, hence no plan and no
      // medium invariants — the other two oracles still apply.
      kernel = std::make_unique<chrysalis::Kernel>(engine,
                                                   net::ButterflyParams{});
      server = std::make_unique<lynx::Process>(
          engine, "server",
          lynx::make_chrysalis_backend(*kernel, NodeId(0),
                                       chrysalis_params(cfg)),
          lynx::mc68000_runtime_costs());
      client = std::make_unique<lynx::Process>(
          engine, "client",
          lynx::make_chrysalis_backend(*kernel, NodeId(1),
                                       chrysalis_params(cfg)),
          lynx::mc68000_runtime_costs());
      break;
    }
  }

  server->start();
  client->start();
  // cfg.channels independent links; per-channel server and client
  // threads with identical costs give the permutation policy genuine
  // same-instant ties to reorder.
  const int channels = cfg.channels > 0 ? cfg.channels : 1;
  std::vector<lynx::LinkHandle> server_ends;
  std::vector<lynx::LinkHandle> client_ends;
  engine.spawn("wire", wire(server.get(), client.get(), channels,
                            &server_ends, &client_ends));
  engine.run();

  const int n = cfg.calls;
  const std::size_t bytes = cfg.bytes;
  for (int ch = 0; ch < channels; ++ch) {
    const lynx::LinkHandle server_end = server_ends.at(ch);
    const lynx::LinkHandle client_end = client_ends.at(ch);
    server->spawn_thread("srv" + std::to_string(ch),
                         [server_end, n](lynx::ThreadCtx& ctx) {
                           return serve(ctx, server_end, n);
                         });
    client->spawn_thread("cli" + std::to_string(ch),
                         [client_end, n, bytes](lynx::ThreadCtx& ctx) {
                           return drive(ctx, client_end, n, bytes);
                         });
  }
  engine.run();

  RunVerdict v;
  v.trace_digest = rec.digest();
  v.records = rec.total_emitted();

  ReferenceModel model;  // clean expectation: zero errors, full completion
  const bool conforms = model.replay(rec);
  v.calls_checked = model.calls_checked();
  if (!conforms) {
    v.divergence = model.divergence();
    v.failure = v.divergence->render();
  } else if (invariants != nullptr && !invariants->ok()) {
    v.failure = "medium invariant: " + invariants->violations().front();
  } else if (!engine.process_failures().empty()) {
    v.failure = "process failure: " + engine.process_failures().front();
  } else if (!server->thread_failures().empty()) {
    v.failure = "thread failure: " + server->thread_failures().front();
  } else if (!client->thread_failures().empty()) {
    v.failure = "thread failure: " + client->thread_failures().front();
  } else if (model.calls_checked() !=
             static_cast<std::uint64_t>(cfg.calls) * channels) {
    v.failure = "workload mismatch: expected " +
                std::to_string(cfg.calls * channels) + " calls, model saw " +
                std::to_string(model.calls_checked());
  } else {
    v.ok = true;
  }

  // Destroy parked frames while processes and kernels are still alive.
  engine.shutdown();
  return v;
}

// ---- repro tokens ----------------------------------------------------

std::string to_json(const RunConfig& cfg) {
  std::string j = "{\"v\":1";
  j += ",\"substrate\":\"" + std::string(load::to_string(cfg.substrate)) + "\"";
  j += ",\"tie\":\"" + std::string(sim::to_string(cfg.tie)) + "\"";
  j += ",\"seed\":" + std::to_string(cfg.seed);
  if (cfg.horizon != sim::TiePolicy::kNoHorizon) {
    j += ",\"horizon\":" + std::to_string(cfg.horizon);
  }
  j += ",\"plan\":\"" + std::string(to_string(cfg.plan)) + "\"";
  if (cfg.workload != Workload::kEcho) {
    j += ",\"workload\":\"" + std::string(to_string(cfg.workload)) + "\"";
  }
  j += ",\"channels\":" + std::to_string(cfg.channels);
  j += ",\"calls\":" + std::to_string(cfg.calls);
  j += ",\"bytes\":" + std::to_string(cfg.bytes);
  if (cfg.inject_reack_bug) j += ",\"bug\":1";
  if (cfg.inject_stale_bug) j += ",\"stale\":1";
  if (cfg.formation) j += ",\"form\":1";
  j += "}";
  return j;
}

namespace {

// Minimal flat-JSON field extraction — tokens are machine-written, one
// level deep, and dependency-free parsing beats vendoring a library.
std::optional<std::string_view> json_raw(std::string_view j,
                                         std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const std::size_t pos = j.find(needle);
  if (pos == std::string_view::npos) return std::nullopt;
  std::size_t i = pos + needle.size();
  while (i < j.size() && j[i] == ' ') ++i;
  if (i >= j.size()) return std::nullopt;
  if (j[i] == '"') {
    const std::size_t end = j.find('"', i + 1);
    if (end == std::string_view::npos) return std::nullopt;
    return j.substr(i + 1, end - i - 1);
  }
  std::size_t end = i;
  while (end < j.size() && (std::isdigit(static_cast<unsigned char>(j[end])) != 0)) {
    ++end;
  }
  if (end == i) return std::nullopt;
  return j.substr(i, end - i);
}

std::optional<std::uint64_t> json_u64(std::string_view j,
                                      std::string_view key) {
  const auto raw = json_raw(j, key);
  if (!raw.has_value()) return std::nullopt;
  std::uint64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(raw->data(), raw->data() + raw->size(), out);
  if (ec != std::errc{} || ptr != raw->data() + raw->size()) {
    return std::nullopt;
  }
  return out;
}

std::optional<load::Substrate> substrate_from(std::string_view name) {
  for (load::Substrate s : load::all_substrates()) {
    if (name == load::to_string(s)) return s;
  }
  return std::nullopt;
}

std::optional<sim::TieBreak> tie_from(std::string_view name) {
  for (sim::TieBreak t :
       {sim::TieBreak::kFifo, sim::TieBreak::kSeededPermutation,
        sim::TieBreak::kPriorityFuzz}) {
    if (name == sim::to_string(t)) return t;
  }
  return std::nullopt;
}

}  // namespace

std::optional<RunConfig> parse_token(std::string_view json) {
  RunConfig cfg;
  const auto substrate = json_raw(json, "substrate");
  const auto tie = json_raw(json, "tie");
  const auto seed = json_u64(json, "seed");
  const auto plan = json_raw(json, "plan");
  if (!substrate || !tie || !seed || !plan) return std::nullopt;
  const auto sub = substrate_from(*substrate);
  const auto tb = tie_from(*tie);
  const auto ps = plan_spec_from(*plan);
  if (!sub || !tb || !ps) return std::nullopt;
  cfg.substrate = *sub;
  cfg.tie = *tb;
  cfg.seed = *seed;
  cfg.plan = *ps;
  if (const auto w = json_raw(json, "workload")) {
    const auto wl = workload_from(*w);
    if (!wl) return std::nullopt;
    cfg.workload = *wl;
  }
  if (const auto h = json_u64(json, "horizon")) cfg.horizon = *h;
  if (const auto ch = json_u64(json, "channels")) {
    cfg.channels = static_cast<int>(*ch);
  }
  if (const auto c = json_u64(json, "calls")) cfg.calls = static_cast<int>(*c);
  if (const auto b = json_u64(json, "bytes")) {
    cfg.bytes = static_cast<std::size_t>(*b);
  }
  if (const auto bug = json_u64(json, "bug")) {
    cfg.inject_reack_bug = *bug != 0;
  }
  if (const auto stale = json_u64(json, "stale")) {
    cfg.inject_stale_bug = *stale != 0;
  }
  if (const auto form = json_u64(json, "form")) {
    cfg.formation = *form != 0;
  }
  return cfg;
}

// ---- shrinking -------------------------------------------------------

RunConfig shrink(const RunConfig& failing, std::uint64_t* runs) {
  // FIFO ignores the seed and the horizon: nothing to shrink.
  if (failing.tie == sim::TieBreak::kFifo) return failing;

  auto fails_at = [&](std::uint64_t horizon) {
    RunConfig probe = failing;
    probe.horizon = horizon;
    if (runs != nullptr) ++*runs;
    return !run_one(probe).ok;
  };

  // Horizon 0 degenerates to FIFO order: a failure that survives it is
  // schedule-independent, the strongest possible shrink.
  if (fails_at(0)) {
    RunConfig out = failing;
    out.horizon = 0;
    return out;
  }

  // Exponential envelope: find some failing horizon.
  std::uint64_t lo = 1;
  std::uint64_t hi = 1;
  constexpr std::uint64_t kGiveUp = 1ull << 32;
  while (!fails_at(hi)) {
    lo = hi + 1;
    hi *= 2;
    if (hi > kGiveUp) return failing;  // keep the full-horizon repro
  }
  // Bisect down to the smallest failing horizon in [lo, hi].  The
  // predicate need not be monotone; the invariant "hi fails" is
  // maintained at every step, so the result is verified failing.
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (fails_at(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  RunConfig out = failing;
  out.horizon = hi;
  return out;
}

// ---- the sweep -------------------------------------------------------

ExploreResult explore(const ExploreOptions& opts) {
  // Phase 1: materialize the cross product in its historical loop
  // order.  The list, not the loop nest, is what runs — sequentially or
  // fanned out — so both modes see identical configs in identical order.
  std::vector<RunConfig> configs;
  for (load::Substrate substrate : opts.substrates) {
    for (PlanSpec plan : opts.plans) {
      // Plan applicability: ack-storm impairs a medium (Chrysalis has
      // none) and is tuned for the echo pair; the crash plans drive the
      // replica group's fault schedule and work on every substrate.
      if ((plan == PlanSpec::kAckStorm || plan == PlanSpec::kBatchStorm) &&
          (substrate == load::Substrate::kChrysalis ||
           opts.workload != Workload::kEcho)) {
        continue;
      }
      if (is_crash_plan(plan) && opts.workload != Workload::kReplica) {
        continue;
      }
      for (sim::TieBreak tie : opts.policies) {
        for (std::uint64_t s = 0; s < opts.seeds; ++s) {
          RunConfig cfg;
          cfg.substrate = substrate;
          cfg.tie = tie;
          cfg.seed = opts.first_seed + s;
          cfg.plan = plan;
          cfg.workload = opts.workload;
          cfg.channels = opts.channels;
          cfg.calls = opts.calls;
          cfg.bytes = opts.bytes;
          cfg.inject_reack_bug = opts.inject_reack_bug &&
                                 opts.workload == Workload::kEcho &&
                                 substrate == load::Substrate::kCharlotte;
          cfg.inject_stale_bug =
              opts.inject_stale_bug && opts.workload == Workload::kReplica;
          cfg.formation = opts.formation;
          configs.push_back(cfg);
        }
      }
    }
  }

  // Phase 2: run every config.  run_one is a pure function of its
  // RunConfig (one private Engine per call), so the fan-out is embarrassingly
  // parallel; sweep::map returns verdicts in config order.
  std::vector<RunVerdict> verdicts;
  if (opts.threads == 1 || configs.size() < 2) {
    verdicts.reserve(configs.size());
    for (const RunConfig& cfg : configs) verdicts.push_back(run_one(cfg));
  } else {
    sweep::ThreadPool pool(opts.threads == 0
                               ? std::max(1u, std::thread::hardware_concurrency())
                               : opts.threads);
    verdicts = sweep::map(
        configs, [](const RunConfig& cfg) { return run_one(cfg); }, pool);
  }

  // Phase 3: digest + shrink, sequentially and in order — shrink probes
  // share state (run counters) and their own bisection is inherently
  // serial, so parallelism stops at the sweep boundary.
  ExploreResult res;
  res.runs = configs.size();
  std::uint64_t digest = 1469598103934665603ull;  // FNV-1a offset basis
  auto fold = [&digest](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      digest ^= (v >> (8 * i)) & 0xff;
      digest *= 1099511628211ull;  // FNV prime
    }
  };
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const RunConfig& cfg = configs[i];
    RunVerdict& verdict = verdicts[i];
    fold(verdict.trace_digest);
    if (verdict.ok) continue;
    FailureReport report;
    report.config = cfg;
    report.minimized =
        opts.shrink_failures ? shrink(cfg, &res.shrink_runs) : cfg;
    report.verdict = report.minimized.horizon == cfg.horizon
                         ? std::move(verdict)
                         : run_one(report.minimized);
    res.failures.push_back(std::move(report));
  }
  res.sweep_digest = digest;
  return res;
}

}  // namespace check
