// The schedule-exploration checker (the repo's "confidence at scale"
// subsystem).
//
// One RunConfig = one fully reproducible universe: a kernel substrate,
// a workload (stateless echo or the replicated KV service), an optional
// named fault plan, and ONE seed that picks both the same-instant
// tie-break permutation (sim::TiePolicy) and the fault/medium
// randomness.  run_one() builds the world, runs it, and asks the
// oracles whether anything broke:
//
//   * the LYNX reference model (reference_model.hpp) replaying the
//     runtime trace stream,
//   * fault::InvariantChecker over the impaired medium,
//   * the engine's own process-failure log,
//   * the workload threads' failure logs,
//   * for replica universes, the linearizability oracle
//     (linearizability.hpp) over the clients' kv.invoke/ok/err history.
//
// explore() sweeps seeds x substrates x tie-break policies x plans; any
// failure is auto-shrunk to the shortest permuted schedule prefix that
// still reproduces it (by lowering TiePolicy::horizon), and reported as
// a one-line JSON repro token that parse_token() turns back into the
// exact failing RunConfig.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "check/reference_model.hpp"
#include "load/fleet.hpp"
#include "sim/engine.hpp"

namespace check {

// Named fault plans, referenced by name so repro tokens stay one line.
enum class PlanSpec : std::uint8_t {
  kNone = 0,
  // Drop every server->client frame in [60ms, 310ms): request acks and
  // replies are lost, exercising retransmit / dedup / re-ack recovery.
  // Recoverable by construction — the attempt budgets in run_one()'s
  // kernel costs outlast the window — so a conforming kernel finishes
  // every call cleanly.  Echo workload only.
  kAckStorm,
  // Both directions of the node 0 <-> node 1 pair go dark in the same
  // window, with RPC formation forced ON (DESIGN.md §14): a dropped
  // form::Batch loses every enclosure at once, so recovery must
  // re-deliver whole batches' worth of messages, not single frames.
  // Same recoverability budget as ack-storm.  Echo workload only.
  kBatchStorm,
  // Replica-workload crash plans (node crash/restart via the group's
  // fault schedule, timed per substrate to land mid-commit-stream).
  kPrimaryCrash,   // primary dies and never returns; fail-over only
  kPrimaryBounce,  // primary dies, successor takes over, ex-primary
                   // rejoins as a backup via full-state sync
  kBackupBounce,   // last backup dies and rejoins; view never changes
};

[[nodiscard]] const char* to_string(PlanSpec spec);
[[nodiscard]] std::optional<PlanSpec> plan_spec_from(std::string_view name);

// What the universe runs on top of the substrate.  kEcho is the
// original stateless ping workload; kReplica is the replicated KV
// service (src/replica/), whose histories face the linearizability
// oracle on top of the usual four.
enum class Workload : std::uint8_t { kEcho = 0, kReplica };

[[nodiscard]] const char* to_string(Workload w);
[[nodiscard]] std::optional<Workload> workload_from(std::string_view name);

struct RunConfig {
  load::Substrate substrate = load::Substrate::kCharlotte;
  sim::TieBreak tie = sim::TieBreak::kFifo;
  // Seeds the tie-break permutation AND the medium randomness.
  std::uint64_t seed = 1;
  // Permuted schedule prefix (sim::TiePolicy::horizon); lowered by the
  // shrinker, kNoHorizon = permute the whole run.
  std::uint64_t horizon = sim::TiePolicy::kNoHorizon;
  PlanSpec plan = PlanSpec::kNone;
  Workload workload = Workload::kEcho;
  // Independent links between the pair, each driven by its own client
  // thread and served by its own server thread.  Concurrent channels
  // with identical runtime costs are what create same-instant ties for
  // the permutation policy to explore; 1 degenerates to a sequential
  // run with (almost) nothing to permute.  Replica universes read this
  // as the client count.
  int channels = 2;
  int calls = 4;  // per channel (replica: ops per client)
  std::size_t bytes = 32;
  // Arms charlotte::Costs::debug_drop_reacks — the deliberately
  // injected semantic bug the checker's self-test must catch.
  bool inject_reack_bug = false;
  // Arms replica::Options::debug_stale_reads — the planted stale-read
  // bug the linearizability oracle's self-test must catch.
  bool inject_stale_bug = false;
  // Arms RPC formation (form_delay = 2ms) in the universe's kernel
  // costs / backend params on every substrate.  kBatchStorm implies it
  // — without formation there are no batches to drop.
  bool formation = false;
};

struct RunVerdict {
  bool ok = false;
  std::string failure;  // empty iff ok; first oracle to object wins
  std::optional<Divergence> divergence;  // when the reference model objected
  std::uint64_t trace_digest = 0;
  std::uint64_t records = 0;
  std::uint64_t calls_checked = 0;
};

// Builds the universe for `cfg`, runs it to completion, and applies the
// oracles.  Deterministic: same RunConfig => same RunVerdict (and same
// trace digest).
[[nodiscard]] RunVerdict run_one(const RunConfig& cfg);

// ---- repro tokens ----------------------------------------------------
// One-line JSON, e.g.
//   {"v":1,"substrate":"charlotte","tie":"perm","seed":17,"horizon":42,
//    "plan":"ack-storm","channels":2,"calls":4,"bytes":32,"bug":1}
// "horizon", "workload", "bug" and "stale" are omitted when at their
// defaults, so pre-replica tokens still parse (and old parsers still
// read echo tokens).
[[nodiscard]] std::string to_json(const RunConfig& cfg);
[[nodiscard]] std::optional<RunConfig> parse_token(std::string_view json);

// Lowers cfg.horizon to a locally-minimal permuted prefix that still
// fails (exponential envelope + bisection; the result is verified
// failing).  Horizon 0 means the failure reproduces in pure FIFO order,
// i.e. it is schedule-independent.  FIFO configs are returned as-is.
// Each probe is counted into *runs.
[[nodiscard]] RunConfig shrink(const RunConfig& failing, std::uint64_t* runs);

struct FailureReport {
  RunConfig config;     // as first seen (full horizon)
  RunConfig minimized;  // after shrinking (== config when not shrunk)
  RunVerdict verdict;   // of the minimized config
  [[nodiscard]] std::string token() const { return to_json(minimized); }
};

struct ExploreOptions {
  std::vector<load::Substrate> substrates = {load::Substrate::kCharlotte,
                                             load::Substrate::kSoda,
                                             load::Substrate::kChrysalis};
  std::vector<sim::TieBreak> policies = {sim::TieBreak::kFifo,
                                         sim::TieBreak::kSeededPermutation};
  std::uint64_t seeds = 100;
  std::uint64_t first_seed = 1;
  std::vector<PlanSpec> plans = {PlanSpec::kNone};
  Workload workload = Workload::kEcho;
  int channels = 2;
  int calls = 4;
  std::size_t bytes = 32;
  bool inject_reack_bug = false;  // charlotte echo universes only
  bool inject_stale_bug = false;  // replica universes only
  bool formation = false;         // arm RPC formation in every universe
  bool shrink_failures = true;
  // Host threads for the sweep.  Each RunConfig is an independent
  // single-threaded Engine, so the cross product fans out over a
  // sweep::ThreadPool; results are consumed in config-list order and
  // shrinking stays sequential, so every field of ExploreResult —
  // sweep_digest included — is identical for any thread count.
  // 0 = hardware concurrency.
  unsigned threads = 1;
};

struct ExploreResult {
  std::uint64_t runs = 0;         // exploration runs (excl. shrink probes)
  std::uint64_t shrink_runs = 0;  // extra runs spent shrinking
  // FNV-1a over every exploration run's trace digest, in sweep order.
  // Two explores agree on this iff they saw the same universes produce
  // the same traces — the value CI compares across thread counts.
  std::uint64_t sweep_digest = 0;
  std::vector<FailureReport> failures;
};

// Sweeps the cross product.  Plans that do not apply are skipped:
// ack-storm needs a medium (not Chrysalis) and the echo workload; the
// crash plans need the replica workload (and work on every substrate —
// a Chrysalis "crash" is plain process termination).  The injected
// re-ack bug only arms on Charlotte echo universes, the stale-read bug
// only on replica ones.
[[nodiscard]] ExploreResult explore(const ExploreOptions& opts);

}  // namespace check
