#include "check/linearizability.hpp"

#include <map>
#include <set>
#include <unordered_map>
#include <utility>

namespace check {

namespace {

// Register semantics of one key (absent reads as 0, like the service).
std::int64_t apply(KvOpType t, std::int64_t value, std::int64_t arg) {
  switch (t) {
    case KvOpType::kPut: return arg;
    case KvOpType::kAdd: return value + arg;
    case KvOpType::kGet: return value;
  }
  return value;
}

std::int64_t expected_result(KvOpType t, std::int64_t before,
                             std::int64_t after) {
  // The service replies with the written/new value for put/add and the
  // read value for get.
  return t == KvOpType::kGet ? before : after;
}

struct KeySearch {
  std::vector<const KvOp*> ops;  // mandatory + optional, this key only
  std::uint64_t mandatory = 0;   // bitmask over ops
  std::set<std::pair<std::uint64_t, std::int64_t>> seen;  // (mask, value)

  // True iff some linearization of the remaining ops exists.
  bool search(std::uint64_t mask, std::int64_t value) {
    if ((mask & mandatory) == mandatory) return true;
    if (!seen.emplace(mask, value).second) return false;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const std::uint64_t bit = 1ull << i;
      if ((mask & bit) != 0) continue;
      // Real-time order: every completed op whose response preceded
      // this op's invocation must already be linearized.  Errored and
      // pending ops have no bounded response, so they never gate.
      bool ready = true;
      for (std::size_t j = 0; j < ops.size(); ++j) {
        if (j == i || (mask & (1ull << j)) != 0) continue;
        if (ops[j]->completed && ops[j]->res_seq < ops[i]->inv_seq) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      const std::int64_t next = apply(ops[i]->type, value, ops[i]->arg);
      if (ops[i]->completed &&
          ops[i]->result != expected_result(ops[i]->type, value, next)) {
        continue;  // this position contradicts the observed result
      }
      if (search(mask | bit, next)) return true;
    }
    return false;
  }
};

std::string render_op(const KvOp& op) {
  std::string s = "trace=" + std::to_string(op.trace);
  switch (op.type) {
    case KvOpType::kPut:
      s += " put(" + std::to_string(op.key) + "," + std::to_string(op.arg) +
           ")";
      break;
    case KvOpType::kAdd:
      s += " add(" + std::to_string(op.key) + "," + std::to_string(op.arg) +
           ")";
      break;
    case KvOpType::kGet:
      s += " get(" + std::to_string(op.key) + ")";
      break;
  }
  if (op.completed) {
    s += " -> " + std::to_string(op.result);
  } else if (op.errored) {
    s += " -> err";
  } else {
    s += " -> ?";
  }
  s += " [" + std::to_string(op.inv_seq) + "," +
       (op.completed || op.errored ? std::to_string(op.res_seq) : "inf") + ")";
  return s;
}

}  // namespace

LinVerdict check_history(const std::vector<KvOp>& ops) {
  LinVerdict v;
  std::map<std::int64_t, std::vector<const KvOp*>> by_key;
  for (const KvOp& op : ops) {
    const bool write = op.type != KvOpType::kGet;
    if (op.completed) {
      by_key[op.key].push_back(&op);
      ++v.ops_checked;
    } else if (write) {
      // Unknown outcome: the search may linearize it anywhere after
      // its invocation, or drop it entirely.
      by_key[op.key].push_back(&op);
      ++v.optional_ops;
    }
    // Errored/pending reads constrain nothing: discarded.
  }
  for (auto& [key, key_ops] : by_key) {
    if (key_ops.size() > 63) {
      v.ok = false;
      v.failure = "key " + std::to_string(key) + " has " +
                  std::to_string(key_ops.size()) +
                  " ops; the oracle's 64-bit mask caps a key at 63";
      return v;
    }
    KeySearch s;
    s.ops = key_ops;
    for (std::size_t i = 0; i < s.ops.size(); ++i) {
      if (s.ops[i]->completed) s.mandatory |= 1ull << i;
    }
    if (s.search(0, 0)) continue;
    v.ok = false;
    v.failure = "no linearization for key " + std::to_string(key) + " (" +
                std::to_string(key_ops.size()) + " ops):";
    for (const KvOp* op : key_ops) v.failure += "\n  " + render_op(*op);
    return v;
  }
  return v;
}

LinVerdict check_trace(const trace::Recorder& rec) {
  std::unordered_map<std::uint64_t, KvOp> by_trace;
  std::vector<std::uint64_t> order;
  for (const trace::Record& r : rec.snapshot()) {
    if (r.kind != trace::Kind::kInstant) continue;
    const std::string& name = rec.label_name(r.label);
    if (name == "kv.invoke") {
      KvOp op;
      op.trace = r.trace;
      op.type = static_cast<KvOpType>(r.a >> 32);
      op.key = static_cast<std::int32_t>(r.a & 0xffffffffull);
      op.arg = static_cast<std::int64_t>(r.b);
      op.inv_at = r.at;
      op.inv_seq = r.seq;
      if (by_trace.emplace(r.trace, op).second) order.push_back(r.trace);
    } else if (name == "kv.ok" || name == "kv.err") {
      const auto it = by_trace.find(r.trace);
      if (it == by_trace.end()) continue;  // invoke lost to ring overwrite
      KvOp& op = it->second;
      op.res_at = r.at;
      op.res_seq = r.seq;
      if (name == "kv.ok") {
        op.completed = true;
        op.result = static_cast<std::int64_t>(r.a);
      } else {
        op.errored = true;
      }
    }
  }
  std::vector<KvOp> ops;
  ops.reserve(order.size());
  for (const std::uint64_t t : order) ops.push_back(by_trace.at(t));
  return check_history(ops);
}

}  // namespace check
