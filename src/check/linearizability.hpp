// Linearizability oracle for the replicated KV service (the fifth
// explorer oracle).
//
// Input is the client-observed history: one KvOp per operation a
// client invoked, carrying its real-time interval and, if the call
// completed, its result.  The check is Wing & Gong's search, made
// tractable the standard two ways:
//
//   * per-key compositionality — linearizability composes over
//     independent objects, and each key is an independent register/
//     counter, so the search runs per key on far smaller histories;
//   * memoized state exploration — the search state is (set of
//     linearized ops, register value); a (mask, value) pair that
//     already failed once can never succeed later.
//
// Failure semantics around crashes follow the classic treatment of
// incomplete histories: an operation whose call *errored* (or never
// returned) has an unknown outcome — a write may or may not have taken
// effect, at any point after its invocation — so errored/pending
// writes are optional ops the search may linearize or drop, while
// errored/pending reads constrain nothing and are discarded.
// Completed operations are mandatory: every one must appear, its
// result must match the register semantics, and real-time order is
// enforced — if A's response preceded B's invocation, A linearizes
// before B.  Emission order of the one global trace recorder gives a
// total real-time order (monotone seq), so precedence is just a seq
// comparison.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "trace/trace.hpp"

namespace check {

// Mirrors replica::OpType without depending on src/replica/.
enum class KvOpType : std::uint8_t { kPut = 0, kGet = 1, kAdd = 2 };

struct KvOp {
  KvOpType type = KvOpType::kPut;
  std::int64_t key = 0;
  std::int64_t arg = 0;        // put: value written; add: delta; get: unused
  bool completed = false;      // kv.ok seen: mandatory, result checked
  bool errored = false;        // kv.err seen: outcome unknown
  std::int64_t result = 0;     // valid iff completed
  std::uint64_t trace = 0;     // causal identity, for failure reports
  sim::Time inv_at = 0;
  std::uint64_t inv_seq = 0;   // recorder seq of kv.invoke
  sim::Time res_at = 0;
  std::uint64_t res_seq = 0;   // recorder seq of kv.ok / kv.err
};

struct LinVerdict {
  bool ok = true;
  std::string failure;         // empty iff ok
  std::uint64_t ops_checked = 0;    // mandatory (completed) operations
  std::uint64_t optional_ops = 0;   // errored/pending writes considered
};

// Pure search over an explicit history (unit-testable without a world).
[[nodiscard]] LinVerdict check_history(const std::vector<KvOp>& ops);

// Extracts the history from the recorder's kv.invoke / kv.ok / kv.err
// "app"-track instants (as emitted by replica::Group's clients) and
// checks it.  Responses whose invoke was overwritten in the ring are
// ignored; a wrapped ring cannot produce a false alarm this way.
[[nodiscard]] LinVerdict check_trace(const trace::Recorder& rec);

}  // namespace check
