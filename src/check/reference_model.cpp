#include "check/reference_model.hpp"

#include <sstream>
#include <utility>

namespace check {

namespace {

constexpr std::size_t kMaxHistory = 48;  // causal context kept per trace

std::string format_time(sim::Time at) {
  std::ostringstream os;
  os << sim::to_usec(at) << "us";
  return os.str();
}

}  // namespace

std::string Divergence::render() const {
  std::ostringstream os;
  os << "divergence [" << rule << "] at " << format_time(at) << " seq=" << seq
     << " trace=" << trace << ": " << detail;
  if (!context.empty()) {
    os << "\n  causal context (trace " << trace << "):";
    for (const std::string& line : context) os << "\n    " << line;
  }
  return os.str();
}

bool ReferenceModel::replay(const trace::Recorder& rec) {
  divergence_.reset();
  rpcs_.clear();
  open_spans_.clear();
  untraced_history_.clear();
  records_ = 0;
  calls_ = 0;

  if (rec.overwritten() != 0) {
    Divergence d;
    d.rule = "ring-overflow";
    d.detail = "recorder dropped " + std::to_string(rec.overwritten()) +
               " records; conformance needs the full stream (raise "
               "ring_capacity)";
    divergence_ = std::move(d);
    return false;
  }

  for (const trace::Record& r : rec.snapshot()) {
    feed(r, rec);
    if (divergence_.has_value()) return false;
  }
  finish();
  return !divergence_.has_value();
}

std::string ReferenceModel::render(const trace::Record& r,
                                   const std::string& label,
                                   const char* what) {
  std::ostringstream os;
  os << "[" << format_time(r.at) << "] seq=" << r.seq << " node=" << r.node
     << " " << what << " " << label;
  if (r.a != 0) os << " a=" << r.a;
  return os.str();
}

ReferenceModel::RpcState& ReferenceModel::state_of(std::uint64_t trace) {
  return rpcs_[trace];
}

void ReferenceModel::diverge(const trace::Record& r, std::string rule,
                             std::string detail) {
  if (divergence_.has_value()) return;  // first divergence wins
  Divergence d;
  d.seq = r.seq;
  d.at = r.at;
  d.trace = r.trace;
  d.rule = std::move(rule);
  d.detail = std::move(detail);
  if (r.trace != 0) {
    auto it = rpcs_.find(r.trace);
    if (it != rpcs_.end()) d.context = it->second.history;
  } else {
    d.context = untraced_history_;
  }
  divergence_ = std::move(d);
}

void ReferenceModel::feed(const trace::Record& r, const trace::Recorder& rec) {
  ++records_;

  // Resolve the (label, trace) this record talks about.  Span ends carry
  // only the span id, so they are attributed via the begin that opened
  // them; everything not on the runtime track is outside the model.
  std::string label;
  std::uint64_t trace = r.trace;
  bool runtime = false;
  bool is_end = false;

  switch (r.kind) {
    case trace::Kind::kSpanBegin:
    case trace::Kind::kInstant:
      runtime = rec.track_name(r.track) == "runtime";
      if (runtime) label = rec.label_name(r.label);
      if (r.kind == trace::Kind::kSpanBegin && runtime) {
        open_spans_[r.span] = {label, trace};
      }
      break;
    case trace::Kind::kSpanEnd: {
      auto it = open_spans_.find(r.span);
      if (it == open_spans_.end()) return;  // end of a non-runtime span
      label = it->second.first;
      trace = it->second.second;
      open_spans_.erase(it);
      runtime = true;
      is_end = true;
      break;
    }
    default:
      return;  // text / context records carry no RPC semantics
  }
  if (!runtime) return;

  // Instants are checked even with trace == 0: an error raised outside
  // any call's causal chain (e.g. "call on destroyed link" before a
  // trace is allocated) is still an error the scenario must expect.
  if (r.kind == trace::Kind::kInstant) {
    RpcState* st = trace != 0 ? &state_of(trace) : nullptr;
    if (st != nullptr && st->history.size() < kMaxHistory) {
      st->history.push_back(render(r, label, "instant"));
    } else if (st == nullptr && untraced_history_.size() < kMaxHistory) {
      untraced_history_.push_back(render(r, label, "instant"));
    }
    if (label == "rpc.error") {
      const auto kind = static_cast<lynx::ErrorKind>(r.a);
      if (st != nullptr) st->failed = true;
      if (!expectation_.allows(kind)) {
        diverge(r, "error-surface",
                std::string("rpc failed with disallowed error kind '") +
                    lynx::to_string(kind) + "'");
      }
    } else if (label == "req.reject") {
      if (st != nullptr) st->rejected = true;
      if (!expectation_.allow_rejects) {
        diverge(r, "screening",
                "kernel screened out a request, but the scenario declares "
                "every operation it calls");
      }
    } else if (label == "link.dead") {
      if (!expectation_.allow_link_death) {
        diverge(r, "link-death",
                "a link death notice in a scenario whose processes all "
                "outlive the run (spurious failure declaration?)");
      }
    }
    return;
  }
  if (trace == 0) return;

  RpcState& st = state_of(trace);
  if (st.history.size() < kMaxHistory) {
    st.history.push_back(render(r, label, is_end ? "end" : "begin"));
  }

  if (is_end) {
    if (label == "call") {
      st.call_open = false;
      if (!st.failed && !st.rejected &&
          !(st.served && st.reply_sent && st.scatter)) {
        diverge(r, "completion",
                "call completed without error but the reference model saw "
                "no full serve/reply/scatter chain (served=" +
                    std::to_string(st.served) +
                    " replied=" + std::to_string(st.reply_sent) +
                    " scattered=" + std::to_string(st.scatter) + ")");
      }
    }
    return;
  }

  // kSpanBegin on the runtime track: the phase machine.
  if (label == "call") {
    ++calls_;
    if (st.call_begun && expectation_.unique_traces) {
      diverge(r, "unique-call",
              "second call span on one causal trace (trace ids are "
              "per-call in this scenario)");
    }
    st.call_begun = true;
    st.call_open = true;
  } else if (label == "call.gather") {
    if (!st.call_open) {
      diverge(r, "phase-order", "argument gather outside an open call span");
    }
    st.gather = true;
  } else if (label == "call.send") {
    if (!st.call_open || !st.gather) {
      diverge(r, "phase-order", "request send before argument gather");
    }
    st.send = true;
  } else if (label == "call.wait") {
    if (!st.call_open || !st.send) {
      diverge(r, "phase-order", "reply wait before request send");
    }
    st.wait = true;
  } else if (label == "call.scatter") {
    if (!st.call_open || !st.wait) {
      diverge(r, "phase-order", "reply scatter before reply wait");
    } else if (!st.reply_sent) {
      diverge(r, "reply-consumption",
              "client scattered a reply the server never sent");
    }
    st.scatter = true;
  } else if (label == "recv.scatter") {
    if (!st.send) {
      diverge(r, "service-after-send",
              "request serviced before any client sent it");
    } else if (st.served) {
      diverge(r, "single-delivery",
              "request serviced twice — a retransmit or duplicate leaked "
              "through the kernel's dedup/screening machinery");
    }
    st.served = true;
  } else if (label == "reply.gather") {
    if (!st.served) {
      diverge(r, "reply-after-serve",
              "reply gathered for a request never serviced");
    }
  } else if (label == "reply.send") {
    if (!st.served) {
      diverge(r, "reply-after-serve",
              "reply sent for a request never serviced");
    } else if (st.reply_sent) {
      diverge(r, "reply-after-serve", "second reply for one request");
    }
    st.reply_sent = true;
  }
}

void ReferenceModel::finish() {
  if (divergence_.has_value() || !expectation_.require_completion) return;
  // Deterministic pick: report the lowest trace id left incomplete.
  const RpcState* worst = nullptr;
  std::uint64_t worst_trace = 0;
  for (const auto& [trace, st] : rpcs_) {
    if (!st.call_begun) continue;
    const bool done = !st.call_open;
    if (done) continue;
    if (worst == nullptr || trace < worst_trace) {
      worst = &st;
      worst_trace = trace;
    }
  }
  if (worst != nullptr) {
    Divergence d;
    d.trace = worst_trace;
    d.rule = "incomplete-call";
    d.detail =
        "a call span never closed: the run ended with an RPC still in "
        "flight";
    d.context = worst->history;
    divergence_ = std::move(d);
  }
}

}  // namespace check
