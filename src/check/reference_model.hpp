// Executable reference model of LYNX link/RPC semantics.
//
// The paper's central claim is semantic: all three substrates must
// present *identical* LYNX semantics despite radically different kernel
// interfaces.  This model is the single, substrate-independent
// definition of "identical": it replays the runtime-track trace stream
// of a finished run (the spans and instants src/lynx/runtime.cpp emits
// — call / call.gather / call.send / call.wait / call.scatter on the
// client, recv.scatter / reply.gather / reply.send on the server, plus
// rpc.error / req.reject / link.dead instants) and checks every event
// against the §2.1/§2.2 contract:
//
//   R1 unique-call        one call span per causal trace (the explorer
//                         never reuses trace contexts)
//   R2 phase-order        gather -> send -> wait -> scatter, inside an
//                         open call span
//   R3 service-after-send a request is serviced only after its send
//                         span began (no service without a request)
//   R4 single-delivery    each request is serviced at most once — the
//                         screening / dedup machinery of every kernel
//                         must collapse retransmits and duplicates
//   R5 reply-after-serve  a reply is produced only for a serviced
//                         request, and only once
//   R6 reply-consumption  the client consumes a reply only after the
//                         server produced one (or screening rejected
//                         the request)
//   R7 completion         a call that ends without an error consumed
//                         exactly one served reply
//   R8 error-surface      every rpc.error carries an ErrorKind the
//                         scenario's Expectation allows (an empty allow
//                         list means a clean run must be error-free) —
//                         including errors raised outside any call's
//                         causal chain (trace 0)
//   R9 screening          req.reject appears only in scenarios that
//                         send undeclared operations
//   R10 link-death        opt-in: "link.dead" is ordinarily legitimate
//                         (a process whose last thread exits terminates
//                         and destroys its links — §2.1 — so the peer
//                         of an earlier finisher always sees it), but
//                         scenarios that keep every process alive for
//                         the whole window can forbid it
//
// Because trace emission order equals simulated causality order (one
// engine, one recorder, monotone seq), checking the merged stream
// online yields the FIRST divergent event, reported with the causal
// context of its trace.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "lynx/errors.hpp"
#include "sim/time.hpp"
#include "trace/trace.hpp"

namespace check {

// What the scenario permits.  Defaults describe a clean run: unique
// causal chains, no screening rejects, no errors of any kind, and every
// call driven to completion.
struct Expectation {
  bool unique_traces = true;
  bool allow_rejects = false;
  bool require_completion = true;
  // "link.dead" instants are allowed by default: orderly termination
  // destroys links (§2.1), so whichever process finishes first makes
  // its peer observe one.  A spurious death that actually breaks
  // traffic still surfaces as rpc.error (R8) or an incomplete call.
  // Scenarios whose processes all outlive the window can set this
  // false to treat any death notice as a divergence.
  bool allow_link_death = true;
  std::vector<lynx::ErrorKind> allowed_errors;

  [[nodiscard]] bool allows(lynx::ErrorKind kind) const {
    for (lynx::ErrorKind k : allowed_errors) {
      if (k == kind) return true;
    }
    return false;
  }
};

// The first event at which the observed stream left the model, with the
// causal history of its trace.
struct Divergence {
  std::uint64_t seq = 0;
  sim::Time at = 0;
  std::uint64_t trace = 0;
  std::string rule;    // short rule id, e.g. "single-delivery"
  std::string detail;  // one human sentence
  std::vector<std::string> context;  // rendered same-trace events, oldest first

  [[nodiscard]] std::string render() const;
};

class ReferenceModel {
 public:
  explicit ReferenceModel(Expectation expectation = {})
      : expectation_(expectation) {}

  // Replays the recorder's retained stream in emission order and then
  // applies the end-of-stream checks.  Returns true when the stream
  // conforms; otherwise divergence() describes the first violation.
  // The recorder must have retained everything (overwritten() == 0) —
  // a wrapped ring is itself reported as a divergence ("ring-overflow")
  // rather than silently passing on partial evidence.
  bool replay(const trace::Recorder& rec);

  [[nodiscard]] const std::optional<Divergence>& divergence() const {
    return divergence_;
  }
  [[nodiscard]] std::uint64_t records_checked() const { return records_; }
  [[nodiscard]] std::uint64_t calls_checked() const { return calls_; }

 private:
  struct RpcState {
    bool call_begun = false;
    bool call_open = false;
    bool gather = false;
    bool send = false;
    bool wait = false;
    bool scatter = false;
    bool served = false;      // recv.scatter begun (server side)
    bool reply_sent = false;  // reply.send begun (server side)
    bool rejected = false;    // req.reject instant (screening)
    bool failed = false;      // rpc.error instant on this trace
    std::vector<std::string> history;
  };

  void feed(const trace::Record& r, const trace::Recorder& rec);
  void finish();
  void diverge(const trace::Record& r, std::string rule, std::string detail);
  RpcState& state_of(std::uint64_t trace);
  static std::string render(const trace::Record& r, const std::string& label,
                            const char* what);

  Expectation expectation_;
  std::optional<Divergence> divergence_;
  std::unordered_map<std::uint64_t, RpcState> rpcs_;
  // Runtime-track instants outside any causal chain (trace 0): kept so
  // a trace-0 divergence still carries its lead-up (e.g. the link.dead
  // notice that explains a later "call on destroyed link" error).
  std::vector<std::string> untraced_history_;
  // span id -> (label name, trace) of runtime-track begins, so ends can
  // be attributed (kSpanEnd records carry only the span id).
  std::unordered_map<std::uint64_t, std::pair<std::string, std::uint64_t>>
      open_spans_;
  std::uint64_t records_ = 0;
  std::uint64_t calls_ = 0;
};

}  // namespace check
