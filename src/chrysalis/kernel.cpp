#include "chrysalis/kernel.hpp"

#include <algorithm>
#include <cstring>

namespace chrysalis {

Kernel::Kernel(sim::Engine& engine, net::ButterflyParams fabric, Costs costs)
    : engine_(&engine), costs_(costs), fabric_(fabric) {}

// ===================== processes =====================

Pid Kernel::create_process(net::NodeId node) {
  const Pid pid = pids_.next();
  procs_.emplace(pid, host::ProcessInfo{pid, node, true});
  return pid;
}

net::NodeId Kernel::node_of(Pid pid) const {
  auto it = procs_.find(pid);
  RELYNX_ASSERT_MSG(it != procs_.end(), "node_of unknown pid");
  return it->second.node;
}

void Kernel::set_termination_handler(Pid pid, std::function<void()> handler) {
  term_handlers_[pid] = std::move(handler);
}

void Kernel::terminate(Pid pid) {
  auto it = procs_.find(pid);
  if (it == procs_.end()) return;
  // Run the catch-and-clean-up handler first (paper: "even erroneous
  // processes can clean up their links before going away").
  if (auto h = term_handlers_.find(pid); h != term_handlers_.end()) {
    auto handler = std::move(h->second);
    term_handlers_.erase(h);
    handler();
  }
  // Drop all this process's mappings; reclaim released objects.
  // (Collect first: reaping erases from objects_ while we walk it.)
  std::vector<MemId> touched;
  for (auto& [id, obj] : objects_) {
    if (obj.mapped_by.erase(pid) > 0) touched.push_back(id);
  }
  for (MemId id : touched) {
    if (Object* obj = find_object(id)) reap_object_if_dead(*obj);
  }
  // The kernel reclaims orphaned waiters lazily; an event owned by a dead
  // process simply never delivers (no processor-failure detection).
  procs_.erase(it);
}

bool Kernel::is_remote(Pid caller, net::NodeId home) const {
  return node_of(caller) != home;
}

// ===================== memory objects =====================

Kernel::Object* Kernel::find_object(MemId id) {
  auto it = objects_.find(id);
  return it == objects_.end() ? nullptr : &it->second;
}

Status Kernel::check_access(Pid caller, MemId id, std::size_t offset,
                            std::size_t len, Object** out) {
  if (!procs_.contains(caller)) return Status::kProcessDead;
  Object* obj = find_object(id);
  if (obj == nullptr) return Status::kDeallocated;
  if (!obj->mapped_by.contains(caller)) return Status::kNotMapped;
  if (offset + len > obj->bytes.size()) return Status::kBadOffset;
  *out = obj;
  return Status::kOk;
}

sim::Duration Kernel::access_cost(Pid caller, const Object& obj,
                                  sim::Duration base) const {
  const bool remote = is_remote(caller, obj.home);
  return base + fabric_.word_reference(remote) -
         fabric_.word_reference(false);
}

void Kernel::reap_object_if_dead(Object& obj) {
  if (obj.release_pending && obj.mapped_by.empty()) {
    objects_.erase(obj.id);
  }
}

sim::Task<Result<MemId>> Kernel::make_object(Pid caller, std::size_t size) {
  ++ops_;
  co_await engine_->sleep(costs_.primitive_call + costs_.make_object);
  if (!procs_.contains(caller)) co_return common::Err(Status::kProcessDead);
  const MemId id = mem_ids_.next();
  Object obj;
  obj.id = id;
  obj.home = node_of(caller);  // allocated on the caller's memory board
  obj.bytes.assign(size, 0);
  obj.mapped_by.insert(caller);  // creator starts mapped
  objects_.emplace(id, std::move(obj));
  co_return id;
}

sim::Task<Status> Kernel::map(Pid caller, MemId id) {
  ++ops_;
  co_await engine_->sleep(costs_.primitive_call + costs_.map_object);
  if (!procs_.contains(caller)) co_return Status::kProcessDead;
  Object* obj = find_object(id);
  if (obj == nullptr) co_return Status::kDeallocated;
  obj->mapped_by.insert(caller);
  co_return Status::kOk;
}

sim::Task<Status> Kernel::unmap(Pid caller, MemId id) {
  ++ops_;
  co_await engine_->sleep(costs_.primitive_call + costs_.unmap_object);
  Object* obj = find_object(id);
  if (obj == nullptr) co_return Status::kDeallocated;
  if (obj->mapped_by.erase(caller) == 0) co_return Status::kNotMapped;
  reap_object_if_dead(*obj);
  co_return Status::kOk;
}

void Kernel::release_when_unreferenced(MemId id) {
  Object* obj = find_object(id);
  if (obj == nullptr) return;
  obj->release_pending = true;
  reap_object_if_dead(*obj);
}

sim::Task<Result<std::uint16_t>> Kernel::read16(Pid caller, MemId id,
                                                std::size_t offset) {
  ++ops_;
  Object* obj = nullptr;
  if (Status st = check_access(caller, id, offset, 2, &obj);
      st != Status::kOk) {
    co_await engine_->sleep(costs_.primitive_call);
    co_return common::Err(st);
  }
  if (is_remote(caller, obj->home)) ++remote_;
  co_await engine_->sleep(access_cost(caller, *obj, costs_.atomic16));
  obj = find_object(id);
  if (obj == nullptr) co_return common::Err(Status::kDeallocated);
  std::uint16_t v;
  std::memcpy(&v, obj->bytes.data() + offset, 2);
  co_return v;
}

sim::Task<Status> Kernel::write16(Pid caller, MemId id, std::size_t offset,
                                  std::uint16_t value) {
  ++ops_;
  Object* obj = nullptr;
  if (Status st = check_access(caller, id, offset, 2, &obj);
      st != Status::kOk) {
    co_await engine_->sleep(costs_.primitive_call);
    co_return st;
  }
  if (is_remote(caller, obj->home)) ++remote_;
  co_await engine_->sleep(access_cost(caller, *obj, costs_.atomic16));
  obj = find_object(id);
  if (obj == nullptr) co_return Status::kDeallocated;
  std::memcpy(obj->bytes.data() + offset, &value, 2);
  co_return Status::kOk;
}

sim::Task<Result<std::uint16_t>> Kernel::fetch_or16(Pid caller, MemId id,
                                                    std::size_t offset,
                                                    std::uint16_t bits) {
  ++ops_;
  Object* obj = nullptr;
  if (Status st = check_access(caller, id, offset, 2, &obj);
      st != Status::kOk) {
    co_await engine_->sleep(costs_.primitive_call);
    co_return common::Err(st);
  }
  if (is_remote(caller, obj->home)) ++remote_;
  // The read-modify-write is performed atomically *at this point in
  // simulated time* (the microcode holds the memory bank); the charged
  // delay models the caller's latency, during which the new value is
  // already visible to others — conservative and race-free.
  std::uint16_t old;
  std::memcpy(&old, obj->bytes.data() + offset, 2);
  const std::uint16_t neu = static_cast<std::uint16_t>(old | bits);
  std::memcpy(obj->bytes.data() + offset, &neu, 2);
  co_await engine_->sleep(access_cost(caller, *obj, costs_.atomic16));
  co_return old;
}

sim::Task<Result<std::uint16_t>> Kernel::fetch_and16(Pid caller, MemId id,
                                                     std::size_t offset,
                                                     std::uint16_t mask) {
  ++ops_;
  Object* obj = nullptr;
  if (Status st = check_access(caller, id, offset, 2, &obj);
      st != Status::kOk) {
    co_await engine_->sleep(costs_.primitive_call);
    co_return common::Err(st);
  }
  if (is_remote(caller, obj->home)) ++remote_;
  std::uint16_t old;
  std::memcpy(&old, obj->bytes.data() + offset, 2);
  const std::uint16_t neu = static_cast<std::uint16_t>(old & mask);
  std::memcpy(obj->bytes.data() + offset, &neu, 2);
  co_await engine_->sleep(access_cost(caller, *obj, costs_.atomic16));
  co_return old;
}

sim::Task<Result<std::uint32_t>> Kernel::read32(Pid caller, MemId id,
                                                std::size_t offset) {
  ++ops_;
  Object* obj = nullptr;
  if (Status st = check_access(caller, id, offset, 4, &obj);
      st != Status::kOk) {
    co_await engine_->sleep(costs_.primitive_call);
    co_return common::Err(st);
  }
  if (is_remote(caller, obj->home)) ++remote_;
  co_await engine_->sleep(access_cost(caller, *obj, costs_.word32));
  obj = find_object(id);
  if (obj == nullptr) co_return common::Err(Status::kDeallocated);
  std::uint32_t v;
  std::memcpy(&v, obj->bytes.data() + offset, 4);
  co_return v;
}

sim::Task<Status> Kernel::write32(Pid caller, MemId id, std::size_t offset,
                                  std::uint32_t value) {
  ++ops_;
  Object* obj = nullptr;
  if (Status st = check_access(caller, id, offset, 4, &obj);
      st != Status::kOk) {
    co_await engine_->sleep(costs_.primitive_call);
    co_return st;
  }
  if (is_remote(caller, obj->home)) ++remote_;
  // Non-atomic 32-bit write: the paper's §5.2 relies on exactly this
  // (dual queue names are written non-atomically, made safe by update
  // ordering).  We model the tear window by writing the low half now and
  // the high half after the delay.
  std::memcpy(obj->bytes.data() + offset, &value, 2);
  co_await engine_->sleep(access_cost(caller, *obj, costs_.word32));
  obj = find_object(id);
  if (obj == nullptr) co_return Status::kDeallocated;
  std::memcpy(obj->bytes.data() + offset + 2,
              reinterpret_cast<const std::uint8_t*>(&value) + 2, 2);
  co_return Status::kOk;
}

sim::Task<Status> Kernel::block_write(Pid caller, MemId id,
                                      std::size_t offset,
                                      const std::vector<std::uint8_t>& data) {
  ++ops_;
  Object* obj = nullptr;
  if (Status st = check_access(caller, id, offset, data.size(), &obj);
      st != Status::kOk) {
    co_await engine_->sleep(costs_.primitive_call);
    co_return st;
  }
  const bool remote = is_remote(caller, obj->home);
  if (remote) ++remote_;
  co_await engine_->sleep(costs_.primitive_call +
                          fabric_.block_transfer(data.size(), remote));
  obj = find_object(id);
  if (obj == nullptr) co_return Status::kDeallocated;
  std::copy(data.begin(), data.end(),
            obj->bytes.begin() + static_cast<std::ptrdiff_t>(offset));
  co_return Status::kOk;
}

sim::Task<Result<std::vector<std::uint8_t>>> Kernel::block_read(
    Pid caller, MemId id, std::size_t offset, std::size_t length) {
  ++ops_;
  Object* obj = nullptr;
  if (Status st = check_access(caller, id, offset, length, &obj);
      st != Status::kOk) {
    co_await engine_->sleep(costs_.primitive_call);
    co_return common::Err(st);
  }
  const bool remote = is_remote(caller, obj->home);
  if (remote) ++remote_;
  co_await engine_->sleep(costs_.primitive_call +
                          fabric_.block_transfer(length, remote));
  obj = find_object(id);
  if (obj == nullptr) co_return common::Err(Status::kDeallocated);
  std::vector<std::uint8_t> out(
      obj->bytes.begin() + static_cast<std::ptrdiff_t>(offset),
      obj->bytes.begin() + static_cast<std::ptrdiff_t>(offset + length));
  co_return out;
}

// ===================== event blocks =====================

sim::Task<Result<EventId>> Kernel::make_event(Pid owner) {
  ++ops_;
  co_await engine_->sleep(costs_.primitive_call + costs_.make_event);
  if (!procs_.contains(owner)) co_return common::Err(Status::kProcessDead);
  const EventId id = event_ids_.next();
  Event ev;
  ev.id = id;
  ev.owner = owner;
  events_.emplace(id, std::move(ev));
  co_return id;
}

sim::Task<Status> Kernel::post(Pid caller, EventId id, std::uint32_t datum) {
  ++ops_;
  co_await engine_->sleep(costs_.primitive_call + costs_.event_post);
  (void)caller;  // any process that knows the name may post
  auto it = events_.find(id);
  if (it == events_.end()) co_return Status::kNoSuchObject;
  Event& ev = it->second;
  if (ev.waiter != nullptr && !ev.waiter->fulfilled()) {
    ev.waiter->fulfill(datum);
  } else {
    ev.pending.push_back(datum);
  }
  co_return Status::kOk;
}

sim::Task<Result<std::uint32_t>> Kernel::wait_event(Pid caller, EventId id) {
  ++ops_;
  co_await engine_->sleep(costs_.primitive_call + costs_.event_wait);
  auto it = events_.find(id);
  if (it == events_.end()) co_return common::Err(Status::kNoSuchObject);
  Event& ev = it->second;
  if (ev.owner != caller) co_return common::Err(Status::kNotOwner);
  if (!ev.pending.empty()) {
    const std::uint32_t datum = ev.pending.front();
    ev.pending.pop_front();
    co_return datum;
  }
  if (ev.waiter == nullptr) {
    ev.waiter = std::make_unique<sim::OneShot<std::uint32_t>>(*engine_);
  }
  const std::uint32_t datum = co_await ev.waiter->take();
  co_return datum;
}

// ===================== dual queues =====================

sim::Task<Result<DqId>> Kernel::make_dual_queue(Pid caller,
                                                std::size_t capacity) {
  ++ops_;
  co_await engine_->sleep(costs_.primitive_call + costs_.make_queue);
  if (!procs_.contains(caller)) co_return common::Err(Status::kProcessDead);
  const DqId id = dq_ids_.next();
  DualQueue q;
  q.id = id;
  q.home = node_of(caller);
  q.capacity = capacity;
  queues_.emplace(id, std::move(q));
  co_return id;
}

Status Kernel::deliver_to_queue(DualQueue& q, std::uint32_t datum) {
  if (q.fast_armed) {
    // The cheap flag was armed first (waiters were empty then), so its
    // consumer is served first; FIFO over consumers is preserved.
    const EventId target = q.fast_event;
    q.fast_armed = false;
    auto ev = events_.find(target);
    if (ev != events_.end()) {
      if (ev->second.waiter != nullptr && !ev->second.waiter->fulfilled()) {
        ev->second.waiter->fulfill(datum);
      } else {
        ev->second.pending.push_back(datum);
      }
    }
    return Status::kOk;
  }
  if (!q.waiters.empty()) {
    // "An enqueue operation on a queue containing event block names
    // actually posts a queued event instead of adding its datum."
    const EventId target = q.waiters.front();
    q.waiters.pop_front();
    auto ev = events_.find(target);
    if (ev != events_.end()) {
      if (ev->second.waiter != nullptr && !ev->second.waiter->fulfilled()) {
        ev->second.waiter->fulfill(datum);
      } else {
        ev->second.pending.push_back(datum);
      }
    }
    return Status::kOk;
  }
  if (q.data.size() >= q.capacity) return Status::kQueueFull;
  q.data.push_back(datum);
  ++queue_allocs_;
  return Status::kOk;
}

sim::Task<Status> Kernel::enqueue(Pid caller, DqId id, std::uint32_t datum) {
  ++ops_;
  ++enqueue_calls_;
  auto it = queues_.find(id);
  if (it == queues_.end()) {
    co_await engine_->sleep(costs_.primitive_call);
    co_return Status::kNoSuchObject;
  }
  DualQueue& q = it->second;
  const bool remote = is_remote(caller, q.home);
  if (remote) ++remote_;
  if (q.fast_armed && q.data.empty() && q.waiters.empty()) {
    // Cheap-flag fast path: claim the armed slot at the call instant
    // (an atomic16 — nothing else can take it across the suspension)
    // and post the consumer's event directly.  No deque is touched.
    const EventId target = q.fast_event;
    q.fast_armed = false;
    ++fast_deliveries_;
    co_await engine_->sleep(costs_.primitive_call + costs_.atomic16 +
                            costs_.event_post +
                            (remote ? fabric_.word_reference(true) : 0));
    auto ev = events_.find(target);
    if (ev != events_.end()) {
      Event& e = ev->second;
      if (e.waiter != nullptr && !e.waiter->fulfilled()) {
        e.waiter->fulfill(datum);
      } else {
        e.pending.push_back(datum);
      }
    }
    co_return Status::kOk;
  }
  co_await engine_->sleep(costs_.primitive_call + costs_.dq_enqueue +
                          (remote ? fabric_.word_reference(true) : 0));
  // queue object may have been reclaimed across the suspension
  auto it2 = queues_.find(id);
  if (it2 == queues_.end()) co_return Status::kNoSuchObject;
  co_return deliver_to_queue(it2->second, datum);
}

sim::Task<Status> Kernel::enqueue_many(Pid caller, DqId id,
                                       std::vector<std::uint32_t> data) {
  if (data.empty()) co_return Status::kOk;
  ++ops_;
  ++enqueue_calls_;
  auto it = queues_.find(id);
  if (it == queues_.end()) {
    co_await engine_->sleep(costs_.primitive_call);
    co_return Status::kNoSuchObject;
  }
  DualQueue& q = it->second;
  const bool remote = is_remote(caller, q.home);
  if (remote) ++remote_;
  // One dispatch + one switch setup for the whole batch; each datum
  // after the first costs only dq_enqueue_extra.
  co_await engine_->sleep(costs_.primitive_call + costs_.dq_enqueue +
                          costs_.dq_enqueue_extra *
                              static_cast<sim::Duration>(data.size() - 1) +
                          (remote ? fabric_.word_reference(true) : 0));
  auto it2 = queues_.find(id);
  if (it2 == queues_.end()) co_return Status::kNoSuchObject;
  Status status = Status::kOk;
  for (const std::uint32_t datum : data) {
    if (deliver_to_queue(it2->second, datum) == Status::kQueueFull) {
      status = Status::kQueueFull;  // that datum dropped; keep delivering
    }
  }
  co_return status;
}

sim::Task<Result<Kernel::DequeueOutcome>> Kernel::dequeue(Pid caller, DqId id,
                                                          EventId my_event) {
  ++ops_;
  auto it = queues_.find(id);
  if (it == queues_.end()) {
    co_await engine_->sleep(costs_.primitive_call);
    co_return common::Err(Status::kNoSuchObject);
  }
  DualQueue& q = it->second;
  const bool remote = is_remote(caller, q.home);
  if (remote) ++remote_;
  co_await engine_->sleep(costs_.primitive_call + costs_.dq_dequeue +
                          (remote ? fabric_.word_reference(true) : 0));
  auto it2 = queues_.find(id);
  if (it2 == queues_.end()) co_return common::Err(Status::kNoSuchObject);
  DualQueue& q2 = it2->second;
  if (!q2.data.empty()) {
    DequeueOutcome out;
    out.datum = q2.data.front();
    q2.data.pop_front();
    co_return out;
  }
  // "Once a queue becomes empty, subsequent dequeue operations actually
  // enqueue event block names, on which the calling processes can wait."
  // An uncontended consumer arms the cheap flag instead of pushing its
  // event name; a second concurrent consumer falls back to the deque.
  if (!q2.fast_armed && q2.waiters.empty()) {
    q2.fast_event = my_event;
    q2.fast_armed = true;
  } else {
    q2.waiters.push_back(my_event);
    ++queue_allocs_;
  }
  DequeueOutcome out;
  out.would_block = true;
  co_return out;
}

sim::Task<Result<Kernel::DequeueManyOutcome>> Kernel::dequeue_many(
    Pid caller, DqId id, EventId my_event, std::size_t max) {
  ++ops_;
  auto it = queues_.find(id);
  if (it == queues_.end()) {
    co_await engine_->sleep(costs_.primitive_call);
    co_return common::Err(Status::kNoSuchObject);
  }
  DualQueue& q = it->second;
  const bool remote = is_remote(caller, q.home);
  if (remote) ++remote_;
  co_await engine_->sleep(costs_.primitive_call + costs_.dq_dequeue +
                          (remote ? fabric_.word_reference(true) : 0));
  auto it2 = queues_.find(id);
  if (it2 == queues_.end()) co_return common::Err(Status::kNoSuchObject);
  DualQueue& q2 = it2->second;
  DequeueManyOutcome out;
  while (!q2.data.empty() && out.data.size() < max) {
    out.data.push_back(q2.data.front());
    q2.data.pop_front();
  }
  if (!out.data.empty()) {
    if (out.data.size() > 1) {
      co_await engine_->sleep(
          costs_.dq_dequeue_extra *
          static_cast<sim::Duration>(out.data.size() - 1));
    }
    co_return out;
  }
  if (!q2.fast_armed && q2.waiters.empty()) {
    q2.fast_event = my_event;
    q2.fast_armed = true;
  } else {
    q2.waiters.push_back(my_event);
    ++queue_allocs_;
  }
  out.would_block = true;
  co_return out;
}

sim::Task<Result<std::uint32_t>> Kernel::dequeue_wait(Pid caller, DqId id,
                                                      EventId my_event) {
  auto outcome = co_await dequeue(caller, id, my_event);
  if (!outcome.ok()) co_return common::Err(outcome.error());
  if (!outcome.value().would_block) co_return outcome.value().datum;
  auto datum = co_await wait_event(caller, my_event);
  if (!datum.ok()) co_return common::Err(datum.error());
  co_return datum.value();
}

}  // namespace chrysalis
