// The simulated Chrysalis operating system (paper §5).
//
// One Kernel per Butterfly.  Everything is shared memory: the kernel
// manages memory objects (mappable, reference counted), event blocks
// (owner-waits binary semaphores carrying a 32-bit datum), and dual
// queues (bounded data queues that flip into queues of event-block
// names when drained).  There is no message passing; the LYNX backend
// builds its own screening on top of these primitives — exactly the
// paper's point in lesson two.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <variant>
#include <vector>

#include "chrysalis/types.hpp"
#include "common/result.hpp"
#include "net/butterfly_switch.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"

namespace chrysalis {

template <typename T>
using Result = common::Result<T, Status>;

class Kernel {
 public:
  explicit Kernel(sim::Engine& engine, net::ButterflyParams fabric = {},
                  Costs costs = {});
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  [[nodiscard]] sim::Engine& engine() { return *engine_; }
  [[nodiscard]] const Costs& costs() const { return costs_; }

  // ---- processes ------------------------------------------------------
  [[nodiscard]] Pid create_process(net::NodeId node);
  // Chrysalis lets a dying process catch the exception and clean up; the
  // handler runs (synchronously, kernel-mediated) before the process is
  // reaped.  Processor failures are NOT detected — as in the paper.
  void set_termination_handler(Pid pid, std::function<void()> handler);
  void terminate(Pid pid);
  [[nodiscard]] bool alive(Pid pid) const { return procs_.contains(pid); }
  [[nodiscard]] net::NodeId node_of(Pid pid) const;

  // ---- memory objects --------------------------------------------------
  [[nodiscard]] sim::Task<Result<MemId>> make_object(Pid caller,
                                                     std::size_t size);
  [[nodiscard]] sim::Task<Status> map(Pid caller, MemId obj);
  [[nodiscard]] sim::Task<Status> unmap(Pid caller, MemId obj);
  // "inform Chrysalis that the object can be deallocated when its
  // reference count reaches zero"
  void release_when_unreferenced(MemId obj);
  [[nodiscard]] bool object_exists(MemId obj) const {
    return objects_.contains(obj);
  }

  // word ops (16-bit atomic: cheap; 32-bit: costly)
  [[nodiscard]] sim::Task<Result<std::uint16_t>> read16(Pid, MemId,
                                                        std::size_t offset);
  [[nodiscard]] sim::Task<Status> write16(Pid, MemId, std::size_t offset,
                                          std::uint16_t value);
  // atomic read-modify-write on a 16-bit word; returns the OLD value
  [[nodiscard]] sim::Task<Result<std::uint16_t>> fetch_or16(
      Pid, MemId, std::size_t offset, std::uint16_t bits);
  [[nodiscard]] sim::Task<Result<std::uint16_t>> fetch_and16(
      Pid, MemId, std::size_t offset, std::uint16_t mask);
  [[nodiscard]] sim::Task<Result<std::uint32_t>> read32(Pid, MemId,
                                                        std::size_t offset);
  [[nodiscard]] sim::Task<Status> write32(Pid, MemId, std::size_t offset,
                                          std::uint32_t value);
  // block transfer through the switch (microcoded copy)
  [[nodiscard]] sim::Task<Status> block_write(
      Pid, MemId, std::size_t offset, const std::vector<std::uint8_t>& data);
  [[nodiscard]] sim::Task<Result<std::vector<std::uint8_t>>> block_read(
      Pid, MemId, std::size_t offset, std::size_t length);

  // ---- event blocks ------------------------------------------------------
  [[nodiscard]] sim::Task<Result<EventId>> make_event(Pid owner);
  // anyone who knows the name may post; only the owner may wait
  [[nodiscard]] sim::Task<Status> post(Pid caller, EventId event,
                                       std::uint32_t datum);
  [[nodiscard]] sim::Task<Result<std::uint32_t>> wait_event(Pid caller,
                                                            EventId event);

  // ---- dual queues ---------------------------------------------------------
  [[nodiscard]] sim::Task<Result<DqId>> make_dual_queue(Pid caller,
                                                        std::size_t capacity);
  // enqueue: appends datum, or — if the queue holds waiter event names —
  // posts the front event with the datum instead (paper §5.1).
  [[nodiscard]] sim::Task<Status> enqueue(Pid caller, DqId q,
                                          std::uint32_t datum);
  // Batched enqueue — the shared-memory analogue of RPC formation
  // (DESIGN.md §14).  One microcode dispatch (primitive_call +
  // dq_enqueue + the remote switch setup, paid once) delivers every
  // datum in order, charging only Costs::dq_enqueue_extra for each
  // datum after the first.  Data that find the queue full are dropped
  // exactly as a lone enqueue's would be; the call then reports
  // kQueueFull after delivering the rest.
  [[nodiscard]] sim::Task<Status> enqueue_many(Pid caller, DqId q,
                                               std::vector<std::uint32_t> data);
  // dequeue: pops a datum, or — if empty — enqueues `my_event`'s name and
  // reports would-block; the caller then waits on its event block.
  struct DequeueOutcome {
    bool would_block = false;
    std::uint32_t datum = 0;
  };
  [[nodiscard]] sim::Task<Result<DequeueOutcome>> dequeue(Pid caller, DqId q,
                                                          EventId my_event);
  // Batched dequeue — one microcode dispatch pops every ready datum (up
  // to `max`), charging Costs::dq_dequeue_extra for each after the
  // first.  An empty queue behaves exactly like dequeue: `my_event`'s
  // name is left behind (or the cheap flag armed) and would_block is
  // reported.
  struct DequeueManyOutcome {
    bool would_block = false;
    std::vector<std::uint32_t> data;
  };
  [[nodiscard]] sim::Task<Result<DequeueManyOutcome>> dequeue_many(
      Pid caller, DqId q, EventId my_event, std::size_t max);
  // Convenience composite: dequeue, waiting on `my_event` if needed (the
  // paper: "The most common use of event blocks is in conjunction with
  // dual queues").
  [[nodiscard]] sim::Task<Result<std::uint32_t>> dequeue_wait(
      Pid caller, DqId q, EventId my_event);

  // ---- instrumentation -------------------------------------------------
  [[nodiscard]] std::uint64_t microcode_ops() const { return ops_; }
  [[nodiscard]] std::uint64_t remote_references() const { return remote_; }
  // Dual-queue enqueue *dispatches* (enqueue and enqueue_many each count
  // once, however many data the latter carries) — Chrysalis has no wire
  // frames, so this is its frames-per-message analogue for E16.
  [[nodiscard]] std::uint64_t enqueue_calls() const { return enqueue_calls_; }
  // Pushes into a dual queue's data/waiter deques — the bookkeeping the
  // cheap-flag fast path exists to avoid.
  [[nodiscard]] std::uint64_t queue_allocs() const { return queue_allocs_; }
  // Deliveries that took the cheap-flag fast path: an armed 16-bit flag
  // turned the enqueue into a bare event post, no deque touched.
  [[nodiscard]] std::uint64_t fast_deliveries() const {
    return fast_deliveries_;
  }

 private:
  struct Object {
    MemId id;
    net::NodeId home;  // memory board it lives on
    std::vector<std::uint8_t> bytes;
    std::unordered_set<Pid> mapped_by;
    bool release_pending = false;
  };
  struct Event {
    EventId id;
    Pid owner;
    std::deque<std::uint32_t> pending;  // posted data not yet waited for
    std::unique_ptr<sim::OneShot<std::uint32_t>> waiter;  // armed by wait
  };
  struct DualQueue {
    DqId id;
    net::NodeId home;
    std::size_t capacity;
    // either data or event names, never both
    std::deque<std::uint32_t> data;
    std::deque<EventId> waiters;
    // Cheap-flag fast path: a lone consumer's empty dequeue arms this
    // 16-bit-flag-sized slot instead of pushing onto `waiters`; the next
    // enqueue finding it armed posts the event directly — an atomic16
    // claim plus an event_post, no queue machinery.
    EventId fast_event;
    bool fast_armed = false;
  };

  [[nodiscard]] Object* find_object(MemId id);
  [[nodiscard]] Status check_access(Pid caller, MemId obj, std::size_t offset,
                                    std::size_t len, Object** out);
  [[nodiscard]] sim::Duration access_cost(Pid caller, const Object& obj,
                                          sim::Duration base) const;
  void reap_object_if_dead(Object& obj);
  [[nodiscard]] bool is_remote(Pid caller, net::NodeId home) const;
  // Post-suspension delivery of one datum into a dual queue: posts the
  // front waiter event if the queue holds event names, else appends
  // (kQueueFull drops the datum).  Shared by enqueue / enqueue_many.
  Status deliver_to_queue(DualQueue& q, std::uint32_t datum);

  sim::Engine* engine_;
  Costs costs_;
  net::ButterflyFabric fabric_;
  std::unordered_map<Pid, host::ProcessInfo> procs_;
  std::unordered_map<Pid, std::function<void()>> term_handlers_;
  std::unordered_map<MemId, Object> objects_;
  std::unordered_map<EventId, Event> events_;
  std::unordered_map<DqId, DualQueue> queues_;
  common::IdAllocator<Pid> pids_;
  common::IdAllocator<MemId> mem_ids_;
  common::IdAllocator<EventId> event_ids_;
  common::IdAllocator<DqId> dq_ids_;
  std::uint64_t ops_ = 0;
  std::uint64_t remote_ = 0;
  std::uint64_t enqueue_calls_ = 0;
  std::uint64_t queue_allocs_ = 0;
  std::uint64_t fast_deliveries_ = 0;
};

}  // namespace chrysalis
