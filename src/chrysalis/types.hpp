// Chrysalis interface types (paper §5.1).
//
// Chrysalis runs one instance on a whole BBN Butterfly: processes share
// memory, so there is no inter-kernel wire protocol at all — the kernel
// provides *objects* (memory objects, event blocks, dual queues) and
// mostly-microcoded operations on them.  Costs are charged per
// operation; remote references pay the switch (net::ButterflyFabric).
#pragma once

#include <cstdint>
#include <vector>

#include "common/strong_id.hpp"
#include "host/process.hpp"
#include "sim/time.hpp"

namespace chrysalis {

using host::Pid;

struct MemTag {
  static const char* prefix() { return "mem"; }
};
// Address-space-independent memory object name (the paper's moved links
// are exactly these names passed in messages).
using MemId = common::StrongId<MemTag>;

struct EventTag {
  static const char* prefix() { return "evt"; }
};
using EventId = common::StrongId<EventTag>;

struct DqTag {
  static const char* prefix() { return "dq"; }
};
using DqId = common::StrongId<DqTag>;

enum class Status : std::uint8_t {
  kOk,
  kNoSuchObject,
  kNotMapped,       // touching an object the process has not mapped
  kNotOwner,        // waiting on someone else's event block
  kBadOffset,       // out-of-range object access
  kQueueFull,       // dual queue data side over capacity
  kDeallocated,     // object reclaimed (refcount hit zero)
  kProcessDead,
};

[[nodiscard]] constexpr const char* to_string(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kNoSuchObject: return "no-such-object";
    case Status::kNotMapped: return "not-mapped";
    case Status::kNotOwner: return "not-owner";
    case Status::kBadOffset: return "bad-offset";
    case Status::kQueueFull: return "queue-full";
    case Status::kDeallocated: return "deallocated";
    case Status::kProcessDead: return "process-dead";
  }
  return "?";
}

// Nominal MC68000/Chrysalis operation costs.  The split matches the
// paper's remarks: atomic 16-bit changes are "extremely inexpensive",
// atomic changes to larger quantities are "relatively costly", dual
// queue and event operations are microcoded, mapping an object into an
// address space is the heavyweight call.
struct Costs {
  sim::Duration primitive_call = sim::usec(25);   // dispatch into microcode
  sim::Duration atomic16 = sim::usec(4);
  sim::Duration word32 = sim::usec(18);           // non-microcoded 32-bit op
  sim::Duration event_post = sim::usec(45);
  sim::Duration event_wait = sim::usec(30);
  sim::Duration dq_enqueue = sim::usec(70);
  // Marginal cost of each datum after the first in a batched
  // enqueue_many (src/form/, DESIGN.md §14): the microcode holds the
  // queue and pays the dispatch/switch setup once, so extra data cost
  // little more than the word writes themselves.
  sim::Duration dq_enqueue_extra = sim::usec(8);
  sim::Duration dq_dequeue = sim::usec(70);
  // Marginal cost of each datum after the first in a batched
  // dequeue_many (the drain-side mirror of dq_enqueue_extra): one
  // dispatch services every ready notice.
  sim::Duration dq_dequeue_extra = sim::usec(8);
  sim::Duration make_object = sim::usec(600);
  sim::Duration map_object = sim::usec(450);
  sim::Duration unmap_object = sim::usec(250);
  sim::Duration make_event = sim::usec(120);
  sim::Duration make_queue = sim::usec(300);
};

}  // namespace chrysalis
