// Internal invariant checking for the relynx simulation substrate.
//
// RELYNX_ASSERT is always on (the simulator is a research instrument; a
// silently-corrupt event queue is worse than an abort), but failures go
// through a single reporting function so tests can observe message text.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace common {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "relynx assertion failed: %s\n  at %s:%d\n  %s\n",
               expr, file, line, msg ? msg : "");
  std::abort();
}

}  // namespace common

#define RELYNX_ASSERT(expr)                                              \
  do {                                                                   \
    if (!(expr)) ::common::assert_fail(#expr, __FILE__, __LINE__, "");   \
  } while (0)

#define RELYNX_ASSERT_MSG(expr, msg)                                     \
  do {                                                                   \
    if (!(expr)) ::common::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
