// A minimal Result<T, E> (gcc 12 has no std::expected).
//
// Kernel calls in the simulated operating systems return status codes the
// way the 1986 kernels did; Result keeps the status next to the value so
// call sites cannot forget to check it (value() asserts on error).
#pragma once

#include <utility>
#include <variant>

#include "common/assert.hpp"

namespace common {

template <typename E>
class Err {
 public:
  constexpr explicit Err(E e) : error_(std::move(e)) {}
  E error_;
};

template <typename T, typename E>
class Result {
 public:
  // Intentionally implicit: `return value;` / `return Err(code);`.
  Result(T value) : storage_(std::in_place_index<0>, std::move(value)) {}
  Result(Err<E> e) : storage_(std::in_place_index<1>, std::move(e.error_)) {}

  [[nodiscard]] bool ok() const { return storage_.index() == 0; }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    RELYNX_ASSERT_MSG(ok(), "Result::value() on error");
    return std::get<0>(storage_);
  }
  [[nodiscard]] T& value() & {
    RELYNX_ASSERT_MSG(ok(), "Result::value() on error");
    return std::get<0>(storage_);
  }
  [[nodiscard]] T&& value() && {
    RELYNX_ASSERT_MSG(ok(), "Result::value() on error");
    return std::get<0>(std::move(storage_));
  }

  [[nodiscard]] const E& error() const {
    RELYNX_ASSERT_MSG(!ok(), "Result::error() on success");
    return std::get<1>(storage_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<0>(storage_) : std::move(fallback);
  }

 private:
  std::variant<T, E> storage_;
};

// Result<void, E>: just a status.
template <typename E>
class Status {
 public:
  Status() = default;  // success
  Status(Err<E> e) : error_(std::move(e.error_)), failed_(true) {}

  [[nodiscard]] bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const E& error() const {
    RELYNX_ASSERT_MSG(failed_, "Status::error() on success");
    return error_;
  }

 private:
  E error_{};
  bool failed_ = false;
};

}  // namespace common
