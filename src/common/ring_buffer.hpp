// Fixed-capacity ring buffer.
//
// Used for the bounded queues the simulated kernels expose (Chrysalis dual
// queues, NIC transmit queues).  Capacity is fixed at construction; the
// caller decides what "full" means (Chrysalis blocks, a NIC drops).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace common {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : slots_(capacity) {
    RELYNX_ASSERT(capacity > 0);
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == slots_.size(); }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  // Returns false (and does not move from `v`) when full.
  [[nodiscard]] bool push(T v) {
    if (full()) return false;
    slots_[(head_ + size_) % slots_.size()] = std::move(v);
    ++size_;
    return true;
  }

  [[nodiscard]] T pop() {
    RELYNX_ASSERT_MSG(!empty(), "RingBuffer::pop on empty buffer");
    T v = std::move(slots_[head_]);
    head_ = (head_ + 1) % slots_.size();
    --size_;
    return v;
  }

  [[nodiscard]] const T& front() const {
    RELYNX_ASSERT_MSG(!empty(), "RingBuffer::front on empty buffer");
    return slots_[head_];
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace common
