// Jacobson/Karels round-trip-time estimator (the SIGCOMM '88 gains:
// srtt moves by err/8, rttvar by |err|/4), shared by every substrate's
// ack protocol v2 (DESIGN.md §12).  Charlotte keeps one per link end
// (reset when the end moves — a new path makes old samples stale);
// SODA keeps one per peer node.  Karn's rule — never sample a
// retransmitted exchange — is the caller's responsibility: only feed
// observe() round trips whose first transmission was the one answered.
#pragma once

#include <algorithm>

#include "sim/time.hpp"

namespace common {

struct RttEstimator {
  bool have_sample = false;
  sim::Duration srtt = 0;
  sim::Duration rttvar = 0;

  void observe(sim::Duration sample) {
    if (!have_sample) {
      srtt = sample;
      rttvar = sample / 2;
      have_sample = true;
      return;
    }
    const sim::Duration err = sample - srtt;
    rttvar += ((err < 0 ? -err : err) - rttvar) / 4;
    srtt += err / 8;
  }

  // Retransmission timeout: srtt + 4*rttvar clamped to [rmin, rmax];
  // `fallback` (typically the substrate's fixed timeout knob) until the
  // first sample lands.
  [[nodiscard]] sim::Duration rto(sim::Duration fallback, sim::Duration rmin,
                                  sim::Duration rmax) const {
    if (!have_sample) return fallback;
    return std::clamp(srtt + 4 * rttvar, rmin, rmax);
  }
};

}  // namespace common
