// Strongly-typed integral identifiers.
//
// The simulator traffics in many kinds of small integer ids (nodes,
// processes, links, link ends, names, memory objects...).  Mixing them up
// is the classic source of silent simulation bugs, so each id is a
// distinct type: StrongId<struct NodeTag> cannot be passed where a
// StrongId<struct PidTag> is expected.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>

namespace common {

template <typename Tag, typename Rep = std::uint64_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep v) : value_(v) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != invalid_rep; }

  static constexpr Rep invalid_rep = static_cast<Rep>(-1);
  [[nodiscard]] static constexpr StrongId invalid() {
    return StrongId(invalid_rep);
  }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    if (!id.valid()) return os << Tag::prefix() << "<invalid>";
    return os << Tag::prefix() << id.value_;
  }

 private:
  Rep value_ = invalid_rep;
};

// Monotonic id generator; one per id space.
template <typename Id>
class IdAllocator {
 public:
  [[nodiscard]] Id next() { return Id(next_++); }
  [[nodiscard]] typename Id::rep_type issued() const { return next_; }

 private:
  typename Id::rep_type next_ = 0;
};

}  // namespace common

namespace std {
template <typename Tag, typename Rep>
struct hash<common::StrongId<Tag, Rep>> {
  size_t operator()(common::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
}  // namespace std
