#include "fault/fault.hpp"

#include <sstream>

namespace fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kCorruptDiscard: return "corrupt-discard";
    case FaultKind::kCutDrop: return "cut-drop";
    case FaultKind::kPartitionDrop: return "partition-drop";
    case FaultKind::kCrashDrop: return "crash-drop";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kRestart: return "restart";
    case FaultKind::kCut: return "cut";
    case FaultKind::kHeal: return "heal";
  }
  return "?";
}

std::uint64_t digest(const std::vector<FaultRecord>& log) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffULL;
      h *= 0x100000001b3ULL;
    }
  };
  for (const FaultRecord& r : log) {
    mix(static_cast<std::uint64_t>(r.at));
    mix(static_cast<std::uint64_t>(r.kind));
    mix(r.frame_id);
    mix(r.src.value());
    mix(r.dst.value());
    mix(static_cast<std::uint64_t>(r.delay));
  }
  return h;
}

std::string describe(const FaultRecord& record) {
  std::ostringstream os;
  os << "[t=" << sim::to_msec(record.at) << "ms] " << to_string(record.kind);
  if (record.frame_id != 0) os << " frame#" << record.frame_id;
  os << " " << record.src << "->" << record.dst;
  if (record.delay != 0) os << " +" << sim::to_usec(record.delay) << "us";
  return os.str();
}

}  // namespace fault
