// Fault taxonomy and the reproducible fault log.
//
// Everything the fault layer does to traffic is recorded as a
// FaultRecord, in the order it happened.  Because the simulation is
// single-threaded and every random draw comes from one seeded stream,
// the record sequence is a pure function of (seed, plan, workload);
// digest() collapses it to one word so tests can assert two runs were
// byte-identical without storing both logs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace fault {

enum class FaultKind : std::uint8_t {
  // -- per-frame impairments ------------------------------------------
  kDrop,            // discarded by window or background loss
  kDuplicate,       // an extra copy injected (same frame id)
  kDelay,           // delivery postponed by jitter
  kCorrupt,         // marked corrupted in flight
  kCorruptDiscard,  // receiver "checksum" rejected a corrupted frame
  kCutDrop,         // lost to a severed link
  kPartitionDrop,   // lost crossing a partition boundary
  kCrashDrop,       // lost because an endpoint is crashed
  // -- topology / lifecycle events ------------------------------------
  kCrash,    // node went down
  kRestart,  // node came back
  kCut,      // link severed
  kHeal,     // link (or whole network) restored
};

[[nodiscard]] const char* to_string(FaultKind kind);

struct FaultRecord {
  sim::Time at = 0;
  FaultKind kind{};
  std::uint64_t frame_id = 0;  // 0 for lifecycle records
  net::NodeId src;             // frame src, or link end / crashed node
  net::NodeId dst;             // frame dst (invalid for broadcast), or link end
  sim::Duration delay = 0;     // kDelay only
};

// Order-sensitive FNV-1a over the record stream.
[[nodiscard]] std::uint64_t digest(const std::vector<FaultRecord>& log);

[[nodiscard]] std::string describe(const FaultRecord& record);

}  // namespace fault
