#include "fault/faulty_medium.hpp"

#include <algorithm>

#include "trace/trace.hpp"

namespace fault {

namespace {

std::pair<net::NodeId, net::NodeId> normalized(net::NodeId a, net::NodeId b) {
  return a < b ? std::pair{a, b} : std::pair{b, a};
}

}  // namespace

FaultyMedium::FaultyMedium(sim::Engine& engine, net::Medium& inner,
                           std::uint64_t seed, Plan plan)
    : engine_(&engine), inner_(&inner), rng_(seed), plan_(std::move(plan)) {
  // plan_ is never mutated after construction, so the references into
  // its action list stay valid for the lifetime of the medium.
  for (const Action& action : plan_.actions()) {
    engine_->schedule_at(action.at, [this, &action] { apply(action); });
  }
}

void FaultyMedium::attach(net::NodeId node, net::FrameHandler handler) {
  auto shared = std::make_shared<net::FrameHandler>(std::move(handler));
  inner_->attach(node, [this, node, shared](const net::Frame& frame) {
    deliver(*shared, node, frame);
  });
}

void FaultyMedium::send(net::Frame frame) {
  stamp(frame);
  if (!impair_outbound(frame, /*is_broadcast=*/false)) return;
  inner_->send(std::move(frame));
}

void FaultyMedium::broadcast(net::Frame frame) {
  frame.dst = net::NodeId::invalid();
  stamp(frame);
  if (!impair_outbound(frame, /*is_broadcast=*/true)) return;
  inner_->broadcast(std::move(frame));
}

// -- fault controls ----------------------------------------------------

void FaultyMedium::cut_link(net::NodeId a, net::NodeId b) {
  if (!cuts_.insert(normalized(a, b)).second) return;
  record(FaultKind::kCut, 0, a, b);
}

void FaultyMedium::heal_link(net::NodeId a, net::NodeId b) {
  if (cuts_.erase(normalized(a, b)) == 0) return;
  record(FaultKind::kHeal, 0, a, b);
}

void FaultyMedium::partition(std::vector<net::NodeId> island) {
  islands_.emplace_back(island.begin(), island.end());
  record(FaultKind::kCut, 0, net::NodeId::invalid(), net::NodeId::invalid());
}

void FaultyMedium::heal_all() {
  if (cuts_.empty() && islands_.empty()) return;
  cuts_.clear();
  islands_.clear();
  record(FaultKind::kHeal, 0, net::NodeId::invalid(), net::NodeId::invalid());
}

void FaultyMedium::crash(net::NodeId node) {
  if (!crashed_.insert(node).second) return;
  record(FaultKind::kCrash, 0, node, net::NodeId::invalid());
  for (auto& obs : crash_observers_) obs(node);
}

void FaultyMedium::restart(net::NodeId node) {
  if (crashed_.erase(node) == 0) return;
  record(FaultKind::kRestart, 0, node, net::NodeId::invalid());
  for (auto& obs : restart_observers_) obs(node);
}

bool FaultyMedium::link_cut(net::NodeId a, net::NodeId b) const {
  return severed(a, b).has_value();
}

std::optional<FaultKind> FaultyMedium::severed(net::NodeId a,
                                               net::NodeId b) const {
  if (cuts_.contains(normalized(a, b))) return FaultKind::kCutDrop;
  for (const auto& island : islands_) {
    if (island.contains(a) != island.contains(b)) {
      return FaultKind::kPartitionDrop;
    }
  }
  return std::nullopt;
}

// -- frame path --------------------------------------------------------

void FaultyMedium::apply(const Action& action) {
  switch (action.op) {
    case Action::Op::kCutLink:
      cut_link(action.a, action.b);
      break;
    case Action::Op::kHealLink:
      heal_link(action.a, action.b);
      break;
    case Action::Op::kPartition: {
      std::vector<net::NodeId> island = action.island;
      partition(std::move(island));
      break;
    }
    case Action::Op::kHealAll:
      heal_all();
      break;
    case Action::Op::kCrash:
      crash(action.a);
      break;
    case Action::Op::kRestart:
      restart(action.a);
      break;
  }
}

void FaultyMedium::record(FaultKind kind, std::uint64_t frame_id,
                          net::NodeId src, net::NodeId dst,
                          sim::Duration delay, std::uint64_t trace) {
  FaultRecord rec{engine_->now(), kind, frame_id, src, dst, delay};
  log_.push_back(rec);
  if (auto* trec = trace::get(*engine_)) {
    trec->instant(src.valid() ? src.value() : 0, "fault", to_string(kind),
                  trace, frame_id, static_cast<std::uint64_t>(delay));
  }
  for (auto& obs : fault_observers_) obs(rec);
}

double FaultyMedium::drop_probability(net::NodeId src, net::NodeId dst) const {
  double p = plan_.background().drop_prob;
  const sim::Time now = engine_->now();
  for (const DropWindow& window : plan_.windows()) {
    if (window.matches(now, src, dst)) p = std::max(p, window.prob);
  }
  return p;
}

bool FaultyMedium::impair_outbound(net::Frame& frame, bool is_broadcast) {
  const net::NodeId dst = is_broadcast ? net::NodeId::invalid() : frame.dst;
  if (crashed_.contains(frame.src)) {
    ++drops_;
    record(FaultKind::kCrashDrop, frame.id, frame.src, dst, 0,
           frame.trace_id);
    return false;
  }
  if (!is_broadcast) {
    if (auto kind = severed(frame.src, frame.dst)) {
      ++drops_;
      record(*kind, frame.id, frame.src, frame.dst, 0, frame.trace_id);
      return false;
    }
  }
  const double p = drop_probability(frame.src, dst);
  if (p > 0.0 && rng_.next_bool(p)) {
    ++drops_;
    record(FaultKind::kDrop, frame.id, frame.src, dst, 0, frame.trace_id);
    return false;
  }
  const BackgroundModel& bg = plan_.background();
  if (bg.corrupt_prob > 0.0 && rng_.next_bool(bg.corrupt_prob)) {
    frame.corrupted = true;
    record(FaultKind::kCorrupt, frame.id, frame.src, dst, 0, frame.trace_id);
  }
  if (bg.duplicate_prob > 0.0 && rng_.next_bool(bg.duplicate_prob)) {
    ++duplicates_;
    record(FaultKind::kDuplicate, frame.id, frame.src, dst, 0,
           frame.trace_id);
    net::Frame copy = frame;  // same id: a duplicate, not a new frame
    if (is_broadcast) {
      inner_->broadcast(std::move(copy));
    } else {
      inner_->send(std::move(copy));
    }
  }
  return true;
}

void FaultyMedium::deliver(const net::FrameHandler& handler,
                           net::NodeId receiver, const net::Frame& frame) {
  if (crashed_.contains(receiver)) {
    ++drops_;
    record(FaultKind::kCrashDrop, frame.id, frame.src, receiver, 0,
           frame.trace_id);
    return;
  }
  if (auto kind = severed(frame.src, receiver)) {
    ++drops_;
    record(*kind, frame.id, frame.src, receiver, 0, frame.trace_id);
    return;
  }
  if (frame.corrupted) {
    ++corrupt_discards_;
    record(FaultKind::kCorruptDiscard, frame.id, frame.src, receiver, 0,
           frame.trace_id);
    return;
  }
  const sim::Duration max_jitter = plan_.background().max_jitter;
  if (max_jitter > 0) {
    const sim::Duration extra = rng_.next_range(0, max_jitter);
    if (extra > 0) {
      ++delays_;
      record(FaultKind::kDelay, frame.id, frame.src, receiver, extra,
             frame.trace_id);
      engine_->schedule(extra, [this, h = &handler, receiver, f = frame] {
        finish_delivery(*h, receiver, f);
      });
      return;
    }
  }
  finish_delivery(handler, receiver, frame);
}

void FaultyMedium::finish_delivery(const net::FrameHandler& handler,
                                   net::NodeId receiver,
                                   const net::Frame& frame) {
  ++deliveries_;
  for (auto& obs : delivery_observers_) obs(frame, receiver);
  handler(frame);
}

}  // namespace fault
