// A fault-injecting decorator around any net::Medium.
//
// FaultyMedium sits between the kernels and the real wire model:
// kernels attach to and send through the wrapper; the wrapper forwards
// to the inner medium and intercepts deliveries.  With an empty Plan
// and a zero BackgroundModel it is timing-transparent — every frame
// reaches its handler at exactly the instant the inner medium would
// have delivered it — so wrapping is safe by default and faults are
// strictly opt-in.
//
// Fault sites:
//   send side      crash of the source, loss windows, background
//                  drop / duplicate / corrupt-marking
//   delivery side  crash of the receiver, cut links, partitions,
//                  corrupt discard (the modelled checksum), jitter
//                  (which also reorders, since later frames can draw
//                  smaller delays)
//
// Node crash/restart additionally fans out to registered observers so
// the owning kernel can react (Charlotte turns a crash into absolute
// link-failure notices; SODA's hints just go stale until timeouts bite).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <unordered_set>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "fault/plan.hpp"
#include "net/packet.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"

namespace fault {

class FaultyMedium final : public net::Medium {
 public:
  // Arms `plan` against `engine` immediately: every action is scheduled
  // at its absolute time.  `seed` drives all stochastic faults.
  FaultyMedium(sim::Engine& engine, net::Medium& inner, std::uint64_t seed,
               Plan plan = {});

  // -- net::Medium ----------------------------------------------------
  void attach(net::NodeId node, net::FrameHandler handler) override;
  void send(net::Frame frame) override;
  void broadcast(net::Frame frame) override;
  [[nodiscard]] std::uint64_t frames_sent() const override {
    return inner_->frames_sent();
  }
  [[nodiscard]] std::uint64_t bytes_sent() const override {
    return inner_->bytes_sent();
  }

  // Replaces the stochastic background model mid-run.  Benches use this
  // to boot a world over a clean wire and then turn on impairment for
  // just the measured region.
  void set_background(const BackgroundModel& model) {
    plan_.background(model);
  }

  // -- manual fault controls (the Plan calls these on schedule) --------
  void cut_link(net::NodeId a, net::NodeId b);
  void heal_link(net::NodeId a, net::NodeId b);
  void partition(std::vector<net::NodeId> island);
  void heal_all();
  void crash(net::NodeId node);
  void restart(net::NodeId node);

  [[nodiscard]] bool crashed(net::NodeId node) const {
    return crashed_.contains(node);
  }
  // True if a cut or a partition currently separates a and b.
  [[nodiscard]] bool link_cut(net::NodeId a, net::NodeId b) const;

  // -- observers (multicast) ------------------------------------------
  using FaultObserver = std::function<void(const FaultRecord&)>;
  using DeliveryObserver =
      std::function<void(const net::Frame&, net::NodeId receiver)>;
  using NodeObserver = std::function<void(net::NodeId)>;
  void observe_faults(FaultObserver obs) {
    fault_observers_.push_back(std::move(obs));
  }
  void observe_delivery(DeliveryObserver obs) {
    delivery_observers_.push_back(std::move(obs));
  }
  void on_crash(NodeObserver obs) { crash_observers_.push_back(std::move(obs)); }
  void on_restart(NodeObserver obs) {
    restart_observers_.push_back(std::move(obs));
  }

  // -- observability ---------------------------------------------------
  [[nodiscard]] const std::vector<FaultRecord>& fault_log() const {
    return log_;
  }
  [[nodiscard]] std::uint64_t fault_digest() const { return digest(log_); }
  [[nodiscard]] std::uint64_t injected_drops() const { return drops_; }
  [[nodiscard]] std::uint64_t injected_duplicates() const {
    return duplicates_;
  }
  [[nodiscard]] std::uint64_t injected_delays() const { return delays_; }
  [[nodiscard]] std::uint64_t corrupt_discards() const {
    return corrupt_discards_;
  }
  [[nodiscard]] std::uint64_t deliveries() const { return deliveries_; }

  [[nodiscard]] sim::Engine& engine() { return *engine_; }
  [[nodiscard]] net::Medium& inner() { return *inner_; }
  [[nodiscard]] const Plan& plan() const { return plan_; }

 private:
  void apply(const Action& action);
  // `trace` is the causal identity of the impaired frame (0 for
  // frame-less faults such as cuts and crashes); forwarded into the
  // trace recorder so injected faults land in the same event stream as
  // the RPC they hit.
  void record(FaultKind kind, std::uint64_t frame_id, net::NodeId src,
              net::NodeId dst, sim::Duration delay = 0,
              std::uint64_t trace = 0);
  // Per-frame send-side faults; returns false if the frame was consumed
  // (dropped).  May mark the frame corrupted or inject a duplicate.
  bool impair_outbound(net::Frame& frame, bool is_broadcast);
  void deliver(const net::FrameHandler& handler, net::NodeId receiver,
               const net::Frame& frame);
  void finish_delivery(const net::FrameHandler& handler, net::NodeId receiver,
                       const net::Frame& frame);
  [[nodiscard]] double drop_probability(net::NodeId src,
                                        net::NodeId dst) const;
  // Which kind of severance (if any) separates a and b right now.
  [[nodiscard]] std::optional<FaultKind> severed(net::NodeId a,
                                                net::NodeId b) const;

  sim::Engine* engine_;
  net::Medium* inner_;
  sim::Rng rng_;
  Plan plan_;

  std::set<std::pair<net::NodeId, net::NodeId>> cuts_;  // normalized a<b
  std::vector<std::unordered_set<net::NodeId>> islands_;
  std::unordered_set<net::NodeId> crashed_;

  std::vector<FaultRecord> log_;
  std::vector<FaultObserver> fault_observers_;
  std::vector<DeliveryObserver> delivery_observers_;
  std::vector<NodeObserver> crash_observers_;
  std::vector<NodeObserver> restart_observers_;

  std::uint64_t drops_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t delays_ = 0;
  std::uint64_t corrupt_discards_ = 0;
  std::uint64_t deliveries_ = 0;
};

}  // namespace fault
