#include "fault/invariant_checker.hpp"

#include <sstream>

namespace fault {

InvariantChecker::InvariantChecker(FaultyMedium& medium) : medium_(&medium) {
  medium.observe_faults(
      [this](const FaultRecord& record) { on_fault(record); });
  medium.observe_delivery(
      [this](const net::Frame& frame, net::NodeId receiver) {
        on_delivery(frame, receiver);
      });
}

void InvariantChecker::on_fault(const FaultRecord& record) {
  ++faults_checked_;
  // I5: monotone log.
  if (record.at < last_fault_at_) {
    std::ostringstream os;
    os << "I5: fault log went backwards: " << describe(record) << " after t="
       << sim::to_msec(last_fault_at_) << "ms";
    violate(os.str());
  }
  last_fault_at_ = record.at;
  if (record.kind == FaultKind::kDuplicate) {
    ++dup_budget_[record.frame_id];
  }
}

void InvariantChecker::on_delivery(const net::Frame& frame,
                                   net::NodeId receiver) {
  ++deliveries_checked_;
  std::ostringstream os;
  if (medium_->crashed(receiver)) {
    os << "I1: frame#" << frame.id << " delivered to crashed " << receiver;
    violate(os.str());
    return;
  }
  if (medium_->link_cut(frame.src, receiver)) {
    os << "I2: frame#" << frame.id << " delivered across severed link "
       << frame.src << "<->" << receiver;
    violate(os.str());
    return;
  }
  if (frame.corrupted) {
    os << "I3: corrupted frame#" << frame.id << " reached " << receiver;
    violate(os.str());
    return;
  }
  const std::uint32_t seen = ++delivered_[{frame.id, receiver}];
  auto it = dup_budget_.find(frame.id);
  const std::uint32_t allowed =
      1 + (it == dup_budget_.end() ? 0 : it->second);
  if (seen > allowed) {
    os << "I4: frame#" << frame.id << " delivered " << seen << "x to "
       << receiver << " with only " << (allowed - 1)
       << " duplicate(s) injected";
    violate(os.str());
  }
}

void InvariantChecker::violate(std::string what) {
  violations_.push_back(std::move(what));
}

}  // namespace fault
