// End-to-end invariants over an impaired network.
//
// The checker subscribes to a FaultyMedium's fault and delivery streams
// and cross-checks them: every delivery must be explainable by the
// current topology state, and every anomaly the application could see
// (a duplicate, a late frame) must be matched by an injected fault.
// Chaos tests assert ok() at the end of a run — a violation means the
// fault layer itself (or a medium under it) broke its contract, which
// would invalidate any conclusion drawn from the experiment.
//
// Invariants:
//   I1  no frame is delivered to a crashed node
//   I2  no frame is delivered across a currently-severed link
//   I3  no corrupted frame reaches an application handler
//   I4  a (frame, receiver) pair is delivered at most once per injected
//       duplicate (base delivery + one per kDuplicate record)
//   I5  the fault log is monotone in time
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fault/faulty_medium.hpp"

namespace fault {

class InvariantChecker {
 public:
  // Subscribes to `medium`; the checker must outlive the simulation run.
  explicit InvariantChecker(FaultyMedium& medium);

  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<std::string>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::uint64_t deliveries_checked() const {
    return deliveries_checked_;
  }
  [[nodiscard]] std::uint64_t faults_checked() const {
    return faults_checked_;
  }

 private:
  void on_fault(const FaultRecord& record);
  void on_delivery(const net::Frame& frame, net::NodeId receiver);
  void violate(std::string what);

  FaultyMedium* medium_;
  // frame id -> injected duplicate count (extra deliveries allowed per
  // receiver beyond the first)
  std::unordered_map<std::uint64_t, std::uint32_t> dup_budget_;
  // (frame id, receiver) -> deliveries seen
  std::map<std::pair<std::uint64_t, net::NodeId>, std::uint32_t> delivered_;
  sim::Time last_fault_at_ = 0;
  std::uint64_t deliveries_checked_ = 0;
  std::uint64_t faults_checked_ = 0;
  std::vector<std::string> violations_;
};

}  // namespace fault
