// Deterministic fault schedules.
//
// A Plan is data, not behaviour: a list of timed topology actions (cut
// this link at t=2s, crash that node at t=5s), a list of loss windows
// (drop 10% of frames from A to B between t=1s and t=3s), and a
// background impairment model applied to all traffic.  FaultyMedium
// arms the plan against an Engine; together with the medium's seed it
// fully determines the fault sequence, so a failing chaos run can be
// replayed exactly from (seed, plan).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace fault {

// Stochastic impairment applied to every frame while the medium runs.
// All probabilities are per-frame (per-receiver for broadcast legs).
struct BackgroundModel {
  double drop_prob = 0.0;
  double duplicate_prob = 0.0;
  double corrupt_prob = 0.0;
  sim::Duration max_jitter = 0;  // uniform extra delay in [0, max_jitter]
};

// A window of elevated loss.  Invalid src/dst act as wildcards.
struct DropWindow {
  sim::Time from = 0;
  sim::Time to = 0;  // inclusive of from, exclusive of to
  double prob = 0.0;
  net::NodeId src;
  net::NodeId dst;

  [[nodiscard]] bool matches(sim::Time now, net::NodeId frame_src,
                             net::NodeId frame_dst) const {
    if (now < from || now >= to) return false;
    if (src.valid() && src != frame_src) return false;
    if (dst.valid() && frame_dst.valid() && dst != frame_dst) return false;
    return true;
  }
};

struct Action {
  enum class Op : std::uint8_t {
    kCutLink,
    kHealLink,
    kPartition,
    kHealAll,
    kCrash,
    kRestart,
  };
  sim::Time at = 0;
  Op op{};
  net::NodeId a;
  net::NodeId b;
  std::vector<net::NodeId> island;  // kPartition: nodes isolated from the rest
};

class Plan {
 public:
  Plan& cut_link(sim::Time at, net::NodeId a, net::NodeId b) {
    actions_.push_back({at, Action::Op::kCutLink, a, b, {}});
    return *this;
  }
  Plan& heal_link(sim::Time at, net::NodeId a, net::NodeId b) {
    actions_.push_back({at, Action::Op::kHealLink, a, b, {}});
    return *this;
  }
  // Isolate `island` from every node outside it (both directions).
  Plan& partition(sim::Time at, std::vector<net::NodeId> island) {
    actions_.push_back(
        {at, Action::Op::kPartition, {}, {}, std::move(island)});
    return *this;
  }
  // Restore all cuts and partitions.
  Plan& heal_all(sim::Time at) {
    actions_.push_back({at, Action::Op::kHealAll, {}, {}, {}});
    return *this;
  }
  Plan& crash(sim::Time at, net::NodeId node) {
    actions_.push_back({at, Action::Op::kCrash, node, {}, {}});
    return *this;
  }
  Plan& restart(sim::Time at, net::NodeId node) {
    actions_.push_back({at, Action::Op::kRestart, node, {}, {}});
    return *this;
  }
  Plan& drop_between(sim::Time from, sim::Time to, double prob,
                     net::NodeId src = {}, net::NodeId dst = {}) {
    windows_.push_back({from, to, prob, src, dst});
    return *this;
  }
  Plan& background(BackgroundModel model) {
    background_ = model;
    return *this;
  }

  [[nodiscard]] const std::vector<Action>& actions() const { return actions_; }
  [[nodiscard]] const std::vector<DropWindow>& windows() const {
    return windows_;
  }
  [[nodiscard]] const BackgroundModel& background() const {
    return background_;
  }

 private:
  std::vector<Action> actions_;
  std::vector<DropWindow> windows_;
  BackgroundModel background_{};
};

}  // namespace fault
