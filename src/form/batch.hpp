// RPC formation: the batch wire format (ROADMAP item 5, DESIGN.md §14).
//
// A form::Batch is one physical wire frame carrying several co-destined
// kernel frames as enclosures.  Each enclosure keeps its own body,
// payload_bytes and TraceId, so the receive side can dispatch them in
// order and the trace phase tables still decompose per-RPC.  The batch
// frame's payload_bytes bills a small batch header plus a per-enclosure
// descriptor on top of the enclosed payloads — media charge batched
// traffic honestly, the win comes from amortizing per-frame overheads
// (medium headers, token waits, frame_processing) across enclosures.
//
// Loss semantics are deliberately all-or-nothing: the fault layer drops
// whole net::Frames, so one dropped batch loses every enclosure in it.
// Each kernel's existing recovery (Charlotte's retransmit timers,
// SODA's per-fragment transport acks) re-delivers them; the enclosures
// were ordinary retransmittable kernel frames before they were packed.
#pragma once

#include <cstddef>
#include <vector>

#include "net/packet.hpp"

namespace form {

// Nominal wire overheads, charged into the batch frame's payload_bytes.
inline constexpr std::size_t kBatchHeaderBytes = 8;      // count + flags
inline constexpr std::size_t kEnclosureHeaderBytes = 4;  // length + type

struct Batch {
  std::vector<net::Frame> frames;  // enclosures, in submission order
};

// Bytes an enclosure occupies inside a batch frame.
[[nodiscard]] inline std::size_t wrapped_bytes(const net::Frame& f) {
  return kEnclosureHeaderBytes + f.payload_bytes;
}

}  // namespace form
