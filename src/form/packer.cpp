#include "form/packer.hpp"

#include <utility>

#include "trace/trace.hpp"

namespace form {

Packer::Packer(sim::Engine& engine, net::Medium& medium, net::NodeId src,
               Params params)
    : engine_(&engine), medium_(&medium), src_(src), params_(params) {}

Packer::~Packer() {
  // Never flush here: teardown runs after the engine stopped, and
  // pending enclosures die with the run exactly like parked frames do.
  for (auto& [dst, q] : queues_) q.deadline.cancel();
}

void Packer::submit(net::Frame frame) {
  if (!enabled()) {
    // Formation off: byte-identical to the frame-per-message wire.
    medium_->send(std::move(frame));
    return;
  }
  const net::NodeId dst = frame.dst;
  Queue& q = queues_[dst];
  const std::size_t wrapped = wrapped_bytes(frame);
  // A frame that would blow the byte budget closes the current batch
  // first; FIFO order to this destination is preserved either way.
  if (!q.pending.empty() &&
      kBatchHeaderBytes + q.bytes + wrapped > params_.max_bytes) {
    do_flush(dst, q);
  }
  q.pending.push_back(std::move(frame));
  q.bytes += wrapped;
  if (kBatchHeaderBytes + q.bytes >= params_.max_bytes) {
    do_flush(dst, q);
  } else if (q.pending.size() == 1) {
    q.deadline = engine_->schedule_cancellable(params_.delay,
                                               [this, dst] { flush(dst); });
  }
}

void Packer::submit_broadcast(net::Frame frame) {
  if (enabled()) flush_all();
  medium_->broadcast(std::move(frame));
}

void Packer::flush(net::NodeId dst) {
  auto it = queues_.find(dst);
  if (it != queues_.end()) do_flush(dst, it->second);
}

void Packer::flush_all() {
  for (auto& [dst, q] : queues_) do_flush(dst, q);
}

void Packer::do_flush(net::NodeId dst, Queue& q) {
  if (q.pending.empty()) return;
  q.deadline.cancel();
  const std::size_t bytes = q.bytes;
  std::vector<net::Frame> frames = std::move(q.pending);
  q.pending.clear();
  q.bytes = 0;

  if (frames.size() == 1) {
    // Sparse traffic: the lone enclosure goes out unwrapped, so the
    // wire format (and every byte the medium charges) is unchanged.
    ++singles_;
    medium_->send(std::move(frames.front()));
    return;
  }

  // The batch inherits the first traced enclosure's identity so fault
  // observers can still name the operation a dropped batch serves; the
  // per-enclosure TraceIds ride inside for the receive-side records.
  std::uint64_t trace = 0;
  for (const net::Frame& f : frames) {
    if (f.trace_id != 0) {
      trace = f.trace_id;
      break;
    }
  }
  const std::size_t count = frames.size();
  ++batches_;
  enclosed_ += count;
  net::Frame out{src_, dst, kBatchHeaderBytes + bytes,
                 Batch{std::move(frames)}};
  out.trace_id = trace;
  if (auto* rec = trace::get(*engine_)) {
    rec->instant(src_.value(), "wire", "batch.tx", trace, count,
                 out.payload_bytes);
  }
  medium_->send(std::move(out));
}

}  // namespace form
