// RPC formation: the send-side Packer (ROADMAP item 5, DESIGN.md §14).
//
// One Packer per (engine, sending kernel); it sits between the kernel's
// transmit path and the medium.  Unicast frames are queued per
// destination node and flushed as a single form::Batch frame when one
// of three triggers fires, the same knob idiom as Charlotte's
// Costs::ack_coalesce_delay:
//
//   * byte budget — pending enclosures reach Params::max_bytes;
//   * deadline    — Params::delay elapsed since the queue went
//                   non-empty (so a lone message is never held longer
//                   than the formation window);
//   * flush hint  — the kernel flushes explicitly (e.g. before a
//                   broadcast, which must not overtake queued unicasts
//                   on the same per-link FIFO order).
//
// delay == 0 disables formation entirely: submit() passes frames
// straight to the medium, byte-identically to the frame-per-message
// wire, which keeps the 100-seed determinism digests and every existing
// baseline untouched at the default setting.
//
// A flush holding exactly one frame sends it UNWRAPPED — sparse traffic
// pays the formation delay but never the batch framing bytes, and the
// wire stays identical to today's except for timing.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "form/batch.hpp"
#include "net/packet.hpp"
#include "sim/engine.hpp"

namespace form {

struct Params {
  // Formation window.  0 = off: frames pass straight through.
  sim::Duration delay = 0;
  // Flush as soon as the pending batch frame would reach this size.
  std::size_t max_bytes = 1024;
};

class Packer {
 public:
  Packer(sim::Engine& engine, net::Medium& medium, net::NodeId src,
         Params params);
  Packer(const Packer&) = delete;
  Packer& operator=(const Packer&) = delete;
  ~Packer();  // cancels deadline timers; never flushes into teardown

  [[nodiscard]] bool enabled() const { return params_.delay > 0; }
  [[nodiscard]] const Params& params() const { return params_; }

  // Unicast: queue behind the formation trigger (or pass through when
  // formation is off).  Takes over the frame's FIFO position: frames to
  // one destination leave the medium in submission order.
  void submit(net::Frame frame);

  // Broadcast: flushes every queue first (a broadcast reaches all
  // destinations, so letting it overtake any queued unicast would
  // reorder that link), then broadcasts unbatched.
  void submit_broadcast(net::Frame frame);

  // Flush hints.
  void flush(net::NodeId dst);
  void flush_all();

  // ---- instrumentation (E16) ----
  [[nodiscard]] std::uint64_t batches_sent() const { return batches_; }
  [[nodiscard]] std::uint64_t enclosures_batched() const { return enclosed_; }
  [[nodiscard]] std::uint64_t singles_sent() const { return singles_; }

 private:
  struct Queue {
    std::vector<net::Frame> pending;
    std::size_t bytes = 0;  // sum of wrapped_bytes(pending)
    sim::TimerHandle deadline;
  };

  void do_flush(net::NodeId dst, Queue& q);

  sim::Engine* engine_;
  net::Medium* medium_;
  net::NodeId src_;
  Params params_;
  std::unordered_map<net::NodeId, Queue> queues_;
  std::uint64_t batches_ = 0;
  std::uint64_t enclosed_ = 0;
  std::uint64_t singles_ = 0;
};

}  // namespace form
