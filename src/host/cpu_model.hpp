// CPU cost models for the three 1986 machines.
//
// Kernel cost tables below are written in "nominal" durations calibrated
// on each paper's own hardware; CpuModel lets experiments scale them
// (e.g. E7's "code tuning and protocol optimizations ... improve both
// figures by 30 to 40%" is a scale of ~0.65 on the run-time package
// costs, and E5's hardware-normalized comparison runs SODA's protocol on
// a slower CPU than Charlotte's).
#pragma once

#include <string>

#include "sim/time.hpp"

namespace host {

struct CpuModel {
  std::string name;
  // Multiplier applied to nominal op costs; 1.0 = the machine the cost
  // table was calibrated for.
  double scale = 1.0;

  [[nodiscard]] sim::Duration cost(sim::Duration nominal) const {
    return static_cast<sim::Duration>(static_cast<double>(nominal) * scale);
  }
};

// The reference machines.  Scales are relative *within each kernel's own
// cost table*, so they default to 1.0; named constructors exist so the
// experiments read like the paper.
[[nodiscard]] inline CpuModel vax_11_750() { return {"VAX 11/750", 1.0}; }
[[nodiscard]] inline CpuModel pdp_11_23() { return {"PDP 11/23", 1.0}; }
[[nodiscard]] inline CpuModel mc68000() { return {"MC68000", 1.0}; }

}  // namespace host
