// Shared process identity for the simulated kernels.
//
// Every kernel (Charlotte, SODA, Chrysalis) manages processes; they share
// the Pid type so the LYNX runtime and the experiment harnesses can talk
// about "the process" uniformly, while each kernel keeps its own
// per-process state.
#pragma once

#include "common/strong_id.hpp"
#include "net/packet.hpp"

namespace host {

struct PidTag {
  static const char* prefix() { return "pid"; }
};
using Pid = common::StrongId<PidTag, std::uint32_t>;

struct ProcessInfo {
  Pid pid;
  net::NodeId node;
  bool alive = true;
};

}  // namespace host
