#include "load/capacity.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "load/runner.hpp"
#include "sweep/sweep.hpp"

namespace load {
namespace {

Report probe(Substrate substrate, const Scenario& base, double rate) {
  Scenario s = base;
  s.offered_rate = rate;
  return run_scenario(substrate, s);
}

// The geometric ladder the sequential search would walk: rate_lo, then
// doublings up to rate_hi.  Probing it as one wave lets the walk replay
// from precomputed reports.
std::vector<double> ladder_rates(const CapacityParams& params) {
  std::vector<double> rates;
  for (double rate = params.rate_lo; rate <= params.rate_hi; rate *= 2.0) {
    rates.push_back(rate);
  }
  return rates;
}

}  // namespace

CapacityResult find_capacity(Substrate substrate, Scenario base,
                             CapacityParams params) {
  RELYNX_ASSERT_MSG(base.arrival != Arrival::kClosed,
                    "capacity search needs an open-loop scenario");
  RELYNX_ASSERT(params.rate_lo > 0.0 && params.rate_hi >= params.rate_lo);
  // A healthy open-loop run ends with at most the in-flight window's
  // worth of pending work; growth beyond that is queueing divergence.
  const auto slack = static_cast<std::int64_t>(
      2 * base.clients * base.channels_per_client + 2);

  // The ladder wave: with a pool, probe every rung up front in parallel
  // and let the walk below replay over the reports; without one, probe
  // lazily rung by rung.  Either way the walk stops at the first failure
  // and later rungs never enter the curve, so the two modes agree bit
  // for bit (every probe is an independent deterministic Engine).
  const std::vector<double> rates = ladder_rates(params);
  std::vector<Report> wave;
  if (params.pool != nullptr) {
    wave = sweep::map(
        rates, [&](const double& rate) { return probe(substrate, base, rate); },
        *params.pool);
  }
  auto ladder_report = [&](std::size_t i) {
    return params.pool != nullptr ? wave[i] : probe(substrate, base, rates[i]);
  };

  CapacityResult out;
  const Report lo_rep = ladder_report(0);
  out.p99_bound_ms = params.p99_bound_ms > 0.0
                         ? params.p99_bound_ms
                         : params.p99_multiplier * std::max(lo_rep.p99_ms, 0.1);
  auto sustains = [&](const Report& r) {
    return r.sustainable(out.p99_bound_ms, slack);
  };

  out.curve.push_back({params.rate_lo, lo_rep, sustains(lo_rep)});
  if (!out.curve.back().sustainable) return out;  // peak_rate stays 0

  double lo = params.rate_lo;
  double hi = 0.0;
  Report best = lo_rep;
  for (std::size_t i = 1; i < rates.size(); ++i) {
    const double rate = rates[i];
    const Report r = ladder_report(i);
    const bool ok = sustains(r);
    out.curve.push_back({rate, r, ok});
    if (ok) {
      lo = rate;
      best = r;
    } else {
      hi = rate;
      break;
    }
  }
  if (hi > 0.0) {
    for (int i = 0; i < params.refine_iters; ++i) {
      const double mid = std::sqrt(lo * hi);
      if (mid <= lo * 1.01 || mid >= hi * 0.99) break;
      const Report r = probe(substrate, base, mid);
      const bool ok = sustains(r);
      out.curve.push_back({mid, r, ok});
      if (ok) {
        lo = mid;
        best = r;
      } else {
        hi = mid;
      }
    }
  }
  out.peak_rate = lo;
  out.peak_throughput = best.throughput;
  std::sort(out.curve.begin(), out.curve.end(),
            [](const RatePoint& a, const RatePoint& b) {
              return a.rate < b.rate;
            });
  return out;
}

}  // namespace load
