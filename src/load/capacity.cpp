#include "load/capacity.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "load/runner.hpp"

namespace load {
namespace {

Report probe(Substrate substrate, const Scenario& base, double rate) {
  Scenario s = base;
  s.offered_rate = rate;
  return run_scenario(substrate, s);
}

}  // namespace

CapacityResult find_capacity(Substrate substrate, Scenario base,
                             CapacityParams params) {
  RELYNX_ASSERT_MSG(base.arrival != Arrival::kClosed,
                    "capacity search needs an open-loop scenario");
  RELYNX_ASSERT(params.rate_lo > 0.0 && params.rate_hi >= params.rate_lo);
  // A healthy open-loop run ends with at most the in-flight window's
  // worth of pending work; growth beyond that is queueing divergence.
  const auto slack = static_cast<std::int64_t>(
      2 * base.clients * base.channels_per_client + 2);

  CapacityResult out;
  const Report lo_rep = probe(substrate, base, params.rate_lo);
  out.p99_bound_ms = params.p99_bound_ms > 0.0
                         ? params.p99_bound_ms
                         : params.p99_multiplier * std::max(lo_rep.p99_ms, 0.1);
  auto sustains = [&](const Report& r) {
    return r.sustainable(out.p99_bound_ms, slack);
  };

  out.curve.push_back({params.rate_lo, lo_rep, sustains(lo_rep)});
  if (!out.curve.back().sustainable) return out;  // peak_rate stays 0

  double lo = params.rate_lo;
  double hi = 0.0;
  Report best = lo_rep;
  for (double rate = params.rate_lo * 2.0; rate <= params.rate_hi;
       rate *= 2.0) {
    const Report r = probe(substrate, base, rate);
    const bool ok = sustains(r);
    out.curve.push_back({rate, r, ok});
    if (ok) {
      lo = rate;
      best = r;
    } else {
      hi = rate;
      break;
    }
  }
  if (hi > 0.0) {
    for (int i = 0; i < params.refine_iters; ++i) {
      const double mid = std::sqrt(lo * hi);
      if (mid <= lo * 1.01 || mid >= hi * 0.99) break;
      const Report r = probe(substrate, base, mid);
      const bool ok = sustains(r);
      out.curve.push_back({mid, r, ok});
      if (ok) {
        lo = mid;
        best = r;
      } else {
        hi = mid;
      }
    }
  }
  out.peak_rate = lo;
  out.peak_throughput = best.throughput;
  std::sort(out.curve.begin(), out.curve.end(),
            [](const RatePoint& a, const RatePoint& b) {
              return a.rate < b.rate;
            });
  return out;
}

}  // namespace load
