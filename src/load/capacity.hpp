// Saturation search: how much offered load can a kernel sustain?
//
// A rate is "sustainable" when the run completed everything it
// scheduled within a p99 bound and without its backlog growing over the
// measure window (Report::sustainable).  find_capacity walks offered
// rates geometrically until the scenario breaks, then bisects the
// bracket (in log space) to the knee.  Every probe is a full
// deterministic run, so the search itself is reproducible.
#pragma once

#include <vector>

#include "load/fleet.hpp"
#include "load/report.hpp"
#include "load/scenario.hpp"

namespace sweep {
class ThreadPool;  // src/sweep/thread_pool.hpp
}  // namespace sweep

namespace load {

struct CapacityParams {
  // Absolute p99 bound in ms; 0 derives one from an unloaded probe at
  // rate_lo: p99_multiplier × its measured p99 (an "acceptably loaded"
  // tail is a few times the uncontended tail).
  double p99_bound_ms = 0.0;
  double p99_multiplier = 5.0;
  double rate_lo = 2.0;     // must be comfortably sustainable
  double rate_hi = 2048.0;  // search ceiling, requests/s
  int refine_iters = 5;     // log-space bisection steps after bracketing
  // Optional sweep pool: when set, the whole geometric ladder is probed
  // as one parallel wave (each probe is an independent Engine) and the
  // sequential walk replays over the precomputed reports.  Probes past
  // the first failure are discarded, so the result — curve included —
  // is bit-identical to the sequential search.  Bisection stays
  // sequential (each midpoint depends on the previous verdict).
  sweep::ThreadPool* pool = nullptr;
};

struct RatePoint {
  double rate = 0.0;
  Report report;
  bool sustainable = false;
};

struct CapacityResult {
  double peak_rate = 0.0;        // highest sustainable offered rate probed
  double peak_throughput = 0.0;  // delivered throughput at that rate
  double p99_bound_ms = 0.0;     // the bound the verdicts used
  std::vector<RatePoint> curve;  // every probe, sorted by rate
};

// `base` must use an open-loop arrival process; its offered_rate is
// overridden per probe.
[[nodiscard]] CapacityResult find_capacity(Substrate substrate, Scenario base,
                                           CapacityParams params = {});

}  // namespace load
