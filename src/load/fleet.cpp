#include "load/fleet.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "charlotte/kernel.hpp"
#include "chrysalis/kernel.hpp"
#include "common/assert.hpp"
#include "net/butterfly_switch.hpp"
#include "net/csma_bus.hpp"
#include "sim/random.hpp"
#include "soda/kernel.hpp"

namespace load {

const char* to_string(Substrate s) {
  switch (s) {
    case Substrate::kCharlotte: return "charlotte";
    case Substrate::kSoda: return "soda";
    case Substrate::kChrysalis: return "chrysalis";
  }
  return "?";
}

std::array<Substrate, 3> all_substrates() {
  return {Substrate::kCharlotte, Substrate::kSoda, Substrate::kChrysalis};
}

Fleet::Fleet(Substrate substrate, const Scenario& sc) : substrate_(substrate) {
  RELYNX_ASSERT(sc.servers >= 1 && sc.clients >= 1);
  RELYNX_ASSERT(sc.channels_per_client >= 1 && sc.server_threads >= 1);
  const std::size_t total = sc.servers + sc.clients;
  form_delay_ = sc.form_delay;
  form_max_bytes_ = sc.form_max_bytes;
  switch (substrate_) {
    case Substrate::kCharlotte: {
      charlotte::Costs costs;
      costs.form_delay = sc.form_delay;
      costs.form_max_bytes = sc.form_max_bytes;
      charlotte_cluster_ = std::make_unique<charlotte::Cluster>(
          engine_, total, net::TokenRingParams{}, costs);
      break;
    }
    case Substrate::kSoda: {
      // A quiet bus: capacity is a property of the kernel interface and
      // protocol here, not of injected loss (src/fault/ owns that).
      net::CsmaBusParams p;
      p.broadcast_drop_prob = 0.0;
      soda::Costs costs;
      costs.form_delay = sc.form_delay;
      costs.form_max_bytes = sc.form_max_bytes;
      // Each LYNX link end parks one standing status signal at its peer
      // (SodaBackend::post_signal), so a client pipelining across N
      // channels holds N signal slots PLUS up to N data requests against
      // the §4.2.1 per-pair admission budget — at N == the default budget
      // of 8 the signals alone fill it and every data request bounces
      // with kTooManyRequests forever.  Scale the budget with the wiring
      // so deep-pipeline scenarios saturate on the wire, not on the
      // admission limit.
      costs.max_outstanding_per_pair = std::max(
          costs.max_outstanding_per_pair,
          static_cast<int>(2 * sc.channels_per_client + 2));
      soda_network_ = std::make_unique<soda::Network>(
          engine_, total, sim::Rng(sc.seed ^ 0x50da50daULL), p, costs);
      break;
    }
    case Substrate::kChrysalis: {
      net::ButterflyParams fabric;
      fabric.nodes = static_cast<std::uint32_t>(total);
      chrysalis_kernel_ =
          std::make_unique<chrysalis::Kernel>(engine_, fabric);
      break;
    }
  }
  for (std::size_t s = 0; s < sc.servers; ++s) {
    server_procs_.push_back(make_process("server" + std::to_string(s), s));
  }
  for (std::size_t i = 0; i < sc.clients; ++i) {
    client_procs_.push_back(
        make_process("client" + std::to_string(i), sc.servers + i));
  }
  for (auto& p : server_procs_) p->start();
  for (auto& p : client_procs_) p->start();

  server_inbound_.resize(sc.servers);
  client_channels_.resize(sc.clients);
  forward_links_.resize(sc.servers);
  engine_.spawn("wire", wire(this, sc));
  engine_.run();  // only bootstrap traffic exists yet
  for (std::size_t i = 0; i < sc.clients; ++i) {
    RELYNX_ASSERT_MSG(client_channels_[i].size() == sc.channels_per_client,
                      "fleet wiring incomplete");
  }
}

Fleet::~Fleet() {
  // A loaded run can end at the measurement deadline with hundreds of
  // coroutine frames still parked mid-RPC.  Their local destructors
  // (claim guards, spans) touch Process and kernel state, so tear the
  // frames down NOW, while members — destroyed before engine_ in
  // reverse declaration order — are all still alive.
  engine_.shutdown();
}

std::unique_ptr<lynx::Process> Fleet::make_process(std::string name,
                                                   std::size_t node) {
  const net::NodeId nid(static_cast<std::uint32_t>(node));
  switch (substrate_) {
    case Substrate::kCharlotte:
      return std::make_unique<lynx::Process>(
          engine_, std::move(name),
          lynx::make_charlotte_backend(*charlotte_cluster_, nid),
          lynx::vax_runtime_costs());
    case Substrate::kSoda:
      return std::make_unique<lynx::Process>(
          engine_, std::move(name),
          lynx::make_soda_backend(*soda_network_, directory_, nid),
          lynx::pdp11_runtime_costs());
    case Substrate::kChrysalis: {
      lynx::ChrysalisBackendParams bp;
      bp.form_delay = form_delay_;
      // Scale the byte budget into a notice budget: notices are one
      // 32-bit datum each, and 64-per-batch keeps parity with the
      // default 1024-byte frame budget holding ~64 small enclosures.
      bp.form_max_notices = std::max<std::size_t>(2, form_max_bytes_ / 16);
      return std::make_unique<lynx::Process>(
          engine_, std::move(name),
          lynx::make_chrysalis_backend(*chrysalis_kernel_, nid, bp),
          lynx::mc68000_runtime_costs());
    }
  }
  return nullptr;
}

std::uint64_t Fleet::wire_ops() {
  switch (substrate_) {
    case Substrate::kCharlotte:
      return charlotte_cluster_->medium().frames_sent();
    case Substrate::kSoda:
      return soda_network_->medium().frames_sent();
    case Substrate::kChrysalis:
      return chrysalis_kernel_->enqueue_calls();
  }
  return 0;
}

sim::Task<> Fleet::wire(Fleet* f, Scenario sc) {
  // Clients call into their server (fan-in) or into stage 0 (pipeline).
  for (std::size_t i = 0; i < sc.clients; ++i) {
    const std::size_t target =
        sc.topology == Topology::kFanIn ? i % sc.servers : 0;
    for (std::size_t c = 0; c < sc.channels_per_client; ++c) {
      auto [srv_end, cli_end] =
          co_await lynx::connect_any(f->server(target), f->client(i));
      f->server_inbound_[target].push_back(srv_end);
      f->client_channels_[i].push_back(cli_end);
    }
  }
  if (sc.topology == Topology::kPipeline) {
    for (std::size_t s = 0; s + 1 < sc.servers; ++s) {
      for (std::size_t w = 0; w < sc.server_threads; ++w) {
        auto [next_end, stage_end] =
            co_await lynx::connect_any(f->server(s + 1), f->server(s));
        f->server_inbound_[s + 1].push_back(next_end);
        f->forward_links_[s].push_back(stage_end);
      }
    }
  }
}

}  // namespace load
