// A Fleet instantiates a Scenario's topology on one kernel substrate:
// the engine, the kernel, the server and client processes with their
// calibrated runtime costs, and the bootstrap links between them —
// everything except the traffic (load::Runner drives that).
//
// Node layout: servers (or pipeline stages) occupy nodes 0..M-1,
// clients M..M+N-1.  Fan-in wires every channel of client i to server
// i mod M; a pipeline additionally wires `server_threads` forward links
// from each stage to the next, one per worker thread so concurrent
// forwards never serialize on a link's one-outstanding-call rule.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "load/scenario.hpp"
#include "lynx/lynx.hpp"
#include "sim/engine.hpp"

namespace charlotte {
class Cluster;
}
namespace soda {
class Network;
}
namespace chrysalis {
class Kernel;
}

namespace load {

enum class Substrate : std::uint8_t { kCharlotte = 0, kSoda = 1, kChrysalis = 2 };

[[nodiscard]] const char* to_string(Substrate s);
[[nodiscard]] std::array<Substrate, 3> all_substrates();

class Fleet {
 public:
  Fleet(Substrate substrate, const Scenario& scenario);
  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;
  ~Fleet();

  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] Substrate substrate() const { return substrate_; }
  [[nodiscard]] std::size_t servers() const { return server_procs_.size(); }
  [[nodiscard]] std::size_t clients() const { return client_procs_.size(); }
  [[nodiscard]] lynx::Process& server(std::size_t s) {
    return *server_procs_[s];
  }
  [[nodiscard]] lynx::Process& client(std::size_t i) {
    return *client_procs_[i];
  }

  // Link ends, populated during construction (the ctor runs the engine
  // until the wiring coroutine finishes).
  [[nodiscard]] const std::vector<lynx::LinkHandle>& server_inbound(
      std::size_t s) const {
    return server_inbound_[s];
  }
  [[nodiscard]] const std::vector<lynx::LinkHandle>& client_channels(
      std::size_t i) const {
    return client_channels_[i];
  }
  // Pipeline only: stage s's calling ends toward stage s+1, one per
  // worker thread; empty for the last stage and for fan-in.
  [[nodiscard]] const std::vector<lynx::LinkHandle>& forward_links(
      std::size_t s) const {
    return forward_links_[s];
  }

  // Physical wire operations so far: frames on the medium for Charlotte
  // and SODA, dual-queue enqueue dispatches for Chrysalis (which has no
  // wire).  Sampled by the Runner at the measure window's edges (E16).
  [[nodiscard]] std::uint64_t wire_ops();

 private:
  [[nodiscard]] std::unique_ptr<lynx::Process> make_process(std::string name,
                                                            std::size_t node);
  [[nodiscard]] static sim::Task<> wire(Fleet* f, Scenario sc);

  Substrate substrate_;
  sim::Duration form_delay_ = 0;
  std::size_t form_max_bytes_ = 1024;
  sim::Engine engine_;
  lynx::SodaDirectory directory_;
  std::unique_ptr<charlotte::Cluster> charlotte_cluster_;
  std::unique_ptr<soda::Network> soda_network_;
  std::unique_ptr<chrysalis::Kernel> chrysalis_kernel_;
  // Declared after the kernels so processes tear down first.
  std::vector<std::unique_ptr<lynx::Process>> server_procs_;
  std::vector<std::unique_ptr<lynx::Process>> client_procs_;
  std::vector<std::vector<lynx::LinkHandle>> server_inbound_;
  std::vector<std::vector<lynx::LinkHandle>> client_channels_;
  std::vector<std::vector<lynx::LinkHandle>> forward_links_;
};

}  // namespace load
