// load:: public umbrella — workload generation and capacity measurement.
//
//   load::Scenario sc;                      // what to offer (scenario.hpp)
//   sc.arrival = load::Arrival::kOpenPoisson;
//   sc.offered_rate = 200.0;
//   load::Report r = load::run_scenario(load::Substrate::kSoda, sc);
//   auto cap = load::find_capacity(load::Substrate::kSoda, sc);
//
// See bench/bench_capacity.cpp for the full throughput–latency curves.
#pragma once

#include "load/capacity.hpp"
#include "load/fleet.hpp"
#include "load/report.hpp"
#include "load/runner.hpp"
#include "load/scenario.hpp"
