// Result of one measured load run.
//
// All latency figures are quoted from the measure window only and, for
// open-loop runs, from the *scheduled* arrival time (coordinated-
// omission-correct; see scenario.hpp).  The whole struct is plain data
// with defaulted equality so determinism tests can compare two runs
// field-for-field.
#pragma once

#include <cstdint>
#include <string>

namespace load {

struct Report {
  std::string backend;   // kernel substrate name
  std::string scenario;  // Scenario::name
  double offered_rate = 0.0;  // requests/s asked for (open loop)

  // Counts over the measure window.
  std::int64_t scheduled = 0;  // arrivals scheduled in-window
  std::int64_t completed = 0;  // in-window arrivals whose reply landed
  std::int64_t dropped = 0;    // in-window arrivals shed by the backlog cap
  std::int64_t errors = 0;     // LynxError-terminated operations + failures
  std::int64_t samples = 0;    // latency observations (== completed)

  double throughput = 0.0;  // completed / measure seconds
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;

  // Pending work (queued arrivals + in-flight calls) sampled at the
  // measure window's edges: growth across the window is the signature
  // of an offered rate beyond capacity.
  std::int64_t backlog_start = 0;
  std::int64_t backlog_end = 0;
  std::int64_t backlog_peak = 0;
  bool backlog_capped = false;  // the per-client cap shed arrivals

  double sim_end_ms = 0.0;  // simulated clock when the run was cut off

  // Wire economy over the measure window (E16): physical frames sent on
  // the medium (Chrysalis: dual-queue enqueue dispatches) and the same
  // normalized per completed request.  Formation drives this down.
  std::int64_t wire_ops = 0;
  double frames_per_op = 0.0;

  // The capacity searcher's sustainability predicate: the run kept up
  // with its offered rate if nothing was shed or failed, the tail
  // stayed under the bound, and the backlog did not grow beyond
  // `backlog_slack` over the measure window.
  [[nodiscard]] bool sustainable(double p99_bound_ms,
                                 std::int64_t backlog_slack) const {
    return !backlog_capped && dropped == 0 && errors == 0 && samples > 0 &&
           p99_ms <= p99_bound_ms &&
           (backlog_end - backlog_start) <= backlog_slack;
  }

  bool operator==(const Report&) const = default;
};

}  // namespace load
