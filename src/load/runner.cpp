#include "load/runner.hpp"

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/assert.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "sim/sync.hpp"

namespace load {
namespace {

// One scheduled open-loop request, queued client-side until a sender
// channel is free.  scheduled < 0 is the shutdown sentinel.
struct OpenArrival {
  sim::Time scheduled = -1;
  std::uint32_t size_idx = 0;
};

// Weighted draw from the size mix; a single-point mix consumes no
// randomness so deterministic scenarios stay byte-stable when the mix
// is trivial.
[[nodiscard]] std::uint32_t draw_size(const Scenario& sc, sim::Rng& rng) {
  if (sc.mix.size() <= 1) return 0;
  double total = 0.0;
  for (const auto& m : sc.mix) total += m.weight;
  double x = rng.next_double() * total;
  for (std::uint32_t i = 0; i < sc.mix.size(); ++i) {
    x -= sc.mix[i].weight;
    if (x < 0.0) return i;
  }
  return static_cast<std::uint32_t>(sc.mix.size() - 1);
}

[[nodiscard]] lynx::Message make_request(const SizePoint& sz) {
  return lynx::make_message(
      "load", {static_cast<std::int64_t>(sz.reply_bytes),
               lynx::Bytes(sz.request_bytes, 0xab)});
}

}  // namespace

struct Runner::Impl {
  Impl(Substrate substrate, Scenario scenario)
      : sc(std::move(scenario)), fleet(substrate, sc) {}

  Scenario sc;  // declared before fleet: fleet's ctor reads it
  Fleet fleet;

  struct Window {
    sim::Time start = 0;
    sim::Time meas_start = 0;
    sim::Time meas_end = 0;
    sim::Time hard_end = 0;
    sim::Time stall_at = 0;
  } win;

  sim::Histogram latency_ms;
  std::int64_t scheduled = 0;   // in-window arrivals
  std::int64_t completed = 0;   // in-window completions
  std::int64_t dropped = 0;     // in-window cap sheds
  std::int64_t op_errors = 0;   // in-window LynxError outcomes
  std::int64_t in_flight = 0;   // scheduled-but-unfinished, any window
  std::int64_t backlog_start = 0;
  std::int64_t backlog_end = 0;
  std::int64_t backlog_peak = 0;
  std::uint64_t wire_ops_start = 0;  // Fleet::wire_ops at the window edges
  std::uint64_t wire_ops_end = 0;
  bool capped = false;
  bool stall_done = false;
  bool ran = false;

  struct ClientState {
    std::unique_ptr<sim::Mailbox<OpenArrival>> box;  // open loop only
    sim::Rng rng{0};                                 // dispatcher stream
  };
  std::vector<ClientState> cstate;

  [[nodiscard]] bool in_window(sim::Time t) const {
    return t >= win.meas_start && t < win.meas_end;
  }
  void arrive(sim::Time t) {
    if (in_window(t)) ++scheduled;
    ++in_flight;
    backlog_peak = std::max(backlog_peak, in_flight);
  }
  void drop(sim::Time t) {
    capped = true;
    if (in_window(t)) ++dropped;
  }
  void complete(sim::Time t_sched, sim::Time t_done) {
    --in_flight;
    if (in_window(t_sched)) {
      ++completed;
      latency_ms.add(sim::to_msec(t_done - t_sched));
    }
  }
  void note_error(sim::Time t_sched) {
    --in_flight;
    if (in_window(t_sched)) ++op_errors;
  }
};

namespace {

// Server worker: serve requests forever; the Runner cuts the run off at
// the hard end, and link teardown surfaces here as LynxError.  Requests
// carry [reply_bytes, payload]; a pipeline stage with a forward link
// relays the request downstream and unwinds the downstream reply.
sim::Task<> server_worker(lynx::ThreadCtx& ctx, Runner::Impl* st,
                          std::size_t server_idx,
                          std::vector<lynx::LinkHandle> inbound,
                          lynx::LinkHandle forward) {
  for (lynx::LinkHandle l : inbound) ctx.enable_requests(l);
  for (;;) {
    try {
      lynx::Incoming in = co_await ctx.receive();
      if (server_idx == 0 && !st->stall_done && st->sc.stall_for > 0 &&
          ctx.engine().now() >= st->win.stall_at) {
        st->stall_done = true;  // one-shot fault, front stage only
        co_await ctx.delay(st->sc.stall_for);
      }
      lynx::Message reply;
      if (forward.valid()) {
        lynx::Message fwd = in.msg;
        reply = co_await ctx.call(forward, std::move(fwd));
      } else {
        const auto reply_bytes = static_cast<std::size_t>(
            std::get<std::int64_t>(in.msg.args.at(0)));
        reply.args.emplace_back(lynx::Bytes(reply_bytes, 0xcd));
      }
      co_await ctx.reply(in, std::move(reply));
    } catch (const lynx::LynxError&) {
      co_return;
    }
  }
}

// Closed-loop generator: one thread per channel, latency measured from
// the moment the call is issued — the generator slows down with the
// server, which is exactly the coordinated omission the open loop
// corrects for.
sim::Task<> closed_client(lynx::ThreadCtx& ctx, Runner::Impl* st,
                          lynx::LinkHandle link, sim::Rng rng) {
  while (ctx.engine().now() < st->win.meas_end) {
    const sim::Time t0 = ctx.engine().now();
    const SizePoint sz = st->sc.mix[draw_size(st->sc, rng)];
    st->arrive(t0);
    try {
      (void)co_await ctx.call(link, make_request(sz));
      st->complete(t0, ctx.engine().now());
    } catch (const lynx::LynxError&) {
      st->note_error(t0);
      co_return;
    }
    if (st->sc.think > 0) co_await ctx.delay(st->sc.think);
  }
}

// Open-loop arrival process, one per client, spawned directly on the
// engine: it only sleeps and enqueues, so slow replies can never
// back-pressure it.  Arrivals past the client's backlog cap are shed
// (and the run marked capped) rather than silently deferred.
sim::Task<> open_dispatcher(sim::Engine* eng, Runner::Impl* st,
                            std::size_t client_idx) {
  auto& cs = st->cstate[client_idx];
  const double per_client =
      st->sc.offered_rate / static_cast<double>(st->sc.clients);
  RELYNX_ASSERT(per_client > 0.0);
  const double mean_gap_ns = 1e9 / per_client;
  sim::Time next = st->win.start;
  for (;;) {
    const double gap = st->sc.arrival == Arrival::kOpenDeterministic
                           ? mean_gap_ns
                           : cs.rng.next_exponential(mean_gap_ns);
    next += std::max<sim::Time>(1, static_cast<sim::Time>(gap));
    if (next >= st->win.meas_end) break;
    co_await eng->sleep(next - eng->now());
    const std::uint32_t idx = draw_size(st->sc, cs.rng);
    if (st->sc.max_backlog_per_client != 0 &&
        cs.box->size() >= st->sc.max_backlog_per_client) {
      st->drop(next);
      continue;
    }
    st->arrive(next);
    cs.box->put(OpenArrival{next, idx});
  }
  for (std::size_t c = 0; c < st->sc.channels_per_client; ++c) {
    cs.box->put(OpenArrival{-1, 0});  // one sentinel per sender
  }
}

// Open-loop sender: drains the client's arrival queue over one channel.
// Latency runs from the scheduled arrival, so time spent waiting in the
// queue — the time a coordinated generator would omit — is charged.
sim::Task<> open_sender(lynx::ThreadCtx& ctx, Runner::Impl* st,
                        std::size_t client_idx, lynx::LinkHandle link) {
  auto& cs = st->cstate[client_idx];
  for (;;) {
    OpenArrival a = co_await cs.box->get();
    if (a.scheduled < 0) co_return;
    const SizePoint sz = st->sc.mix[a.size_idx];
    try {
      (void)co_await ctx.call(link, make_request(sz));
      st->complete(a.scheduled, ctx.engine().now());
    } catch (const lynx::LynxError&) {
      st->note_error(a.scheduled);
      co_return;
    }
  }
}

}  // namespace

Runner::Runner(Substrate substrate, Scenario scenario)
    : impl_(std::make_unique<Impl>(substrate, std::move(scenario))) {
  RELYNX_ASSERT(!impl_->sc.mix.empty());
  RELYNX_ASSERT(impl_->sc.measure > 0);
}

Runner::~Runner() = default;

sim::Engine& Runner::engine() { return impl_->fleet.engine(); }

Report Runner::run() {
  auto& st = *impl_;
  RELYNX_ASSERT_MSG(!st.ran, "Runner::run is single-shot");
  st.ran = true;
  auto& eng = st.fleet.engine();

  const sim::Time t0 = eng.now();
  st.win.start = t0;
  st.win.meas_start = t0 + st.sc.warmup;
  st.win.meas_end = st.win.meas_start + st.sc.measure;
  st.win.hard_end = st.win.meas_end + st.sc.drain;
  st.win.stall_at = t0 + st.sc.stall_at;

  eng.schedule_at(st.win.meas_start, [&st] {
    st.backlog_start = st.in_flight;
    st.wire_ops_start = st.fleet.wire_ops();
  });
  eng.schedule_at(st.win.meas_end, [&st] {
    st.backlog_end = st.in_flight;
    st.wire_ops_end = st.fleet.wire_ops();
  });

  for (std::size_t s = 0; s < st.fleet.servers(); ++s) {
    const auto& fwd = st.fleet.forward_links(s);
    for (std::size_t w = 0; w < st.sc.server_threads; ++w) {
      const lynx::LinkHandle f =
          w < fwd.size() ? fwd[w] : lynx::LinkHandle();
      st.fleet.server(s).spawn_thread(
          "worker" + std::to_string(w), [&st, s, f](lynx::ThreadCtx& ctx) {
            return server_worker(ctx, &st, s, st.fleet.server_inbound(s), f);
          });
    }
  }

  // Per-client streams are forked from the master seed in index order,
  // so the whole run is a pure function of (substrate, scenario).
  sim::Rng master(st.sc.seed);
  st.cstate.resize(st.sc.clients);
  for (std::size_t i = 0; i < st.sc.clients; ++i) {
    auto& cs = st.cstate[i];
    const auto& channels = st.fleet.client_channels(i);
    if (st.sc.arrival == Arrival::kClosed) {
      for (lynx::LinkHandle ch : channels) {
        const sim::Rng rng = master.fork();
        st.fleet.client(i).spawn_thread(
            "gen", [&st, ch, rng](lynx::ThreadCtx& ctx) {
              return closed_client(ctx, &st, ch, rng);
            });
      }
    } else {
      cs.rng = master.fork();
      cs.box = std::make_unique<sim::Mailbox<OpenArrival>>(eng);
      for (lynx::LinkHandle ch : channels) {
        st.fleet.client(i).spawn_thread(
            "send", [&st, i, ch](lynx::ThreadCtx& ctx) {
              return open_sender(ctx, &st, i, ch);
            });
      }
      eng.spawn("dispatch", open_dispatcher(&eng, &st, i));
    }
  }

  (void)eng.run_until(st.win.hard_end);

  Report r;
  r.backend = to_string(st.fleet.substrate());
  r.scenario = st.sc.name;
  r.offered_rate =
      st.sc.arrival == Arrival::kClosed ? 0.0 : st.sc.offered_rate;
  r.scheduled = st.scheduled;
  r.completed = st.completed;
  r.dropped = st.dropped;
  std::int64_t failures =
      static_cast<std::int64_t>(eng.process_failures().size());
  for (std::size_t s = 0; s < st.fleet.servers(); ++s) {
    failures +=
        static_cast<std::int64_t>(st.fleet.server(s).thread_failures().size());
  }
  for (std::size_t i = 0; i < st.fleet.clients(); ++i) {
    failures +=
        static_cast<std::int64_t>(st.fleet.client(i).thread_failures().size());
  }
  r.errors = st.op_errors + failures;
  r.samples = st.latency_ms.summary().count();
  r.throughput = static_cast<double>(st.completed) /
                 (static_cast<double>(st.sc.measure) / 1e9);
  r.mean_ms = st.latency_ms.summary().mean();
  r.p50_ms = st.latency_ms.quantile(0.5);
  r.p99_ms = st.latency_ms.quantile(0.99);
  r.max_ms = st.latency_ms.summary().max();
  r.backlog_start = st.backlog_start;
  r.backlog_end = st.backlog_end;
  r.backlog_peak = st.backlog_peak;
  r.backlog_capped = st.capped;
  r.sim_end_ms = sim::to_msec(eng.now());
  r.wire_ops = static_cast<std::int64_t>(st.wire_ops_end - st.wire_ops_start);
  r.frames_per_op = st.completed > 0 ? static_cast<double>(r.wire_ops) /
                                           static_cast<double>(st.completed)
                                     : 0.0;
  return r;
}

Report run_scenario(Substrate substrate, Scenario scenario) {
  Runner runner(substrate, std::move(scenario));
  return runner.run();
}

}  // namespace load
