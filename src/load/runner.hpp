// Runs one Scenario against one substrate and measures it.
//
// The Runner owns the Fleet, spawns the server workers and the chosen
// generator (scenario.hpp), runs the engine to the scenario's hard end
// (warmup + measure + drain), and distills a Report.  Latency lands in
// a sim::Histogram, so the per-RPC recording cost is O(1) and the
// quoted p50/p99 are within the histogram's ~1.6% bucket resolution.
//
// Everything is deterministic: the same (substrate, Scenario) produces
// a bit-identical Report and engine clock, which the determinism suite
// (tests/fault/trace_determinism_test.cpp) locks in under tracing.
#pragma once

#include <memory>

#include "load/fleet.hpp"
#include "load/report.hpp"
#include "load/scenario.hpp"

namespace load {

class Runner {
 public:
  Runner(Substrate substrate, Scenario scenario);
  Runner(const Runner&) = delete;
  Runner& operator=(const Runner&) = delete;
  ~Runner();

  // Exposed so callers can attach a trace::Recorder before run().
  [[nodiscard]] sim::Engine& engine();

  // Single-shot: drives the whole scenario and reports on it.
  [[nodiscard]] Report run();

  // Implementation state, defined in runner.cpp; public so the file's
  // generator coroutines (free functions, per CP.51) can reach it.
  struct Impl;

 private:
  std::unique_ptr<Impl> impl_;
};

// Convenience: construct, run, report.
[[nodiscard]] Report run_scenario(Substrate substrate, Scenario scenario);

}  // namespace load
