// Workload scenarios (ROADMAP: "serves heavy traffic").
//
// A Scenario is a pure description of offered load: topology, arrival
// process, message-size mix, and measurement windows.  It deliberately
// names no kernel — the same Scenario runs unchanged against Charlotte,
// SODA, and Chrysalis (load::Runner picks the substrate), which is what
// turns the paper's single-RPC latency tables into comparable
// throughput–latency curves per kernel.
//
// Two generator families, per the standard load-testing taxonomy:
//
//   * closed loop — `clients` threads issue a call, wait for the reply,
//     optionally think, and repeat.  Offered load is a *consequence* of
//     service time: a slow server quietly slows the generator down too.
//   * open loop — arrivals are scheduled at `offered_rate` regardless of
//     replies (deterministic gaps or Poisson via sim::Rng).  Latency is
//     accounted from the *scheduled* arrival, so time a request spends
//     queued behind a slow server counts against it.  This is the
//     coordinated-omission-correct generator; the closed loop is kept
//     both as a workload in its own right and as the control that shows
//     what omission hides (tests/load/omission_test.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace load {

enum class Arrival : std::uint8_t {
  kClosed = 0,             // call → reply → think → repeat
  kOpenDeterministic = 1,  // fixed inter-arrival gap at offered_rate
  kOpenPoisson = 2,        // exponential gaps with mean 1/offered_rate
};

enum class Topology : std::uint8_t {
  kFanIn = 0,     // N clients × M servers, client i served by i mod M
  kPipeline = 1,  // clients → stage 0 → … → stage M-1, reply unwinds back
};

[[nodiscard]] const char* to_string(Arrival a);
[[nodiscard]] const char* to_string(Topology t);

// One point of the request/reply size mix, drawn by weight.
struct SizePoint {
  std::size_t request_bytes = 64;
  std::size_t reply_bytes = 64;
  double weight = 1.0;
};

struct Scenario {
  std::string name = "fan-in";
  Topology topology = Topology::kFanIn;
  std::size_t clients = 4;
  std::size_t servers = 1;  // fan-in: server processes; pipeline: stages
  std::size_t server_threads = 1;   // worker threads per server process
  std::size_t channels_per_client = 1;  // links from each client

  Arrival arrival = Arrival::kClosed;
  double offered_rate = 100.0;  // open loop: total requests/s, all clients
  sim::Duration think = 0;      // closed loop: pause between calls

  // vector(1) rather than an initializer list: gcc 12's
  // -Wmaybe-uninitialized misfires on the list's backing array at -O3.
  std::vector<SizePoint> mix = std::vector<SizePoint>(1);

  // Measurement windows, all relative to the run start: arrivals begin
  // immediately, only requests *scheduled* inside [warmup, warmup +
  // measure) are recorded, and the run is cut off `drain` after the
  // measure window so late replies can land.
  sim::Duration warmup = sim::msec(500);
  sim::Duration measure = sim::sec(2);
  sim::Duration drain = sim::sec(2);

  std::uint64_t seed = 1;

  // RPC formation (src/form/, DESIGN.md §14): co-destined kernel frames
  // posted within form_delay of each other share one wire frame of up
  // to form_max_bytes.  0 = frame-per-message (the default).  On
  // Chrysalis — which has no wire — the same knobs drive dual-queue
  // notice batching (form_max_bytes / 16 notices per batch).
  sim::Duration form_delay = 0;
  std::size_t form_max_bytes = 1024;

  // Open loop: drop arrivals once a client's pending queue reaches this
  // depth (0 = unbounded).  A capped run is by definition not
  // sustaining its offered rate; the Report records the drops.
  std::size_t max_backlog_per_client = 4096;

  // Fault hook for the omission regression: server 0's next receive at
  // or after `stall_at` (relative to run start) pauses for `stall_for`
  // before serving.  stall_for == 0 disables.
  sim::Duration stall_at = 0;
  sim::Duration stall_for = 0;
};

inline const char* to_string(Arrival a) {
  switch (a) {
    case Arrival::kClosed: return "closed";
    case Arrival::kOpenDeterministic: return "open-det";
    case Arrival::kOpenPoisson: return "open-poisson";
  }
  return "?";
}

inline const char* to_string(Topology t) {
  switch (t) {
    case Topology::kFanIn: return "fan-in";
    case Topology::kPipeline: return "pipeline";
  }
  return "?";
}

}  // namespace load
