// The Backend interface: what the LYNX run-time package asks of an
// operating system.
//
// This interface is the paper's subject.  Everything above it (threads,
// request/reply queues, block points, fairness, type checking) is shared
// across the three implementations; everything below it (link
// representation, message screening, moving ends) differs per kernel —
// and the *cost* of bridging the gap is what the experiments measure.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/strong_id.hpp"
#include "lynx/message.hpp"
#include "sim/task.hpp"

namespace lynx {

struct BLinkTag {
  static const char* prefix() { return "bl"; }
};
// Backend-scoped token for a link end owned by this process.
using BLink = common::StrongId<BLinkTag>;

enum class MsgKind : std::uint8_t { kRequest, kReply };

struct WireMessage {
  MsgKind kind = MsgKind::kRequest;
  Bytes body;
  std::vector<BLink> enclosures;
  // Causal identity threaded from the runtime into the kernel frames
  // (trace::TraceId; 0 = untraced).
  std::uint64_t trace_id = 0;
};

enum class SendResult : std::uint8_t {
  kDelivered,
  kCancelled,       // cancel won the race; enclosures recovered (maybe)
  kLinkDestroyed,   // peer gone / link destroyed
  kReplyUnwanted,   // reply sent to an aborted caller (SODA/Chrysalis
                    // backends can detect this; Charlotte cannot)
};

struct SendOutcome {
  SendResult result = SendResult::kDelivered;
  // Charlotte deviation (§3.2.2): enclosures of an aborted/failed
  // message may be unrecoverable.
  std::vector<BLink> lost_enclosures;
};

// A send in flight.  The runtime awaits it in the sending thread and may
// cancel it from an abort path.
class PendingSend {
 public:
  virtual ~PendingSend() = default;
  [[nodiscard]] virtual sim::Task<SendOutcome> wait() = 0;
  virtual void cancel() = 0;
};

struct BackendEvent {
  enum class Kind : std::uint8_t {
    kRequestArrived,
    kReplyArrived,
    kLinkDestroyed,
  };
  Kind kind = Kind::kRequestArrived;
  BLink link;
  Bytes body;
  std::vector<BLink> enclosures;  // receiver-side tokens of moved ends
  // TraceId recovered from the arriving message (0 = untraced), so the
  // receiving runtime continues the sender's causal chain.
  std::uint64_t trace = 0;
};

// Paper §6: the four capabilities that distinguish the primitive-kernel
// backends from the Charlotte backend (experiment E8).
struct Capabilities {
  bool moves_multiple_links_in_one_message = false;  // (1)
  bool all_received_messages_wanted = false;         // (2)
  bool recovers_enclosures_on_abort = false;         // (3)
  bool detects_all_exceptions = false;               // (4)
};

class Backend {
 public:
  using Sink = std::function<void(BackendEvent)>;

  virtual ~Backend() = default;

  [[nodiscard]] virtual std::string kernel_name() const = 0;
  [[nodiscard]] virtual Capabilities capabilities() const = 0;

  // Installs the event sink and starts internal pumps.
  virtual void start(Sink sink) = 0;
  // Destroys every link still attached (normal exit and crash alike).
  virtual void shutdown() = 0;

  // Creates a link with both ends owned by this process.
  [[nodiscard]] virtual sim::Task<std::pair<BLink, BLink>> make_link() = 0;

  // Begins transmission of a request or reply.  The runtime guarantees
  // at most one send in flight per link end.
  [[nodiscard]] virtual std::unique_ptr<PendingSend> begin_send(
      BLink link, WireMessage msg) = 0;

  // Screening interest: want_requests mirrors the open/closed request
  // queue; want_replies is true while some thread awaits a reply.
  virtual void set_interest(BLink link, bool want_requests,
                            bool want_replies) = 0;

  // The thread awaiting a reply on `link` was aborted; the backend may
  // be able to tell the server (capability 4).
  virtual void retract_reply_interest(BLink link) = 0;

  // Destroys one end (and so the link).
  [[nodiscard]] virtual sim::Task<void> destroy(BLink link) = 0;

  // Instrumentation for the experiments: kernel-level messages/frames
  // attributable to this backend since start.
  [[nodiscard]] virtual std::uint64_t protocol_messages() const = 0;

  // The simulated node this backend's process lives on, for trace
  // records (one Perfetto track group per node).
  [[nodiscard]] virtual std::uint32_t trace_node() const { return 0; }
};

}  // namespace lynx
