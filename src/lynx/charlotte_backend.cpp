#include "lynx/charlotte_backend.hpp"

#include <algorithm>

#include "trace/trace.hpp"

namespace lynx {

namespace {

constexpr std::size_t kMaxReceive = 64 * 1024;

// Trace labels for the backend's own packet protocol (indexed by PType).
const char* ptype_label(std::uint8_t p) {
  switch (p) {
    case 0: return "pkt.request";
    case 1: return "pkt.reply";
    case 2: return "pkt.retry";
    case 3: return "pkt.forbid";
    case 4: return "pkt.allow";
    case 5: return "pkt.goahead";
    case 6: return "pkt.enc";
  }
  return "pkt.?";
}

// Both statuses end the link from the runtime's point of view; kLinkFailed
// is the kernel's absolute transport-failure notice (crashed peer, severed
// ring) rather than a deliberate Destroy, but LYNX reacts identically.
bool link_gone(charlotte::Status st) {
  return st == charlotte::Status::kLinkDestroyed ||
         st == charlotte::Status::kLinkFailed;
}

}  // namespace

// A Charlotte send in flight at the LYNX level.
class CharlottePendingSend final : public PendingSend {
 public:
  CharlottePendingSend(CharlotteBackend& backend, std::uint64_t out_id,
                       sim::Engine& engine)
      : backend_(&backend), out_id_(out_id), done_(engine) {}

  sim::Task<SendOutcome> wait() override {
    SendOutcome out = co_await done_.take();
    co_return out;
  }

  void cancel() override {
    if (settled_) return;
    backend_->request_cancel(out_id_);
  }

  void settle(SendOutcome out) {
    if (settled_) return;
    settled_ = true;
    done_.fulfill(std::move(out));
  }

 private:
  friend class CharlotteBackend;
  CharlotteBackend* backend_;
  std::uint64_t out_id_;
  sim::OneShot<SendOutcome> done_;
  bool settled_ = false;
};

// ===================== setup =====================

CharlotteBackend::CharlotteBackend(charlotte::Cluster& cluster,
                                   net::NodeId node)
    : cluster_(&cluster),
      node_(node),
      pid_(cluster.create_process(node)),
      drained_(cluster.engine()) {}

CharlotteBackend::~CharlotteBackend() = default;

void CharlotteBackend::start(Sink sink) {
  RELYNX_ASSERT_MSG(!running_, "backend started twice");
  sink_ = std::move(sink);
  running_ = true;
  cluster_->engine().spawn("charlotte-pump", pump());
}

CharlotteBackend::CLink* CharlotteBackend::find(BLink token) {
  auto it = links_.find(token);
  return it == links_.end() ? nullptr : &it->second;
}

CharlotteBackend::CLink* CharlotteBackend::find_by_end(charlotte::EndId end) {
  auto it = by_end_.find(end);
  return it == by_end_.end() ? nullptr : find(it->second);
}

BLink CharlotteBackend::adopt_end(charlotte::EndId end) {
  const BLink token = blink_ids_.next();
  CLink link;
  link.token = token;
  link.end = end;
  links_.emplace(token, std::move(link));
  by_end_.emplace(end, token);
  return token;
}

sim::Task<std::pair<BLink, BLink>> CharlotteBackend::make_link() {
  auto result = co_await cluster_->kernel(node_).make_link(pid_);
  RELYNX_ASSERT_MSG(result.ok(), "MakeLink failed");
  co_return std::pair(adopt_end(result.value().end1),
                      adopt_end(result.value().end2));
}

// ===================== wire format =====================
//
// payload: [0] ptype, [1] total enclosures of the LYNX message,
//          [2..] serialized body (Request/Reply first packets only).

namespace {

Bytes encode_packet(std::uint8_t ptype, std::uint8_t enc_total,
                    const Bytes& body) {
  Bytes out;
  out.reserve(2 + body.size());
  out.push_back(ptype);
  out.push_back(enc_total);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

}  // namespace

// ===================== sending =====================

std::unique_ptr<PendingSend> CharlotteBackend::begin_send(BLink token,
                                                          WireMessage msg) {
  const std::uint64_t id = next_out_id_++;
  auto ps = std::make_unique<CharlottePendingSend>(*this, id,
                                                   cluster_->engine());
  OutMsg out;
  out.id = id;
  out.link = token;
  out.kind = msg.kind;
  out.body = std::move(msg.body);
  out.ps = ps.get();
  out.trace = msg.trace_id;
  for (BLink e : msg.enclosures) {
    CLink* enc = find(e);
    RELYNX_ASSERT_MSG(enc != nullptr, "unknown enclosure token");
    out.enclosure_ends.push_back(enc->end);
    out.enclosure_blinks.push_back(e);
  }
  CLink* link = find(token);
  if (link == nullptr || link->destroyed) {
    ps->settle(SendOutcome{SendResult::kLinkDestroyed, {}});
    return ps;
  }
  out_msgs_.emplace(id, std::move(out));
  link->out_queue.push_back(id);
  start_next_out(*link);
  return ps;
}

void CharlotteBackend::start_next_out(CLink& link) {
  if (link.active_out != 0 || link.destroyed) return;
  // FORBID blocks requests but not replies.
  for (auto it = link.out_queue.begin(); it != link.out_queue.end(); ++it) {
    OutMsg& out = out_msgs_.at(*it);
    if (out.kind == MsgKind::kRequest && link.forbidden) continue;
    link.active_out = *it;
    link.out_queue.erase(it);
    break;
  }
  if (link.active_out == 0) return;
  OutMsg& out = out_msgs_.at(link.active_out);
  out.next_enclosure = 0;
  out.awaiting_goahead = false;
  const auto total = static_cast<std::uint8_t>(out.enclosure_ends.size());
  KSend ks;
  ks.ptype = out.kind == MsgKind::kRequest ? PType::kRequest : PType::kReply;
  ks.payload = encode_packet(static_cast<std::uint8_t>(ks.ptype), total,
                             out.body);
  ks.out_id = out.id;
  ks.trace = out.trace;
  if (total >= 1) {
    ks.enclosure = out.enclosure_ends[0];
    out.next_enclosure = 1;
  }
  if (out.kind == MsgKind::kRequest) {
    ++stats_.requests_sent;
  } else {
    ++stats_.replies_sent;
  }
  queue_ksend(link, std::move(ks));
}

void CharlotteBackend::queue_ksend(CLink& link, KSend ks) {
  if (auto* rec = trace::get(cluster_->engine())) {
    rec->instant(node_.value(), "backend",
                 ptype_label(static_cast<std::uint8_t>(ks.ptype)), ks.trace,
                 ks.out_id, ks.payload.size());
  }
  link.ksend_queue.push_back(std::move(ks));
  if (!link.kernel_send_busy) {
    cluster_->engine().spawn("charlotte-ksend", run_ksend(link.token));
  }
}

sim::Task<> CharlotteBackend::run_ksend(BLink token) {
  CLink* link = find(token);
  if (link == nullptr || link->kernel_send_busy || link->ksend_queue.empty()) {
    co_return;
  }
  link->kernel_send_busy = true;
  const KSend& ks = link->ksend_queue.front();
  const std::uint64_t sent_out_id = ks.out_id;
  const PType sent_ptype = ks.ptype;
  ++packets_sent_;
  ++stats_.packets_sent;
  charlotte::Status st = co_await cluster_->kernel(node_).send(
      pid_, link->end, ks.payload, ks.enclosure, ks.trace);
  if (st == charlotte::Status::kOk) {
    // Fast path (ack protocol v2): a single-packet reply is "delivered"
    // from LYNX's point of view the moment the kernel accepts it.  The
    // paper already rules out telling a server about its reply's fate —
    // a caller that aborted is never reported (§3.2, deviation two), and
    // a top-level ack for replies would cost +50% traffic — so waiting
    // for the kernel-level MsgAck bought no semantics; it only kept the
    // server thread blocked for the ack round trip.  Requests (their
    // RETRY/FORBID screening needs the ack to sequence last_request) and
    // enclosure-bearing packets (the handoff must commit) still wait.
    if (sent_ptype == PType::kReply && sent_out_id != 0) {
      link = find(token);
      if (link != nullptr && !link->destroyed && link->kernel_send_busy &&
          !link->ksend_queue.empty() &&
          link->ksend_queue.front().out_id == sent_out_id) {
        auto it = out_msgs_.find(sent_out_id);
        if (it != out_msgs_.end() && it->second.kind == MsgKind::kReply &&
            it->second.enclosure_ends.empty()) {
          resolve(it->second, SendOutcome{SendResult::kDelivered, {}});
        }
      }
    }
    co_return;  // kernel completion (and bookkeeping) still via Wait
  }
  // Immediate rejection.
  link = find(token);
  if (link == nullptr) co_return;
  link->kernel_send_busy = false;
  if (!link->ksend_queue.empty()) link->ksend_queue.pop_front();
  if (link_gone(st)) {
    fail_link(*link);
  } else if (!link->ksend_queue.empty()) {
    cluster_->engine().spawn("charlotte-ksend", run_ksend(token));
  }
  note_drain_progress();
}

// ===================== pump & dispatch =====================

sim::Task<> CharlotteBackend::pump() {
  for (;;) {
    if (!running_ && !draining_) break;
    charlotte::Completion c = co_await cluster_->kernel(node_).wait(pid_);
    if (!running_ && !draining_) break;
    if (!c.end.valid()) break;  // shutdown poison
    if (c.direction == charlotte::Direction::kSend) {
      dispatch_send_done(c);
    } else {
      dispatch_receive(c);
    }
    note_drain_progress();
  }
}

void CharlotteBackend::resolve(OutMsg& out, SendOutcome outcome) {
  if (out.ps != nullptr) {
    out.ps->settle(std::move(outcome));
    out.ps = nullptr;
  }
}

void CharlotteBackend::dispatch_send_done(const charlotte::Completion& c) {
  CLink* link = find_by_end(c.end);
  if (link == nullptr) return;
  RELYNX_ASSERT(!link->ksend_queue.empty());
  KSend ks = std::move(link->ksend_queue.front());
  link->ksend_queue.pop_front();
  link->kernel_send_busy = false;

  if (link_gone(c.status)) {
    fail_link(*link);
    return;
  }
  if (c.status == charlotte::Status::kCancelled) {
    // Our kernel Cancel won the race: the enclosure never moved.
    if (ks.out_id != 0) {
      auto it = out_msgs_.find(ks.out_id);
      if (it != out_msgs_.end()) {
        resolve(it->second, SendOutcome{SendResult::kCancelled, {}});
        if (link->active_out == ks.out_id) link->active_out = 0;
        out_msgs_.erase(it);
      }
    }
    start_next_out(*link);
    drain(*link);
    return;
  }
  RELYNX_ASSERT(c.status == charlotte::Status::kOk);

  if (ks.out_id != 0) {
    auto it = out_msgs_.find(ks.out_id);
    if (it != out_msgs_.end()) {
      OutMsg& out = it->second;
      const auto total = static_cast<int>(out.enclosure_ends.size());
      const bool multi = total >= 2;
      if (ks.ptype == PType::kRequest && multi) {
        // figure 2: wait for GOAHEAD before streaming more enclosures
        out.awaiting_goahead = true;
        update_receive_posting(*link);
      } else if (out.next_enclosure < total) {
        // reply multi-enclosure, or post-goahead stream: next ENC packet
        KSend enc;
        enc.ptype = PType::kEnc;
        enc.payload = encode_packet(static_cast<std::uint8_t>(PType::kEnc),
                                    static_cast<std::uint8_t>(total), {});
        enc.enclosure = out.enclosure_ends[
            static_cast<std::size_t>(out.next_enclosure)];
        enc.out_id = out.id;
        enc.trace = out.trace;
        ++out.next_enclosure;
        ++stats_.enc_packets_sent;
        queue_ksend(*link, std::move(enc));
      } else {
        // message fully shipped
        resolve(out, SendOutcome{SendResult::kDelivered, {}});
        if (out.kind == MsgKind::kReply) {
          out_msgs_.erase(it);
        } else {
          link->last_request = out.id;  // may bounce via RETRY/FORBID
        }
        link->active_out = 0;
        start_next_out(*link);
      }
    }
  }
  drain(*link);
}

void CharlotteBackend::drain(CLink& link) {
  if (!link.kernel_send_busy && !link.ksend_queue.empty()) {
    cluster_->engine().spawn("charlotte-ksend", run_ksend(link.token));
  }
}

void CharlotteBackend::dispatch_receive(const charlotte::Completion& c) {
  CLink* link = find_by_end(c.end);
  if (link == nullptr) return;
  if (link_gone(c.status)) {
    link->recv_posted = false;
    fail_link(*link);
    return;
  }
  if (c.status != charlotte::Status::kOk) return;
  link->recv_posted = false;
  RELYNX_ASSERT_MSG(c.data.size() >= 2, "short Charlotte packet");
  const auto ptype = static_cast<PType>(c.data[0]);
  const std::uint8_t enc_total = c.data[1];
  Bytes body(c.data.begin() + 2, c.data.end());
  on_incoming(*link, ptype, enc_total, std::move(body), c.enclosure, c.trace);
  if (CLink* again = find(link->token)) {
    update_receive_posting(*again);
  }
}

void CharlotteBackend::on_incoming(CLink& link, PType ptype,
                                   std::uint8_t enc_total, Bytes body,
                                   charlotte::EndId enclosure,
                                   std::uint64_t trace) {
  switch (ptype) {
    case PType::kRequest: {
      if (!link.want_requests) {
        // ---- unwanted message (paper §3.2.1) ----
        ++stats_.unwanted_received;
        KSend back;
        if (link.want_replies || link.assembly.has_value()) {
          // We must keep a Receive posted (a reply/goahead is coming),
          // so the kernel cannot delay retransmissions for us: FORBID.
          back.ptype = PType::kForbid;
          back.payload = encode_packet(
              static_cast<std::uint8_t>(PType::kForbid), 0, {});
          link.forbade_peer = true;
          ++stats_.forbids_sent;
        } else {
          back.ptype = PType::kRetry;
          back.payload = encode_packet(
              static_cast<std::uint8_t>(PType::kRetry), 0, {});
          ++stats_.retries_sent;
        }
        back.enclosure = enclosure;  // return the moved end
        back.trace = trace;          // bounce keeps the request's identity
        queue_ksend(link, std::move(back));
        return;
      }
      if (enc_total >= 2) {
        Assembly a;
        a.kind = MsgKind::kRequest;
        a.body = std::move(body);
        a.expected = enc_total;
        a.trace = trace;
        if (enclosure.valid()) a.enclosures.push_back(adopt_end(enclosure));
        link.assembly = std::move(a);
        KSend go;
        go.ptype = PType::kGoahead;
        go.payload =
            encode_packet(static_cast<std::uint8_t>(PType::kGoahead), 0, {});
        go.trace = trace;
        ++stats_.goaheads_sent;
        queue_ksend(link, std::move(go));
        return;
      }
      std::vector<BLink> encl;
      if (enclosure.valid()) encl.push_back(adopt_end(enclosure));
      deliver(link, MsgKind::kRequest, std::move(body), std::move(encl),
              trace);
      return;
    }
    case PType::kReply: {
      if (enc_total >= 2) {
        Assembly a;
        a.kind = MsgKind::kReply;
        a.body = std::move(body);
        a.expected = enc_total;
        a.trace = trace;
        if (enclosure.valid()) a.enclosures.push_back(adopt_end(enclosure));
        link.assembly = std::move(a);
        return;  // ENC packets follow, no goahead needed
      }
      std::vector<BLink> encl;
      if (enclosure.valid()) encl.push_back(adopt_end(enclosure));
      deliver(link, MsgKind::kReply, std::move(body), std::move(encl), trace);
      return;
    }
    case PType::kEnc: {
      if (!link.assembly.has_value()) return;  // stray
      if (enclosure.valid()) {
        link.assembly->enclosures.push_back(adopt_end(enclosure));
      }
      if (static_cast<int>(link.assembly->enclosures.size()) >=
          link.assembly->expected) {
        Assembly done = std::move(*link.assembly);
        link.assembly.reset();
        deliver(link, done.kind, std::move(done.body),
                std::move(done.enclosures), done.trace);
      }
      return;
    }
    case PType::kGoahead: {
      if (link.active_out == 0) return;
      auto it = out_msgs_.find(link.active_out);
      if (it == out_msgs_.end() || !it->second.awaiting_goahead) return;
      OutMsg& out = it->second;
      out.awaiting_goahead = false;
      const auto total = static_cast<int>(out.enclosure_ends.size());
      if (out.next_enclosure < total) {
        KSend enc;
        enc.ptype = PType::kEnc;
        enc.payload = encode_packet(static_cast<std::uint8_t>(PType::kEnc),
                                    static_cast<std::uint8_t>(total), {});
        enc.enclosure = out.enclosure_ends[
            static_cast<std::size_t>(out.next_enclosure)];
        enc.out_id = out.id;
        enc.trace = out.trace;
        ++out.next_enclosure;
        ++stats_.enc_packets_sent;
        queue_ksend(link, std::move(enc));
      }
      return;
    }
    case PType::kRetry:
    case PType::kForbid: {
      // One of our requests bounced; the enclosure (if any) came home.
      ++stats_.requests_returned;
      if (ptype == PType::kForbid) link.forbidden = true;
      if (link.last_request != 0) {
        auto it = out_msgs_.find(link.last_request);
        if (it != out_msgs_.end()) {
          OutMsg& out = it->second;
          if (out.cancel_requested) {
            // The sending coroutine aborted after the kernel delivered
            // the packet: the request dies here, and the returned
            // enclosure has no owner any more — it is lost (§3.2.2).
            if (enclosure.valid() || !out.enclosure_ends.empty()) {
              ++stats_.enclosures_lost;
            }
            out_msgs_.erase(it);
            link.last_request = 0;
            start_next_out(link);
            return;
          }
          out.next_enclosure = 0;
          out.awaiting_goahead = false;
          if (ptype == PType::kForbid) {
            link.deferred_requests.push_back(out.id);
          } else {
            // RETRY: resend at once; the peer has no Receive posted, so
            // the kernel will delay it until the queue reopens.
            link.out_queue.push_front(out.id);
          }
          link.last_request = 0;
        }
      } else if (enclosure.valid()) {
        // A bounce for a request we no longer track (cancelled and
        // raced): the returned end is stranded — the §3.2.2 loss.
        ++stats_.enclosures_lost;
      }
      start_next_out(link);
      return;
    }
    case PType::kAllow: {
      link.forbidden = false;
      while (!link.deferred_requests.empty()) {
        link.out_queue.push_front(link.deferred_requests.back());
        link.deferred_requests.pop_back();
      }
      start_next_out(link);
      return;
    }
  }
}

void CharlotteBackend::deliver(CLink& link, MsgKind kind, Bytes body,
                               std::vector<BLink> enclosures,
                               std::uint64_t trace) {
  // Delivering a request ends any pending retry/forbid consideration on
  // the pairing: a reply delivered on this link also retires the
  // bounce-tracking for our last request (it was evidently accepted).
  if (kind == MsgKind::kReply && link.last_request != 0) {
    out_msgs_.erase(link.last_request);
    link.last_request = 0;
  }
  BackendEvent ev;
  ev.kind = kind == MsgKind::kRequest ? BackendEvent::Kind::kRequestArrived
                                      : BackendEvent::Kind::kReplyArrived;
  ev.link = link.token;
  ev.body = std::move(body);
  ev.enclosures = std::move(enclosures);
  ev.trace = trace;
  if (sink_) sink_(ev);
}

// ===================== receive posting & screening =====================

void CharlotteBackend::update_receive_posting(CLink& link) {
  if (link.destroyed) return;
  bool awaiting_goahead = false;
  if (link.active_out != 0) {
    auto it = out_msgs_.find(link.active_out);
    awaiting_goahead =
        it != out_msgs_.end() && it->second.awaiting_goahead;
  }
  const bool need = link.want_requests || link.want_replies ||
                    link.forbidden || awaiting_goahead ||
                    link.assembly.has_value();
  if (need && !link.recv_posted) {
    link.recv_posted = true;
    cluster_->engine().spawn("charlotte-recv", post_receive(link.token));
  } else if (!need && link.recv_posted) {
    cluster_->engine().spawn("charlotte-cancel-recv",
                             cancel_receive(link.token));
  }
  maybe_send_allow(link);
}

sim::Task<> CharlotteBackend::post_receive(BLink token) {
  CLink* link = find(token);
  if (link == nullptr || link->destroyed) co_return;
  charlotte::Status st = co_await cluster_->kernel(node_).receive(
      pid_, link->end, kMaxReceive);
  link = find(token);
  if (link == nullptr) co_return;
  if (link_gone(st)) {
    link->recv_posted = false;
    fail_link(*link);
  } else if (st != charlotte::Status::kOk &&
             st != charlotte::Status::kActivityPending) {
    link->recv_posted = false;
  }
}

sim::Task<> CharlotteBackend::cancel_receive(BLink token) {
  CLink* link = find(token);
  if (link == nullptr || link->destroyed || !link->recv_posted) co_return;
  charlotte::Status st = co_await cluster_->kernel(node_).cancel(
      pid_, link->end, charlotte::Direction::kReceive);
  link = find(token);
  if (link == nullptr) co_return;
  if (st == charlotte::Status::kOk) {
    link->recv_posted = false;
    // Interest may have changed while the Cancel was in flight (e.g.
    // the request queue reopened): re-evaluate, which also sends any
    // owed ALLOW.
    update_receive_posting(*link);
  }
  // kCancelTooLate: a message is already in; screening handles it.
}

void CharlotteBackend::maybe_send_allow(CLink& link) {
  // paper: "sends an allow message as soon as it is either willing to
  // receive requests ... or has no Receive outstanding (so the kernel
  // will delay all messages)."
  if (!link.forbade_peer) return;
  if (link.want_requests || !link.recv_posted) {
    link.forbade_peer = false;
    KSend allow;
    allow.ptype = PType::kAllow;
    allow.payload =
        encode_packet(static_cast<std::uint8_t>(PType::kAllow), 0, {});
    ++stats_.allows_sent;
    queue_ksend(link, std::move(allow));
  }
}

void CharlotteBackend::set_interest(BLink token, bool want_requests,
                                    bool want_replies) {
  CLink* link = find(token);
  if (link == nullptr || link->destroyed) return;
  link->want_requests = want_requests;
  link->want_replies = want_replies;
  update_receive_posting(*link);
}

void CharlotteBackend::retract_reply_interest(BLink token) {
  // Charlotte cannot tell the server (that would need a top-level ack
  // for replies, +50% message traffic — paper §3.2.2).  The runtime
  // will silently discard the unwanted reply when it arrives.
  (void)token;
}

// ===================== cancel / destroy / shutdown =====================

void CharlotteBackend::request_cancel(std::uint64_t out_id) {
  auto it = out_msgs_.find(out_id);
  if (it == out_msgs_.end()) return;
  OutMsg& out = it->second;
  out.cancel_requested = true;
  CLink* link = find(out.link);
  if (link == nullptr) return;
  // Still queued (not yet at the kernel)?  Revoke locally: enclosures
  // are untouched.
  auto queued = std::find(link->out_queue.begin(), link->out_queue.end(),
                          out_id);
  if (queued != link->out_queue.end()) {
    link->out_queue.erase(queued);
    resolve(out, SendOutcome{SendResult::kCancelled, {}});
    out_msgs_.erase(it);
    return;
  }
  auto deferred = std::find(link->deferred_requests.begin(),
                            link->deferred_requests.end(), out_id);
  if (deferred != link->deferred_requests.end()) {
    link->deferred_requests.erase(deferred);
    resolve(out, SendOutcome{SendResult::kCancelled, {}});
    out_msgs_.erase(it);
    return;
  }
  if (link->active_out == out_id) {
    cluster_->engine().spawn("charlotte-cancel-send",
                             issue_cancel(out.link));
    return;
  }
  if (link->last_request == out_id) {
    // Already shipped and acknowledged: too late to revoke.  Mark it so
    // a later RETRY/FORBID bounce does not resurrect the aborted
    // request; any enclosure it carried comes back ownerless and is
    // LOST (the paper's §3.2.2 deviation).
    // (cancel_requested was set above.)
  }
}

sim::Task<> CharlotteBackend::issue_cancel(BLink token) {
  CLink* link = find(token);
  if (link == nullptr || link->destroyed) co_return;
  (void)co_await cluster_->kernel(node_).cancel(pid_, link->end,
                                                charlotte::Direction::kSend);
  // Outcome arrives as a kCancelled send completion if we won; if we
  // lost, the normal ACK resolves kDelivered and any enclosures are
  // gone with the message (the paper's loss window).
}

void CharlotteBackend::fail_link(CLink& link) {
  if (link.destroyed) return;
  link.destroyed = true;
  auto fail_out = [&](std::uint64_t id) {
    auto it = out_msgs_.find(id);
    if (it == out_msgs_.end()) return;
    stats_.enclosures_lost += it->second.enclosure_ends.empty() ? 0 : 1;
    resolve(it->second, SendOutcome{SendResult::kLinkDestroyed, {}});
    out_msgs_.erase(it);
  };
  if (link.active_out != 0) fail_out(link.active_out);
  link.active_out = 0;
  for (std::uint64_t id : link.out_queue) fail_out(id);
  link.out_queue.clear();
  for (std::uint64_t id : link.deferred_requests) fail_out(id);
  link.deferred_requests.clear();
  if (link.last_request != 0) {
    out_msgs_.erase(link.last_request);
    link.last_request = 0;
  }
  BackendEvent ev;
  ev.kind = BackendEvent::Kind::kLinkDestroyed;
  ev.link = link.token;
  if (sink_) sink_(ev);
}

sim::Task<void> CharlotteBackend::destroy(BLink token) {
  CLink* link = find(token);
  if (link == nullptr) co_return;
  const charlotte::EndId end = link->end;
  link->destroyed = true;
  by_end_.erase(end);
  links_.erase(token);
  (void)co_await cluster_->kernel(node_).destroy(pid_, end);
}

void CharlotteBackend::shutdown() {
  if (!running_) return;
  running_ = false;
  draining_ = true;
  cluster_->engine().spawn("charlotte-shutdown", perform_shutdown());
}

bool CharlotteBackend::has_unsettled_ksends() const {
  for (const auto& [token, link] : links_) {
    if (link.destroyed) continue;
    if (link.kernel_send_busy || !link.ksend_queue.empty()) return true;
  }
  return false;
}

void CharlotteBackend::note_drain_progress() {
  if (draining_ && !has_unsettled_ksends()) drained_.wake_all();
}

sim::Task<> CharlotteBackend::perform_shutdown() {
  // "Before terminating, each process destroys all of its links" (§2.1)
  // — but destruction must not outrun delivery.  With the v2 reply fast
  // path a server thread can exit while its final reply is still in a
  // kernel send (possibly mid-retransmission under loss); yanking the
  // links down at that instant would race the delivery the caller is
  // blocked on.  Drain accepted kernel sends first; the pump keeps
  // dispatching completions while draining_ is set.  If a send can
  // never settle (lossy medium, retransmission disabled) this parks
  // forever — exactly as the v1 thread blocked in reply() did.
  while (has_unsettled_ksends()) co_await drained_.wait();
  draining_ = false;
  // Process termination destroys all links (the kernel guarantees this
  // for real termination; we do it explicitly, then poison the pump).
  cluster_->terminate(pid_);
  // terminate_process dropped the completion mailbox, so the pump stays
  // parked forever; the engine reaps its frame at teardown.
  co_return;
}

// ===================== bootstrap =====================

sim::Task<std::pair<LinkHandle, LinkHandle>> CharlotteBackend::connect(
    Process& a, Process& b) {
  auto* ba = dynamic_cast<CharlotteBackend*>(&a.backend());
  auto* bb = dynamic_cast<CharlotteBackend*>(&b.backend());
  RELYNX_ASSERT_MSG(ba != nullptr && bb != nullptr,
                    "connect requires Charlotte backends");
  RELYNX_ASSERT_MSG(ba->cluster_ == bb->cluster_, "same Crystal required");
  charlotte::LinkPair pair =
      ba->cluster_->bootstrap_link(ba->pid_, bb->pid_);
  const BLink ta = ba->adopt_end(pair.end1);
  const BLink tb = bb->adopt_end(pair.end2);
  co_return std::pair(a.adopt_link(ta), b.adopt_link(tb));
}

std::unique_ptr<CharlotteBackend> make_charlotte_backend(
    charlotte::Cluster& cluster, net::NodeId node) {
  return std::make_unique<CharlotteBackend>(cluster, node);
}

}  // namespace lynx
