// The Charlotte backend (paper §3.2).
//
// Every LYNX link is a Charlotte link.  Because the kernel's screening
// facilities cannot distinguish requests from replies on the same link,
// and because a kernel Send can enclose at most ONE link end, the
// run-time package needs a whole protocol of its own on top of the
// kernel's messages:
//
//   REQUEST / REPLY  — ordinary traffic;
//   RETRY            — negative ack: unwanted request returned when the
//                      receiver can drop its kernel Receive (the kernel
//                      then delays retransmissions);
//   FORBID / ALLOW   — unwanted request returned when the receiver must
//                      keep a Receive posted (a reply is expected):
//                      FORBID denies the peer the right to send requests
//                      (replies stay legal) until ALLOW restores it;
//   GOAHEAD          — multi-enclosure requests send their first packet
//                      (data + first enclosure) and wait for GOAHEAD
//                      before streaming the rest, so an unwanted request
//                      doesn't strand n-1 enclosures;
//   ENC              — one additional enclosure per packet (figure 2).
//
// The backend reproduces the paper's two semantic deviations:
//   * enclosures in aborted messages can be lost (a cancel that loses
//     the race, combined with peer failure, strands the moved end);
//   * a server replying to an aborted caller is NOT told (no exception:
//     that would need a top-level ack for replies, +50% traffic).
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>

#include "charlotte/kernel.hpp"
#include "lynx/backend.hpp"
#include "lynx/runtime.hpp"

namespace lynx {

class CharlottePendingSend;

class CharlotteBackend final : public Backend {
 public:
  CharlotteBackend(charlotte::Cluster& cluster, net::NodeId node);
  ~CharlotteBackend() override;

  [[nodiscard]] std::string kernel_name() const override {
    return "charlotte";
  }
  [[nodiscard]] Capabilities capabilities() const override {
    return Capabilities{
        .moves_multiple_links_in_one_message = false,  // packetized
        .all_received_messages_wanted = false,         // retry/forbid
        .recovers_enclosures_on_abort = false,         // §3.2.2 deviation
        .detects_all_exceptions = false,               // reply-abort unseen
    };
  }

  void start(Sink sink) override;
  void shutdown() override;
  [[nodiscard]] sim::Task<std::pair<BLink, BLink>> make_link() override;
  [[nodiscard]] std::unique_ptr<PendingSend> begin_send(
      BLink link, WireMessage msg) override;
  void set_interest(BLink link, bool want_requests,
                    bool want_replies) override;
  void retract_reply_interest(BLink link) override;  // cannot help: no-op
  [[nodiscard]] sim::Task<void> destroy(BLink link) override;
  [[nodiscard]] std::uint64_t protocol_messages() const override {
    return packets_sent_;
  }
  [[nodiscard]] std::uint32_t trace_node() const override {
    return node_.value();
  }

  [[nodiscard]] charlotte::Pid pid() const { return pid_; }

  // ---- protocol statistics (experiments E2/E4/E9) ----------------------
  struct Stats {
    std::uint64_t packets_sent = 0;
    std::uint64_t requests_sent = 0;
    std::uint64_t replies_sent = 0;
    std::uint64_t retries_sent = 0;
    std::uint64_t forbids_sent = 0;
    std::uint64_t allows_sent = 0;
    std::uint64_t goaheads_sent = 0;
    std::uint64_t enc_packets_sent = 0;
    std::uint64_t unwanted_received = 0;
    std::uint64_t requests_returned = 0;  // our requests bounced back
    std::uint64_t enclosures_lost = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  // Bootstrap: wire two processes together (loader fiat).
  [[nodiscard]] static sim::Task<std::pair<LinkHandle, LinkHandle>> connect(
      Process& a, Process& b);

 private:
  friend class CharlottePendingSend;

  enum class PType : std::uint8_t {
    kRequest = 0,
    kReply = 1,
    kRetry = 2,
    kForbid = 3,
    kAllow = 4,
    kGoahead = 5,
    kEnc = 6,
  };

  // A LYNX-level message in transmission.  Lives in the backend until
  // definitively delivered or failed (it can outlive its PendingSend:
  // a FORBID can bounce a request whose kernel sends were already
  // acknowledged, and the retransmission is the backend's business).
  struct OutMsg {
    std::uint64_t id;
    BLink link;
    MsgKind kind = MsgKind::kRequest;
    Bytes body;
    std::vector<charlotte::EndId> enclosure_ends;
    std::vector<BLink> enclosure_blinks;
    int next_enclosure = 0;      // how many already shipped
    bool awaiting_goahead = false;
    bool cancel_requested = false;
    CharlottePendingSend* ps = nullptr;  // null once resolved
    std::uint64_t trace = 0;     // causal identity from the WireMessage
  };

  // One kernel Send in flight or queued (Charlotte allows one
  // outstanding send activity per end).
  struct KSend {
    Bytes payload;
    charlotte::EndId enclosure = charlotte::EndId::invalid();
    std::uint64_t out_id = 0;    // owning OutMsg, 0 for control packets
    PType ptype = PType::kRequest;
    // Causal identity handed to the kernel Send; control packets carry
    // the trace of the message that provoked them.
    std::uint64_t trace = 0;
  };

  // Reassembly of an incoming multi-enclosure message.
  struct Assembly {
    MsgKind kind = MsgKind::kRequest;
    Bytes body;
    std::vector<BLink> enclosures;
    int expected = 0;
    std::uint64_t trace = 0;  // from the first packet of the message
  };

  struct CLink {
    BLink token;
    charlotte::EndId end;
    bool want_requests = false;
    bool want_replies = false;
    bool recv_posted = false;
    bool destroyed = false;
    bool forbade_peer = false;   // we owe the peer an ALLOW
    bool forbidden = false;      // peer denied us requests
    bool kernel_send_busy = false;
    std::deque<KSend> ksend_queue;
    std::uint64_t active_out = 0;       // OutMsg currently transmitting
    std::uint64_t last_request = 0;     // shipped request, may bounce
    std::deque<std::uint64_t> out_queue;        // LYNX sends waiting
    std::deque<std::uint64_t> deferred_requests;  // bounced, await ALLOW
    std::optional<Assembly> assembly;
  };

  [[nodiscard]] sim::Task<> pump();
  void dispatch_receive(const charlotte::Completion& c);
  void dispatch_send_done(const charlotte::Completion& c);
  void on_incoming(CLink& link, PType ptype, std::uint8_t enc_total,
                   Bytes body, charlotte::EndId enclosure,
                   std::uint64_t trace);
  void deliver(CLink& link, MsgKind kind, Bytes body,
               std::vector<BLink> enclosures, std::uint64_t trace);
  void start_next_out(CLink& link);
  void queue_ksend(CLink& link, KSend ks);
  void drain(CLink& link);
  void request_cancel(std::uint64_t out_id);
  [[nodiscard]] sim::Task<> run_ksend(BLink token);
  void update_receive_posting(CLink& link);
  [[nodiscard]] sim::Task<> post_receive(BLink token);
  [[nodiscard]] sim::Task<> cancel_receive(BLink token);
  [[nodiscard]] sim::Task<> issue_cancel(BLink token);
  void maybe_send_allow(CLink& link);
  void resolve(OutMsg& out, SendOutcome outcome);
  void fail_link(CLink& link);
  [[nodiscard]] CLink* find(BLink token);
  [[nodiscard]] CLink* find_by_end(charlotte::EndId end);
  [[nodiscard]] BLink adopt_end(charlotte::EndId end);
  [[nodiscard]] sim::Task<> perform_shutdown();
  // True while some kernel send is accepted-but-unsettled (or queued)
  // on a live link; shutdown drains these before destroying links.
  [[nodiscard]] bool has_unsettled_ksends() const;
  void note_drain_progress();

  charlotte::Cluster* cluster_;
  net::NodeId node_;
  charlotte::Pid pid_;
  Sink sink_;
  bool running_ = false;
  // Shutdown has been requested but kernel sends are still settling;
  // the pump keeps dispatching completions until the drain finishes.
  bool draining_ = false;
  sim::WaitList drained_;

  std::unordered_map<BLink, CLink> links_;
  std::unordered_map<charlotte::EndId, BLink> by_end_;
  std::unordered_map<std::uint64_t, OutMsg> out_msgs_;
  common::IdAllocator<BLink> blink_ids_;
  std::uint64_t next_out_id_ = 1;
  std::uint64_t packets_sent_ = 0;
  Stats stats_;
};

[[nodiscard]] std::unique_ptr<CharlotteBackend> make_charlotte_backend(
    charlotte::Cluster& cluster, net::NodeId node);

}  // namespace lynx
