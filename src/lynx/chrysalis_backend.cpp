#include "lynx/chrysalis_backend.hpp"

#include <algorithm>
#include <cstring>

#include "trace/trace.hpp"

namespace lynx {

namespace {

// flag bits
[[nodiscard]] constexpr std::uint16_t slot_bit(int slot) {
  return static_cast<std::uint16_t>(1u << slot);
}
[[nodiscard]] constexpr std::uint16_t destroyed_bit(std::uint8_t side) {
  return static_cast<std::uint16_t>(1u << (4 + side));
}
[[nodiscard]] constexpr std::uint16_t unwanted_bit(std::uint8_t side) {
  return static_cast<std::uint16_t>(1u << (6 + side));
}

// slots: 0 = REQ A->B, 1 = REP A->B, 2 = REQ B->A, 3 = REP B->A
[[nodiscard]] constexpr int out_slot(std::uint8_t side, MsgKind kind) {
  const int base = (side == 0) ? 0 : 2;
  return base + (kind == MsgKind::kReply ? 1 : 0);
}
[[nodiscard]] constexpr std::uint8_t receiver_side_of_slot(int slot) {
  return (slot <= 1) ? 1 : 0;
}
[[nodiscard]] constexpr bool slot_is_reply(int slot) {
  return (slot % 2) == 1;
}

// notice codes
constexpr std::uint32_t kCodeFilledBase = 0;   // 0..3
constexpr std::uint32_t kCodeConsumedBase = 4; // 4..7
constexpr std::uint32_t kCodeDestroyed = 8;
constexpr std::uint32_t kCodeRecheck = 13;
constexpr std::uint32_t kCodePoison = 15;

[[nodiscard]] constexpr std::uint32_t make_notice(chrysalis::MemId obj,
                                                  std::uint32_t code) {
  return static_cast<std::uint32_t>(obj.value() << 4) | code;
}

// object header offsets
constexpr std::size_t kOffFlags = 0;
constexpr std::size_t kOffDqA = 4;
constexpr std::size_t kOffDqB = 8;
constexpr std::size_t kOffSlots = 16;

[[nodiscard]] constexpr std::size_t dq_offset(std::uint8_t side) {
  return side == 0 ? kOffDqA : kOffDqB;
}

// buffer content: u32 body_len | body | u8 enc_count | per enc (u64 obj,
// u8 side) | u64 trace.  The trailing trace word carries the causal
// identity through the shared-memory link object: Chrysalis has no
// network frame to stamp, so it rides in the buffer encoding itself.
Bytes encode_buffer(const Bytes& body,
                    const std::vector<std::pair<std::uint64_t,
                                                std::uint8_t>>& encs,
                    std::uint64_t trace) {
  Bytes out;
  out.reserve(4 + body.size() + 1 + encs.size() * 9 + 8);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(body.size() >> (8 * i)));
  }
  out.insert(out.end(), body.begin(), body.end());
  out.push_back(static_cast<std::uint8_t>(encs.size()));
  for (const auto& [obj, side] : encs) {
    for (int i = 0; i < 8; ++i) {
      out.push_back(static_cast<std::uint8_t>(obj >> (8 * i)));
    }
    out.push_back(side);
  }
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(trace >> (8 * i)));
  }
  return out;
}

struct DecodedBuffer {
  Bytes body;
  std::vector<std::pair<std::uint64_t, std::uint8_t>> encs;
  std::uint64_t trace = 0;
};

DecodedBuffer decode_buffer(const Bytes& raw) {
  DecodedBuffer out;
  RELYNX_ASSERT(raw.size() >= 5);
  std::size_t pos = 0;
  std::uint32_t body_len = 0;
  for (int i = 0; i < 4; ++i) {
    body_len |= static_cast<std::uint32_t>(raw[pos++]) << (8 * i);
  }
  RELYNX_ASSERT(pos + body_len + 1 <= raw.size());
  out.body.assign(raw.begin() + static_cast<std::ptrdiff_t>(pos),
                  raw.begin() + static_cast<std::ptrdiff_t>(pos + body_len));
  pos += body_len;
  const std::uint8_t n = raw[pos++];
  for (std::uint8_t i = 0; i < n; ++i) {
    RELYNX_ASSERT(pos + 9 <= raw.size());
    std::uint64_t obj = 0;
    for (int b = 0; b < 8; ++b) {
      obj |= static_cast<std::uint64_t>(raw[pos++]) << (8 * b);
    }
    out.encs.emplace_back(obj, raw[pos++]);
  }
  if (pos + 8 <= raw.size()) {
    for (int b = 0; b < 8; ++b) {
      out.trace |= static_cast<std::uint64_t>(raw[pos++]) << (8 * b);
    }
  }
  return out;
}

}  // namespace

// A Chrysalis send in flight: resolved by the pump when the consumed
// notice arrives (or by destruction / cancellation).
class ChrysalisPendingSend final : public PendingSend {
 public:
  ChrysalisPendingSend(ChrysalisBackend& backend, BLink link, MsgKind kind,
                       sim::Engine& engine)
      : backend_(&backend), link_(link), kind_(kind), done_(engine) {}

  sim::Task<SendOutcome> wait() override {
    SendOutcome out = co_await done_.take();
    co_return out;
  }

  void cancel() override {
    if (settled_) return;
    cancel_requested_ = true;
    backend_->request_cancel(link_, this);
  }

  void settle(SendOutcome out) {
    if (settled_) return;
    settled_ = true;
    done_.fulfill(std::move(out));
  }

  [[nodiscard]] bool settled() const { return settled_; }
  [[nodiscard]] MsgKind kind() const { return kind_; }

  std::vector<BLink> enclosures;  // backend tokens riding this send

 private:
  friend class ChrysalisBackend;
  ChrysalisBackend* backend_;
  BLink link_;
  MsgKind kind_;
  sim::OneShot<SendOutcome> done_;
  bool settled_ = false;
  bool cancel_requested_ = false;
};

// ===================== backend =====================

ChrysalisBackend::ChrysalisBackend(chrysalis::Kernel& kernel,
                                   net::NodeId node,
                                   ChrysalisBackendParams params)
    : kernel_(&kernel),
      node_(node),
      params_(params),
      pid_(kernel.create_process(node)),
      ready_(std::make_unique<sim::Gate>(kernel.engine())) {}

ChrysalisBackend::~ChrysalisBackend() {
  for (auto& [dq, q] : notice_queues_) q.deadline.cancel();
  for (auto& [token, rec] : links_) rec.consumed_timer.cancel();
}

sim::Task<> ChrysalisBackend::post_notice(chrysalis::DqId dq,
                                          std::uint32_t datum) {
  ++notices_;
  if (params_.form_delay <= 0) {
    (void)co_await kernel_->enqueue(pid_, dq, datum);
    co_return;
  }
  NoticeQueue& q = notice_queues_[dq];
  q.pending.push_back(datum);
  if (q.pending.size() >= params_.form_max_notices) {
    q.deadline.cancel();
    co_await flush_notices(dq);
  } else if (q.pending.size() == 1) {
    q.deadline = kernel_->engine().schedule_cancellable(
        params_.form_delay, [this, dq] {
          kernel_->engine().spawn("chrysalis-form-flush", flush_notices(dq));
        });
  }
}

sim::Task<> ChrysalisBackend::flush_notices(chrysalis::DqId dq) {
  auto it = notice_queues_.find(dq);
  if (it == notice_queues_.end() || it->second.pending.empty()) co_return;
  std::vector<std::uint32_t> batch = std::move(it->second.pending);
  it->second.pending.clear();
  if (batch.size() == 1) {
    (void)co_await kernel_->enqueue(pid_, dq, batch.front());
  } else {
    (void)co_await kernel_->enqueue_many(pid_, dq, std::move(batch));
  }
}

std::size_t ChrysalisBackend::slot_offset(int slot) const {
  return kOffSlots +
         static_cast<std::size_t>(slot) * (4 + params_.max_message_bytes);
}

std::size_t ChrysalisBackend::object_size() const {
  return kOffSlots + 4 * (4 + params_.max_message_bytes);
}

void ChrysalisBackend::start(Sink sink) {
  RELYNX_ASSERT_MSG(!running_, "backend started twice");
  sink_ = std::move(sink);
  running_ = true;
  kernel_->engine().spawn("chrysalis-pump", pump());
}

sim::Task<> ChrysalisBackend::pump() {
  // One dual queue + one event block per process (paper §5.2 opening).
  {
    auto dq = co_await kernel_->make_dual_queue(pid_,
                                                params_.dual_queue_capacity);
    RELYNX_ASSERT(dq.ok());
    my_dq_ = dq.value();
    auto ev = co_await kernel_->make_event(pid_);
    RELYNX_ASSERT(ev.ok());
    my_event_ = ev.value();
    comm_ready_ = true;
    ready_->open();
  }
  for (;;) {
    // Batched drain (ack protocol v2, DESIGN.md §12): one dequeue_many
    // dispatch services every ready notice; an empty queue falls back to
    // a bare event wait (the dequeue left our event name — or the cheap
    // flag — behind).
    std::vector<std::uint32_t> batch;
    if (params_.batched_drain) {
      auto got = co_await kernel_->dequeue_many(pid_, my_dq_, my_event_,
                                                params_.drain_max_notices);
      if (!got.ok()) break;
      if (got.value().would_block) {
        auto datum = co_await kernel_->wait_event(pid_, my_event_);
        if (!datum.ok()) break;
        batch.push_back(datum.value());
      } else {
        batch = std::move(got.value().data);
      }
    } else {
      auto datum = co_await kernel_->dequeue_wait(pid_, my_dq_, my_event_);
      if (!datum.ok()) break;
      batch.push_back(datum.value());
    }
    bool poisoned = false;
    for (const std::uint32_t raw : batch) {
      const std::uint32_t code = raw & 15u;
      const chrysalis::MemId obj(raw >> 4);
      if (code == kCodePoison) {
        poisoned = true;
        break;
      }
      ++notices_taken_;
      switch (code) {
        case kCodeRecheck:
          co_await recheck_link(obj);
          break;
        case kCodeDestroyed: {
          co_await handle_destroyed_notice(obj);
          break;
        }
        default: {
          if (code >= kCodeConsumedBase && code < kCodeConsumedBase + 4) {
            handle_consumed(obj, static_cast<int>(code - kCodeConsumedBase));
          } else if (code < 4) {
            co_await maybe_consume(obj, static_cast<int>(code));
          }
          break;
        }
      }
    }
    if (poisoned) break;
  }
}

ChrysalisBackend::LinkRec* ChrysalisBackend::side_rec(chrysalis::MemId obj,
                                                      std::uint8_t side) {
  auto it = by_obj_.find(obj);
  if (it == by_obj_.end()) return nullptr;
  const BLink token = it->second[side];
  if (!token.valid()) return nullptr;
  return find(token);
}

ChrysalisBackend::LinkRec* ChrysalisBackend::find(BLink link) {
  auto it = links_.find(link);
  return it == links_.end() ? nullptr : &it->second;
}

void ChrysalisBackend::index_link(const LinkRec& rec) {
  auto& sides = by_obj_[rec.obj];
  sides[rec.side] = rec.token;
}

void ChrysalisBackend::unindex_link(const LinkRec& rec) {
  auto it = by_obj_.find(rec.obj);
  if (it == by_obj_.end()) return;
  it->second[rec.side] = BLink::invalid();
  if (!it->second[0].valid() && !it->second[1].valid()) by_obj_.erase(it);
}

sim::Task<std::pair<BLink, BLink>> ChrysalisBackend::make_link() {
  while (!comm_ready_) co_await ready_->wait();
  auto obj = co_await kernel_->make_object(pid_, object_size());
  RELYNX_ASSERT(obj.ok());
  // Both sides' dual-queue names start as ours.
  (void)co_await kernel_->write32(pid_, obj.value(), kOffDqA,
                                  static_cast<std::uint32_t>(my_dq_.value()));
  (void)co_await kernel_->write32(pid_, obj.value(), kOffDqB,
                                  static_cast<std::uint32_t>(my_dq_.value()));
  const BLink a = blink_ids_.next();
  const BLink b = blink_ids_.next();
  links_.emplace(a, make_rec(a, obj.value(), 0));
  links_.emplace(b, make_rec(b, obj.value(), 1));
  index_link(links_.at(a));
  index_link(links_.at(b));
  co_return std::pair(a, b);
}

std::unique_ptr<PendingSend> ChrysalisBackend::begin_send(BLink link,
                                                          WireMessage msg) {
  auto ps = std::make_unique<ChrysalisPendingSend>(*this, link, msg.kind,
                                                   kernel_->engine());
  ps->enclosures = msg.enclosures;
  kernel_->engine().spawn("chrysalis-send",
                          perform_send(link, std::move(msg), ps.get()));
  return ps;
}

sim::Task<> ChrysalisBackend::perform_send(BLink link, WireMessage msg,
                                           ChrysalisPendingSend* ps) {
  LinkRec* rec = find(link);
  if (rec == nullptr || rec->destroyed) {
    ps->settle(SendOutcome{SendResult::kLinkDestroyed, {}});
    co_return;
  }
  const chrysalis::MemId obj = rec->obj;
  const std::uint8_t side = rec->side;
  const std::uint8_t peer = side ^ 1;
  const int slot = out_slot(side, msg.kind);

  // The ack rides the reply (DESIGN.md §12): our reply's FILLED notice
  // proves the request was consumed, so a still-deferred CONSUMED
  // notice for it is redundant — drop it before it fires.
  if (msg.kind == MsgKind::kReply && rec->consumed_owed) {
    rec->consumed_timer.cancel();
    rec->consumed_owed = false;
    if (auto* trec = trace::get(kernel_->engine())) {
      trec->instant(node_.value(), "backend", "notice.piggyback",
                    rec->consumed_trace,
                    static_cast<std::uint64_t>(rec->consumed_slot), 0);
    }
  }

  // Capability (4): an aborted caller set the "reply unwanted" bit; the
  // replier feels the language-defined exception instead of sending.
  if (msg.kind == MsgKind::kReply) {
    auto flags = co_await kernel_->read16(pid_, obj, kOffFlags);
    if (!flags.ok()) {
      ps->settle(SendOutcome{SendResult::kLinkDestroyed, {}});
      co_return;
    }
    if (flags.value() & unwanted_bit(peer)) {
      (void)co_await kernel_->fetch_and16(
          pid_, obj, kOffFlags,
          static_cast<std::uint16_t>(~unwanted_bit(peer)));
      ps->settle(SendOutcome{SendResult::kReplyUnwanted, {}});
      co_return;
    }
  }

  // Encode and write the buffer.
  std::vector<std::pair<std::uint64_t, std::uint8_t>> encs;
  for (BLink e : msg.enclosures) {
    LinkRec* er = find(e);
    RELYNX_ASSERT_MSG(er != nullptr, "enclosure token unknown");
    encs.emplace_back(er->obj.value(), er->side);
  }
  Bytes buf = encode_buffer(msg.body, encs, msg.trace_id);
  RELYNX_ASSERT_MSG(buf.size() + 4 <= 4 + params_.max_message_bytes,
                    "message exceeds link buffer");
  // One block transfer covers the length word and the payload — the
  // flag bit (set below) is what publishes the slot, so the combined
  // write needs no internal ordering.
  Bytes framed(4 + buf.size());
  const auto frame_len = static_cast<std::uint32_t>(buf.size());
  std::memcpy(framed.data(), &frame_len, 4);
  std::copy(buf.begin(), buf.end(), framed.begin() + 4);
  (void)co_await kernel_->block_write(pid_, obj, slot_offset(slot), framed);
  if (auto* rec2 = trace::get(kernel_->engine())) {
    rec2->instant(node_.value(), "backend", "slot.fill", msg.trace_id,
                  static_cast<std::uint64_t>(slot), buf.size());
  }
  // Set the flag FIRST, then read the peer's dual-queue name: this
  // ordering (against the mover's write-name-then-inspect-flags) is what
  // makes the non-atomic name update safe (paper §5.2).
  (void)co_await kernel_->fetch_or16(pid_, obj, kOffFlags, slot_bit(slot));
  auto dq_name = co_await kernel_->read32(pid_, obj, dq_offset(peer));
  if (dq_name.ok()) {
    co_await post_notice(
        chrysalis::DqId(dq_name.value()),
        make_notice(obj, kCodeFilledBase + static_cast<std::uint32_t>(slot)));
  }
  // Enclosure-free replies resolve early (ack protocol v2, DESIGN.md
  // §12): the flag bit is absolute truth and the buffer lives in the
  // link object, which shared memory keeps intact until the consumer
  // reads it regardless of what this process does next — waiting for
  // the consumed hint teaches us nothing the flag write didn't.
  if (msg.kind == MsgKind::kReply && msg.enclosures.empty()) {
    ps->settle(SendOutcome{SendResult::kDelivered, {}});
    co_return;
  }
  // Park until the consumed notice (or destruction) resolves it.
  rec = find(link);
  if (rec == nullptr) {
    ps->settle(SendOutcome{SendResult::kLinkDestroyed, {}});
    co_return;
  }
  (msg.kind == MsgKind::kReply ? rec->out_rep : rec->out_req).ps = ps;
}

void ChrysalisBackend::handle_consumed(chrysalis::MemId obj, int slot) {
  // The consumed slot is OUR outgoing slot iff we own the sending side.
  const std::uint8_t sender_side = (slot <= 1) ? 0 : 1;
  LinkRec* rec = side_rec(obj, sender_side);
  if (rec == nullptr) return;  // stale hint
  PendingOut& out = slot_is_reply(slot) ? rec->out_rep : rec->out_req;
  ChrysalisPendingSend* ps = out.ps;
  if (ps == nullptr) return;  // stale hint
  out.ps = nullptr;
  // Delivered: the moved ends now belong to the receiver.  Unmap the
  // object only if we hold no other end of it (we might own both ends
  // of a fresh link and have sent just one).
  for (BLink e : ps->enclosures) {
    if (LinkRec* er = find(e)) {
      const chrysalis::MemId eobj = er->obj;
      unindex_link(*er);
      links_.erase(e);
      if (by_obj_.find(eobj) == by_obj_.end()) {
        kernel_->engine().spawn("chrysalis-unmap", unmap_object(eobj));
      }
    }
  }
  ps->settle(SendOutcome{SendResult::kDelivered, {}});
}

sim::Task<> ChrysalisBackend::post_deferred_consumed(BLink token) {
  // The coalesce window expired with no reply to ride: post the
  // standalone CONSUMED notice after all.
  LinkRec* rec = find(token);
  if (rec == nullptr || rec->destroyed || !rec->consumed_owed) co_return;
  rec->consumed_owed = false;
  const chrysalis::MemId obj = rec->obj;
  const std::uint8_t sender_side = rec->side ^ 1;
  const auto slot = static_cast<std::uint32_t>(rec->consumed_slot);
  auto dq_name = co_await kernel_->read32(pid_, obj, dq_offset(sender_side));
  if (dq_name.ok()) {
    co_await post_notice(chrysalis::DqId(dq_name.value()),
                         make_notice(obj, kCodeConsumedBase + slot));
  }
}

sim::Task<> ChrysalisBackend::unmap_object(chrysalis::MemId obj) {
  (void)co_await kernel_->unmap(pid_, obj);
}

sim::Task<> ChrysalisBackend::maybe_consume(chrysalis::MemId obj, int slot) {
  const std::uint8_t recv_side = receiver_side_of_slot(slot);
  LinkRec* rec = side_rec(obj, recv_side);
  if (rec == nullptr || rec->destroyed) co_return;  // stale hint
  // Screening in the application layer: requests stay parked in the
  // buffer (flag set, not consumed) until the runtime wants them.
  if (!slot_is_reply(slot) && !rec->want_requests) co_return;
  co_await consume_incoming(obj, slot);
}

sim::Task<> ChrysalisBackend::consume_incoming(chrysalis::MemId obj,
                                               int slot) {
  const std::uint8_t recv_side = receiver_side_of_slot(slot);
  LinkRec* rec = side_rec(obj, recv_side);
  if (rec == nullptr) co_return;
  const BLink token = rec->token;
  // The flag is the absolute truth: verify before acting on the hint.
  auto flags = co_await kernel_->read16(pid_, obj, kOffFlags);
  if (!flags.ok() || (flags.value() & slot_bit(slot)) == 0) co_return;

  auto len = co_await kernel_->read32(pid_, obj, slot_offset(slot));
  if (!len.ok()) co_return;
  auto raw = co_await kernel_->block_read(pid_, obj, slot_offset(slot) + 4,
                                          len.value());
  if (!raw.ok()) co_return;
  (void)co_await kernel_->fetch_and16(
      pid_, obj, kOffFlags, static_cast<std::uint16_t>(~slot_bit(slot)));
  DecodedBuffer decoded = decode_buffer(raw.value());
  // Ack the producer (ack protocol v2, DESIGN.md §12):
  //  * enclosure-free replies: the sender resolved early at the flag
  //    write — nobody is parked on the hint, skip the dq round trip;
  //  * replies generally: their arrival proves our own request on this
  //    link was consumed (RPC ordering), so settle the parked request
  //    send now — its CONSUMED notice may have been piggybacked away;
  //  * requests: defer the CONSUMED notice by consumed_coalesce_delay —
  //    if our reply beats the timer, the notice is never posted.
  const std::uint8_t sender_side = recv_side ^ 1;
  if (slot_is_reply(slot)) {
    handle_consumed(obj, recv_side == 0 ? 0 : 2);
    if (!decoded.encs.empty()) {
      auto dq_name =
          co_await kernel_->read32(pid_, obj, dq_offset(sender_side));
      if (dq_name.ok()) {
        co_await post_notice(
            chrysalis::DqId(dq_name.value()),
            make_notice(obj,
                        kCodeConsumedBase + static_cast<std::uint32_t>(slot)));
      }
    }
  } else {
    rec = side_rec(obj, recv_side);  // re-find: awaits above may rehash
    if (rec != nullptr && !rec->destroyed &&
        params_.consumed_coalesce_delay > 0) {
      const BLink owed_token = rec->token;
      if (rec->consumed_owed) rec->consumed_timer.cancel();
      rec->consumed_owed = true;
      rec->consumed_slot = slot;
      rec->consumed_trace = decoded.trace;
      rec->consumed_timer = kernel_->engine().schedule_cancellable(
          params_.consumed_coalesce_delay, [this, owed_token] {
            kernel_->engine().spawn("chrysalis-consumed",
                                    post_deferred_consumed(owed_token));
          });
    } else {
      auto dq_name =
          co_await kernel_->read32(pid_, obj, dq_offset(sender_side));
      if (dq_name.ok()) {
        co_await post_notice(
            chrysalis::DqId(dq_name.value()),
            make_notice(obj,
                        kCodeConsumedBase + static_cast<std::uint32_t>(slot)));
      }
    }
  }
  if (auto* trec = trace::get(kernel_->engine())) {
    trec->instant(node_.value(), "backend", "slot.consume", decoded.trace,
                  static_cast<std::uint64_t>(slot), raw.value().size());
  }
  // Install moved ends: map, write our dual-queue name (non-atomic),
  // THEN inspect flags and self-notice anything already set.
  std::vector<BLink> enclosures;
  for (const auto& [eobj_raw, eside] : decoded.encs) {
    const chrysalis::MemId eobj(eobj_raw);
    (void)co_await kernel_->map(pid_, eobj);
    (void)co_await kernel_->write32(
        pid_, eobj, dq_offset(eside),
        static_cast<std::uint32_t>(my_dq_.value()));
    const BLink nb = blink_ids_.next();
    links_.emplace(nb,
                   make_rec(nb, eobj, eside));
    index_link(links_.at(nb));
    enclosures.push_back(nb);
    auto eflags = co_await kernel_->read16(pid_, eobj, kOffFlags);
    if (eflags.ok()) {
      for (int s = 0; s < 4; ++s) {
        if (receiver_side_of_slot(s) == eside &&
            (eflags.value() & slot_bit(s))) {
          co_await post_notice(
              my_dq_,
              make_notice(eobj,
                          kCodeFilledBase + static_cast<std::uint32_t>(s)));
        }
      }
      if (eflags.value() & destroyed_bit(eside ^ 1)) {
        co_await post_notice(my_dq_, make_notice(eobj, kCodeDestroyed));
      }
    }
  }

  BackendEvent ev;
  ev.kind = slot_is_reply(slot) ? BackendEvent::Kind::kReplyArrived
                                : BackendEvent::Kind::kRequestArrived;
  ev.link = token;
  ev.body = std::move(decoded.body);
  ev.enclosures = std::move(enclosures);
  ev.trace = decoded.trace;
  if (sink_) sink_(ev);
}

sim::Task<> ChrysalisBackend::recheck_link(chrysalis::MemId obj) {
  for (std::uint8_t side = 0; side < 2; ++side) {
    LinkRec* rec = side_rec(obj, side);
    if (rec == nullptr || rec->destroyed) continue;
    auto flags = co_await kernel_->read16(pid_, obj, kOffFlags);
    if (!flags.ok()) continue;
    for (int s = 0; s < 4; ++s) {
      if (receiver_side_of_slot(s) != side) continue;
      if ((flags.value() & slot_bit(s)) == 0) continue;
      co_await maybe_consume(obj, s);
    }
    if (flags.value() & destroyed_bit(side ^ 1)) {
      co_await handle_destroyed_notice(obj);
    }
  }
}

sim::Task<> ChrysalisBackend::handle_destroyed_notice(chrysalis::MemId obj) {
  for (std::uint8_t side = 0; side < 2; ++side) {
    LinkRec* rec = side_rec(obj, side);
    if (rec == nullptr || rec->destroyed) continue;
    auto flags = co_await kernel_->read16(pid_, obj, kOffFlags);
    if (!flags.ok()) {
      // object reclaimed already: treat as destroyed
    } else if ((flags.value() & destroyed_bit(side ^ 1)) == 0) {
      continue;  // stale hint
    }
    rec->destroyed = true;
    if (rec->out_req.ps != nullptr) {
      rec->out_req.ps->settle(SendOutcome{SendResult::kLinkDestroyed, {}});
      rec->out_req.ps = nullptr;
    }
    if (rec->out_rep.ps != nullptr) {
      rec->out_rep.ps->settle(SendOutcome{SendResult::kLinkDestroyed, {}});
      rec->out_rep.ps = nullptr;
    }
    BackendEvent ev;
    ev.kind = BackendEvent::Kind::kLinkDestroyed;
    ev.link = rec->token;
    if (sink_) sink_(ev);
    const chrysalis::MemId dead_obj = rec->obj;
    unindex_link(*rec);
    links_.erase(rec->token);
    (void)co_await kernel_->unmap(pid_, dead_obj);
  }
}

void ChrysalisBackend::request_cancel(BLink link, ChrysalisPendingSend* ps) {
  kernel_->engine().spawn("chrysalis-cancel", perform_cancel(link, ps));
}

sim::Task<> ChrysalisBackend::perform_cancel(BLink link,
                                             ChrysalisPendingSend* ps) {
  LinkRec* rec = find(link);
  if (rec == nullptr || ps->settled()) co_return;
  const int slot = out_slot(rec->side, ps->kind());
  // Revoke if the peer has not consumed it yet: clear the flag.
  auto old = co_await kernel_->fetch_and16(
      pid_, rec->obj, kOffFlags,
      static_cast<std::uint16_t>(~slot_bit(slot)));
  rec = find(link);
  if (rec == nullptr || ps->settled()) co_return;
  PendingOut& out = ps->kind() == MsgKind::kReply ? rec->out_rep
                                                  : rec->out_req;
  if (old.ok() && (old.value() & slot_bit(slot))) {
    // We won the race; the enclosures were never installed remotely, so
    // nothing is lost (capability 3).
    if (out.ps == ps) out.ps = nullptr;
    ps->settle(SendOutcome{SendResult::kCancelled, {}});
  }
  // else: consumed already; the consumed notice will settle kDelivered.
}

void ChrysalisBackend::set_interest(BLink link, bool want_requests,
                                    bool want_replies) {
  LinkRec* rec = find(link);
  if (rec == nullptr) return;
  const bool newly_interested = want_requests && !rec->want_requests;
  rec->want_requests = want_requests;
  rec->want_replies = want_replies;
  if (newly_interested && comm_ready_) {
    // Self-hint: re-scan the absolute flags for parked requests.
    kernel_->engine().spawn("chrysalis-recheck",
                            enqueue_self(make_notice(rec->obj, kCodeRecheck)));
  }
}

sim::Task<> ChrysalisBackend::enqueue_self(std::uint32_t datum) {
  co_await post_notice(my_dq_, datum);
}

void ChrysalisBackend::retract_reply_interest(BLink link) {
  LinkRec* rec = find(link);
  if (rec == nullptr || rec->destroyed) return;
  kernel_->engine().spawn("chrysalis-retract",
                          set_unwanted_bit(rec->obj, rec->side));
}

sim::Task<> ChrysalisBackend::set_unwanted_bit(chrysalis::MemId obj,
                                               std::uint8_t side) {
  (void)co_await kernel_->fetch_or16(pid_, obj, kOffFlags,
                                     unwanted_bit(side));
}

sim::Task<void> ChrysalisBackend::destroy(BLink link) {
  LinkRec* rec = find(link);
  if (rec == nullptr) co_return;
  const chrysalis::MemId obj = rec->obj;
  const std::uint8_t side = rec->side;
  rec->destroyed = true;
  unindex_link(*rec);
  links_.erase(link);
  co_await perform_destroy_bits(obj, side);
}

sim::Task<> ChrysalisBackend::perform_destroy_bits(chrysalis::MemId obj,
                                                   std::uint8_t side) {
  (void)co_await kernel_->fetch_or16(pid_, obj, kOffFlags,
                                     destroyed_bit(side));
  auto dq_name = co_await kernel_->read32(pid_, obj, dq_offset(side ^ 1));
  if (dq_name.ok()) {
    co_await post_notice(chrysalis::DqId(dq_name.value()),
                         make_notice(obj, kCodeDestroyed));
  }
  kernel_->release_when_unreferenced(obj);
  (void)co_await kernel_->unmap(pid_, obj);
}

void ChrysalisBackend::shutdown() {
  if (!running_) return;
  running_ = false;
  kernel_->engine().spawn("chrysalis-shutdown", perform_shutdown());
}

sim::Task<> ChrysalisBackend::perform_shutdown() {
  // Settle deferred CONSUMED notices before the links go away: the
  // peer's request send is still parked on them.
  std::vector<BLink> owed;
  for (auto& [token, rec] : links_) {
    if (rec.consumed_owed) {
      rec.consumed_timer.cancel();
      owed.push_back(token);
    }
  }
  for (const BLink token : owed) co_await post_deferred_consumed(token);
  // "Before terminating, each process destroys all of its links."
  std::vector<std::pair<chrysalis::MemId, std::uint8_t>> to_destroy;
  for (auto& [token, rec] : links_) {
    if (!rec.destroyed) to_destroy.emplace_back(rec.obj, rec.side);
  }
  links_.clear();
  by_obj_.clear();
  for (const auto& [obj, side] : to_destroy) {
    co_await perform_destroy_bits(obj, side);
  }
  // Drain any notices still held by the formation window — peers must
  // hear our destroyed hints before we go quiet.
  std::vector<chrysalis::DqId> held;
  for (auto& [dq, q] : notice_queues_) {
    q.deadline.cancel();
    if (!q.pending.empty()) held.push_back(dq);
  }
  for (const chrysalis::DqId dq : held) co_await flush_notices(dq);
  if (comm_ready_) {
    (void)co_await kernel_->enqueue(pid_, my_dq_,
                                    make_notice(chrysalis::MemId(0),
                                                kCodePoison));
  }
}

// ===================== bootstrap =====================

sim::Task<std::pair<LinkHandle, LinkHandle>> ChrysalisBackend::connect(
    Process& a, Process& b) {
  auto* ba = dynamic_cast<ChrysalisBackend*>(&a.backend());
  auto* bb = dynamic_cast<ChrysalisBackend*>(&b.backend());
  RELYNX_ASSERT_MSG(ba != nullptr && bb != nullptr,
                    "connect requires Chrysalis backends");
  RELYNX_ASSERT_MSG(ba->kernel_ == bb->kernel_, "same Butterfly required");
  while (!ba->comm_ready_) co_await ba->ready_->wait();
  while (!bb->comm_ready_) co_await bb->ready_->wait();

  chrysalis::Kernel& k = *ba->kernel_;
  auto obj = co_await k.make_object(ba->pid_, ba->object_size());
  RELYNX_ASSERT(obj.ok());
  (void)co_await k.map(bb->pid_, obj.value());
  (void)co_await k.write32(ba->pid_, obj.value(), kOffDqA,
                           static_cast<std::uint32_t>(ba->my_dq_.value()));
  (void)co_await k.write32(bb->pid_, obj.value(), kOffDqB,
                           static_cast<std::uint32_t>(bb->my_dq_.value()));
  const BLink ta = ba->blink_ids_.next();
  ba->links_.emplace(ta, ChrysalisBackend::make_rec(ta, obj.value(), 0));
  ba->index_link(ba->links_.at(ta));
  const BLink tb = bb->blink_ids_.next();
  bb->links_.emplace(tb, ChrysalisBackend::make_rec(tb, obj.value(), 1));
  bb->index_link(bb->links_.at(tb));
  co_return std::pair(a.adopt_link(ta), b.adopt_link(tb));
}

std::unique_ptr<ChrysalisBackend> make_chrysalis_backend(
    chrysalis::Kernel& kernel, net::NodeId node,
    ChrysalisBackendParams params) {
  return std::make_unique<ChrysalisBackend>(kernel, node, params);
}

}  // namespace lynx
