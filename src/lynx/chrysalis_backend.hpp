// The Chrysalis backend (paper §5.2).
//
// Every process allocates ONE dual queue and ONE event block through
// which it hears about messages sent and received.  A link is a memory
// object mapped by the two connected processes, holding buffer space for
// a single request and a single reply in each direction, a set of flag
// bits, and the dual-queue names of both side owners.
//
// The hint discipline is the paper's: notices on dual queues are HINTS
// (cheap, possibly stale, possibly dropped on the floor); the flag bits
// in the link object are ABSOLUTE.  Whenever a process dequeues a notice
// it checks that it still owns the mentioned end and that the flag is
// really set; stale notices are discarded.  Every flag change is
// eventually covered by a notice, but not every notice reflects a flag.
//
// Moving a link: pass the (address-space-independent) object name in a
// message; the receiver maps the object, writes its own dual-queue name
// — NON-atomically, safe because it completes the write before
// inspecting flags — and self-notices any flags already set.
#pragma once

#include <array>
#include <memory>
#include <unordered_map>

#include "chrysalis/kernel.hpp"
#include "lynx/backend.hpp"
#include "lynx/runtime.hpp"

namespace lynx {

struct ChrysalisBackendParams {
  std::size_t max_message_bytes = 2048;  // per-direction buffer size
  std::size_t dual_queue_capacity = 64;
  // Notice formation (src/form/, DESIGN.md §14) — the shared-memory
  // analogue of RPC formation: notices bound for the same dual queue
  // (another process's or our own) within form_delay of each other ride
  // one kernel enqueue_many dispatch (up to form_max_notices per
  // batch).  0 = one enqueue per notice (the default).
  sim::Duration form_delay = sim::Duration(0);
  std::size_t form_max_notices = 16;
  // Batched dual-queue drains (ack protocol v2, DESIGN.md §12): each
  // pump wakeup services every ready notice through one
  // Kernel::dequeue_many dispatch instead of paying a full dq_dequeue
  // per notice.  false = one notice per wakeup (the v1 behaviour).
  bool batched_drain = true;
  std::size_t drain_max_notices = 16;
  // Consumed-notice coalescing (the ack-v2 piggyback, DESIGN.md §12):
  // after consuming a request we owe the sender a CONSUMED notice — but
  // if our reply goes out within this delay, the reply's FILLED notice
  // proves consumption (RPC ordering) and the standalone notice is
  // skipped; the requester infers delivery from the reply itself.
  // 0 = post immediately (the v1 behaviour).
  sim::Duration consumed_coalesce_delay = sim::msec(2);
};

class ChrysalisBackend final : public Backend {
 public:
  ChrysalisBackend(chrysalis::Kernel& kernel, net::NodeId node,
                   ChrysalisBackendParams params = {});
  ~ChrysalisBackend() override;

  [[nodiscard]] std::string kernel_name() const override {
    return "chrysalis";
  }
  [[nodiscard]] Capabilities capabilities() const override {
    return Capabilities{
        .moves_multiple_links_in_one_message = true,
        .all_received_messages_wanted = true,
        .recovers_enclosures_on_abort = true,
        .detects_all_exceptions = true,
    };
  }

  void start(Sink sink) override;
  void shutdown() override;
  [[nodiscard]] sim::Task<std::pair<BLink, BLink>> make_link() override;
  [[nodiscard]] std::unique_ptr<PendingSend> begin_send(
      BLink link, WireMessage msg) override;
  void set_interest(BLink link, bool want_requests,
                    bool want_replies) override;
  void retract_reply_interest(BLink link) override;
  [[nodiscard]] sim::Task<void> destroy(BLink link) override;
  [[nodiscard]] std::uint64_t protocol_messages() const override {
    return notices_;
  }
  [[nodiscard]] std::uint32_t trace_node() const override {
    return node_.value();
  }

  [[nodiscard]] chrysalis::Pid pid() const { return pid_; }

  // Bootstrap: wire two started-or-starting processes together with a
  // fresh link (the loader's job).  Run on the engine before traffic.
  [[nodiscard]] static sim::Task<std::pair<LinkHandle, LinkHandle>> connect(
      Process& a, Process& b);

 private:
  friend class ChrysalisPendingSend;

  struct PendingOut {
    class ChrysalisPendingSend* ps = nullptr;
  };
  struct LinkRec {
    BLink token;
    chrysalis::MemId obj;
    std::uint8_t side = 0;  // 0 = A, 1 = B
    bool want_requests = false;
    bool want_replies = false;
    bool destroyed = false;
    PendingOut out_req;
    PendingOut out_rep;
    // A CONSUMED notice we owe the peer for their request, deferred by
    // consumed_coalesce_delay in the hope our reply makes it redundant.
    bool consumed_owed = false;
    int consumed_slot = -1;
    std::uint64_t consumed_trace = 0;
    sim::TimerHandle consumed_timer;
  };

  [[nodiscard]] static LinkRec make_rec(BLink token, chrysalis::MemId obj,
                                        std::uint8_t side) {
    LinkRec rec;
    rec.token = token;
    rec.obj = obj;
    rec.side = side;
    return rec;
  }

  // object layout helpers
  [[nodiscard]] std::size_t slot_offset(int slot) const;
  [[nodiscard]] std::size_t object_size() const;

  [[nodiscard]] sim::Task<> pump();
  [[nodiscard]] sim::Task<> maybe_consume(chrysalis::MemId obj, int slot);
  [[nodiscard]] sim::Task<> consume_incoming(chrysalis::MemId obj, int slot);
  void handle_consumed(chrysalis::MemId obj, int slot);
  [[nodiscard]] sim::Task<> post_deferred_consumed(BLink token);
  [[nodiscard]] sim::Task<> handle_destroyed_notice(chrysalis::MemId obj);
  [[nodiscard]] sim::Task<> perform_send(BLink link, WireMessage msg,
                                         class ChrysalisPendingSend* ps);
  void request_cancel(BLink link, class ChrysalisPendingSend* ps);
  [[nodiscard]] sim::Task<> perform_cancel(BLink link,
                                           class ChrysalisPendingSend* ps);
  [[nodiscard]] sim::Task<> perform_destroy_bits(chrysalis::MemId obj,
                                                 std::uint8_t side);
  [[nodiscard]] sim::Task<> perform_shutdown();
  [[nodiscard]] sim::Task<> recheck_link(chrysalis::MemId obj);
  [[nodiscard]] sim::Task<> unmap_object(chrysalis::MemId obj);
  [[nodiscard]] sim::Task<> enqueue_self(std::uint32_t datum);
  // Notice formation: every hint leaves through here.  With form_delay
  // == 0 each notice goes straight to Kernel::enqueue; otherwise
  // notices are held per destination queue for up to form_delay and
  // delivered together by one Kernel::enqueue_many dispatch.  The
  // shutdown poison bypasses this path so teardown never waits on a
  // deadline timer.
  [[nodiscard]] sim::Task<> post_notice(chrysalis::DqId dq,
                                        std::uint32_t datum);
  [[nodiscard]] sim::Task<> flush_notices(chrysalis::DqId dq);
  [[nodiscard]] sim::Task<> set_unwanted_bit(chrysalis::MemId obj,
                                             std::uint8_t side);
  [[nodiscard]] LinkRec* side_rec(chrysalis::MemId obj, std::uint8_t side);
  [[nodiscard]] LinkRec* find(BLink link);
  void index_link(const LinkRec& rec);
  void unindex_link(const LinkRec& rec);

  chrysalis::Kernel* kernel_;
  net::NodeId node_;
  ChrysalisBackendParams params_;
  chrysalis::Pid pid_;
  Sink sink_;
  bool running_ = false;

  std::unique_ptr<sim::Gate> ready_;
  chrysalis::DqId my_dq_;
  chrysalis::EventId my_event_;
  bool comm_ready_ = false;

  std::unordered_map<BLink, LinkRec> links_;
  std::unordered_map<chrysalis::MemId, std::array<BLink, 2>> by_obj_;
  common::IdAllocator<BLink> blink_ids_;
  std::uint64_t notices_ = 0;  // logical notices, batched or not
  std::uint64_t notices_taken_ = 0;
  struct NoticeQueue {
    std::vector<std::uint32_t> pending;
    sim::TimerHandle deadline;
  };
  std::unordered_map<chrysalis::DqId, NoticeQueue> notice_queues_;
};

[[nodiscard]] std::unique_ptr<ChrysalisBackend> make_chrysalis_backend(
    chrysalis::Kernel& kernel, net::NodeId node,
    ChrysalisBackendParams params = {});

}  // namespace lynx
