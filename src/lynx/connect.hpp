// Substrate-agnostic bootstrap wiring.
//
// Each backend exposes a static connect(Process&, Process&) because the
// loader-fiat handshake is kernel-specific, but callers that run one
// scenario against every substrate (tests/load, bench_capacity) only
// know they hold two processes on the *same* backend family.  This
// helper dispatches on the concrete backend type so such callers never
// mention a kernel by name.
#pragma once

#include <utility>

#include "common/assert.hpp"
#include "lynx/charlotte_backend.hpp"
#include "lynx/chrysalis_backend.hpp"
#include "lynx/runtime.hpp"
#include "lynx/soda_backend.hpp"
#include "sim/task.hpp"

namespace lynx {

// Wires a <-> b with a fresh link and returns (a_end, b_end).  Both
// processes must sit on the same backend family; run on the engine
// before traffic, like the per-backend connect it forwards to.
[[nodiscard]] inline sim::Task<std::pair<LinkHandle, LinkHandle>> connect_any(
    Process& a, Process& b) {
  if (dynamic_cast<CharlotteBackend*>(&a.backend()) != nullptr) {
    co_return co_await CharlotteBackend::connect(a, b);
  }
  if (dynamic_cast<SodaBackend*>(&a.backend()) != nullptr) {
    co_return co_await SodaBackend::connect(a, b);
  }
  RELYNX_ASSERT_MSG(dynamic_cast<ChrysalisBackend*>(&a.backend()) != nullptr,
                    "connect_any: unknown backend");
  co_return co_await ChrysalisBackend::connect(a, b);
}

}  // namespace lynx
