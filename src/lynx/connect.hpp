// Substrate-agnostic bootstrap wiring.
//
// Each backend exposes a static connect(Process&, Process&) because the
// loader-fiat handshake is kernel-specific, but callers that run one
// scenario against every substrate (tests/load, bench_capacity) only
// know they hold two processes on the *same* backend family.  This
// helper dispatches on the concrete backend type so such callers never
// mention a kernel by name.
#pragma once

#include <utility>

#include "common/assert.hpp"
#include "lynx/charlotte_backend.hpp"
#include "lynx/chrysalis_backend.hpp"
#include "lynx/errors.hpp"
#include "lynx/runtime.hpp"
#include "lynx/soda_backend.hpp"
#include "sim/task.hpp"

namespace lynx {

namespace detail {

// Substrate family of a process's backend, or nullptr-equivalent "" for
// a backend connect_any does not know how to wire.
[[nodiscard]] inline const char* substrate_tag(Process& p) {
  if (dynamic_cast<CharlotteBackend*>(&p.backend()) != nullptr) {
    return "charlotte";
  }
  if (dynamic_cast<SodaBackend*>(&p.backend()) != nullptr) return "soda";
  if (dynamic_cast<ChrysalisBackend*>(&p.backend()) != nullptr) {
    return "chrysalis";
  }
  return "";
}

}  // namespace detail

// Wires a <-> b with a fresh link and returns (a_end, b_end).  Both
// processes must sit on the same backend family; run on the engine
// before traffic, like the per-backend connect it forwards to.
//
// Error surface (LynxError, kInvalidLink / kLinkDestroyed): an unknown
// or mismatched substrate tag, processes on different engines, a
// terminated process, or an engine already shut down.  Connecting the
// same pair again is legal and yields a second, independent link.
[[nodiscard]] inline sim::Task<std::pair<LinkHandle, LinkHandle>> connect_any(
    Process& a, Process& b) {
  if (&a.engine() != &b.engine()) {
    throw LynxError(ErrorKind::kInvalidLink,
                    "connect_any: processes on different engines");
  }
  if (a.engine().is_shut_down()) {
    throw LynxError(ErrorKind::kLinkDestroyed,
                    "connect_any: engine already shut down");
  }
  if (a.terminated() || b.terminated()) {
    throw LynxError(ErrorKind::kLinkDestroyed,
                    "connect_any: process already terminated");
  }
  const std::string tag_a = detail::substrate_tag(a);
  const std::string tag_b = detail::substrate_tag(b);
  if (tag_a.empty() || tag_b.empty()) {
    throw LynxError(ErrorKind::kInvalidLink,
                    "connect_any: unknown substrate tag");
  }
  if (tag_a != tag_b) {
    throw LynxError(ErrorKind::kInvalidLink,
                    "connect_any: mismatched substrates (" + tag_a + " vs " +
                        tag_b + ")");
  }
  if (tag_a == "charlotte") {
    co_return co_await CharlotteBackend::connect(a, b);
  }
  if (tag_a == "soda") {
    co_return co_await SodaBackend::connect(a, b);
  }
  co_return co_await ChrysalisBackend::connect(a, b);
}

}  // namespace lynx
