// LYNX run-time exceptions.
//
// The paper requires that kernel-level failures "fail in a way that can
// be reflected back into the user program as a run-time exception"
// (§2.2).  These propagate into thread coroutines through co_await.
#pragma once

#include <stdexcept>
#include <string>

namespace lynx {

enum class ErrorKind : std::uint8_t {
  kLinkDestroyed,   // send/receive on a destroyed (or dead-peer) link
  kInvalidLink,     // handle does not name an end this process owns
  kLinkBusy,        // moving an end with unreceived sends / owed replies
  kTypeClash,       // reply/operation signature mismatch
  kOperationRejected,  // server does not serve this operation
  kAborted,         // the thread was aborted at a block point
  kReplyUnwanted,   // server replied but the caller aborted
                    // (detectable on SODA/Chrysalis; NOT on Charlotte)
  kEnclosureLost,   // an enclosed link end is unrecoverable (Charlotte
                    // deviation, paper §3.2.2)
};

[[nodiscard]] constexpr const char* to_string(ErrorKind k) {
  switch (k) {
    case ErrorKind::kLinkDestroyed: return "link-destroyed";
    case ErrorKind::kInvalidLink: return "invalid-link";
    case ErrorKind::kLinkBusy: return "link-busy";
    case ErrorKind::kTypeClash: return "type-clash";
    case ErrorKind::kOperationRejected: return "operation-rejected";
    case ErrorKind::kAborted: return "aborted";
    case ErrorKind::kReplyUnwanted: return "reply-unwanted";
    case ErrorKind::kEnclosureLost: return "enclosure-lost";
  }
  return "?";
}

class LynxError : public std::runtime_error {
 public:
  LynxError(ErrorKind kind, const std::string& detail)
      : std::runtime_error(std::string(to_string(kind)) +
                           (detail.empty() ? "" : ": " + detail)),
        kind_(kind) {}

  [[nodiscard]] ErrorKind kind() const { return kind_; }

 private:
  ErrorKind kind_;
};

}  // namespace lynx
