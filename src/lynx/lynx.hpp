// relynx public API umbrella.
//
// A downstream user writes LYNX-style distributed programs against
// lynx::Process / lynx::ThreadCtx, picks a kernel substrate by
// constructing the matching backend, and runs everything on a
// sim::Engine:
//
//   sim::Engine engine;
//   charlotte::Cluster crystal(engine, 8);
//   lynx::Process server(engine, "server",
//                        lynx::make_charlotte_backend(crystal, net::NodeId(0)));
//   lynx::Process client(engine, "client",
//                        lynx::make_charlotte_backend(crystal, net::NodeId(1)));
//   ... CharlotteBackend::connect(server, client) ...
//   server.spawn_thread("serve", ...); client.spawn_thread("drive", ...);
//   engine.run();
//
// See examples/ for complete programs.
#pragma once

#include "lynx/backend.hpp"
#include "lynx/charlotte_backend.hpp"
#include "lynx/chrysalis_backend.hpp"
#include "lynx/connect.hpp"
#include "lynx/errors.hpp"
#include "lynx/message.hpp"
#include "lynx/runtime.hpp"
#include "lynx/soda_backend.hpp"
