#include "lynx/message.hpp"

#include <cstring>

#include "common/assert.hpp"

namespace lynx {

ValueType type_of(const Value& v) {
  return static_cast<ValueType>(v.index());
}

const char* to_string(ValueType t) {
  switch (t) {
    case ValueType::kInt: return "int";
    case ValueType::kReal: return "real";
    case ValueType::kString: return "string";
    case ValueType::kBytes: return "bytes";
    case ValueType::kLink: return "link";
  }
  return "?";
}

std::vector<ValueType> Message::signature() const {
  std::vector<ValueType> sig;
  sig.reserve(args.size());
  for (const Value& v : args) sig.push_back(type_of(v));
  return sig;
}

std::size_t Message::count_links() const {
  std::size_t n = 0;
  for (const Value& v : args) {
    if (std::holds_alternative<LinkHandle>(v)) ++n;
  }
  return n;
}

Message make_message(std::string op, std::vector<Value> args) {
  return Message{std::move(op), std::move(args)};
}

namespace {

void put_u32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

struct Reader {
  const Bytes& in;
  std::size_t pos = 0;

  std::uint8_t u8() {
    RELYNX_ASSERT_MSG(pos < in.size(), "truncated LYNX message");
    return in[pos++];
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return v;
  }
  Bytes blob(std::size_t n) {
    RELYNX_ASSERT_MSG(pos + n <= in.size(), "truncated LYNX message");
    Bytes out(in.begin() + static_cast<std::ptrdiff_t>(pos),
              in.begin() + static_cast<std::ptrdiff_t>(pos + n));
    pos += n;
    return out;
  }
};

}  // namespace

Serialized serialize(const Message& m) {
  Serialized out;
  put_u32(out.body, static_cast<std::uint32_t>(m.op.size()));
  out.body.insert(out.body.end(), m.op.begin(), m.op.end());
  put_u32(out.body, static_cast<std::uint32_t>(m.args.size()));
  for (const Value& v : m.args) {
    out.body.push_back(static_cast<std::uint8_t>(type_of(v)));
    switch (type_of(v)) {
      case ValueType::kInt:
        put_u64(out.body,
                static_cast<std::uint64_t>(std::get<std::int64_t>(v)));
        break;
      case ValueType::kReal: {
        std::uint64_t bits;
        const double d = std::get<double>(v);
        std::memcpy(&bits, &d, 8);
        put_u64(out.body, bits);
        break;
      }
      case ValueType::kString: {
        const auto& s = std::get<std::string>(v);
        put_u32(out.body, static_cast<std::uint32_t>(s.size()));
        out.body.insert(out.body.end(), s.begin(), s.end());
        break;
      }
      case ValueType::kBytes: {
        const auto& b = std::get<Bytes>(v);
        put_u32(out.body, static_cast<std::uint32_t>(b.size()));
        out.body.insert(out.body.end(), b.begin(), b.end());
        break;
      }
      case ValueType::kLink:
        put_u32(out.body,
                static_cast<std::uint32_t>(out.enclosures.size()));
        out.enclosures.push_back(std::get<LinkHandle>(v));
        break;
    }
  }
  return out;
}

Message deserialize(const Bytes& body,
                    const std::vector<LinkHandle>& enclosures) {
  Reader r{body};
  Message m;
  const std::uint32_t op_len = r.u32();
  const Bytes op = r.blob(op_len);
  m.op.assign(op.begin(), op.end());
  const std::uint32_t argc = r.u32();
  m.args.reserve(argc);
  for (std::uint32_t i = 0; i < argc; ++i) {
    const auto tag = static_cast<ValueType>(r.u8());
    switch (tag) {
      case ValueType::kInt:
        m.args.emplace_back(static_cast<std::int64_t>(r.u64()));
        break;
      case ValueType::kReal: {
        const std::uint64_t bits = r.u64();
        double d;
        std::memcpy(&d, &bits, 8);
        m.args.emplace_back(d);
        break;
      }
      case ValueType::kString: {
        const Bytes s = r.blob(r.u32());
        m.args.emplace_back(std::string(s.begin(), s.end()));
        break;
      }
      case ValueType::kBytes:
        m.args.emplace_back(r.blob(r.u32()));
        break;
      case ValueType::kLink: {
        const std::uint32_t idx = r.u32();
        RELYNX_ASSERT_MSG(idx < enclosures.size(),
                          "enclosure index out of range");
        m.args.emplace_back(enclosures[idx]);
        break;
      }
    }
  }
  return m;
}

}  // namespace lynx
