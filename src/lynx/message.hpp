// LYNX messages: typed operation invocations.
//
// A LYNX remote operation carries an operation name and a list of typed
// parameters; parameters may include *link ends*, whose receipt moves
// the end to the receiving process (paper §2.1).  The runtime serializes
// non-link parameters to bytes (so the kernels charge honest per-byte
// costs) and hands enclosures to the backend, which moves them by
// whatever mechanism its kernel affords.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/strong_id.hpp"

namespace lynx {

struct LinkTag {
  static const char* prefix() { return "L"; }
};
// Runtime-local handle to a link end owned by this process.  Handles are
// process-scoped: a moved end gets a fresh handle in the receiver.
using LinkHandle = common::StrongId<LinkTag>;

using Bytes = std::vector<std::uint8_t>;

// The LYNX parameter types we model (the real language had records and
// arrays; scalars + strings + byte blocks + links exercise everything
// the kernels care about).
using Value = std::variant<std::int64_t, double, std::string, Bytes,
                           LinkHandle>;

enum class ValueType : std::uint8_t {
  kInt = 0,
  kReal = 1,
  kString = 2,
  kBytes = 3,
  kLink = 4,
};

[[nodiscard]] ValueType type_of(const Value& v);
[[nodiscard]] const char* to_string(ValueType t);

struct Message {
  std::string op;            // operation name
  std::vector<Value> args;

  [[nodiscard]] std::vector<ValueType> signature() const;
  [[nodiscard]] std::size_t count_links() const;
};

// Convenience builders.
[[nodiscard]] Message make_message(std::string op, std::vector<Value> args);

// ---- serialization ---------------------------------------------------------
//
// Wire form: op name, then each arg as [tag][payload].  Link args are
// encoded as an index into the side-channel enclosure list; the backend
// substitutes its own representation for each enclosure.

struct Serialized {
  Bytes body;                            // everything but the links
  std::vector<LinkHandle> enclosures;    // in arg order
};

[[nodiscard]] Serialized serialize(const Message& m);
// `enclosures` supplies the (receiver-side) handles for link args.
[[nodiscard]] Message deserialize(const Bytes& body,
                                  const std::vector<LinkHandle>& enclosures);

}  // namespace lynx
