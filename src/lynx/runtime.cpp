#include "lynx/runtime.hpp"

#include <algorithm>

#include "trace/trace.hpp"

namespace lynx {

namespace {

// Conformance-visible error surface.  Every LynxError a thread can feel
// is announced as an "rpc.error" instant (a = ErrorKind) on the runtime
// track before it is thrown, so the reference model (src/check/) can
// judge whether the error was legal in the scenario being explored.
[[noreturn]] void throw_traced(trace::Recorder* rec, std::uint32_t node,
                               std::uint64_t trace, ErrorKind kind,
                               const std::string& detail) {
  if (rec != nullptr) {
    rec->instant(node, "runtime", "rpc.error", trace,
                 static_cast<std::uint64_t>(kind));
  }
  throw LynxError(kind, detail);
}

}  // namespace

// ===================== Process =====================

Process::Process(sim::Engine& engine, std::string name,
                 std::unique_ptr<Backend> backend, RuntimeCosts costs)
    : engine_(&engine),
      name_(std::move(name)),
      backend_(std::move(backend)),
      costs_(costs),
      receive_waiters_(std::make_unique<sim::WaitList>(engine)) {}

Process::~Process() = default;

Process::LinkState* Process::find_link(LinkHandle h) {
  auto it = links_.find(h);
  return it == links_.end() ? nullptr : &it->second;
}

Process::LinkState& Process::require_link(LinkHandle h) {
  LinkState* ls = find_link(h);
  if (ls == nullptr) {
    throw LynxError(ErrorKind::kInvalidLink, "no such link end");
  }
  return *ls;
}

LinkHandle Process::adopt_link(BLink blink) {
  const LinkHandle h = link_ids_.next();
  LinkState ls;
  ls.handle = h;
  ls.blink = blink;
  ls.call_serializer = std::make_unique<sim::WaitList>(*engine_);
  links_.emplace(h, std::move(ls));
  by_blink_.emplace(blink, h);
  fair_order_.push_back(h);
  return h;
}

void Process::drop_link(LinkHandle h) {
  auto it = links_.find(h);
  if (it == links_.end()) return;
  by_blink_.erase(it->second.blink);
  links_.erase(it);
  std::erase(fair_order_, h);
}

void Process::refresh_interest(LinkState& ls) {
  if (ls.destroyed) return;
  backend_->set_interest(ls.blink, ls.open_requests,
                         ls.active_call != nullptr);
}

ThreadId Process::spawn_thread(std::string thread_name, ThreadBody body) {
  const ThreadId tid = thread_ids_.next();
  ThreadState ts;
  ts.id = tid;
  ts.name = std::move(thread_name);
  threads_.emplace(tid, std::move(ts));
  threads_.at(tid).ctx = std::make_unique<ThreadCtx>(*this, tid);
  if (started_) {
    ++live_threads_;
    engine_->spawn(name_ + "/" + threads_.at(tid).name,
                   run_thread_body(tid, std::move(body)));
  } else {
    pending_threads_.emplace_back(tid, std::move(body));
  }
  return tid;
}

void Process::start() {
  RELYNX_ASSERT_MSG(!started_, "Process started twice");
  started_ = true;
  backend_->start([this](BackendEvent ev) { on_backend_event(std::move(ev)); });
  for (auto& [tid, body] : pending_threads_) {
    ++live_threads_;
    engine_->spawn(name_ + "/" + threads_.at(tid).name,
                   run_thread_body(tid, std::move(body)));
  }
  pending_threads_.clear();
}

sim::Task<> Process::run_thread_body(ThreadId tid, ThreadBody body) {
  ThreadState& ts = threads_.at(tid);
  try {
    co_await body(*ts.ctx);
  } catch (const LynxError& e) {
    thread_failures_.push_back(name_ + "/" + threads_.at(tid).name + ": " +
                               e.what());
  }
  --live_threads_;
  if (live_threads_ == 0 && !terminated_) {
    // "Before terminating, each process destroys all of its links."
    terminate();
  }
}

void Process::abort_thread(ThreadId tid) {
  auto it = threads_.find(tid);
  if (it == threads_.end()) return;
  ThreadState& ts = it->second;
  ts.abort_requested = true;
  if (ts.current_send != nullptr) {
    ts.current_send->cancel();
    return;
  }
  if (ts.awaiting_reply_on.valid()) {
    if (LinkState* ls = find_link(ts.awaiting_reply_on);
        ls != nullptr && ls->active_call != nullptr) {
      CallRecord* rec = ls->active_call;
      rec->failed = true;
      rec->error = ErrorKind::kAborted;
      // A reply already on the wire will arrive unwanted; remember to
      // drop it rather than misdeliver it to the next call.
      ++ls->stale_replies_expected;
      backend_->retract_reply_interest(ls->blink);
      rec->wake->fulfill(0);
    }
    return;
  }
  // Blocked in receive (or about to block): wake everyone; the aborted
  // thread sees abort_requested and throws.
  receive_waiters_->wake_all();
}

void Process::terminate() {
  if (terminated_) return;
  terminated_ = true;
  for (auto& [h, ls] : links_) {
    ls.destroyed = true;
    if (ls.active_call != nullptr) {
      ls.active_call->failed = true;
      ls.active_call->error = ErrorKind::kLinkDestroyed;
      ls.active_call->wake->fulfill(0);
      ls.active_call = nullptr;
    }
  }
  backend_->shutdown();
  receive_waiters_->wake_all();
}

void Process::on_backend_event(BackendEvent ev) {
  auto bit = by_blink_.find(ev.link);
  if (bit == by_blink_.end()) return;  // stale event for a dropped end
  LinkState& ls = links_.at(bit->second);

  switch (ev.kind) {
    case BackendEvent::Kind::kRequestArrived:
    case BackendEvent::Kind::kReplyArrived: {
      std::vector<LinkHandle> handles;
      handles.reserve(ev.enclosures.size());
      for (BLink e : ev.enclosures) handles.push_back(adopt_link(e));
      Delivered d{deserialize(ev.body, handles), ev.body, ev.trace};

      if (ev.kind == BackendEvent::Kind::kRequestArrived) {
        if (!declared_ops_.empty() && !declared_ops_.contains(d.msg.op)) {
          // Screening surface for the conformance checker: the request
          // never reaches receive(); the caller will feel
          // kOperationRejected instead of a served reply.
          if (auto* rec = trace::get(*engine_)) {
            rec->instant(backend_->trace_node(), "runtime", "req.reject",
                         ev.trace);
          }
          // Reject: return a %reject reply carrying the enclosures back.
          Message reject;
          reject.op = "%reject";
          for (LinkHandle h : handles) reject.args.emplace_back(h);
          Serialized ser = serialize(reject);
          std::vector<BLink> blinks;
          for (LinkHandle h : ser.enclosures) {
            blinks.push_back(links_.at(h).blink);
          }
          auto ps = backend_->begin_send(
              ls.blink, WireMessage{MsgKind::kReply, std::move(ser.body),
                                    std::move(blinks), ev.trace});
          // fire and forget; drop the moved-back ends
          auto* raw = ps.release();
          engine_->spawn(name_ + "/reject",
                         [](Process* p, PendingSend* send,
                            std::vector<LinkHandle> hs) -> sim::Task<> {
                           (void)co_await send->wait();
                           delete send;
                           for (LinkHandle h : hs) p->drop_link(h);
                         }(this, raw, handles));
          return;
        }
        ls.request_q.push_back(std::move(d));
        receive_waiters_->wake_all();
        return;
      }

      // Reply path.
      if (ls.stale_replies_expected > 0) {
        // Aborted caller: on Charlotte this reply arrives anyway and is
        // silently discarded (the paper's documented deviation); the
        // enclosures it carried are lost with it.
        --ls.stale_replies_expected;
        for (LinkHandle h : handles) drop_link(h);
        return;
      }
      if (ls.active_call != nullptr) {
        CallRecord* rec = ls.active_call;
        rec->reply = std::move(d);
        rec->wake->fulfill(0);
        return;
      }
      ls.reply_q.push_back(std::move(d));
      return;
    }

    case BackendEvent::Kind::kLinkDestroyed: {
      ls.destroyed = true;
      // Death notice surface: a later kLinkDestroyed rpc.error on this
      // process is explained by this instant (a = backend link token).
      if (auto* rec = trace::get(*engine_)) {
        rec->instant(backend_->trace_node(), "runtime", "link.dead",
                     ev.trace, ev.link.value());
      }
      if (ls.active_call != nullptr) {
        ls.active_call->failed = true;
        ls.active_call->error = ErrorKind::kLinkDestroyed;
        ls.active_call->wake->fulfill(0);
        ls.active_call = nullptr;
      }
      receive_waiters_->wake_all();
      return;
    }
  }
}

std::vector<BLink> Process::check_and_stage_enclosures(
    const Message& m, LinkHandle carrier,
    const std::vector<LinkHandle>& handles) {
  (void)m;
  std::vector<BLink> blinks;
  blinks.reserve(handles.size());
  for (LinkHandle h : handles) {
    if (h == carrier) {
      throw LynxError(ErrorKind::kLinkBusy, "cannot enclose carrier end");
    }
    LinkState* enc = find_link(h);
    if (enc == nullptr) {
      throw LynxError(ErrorKind::kInvalidLink, "enclosure not owned");
    }
    if (enc->destroyed) {
      throw LynxError(ErrorKind::kLinkDestroyed, "enclosure destroyed");
    }
    // §2.1: may not move an end with unreceived sent messages or owed
    // replies; we also refuse while local queues hold undelivered
    // messages or a call is outstanding.
    if (enc->owed_replies > 0 || enc->sends_in_flight > 0 ||
        enc->active_call != nullptr || !enc->request_q.empty() ||
        !enc->reply_q.empty()) {
      throw LynxError(ErrorKind::kLinkBusy, "enclosure has traffic");
    }
    blinks.push_back(enc->blink);
  }
  return blinks;
}

// ===================== ThreadCtx =====================

void ThreadCtx::set_trace_context(std::uint64_t t) {
  proc_->threads_.at(id_).trace_ctx = t;
}

std::uint64_t ThreadCtx::trace_context() const {
  return proc_->threads_.at(id_).trace_ctx;
}

void ThreadCtx::check_abort() {
  auto& ts = proc_->threads_.at(id_);
  if (ts.abort_requested) {
    ts.abort_requested = false;
    throw_traced(trace::get(engine()), proc_->backend_->trace_node(), 0,
                 ErrorKind::kAborted, "thread aborted");
  }
}

sim::Task<void> ThreadCtx::delay(sim::Duration d) {
  check_abort();
  co_await engine().sleep(d);
  check_abort();
}

sim::Task<LocalLinkPair> ThreadCtx::new_link() {
  check_abort();
  co_await engine().sleep(proc_->costs_.per_operation);
  auto [b1, b2] = co_await proc_->backend_->make_link();
  co_return LocalLinkPair{proc_->adopt_link(b1), proc_->adopt_link(b2)};
}

sim::Task<void> ThreadCtx::destroy(LinkHandle link) {
  check_abort();
  Process::LinkState& ls = proc_->require_link(link);
  co_await engine().sleep(proc_->costs_.per_operation);
  if (!ls.destroyed) {
    co_await proc_->backend_->destroy(ls.blink);
  }
  proc_->drop_link(link);
}

void ThreadCtx::enable_requests(LinkHandle link) {
  Process::LinkState& ls = proc_->require_link(link);
  if (ls.destroyed) {
    throw LynxError(ErrorKind::kLinkDestroyed, "enable on destroyed link");
  }
  ls.open_requests = true;
  proc_->refresh_interest(ls);
}

void ThreadCtx::disable_requests(LinkHandle link) {
  Process::LinkState& ls = proc_->require_link(link);
  ls.open_requests = false;
  if (!ls.destroyed) proc_->refresh_interest(ls);
}

sim::Task<Message> ThreadCtx::call(LinkHandle link, Message request) {
  check_abort();
  Process& p = *proc_;
  trace::Recorder* rec = trace::get(engine());
  const std::uint32_t tnode = p.backend_->trace_node();
  {
    Process::LinkState& ls = p.require_link(link);
    if (ls.destroyed) {
      throw_traced(rec, tnode, 0, ErrorKind::kLinkDestroyed,
                   "call on destroyed link");
    }
    // One outstanding call per link: later callers queue (their sends
    // would violate stop-and-wait anyway).  The claim is taken
    // synchronously, BEFORE the gather sleep, so concurrent callers
    // cannot slip past the check while this one is still marshalling.
    while (true) {
      Process::LinkState* cur = p.find_link(link);
      if (cur == nullptr || cur->destroyed) {
        throw_traced(rec, tnode, 0, ErrorKind::kLinkDestroyed,
                     "link vanished");
      }
      if (!cur->call_claimed && cur->active_call == nullptr &&
          cur->sends_in_flight == 0) {
        cur->call_claimed = true;
        break;
      }
      co_await cur->call_serializer->wait();
      check_abort();
    }
  }

  // Causal identity: join the thread's context chain if one is set,
  // otherwise start a fresh trace for this operation.  The id rides in
  // the WireMessage and comes back with the reply, so every kernel frame
  // and fault event in between is attributable to this call.
  std::uint64_t call_trace = p.threads_.at(id_).trace_ctx;
  if (rec != nullptr && call_trace == 0) call_trace = rec->new_trace();
  trace::SpanScope call_span(rec, tnode, "runtime", "call", call_trace);

  // gather + type bookkeeping
  trace::SpanScope gather_span(rec, tnode, "runtime", "call.gather",
                               call_trace);
  Serialized ser = serialize(request);
  co_await engine().sleep(
      p.costs_.per_operation +
      p.costs_.per_byte * static_cast<sim::Duration>(ser.body.size()));
  gather_span.end();

  struct ClaimGuard {
    Process* p;
    LinkHandle link;
    bool armed = true;
    void release() {
      if (!armed) return;
      armed = false;
      if (auto* cur = p->find_link(link)) {
        cur->call_claimed = false;
        cur->call_serializer->wake_one();
      }
    }
    ~ClaimGuard() { release(); }
  } claim{&p, link};

  Process::LinkState& ls = p.require_link(link);
  std::vector<BLink> blinks =
      p.check_and_stage_enclosures(request, link, ser.enclosures);

  // "A now expects a reply on L and starts a receive activity": the
  // reply queue opens when the request is SENT (paper §2.1/§3.2.1),
  // which is exactly what makes unwanted deliveries possible on
  // Charlotte.
  p.backend_->set_interest(ls.blink, ls.open_requests, true);
  trace::SpanScope send_span(rec, tnode, "runtime", "call.send", call_trace,
                             ser.body.size());
  auto ps = p.backend_->begin_send(
      ls.blink, WireMessage{MsgKind::kRequest, ser.body, blinks, call_trace});
  auto& ts = p.threads_.at(id_);
  ts.current_send = ps.get();
  ++ls.sends_in_flight;
  SendOutcome out = co_await ps->wait();
  ts.current_send = nullptr;
  {
    Process::LinkState* cur = p.find_link(link);
    if (cur != nullptr) --cur->sends_in_flight;
  }
  send_span.end();

  switch (out.result) {
    case SendResult::kDelivered:
      for (LinkHandle h : ser.enclosures) p.drop_link(h);
      break;
    case SendResult::kCancelled: {
      // Enclosures come back unless the backend lost them (Charlotte).
      for (BLink lost : out.lost_enclosures) {
        if (auto it = p.by_blink_.find(lost); it != p.by_blink_.end()) {
          p.drop_link(it->second);
        }
      }
      if (auto* cur = p.find_link(link)) p.refresh_interest(*cur);
      ts.abort_requested = false;
      throw_traced(rec, tnode, call_trace, ErrorKind::kAborted,
                   "request aborted in flight");
    }
    case SendResult::kLinkDestroyed: {
      auto* cur = p.find_link(link);
      if (cur != nullptr) cur->destroyed = true;
      // A reply already queued for this call proves the request WAS
      // delivered: the peer answered it and only the delivery ack (or
      // the link itself, afterwards) was lost.  Hand the caller its
      // reply; the destroyed link bites on the NEXT use.
      if (cur == nullptr || cur->reply_q.empty()) {
        throw_traced(rec, tnode, call_trace, ErrorKind::kLinkDestroyed,
                     "request undeliverable");
      }
      break;
    }
    case SendResult::kReplyUnwanted:
      RELYNX_ASSERT_MSG(false, "request cannot be an unwanted reply");
  }

  // ---- await the reply (block point) ---------------------------------
  trace::SpanScope wait_span(rec, tnode, "runtime", "call.wait", call_trace);
  Process::LinkState* lsp = p.find_link(link);
  if (lsp == nullptr || (lsp->destroyed && lsp->reply_q.empty())) {
    throw_traced(rec, tnode, call_trace, ErrorKind::kLinkDestroyed,
                 "link died before reply");
  }
  Process::Delivered reply_msg{};
  if (!lsp->reply_q.empty()) {
    reply_msg = std::move(lsp->reply_q.front());
    lsp->reply_q.pop_front();
  } else {
    sim::OneShot<int> wake(engine());
    Process::CallRecord call_rec;
    call_rec.wake = &wake;
    lsp->active_call = &call_rec;
    ts.awaiting_reply_on = link;
    p.refresh_interest(*lsp);
    (void)co_await wake.take();
    ts.awaiting_reply_on = LinkHandle::invalid();
    if (auto* cur = p.find_link(link)) {
      cur->active_call = nullptr;
      if (!cur->destroyed) p.refresh_interest(*cur);
    }
    if (call_rec.failed) {
      if (call_rec.error == ErrorKind::kAborted) ts.abort_requested = false;
      throw_traced(rec, tnode, call_trace, call_rec.error,
                   "call failed awaiting reply");
    }
    RELYNX_ASSERT(call_rec.reply.has_value());
    reply_msg = std::move(*call_rec.reply);
  }
  wait_span.end();

  // scatter + type check
  trace::SpanScope scatter_span(rec, tnode, "runtime", "call.scatter",
                                call_trace, reply_msg.raw_body.size());
  co_await engine().sleep(
      p.costs_.per_operation +
      p.costs_.per_byte *
          static_cast<sim::Duration>(reply_msg.raw_body.size()));
  if (reply_msg.msg.op == "%reject") {
    throw_traced(rec, tnode, call_trace, ErrorKind::kOperationRejected,
                 request.op);
  }
  if (reply_msg.msg.op != request.op) {
    throw_traced(rec, tnode, call_trace, ErrorKind::kTypeClash,
                 "reply op '" + reply_msg.msg.op + "' for request '" +
                     request.op + "'");
  }
  scatter_span.end();
  call_span.end();
  ++p.ops_;
  check_abort();
  co_return reply_msg.msg;
}

sim::Task<Incoming> ThreadCtx::receive() {
  Process& p = *proc_;
  for (;;) {
    check_abort();
    if (p.terminated_) {
      throw_traced(trace::get(engine()), p.backend_->trace_node(), 0,
                   ErrorKind::kLinkDestroyed, "process terminated");
    }
    // Fair scan: rotate over links, starting past the last served one.
    const std::size_t n = p.fair_order_.size();
    bool any_open_alive = false;
    bool any_open = false;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t idx = (p.fair_cursor_ + k) % n;
      Process::LinkState* ls = p.find_link(p.fair_order_[idx]);
      if (ls == nullptr || !ls->open_requests) continue;
      any_open = true;
      if (!ls->destroyed) any_open_alive = true;
      if (ls->request_q.empty()) continue;

      Process::Delivered d = std::move(ls->request_q.front());
      ls->request_q.pop_front();
      p.fair_cursor_ = idx + 1;
      {
        trace::SpanScope scatter(trace::get(engine()),
                                 p.backend_->trace_node(), "runtime",
                                 "recv.scatter", d.trace, d.raw_body.size());
        co_await engine().sleep(
            p.costs_.per_operation +
            p.costs_.per_byte * static_cast<sim::Duration>(d.raw_body.size()));
      }
      const std::uint64_t token = p.next_token_++;
      p.owed_[token] = ls->handle;
      ++ls->owed_replies;
      ++p.ops_;
      co_return Incoming{ls->handle, std::move(d.msg), token, d.trace};
    }
    if (any_open && !any_open_alive) {
      throw_traced(trace::get(engine()), p.backend_->trace_node(), 0,
                   ErrorKind::kLinkDestroyed,
                   "all open request queues destroyed");
    }
    co_await p.receive_waiters_->wait();
  }
}

sim::Task<void> ThreadCtx::reply(const Incoming& incoming, Message reply_msg) {
  check_abort();
  Process& p = *proc_;
  trace::Recorder* rec = trace::get(engine());
  const std::uint32_t tnode = p.backend_->trace_node();
  auto owed = p.owed_.find(incoming.token);
  if (owed == p.owed_.end()) {
    throw_traced(rec, tnode, incoming.trace, ErrorKind::kInvalidLink,
                 "no such reply obligation");
  }
  const LinkHandle link = owed->second;
  Process::LinkState* ls = p.find_link(link);
  if (ls == nullptr || ls->destroyed) {
    p.owed_.erase(owed);
    throw_traced(rec, tnode, incoming.trace, ErrorKind::kLinkDestroyed,
                 "reply on destroyed link");
  }

  reply_msg.op = incoming.msg.op;  // replies answer the operation called
  trace::SpanScope gather_span(rec, tnode, "runtime", "reply.gather",
                               incoming.trace);
  Serialized ser = serialize(reply_msg);
  co_await engine().sleep(
      p.costs_.per_operation +
      p.costs_.per_byte * static_cast<sim::Duration>(ser.body.size()));
  gather_span.end();
  std::vector<BLink> blinks =
      p.check_and_stage_enclosures(reply_msg, link, ser.enclosures);

  trace::SpanScope send_span(rec, tnode, "runtime", "reply.send",
                             incoming.trace, ser.body.size());
  auto ps = p.backend_->begin_send(
      ls->blink,
      WireMessage{MsgKind::kReply, ser.body, blinks, incoming.trace});
  auto& ts = p.threads_.at(id_);
  ts.current_send = ps.get();
  ++ls->sends_in_flight;
  SendOutcome out = co_await ps->wait();
  ts.current_send = nullptr;
  send_span.end();
  if (auto* cur = p.find_link(link)) {
    --cur->sends_in_flight;
    cur->call_serializer->wake_one();
  }
  p.owed_.erase(incoming.token);
  if (auto* cur = p.find_link(link); cur != nullptr) --cur->owed_replies;

  switch (out.result) {
    case SendResult::kDelivered:
      for (LinkHandle h : ser.enclosures) p.drop_link(h);
      ++p.ops_;
      co_return;
    case SendResult::kCancelled:
      throw_traced(rec, tnode, incoming.trace, ErrorKind::kAborted,
                   "reply aborted in flight");
    case SendResult::kLinkDestroyed:
      throw_traced(rec, tnode, incoming.trace, ErrorKind::kLinkDestroyed,
                   "reply undeliverable");
    case SendResult::kReplyUnwanted:
      // Capability (4): SODA/Chrysalis backends detect an aborted
      // caller; the server feels the exception the language defines.
      throw_traced(rec, tnode, incoming.trace, ErrorKind::kReplyUnwanted,
                   incoming.msg.op);
  }
}

}  // namespace lynx
