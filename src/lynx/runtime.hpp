// The LYNX run-time package (paper §2).
//
// A lynx::Process owns a set of cooperating threads (coroutines in
// mutual exclusion — automatic in the single-threaded simulation), a
// table of link ends, and a Backend.  It implements the communication
// semantics of §2.1:
//   * per-link-end request and reply queues;
//   * request queues opened/closed under explicit process control;
//   * reply queues open exactly while a thread awaits a reply;
//   * block points that wait for one of the open queues to fill, with
//     round-robin fairness ("no queue is ignored forever");
//   * messages in one queue received in order;
//   * each message blocks the sending coroutine (stop-and-wait; no
//     buffering of messages in transit required);
//   * link ends moved by enclosure, with the §2.1 restriction: an end
//     with unreceived outgoing messages or owed replies cannot move;
//   * kernel failures reflected as LynxError exceptions.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lynx/backend.hpp"
#include "lynx/errors.hpp"
#include "lynx/message.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"

namespace lynx {

class Process;
class ThreadCtx;

struct ThreadTag {
  static const char* prefix() { return "t"; }
};
using ThreadId = common::StrongId<ThreadTag, std::uint32_t>;

// A received request, to be answered with ThreadCtx::reply.
struct Incoming {
  LinkHandle link;
  Message msg;
  std::uint64_t token = 0;  // reply obligation
  // Causal identity of the RPC that carried this request (0 = untraced);
  // the reply inherits it so one TraceId follows the full round trip.
  std::uint64_t trace = 0;
};

// Run-time package overhead per operation: the "gather and scatter
// parameters, block and unblock coroutines, establish default exception
// handlers, enforce flow control, perform type checking, update tables"
// work of §3.3, charged in simulated time.
struct RuntimeCosts {
  sim::Duration per_operation = sim::usec(1000);  // VAX-class default
  sim::Duration per_byte = sim::nsec(750);
};

// Per-machine presets, calibrated against §3.3 / §4.3 / §5.3: the delta
// between LYNX and raw-kernel timings is run-time package overhead.
[[nodiscard]] inline RuntimeCosts vax_runtime_costs() {
  return RuntimeCosts{sim::usec(500), sim::nsec(750)};   // Charlotte
}
[[nodiscard]] inline RuntimeCosts pdp11_runtime_costs() {
  return RuntimeCosts{sim::usec(600), sim::nsec(400)};   // SODA
}
[[nodiscard]] inline RuntimeCosts mc68000_runtime_costs() {
  return RuntimeCosts{sim::usec(380), sim::nsec(120)};   // Chrysalis
}

// Both ends of a freshly made link (both owned by this process until
// one is enclosed in a message).
struct LocalLinkPair {
  LinkHandle end1;
  LinkHandle end2;
};

class Process {
 public:
  Process(sim::Engine& engine, std::string name,
          std::unique_ptr<Backend> backend, RuntimeCosts costs = {});
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  ~Process();

  [[nodiscard]] sim::Engine& engine() { return *engine_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Backend& backend() { return *backend_; }
  [[nodiscard]] const RuntimeCosts& costs() const { return costs_; }

  // Registers a thread; bodies start running once start() is called
  // (threads spawned later start immediately).  Bodies must be created
  // from coroutine *functions* taking ThreadCtx& (CP.51: no capturing
  // coroutine lambdas).
  using ThreadBody = std::function<sim::Task<>(ThreadCtx&)>;
  ThreadId spawn_thread(std::string thread_name, ThreadBody body);

  void start();

  // Aborts a thread at its current block point: it feels kAborted.  If
  // it is mid-send, the send is cancelled (Charlotte: kernel Cancel
  // racing delivery); if it awaits a reply, reply interest is retracted.
  void abort_thread(ThreadId tid);

  // Destroys all links and stops serving (normal exit or crash).
  void terminate();
  [[nodiscard]] bool terminated() const { return terminated_; }

  [[nodiscard]] std::size_t live_threads() const { return live_threads_; }
  [[nodiscard]] const std::vector<std::string>& thread_failures() const {
    return thread_failures_;
  }

  // Adopts a backend link token created outside a thread (bootstrap:
  // the loader wiring two processes together; see each backend's
  // connect() helper).
  [[nodiscard]] LinkHandle adopt_link(BLink blink);

  // Declared operation names (optional): when non-empty, incoming
  // requests whose op is not declared are rejected and the caller feels
  // kOperationRejected.
  void declare_operation(std::string op) {
    declared_ops_.insert(std::move(op));
  }

  // ---- instrumentation (experiments E4/E9) ----------------------------
  [[nodiscard]] std::uint64_t operations_completed() const { return ops_; }

 private:
  friend class ThreadCtx;

  struct Delivered {
    Message msg;
    Bytes raw_body;  // kept for size accounting
    std::uint64_t trace = 0;
  };
  struct CallRecord {
    // Owned by the call() frame; registered in the link while waiting.
    sim::OneShot<int>* wake = nullptr;
    std::optional<Delivered> reply;
    bool failed = false;
    ErrorKind error = ErrorKind::kLinkDestroyed;
  };
  struct LinkState {
    LinkHandle handle;
    BLink blink;
    bool open_requests = false;
    bool destroyed = false;
    std::deque<Delivered> request_q;
    std::deque<Delivered> reply_q;
    CallRecord* active_call = nullptr;  // at most one outstanding call
    std::unique_ptr<sim::WaitList> call_serializer;
    int owed_replies = 0;
    int sends_in_flight = 0;
    int stale_replies_expected = 0;  // replies to aborted callers
    bool call_claimed = false;       // a caller holds the link (pre-send)
  };
  struct ThreadState {
    ThreadId id;
    std::string name;
    std::unique_ptr<ThreadCtx> ctx;
    PendingSend* current_send = nullptr;
    LinkHandle awaiting_reply_on;  // valid while blocked in call()
    bool abort_requested = false;
    // When non-zero, calls made by this thread join this causal chain
    // instead of starting a new one (set via ThreadCtx::set_trace_context).
    std::uint64_t trace_ctx = 0;
  };

  void on_backend_event(BackendEvent ev);
  [[nodiscard]] LinkState& require_link(LinkHandle h);
  [[nodiscard]] LinkState* find_link(LinkHandle h);
  void refresh_interest(LinkState& ls);
  [[nodiscard]] sim::Task<> run_thread_body(ThreadId tid, ThreadBody body);
  void drop_link(LinkHandle h);
  [[nodiscard]] std::vector<BLink> check_and_stage_enclosures(
      const Message& m, LinkHandle carrier,
      const std::vector<LinkHandle>& handles);

  sim::Engine* engine_;
  std::string name_;
  std::unique_ptr<Backend> backend_;
  RuntimeCosts costs_;
  bool started_ = false;
  bool terminated_ = false;

  std::unordered_map<LinkHandle, LinkState> links_;
  std::unordered_map<BLink, LinkHandle> by_blink_;
  common::IdAllocator<LinkHandle> link_ids_;
  std::unordered_map<ThreadId, ThreadState> threads_;
  common::IdAllocator<ThreadId> thread_ids_;
  std::vector<std::pair<ThreadId, ThreadBody>> pending_threads_;
  std::size_t live_threads_ = 0;
  std::vector<std::string> thread_failures_;

  std::unique_ptr<sim::WaitList> receive_waiters_;
  std::vector<LinkHandle> fair_order_;  // round-robin cursor base
  std::size_t fair_cursor_ = 0;
  std::unordered_set<std::string> declared_ops_;
  std::uint64_t next_token_ = 1;
  std::unordered_map<std::uint64_t, LinkHandle> owed_;
  std::uint64_t ops_ = 0;
};

// Thread-facing operations; one ThreadCtx per thread, owned by the
// Process and guaranteed to outlive the thread body.
class ThreadCtx {
 public:
  ThreadCtx(Process& p, ThreadId id) : proc_(&p), id_(id) {}

  [[nodiscard]] Process& process() { return *proc_; }
  [[nodiscard]] sim::Engine& engine() { return proc_->engine(); }
  [[nodiscard]] ThreadId id() const { return id_; }

  // ---- communication statements --------------------------------------
  // connect: send a request and await the reply (a block point).
  [[nodiscard]] sim::Task<Message> call(LinkHandle link, Message request);
  // accept side: open/close the request queue of a link.
  void enable_requests(LinkHandle link);
  void disable_requests(LinkHandle link);
  // block point: receive the next request from any open queue (fair).
  [[nodiscard]] sim::Task<Incoming> receive();
  // answer a received request (blocks until delivered, like any send).
  [[nodiscard]] sim::Task<void> reply(const Incoming& incoming,
                                      Message reply_msg);

  // ---- link management -------------------------------------------------
  [[nodiscard]] sim::Task<LocalLinkPair> new_link();
  [[nodiscard]] sim::Task<void> destroy(LinkHandle link);

  // local computation time
  [[nodiscard]] sim::Task<void> delay(sim::Duration d);

  // ---- causal tracing --------------------------------------------------
  // Joins this thread's future calls to an existing causal chain (0
  // reverts to fresh TraceIds per call).  Contexts do not survive
  // co_await boundaries implicitly; this is the explicit propagation
  // point for multi-hop chains (see examples/pipeline.cpp).
  void set_trace_context(std::uint64_t t);
  [[nodiscard]] std::uint64_t trace_context() const;

 private:
  void check_abort();
  Process* proc_;
  ThreadId id_;
};

}  // namespace lynx
