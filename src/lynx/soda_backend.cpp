#include "lynx/soda_backend.hpp"

#include <algorithm>

namespace lynx {

namespace {

constexpr std::size_t kBigBuffer = 64 * 1024;

// put data layout: [u8 n_enc][per enc: u64 my_name, u64 peer_name,
// u32 hint_pid][body...]
soda::Payload encode_put(const Bytes& body,
                         const std::vector<std::array<std::uint64_t, 3>>&
                             encs) {
  soda::Payload out;
  out.reserve(1 + encs.size() * 20 + body.size());
  out.push_back(static_cast<std::uint8_t>(encs.size()));
  for (const auto& e : encs) {
    for (int w = 0; w < 2; ++w) {
      for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<std::uint8_t>(e[static_cast<std::size_t>(w)] >> (8 * i)));
      }
    }
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<std::uint8_t>(e[2] >> (8 * i)));
    }
  }
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

struct DecodedPut {
  Bytes body;
  std::vector<std::array<std::uint64_t, 3>> encs;
};

DecodedPut decode_put(const soda::Payload& raw) {
  DecodedPut out;
  RELYNX_ASSERT(!raw.empty());
  std::size_t pos = 0;
  const std::uint8_t n = raw[pos++];
  for (std::uint8_t k = 0; k < n; ++k) {
    RELYNX_ASSERT(pos + 20 <= raw.size());
    std::array<std::uint64_t, 3> e{};
    for (int w = 0; w < 2; ++w) {
      for (int i = 0; i < 8; ++i) {
        e[static_cast<std::size_t>(w)] |=
            static_cast<std::uint64_t>(raw[pos++]) << (8 * i);
      }
    }
    for (int i = 0; i < 4; ++i) {
      e[2] |= static_cast<std::uint64_t>(raw[pos++]) << (8 * i);
    }
    out.encs.push_back(e);
  }
  out.body.assign(raw.begin() + static_cast<std::ptrdiff_t>(pos), raw.end());
  return out;
}

soda::Payload encode_name(soda::Name name) {
  soda::Payload out(8);
  for (int i = 0; i < 8; ++i) {
    out[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(name.value() >> (8 * i));
  }
  return out;
}

soda::Name decode_name(const soda::Payload& raw) {
  RELYNX_ASSERT(raw.size() >= 8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(raw[static_cast<std::size_t>(i)]) << (8 * i);
  }
  return soda::Name(v);
}

}  // namespace

// A SODA send in flight.
class SodaPendingSend final : public PendingSend {
 public:
  SodaPendingSend(SodaBackend& backend, std::uint64_t out_id,
                  sim::Engine& engine)
      : backend_(&backend), out_id_(out_id), done_(engine) {}

  sim::Task<SendOutcome> wait() override {
    SendOutcome out = co_await done_.take();
    co_return out;
  }

  void cancel() override {
    if (settled_) return;
    backend_->request_cancel(out_id_);
  }

  void settle(SendOutcome out) {
    if (settled_) return;
    settled_ = true;
    done_.fulfill(std::move(out));
  }

 private:
  friend class SodaBackend;
  SodaBackend* backend_;
  std::uint64_t out_id_;
  sim::OneShot<SendOutcome> done_;
  bool settled_ = false;
};

// ===================== setup =====================

SodaBackend::SodaBackend(soda::Network& network, SodaDirectory& directory,
                         net::NodeId node, SodaBackendParams params)
    : network_(&network),
      directory_(&directory),
      node_(node),
      params_(params),
      pid_(network.create_process(node)),
      drained_(std::make_unique<sim::WaitList>(network.engine())),
      ready_(std::make_unique<sim::Gate>(network.engine())) {}

SodaBackend::~SodaBackend() = default;

void SodaBackend::start(Sink sink) {
  RELYNX_ASSERT_MSG(!running_, "backend started twice");
  sink_ = std::move(sink);
  running_ = true;
  network_->engine().spawn("soda-pump", pump());
}

sim::Task<> SodaBackend::pump() {
  soda::Kernel& k = network_->kernel_of(pid_);
  {
    freeze_name_ = co_await k.generate_name(pid_);
    (void)co_await k.advertise(pid_, freeze_name_);
    directory_->processes.push_back({pid_, freeze_name_});
    comm_ready_ = true;
    ready_->open();
  }
  for (;;) {
    if (!running_ && !draining_) break;
    soda::Interrupt intr = co_await k.next_interrupt(pid_);
    if (!running_ && !draining_) break;
    on_interrupt(intr);
  }
}

SodaBackend::SLink* SodaBackend::find(BLink token) {
  auto it = links_.find(token);
  return it == links_.end() ? nullptr : &it->second;
}

SodaBackend::SLink* SodaBackend::find_by_name(soda::Name name) {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : find(it->second);
}

void SodaBackend::remember_move(soda::Name name, soda::Pid new_owner) {
  moved_cache_.emplace_back(name, new_owner);
  if (moved_cache_.size() > params_.moved_cache_capacity) {
    // Forget (and un-advertise) the oldest entry: future stragglers must
    // fall back to discover / freeze (experiment E10).
    auto [old_name, owner] = moved_cache_.front();
    moved_cache_.pop_front();
    network_->engine().spawn(
        "soda-unadvertise",
        [](soda::Kernel* k, soda::Pid me, soda::Name n) -> sim::Task<> {
          (void)co_await k->unadvertise(me, n);
        }(&network_->kernel_of(pid_), pid_, old_name));
  }
}

sim::Task<std::pair<BLink, BLink>> SodaBackend::make_link() {
  while (!comm_ready_) co_await ready_->wait();
  soda::Kernel& k = network_->kernel_of(pid_);
  const soda::Name n1 = co_await k.generate_name(pid_);
  const soda::Name n2 = co_await k.generate_name(pid_);
  (void)co_await k.advertise(pid_, n1);
  (void)co_await k.advertise(pid_, n2);
  const BLink a = blink_ids_.next();
  const BLink b = blink_ids_.next();
  links_.emplace(a, SLink{a, n1, n2, pid_, false, false, false, false,
                          {}, {}, soda::ReqId::invalid()});
  links_.emplace(b, SLink{b, n2, n1, pid_, false, false, false, false,
                          {}, {}, soda::ReqId::invalid()});
  by_name_.emplace(n1, a);
  by_name_.emplace(n2, b);
  co_return std::pair(a, b);
}

// ===================== sending =====================

std::unique_ptr<PendingSend> SodaBackend::begin_send(BLink token,
                                                     WireMessage msg) {
  const std::uint64_t id = next_out_id_++;
  auto ps =
      std::make_unique<SodaPendingSend>(*this, id, network_->engine());
  OutSend out;
  out.id = id;
  out.link = token;
  out.kind = msg.kind;
  out.ps = ps.get();
  out.trace = msg.trace_id;
  std::vector<std::array<std::uint64_t, 3>> encs;
  for (BLink e : msg.enclosures) {
    SLink* rec = find(e);
    RELYNX_ASSERT_MSG(rec != nullptr, "unknown enclosure token");
    encs.push_back({rec->my_name.value(), rec->peer_name.value(),
                    rec->peer_hint.value()});
    out.enclosure_tokens.push_back(e);
  }
  out.data = encode_put(msg.body, encs);
  outs_.emplace(id, std::move(out));
  network_->engine().spawn("soda-send", issue_send(id));
  return ps;
}

sim::Task<> SodaBackend::issue_send(std::uint64_t out_id) {
  // Frozen processes cease execution of everything but searches (§4.2).
  while (freeze_count_ > 0) {
    co_await network_->engine().sleep(sim::msec(1));
  }
  auto it = outs_.find(out_id);
  if (it == outs_.end()) co_return;
  OutSend& out = it->second;
  SLink* link = find(out.link);
  if (link == nullptr || link->destroyed) {
    resolve_out(out_id, SendOutcome{SendResult::kLinkDestroyed, {}});
    co_return;
  }
  const soda::Oob oob{
      static_cast<std::uint32_t>(out.kind == MsgKind::kRequest
                                     ? Oop::kRequestMsg
                                     : Oop::kReplyMsg),
      0};
  out.target = link->peer_hint;
  ++requests_issued_;
  ++stats_.requests_issued;
  auto req = co_await network_->kernel_of(pid_).request(
      pid_, link->peer_hint, link->peer_name, oob, out.data, 0, out.trace);
  auto it2 = outs_.find(out_id);
  if (it2 == outs_.end()) co_return;
  if (!req.ok()) {
    if (req.error() == soda::Status::kTooManyRequests) {
      // the §4.2.1 outstanding-requests limit: back off and retry
      network_->engine().schedule(sim::msec(10), [this, out_id] {
        network_->engine().spawn("soda-resend", issue_send(out_id));
      });
      co_return;
    }
    // kNoSuchProcess etc.: the hint names a pid that never existed
    network_->engine().spawn("soda-fix", hint_fix_and_resend(out_id));
    co_return;
  }
  it2->second.req = req.value();
  out_by_req_[req.value()] = out_id;
  // Early reply resolve (DESIGN.md §12): the request is on the wire and
  // the kernel retries/redirects on its own — "the requesting user can
  // proceed" (§4.1).  Replies carry no further protocol obligations for
  // the sending thread (the caller is parked waiting for exactly these
  // bytes), so release it now instead of holding it for the full accept
  // round trip.  Replies moving enclosures still wait: the move
  // protocol's bookkeeping is keyed to the completion.
  OutSend& placed = it2->second;
  SLink* link2 = find(placed.link);
  if (placed.kind == MsgKind::kReply && link2 != nullptr &&
      link2->peer_reply_unwanted) {
    // The caller hinted (via our status signal) that it aborted: hold
    // the reply statement for the kernel round trip so the peer's
    // authoritative flag can answer REPLY-UNWANTED.  Consume the hint.
    link2->peer_reply_unwanted = false;
  } else if (placed.kind == MsgKind::kReply &&
             placed.enclosure_tokens.empty() && placed.ps != nullptr &&
             !placed.cancel_requested) {
    placed.ps->settle(SendOutcome{SendResult::kDelivered, {}});
    placed.ps = nullptr;
    placed.early_resolved = true;
  }
}

void SodaBackend::resolve_out(std::uint64_t out_id, SendOutcome outcome) {
  auto it = outs_.find(out_id);
  if (it == outs_.end()) return;
  if (it->second.req.valid()) out_by_req_.erase(it->second.req);
  if (it->second.ps != nullptr) it->second.ps->settle(std::move(outcome));
  outs_.erase(it);
  note_drain_progress();
}

bool SodaBackend::has_unsettled_early() const {
  for (const auto& [id, out] : outs_) {
    if (out.early_resolved) return true;
  }
  return false;
}

void SodaBackend::note_drain_progress() {
  if (draining_ && !has_unsettled_early()) drained_->wake_all();
}

void SodaBackend::request_cancel(std::uint64_t out_id) {
  auto it = outs_.find(out_id);
  if (it == outs_.end()) return;
  it->second.cancel_requested = true;
  network_->engine().spawn("soda-cancel", issue_cancel(out_id));
}

sim::Task<> SodaBackend::issue_cancel(std::uint64_t out_id) {
  auto it = outs_.find(out_id);
  if (it == outs_.end()) co_return;
  OutSend& out = it->second;
  SLink* link = find(out.link);
  if (link == nullptr || !out.req.valid()) co_return;
  // Ask the peer to revoke our parked put.  If it was already accepted
  // the peer answers TooLate and the normal completion stands.
  const soda::Oob oob{static_cast<std::uint32_t>(Oop::kCancel),
                      static_cast<std::uint32_t>(out.req.value())};
  (void)co_await network_->kernel_of(pid_).request(
      pid_, link->peer_hint, link->peer_name, oob, {}, 0);
}

// ===================== interrupts =====================

void SodaBackend::on_interrupt(const soda::Interrupt& intr) {
  if (const auto* r = std::get_if<soda::RequestInterrupt>(&intr)) {
    on_request(*r);
  } else if (const auto* c = std::get_if<soda::CompletionInterrupt>(&intr)) {
    on_completion(*c);
  } else if (const auto* x = std::get_if<soda::CrashInterrupt>(&intr)) {
    on_crash_or_reject(x->request);
  } else if (const auto* j = std::get_if<soda::RejectInterrupt>(&intr)) {
    on_crash_or_reject(j->request);
  }
}

void SodaBackend::on_request(const soda::RequestInterrupt& r) {
  const auto op = static_cast<Oop>(r.oob[0]);
  switch (op) {
    case Oop::kRequestMsg:
    case Oop::kReplyMsg: {
      SLink* link = find_by_name(r.name);
      if (link == nullptr || link->destroyed) {
        // Stragglers: a recently-moved end answers from the cache, an
        // unknown one is (assumed) destroyed.
        for (const auto& [name, owner] : moved_cache_) {
          if (name == r.name) {
            ++stats_.moved_redirects;
            network_->engine().spawn(
                "soda-redirect",
                accept_with(r.request, Oop::kMoved, owner.value()));
            return;
          }
        }
        network_->engine().spawn("soda-dead",
                                 accept_with(r.request, Oop::kDestroyed, 0));
        return;
      }
      if (op == Oop::kReplyMsg) {
        if (link->reply_unwanted) {
          // capability (4): the caller aborted; tell the replier.
          link->reply_unwanted = false;
          network_->engine().spawn(
              "soda-unwanted",
              accept_with(r.request, Oop::kReplyUnwanted, 0));
          return;
        }
        // Replies are always wanted: accept at once.
        network_->engine().spawn(
            "soda-reply-accept",
            accept_reply(link->token, r.request, r.trace));
        return;
      }
      // LYNX request: PARK until the runtime wants it — screening by
      // (not) accepting, the whole point of lesson two.
      parked_.emplace(r.request, ParkedInfo{link->token, op, r.from,
                                            r.send_bytes, r.trace});
      link->parked_requests.push_back(r.request);
      maybe_accept_parked(*link);
      return;
    }
    case Oop::kSignal: {
      SLink* link = find_by_name(r.name);
      if (link == nullptr || link->destroyed) {
        for (const auto& [name, owner] : moved_cache_) {
          if (name == r.name) {
            ++stats_.moved_redirects;
            network_->engine().spawn(
                "soda-redirect",
                accept_with(r.request, Oop::kMoved, owner.value()));
            return;
          }
        }
        network_->engine().spawn("soda-dead",
                                 accept_with(r.request, Oop::kDestroyed, 0));
        return;
      }
      parked_.emplace(r.request,
                      ParkedInfo{link->token, op, r.from, 0});
      link->parked_signals.push_back(r.request);
      return;
    }
    case Oop::kCancel: {
      const soda::ReqId target(r.oob[1]);
      auto pit = parked_.find(target);
      bool revoked = false;
      if (pit != parked_.end()) {
        if (SLink* link = find(pit->second.link)) {
          std::erase(link->parked_requests, target);
          std::erase(link->parked_signals, target);
        }
        parked_.erase(pit);
        revoked = true;
        network_->engine().spawn(
            "soda-revoke", accept_with(target, Oop::kCancelled, 0));
      }
      network_->engine().spawn(
          "soda-cancel-ack",
          accept_with(r.request, revoked ? Oop::kAcceptOk : Oop::kTooLate,
                      0));
      return;
    }
    case Oop::kFreeze: {
      ++freeze_count_;
      network_->engine().spawn("soda-freeze",
                               answer_freeze(r.request, r.from));
      return;
    }
    case Oop::kHint: {
      // Asynchronous hint from a frozen process (see answer_freeze).
      network_->engine().spawn("soda-hint-taken", take_hint(r));
      return;
    }
    case Oop::kUnfreeze: {
      if (freeze_count_ > 0) --freeze_count_;
      network_->engine().spawn("soda-unfreeze",
                               accept_with(r.request, Oop::kAcceptOk, 0));
      if (freeze_count_ == 0) {
        // Execution resumes: serve anything that parked while frozen.
        for (auto& [token, link] : links_) maybe_accept_parked(link);
      }
      return;
    }
    default:
      return;
  }
}

sim::Task<> SodaBackend::take_hint(soda::RequestInterrupt r) {
  auto taken = co_await network_->kernel_of(pid_).accept(
      pid_, r.request,
      soda::Oob{static_cast<std::uint32_t>(Oop::kAcceptOk), 0}, {},
      kBigBuffer);
  if (!taken.ok()) co_return;
  async_hints_[decode_name(taken.value())] = soda::Pid(r.oob[1]);
}

sim::Task<> SodaBackend::answer_freeze(soda::ReqId req, soda::Pid from) {
  // The searcher shipped the sought link-end name in the put data.
  auto taken = co_await network_->kernel_of(pid_).accept(
      pid_, req, soda::Oob{static_cast<std::uint32_t>(Oop::kNoHint), 0}, {},
      kBigBuffer);
  if (!taken.ok()) co_return;
  // NOTE: SODA transfers data at accept, so we cannot inspect the name
  // before deciding the out-of-band answer in a single accept.  Real
  // LYNX would use two phases; we emulate by answering in a follow-up
  // request if we do hold a hint.
  const soda::Name sought = decode_name(taken.value());
  std::uint64_t hint = 0;
  if (find_by_name(sought) != nullptr) {
    hint = pid_.value() + 1;  // +1 so pid 0 is distinguishable from "none"
  } else {
    for (const auto& [name, owner] : moved_cache_) {
      if (name == sought) hint = owner.value() + 1;
    }
  }
  if (hint != 0) {
    // Tell the searcher via its freeze name (it is in the directory).
    for (const auto& entry : directory_->processes) {
      if (entry.pid == from) {
        (void)co_await network_->kernel_of(pid_).request(
            pid_, entry.pid, entry.freeze_name,
            soda::Oob{static_cast<std::uint32_t>(Oop::kHint),
                      static_cast<std::uint32_t>(hint - 1)},
            encode_name(sought), 0);
        break;
      }
    }
  }
}

void SodaBackend::on_completion(const soda::CompletionInterrupt& c) {
  // freeze searches first
  if (auto fit = freeze_collects_.find(c.request);
      fit != freeze_collects_.end()) {
    FreezeCollector* col = fit->second;
    freeze_collects_.erase(fit);
    const auto op = static_cast<Oop>(c.oob[0]);
    if (op == Oop::kHint && !col->hint.has_value()) {
      col->hint = soda::Pid(c.oob[1]);
    }
    if (--col->expected == 0) col->done->fulfill(0);
    return;
  }
  if (auto sit = signal_by_req_.find(c.request); sit != signal_by_req_.end()) {
    const BLink token = sit->second;
    signal_by_req_.erase(sit);
    SLink* link = find(token);
    if (link == nullptr) return;
    link->signal_out = soda::ReqId::invalid();
    const auto op = static_cast<Oop>(c.oob[0]);
    if (op == Oop::kDestroyed) {
      mark_destroyed(*link);
    } else if (op == Oop::kMoved) {
      ++stats_.hint_misses;
      link->peer_hint = soda::Pid(c.oob[1]);
      network_->engine().spawn("soda-signal", post_signal(token));
    } else if (op == Oop::kReplyUnwanted) {
      // The caller aborted: our next reply must wait for the peer's
      // authoritative verdict instead of resolving early.  Repost the
      // signal — it still watches for destruction and moves.
      link->peer_reply_unwanted = true;
      network_->engine().spawn("soda-signal", post_signal(token));
    }
    return;
  }
  auto oit = out_by_req_.find(c.request);
  if (oit == out_by_req_.end()) return;  // cancel-puts, unfreezes, ...
  const std::uint64_t out_id = oit->second;
  out_by_req_.erase(oit);
  auto it = outs_.find(out_id);
  if (it == outs_.end()) return;
  OutSend& out = it->second;
  const auto op = static_cast<Oop>(c.oob[0]);
  switch (op) {
    case Oop::kAcceptOk: {
      const BLink token = out.link;
      const soda::Pid new_owner = out.target;
      std::vector<BLink> moved = out.enclosure_tokens;
      resolve_out(out_id, SendOutcome{SendResult::kDelivered, {}});
      if (!moved.empty()) {
        network_->engine().spawn(
            "soda-move-done",
            finish_moves(token, std::move(moved), new_owner));
      }
      return;
    }
    case Oop::kReplyUnwanted:
      resolve_out(out_id, SendOutcome{SendResult::kReplyUnwanted, {}});
      return;
    case Oop::kDestroyed: {
      SLink* link = find(out.link);
      resolve_out(out_id, SendOutcome{SendResult::kLinkDestroyed, {}});
      if (link != nullptr) mark_destroyed(*link);
      return;
    }
    case Oop::kMoved: {
      ++stats_.hint_misses;
      if (SLink* link = find(out.link)) {
        link->peer_hint = soda::Pid(c.oob[1]);
      }
      out.req = soda::ReqId::invalid();
      network_->engine().spawn("soda-resend", issue_send(out_id));
      return;
    }
    case Oop::kCancelled:
      resolve_out(out_id, SendOutcome{SendResult::kCancelled, {}});
      return;
    default:
      return;
  }
}

void SodaBackend::on_crash_or_reject(soda::ReqId req) {
  if (auto fit = freeze_collects_.find(req); fit != freeze_collects_.end()) {
    FreezeCollector* col = fit->second;
    freeze_collects_.erase(fit);
    if (--col->expected == 0) col->done->fulfill(0);
    return;
  }
  if (auto sit = signal_by_req_.find(req); sit != signal_by_req_.end()) {
    const BLink token = sit->second;
    signal_by_req_.erase(sit);
    if (SLink* link = find(token)) {
      link->signal_out = soda::ReqId::invalid();
      network_->engine().spawn("soda-signal-fix", fix_signal(token));
    }
    return;
  }
  auto oit = out_by_req_.find(req);
  if (oit == out_by_req_.end()) return;
  const std::uint64_t out_id = oit->second;
  out_by_req_.erase(oit);
  if (auto it = outs_.find(out_id); it != outs_.end()) {
    it->second.req = soda::ReqId::invalid();
    network_->engine().spawn("soda-fix", hint_fix_and_resend(out_id));
  }
}

// ===================== hint repair =====================

sim::Task<std::optional<soda::Pid>> SodaBackend::locate_peer(
    soda::Name peer_name) {
  soda::Kernel& k = network_->kernel_of(pid_);
  ++stats_.discover_searches;
  for (int i = 0; i < params_.discover_attempts; ++i) {
    auto found = co_await k.discover(pid_, peer_name);
    if (found.has_value()) co_return found;
  }
  ++stats_.discover_failures;
  if (!params_.enable_freeze_fallback) co_return std::nullopt;
  ++stats_.freeze_searches;
  auto frozen = co_await freeze_search(peer_name);
  co_return frozen;
}

sim::Task<> SodaBackend::hint_fix_and_resend(std::uint64_t out_id) {
  auto it = outs_.find(out_id);
  if (it == outs_.end()) co_return;
  ++stats_.hint_misses;
  const BLink token = it->second.link;
  SLink* link = find(token);
  if (link == nullptr || link->destroyed) {
    resolve_out(out_id, SendOutcome{SendResult::kLinkDestroyed, {}});
    co_return;
  }
  auto found = co_await locate_peer(link->peer_name);
  link = find(token);
  if (link == nullptr || outs_.find(out_id) == outs_.end()) co_return;
  if (!found.has_value()) {
    // "A process that is unable to find the far end of a link must
    // assume it has been destroyed."
    resolve_out(out_id, SendOutcome{SendResult::kLinkDestroyed, {}});
    mark_destroyed(*link);
    co_return;
  }
  link->peer_hint = *found;
  co_await issue_send(out_id);
}

sim::Task<> SodaBackend::fix_signal(BLink token) {
  SLink* link = find(token);
  if (link == nullptr || link->destroyed) co_return;
  auto found = co_await locate_peer(link->peer_name);
  link = find(token);
  if (link == nullptr || link->destroyed) co_return;
  if (!found.has_value()) {
    mark_destroyed(*link);
    co_return;
  }
  link->peer_hint = *found;
  co_await post_signal(token);
}

sim::Task<std::optional<soda::Pid>> SodaBackend::freeze_search(
    soda::Name peer_name) {
  soda::Kernel& k = network_->kernel_of(pid_);
  FreezeCollector col;
  col.done = std::make_unique<sim::OneShot<int>>(network_->engine());
  std::vector<soda::Pid> contacted;
  for (const auto& entry : directory_->processes) {
    if (entry.pid == pid_ || !network_->alive(entry.pid)) continue;
    auto req = co_await k.request(
        pid_, entry.pid, entry.freeze_name,
        soda::Oob{static_cast<std::uint32_t>(Oop::kFreeze), 0},
        encode_name(peer_name), 0);
    if (req.ok()) {
      ++col.expected;
      freeze_collects_[req.value()] = &col;
      contacted.push_back(entry.pid);
    }
  }
  // Hints can also arrive as follow-up kHint requests to our own freeze
  // name (answer_freeze); give the search a settling window.
  if (col.expected > 0) {
    (void)co_await col.done->take();
  }
  co_await network_->engine().sleep(sim::msec(50));
  // unfreeze everyone we froze
  for (soda::Pid p : contacted) {
    for (const auto& entry : directory_->processes) {
      if (entry.pid != p) continue;
      (void)co_await k.request(
          pid_, entry.pid, entry.freeze_name,
          soda::Oob{static_cast<std::uint32_t>(Oop::kUnfreeze), 0}, {}, 0);
    }
  }
  if (col.hint.has_value()) co_return col.hint;
  // Check asynchronous kHint answers that landed on our freeze channel.
  // Entries are NOT consumed: the send-fix and the signal-fix for the
  // same link may search concurrently (the paper's freeze counter
  // exists exactly to allow "multiple concurrent searches"), and both
  // deserve the answer.
  if (auto it = async_hints_.find(peer_name); it != async_hints_.end()) {
    co_return it->second;
  }
  co_return std::nullopt;
}

// ===================== accepting / delivery =====================

sim::Task<> SodaBackend::accept_with(soda::ReqId req, Oop code,
                                     std::uint64_t word1) {
  (void)co_await network_->kernel_of(pid_).accept(
      pid_, req,
      soda::Oob{static_cast<std::uint32_t>(code),
                static_cast<std::uint32_t>(word1)},
      {}, 0);
}

void SodaBackend::maybe_accept_parked(SLink& link) {
  if (!link.want_requests || link.destroyed || freeze_count_ > 0) return;
  while (!link.parked_requests.empty()) {
    const soda::ReqId req = link.parked_requests.front();
    link.parked_requests.pop_front();
    auto pit = parked_.find(req);
    if (pit == parked_.end()) continue;  // cancelled meanwhile
    const std::uint64_t trace = pit->second.trace;
    parked_.erase(pit);
    network_->engine().spawn(
        "soda-accept", accept_parked_request(link.token, req, trace));
  }
}

sim::Task<> SodaBackend::accept_parked_request(BLink token, soda::ReqId req,
                                               std::uint64_t trace) {
  auto taken = co_await network_->kernel_of(pid_).accept(
      pid_, req, soda::Oob{static_cast<std::uint32_t>(Oop::kAcceptOk), 0},
      {}, kBigBuffer);
  SLink* link = find(token);
  if (!taken.ok() || link == nullptr) co_return;
  co_await deliver(*link, MsgKind::kRequest, taken.value(), trace);
}

sim::Task<> SodaBackend::accept_reply(BLink token, soda::ReqId req,
                                      std::uint64_t trace) {
  auto taken = co_await network_->kernel_of(pid_).accept(
      pid_, req, soda::Oob{static_cast<std::uint32_t>(Oop::kAcceptOk), 0},
      {}, kBigBuffer);
  SLink* link = find(token);
  if (!taken.ok() || link == nullptr) co_return;
  co_await deliver(*link, MsgKind::kReply, taken.value(), trace);
}

sim::Task<> SodaBackend::deliver(SLink& link, MsgKind kind,
                                 const soda::Payload& raw,
                                 std::uint64_t trace) {
  DecodedPut decoded = decode_put(raw);
  std::vector<BLink> enclosures;
  soda::Kernel& k = network_->kernel_of(pid_);
  for (const auto& e : decoded.encs) {
    const soda::Name my_name(e[0]);
    const soda::Name peer_name(e[1]);
    const soda::Pid hint(static_cast<std::uint32_t>(e[2]));
    (void)co_await k.advertise(pid_, my_name);
    const BLink nb = blink_ids_.next();
    links_.emplace(nb, SLink{nb, my_name, peer_name, hint, false, false,
                             false, false, {}, {}, soda::ReqId::invalid()});
    by_name_.emplace(my_name, nb);
    enclosures.push_back(nb);
  }
  BackendEvent ev;
  ev.kind = kind == MsgKind::kRequest ? BackendEvent::Kind::kRequestArrived
                                      : BackendEvent::Kind::kReplyArrived;
  ev.link = link.token;
  ev.body = std::move(decoded.body);
  ev.enclosures = std::move(enclosures);
  ev.trace = trace;
  if (sink_) sink_(ev);
}

sim::Task<> SodaBackend::finish_moves(BLink carrier,
                                      std::vector<BLink> moved,
                                      soda::Pid new_owner) {
  (void)carrier;
  for (BLink token : moved) {
    SLink* link = find(token);
    if (link == nullptr) continue;
    // "A process that moves a link end must accept any previously-posted
    // SODA request from the other end" — with MOVED info.
    std::vector<soda::ReqId> to_bounce;
    for (soda::ReqId r : link->parked_requests) to_bounce.push_back(r);
    for (soda::ReqId r : link->parked_signals) to_bounce.push_back(r);
    for (soda::ReqId r : to_bounce) {
      if (parked_.erase(r) > 0) {
        co_await accept_with(r, Oop::kMoved, new_owner.value());
      }
    }
    remember_move(link->my_name, new_owner);
    by_name_.erase(link->my_name);
    links_.erase(token);
  }
}

// ===================== interest / signals =====================

void SodaBackend::set_interest(BLink token, bool want_requests,
                               bool want_replies) {
  SLink* link = find(token);
  if (link == nullptr || link->destroyed) return;
  link->want_requests = want_requests;
  link->want_replies = want_replies;
  maybe_accept_parked(*link);
  if ((want_requests || want_replies) && !link->signal_out.valid() &&
      comm_ready_) {
    network_->engine().spawn("soda-signal", post_signal(token));
  }
}

sim::Task<> SodaBackend::post_signal(BLink token) {
  SLink* link = find(token);
  if (link == nullptr || link->destroyed || link->signal_out.valid()) {
    co_return;
  }
  link->signal_out = soda::ReqId(0);  // placeholder: posting in progress
  ++stats_.signals_posted;
  auto req = co_await network_->kernel_of(pid_).request(
      pid_, link->peer_hint, link->peer_name,
      soda::Oob{static_cast<std::uint32_t>(Oop::kSignal), 0}, {}, 0);
  link = find(token);
  if (link == nullptr) co_return;
  if (!req.ok()) {
    link->signal_out = soda::ReqId::invalid();
    co_return;
  }
  link->signal_out = req.value();
  signal_by_req_[req.value()] = token;
}

void SodaBackend::retract_reply_interest(BLink token) {
  SLink* link = find(token);
  if (link == nullptr) return;
  link->reply_unwanted = true;
  // Tell the replier right away by answering its parked status signal:
  // without the hint, the early reply resolve (DESIGN.md §12) would
  // release the reply statement before our authoritative flag could
  // bounce the reply.  Losing the hint (no signal parked) only costs
  // the exception's punctuality, never the flag's verdict.
  if (!link->parked_signals.empty()) {
    const soda::ReqId sig = link->parked_signals.front();
    link->parked_signals.pop_front();
    if (parked_.erase(sig) > 0) {
      network_->engine().spawn("soda-unwanted-hint",
                               accept_with(sig, Oop::kReplyUnwanted, 0));
    }
  }
}

// ===================== destruction =====================

void SodaBackend::mark_destroyed(SLink& link) {
  if (link.destroyed) return;
  link.destroyed = true;
  BackendEvent ev;
  ev.kind = BackendEvent::Kind::kLinkDestroyed;
  ev.link = link.token;
  if (sink_) sink_(ev);
  // Outstanding sends are NOT failed here: every in-flight put resolves
  // through a kernel path (acceptance completion, kDestroyed accept from
  // the destroyer, or a crash interrupt), and a completion may already
  // be in flight — the peer can legitimately accept our last message and
  // then destroy the link before the completion interrupt lands.
}

sim::Task<void> SodaBackend::destroy(BLink token) {
  co_await perform_destroy(token);
}

sim::Task<> SodaBackend::perform_destroy(BLink token) {
  SLink* link = find(token);
  if (link == nullptr) co_return;
  link->destroyed = true;
  // "we require a process that destroys a link to accept any
  // previously-posted status signal on its end, mentioning the
  // destruction ... also ... any outstanding put request, but with a
  // zero-length buffer, again mentioning the destruction."
  std::vector<soda::ReqId> to_bounce;
  for (soda::ReqId r : link->parked_requests) to_bounce.push_back(r);
  for (soda::ReqId r : link->parked_signals) to_bounce.push_back(r);
  link->parked_requests.clear();
  link->parked_signals.clear();
  for (soda::ReqId r : to_bounce) {
    if (parked_.erase(r) > 0) {
      co_await accept_with(r, Oop::kDestroyed, 0);
    }
  }
  // "After clearing the signals and puts, the process can unadvertise
  // the name of the end and forget that it ever existed."
  (void)co_await network_->kernel_of(pid_).unadvertise(pid_,
                                                       link->my_name);
  by_name_.erase(link->my_name);
  links_.erase(token);
}

void SodaBackend::shutdown() {
  if (!running_) return;
  running_ = false;
  draining_ = true;
  network_->engine().spawn("soda-shutdown", perform_shutdown());
}

sim::Task<> SodaBackend::perform_shutdown() {
  // Drain early-resolved replies first: their threads have moved on, but
  // the bytes are still the kernel's responsibility, and terminate()
  // drops this process's outstanding requests without completing them.
  while (has_unsettled_early()) co_await drained_->wait();
  draining_ = false;
  std::vector<BLink> tokens;
  for (auto& [token, link] : links_) tokens.push_back(token);
  for (BLink t : tokens) co_await perform_destroy(t);
  network_->terminate(pid_);
}

// ===================== bootstrap =====================

sim::Task<std::pair<LinkHandle, LinkHandle>> SodaBackend::connect(
    Process& a, Process& b) {
  auto* ba = dynamic_cast<SodaBackend*>(&a.backend());
  auto* bb = dynamic_cast<SodaBackend*>(&b.backend());
  RELYNX_ASSERT_MSG(ba != nullptr && bb != nullptr,
                    "connect requires SODA backends");
  RELYNX_ASSERT_MSG(ba->network_ == bb->network_, "same SODA net required");
  while (!ba->comm_ready_) co_await ba->ready_->wait();
  while (!bb->comm_ready_) co_await bb->ready_->wait();
  soda::Kernel& ka = ba->network_->kernel_of(ba->pid_);
  soda::Kernel& kb = bb->network_->kernel_of(bb->pid_);
  const soda::Name na = co_await ka.generate_name(ba->pid_);
  const soda::Name nb = co_await ka.generate_name(ba->pid_);
  (void)co_await ka.advertise(ba->pid_, na);
  (void)co_await kb.advertise(bb->pid_, nb);
  const BLink ta = ba->blink_ids_.next();
  ba->links_.emplace(ta, SLink{ta, na, nb, bb->pid_, false, false, false,
                               false, {}, {}, soda::ReqId::invalid()});
  ba->by_name_.emplace(na, ta);
  const BLink tb = bb->blink_ids_.next();
  bb->links_.emplace(tb, SLink{tb, nb, na, ba->pid_, false, false, false,
                               false, {}, {}, soda::ReqId::invalid()});
  bb->by_name_.emplace(nb, tb);
  co_return std::pair(a.adopt_link(ta), b.adopt_link(tb));
}

std::unique_ptr<SodaBackend> make_soda_backend(soda::Network& network,
                                               SodaDirectory& directory,
                                               net::NodeId node,
                                               SodaBackendParams params) {
  return std::make_unique<SodaBackend>(network, directory, node, params);
}

}  // namespace lynx
