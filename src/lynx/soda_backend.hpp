// The SODA backend (paper §4.2).
//
// A link is a pair of unique names, one per end; the owner of an end
// advertises its name.  Everything else is HINTS:
//
//   * every process keeps a hint for where the far end of each of its
//     links lives; hints can be wrong but usually work;
//   * screening is the application's: an incoming request interrupt is
//     *parked* (unaccepted, data still in the kernel) until the run-time
//     wants it — the accept is the acknowledgment, so every received
//     message is wanted and aborted sends are revocable with nothing
//     lost;
//   * a process that wants traffic keeps a status *signal* posted at the
//     peer, so it learns of destruction (accepted with DESTROYED
//     out-of-band info), moves (accepted with MOVED + new pid), and
//     crashes (kernel crash interrupt);
//   * moving an end = sending its name pair in the message body; the
//     receiver advertises the name; the mover accepts everything parked
//     from the fixed end with MOVED info, keeps the name in a cache of
//     recently-moved links, and answers stragglers from the cache;
//   * when every hint fails: discover (unreliable broadcast), and as the
//     absolute fallback the freeze/unfreeze search of §4.2 — freeze
//     every process, ask each for a hint, unfreeze, act on the best
//     answer; no hint anywhere means the link is destroyed.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "lynx/backend.hpp"
#include "lynx/runtime.hpp"
#include "soda/kernel.hpp"

namespace lynx {

class SodaPendingSend;

// Shared per-experiment directory: "SODA makes it easy to guess their
// ids" — the freeze search needs to reach every LYNX process, so each
// backend publishes its pid and freeze name here.
struct SodaDirectory {
  struct Entry {
    soda::Pid pid;
    soda::Name freeze_name;
  };
  std::vector<Entry> processes;
};

struct SodaBackendParams {
  int discover_attempts = 3;  // before falling back to freeze
  std::size_t moved_cache_capacity = 64;
  bool enable_freeze_fallback = true;
};

class SodaBackend final : public Backend {
 public:
  SodaBackend(soda::Network& network, SodaDirectory& directory,
              net::NodeId node, SodaBackendParams params = {});
  ~SodaBackend() override;

  [[nodiscard]] std::string kernel_name() const override { return "soda"; }
  [[nodiscard]] Capabilities capabilities() const override {
    return Capabilities{
        .moves_multiple_links_in_one_message = true,
        .all_received_messages_wanted = true,
        .recovers_enclosures_on_abort = true,
        .detects_all_exceptions = true,
    };
  }

  void start(Sink sink) override;
  void shutdown() override;
  [[nodiscard]] sim::Task<std::pair<BLink, BLink>> make_link() override;
  [[nodiscard]] std::unique_ptr<PendingSend> begin_send(
      BLink link, WireMessage msg) override;
  void set_interest(BLink link, bool want_requests,
                    bool want_replies) override;
  void retract_reply_interest(BLink link) override;
  [[nodiscard]] sim::Task<void> destroy(BLink link) override;
  [[nodiscard]] std::uint64_t protocol_messages() const override {
    return requests_issued_;
  }
  [[nodiscard]] std::uint32_t trace_node() const override {
    return node_.value();
  }

  [[nodiscard]] soda::Pid pid() const { return pid_; }

  struct Stats {
    std::uint64_t requests_issued = 0;
    std::uint64_t signals_posted = 0;
    std::uint64_t moved_redirects = 0;  // stragglers served from cache
    std::uint64_t hint_misses = 0;      // sends that needed re-routing
    std::uint64_t discover_searches = 0;
    std::uint64_t discover_failures = 0;
    std::uint64_t freeze_searches = 0;
    std::uint64_t unwanted_received = 0;  // stays 0: screening by accept
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  // Bootstrap: wire two processes together (loader fiat).
  [[nodiscard]] static sim::Task<std::pair<LinkHandle, LinkHandle>> connect(
      Process& a, Process& b);

 private:
  friend class SodaPendingSend;

  // accept / completion out-of-band codes (word 0)
  enum class Oop : std::uint32_t {
    kRequestMsg = 1,   // request oob: a LYNX request rides this put
    kReplyMsg = 2,     // request oob: a LYNX reply rides this put
    kSignal = 3,       // request oob: status signal (no data)
    kCancel = 4,       // request oob: revoke my earlier put (word1 = req)
    kFreeze = 5,       // request oob: freeze search (data = link name)
    kUnfreeze = 6,     // request oob: end of search
    kAcceptOk = 10,    // accept oob: message taken
    kDestroyed = 11,   // accept oob: the link is destroyed
    kMoved = 12,       // accept oob: end moved, word1 = new pid
    kReplyUnwanted = 13,  // accept oob: caller aborted (capability 4)
    kCancelled = 14,   // accept oob: your put was revoked at your ask
    kTooLate = 15,     // accept oob: cancel lost the race
    kHint = 16,        // accept oob (freeze): word1 = pid holding the end
    kNoHint = 17,      // accept oob (freeze): never heard of it
  };

  struct SLink {
    BLink token;
    soda::Name my_name;
    soda::Name peer_name;
    soda::Pid peer_hint;
    bool want_requests = false;
    bool want_replies = false;
    bool reply_unwanted = false;  // aborted caller: bounce the next reply
    bool destroyed = false;
    std::deque<soda::ReqId> parked_requests;  // unaccepted LYNX requests
    std::deque<soda::ReqId> parked_signals;   // peer's status signals
    soda::ReqId signal_out;  // our outstanding status signal (if valid)
    // The caller answered our status signal with REPLY-UNWANTED: our
    // next reply must take the full kernel round trip so the peer's
    // authoritative reply_unwanted flag can bounce it (capability 4
    // survives the early reply resolve).  One-shot, like the flag.
    bool peer_reply_unwanted = false;
  };

  struct ParkedInfo {
    BLink link;
    Oop kind = Oop::kRequestMsg;
    soda::Pid from;
    std::size_t send_bytes = 0;
    std::uint64_t trace = 0;  // causal identity from the RequestInterrupt
  };

  struct OutSend {
    std::uint64_t id = 0;
    BLink link;
    MsgKind kind = MsgKind::kRequest;
    soda::Payload data;
    soda::ReqId req;               // current kernel request
    soda::Pid target;              // pid the request went to
    std::vector<BLink> enclosure_tokens;
    SodaPendingSend* ps = nullptr;
    bool cancel_requested = false;
    // The LYNX thread was released before the kernel leg finished (the
    // early reply resolve, DESIGN.md §12); shutdown drains these.
    bool early_resolved = false;
    int reroutes = 0;
    std::uint64_t trace = 0;       // causal identity from the WireMessage
  };

  struct FreezeCollector {
    int expected = 0;
    std::optional<soda::Pid> hint;
    std::unique_ptr<sim::OneShot<int>> done;
  };

  [[nodiscard]] sim::Task<> pump();
  void on_interrupt(const soda::Interrupt& intr);
  void on_request(const soda::RequestInterrupt& r);
  void on_completion(const soda::CompletionInterrupt& c);
  void on_crash_or_reject(soda::ReqId req);
  [[nodiscard]] sim::Task<> issue_send(std::uint64_t out_id);
  void resolve_out(std::uint64_t out_id, SendOutcome outcome);
  void request_cancel(std::uint64_t out_id);
  [[nodiscard]] sim::Task<> issue_cancel(std::uint64_t out_id);
  [[nodiscard]] sim::Task<> accept_parked_request(BLink token, soda::ReqId req,
                                                  std::uint64_t trace);
  [[nodiscard]] sim::Task<> accept_reply(BLink token, soda::ReqId req,
                                         std::uint64_t trace);
  [[nodiscard]] sim::Task<> accept_with(soda::ReqId req, Oop code,
                                        std::uint64_t word1);
  [[nodiscard]] sim::Task<> answer_freeze(soda::ReqId req, soda::Pid from);
  [[nodiscard]] sim::Task<> take_hint(soda::RequestInterrupt r);
  [[nodiscard]] sim::Task<> hint_fix_and_resend(std::uint64_t out_id);
  [[nodiscard]] sim::Task<std::optional<soda::Pid>> locate_peer(
      soda::Name peer_name);
  [[nodiscard]] sim::Task<std::optional<soda::Pid>> freeze_search(
      soda::Name peer_name);
  [[nodiscard]] sim::Task<> fix_signal(BLink token);
  [[nodiscard]] sim::Task<> finish_moves(BLink carrier,
                                         std::vector<BLink> moved,
                                         soda::Pid new_owner);
  [[nodiscard]] sim::Task<> deliver(SLink& link, MsgKind kind,
                                    const soda::Payload& raw,
                                    std::uint64_t trace);
  [[nodiscard]] sim::Task<> perform_destroy(BLink token);
  [[nodiscard]] sim::Task<> perform_shutdown();
  [[nodiscard]] sim::Task<> post_signal(BLink token);
  void maybe_accept_parked(SLink& link);
  void mark_destroyed(SLink& link);
  // Early-resolved replies whose kernel leg is still in flight.
  [[nodiscard]] bool has_unsettled_early() const;
  void note_drain_progress();
  [[nodiscard]] SLink* find(BLink token);
  [[nodiscard]] SLink* find_by_name(soda::Name name);
  void remember_move(soda::Name name, soda::Pid new_owner);

  soda::Network* network_;
  SodaDirectory* directory_;
  net::NodeId node_;
  SodaBackendParams params_;
  soda::Pid pid_;
  soda::Name freeze_name_;
  Sink sink_;
  bool running_ = false;
  // Shutdown drain: an early-resolved reply's OutSend may still be in
  // flight at the kernel when the runtime asks to shut down; terminating
  // then would strand the reply (terminate_process drops this process's
  // outstanding requests on the floor).  The pump keeps servicing
  // interrupts while draining_ until every early-resolved send settles.
  bool draining_ = false;
  std::unique_ptr<sim::WaitList> drained_;
  bool comm_ready_ = false;
  std::unique_ptr<sim::Gate> ready_;

  std::unordered_map<BLink, SLink> links_;
  std::unordered_map<soda::Name, BLink> by_name_;
  std::unordered_map<soda::ReqId, ParkedInfo> parked_;
  std::unordered_map<std::uint64_t, OutSend> outs_;
  std::unordered_map<soda::ReqId, std::uint64_t> out_by_req_;
  // signals we posted, keyed by kernel request id -> link
  std::unordered_map<soda::ReqId, BLink> signal_by_req_;
  // recently moved ends: name -> new owner (kept advertised)
  std::deque<std::pair<soda::Name, soda::Pid>> moved_cache_;
  int freeze_count_ = 0;
  std::unordered_map<soda::ReqId, FreezeCollector*> freeze_collects_;
  std::unordered_map<soda::Name, soda::Pid> async_hints_;
  common::IdAllocator<BLink> blink_ids_;
  std::uint64_t next_out_id_ = 1;
  std::uint64_t requests_issued_ = 0;
  Stats stats_;
};

[[nodiscard]] std::unique_ptr<SodaBackend> make_soda_backend(
    soda::Network& network, SodaDirectory& directory, net::NodeId node,
    SodaBackendParams params = {});

}  // namespace lynx
