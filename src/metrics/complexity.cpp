#include "metrics/complexity.hpp"

#include <fstream>
#include <vector>

#ifndef RELYNX_SOURCE_DIR
#define RELYNX_SOURCE_DIR "."
#endif

namespace metrics {

namespace {

std::string root_or_default(const std::string& source_root) {
  return source_root.empty() ? std::string(RELYNX_SOURCE_DIR) : source_root;
}

bool is_code_line(const std::string& line) {
  for (char c : line) {
    if (c != ' ' && c != '\t' && c != '\r') return true;
  }
  return false;
}

}  // namespace

std::size_t count_source_lines(const std::string& path) {
  std::ifstream in(path);
  if (!in) return 0;
  std::size_t n = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (is_code_line(line)) ++n;
  }
  return n;
}

std::size_t count_region_lines(const std::string& path,
                               const std::vector<std::string>& markers) {
  std::ifstream in(path);
  if (!in) return 0;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);

  std::size_t total = 0;
  for (const std::string& marker : markers) {
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (lines[i].find(marker) == std::string::npos) continue;
      // count to the next top-level closing brace
      for (std::size_t j = i; j < lines.size(); ++j) {
        if (is_code_line(lines[j])) ++total;
        if (lines[j] == "}") break;
      }
      break;
    }
  }
  return total;
}

BackendProfile profile_charlotte(const std::string& source_root) {
  const std::string root = root_or_default(source_root);
  BackendProfile p;
  p.name = "charlotte";
  // REQUEST, REPLY, RETRY, FORBID, ALLOW, GOAHEAD, ENC  (§3.2)
  p.protocol_message_types = 7;
  // want_requests, want_replies, recv_posted, forbade_peer, forbidden,
  // awaiting_goahead, assembly-in-progress
  p.screening_states = 7;
  p.move_agreement_parties = 3;  // mover, recipient, far end (via home)
  p.packets_per_simple_op = 2;   // request + reply (plus kernel acks)
  p.needs_goahead_enc = true;
  p.needs_retry_forbid = true;
  const std::string src = root + "/src/lynx/charlotte_backend.cpp";
  p.source_lines = count_source_lines(src) +
                   count_source_lines(root + "/src/lynx/charlotte_backend.hpp");
  p.special_case_lines = count_region_lines(
      src, {"void CharlotteBackend::on_incoming",
            "void CharlotteBackend::maybe_send_allow",
            "void CharlotteBackend::update_receive_posting",
            "sim::Task<> CharlotteBackend::cancel_receive"});
  return p;
}

BackendProfile profile_soda(const std::string& source_root) {
  const std::string root = root_or_default(source_root);
  BackendProfile p;
  p.name = "soda";
  p.protocol_message_types = 2;  // LYNX request / reply kinds in oob
  // want_requests, want_replies, reply_unwanted (screening is the
  // accept decision itself)
  p.screening_states = 3;
  p.move_agreement_parties = 1;  // hints; nobody must agree
  p.packets_per_simple_op = 2;   // request put + reply put
  p.needs_goahead_enc = false;
  p.needs_retry_forbid = false;
  const std::string src = root + "/src/lynx/soda_backend.cpp";
  p.source_lines = count_source_lines(src) +
                   count_source_lines(root + "/src/lynx/soda_backend.hpp");
  p.special_case_lines = 0;  // no unwanted-message / packetization code
  return p;
}

BackendProfile profile_chrysalis(const std::string& source_root) {
  const std::string root = root_or_default(source_root);
  BackendProfile p;
  p.name = "chrysalis";
  p.protocol_message_types = 0;  // no messages at all, only notices
  p.screening_states = 2;        // want_requests, want_replies
  p.move_agreement_parties = 1;  // remap + rewrite a hint
  p.packets_per_simple_op = 0;   // shared memory; notices are hints
  p.needs_goahead_enc = false;
  p.needs_retry_forbid = false;
  const std::string src = root + "/src/lynx/chrysalis_backend.cpp";
  p.source_lines =
      count_source_lines(src) +
      count_source_lines(root + "/src/lynx/chrysalis_backend.hpp");
  p.special_case_lines = 0;
  return p;
}

}  // namespace metrics
