// Protocol-complexity metrics: the reproduction's analog of the paper's
// code-size measurements (§3.3, §4.3, §5.3 and experiment E4/E6).
//
// The paper reports object-code bytes of the three run-time packages and
// attributes the Charlotte package's extra ~5K to unwanted-message and
// multiple-enclosure handling.  We cannot reproduce VAX object bytes,
// but we can measure the same *shape* three ways:
//   1. static protocol structure (how many message types, how many
//      screening states, how many parties agree on a move);
//   2. source lines of each backend (measured from this repository at
//      bench run time);
//   3. dynamic counts (packets per operation, bounce traffic) from the
//      backend stats.
#pragma once

#include <cstddef>
#include <vector>
#include <string>

namespace metrics {

struct BackendProfile {
  std::string name;
  // run-time-package protocol message types layered over the kernel
  // (Charlotte: request, reply, retry, forbid, allow, goahead, enc)
  int protocol_message_types = 0;
  // per-link screening state bits the package must track
  int screening_states = 0;
  // parties that must agree to move a link end
  int move_agreement_parties = 0;
  // kernel packets for a simple remote op (request+reply, no enclosures)
  int packets_per_simple_op = 0;
  // extra packets to move k>=2 enclosures in one LYNX request
  // (Charlotte: goahead + (k-1) enc packets)
  int extra_packets_multi_move(int k) const {
    return needs_goahead_enc ? 1 + (k - 1) : 0;
  }
  bool needs_goahead_enc = false;
  bool needs_retry_forbid = false;
  // measured source size of the backend implementation
  std::size_t source_lines = 0;
  std::size_t special_case_lines = 0;  // screening + packetization code
};

// Profiles for the three backends; source_lines are measured from the
// repository (source_root defaults to the build-time source dir).
[[nodiscard]] BackendProfile profile_charlotte(
    const std::string& source_root = {});
[[nodiscard]] BackendProfile profile_soda(
    const std::string& source_root = {});
[[nodiscard]] BackendProfile profile_chrysalis(
    const std::string& source_root = {});

// Counts non-empty lines in a file; returns 0 if unreadable.
[[nodiscard]] std::size_t count_source_lines(const std::string& path);

// Counts non-empty lines in the given function-level regions, located by
// substring markers (start inclusive, ends at the next line equal to
// "}" at column 0).  Used for the special-case accounting.
[[nodiscard]] std::size_t count_region_lines(
    const std::string& path, const std::vector<std::string>& markers);

}  // namespace metrics
