// The BBN Butterfly switch: a cost model for remote memory access.
//
// The Butterfly is a shared-memory machine; Chrysalis processes do not
// exchange frames, they touch memory objects that may live on another
// node's memory board, reached through a log4(N)-stage switch.  What the
// simulation needs is the *cost* of those touches: a per-reference setup
// time that grows with the number of switch stages, plus a per-byte
// block-transfer rate (the Butterfly had microcoded block copy).
//
// Calibration targets §5.3: a null LYNX RPC at ~2.4 ms and +1000 B in
// both directions adding ~2.2 ms, i.e. roughly 1.1 us/byte end to end.
#pragma once

#include <cstdint>

#include "common/assert.hpp"
#include "sim/time.hpp"

namespace net {

struct ButterflyParams {
  std::uint32_t nodes = 16;
  sim::Duration local_reference = sim::nsec(600);    // 68000 memory cycle
  sim::Duration hop_latency = sim::usec(4);          // per switch stage
  sim::Duration per_byte_block = sim::nsec(420);     // microcoded copy
  sim::Duration switch_setup = sim::usec(6);         // path establishment
};

class ButterflyFabric {
 public:
  explicit ButterflyFabric(ButterflyParams params = {}) : params_(params) {
    RELYNX_ASSERT(params_.nodes >= 1);
    // ceil(log4(nodes)) switch stages
    stages_ = 0;
    std::uint32_t span = 1;
    while (span < params_.nodes) {
      span *= 4;
      ++stages_;
    }
  }

  [[nodiscard]] std::uint32_t stages() const { return stages_; }

  // One remote word reference (read or write of <= 4 bytes).
  [[nodiscard]] sim::Duration word_reference(bool remote) const {
    if (!remote) return params_.local_reference;
    return params_.switch_setup + params_.hop_latency * stages_ +
           params_.local_reference;
  }

  // Block transfer of `bytes` between a processor and a (possibly
  // remote) memory object.
  [[nodiscard]] sim::Duration block_transfer(std::size_t bytes,
                                             bool remote) const {
    return block_transfer(bytes, remote, 0);
  }

  // Same, with `contenders` other processors holding paths through the
  // switch: each adds one stage-traversal of queueing ahead of us (the
  // Butterfly's stages serialize conflicting paths).  contenders == 0
  // reproduces the uncontended cost exactly.
  [[nodiscard]] sim::Duration block_transfer(std::size_t bytes, bool remote,
                                             std::uint32_t contenders) const {
    sim::Duration setup = remote
                              ? params_.switch_setup +
                                    params_.hop_latency * stages_
                              : params_.local_reference;
    if (remote && contenders > 0) {
      setup += params_.hop_latency * stages_ *
               static_cast<sim::Duration>(contenders);
    }
    return setup + params_.per_byte_block *
                       static_cast<sim::Duration>(bytes);
  }

 private:
  ButterflyParams params_;
  std::uint32_t stages_ = 0;
};

}  // namespace net
