#include "net/csma_bus.hpp"

#include <algorithm>

namespace net {

void CsmaBus::attach(NodeId node, FrameHandler handler) {
  RELYNX_ASSERT_MSG(!handlers_.contains(node), "node attached twice");
  handlers_.emplace(node, std::move(handler));
}

void CsmaBus::send(Frame frame) {
  RELYNX_ASSERT_MSG(handlers_.contains(frame.dst), "send to unattached node");
  stamp(frame);
  try_transmit(std::move(frame), /*is_broadcast=*/false, /*attempt=*/0);
}

void CsmaBus::broadcast(Frame frame) {
  frame.dst = NodeId::invalid();
  stamp(frame);
  try_transmit(std::move(frame), /*is_broadcast=*/true, /*attempt=*/0);
}

void CsmaBus::record_drop(const Frame& frame, NodeId receiver) {
  ++drops_;
  ++drops_at_[receiver];
  if (on_drop_) on_drop_(frame, receiver);
}

sim::Duration CsmaBus::backoff_delay(int attempt) {
  const int exponent = std::min(attempt, params_.max_backoff_exponent);
  const std::uint64_t window = 1ULL << exponent;
  return params_.slot_time *
         static_cast<sim::Duration>(1 + rng_.next_below(window));
}

void CsmaBus::try_transmit(Frame frame, bool is_broadcast, int attempt) {
  if (busy_) {
    ++backoffs_;
    engine_->schedule(
        backoff_delay(attempt),
        [this, f = std::move(frame), is_broadcast, attempt]() mutable {
          try_transmit(std::move(f), is_broadcast, attempt + 1);
        });
    return;
  }
  busy_ = true;
  ++frames_;
  bytes_ += frame.payload_bytes;
  const sim::Duration service = clock_out_time(frame.payload_bytes);
  engine_->schedule(service,
                    [this, f = std::move(frame), is_broadcast]() mutable {
                      busy_ = false;
                      deliver(std::move(f), is_broadcast);
                    });
}

void CsmaBus::deliver(Frame frame, bool is_broadcast) {
  if (!is_broadcast) {
    if (params_.unicast_drop_prob > 0.0 &&
        rng_.next_bool(params_.unicast_drop_prob)) {
      record_drop(frame, frame.dst);
      return;
    }
    auto it = handlers_.find(frame.dst);
    RELYNX_ASSERT(it != handlers_.end());
    // Unicast: the frame moves end-to-end (its std::any body is never
    // cloned); only broadcast fan-out below copies.
    engine_->schedule(params_.propagation,
                      [h = &it->second, f = std::move(frame)] { (*h)(f); });
    return;
  }
  for (auto& [node, handler] : handlers_) {
    if (node == frame.src) continue;
    if (params_.broadcast_drop_prob > 0.0 &&
        rng_.next_bool(params_.broadcast_drop_prob)) {
      record_drop(frame, node);
      continue;
    }
    engine_->schedule(params_.propagation,
                      [h = &handler, f = frame] { (*h)(f); });
  }
}

}  // namespace net
