// The SODA interconnect: a 1 Mbit/s CSMA broadcast bus.
//
// Model: carrier-sense with binary exponential backoff.  A node that
// finds the bus busy defers and retries after a random number of slot
// times (doubling window per attempt).  Broadcasts are physically
// natural on a bus; they are *unreliable*: each receiver independently
// drops with `broadcast_drop_prob` (the paper leans on exactly this —
// SODA's `discover` uses unreliable broadcast, and the LYNX mapping
// needs heuristics plus a fallback for when it fails).  Unicast frames
// are reliable by default; `unicast_drop_prob` exists for failure
// injection.
//
// The slow wire is the point of experiment E5: at 1 Mb/s, a kilobyte
// costs ~8 ms to clock out, which is what pushes the SODA/Charlotte
// crossover into the 1–2 KB range of the paper's footnote 2.
#pragma once

#include <deque>

#include "net/packet.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"

namespace net {

struct CsmaBusParams {
  std::int64_t bits_per_second = 1'000'000;
  std::size_t header_bytes = 16;  // SODA kept framing minimal
  sim::Duration slot_time = sim::usec(100);
  sim::Duration propagation = sim::usec(10);
  sim::Duration frame_overhead = sim::usec(30);
  int max_backoff_exponent = 6;
  double broadcast_drop_prob = 0.05;
  double unicast_drop_prob = 0.0;
};

class CsmaBus final : public Medium {
 public:
  CsmaBus(sim::Engine& engine, sim::Rng rng, CsmaBusParams params = {})
      : engine_(&engine), rng_(rng), params_(params) {}

  void attach(NodeId node, FrameHandler handler) override;
  void send(Frame frame) override;
  void broadcast(Frame frame) override;

  [[nodiscard]] std::uint64_t frames_sent() const override { return frames_; }
  [[nodiscard]] std::uint64_t bytes_sent() const override { return bytes_; }
  [[nodiscard]] std::uint64_t backoffs() const { return backoffs_; }
  [[nodiscard]] std::uint64_t drops() const { return drops_; }

  // Loss observability: the global counter says only *that* frames were
  // lost; callers (fault::InvariantChecker, loss-sensitive protocols)
  // need to know *which* frame missed *which* receiver.
  using DropObserver = std::function<void(const Frame&, NodeId receiver)>;
  void set_drop_observer(DropObserver obs) { on_drop_ = std::move(obs); }
  // Frames dropped on the way to `node` specifically.
  [[nodiscard]] std::uint64_t drops_at(NodeId node) const {
    auto it = drops_at_.find(node);
    return it == drops_at_.end() ? 0 : it->second;
  }

  [[nodiscard]] sim::Duration clock_out_time(std::size_t payload_bytes) const {
    const auto bits = static_cast<std::int64_t>(
        8 * (payload_bytes + params_.header_bytes));
    return params_.frame_overhead +
           sim::transmission_time(bits, params_.bits_per_second);
  }

 private:
  void try_transmit(Frame frame, bool is_broadcast, int attempt);
  void deliver(Frame frame, bool is_broadcast);
  void record_drop(const Frame& frame, NodeId receiver);
  [[nodiscard]] sim::Duration backoff_delay(int attempt);

  sim::Engine* engine_;
  sim::Rng rng_;
  CsmaBusParams params_;
  std::unordered_map<NodeId, FrameHandler> handlers_;
  DropObserver on_drop_;
  bool busy_ = false;
  std::uint64_t frames_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t backoffs_ = 0;
  std::uint64_t drops_ = 0;
  std::unordered_map<NodeId, std::uint64_t> drops_at_;
};

}  // namespace net
