// A perfect medium: fixed latency, no queueing, no loss.
//
// Used by unit tests that exercise kernel protocol logic without wanting
// a wire model in the way.
#pragma once

#include <unordered_map>

#include "net/packet.hpp"
#include "sim/engine.hpp"

namespace net {

class Loopback final : public Medium {
 public:
  Loopback(sim::Engine& engine, sim::Duration latency)
      : engine_(&engine), latency_(latency) {}

  void attach(NodeId node, FrameHandler handler) override {
    RELYNX_ASSERT_MSG(!handlers_.contains(node), "node attached twice");
    handlers_.emplace(node, std::move(handler));
  }

  void send(Frame frame) override {
    stamp(frame);
    ++frames_;
    bytes_ += frame.payload_bytes;
    auto it = handlers_.find(frame.dst);
    RELYNX_ASSERT_MSG(it != handlers_.end(), "send to unattached node");
    engine_->schedule(latency_, [handler = &it->second,
                                 f = std::move(frame)] { (*handler)(f); });
  }

  void broadcast(Frame frame) override {
    stamp(frame);
    ++frames_;
    bytes_ += frame.payload_bytes;
    for (auto& [node, handler] : handlers_) {
      if (node == frame.src) continue;
      engine_->schedule(latency_,
                        [h = &handler, f = frame] { (*h)(f); });
    }
  }

  [[nodiscard]] std::uint64_t frames_sent() const override { return frames_; }
  [[nodiscard]] std::uint64_t bytes_sent() const override { return bytes_; }

 private:
  sim::Engine* engine_;
  sim::Duration latency_;
  std::unordered_map<NodeId, FrameHandler> handlers_;
  std::uint64_t frames_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace net
