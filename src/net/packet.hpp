// Frames and the medium interface.
//
// The three kernels talk to each other through a Medium: the Crystal
// token ring for Charlotte, the SODA CSMA bus, and a perfect loopback
// for unit tests.  A Frame's body is a type-erased kernel-level message;
// payload_bytes is what the medium charges for (headers are the medium's
// own business).
#pragma once

#include <any>
#include <cstddef>
#include <functional>
#include <utility>

#include "common/assert.hpp"
#include "common/strong_id.hpp"
#include "sim/time.hpp"

namespace net {

struct NodeTag {
  static const char* prefix() { return "node"; }
};
using NodeId = common::StrongId<NodeTag, std::uint32_t>;

struct Frame {
  NodeId src;
  NodeId dst;  // ignored for broadcast
  std::size_t payload_bytes = 0;
  std::any body;
  // Medium-assigned, unique per medium instance (0 = not yet stamped).
  // Lets fault injection and drop observers name the exact frame lost.
  std::uint64_t id = 0;
  // Set by fault injection; a receiver-side checksum would reject the
  // frame, so impaired media discard marked frames at the boundary.
  bool corrupted = false;
  // Causal identity of the RPC this frame serves (trace::TraceId; 0 =
  // untraced).  Stamped by the sending kernel so trace sinks and fault
  // observers can follow one operation across nodes, retransmits
  // included.
  std::uint64_t trace_id = 0;

  template <typename T>
  [[nodiscard]] const T& as() const {
    const T* p = std::any_cast<T>(&body);
    RELYNX_ASSERT_MSG(p != nullptr, "frame body has unexpected type");
    return *p;
  }
};

// Delivery callback, invoked in simulated time at the receiving node.
using FrameHandler = std::function<void(const Frame&)>;

class Medium {
 public:
  virtual ~Medium() = default;

  // Registers the receive handler for a node.  Must be called once per
  // node before any traffic involving it.
  virtual void attach(NodeId node, FrameHandler handler) = 0;

  // Queues a unicast frame.  Delivery obeys the medium's timing model.
  virtual void send(Frame frame) = 0;

  // Queues a broadcast; delivered to every attached node except the
  // sender.  Reliability is medium-specific (the CSMA bus may drop).
  virtual void broadcast(Frame frame) = 0;

  // Observability for experiments.
  [[nodiscard]] virtual std::uint64_t frames_sent() const = 0;
  [[nodiscard]] virtual std::uint64_t bytes_sent() const = 0;

 protected:
  // Gives every frame a medium-unique id on entry (idempotent: a
  // wrapping medium may have stamped it already).
  void stamp(Frame& frame) {
    if (frame.id == 0) frame.id = ++next_frame_id_;
  }

 private:
  std::uint64_t next_frame_id_ = 0;
};

}  // namespace net
