#include "net/token_ring.hpp"

namespace net {

void TokenRing::attach(NodeId node, FrameHandler handler) {
  RELYNX_ASSERT_MSG(!handlers_.contains(node), "node attached twice");
  handlers_.emplace(node, std::move(handler));
}

void TokenRing::send(Frame frame) {
  RELYNX_ASSERT_MSG(handlers_.contains(frame.dst), "send to unattached node");
  stamp(frame);
  backlog_.push_back(std::move(frame));
  if (!busy_) start_next();
}

void TokenRing::broadcast(Frame frame) {
  // The ring delivers a broadcast frame to every station in one rotation;
  // model as one transmission fanned out at completion.
  frame.dst = NodeId::invalid();
  stamp(frame);
  backlog_.push_back(std::move(frame));
  if (!busy_) start_next();
}

void TokenRing::start_next() {
  if (backlog_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Frame frame = std::move(backlog_.front());
  backlog_.pop_front();
  ++frames_;
  bytes_ += frame.payload_bytes;
  const sim::Duration service = service_time(frame.payload_bytes);
  engine_->schedule(service, [this, f = std::move(frame)]() mutable {
    deliver(std::move(f));
    start_next();
  });
}

void TokenRing::deliver(Frame frame) {
  if (frame.dst.valid()) {
    auto it = handlers_.find(frame.dst);
    RELYNX_ASSERT(it != handlers_.end());
    // Unicast: the frame moves end-to-end (its std::any body is never
    // cloned); only broadcast fan-out below copies.
    engine_->schedule(params_.propagation,
                      [h = &it->second, f = std::move(frame)] { (*h)(f); });
    return;
  }
  for (auto& [node, handler] : handlers_) {
    if (node == frame.src) continue;
    engine_->schedule(params_.propagation,
                      [h = &handler, f = frame] { (*h)(f); });
  }
}

}  // namespace net
