// The Crystal interconnect: a Proteon 10 Mbit/s token ring.
//
// Model: the ring is a single shared channel.  A node that wants to
// transmit waits for the token (modelled as a mean acquisition latency
// plus FIFO queueing behind other transmitters), clocks the frame out at
// the ring's bit rate with per-frame protocol overhead, and the frame
// arrives after a short propagation delay.  This reproduces what matters
// for the Charlotte experiments: serialized access, per-frame cost, and
// a wire fast enough (10 Mb/s) that kernel software, not the ring,
// dominates latency — exactly the regime of the paper's §3.3.
#pragma once

#include <deque>

#include "net/packet.hpp"
#include "sim/engine.hpp"

namespace net {

struct TokenRingParams {
  std::int64_t bits_per_second = 10'000'000;  // Proteon ProNET-10
  std::size_t header_bytes = 32;              // ring + Charlotte framing
  sim::Duration token_acquisition = sim::usec(150);  // mean token wait
  sim::Duration frame_overhead = sim::usec(50);      // interface turnaround
  sim::Duration propagation = sim::usec(10);
};

class TokenRing final : public Medium {
 public:
  TokenRing(sim::Engine& engine, TokenRingParams params = {})
      : engine_(&engine), params_(params) {}

  void attach(NodeId node, FrameHandler handler) override;
  void send(Frame frame) override;
  void broadcast(Frame frame) override;

  [[nodiscard]] std::uint64_t frames_sent() const override { return frames_; }
  [[nodiscard]] std::uint64_t bytes_sent() const override { return bytes_; }

  // Service time for one frame (token wait + clocking + overhead); used
  // by the calibration tests.
  [[nodiscard]] sim::Duration service_time(std::size_t payload_bytes) const {
    const auto bits = static_cast<std::int64_t>(
        8 * (payload_bytes + params_.header_bytes));
    return params_.token_acquisition + params_.frame_overhead +
           sim::transmission_time(bits, params_.bits_per_second);
  }

 private:
  void start_next();
  void deliver(Frame frame);

  sim::Engine* engine_;
  TokenRingParams params_;
  std::unordered_map<NodeId, FrameHandler> handlers_;
  std::deque<Frame> backlog_;
  bool busy_ = false;
  std::uint64_t frames_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace net
