#include "replica/replica.hpp"

#include <algorithm>
#include <string>
#include <utility>
#include <variant>

#include "charlotte/kernel.hpp"
#include "chrysalis/kernel.hpp"
#include "common/assert.hpp"
#include "fault/faulty_medium.hpp"
#include "fault/invariant_checker.hpp"
#include "lynx/connect.hpp"
#include "net/csma_bus.hpp"
#include "net/token_ring.hpp"
#include "sim/random.hpp"
#include "soda/kernel.hpp"
#include "trace/trace.hpp"

namespace replica {

const char* to_string(OpType t) {
  switch (t) {
    case OpType::kPut: return "put";
    case OpType::kGet: return "get";
    case OpType::kAdd: return "add";
  }
  return "?";
}

// All mutable group state lives here, behind one stable pointer, so the
// coroutine thread bodies (free functions per CP.51) can share it with
// the fault schedule and the view-change driver.
struct Group::Core {
  sim::Engine* engine = nullptr;
  Options opt;
  fault::FaultyMedium* medium = nullptr;  // borrowed from the Group
  std::function<std::unique_ptr<lynx::Process>(std::string, std::size_t)>
      spawn_process;

  struct Node {
    Role role = Role::kBackup;
    bool alive = true;
    Store store;
    PrimaryState ps;  // meaningful only while role == kPrimary
    std::vector<lynx::LinkHandle> initial_links;  // enabled by the serve loop
    std::unique_ptr<sim::WaitList> wake;  // parked serve loop <- rewire driver
  };
  struct Session {
    lynx::LinkHandle link;
    std::uint64_t generation = 0;
    std::unique_ptr<sim::WaitList> rewire;
  };

  std::vector<std::unique_ptr<lynx::Process>> replicas;
  std::vector<std::unique_ptr<lynx::Process>> clients;
  // Pre-restart incarnations, kept so their thread-failure logs survive.
  std::vector<std::unique_ptr<lynx::Process>> graveyard;
  std::vector<Node> nodes;
  std::vector<Session> sessions;

  Metrics metrics;
  std::uint64_t view = 0;
  std::size_t primary = 0;
  std::size_t crashed_primary = SIZE_MAX;  // victim of crash_primary_at
};

namespace {

using Core = Group::Core;
using net::NodeId;

net::CsmaBusParams quiet_bus() {
  net::CsmaBusParams p;
  p.broadcast_drop_prob = 0.0;  // loss would come from a plan, not the bus
  return p;
}

std::int64_t arg_i64(const lynx::Message& m, std::size_t i) {
  return std::get<std::int64_t>(m.args.at(i));
}

std::int64_t kv_read(const Store& st, std::int64_t key, bool stale) {
  const auto cur = st.kv.find(key);
  const std::int64_t live = cur == st.kv.end() ? 0 : cur->second;
  if (!stale) return live;
  // The planted bug: answer from the value each key held before its
  // most recent committed write.
  const auto p = st.prev.find(key);
  return p == st.prev.end() ? live : p->second;
}

std::int64_t kv_write(Store& st, OpType t, std::int64_t key, std::int64_t arg) {
  const auto cur = st.kv.find(key);
  const std::int64_t old = cur == st.kv.end() ? 0 : cur->second;
  const std::int64_t next = t == OpType::kPut ? arg : old + arg;
  st.prev[key] = old;
  st.kv[key] = next;
  return next;
}

// ---- service threads (coroutine bodies are free functions, CP.51) ----

// Full-state catch-up of freshly wired backups; run by the primary's
// serve loop around each receive so a new primary syncs its survivors
// before it commits anything in the new view.
sim::Task<> drain_pending(lynx::ThreadCtx& ctx, Core* g, std::size_t idx) {
  Core::Node& me = g->nodes[idx];
  while (me.role == Role::kPrimary && !me.ps.pending.empty()) {
    const lynx::LinkHandle bl = me.ps.pending.front();
    me.ps.pending.pop_front();
    lynx::Message m;
    m.op = "sync";
    m.args.push_back(static_cast<std::int64_t>(me.store.view));
    m.args.push_back(static_cast<std::int64_t>(me.store.applied));
    for (const auto& [k, v] : me.store.kv) {
      m.args.push_back(k);
      m.args.push_back(v);
    }
    try {
      (void)co_await ctx.call(bl, std::move(m));
      me.ps.backups.push_back({bl, true});
    } catch (const lynx::LynxError&) {
      // The fresh backup died before syncing; it can rejoin later.
    }
    if (ctx.process().terminated()) co_return;
  }
}

sim::Task<> serve_one(lynx::ThreadCtx& ctx, Core* g, std::size_t idx,
                      lynx::Incoming in) {
  Core::Node& me = g->nodes[idx];
  const lynx::Message& m = in.msg;
  // The runtime stamps every reply with the request's op, so success is
  // an args convention: [0, payload] for ok, [1] for nak.
  lynx::Message rep;
  rep.args.push_back(std::int64_t{0});
  if (m.op == "kv" && me.role == Role::kPrimary) {
    const auto t = static_cast<OpType>(arg_i64(m, 0));
    const std::int64_t key = arg_i64(m, 1);
    const std::int64_t arg = arg_i64(m, 2);
    std::int64_t result = 0;
    if (t == OpType::kGet) {
      // Reads are served at the primary; there is one primary at a
      // time by construction, so no backup round trip is needed.
      result = kv_read(me.store, key, g->opt.debug_stale_reads);
    } else {
      const std::uint64_t seq = me.ps.next_seq++;
      for (BackupSlot& b : me.ps.backups) {
        if (!b.alive) continue;
        lynx::Message fwd;
        fwd.op = "rep";
        fwd.args = {static_cast<std::int64_t>(me.store.view),
                    static_cast<std::int64_t>(seq),
                    static_cast<std::int64_t>(t), key, arg};
        try {
          (void)co_await ctx.call(b.link, std::move(fwd));
        } catch (const lynx::LynxError&) {
          b.alive = false;  // a dead backup leaves the fan-out
        }
        if (ctx.process().terminated()) co_return;
      }
      result = kv_write(me.store, t, key, arg);
      me.store.applied = seq;
      g->metrics.first_commit_in_view.try_emplace(me.store.view,
                                                  ctx.engine().now());
    }
    rep.args.push_back(result);
  } else if (m.op == "rep") {
    const auto view = static_cast<std::uint64_t>(arg_i64(m, 0));
    const auto seq = static_cast<std::uint64_t>(arg_i64(m, 1));
    if (view >= me.store.view) {
      me.store.view = view;
      if (seq == me.store.applied + 1) {
        (void)kv_write(me.store, static_cast<OpType>(arg_i64(m, 2)),
                       arg_i64(m, 3), arg_i64(m, 4));
        me.store.applied = seq;
      }
      // seq <= applied is a duplicate of something already applied.  A
      // gap (seq > applied+1) means we missed ops while out of the
      // fan-out; the "sync" that readmits us repairs it wholesale.
    }
    rep.args.push_back(static_cast<std::int64_t>(me.store.applied));
  } else if (m.op == "sync") {
    const auto view = static_cast<std::uint64_t>(arg_i64(m, 0));
    if (view >= me.store.view) {
      me.store = Store{};
      me.store.view = view;
      me.store.applied = static_cast<std::uint64_t>(arg_i64(m, 1));
      for (std::size_t i = 2; i + 1 < m.args.size(); i += 2) {
        me.store.kv[std::get<std::int64_t>(m.args[i])] =
            std::get<std::int64_t>(m.args[i + 1]);
      }
    }
    rep.args.push_back(static_cast<std::int64_t>(me.store.applied));
  } else {
    rep.args[0] = 1;  // nak: e.g. a client op that reached a mere backup
  }
  try {
    co_await ctx.reply(in, std::move(rep));
  } catch (const lynx::LynxError&) {
    // The caller died while we served; nobody is left to tell.
  }
}

// One serve loop per replica process for its whole life; the node's
// role flips between backup and primary via shared state, so whichever
// parked receive() picks a request up handles it correctly.
sim::Task<> node_serve(lynx::ThreadCtx& ctx, Core* g, std::size_t idx) {
  Core::Node& me = g->nodes[idx];
  for (const lynx::LinkHandle l : me.initial_links) ctx.enable_requests(l);
  me.initial_links.clear();
  for (;;) {
    co_await drain_pending(ctx, g, idx);
    lynx::Incoming in;
    bool queues_dead = false;
    try {
      in = co_await ctx.receive();
    } catch (const lynx::LynxError&) {
      // Every open request queue died: our peer crashed, or we were
      // terminated.
      queues_dead = true;
    }
    if (queues_dead) {
      // Park until the harness wires a replacement link (another
      // receive() would rethrow immediately — spinning, not waiting).
      if (ctx.process().terminated()) co_return;
      co_await me.wake->wait();
      if (ctx.process().terminated()) co_return;
      continue;
    }
    // A view change or rejoin may have queued catch-up work while the
    // request above was in flight; a new primary must sync before its
    // first commit of the view.
    co_await drain_pending(ctx, g, idx);
    co_await serve_one(ctx, g, idx, std::move(in));
    if (ctx.process().terminated()) co_return;
  }
}

sim::Task<> client_run(lynx::ThreadCtx& ctx, Core* g, std::size_t cidx) {
  Core::Session& sess = g->sessions[cidx];
  const auto node = static_cast<std::uint32_t>(g->opt.replicas + cidx);
  co_await ctx.delay(g->opt.start_delay);
  for (int i = 0; i < g->opt.ops_per_client; ++i) {
    if (i > 0 && g->opt.think > 0) co_await ctx.delay(g->opt.think);
    const OpType t = i % 3 == 0   ? OpType::kPut
                     : i % 3 == 1 ? OpType::kGet
                                  : OpType::kAdd;
    const std::int64_t key = (static_cast<std::int64_t>(cidx) + i) %
                             std::max<std::int64_t>(1, g->opt.keys);
    // Put values are unique and nonzero so the linearizability oracle
    // can tell every write apart; adds are small distinct deltas.
    const std::int64_t arg =
        t == OpType::kPut
            ? ((static_cast<std::int64_t>(cidx) + 1) << 16) + i + 1
            : (t == OpType::kAdd ? static_cast<std::int64_t>(cidx) + i + 1
                                 : 0);
    auto* rec = trace::get(ctx.engine());
    const trace::TraceId op_trace = rec != nullptr ? rec->new_trace() : 0;
    ctx.set_trace_context(op_trace);
    if (rec != nullptr) {
      rec->instant(node, "app", "kv.invoke", op_trace,
                   (static_cast<std::uint64_t>(t) << 32) |
                       static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                           static_cast<std::int32_t>(key))),
                   static_cast<std::uint64_t>(arg));
    }
    const sim::Time began = ctx.engine().now();
    // Capture the session generation *before* calling: on a slow
    // transport (SODA) the harness may rewire us while the call is
    // still dying, and waiting for a bump that already happened would
    // park this client forever.
    const std::uint64_t gen = sess.generation;
    bool ok = false;
    std::int64_t result = 0;
    try {
      lynx::Message req;
      req.op = "kv";
      req.args = {static_cast<std::int64_t>(t), key, arg};
      lynx::Message rep = co_await ctx.call(sess.link, std::move(req));
      ok = rep.args.size() >= 2 && std::get<std::int64_t>(rep.args[0]) == 0;
      if (ok) result = std::get<std::int64_t>(rep.args[1]);
    } catch (const lynx::LynxError&) {
      ok = false;
    }
    rec = trace::get(ctx.engine());
    if (ok) {
      if (rec != nullptr) {
        rec->instant(node, "app", "kv.ok", op_trace,
                     static_cast<std::uint64_t>(result), 0);
      }
      ++g->metrics.ok;
      const double us = sim::to_usec(ctx.engine().now() - began);
      (t == OpType::kGet ? g->metrics.read_latency : g->metrics.write_latency)
          .add(us);
    } else {
      // The outcome is unknown: the op may or may not have committed
      // before the link died.  kv.err marks it optional for the oracle.
      if (rec != nullptr) rec->instant(node, "app", "kv.err", op_trace, 0, 0);
      ++g->metrics.err;
      if (ctx.process().terminated()) co_return;
      // Wait out the fail-over, then move on to the NEXT op on the
      // replacement link (no retry: a duplicate commit would be a
      // different history than the one we recorded).
      while (sess.generation == gen) co_await sess.rewire->wait();
    }
  }
}

// Short-lived helper thread: opening a request queue is a ThreadCtx
// operation, and the resident serve loop may be parked inside the
// backend (unreachable) when a replacement link appears.
sim::Task<> enable_links(lynx::ThreadCtx& ctx,
                         std::vector<lynx::LinkHandle> links) {
  for (const lynx::LinkHandle l : links) {
    try {
      ctx.enable_requests(l);
    } catch (const lynx::LynxError&) {
      // Destroyed before we ran; the peer will find out the usual way.
    }
  }
  co_return;
}

sim::Task<> wire_initial(Core* g) {
  for (std::size_t b = 1; b < g->nodes.size(); ++b) {
    auto [pe, be] = co_await lynx::connect_any(*g->replicas[0], *g->replicas[b]);
    g->nodes[0].ps.backups.push_back({pe, true});
    g->nodes[b].initial_links.push_back(be);
  }
  for (std::size_t c = 0; c < g->sessions.size(); ++c) {
    auto [pe, ce] = co_await lynx::connect_any(*g->replicas[0], *g->clients[c]);
    g->nodes[0].initial_links.push_back(pe);
    g->sessions[c].link = ce;
  }
}

// ---- fault schedule ---------------------------------------------------

void crash_node(Core* g, std::size_t idx) {
  // Medium first: a crashed node cannot transmit, so the frames its
  // teardown would have sent die on the wire (Charlotte peers learn of
  // the crash from the distributed kernel's notice instead; SODA peers
  // only ever find out from their own timeouts).
  if (g->medium != nullptr) {
    g->medium->crash(NodeId(static_cast<std::uint32_t>(idx)));
  }
  g->nodes[idx].alive = false;
  g->replicas[idx]->terminate();
}

// Harness-driven view change: anoint the live replica with the most
// applied ops (it is a superset of every other survivor — the old
// primary applied only after all live backups acknowledged, so
// survivors differ by at most the op in flight), wire it to the other
// survivors and to every client, and wake the world up.
sim::Task<> view_change(Core* g) {
  std::size_t np = SIZE_MAX;
  for (std::size_t i = 0; i < g->nodes.size(); ++i) {
    if (!g->nodes[i].alive) continue;
    if (np == SIZE_MAX ||
        g->nodes[i].store.applied > g->nodes[np].store.applied) {
      np = i;
    }
  }
  if (np == SIZE_MAX) co_return;  // total wipeout; clients stay parked
  g->primary = np;
  Core::Node& p = g->nodes[np];
  p.role = Role::kPrimary;
  p.store.view = ++g->view;
  p.ps = PrimaryState{};
  p.ps.next_seq = p.store.applied + 1;

  for (std::size_t s = 0; s < g->nodes.size(); ++s) {
    if (s == np || !g->nodes[s].alive) continue;
    auto [pe, be] =
        co_await lynx::connect_any(*g->replicas[np], *g->replicas[s]);
    const std::vector<lynx::LinkHandle> links{be};
    g->replicas[s]->spawn_thread("enable", [links](lynx::ThreadCtx& ctx) {
      return enable_links(ctx, links);
    });
    p.ps.pending.push_back(pe);  // synced before the first new commit
  }
  std::vector<lynx::LinkHandle> primary_ends;
  for (std::size_t c = 0; c < g->sessions.size(); ++c) {
    auto [pe, ce] = co_await lynx::connect_any(*g->replicas[np], *g->clients[c]);
    primary_ends.push_back(pe);
    g->sessions[c].link = ce;
  }
  g->replicas[np]->spawn_thread("enable", [primary_ends](lynx::ThreadCtx& ctx) {
    return enable_links(ctx, primary_ends);
  });
  // Let the enabler threads open every queue before anyone sends: a
  // request arriving at a closed queue would be screened off.
  co_await g->engine->sleep(sim::msec(1));
  for (Core::Node& n : g->nodes) {
    if (n.alive) n.wake->wake_all();
  }
  for (Core::Session& sess : g->sessions) {
    ++sess.generation;
    sess.rewire->wake_all();
  }
}

// A crashed replica comes back empty on the same node and rejoins the
// current primary's fan-out as a backup (catch-up via "sync").
sim::Task<> rejoin(Core* g, std::size_t idx) {
  if (g->medium != nullptr) {
    g->medium->restart(NodeId(static_cast<std::uint32_t>(idx)));
  }
  g->graveyard.push_back(std::move(g->replicas[idx]));
  g->replicas[idx] = g->spawn_process("rep" + std::to_string(idx), idx);
  Core::Node& me = g->nodes[idx];
  me.role = Role::kBackup;
  me.store = Store{};
  me.ps = PrimaryState{};
  g->replicas[idx]->start();
  lynx::Process* primary = g->replicas[g->primary].get();
  if (primary->terminated()) co_return;  // nobody to rejoin
  auto [pe, be] = co_await lynx::connect_any(*primary, *g->replicas[idx]);
  me.initial_links.push_back(be);
  g->replicas[idx]->spawn_thread("serve", [g, idx](lynx::ThreadCtx& ctx) {
    return node_serve(ctx, g, idx);
  });
  me.alive = true;
  g->nodes[g->primary].ps.pending.push_back(pe);
  g->nodes[g->primary].wake->wake_all();
}

}  // namespace

// ---- Group -----------------------------------------------------------

Group::Group(sim::Engine& engine, load::Substrate substrate, Options opt)
    : engine_(&engine), substrate_(substrate), opt_(opt) {
  RELYNX_ASSERT(opt_.replicas >= 1 && opt_.clients >= 1);
  const std::size_t total = opt_.replicas + opt_.clients;
  switch (substrate_) {
    case load::Substrate::kCharlotte: {
      ring_ = std::make_unique<net::TokenRing>(engine);
      medium_ =
          std::make_unique<fault::FaultyMedium>(engine, *ring_, opt_.seed);
      invariants_ = std::make_unique<fault::InvariantChecker>(*medium_);
      charlotte::Costs ccosts;
      ccosts.form_delay = opt_.form_delay;
      ccosts.form_max_bytes = opt_.form_max_bytes;
      cluster_ = std::make_unique<charlotte::Cluster>(engine, total, *medium_,
                                                      ccosts);
      // Charlotte's distributed kernel knows the state of every link:
      // a crash becomes an absolute node-down notice at every peer.
      medium_->on_crash(
          [this](net::NodeId n) { cluster_->notify_node_down(n); });
      break;
    }
    case load::Substrate::kSoda: {
      bus_ = std::make_unique<net::CsmaBus>(engine, sim::Rng(opt_.seed),
                                            quiet_bus());
      medium_ = std::make_unique<fault::FaultyMedium>(engine, *bus_, opt_.seed);
      invariants_ = std::make_unique<fault::InvariantChecker>(*medium_);
      // Transport acks on: SODA has no absolute crash notice, so a call
      // into a crashed node must die by retransmission exhaustion
      // (CrashInterrupt) rather than hang forever (§2, §4.1).
      soda::Costs costs;
      costs.ack_timeout = sim::msec(10);
      costs.form_delay = opt_.form_delay;
      costs.form_max_bytes = opt_.form_max_bytes;
      network_ = std::make_unique<soda::Network>(engine, total, *medium_, costs);
      // SODA peers get no crash notice — a call parked at a node that
      // dies would hang forever.  The reboot announcement is the lazy
      // SODA-style resolution: when the node returns, peers learn their
      // rendezvous there died (calls into the *down* node die earlier,
      // by transport-ack exhaustion).
      medium_->on_restart(
          [this](net::NodeId n) { network_->kernel(n).announce_reboot(); });
      break;
    }
    case load::Substrate::kChrysalis: {
      // Shared-memory Butterfly: no medium; crash is pure termination.
      net::ButterflyParams fabric;
      fabric.nodes = static_cast<std::uint32_t>(total);
      kernel_ = std::make_unique<chrysalis::Kernel>(engine, fabric);
      break;
    }
  }

  core_ = std::make_unique<Core>();
  Core* g = core_.get();
  g->engine = &engine;
  g->opt = opt_;
  g->medium = medium_.get();
  g->spawn_process = [this](std::string name, std::size_t node) {
    return make_process(std::move(name), node);
  };
  g->nodes.resize(opt_.replicas);
  for (Core::Node& n : g->nodes) {
    n.wake = std::make_unique<sim::WaitList>(engine);
  }
  g->nodes[0].role = Role::kPrimary;
  g->sessions.resize(opt_.clients);
  for (Core::Session& s : g->sessions) {
    s.rewire = std::make_unique<sim::WaitList>(engine);
  }
  for (std::size_t i = 0; i < opt_.replicas; ++i) {
    g->replicas.push_back(make_process("rep" + std::to_string(i), i));
  }
  for (std::size_t i = 0; i < opt_.clients; ++i) {
    g->clients.push_back(
        make_process("cli" + std::to_string(i), opt_.replicas + i));
  }
  for (auto& p : g->replicas) p->start();
  for (auto& p : g->clients) p->start();

  engine.spawn("replica-wire", wire_initial(g));
  engine.run();  // only bootstrap traffic exists yet
  for (const Core::Session& s : g->sessions) {
    RELYNX_ASSERT_MSG(s.link.valid(), "replica wiring incomplete");
  }

  for (std::size_t i = 0; i < opt_.replicas; ++i) {
    g->replicas[i]->spawn_thread("serve", [g, i](lynx::ThreadCtx& ctx) {
      return node_serve(ctx, g, i);
    });
  }
  for (std::size_t i = 0; i < opt_.clients; ++i) {
    g->clients[i]->spawn_thread("drive", [g, i](lynx::ThreadCtx& ctx) {
      return client_run(ctx, g, i);
    });
  }

  // The fault schedule.  Times are absolute; anything already in the
  // past (wiring overran it) fires immediately after construction.
  const auto at = [&engine](sim::Time t) { return std::max(t, engine.now()); };
  if (opt_.crash_primary_at > 0) {
    engine.schedule_at(at(opt_.crash_primary_at), [g] {
      g->crashed_primary = g->primary;
      g->metrics.crash_primary_time = g->engine->now();
      crash_node(g, g->primary);
    });
    engine.schedule_at(at(opt_.crash_primary_at + opt_.failover_delay), [g] {
      g->engine->spawn("view-change", view_change(g));
    });
  }
  if (opt_.restart_primary_at > 0) {
    engine.schedule_at(at(opt_.restart_primary_at), [g] {
      if (g->crashed_primary != SIZE_MAX &&
          !g->nodes[g->crashed_primary].alive) {
        g->engine->spawn("rejoin", rejoin(g, g->crashed_primary));
      }
    });
  }
  if (opt_.crash_backup_at > 0 && opt_.replicas >= 2) {
    const std::size_t victim = opt_.replicas - 1;
    engine.schedule_at(at(opt_.crash_backup_at), [g, victim] {
      if (g->primary != victim && g->nodes[victim].alive) {
        crash_node(g, victim);
      }
    });
  }
  if (opt_.restart_backup_at > 0 && opt_.replicas >= 2) {
    const std::size_t victim = opt_.replicas - 1;
    engine.schedule_at(at(opt_.restart_backup_at), [g, victim] {
      if (!g->nodes[victim].alive) {
        g->engine->spawn("rejoin", rejoin(g, victim));
      }
    });
  }
}

Group::~Group() {
  // Destroy parked frames while processes and kernels are still alive.
  engine_->shutdown();
}

std::unique_ptr<lynx::Process> Group::make_process(std::string name,
                                                   std::size_t node) {
  const net::NodeId nid(static_cast<std::uint32_t>(node));
  switch (substrate_) {
    case load::Substrate::kCharlotte:
      return std::make_unique<lynx::Process>(
          *engine_, std::move(name),
          lynx::make_charlotte_backend(*cluster_, nid),
          lynx::vax_runtime_costs());
    case load::Substrate::kSoda:
      return std::make_unique<lynx::Process>(
          *engine_, std::move(name),
          lynx::make_soda_backend(*network_, directory_, nid),
          lynx::pdp11_runtime_costs());
    case load::Substrate::kChrysalis: {
      lynx::ChrysalisBackendParams bp;
      bp.form_delay = opt_.form_delay;
      bp.form_max_notices = std::max<std::size_t>(2, opt_.form_max_bytes / 16);
      return std::make_unique<lynx::Process>(
          *engine_, std::move(name),
          lynx::make_chrysalis_backend(*kernel_, nid, bp),
          lynx::mc68000_runtime_costs());
    }
  }
  return nullptr;
}

std::uint64_t Group::view() const { return core_->view; }
std::size_t Group::primary_index() const { return core_->primary; }
bool Group::alive(std::size_t replica) const {
  return core_->nodes.at(replica).alive;
}
const Store& Group::store(std::size_t replica) const {
  return core_->nodes.at(replica).store;
}
const Metrics& Group::metrics() const { return core_->metrics; }
lynx::Process& Group::replica_process(std::size_t i) {
  return *core_->replicas.at(i);
}
lynx::Process& Group::client_process(std::size_t i) {
  return *core_->clients.at(i);
}
fault::FaultyMedium* Group::medium() { return medium_.get(); }

std::optional<std::string> Group::invariant_violation() const {
  if (invariants_ == nullptr || invariants_->ok()) return std::nullopt;
  return invariants_->violations().front();
}

std::vector<std::string> Group::thread_failures() const {
  std::vector<std::string> out;
  const auto collect = [&out](const auto& procs) {
    for (const auto& p : procs) {
      for (const std::string& f : p->thread_failures()) out.push_back(f);
    }
  };
  collect(core_->replicas);
  collect(core_->clients);
  collect(core_->graveyard);
  return out;
}

std::optional<sim::Duration> Group::failover_recovery() const {
  if (core_->metrics.crash_primary_time == 0) return std::nullopt;
  for (const auto& [view, t] : core_->metrics.first_commit_in_view) {
    if (view >= 1) return t - core_->metrics.crash_primary_time;
  }
  return std::nullopt;
}

}  // namespace replica
