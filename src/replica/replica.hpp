// A replicated key-value/counter service built from nothing but LYNX
// primitives — the paper's thesis made stateful.  A primary accepts
// client operations over ordinary links, forwards writes to its
// backups over ordinary links ("rep" messages carrying a view number
// and an op sequence, viewstamped-style), applies and acknowledges
// only after every live backup has acknowledged, and survives node
// crash/restart: primary fail-over is a view change driven by the
// deployment harness (pick the survivor with the most applied ops,
// bump the view, rewire clients), and a restarted replica catches up
// from a full-state "sync" before rejoining the commit fan-out.
//
// There is no consensus protocol here on purpose: one primary exists
// at a time by construction (the harness terminates the old one before
// anointing a successor), which is exactly the regime where
// primary-backup gives linearizability — and the linearizability
// oracle in src/check/linearizability.hpp holds it to that, consuming
// the kv.invoke / kv.ok / kv.err instants the clients emit on the
// "app" trace track.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "load/fleet.hpp"
#include "lynx/lynx.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "sim/sync.hpp"

namespace charlotte {
class Cluster;
}
namespace soda {
class Network;
}
namespace chrysalis {
class Kernel;
}
namespace net {
class TokenRing;
class CsmaBus;
}
namespace fault {
class FaultyMedium;
class InvariantChecker;
}

namespace replica {

enum class OpType : std::uint8_t { kPut = 0, kGet = 1, kAdd = 2 };

[[nodiscard]] const char* to_string(OpType t);

struct Options {
  std::size_t replicas = 3;  // nodes 0..replicas-1; node 0 starts as primary
  std::size_t clients = 2;   // nodes replicas..replicas+clients-1
  int ops_per_client = 8;
  std::int64_t keys = 2;     // small keyspace => contention => oracle power
  std::uint64_t seed = 1;    // medium randomness (SODA bus, FaultyMedium)
  sim::Duration think = sim::msec(1);     // client gap between operations
  sim::Duration start_delay = sim::msec(5);  // wiring settles before traffic

  // Fault schedule, absolute simulated times; 0 = never.  The crash
  // victim of crash_primary_at is whichever node is primary *then*.
  sim::Time crash_primary_at = 0;
  sim::Time restart_primary_at = 0;  // the ex-primary rejoins as a backup
  sim::Time crash_backup_at = 0;     // crashes node replicas-1
  sim::Time restart_backup_at = 0;
  sim::Duration failover_delay = sim::msec(5);  // detection -> view change

  // RPC formation (src/form/, DESIGN.md §14): the primary's commit
  // fan-out emits one small Apply frame per backup per write, so
  // co-destined frames batch well.  0 = frame-per-message (default).
  sim::Duration form_delay = 0;
  std::size_t form_max_bytes = 1024;

  // Planted bug for the oracle self-test (the debug_drop_reacks idiom):
  // the primary serves every get from a snapshot that lags the last
  // committed write to that key by one, a classic stale read.
  bool debug_stale_reads = false;
};

// One replica's durable state (lost on crash, rebuilt by "sync").
struct Store {
  std::map<std::int64_t, std::int64_t> kv;
  // Last overwritten value per key; only read by debug_stale_reads.
  std::map<std::int64_t, std::int64_t> prev;
  std::uint64_t applied = 0;  // op sequence number reached
  std::uint64_t view = 0;
};

enum class Role : std::uint8_t { kPrimary, kBackup };

struct BackupSlot {
  lynx::LinkHandle link;  // primary's calling end
  bool alive = true;
};

// Commit-side state, used only while a node is primary.
struct PrimaryState {
  std::uint64_t next_seq = 1;
  std::vector<BackupSlot> backups;
  // Freshly (re)wired backups awaiting a full-state sync before they
  // join the fan-out; drained by the serve loop around each receive.
  std::deque<lynx::LinkHandle> pending;
};

struct Metrics {
  sim::Histogram write_latency;  // client-observed commit latency, usec
  sim::Histogram read_latency;   // usec
  std::uint64_t ok = 0;
  std::uint64_t err = 0;
  sim::Time crash_primary_time = 0;
  // First commit applied in each view; views[1] - crash_primary_time is
  // the fail-over recovery time.
  std::map<std::uint64_t, sim::Time> first_commit_in_view;
};

class Group {
 public:
  // Builds the whole world on `engine` — substrate, processes, links,
  // service threads, fault schedule — and runs the engine until the
  // bootstrap wiring has finished (the Fleet discipline).  The caller
  // then drives the workload with engine.run().
  Group(sim::Engine& engine, load::Substrate substrate, Options opt);
  Group(const Group&) = delete;
  Group& operator=(const Group&) = delete;
  // Shuts the engine down first so parked frames die while the kernels
  // and processes they reference are still alive.
  ~Group();

  [[nodiscard]] sim::Engine& engine() { return *engine_; }
  [[nodiscard]] load::Substrate substrate() const { return substrate_; }
  [[nodiscard]] const Options& options() const { return opt_; }

  [[nodiscard]] std::uint64_t view() const;
  [[nodiscard]] std::size_t primary_index() const;
  [[nodiscard]] bool alive(std::size_t replica) const;
  [[nodiscard]] const Store& store(std::size_t replica) const;
  [[nodiscard]] const Metrics& metrics() const;

  [[nodiscard]] lynx::Process& replica_process(std::size_t i);
  [[nodiscard]] lynx::Process& client_process(std::size_t i);
  [[nodiscard]] fault::FaultyMedium* medium();
  // First medium-invariant violation, if any (empty when there is no
  // medium, i.e. Chrysalis).
  [[nodiscard]] std::optional<std::string> invariant_violation() const;
  // Thread failures across every process this group ever ran,
  // including pre-restart incarnations.
  [[nodiscard]] std::vector<std::string> thread_failures() const;

  // Fail-over recovery time: first commit of view 1 minus the primary
  // crash instant.  Empty until both have happened.
  [[nodiscard]] std::optional<sim::Duration> failover_recovery() const;

  struct Core;  // shared by the service-thread bodies in replica.cpp

 private:
  [[nodiscard]] std::unique_ptr<lynx::Process> make_process(std::string name,
                                                            std::size_t node);

  sim::Engine* engine_;
  load::Substrate substrate_;
  Options opt_;

  // Substrate members, engine-first declaration order so teardown runs
  // processes -> kernels -> medium (reverse order), mirroring Fleet.
  std::unique_ptr<net::TokenRing> ring_;
  std::unique_ptr<net::CsmaBus> bus_;
  std::unique_ptr<fault::FaultyMedium> medium_;
  std::unique_ptr<fault::InvariantChecker> invariants_;
  std::unique_ptr<charlotte::Cluster> cluster_;
  lynx::SodaDirectory directory_;
  std::unique_ptr<soda::Network> network_;
  std::unique_ptr<chrysalis::Kernel> kernel_;

  std::unique_ptr<Core> core_;  // holds all processes and mutable state
};

}  // namespace replica
