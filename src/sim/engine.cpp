#include "sim/engine.hpp"

#include <ostream>

#include "trace/trace.hpp"

namespace sim {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* to_string(TieBreak tie_break) {
  switch (tie_break) {
    case TieBreak::kFifo: return "fifo";
    case TieBreak::kSeededPermutation: return "perm";
    case TieBreak::kPriorityFuzz: return "fuzz";
  }
  return "?";
}

std::uint64_t Engine::tie_key(std::uint64_t seq) const {
  if (tie_policy_.kind == TieBreak::kFifo || seq >= tie_policy_.horizon) {
    return seq;
  }
  const std::uint64_t h = splitmix64(tie_policy_.seed ^ seq);
  if (tie_policy_.kind == TieBreak::kSeededPermutation) return h;
  // kPriorityFuzz: a seeded quarter of events get random keys.  Hash
  // keys are almost always larger than sequence numbers, so fuzzed
  // events are demoted behind their same-instant FIFO peers.
  return (h & 3) == 0 ? h : seq;
}

Engine::~Engine() { shutdown(); }

void Engine::shutdown() {
  // Destroy any still-suspended process frames (servers parked at a block
  // point when the experiment ended).  Destroying the root frame unwinds
  // nested Task frames because each child Task object lives inside its
  // awaiter's frame.  Promise destructors mutate roots_, so detach first.
  auto roots = std::move(roots_);
  roots_.clear();
  for (auto& [id, handle] : roots) {
    (void)id;
    if (handle && !handle.done()) handle.destroy();
  }
  // Unwinding frames can enqueue wakeups (e.g. a serializer guard waking
  // the next waiter, whose frame we then destroy too).  Those events hold
  // handles to frames that no longer exist: drop them so a post-shutdown
  // step()/run() is a no-op instead of a resume-after-destroy.
  queue_.clear();
  cancelled_ = 0;
  live_ = 0;
  shut_down_ = true;
}

void Engine::push_event(Event ev) {
  queue_.push_back(std::move(ev));
  std::push_heap(queue_.begin(), queue_.end(), Later{});
}

Engine::Event Engine::pop_event() {
  std::pop_heap(queue_.begin(), queue_.end(), Later{});
  Event ev = std::move(queue_.back());
  queue_.pop_back();
  return ev;
}

bool Engine::prune_head() {
  while (!queue_.empty()) {
    const Event& head = queue_.front();
    if (!head.alive || *head.alive) return true;
    (void)pop_event();
    if (cancelled_ > 0) --cancelled_;
  }
  return false;
}

void Engine::note_cancelled() {
  ++cancelled_;
  // Reclaim once dead events dominate: O(n) rebuild amortized against
  // the n cancellations that triggered it.
  if (cancelled_ >= 64 && cancelled_ * 2 >= queue_.size()) compact();
}

void Engine::compact() {
  std::erase_if(queue_,
                [](const Event& ev) { return ev.alive && !*ev.alive; });
  std::make_heap(queue_.begin(), queue_.end(), Later{});
  cancelled_ = 0;
}

void Engine::schedule(Duration delay, std::function<void()> fn) {
  RELYNX_ASSERT_MSG(delay >= 0, "cannot schedule into the past");
  const std::uint64_t seq = next_seq_++;
  push_event(Event{now_ + delay, seq, tie_key(seq), std::move(fn), nullptr});
}

void Engine::schedule_at(Time t, std::function<void()> fn) {
  RELYNX_ASSERT_MSG(t >= now_, "cannot schedule into the past");
  const std::uint64_t seq = next_seq_++;
  push_event(Event{t, seq, tie_key(seq), std::move(fn), nullptr});
}

TimerHandle Engine::schedule_cancellable(Duration delay,
                                         std::function<void()> fn) {
  RELYNX_ASSERT_MSG(delay >= 0, "cannot schedule into the past");
  auto alive = std::make_shared<bool>(true);
  TimerHandle handle(this, alive);
  const std::uint64_t seq = next_seq_++;
  push_event(Event{now_ + delay, seq, tie_key(seq), std::move(fn),
                   std::move(alive)});
  return handle;
}

bool Engine::step() {
  if (!prune_head()) return false;
  Event ev = pop_event();
  RELYNX_ASSERT(ev.at >= now_);
  now_ = ev.at;
  if (ev.alive) *ev.alive = false;  // fired: handle reports !pending()
  ev.fn();
  return true;
}

void Engine::run() {
  stop_requested_ = false;
  while (!stop_requested_ && step()) {
  }
}

bool Engine::run_until(Time deadline) {
  stop_requested_ = false;
  while (!stop_requested_) {
    if (!prune_head()) return true;
    if (queue_.front().at > deadline) return false;
    step();
  }
  return false;
}

Engine::Root Engine::drive(std::uint64_t id, std::string name, Task<> body) {
  (void)id;
  ++live_;
  try {
    co_await std::move(body);
  } catch (const std::exception& e) {
    failures_.push_back(name + ": " + e.what());
  } catch (...) {
    failures_.push_back(name + ": non-standard exception");
  }
  --live_;
}

void Engine::spawn(std::string name, Task<> body) {
  RELYNX_ASSERT_MSG(body.valid(), "spawn of empty task");
  const std::uint64_t id = next_root_++;
  Root root = drive(id, std::move(name), std::move(body));
  schedule(0, [h = root.handle] { h.resume(); });
}

void Engine::trace(const char* category, const std::string& message) {
  // Re-routed through the structured recorder: the legacy ostream form
  // stays available (here, and via trace::render_text over the stream).
  if (auto* rec = trace::get(*this)) rec->text(0, category, message);
  if (!trace_os_) return;
  *trace_os_ << "[" << to_usec(now_) << "us] " << category << ": " << message
             << "\n";
}

}  // namespace sim
