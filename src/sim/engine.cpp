#include "sim/engine.hpp"

#include <ostream>

namespace sim {

Engine::~Engine() {
  // Destroy any still-suspended process frames (servers parked at a block
  // point when the experiment ended).  Destroying the root frame unwinds
  // nested Task frames because each child Task object lives inside its
  // awaiter's frame.  Promise destructors mutate roots_, so detach first.
  auto roots = std::move(roots_);
  roots_.clear();
  for (auto& [id, handle] : roots) {
    (void)id;
    if (handle && !handle.done()) handle.destroy();
  }
}

void Engine::schedule(Duration delay, std::function<void()> fn) {
  RELYNX_ASSERT_MSG(delay >= 0, "cannot schedule into the past");
  queue_.push(Event{now_ + delay, next_seq_++, std::move(fn)});
}

void Engine::schedule_at(Time t, std::function<void()> fn) {
  RELYNX_ASSERT_MSG(t >= now_, "cannot schedule into the past");
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

TimerHandle Engine::schedule_cancellable(Duration delay,
                                         std::function<void()> fn) {
  auto alive = std::make_shared<bool>(true);
  TimerHandle handle(alive);
  schedule(delay, [alive = std::move(alive), fn = std::move(fn)] {
    if (*alive) {
      *alive = false;
      fn();
    }
  });
  return handle;
}

bool Engine::step() {
  if (queue_.empty()) return false;
  // The stored std::function must outlive the queue slot: the callback
  // may schedule new events, invalidating the queue's top reference.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  RELYNX_ASSERT(ev.at >= now_);
  now_ = ev.at;
  ev.fn();
  return true;
}

void Engine::run() {
  stop_requested_ = false;
  while (!stop_requested_ && step()) {
  }
}

bool Engine::run_until(Time deadline) {
  stop_requested_ = false;
  while (!stop_requested_) {
    if (queue_.empty()) return true;
    if (queue_.top().at > deadline) return false;
    step();
  }
  return false;
}

Engine::Root Engine::drive(std::uint64_t id, std::string name, Task<> body) {
  (void)id;
  ++live_;
  try {
    co_await std::move(body);
  } catch (const std::exception& e) {
    failures_.push_back(name + ": " + e.what());
  } catch (...) {
    failures_.push_back(name + ": non-standard exception");
  }
  --live_;
}

void Engine::spawn(std::string name, Task<> body) {
  RELYNX_ASSERT_MSG(body.valid(), "spawn of empty task");
  const std::uint64_t id = next_root_++;
  Root root = drive(id, std::move(name), std::move(body));
  schedule(0, [h = root.handle] { h.resume(); });
}

void Engine::trace(const char* category, const std::string& message) {
  if (!trace_os_) return;
  *trace_os_ << "[" << to_usec(now_) << "us] " << category << ": " << message
             << "\n";
}

}  // namespace sim
