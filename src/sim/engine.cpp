#include "sim/engine.hpp"

#include <ostream>

#include "trace/trace.hpp"

namespace sim {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* to_string(TieBreak tie_break) {
  switch (tie_break) {
    case TieBreak::kFifo: return "fifo";
    case TieBreak::kSeededPermutation: return "perm";
    case TieBreak::kPriorityFuzz: return "fuzz";
  }
  return "?";
}

std::uint64_t Engine::tie_key(std::uint64_t seq) const {
  if (tie_policy_.kind == TieBreak::kFifo || seq >= tie_policy_.horizon) {
    return seq;
  }
  const std::uint64_t h = splitmix64(tie_policy_.seed ^ seq);
  if (tie_policy_.kind == TieBreak::kSeededPermutation) return h;
  // kPriorityFuzz: a seeded quarter of events get random keys.  Hash
  // keys are almost always larger than sequence numbers, so fuzzed
  // events are demoted behind their same-instant FIFO peers.
  return (h & 3) == 0 ? h : seq;
}

Engine::~Engine() { shutdown(); }

void Engine::shutdown() {
  // Destroy any still-suspended process frames (servers parked at a block
  // point when the experiment ended).  Destroying the root frame unwinds
  // nested Task frames because each child Task object lives inside its
  // awaiter's frame.  Promise destructors mutate roots_, so detach first.
  auto roots = std::move(roots_);
  roots_.clear();
  for (auto& [id, handle] : roots) {
    (void)id;
    if (handle && !handle.done()) handle.destroy();
  }
  // Unwinding frames can enqueue wakeups (e.g. a serializer guard waking
  // the next waiter, whose frame we then destroy too).  Those events hold
  // handles to frames that no longer exist: drop them so a post-shutdown
  // step()/run() is a no-op instead of a resume-after-destroy.
  for (std::uint32_t& head : bucket_head_) {
    while (head != kNil) {
      const std::uint32_t idx = head;
      head = node(idx).next;
      free_node(idx);
    }
  }
  occupied_.fill(0);
  wheel_count_ = 0;
  for (const FarEntry& fe : far_) free_node(fe.idx);
  far_.clear();
  loc_valid_ = false;
  loc_kind_ = LocKind::kNone;
  wf_valid_ = false;
  cancelled_ = 0;
  live_ = 0;
  // Retire every armed timer slot so outstanding TimerHandles observe
  // !pending() and cancel as a no-op (their events are gone; leaving
  // the generations live would make handles report phantom timers).
  free_slots_.clear();
  for (std::size_t i = slots_.size(); i > 0; --i) {
    TimerSlot& s = slots_[i - 1];
    if (s.armed) {
      ++s.gen;
      s.armed = false;
    }
    free_slots_.push_back(static_cast<std::uint32_t>(i - 1));
  }
  shut_down_ = true;
}

std::uint32_t Engine::alloc_node() {
  if (free_head_ != kNil) {
    const std::uint32_t idx = free_head_;
    free_head_ = node(idx).next;
    return idx;
  }
  if ((slab_size_ & kChunkMask) == 0) {
    slab_.push_back(std::make_unique<Node[]>(kChunkNodes));
  }
  return slab_size_++;
}

void Engine::push_event(Time at, std::uint64_t seq, EventFn&& fn,
                        std::uint32_t slot1, std::uint32_t gen) {
  const std::uint32_t idx = alloc_node();
  Node& n = node(idx);
  n.at = at;
  n.seq = seq;
  n.key = tie_key(seq);
  n.slot1 = slot1;
  n.gen = gen;
  n.fn = std::move(fn);
  const std::uint64_t b = bucket_of(at);
  // Every queued event is at or after now, so `b - base` cannot wrap.
  const bool wheel = b - bucket_of(now_) < kBuckets;
  if (wheel) {
    if (b < cursor_) cursor_ = b;
    std::uint32_t& head = bucket_head_[b & kBucketMask];
    n.next = head;
    head = idx;
    mark_bucket(b);
    ++wheel_count_;
    if (wf_valid_) {
      if (b < wf_bucket_) {
        // wf_bucket_ was the lowest occupied bucket, so this one was
        // empty: the new event is alone in the new front bucket.
        wf_bucket_ = b;
        w1_idx_ = idx;
        w1_prev_ = kNil;
        w2_state_ = W2::kNone;
        w2_more_ = false;
      } else if (b == wf_bucket_) {
        // Head insert: whichever tracked node was the head of this
        // chain now follows the new one.
        if (w1_prev_ == kNil) {
          w1_prev_ = idx;
        } else if (w2_state_ == W2::kKnown && w2_prev_ == kNil) {
          w2_prev_ = idx;
        }
        const Node& w1 = node(w1_idx_);
        if (fires_later(at, n.key, seq, w1.at, w1.key, w1.seq)) {
          if (w2_state_ == W2::kNone) {
            w2_state_ = W2::kKnown;
            w2_idx_ = idx;
            w2_prev_ = kNil;
          } else if (w2_state_ == W2::kKnown) {
            const Node& w2 = node(w2_idx_);
            w2_more_ = true;  // a third live event either way
            if (!fires_later(at, n.key, seq, w2.at, w2.key, w2.seq)) {
              w2_idx_ = idx;
              w2_prev_ = kNil;
            }
          }
        } else {
          // New wheel minimum: the old minimum becomes the runner-up.
          w2_more_ = w2_more_ || w2_state_ != W2::kNone;
          w2_state_ = W2::kKnown;
          w2_idx_ = w1_idx_;
          w2_prev_ = w1_prev_;
          w1_idx_ = idx;
          w1_prev_ = kNil;
        }
      }
      // b > wf_bucket_ cannot affect the front: bucket order is time
      // order.
    }
  } else {
    far_.push_back(FarEntry{at, seq, n.key, idx});
    std::push_heap(far_.begin(), far_.end(), Later{});
  }
  // Cache maintenance: one comparison decides whether the cached pop
  // candidate survives the push.  A later-firing event cannot displace
  // the minimum (a heap push of one never displaces the overflow top
  // either); an earlier-firing one IS the new minimum, and its location
  // is known exactly — the head of its bucket, or the overflow top.
  if (!loc_valid_) return;
  if (loc_kind_ != LocKind::kNone &&
      fires_later(at, n.key, seq, loc_time_, loc_key_, loc_seq_)) {
    // Cached candidate still wins; if the new event was head-inserted
    // in front of it, the candidate's chain predecessor is now the new
    // node.
    if (wheel && loc_kind_ == LocKind::kWheel && b == loc_bucket_ &&
        loc_prev_ == kNil) {
      loc_prev_ = idx;
    }
    return;
  }
  loc_kind_ = wheel ? LocKind::kWheel : LocKind::kFar;
  loc_bucket_ = b;
  loc_idx_ = idx;
  loc_prev_ = kNil;
  loc_time_ = at;
  loc_key_ = n.key;
  loc_seq_ = seq;
}

std::uint64_t Engine::next_occupied(std::uint64_t from) const {
  // Caller guarantees an occupied bucket within one window of `from`.
  const std::uint64_t from_idx = from & kBucketMask;
  std::uint64_t word = from_idx >> 6;
  std::uint64_t bits = occupied_[word] & (~0ull << (from_idx & 63));
  while (bits == 0) {
    word = (word + 1) & (kWords - 1);
    bits = occupied_[word];
  }
  const std::uint64_t found_idx =
      (word << 6) | static_cast<std::uint64_t>(std::countr_zero(bits));
  return from + ((found_idx - from_idx) & kBucketMask);
}

bool Engine::locate() {
  if (loc_valid_) return loc_kind_ != LocKind::kNone;
  // Prune dead overflow heads so the merge below compares live events.
  while (!far_.empty() && node_dead(node(far_.front().idx))) {
    std::pop_heap(far_.begin(), far_.end(), Later{});
    free_node(far_.back().idx);
    far_.pop_back();
    if (cancelled_ > 0) --cancelled_;
  }
  std::uint32_t best = kNil;
  std::uint32_t best_prev = kNil;
  std::uint64_t best_bucket = 0;
  if (wf_valid_) {
    best = w1_idx_;
    best_prev = w1_prev_;
    best_bucket = wf_bucket_;
  } else if (wheel_count_ > 0) {
    std::uint32_t best2 = kNil;
    std::uint32_t best2_prev = kNil;
    // The cursor may trail now's bucket after a pop from the overflow
    // heap advanced time; every lower bucket is empty either way.
    std::uint64_t b = std::max(cursor_, bucket_of(now_));
    std::size_t len = 0;
    while (wheel_count_ > 0) {
      b = next_occupied(b);
      std::uint32_t& head = bucket_head_[b & kBucketMask];
      // Walk the chain: reclaim dead records in place and track the
      // comparator minimum and runner-up (chain order is irrelevant to
      // selection).
      std::uint32_t prev = kNil;
      std::uint32_t idx = head;
      len = 0;
      while (idx != kNil) {
        Node& n = node(idx);
        const std::uint32_t next = n.next;
        if (node_dead(n)) {
          if (prev == kNil) {
            head = next;
          } else {
            node(prev).next = next;
          }
          free_node(idx);
          --wheel_count_;
          if (cancelled_ > 0) --cancelled_;
          idx = next;
          continue;
        }
        ++len;
        if (best == kNil) {
          best = idx;
          best_prev = prev;
        } else {
          const Node& bn = node(best);
          if (fires_later(bn.at, bn.key, bn.seq, n.at, n.key, n.seq)) {
            best2 = best;
            best2_prev = best_prev;
            best = idx;
            best_prev = prev;
          } else if (best2 == kNil) {
            best2 = idx;
            best2_prev = prev;
          } else {
            const Node& b2 = node(best2);
            if (fires_later(b2.at, b2.key, b2.seq, n.at, n.key, n.seq)) {
              best2 = idx;
              best2_prev = prev;
            }
          }
        }
        prev = idx;
        idx = next;
      }
      if (head == kNil) {
        clear_bucket_mark(b);
        cursor_ = b + 1;
        best = kNil;
        best2 = kNil;
        continue;
      }
      if (len > kSpillMax) {
        // Same-instant burst: push it into the overflow heap once
        // instead of min-scanning it on every pop.
        idx = head;
        while (idx != kNil) {
          Node& n = node(idx);
          far_.push_back(FarEntry{n.at, n.seq, n.key, idx});
          std::push_heap(far_.begin(), far_.end(), Later{});
          idx = n.next;
        }
        wheel_count_ -= len;
        head = kNil;
        clear_bucket_mark(b);
        cursor_ = b + 1;
        best = kNil;
        best2 = kNil;
        continue;
      }
      best_bucket = b;
      cursor_ = b;
      break;
    }
    if (best != kNil) {
      wf_valid_ = true;
      wf_bucket_ = best_bucket;
      w1_idx_ = best;
      w1_prev_ = best_prev;
      if (best2 == kNil) {
        w2_state_ = W2::kNone;
        w2_more_ = false;
      } else {
        w2_state_ = W2::kKnown;
        w2_idx_ = best2;
        w2_prev_ = best2_prev;
        w2_more_ = len > 2;
      }
    }
  }
  if (best == kNil && far_.empty()) {
    loc_kind_ = LocKind::kNone;
    loc_valid_ = true;
    return false;
  }
  if (best != kNil) {
    const Node& bn = node(best);
    const FarEntry* ft = far_.empty() ? nullptr : &far_.front();
    if (ft == nullptr ||
        fires_later(ft->at, ft->key, ft->seq, bn.at, bn.key, bn.seq)) {
      loc_kind_ = LocKind::kWheel;
      loc_bucket_ = best_bucket;
      loc_idx_ = best;
      loc_prev_ = best_prev;
      loc_time_ = bn.at;
      loc_key_ = bn.key;
      loc_seq_ = bn.seq;
      loc_valid_ = true;
      return true;
    }
  }
  loc_kind_ = LocKind::kFar;
  loc_idx_ = far_.front().idx;
  loc_time_ = far_.front().at;
  loc_key_ = far_.front().key;
  loc_seq_ = far_.front().seq;
  loc_valid_ = true;
  return true;
}

std::uint32_t Engine::take_located() {
  loc_valid_ = false;
  if (loc_kind_ == LocKind::kFar) {
    std::pop_heap(far_.begin(), far_.end(), Later{});
    const std::uint32_t idx = far_.back().idx;
    far_.pop_back();
    return idx;
  }
  const std::uint32_t idx = loc_idx_;
  if (loc_prev_ == kNil) {
    bucket_head_[loc_bucket_ & kBucketMask] = node(idx).next;
    if (node(idx).next == kNil) clear_bucket_mark(loc_bucket_);
  } else {
    node(loc_prev_).next = node(idx).next;
  }
  --wheel_count_;
  // Promote the runner-up to wheel minimum.  With untracked live
  // events left in the bucket (or none at all) the front knowledge is
  // spent, and the next locate() rescans from the cursor.
  if (wf_valid_ && idx == w1_idx_) {
    if (w2_state_ == W2::kKnown) {
      if (w2_prev_ == idx) w2_prev_ = loc_prev_;  // unlink bridged it
      w1_idx_ = w2_idx_;
      w1_prev_ = w2_prev_;
      w2_state_ = w2_more_ ? W2::kUnknown : W2::kNone;
      w2_more_ = false;
    } else {
      wf_valid_ = false;
    }
  }
  return idx;
}

void Engine::fire_located() {
  const std::uint32_t idx = take_located();
  Node& n = node(idx);
  RELYNX_ASSERT(n.at >= now_);
  now_ = n.at;
  ++fired_;
  if (n.slot1 != 0) {
    // Fired: retire the generation first so the handle reports
    // !pending() from inside the callback and from same-instant peers.
    TimerSlot& s = slots_[n.slot1 - 1];
    ++s.gen;
    s.armed = false;
    free_slots_.push_back(n.slot1 - 1);
  }
  // Invoke in place: the slab never relocates records, so the closure
  // can schedule freely while it runs.  The guard reclaims the record
  // even if the callback throws.
  struct Reclaim {
    Engine* e;
    std::uint32_t idx;
    ~Reclaim() { e->free_node(idx); }
  } reclaim{this, idx};
  n.fn();
}

void Engine::timer_cancel(std::uint32_t slot1, std::uint32_t gen) {
  if (slot1 == 0) return;
  TimerSlot& s = slots_[slot1 - 1];
  if (s.gen != gen) return;  // already fired, cancelled, or shut down
  ++s.gen;
  s.armed = false;
  free_slots_.push_back(slot1 - 1);
  note_cancelled();
}

void Engine::note_cancelled() {
  // The caches only care about a cancellation of a tracked node; any
  // other event was already firing later and still is.
  if (wf_valid_) {
    if (node_dead(node(w1_idx_))) {
      wf_valid_ = false;
    } else if (w2_state_ == W2::kKnown && node_dead(node(w2_idx_))) {
      w2_state_ = W2::kUnknown;
      w2_more_ = false;
    }
  }
  if (loc_valid_ && loc_kind_ != LocKind::kNone &&
      node_dead(node(loc_idx_))) {
    loc_valid_ = false;
  }
  ++cancelled_;
  // Reclaim once dead events dominate: O(n) rebuild amortized against
  // the n cancellations that triggered it.
  if (cancelled_ >= 64 && cancelled_ * 2 >= queue_size()) compact();
}

void Engine::compact() {
  loc_valid_ = false;
  wf_valid_ = false;
  for (std::size_t w = 0; w < kWords; ++w) {
    std::uint64_t bits = occupied_[w];
    while (bits != 0) {
      const std::uint64_t bidx =
          (w << 6) | static_cast<std::uint64_t>(std::countr_zero(bits));
      bits &= bits - 1;
      std::uint32_t* link = &bucket_head_[bidx];
      while (*link != kNil) {
        const std::uint32_t idx = *link;
        Node& n = node(idx);
        if (node_dead(n)) {
          *link = n.next;
          free_node(idx);
          --wheel_count_;
        } else {
          link = &n.next;
        }
      }
      if (bucket_head_[bidx] == kNil) occupied_[w] &= ~(1ull << (bidx & 63));
    }
  }
  std::erase_if(far_, [this](const FarEntry& fe) {
    if (!node_dead(node(fe.idx))) return false;
    free_node(fe.idx);
    return true;
  });
  std::make_heap(far_.begin(), far_.end(), Later{});
  cancelled_ = 0;
}

void Engine::schedule(Duration delay, EventFn fn) {
  RELYNX_ASSERT_MSG(delay >= 0, "cannot schedule into the past");
  push_event(now_ + delay, next_seq_++, std::move(fn), 0, 0);
}

void Engine::schedule_at(Time t, EventFn fn) {
  RELYNX_ASSERT_MSG(t >= now_, "cannot schedule into the past");
  push_event(t, next_seq_++, std::move(fn), 0, 0);
}

TimerHandle Engine::schedule_cancellable(Duration delay, EventFn fn) {
  RELYNX_ASSERT_MSG(delay >= 0, "cannot schedule into the past");
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back(TimerSlot{});
  }
  TimerSlot& s = slots_[slot];
  s.armed = true;
  const std::uint32_t gen = s.gen;
  push_event(now_ + delay, next_seq_++, std::move(fn), slot + 1, gen);
  return TimerHandle(this, slot + 1, gen);
}

bool Engine::step() {
  if (!locate()) return false;
  fire_located();
  return true;
}

void Engine::run() {
  stop_requested_ = false;
  while (!stop_requested_ && step()) {
  }
}

bool Engine::run_until(Time deadline) {
  stop_requested_ = false;
  for (;;) {
    // Drained is checked first and is authoritative: a stop() that
    // raced the queue's final event still reports the drain.
    if (!locate()) return true;
    if (stop_requested_) return false;
    if (loc_time_ > deadline) return false;
    fire_located();
  }
}

Engine::Root Engine::drive(std::uint64_t id, std::string name, Task<> body) {
  (void)id;
  ++live_;
  try {
    co_await std::move(body);
  } catch (const std::exception& e) {
    failures_.push_back(name + ": " + e.what());
  } catch (...) {
    failures_.push_back(name + ": non-standard exception");
  }
  --live_;
}

void Engine::spawn(std::string name, Task<> body) {
  RELYNX_ASSERT_MSG(body.valid(), "spawn of empty task");
  const std::uint64_t id = next_root_++;
  Root root = drive(id, std::move(name), std::move(body));
  schedule(0, [h = root.handle] { h.resume(); });
}

void Engine::trace(const char* category, const std::string& message) {
  // Re-routed through the structured recorder: the legacy ostream form
  // stays available (here, and via trace::render_text over the stream).
  if (auto* rec = trace::get(*this)) rec->text(0, category, message);
  if (!trace_os_) return;
  *trace_os_ << "[" << to_usec(now_) << "us] " << category << ": " << message
             << "\n";
}

}  // namespace sim
