// The deterministic discrete-event engine.
//
// One Engine per experiment.  Events are (time, sequence) ordered, so two
// events at the same instant fire in scheduling order and a run is a pure
// function of its inputs (seed and parameters).  Simulated "processes"
// are Task<void> coroutines spawned onto the engine; everything they do
// — sleeping, kernel calls, message waits — is expressed as awaitables
// that park the coroutine and schedule its resumption.
//
// The engine is strictly single-threaded; host-level parallelism lives in
// sweep::, which runs many independent Engines on a thread pool.
#pragma once

#include <algorithm>
#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/assert.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace trace {
class Recorder;  // structured event recorder (src/trace/)
}  // namespace trace

namespace sim {

class Engine;

// How the engine orders events scheduled for the *same* instant.  The
// comparator is always (time, key, seq); the policy only chooses the
// key, so every policy yields a total, reproducible order.
enum class TieBreak : std::uint8_t {
  // key = seq: same-instant events fire in scheduling order (the seed
  // behaviour, bit-identical to the historical comparator).
  kFifo = 0,
  // key = hash(seed, seq): same-instant events fire in a seeded
  // pseudo-random permutation.  One seed selects one interleaving; the
  // schedule-exploration checker (src/check/) sweeps seeds to search
  // the space of legal orders.
  kSeededPermutation,
  // key = seq for most events, hash for a seeded quarter of them: FIFO
  // order with a minority of events demoted to random priorities —
  // gentler perturbation that keeps long causal chains mostly intact.
  kPriorityFuzz,
};

[[nodiscard]] const char* to_string(TieBreak tie_break);

struct TiePolicy {
  static constexpr std::uint64_t kNoHorizon = ~0ull;

  TieBreak kind = TieBreak::kFifo;
  std::uint64_t seed = 0;
  // Events whose scheduling sequence number is >= horizon fall back to
  // FIFO keys.  The explorer's shrinker lowers this to find the
  // shortest permuted schedule prefix that still reproduces a failure.
  std::uint64_t horizon = kNoHorizon;
};

// Cancellable handle to a scheduled event (retry timers and the like).
// Cancelling tells the engine, which reclaims dead events eagerly (see
// Engine::note_cancelled) instead of carrying their closures until fire
// time — long chaos sweeps cancel thousands of retransmit timers.
class TimerHandle {
 public:
  TimerHandle() = default;
  void cancel();
  [[nodiscard]] bool pending() const { return alive_ && *alive_; }

 private:
  TimerHandle(Engine* engine, std::shared_ptr<bool> alive)
      : engine_(engine), alive_(std::move(alive)) {}
  Engine* engine_ = nullptr;
  std::shared_ptr<bool> alive_;
  friend class Engine;
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  [[nodiscard]] Time now() const { return now_; }

  // -- same-instant tie-break ------------------------------------------
  // Tie-break keys are computed when an event is scheduled, so for a
  // reproducible run set the policy before anything is scheduled (the
  // checker sets it immediately after constructing the engine).  The
  // default FIFO policy reproduces the historical order exactly.
  void set_tie_policy(TiePolicy policy) { tie_policy_ = policy; }
  [[nodiscard]] const TiePolicy& tie_policy() const { return tie_policy_; }

  // -- raw event interface --------------------------------------------
  void schedule(Duration delay, std::function<void()> fn);
  TimerHandle schedule_cancellable(Duration delay, std::function<void()> fn);
  void schedule_at(Time t, std::function<void()> fn);

  // -- run loop --------------------------------------------------------
  // Runs until the event queue is empty or `stop()` was called.
  void run();
  // Runs until simulated time would exceed `deadline`; events at exactly
  // `deadline` still fire.  Returns true if the queue drained.
  bool run_until(Time deadline);
  // Fires a single event; returns false when the queue is empty.
  bool step();
  void stop() { stop_requested_ = true; }
  // Destroys every still-suspended spawned frame and drops the pending
  // event queue, leaving the engine inert.  For owners whose processes
  // must outlive frame teardown (frames reference process state in their
  // local destructors): call this while those objects are still alive
  // instead of relying on ~Engine, which may run after them.  Idempotent.
  void shutdown();
  // True once shutdown() has run: the engine is inert and rejects new
  // bootstrap work (lynx::connect_any checks this).
  [[nodiscard]] bool is_shut_down() const { return shut_down_; }

  // -- coroutine processes ----------------------------------------------
  // Starts `body` as a detached simulated process at the current time.
  // The name appears in failure reports.  Processes that exit by
  // exception are recorded, not fatal, so tests can assert on them.
  void spawn(std::string name, Task<> body);

  [[nodiscard]] std::size_t live_processes() const { return live_; }
  [[nodiscard]] const std::vector<std::string>& process_failures() const {
    return failures_;
  }

  // Events currently queued, including cancelled ones not yet reclaimed.
  // Exposed so tests can assert that cancellation does not accumulate
  // garbage across a long run.
  [[nodiscard]] std::size_t queue_size() const { return queue_.size(); }
  [[nodiscard]] std::size_t cancelled_pending() const { return cancelled_; }

  // Awaitable: suspend the calling coroutine for `d` of simulated time.
  // d == 0 still yields through the event queue (a fairness point).
  [[nodiscard]] auto sleep(Duration d) {
    struct SleepAwaiter {
      Engine* engine;
      Duration d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const {
        engine->schedule(d, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    RELYNX_ASSERT(d >= 0);
    return SleepAwaiter{this, d};
  }

  // -- tracing -----------------------------------------------------------
  // Legacy unstructured hook.  Messages are routed into the structured
  // recorder when one is attached (as kText records, exportable and
  // digested like everything else) and still mirrored to the ostream.
  void set_trace(std::ostream* os) { trace_os_ = os; }
  [[nodiscard]] bool tracing() const {
    return trace_os_ != nullptr || recorder_ != nullptr;
  }
  void trace(const char* category, const std::string& message);

  // Structured recorder attachment (normally done by the Recorder's own
  // constructor/destructor).  The engine never dereferences the pointer
  // except through trace::get, which also checks the runtime enable.
  void set_recorder(trace::Recorder* rec) { recorder_ = rec; }
  [[nodiscard]] trace::Recorder* recorder() const { return recorder_; }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    std::uint64_t key;  // same-instant tie-break (== seq under FIFO)
    std::function<void()> fn;
    std::shared_ptr<bool> alive;  // null for non-cancellable events
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      if (a.key != b.key) return a.key > b.key;
      return a.seq > b.seq;
    }
  };

  [[nodiscard]] std::uint64_t tie_key(std::uint64_t seq) const;
  void push_event(Event ev);
  Event pop_event();
  // Drops cancelled events sitting at the head of the queue; afterwards
  // the head (if any) is live.  Returns false when the queue drained.
  bool prune_head();
  // Called by TimerHandle::cancel; rebuilds the heap without the dead
  // events once they outnumber the live ones.
  void note_cancelled();
  void compact();
  friend class TimerHandle;

  // Root driver for spawned processes.  Detached: the frame lives until
  // the body finishes (then unregisters itself) or the engine is
  // destroyed (then the engine destroys it).
  struct Root {
    struct promise_type;
    std::coroutine_handle<> handle;
  };
  Root drive(std::uint64_t id, std::string name, Task<> body);

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  TiePolicy tie_policy_{};
  bool shut_down_ = false;
  // Binary heap managed with std::push_heap/pop_heap so compact() can
  // filter the underlying vector (std::priority_queue hides it).
  std::vector<Event> queue_;
  std::size_t cancelled_ = 0;
  bool stop_requested_ = false;

  std::size_t live_ = 0;
  std::uint64_t next_root_ = 0;
  std::unordered_map<std::uint64_t, std::coroutine_handle<>> roots_;
  std::vector<std::string> failures_;
  std::ostream* trace_os_ = nullptr;
  trace::Recorder* recorder_ = nullptr;
};

inline void TimerHandle::cancel() {
  if (alive_ && *alive_) {
    *alive_ = false;
    if (engine_ != nullptr) engine_->note_cancelled();
  }
}

struct Engine::Root::promise_type {
  Engine* engine = nullptr;
  std::uint64_t id = 0;

  // The driver coroutine is a member coroutine of Engine: parameters are
  // (Engine* this, id, name, body).
  promise_type(Engine& e, std::uint64_t root_id, std::string&, Task<>&)
      : engine(&e), id(root_id) {}

  Root get_return_object() {
    auto h = std::coroutine_handle<promise_type>::from_promise(*this);
    engine->roots_.emplace(id, h);
    return Root{h};
  }
  std::suspend_always initial_suspend() noexcept { return {}; }
  std::suspend_never final_suspend() noexcept { return {}; }
  void return_void() {}
  void unhandled_exception() {
    // drive() catches everything; reaching here is a bug.
    RELYNX_ASSERT_MSG(false, "engine root leaked an exception");
  }
  ~promise_type() {
    // Frame is being destroyed: either normal completion (final_suspend
    // never suspends) or engine teardown.  Unregister in both cases.
    if (engine) engine->roots_.erase(id);
  }
};

}  // namespace sim
