// The deterministic discrete-event engine.
//
// One Engine per experiment.  Events are (time, key, seq) ordered, so two
// events at the same instant fire in scheduling order (under the default
// FIFO tie-break) and a run is a pure function of its inputs (seed and
// parameters).  Simulated "processes" are Task<void> coroutines spawned
// onto the engine; everything they do — sleeping, kernel calls, message
// waits — is expressed as awaitables that park the coroutine and schedule
// its resumption.
//
// The pending-event structure is two-level.  Event records live in a
// chunked slab (stable addresses, freelist reuse): a record is
// constructed once at schedule time and never moved again — the
// containers below shuffle 4-byte indices and 32-byte sort keys, not
// 100-byte closures.  Near-future events — almost everything a kernel
// schedules: propagation delays, service times, zero-delay fairness
// yields — land in a bucketed timer wheel (1.024 µs buckets, ~4.2 ms
// window ahead of now) of intrusive singly-linked chains, where insert
// is a head-link and pop scans an occupancy bitmap to the first live
// bucket.  Events beyond the window (retransmit timers, warmup
// deadlines) go to a binary-heap overflow of (time, key, seq, index)
// entries; the pop path merges the wheel's candidate with the heap's
// top under the same (time, key, seq) comparator, so the fire order is
// bit-identical to a single global priority queue — the determinism
// digests in tests/fault pin exactly that.  Oversized same-instant
// bursts are spilled from their bucket into the heap rather than
// rescanned, keeping pop amortized O(1) + O(log n) only for the spill.
//
// The engine is strictly single-threaded; host-level parallelism lives in
// sweep::, which runs many independent Engines on a thread pool.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/assert.hpp"
#include "sim/event_fn.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace trace {
class Recorder;  // structured event recorder (src/trace/)
}  // namespace trace

namespace sim {

class Engine;

// How the engine orders events scheduled for the *same* instant.  The
// comparator is always (time, key, seq); the policy only chooses the
// key, so every policy yields a total, reproducible order.
enum class TieBreak : std::uint8_t {
  // key = seq: same-instant events fire in scheduling order (the seed
  // behaviour, bit-identical to the historical comparator).
  kFifo = 0,
  // key = hash(seed, seq): same-instant events fire in a seeded
  // pseudo-random permutation.  One seed selects one interleaving; the
  // schedule-exploration checker (src/check/) sweeps seeds to search
  // the space of legal orders.
  kSeededPermutation,
  // key = seq for most events, hash for a seeded quarter of them: FIFO
  // order with a minority of events demoted to random priorities —
  // gentler perturbation that keeps long causal chains mostly intact.
  kPriorityFuzz,
};

[[nodiscard]] const char* to_string(TieBreak tie_break);

struct TiePolicy {
  static constexpr std::uint64_t kNoHorizon = ~0ull;

  TieBreak kind = TieBreak::kFifo;
  std::uint64_t seed = 0;
  // Events whose scheduling sequence number is >= horizon fall back to
  // FIFO keys.  The explorer's shrinker lowers this to find the
  // shortest permuted schedule prefix that still reproduces a failure.
  std::uint64_t horizon = kNoHorizon;
};

// Cancellable handle to a scheduled event (retry timers and the like).
// A handle is a (slot, generation) ticket into the engine's timer-slot
// pool: cancel and fire both retire the generation, so a stale handle
// — cancelled twice, cancelled after fire, or outliving a shutdown —
// is a cheap no-op instead of a use-after-free.  Handles must not be
// used after the Engine itself is destroyed (they point into it); in
// practice every handle lives in an object torn down alongside or
// before its engine.
class TimerHandle {
 public:
  TimerHandle() = default;
  void cancel();
  [[nodiscard]] bool pending() const;

 private:
  TimerHandle(Engine* engine, std::uint32_t slot1, std::uint32_t gen)
      : engine_(engine), slot1_(slot1), gen_(gen) {}
  Engine* engine_ = nullptr;
  std::uint32_t slot1_ = 0;  // slot index + 1; 0 = inert (default) handle
  std::uint32_t gen_ = 0;
  friend class Engine;
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  [[nodiscard]] Time now() const { return now_; }

  // -- same-instant tie-break ------------------------------------------
  // Tie-break keys are computed when an event is scheduled, so for a
  // reproducible run set the policy before anything is scheduled (the
  // checker sets it immediately after constructing the engine).  The
  // default FIFO policy reproduces the historical order exactly.
  void set_tie_policy(TiePolicy policy) { tie_policy_ = policy; }
  [[nodiscard]] const TiePolicy& tie_policy() const { return tie_policy_; }

  // -- raw event interface --------------------------------------------
  void schedule(Duration delay, EventFn fn);
  TimerHandle schedule_cancellable(Duration delay, EventFn fn);
  void schedule_at(Time t, EventFn fn);

  // -- run loop --------------------------------------------------------
  // Runs until the event queue is empty or `stop()` was called.
  void run();
  // Runs until simulated time would exceed `deadline`; events at exactly
  // `deadline` still fire.  Returns true if the queue drained — the
  // drained check is authoritative, so a stop() racing the final event
  // still reports a drained queue as true.
  bool run_until(Time deadline);
  // Fires a single event; returns false when the queue is empty.
  bool step();
  void stop() { stop_requested_ = true; }
  // Destroys every still-suspended spawned frame and drops the pending
  // event queue, leaving the engine inert.  Outstanding TimerHandles
  // are invalidated (they report !pending() and cancel as a no-op).
  // For owners whose processes must outlive frame teardown (frames
  // reference process state in their local destructors): call this
  // while those objects are still alive instead of relying on ~Engine,
  // which may run after them.  Idempotent.
  void shutdown();
  // True once shutdown() has run: the engine is inert and rejects new
  // bootstrap work (lynx::connect_any checks this).
  [[nodiscard]] bool is_shut_down() const { return shut_down_; }

  // -- coroutine processes ----------------------------------------------
  // Starts `body` as a detached simulated process at the current time.
  // The name appears in failure reports.  Processes that exit by
  // exception are recorded, not fatal, so tests can assert on them.
  void spawn(std::string name, Task<> body);

  [[nodiscard]] std::size_t live_processes() const { return live_; }
  [[nodiscard]] const std::vector<std::string>& process_failures() const {
    return failures_;
  }

  // Events currently queued, including cancelled ones not yet reclaimed.
  // Exposed so tests can assert that cancellation does not accumulate
  // garbage across a long run.
  [[nodiscard]] std::size_t queue_size() const {
    return wheel_count_ + far_.size();
  }
  [[nodiscard]] std::size_t cancelled_pending() const { return cancelled_; }
  // Total events fired over the engine's lifetime (cancelled events are
  // reclaimed, not fired).  bench_sim divides this by wall-clock time to
  // report simulated-events-per-wall-second (the BENCH_SIM trajectory).
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }

  // Awaitable: suspend the calling coroutine for `d` of simulated time.
  // d == 0 still yields through the event queue (a fairness point).
  [[nodiscard]] auto sleep(Duration d) {
    struct SleepAwaiter {
      Engine* engine;
      Duration d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const {
        engine->schedule(d, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    RELYNX_ASSERT(d >= 0);
    return SleepAwaiter{this, d};
  }

  // -- tracing -----------------------------------------------------------
  // Legacy unstructured hook.  Messages are routed into the structured
  // recorder when one is attached (as kText records, exportable and
  // digested like everything else) and still mirrored to the ostream.
  void set_trace(std::ostream* os) { trace_os_ = os; }
  [[nodiscard]] bool tracing() const {
    return trace_os_ != nullptr || recorder_ != nullptr;
  }
  void trace(const char* category, const std::string& message);

  // Structured recorder attachment (normally done by the Recorder's own
  // constructor/destructor).  The engine never dereferences the pointer
  // except through trace::get, which also checks the runtime enable.
  void set_recorder(trace::Recorder* rec) { recorder_ = rec; }
  [[nodiscard]] trace::Recorder* recorder() const { return recorder_; }

 private:
  static constexpr std::uint32_t kNil = ~0u;

  // An event record in the slab.  `next` threads the record into its
  // wheel-bucket chain (or the freelist once reclaimed); records
  // referenced from the overflow heap are not chained.
  struct Node {
    Time at;
    std::uint64_t seq;
    std::uint64_t key;  // same-instant tie-break (== seq under FIFO)
    std::uint32_t next = kNil;
    std::uint32_t slot1 = 0;  // cancellable: timer-slot index + 1
    std::uint32_t gen = 0;    // generation the slot held when scheduled
    EventFn fn;
  };
  // Sort key for the overflow heap; the record itself stays in the slab.
  struct FarEntry {
    Time at;
    std::uint64_t seq;
    std::uint64_t key;
    std::uint32_t idx;
  };
  struct Later {
    bool operator()(const FarEntry& a, const FarEntry& b) const {
      if (a.at != b.at) return a.at > b.at;
      if (a.key != b.key) return a.key > b.key;
      return a.seq > b.seq;
    }
  };
  // True when a should fire later than b: the engine's one event order.
  static bool fires_later(Time a_at, std::uint64_t a_key, std::uint64_t a_seq,
                          Time b_at, std::uint64_t b_key,
                          std::uint64_t b_seq) {
    if (a_at != b_at) return a_at > b_at;
    if (a_key != b_key) return a_key > b_key;
    return a_seq > b_seq;
  }
  // A cancellable event's liveness ticket.  The generation bumps when
  // the event fires, is cancelled, or the engine shuts down; a Node
  // or TimerHandle whose gen no longer matches is dead.
  struct TimerSlot {
    std::uint32_t gen = 0;
    bool armed = false;
  };

  // -- timer wheel geometry ---------------------------------------------
  // 2^12 buckets of 2^10 ns: a ~4.19 ms forward window, wide enough for
  // every media/service delay the kernels schedule.  Bucket index is the
  // absolute bucket number masked into the ring; since every queued
  // event lies within one window of now (enforced at insert), ring
  // aliasing is unambiguous.
  static constexpr int kBucketShift = 10;
  static constexpr std::size_t kBuckets = 4096;
  static constexpr std::size_t kBucketMask = kBuckets - 1;
  static constexpr std::size_t kWords = kBuckets / 64;
  // Buckets larger than this are spilled to the overflow heap at pop
  // time instead of being min-scanned on every pop (same-instant
  // spawn bursts would otherwise cost O(k^2)).
  static constexpr std::size_t kSpillMax = 16;

  // Slab geometry: chunked so record addresses are stable across growth
  // (a callback being invoked in place must survive the slab growing
  // under it).
  static constexpr int kChunkShift = 10;
  static constexpr std::size_t kChunkNodes = 1024;
  static constexpr std::size_t kChunkMask = kChunkNodes - 1;

  static std::uint64_t bucket_of(Time t) {
    return static_cast<std::uint64_t>(t) >> kBucketShift;
  }

  [[nodiscard]] Node& node(std::uint32_t idx) {
    return slab_[idx >> kChunkShift][idx & kChunkMask];
  }
  [[nodiscard]] const Node& node(std::uint32_t idx) const {
    return slab_[idx >> kChunkShift][idx & kChunkMask];
  }
  [[nodiscard]] std::uint32_t alloc_node();
  // Destroys the record's callable and returns the slot to the freelist.
  void free_node(std::uint32_t idx) {
    Node& n = node(idx);
    n.fn.reset();
    n.next = free_head_;
    free_head_ = idx;
  }

  [[nodiscard]] std::uint64_t tie_key(std::uint64_t seq) const;
  void push_event(Time at, std::uint64_t seq, EventFn&& fn, std::uint32_t slot1,
                  std::uint32_t gen);
  [[nodiscard]] bool node_dead(const Node& n) const {
    return n.slot1 != 0 && slots_[n.slot1 - 1].gen != n.gen;
  }
  // Finds the next live event across wheel and overflow heap (pruning
  // dead ones on the way) and caches its location; returns false when
  // the queue drained.  Idempotent until the queue is mutated.
  bool locate();
  // Unlinks the located record and returns its slab index.
  std::uint32_t take_located();
  // Pops and runs the located event (caller has checked locate()).
  void fire_located();
  [[nodiscard]] std::uint64_t next_occupied(std::uint64_t from) const;
  void mark_bucket(std::uint64_t b) {
    occupied_[(b & kBucketMask) >> 6] |= 1ull << (b & 63);
  }
  void clear_bucket_mark(std::uint64_t b) {
    occupied_[(b & kBucketMask) >> 6] &= ~(1ull << (b & 63));
  }

  [[nodiscard]] bool timer_pending(std::uint32_t slot1,
                                   std::uint32_t gen) const {
    return slot1 != 0 && slots_[slot1 - 1].gen == gen;
  }
  void timer_cancel(std::uint32_t slot1, std::uint32_t gen);
  // Called on cancellation; rebuilds the queues without the dead
  // events once they outnumber the live ones.
  void note_cancelled();
  void compact();
  friend class TimerHandle;

  // Root driver for spawned processes.  Detached: the frame lives until
  // the body finishes (then unregisters itself) or the engine is
  // destroyed (then the engine destroys it).
  struct Root {
    struct promise_type;
    std::coroutine_handle<> handle;
  };
  Root drive(std::uint64_t id, std::string name, Task<> body);

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
  TiePolicy tie_policy_{};
  bool shut_down_ = false;

  // Event-record slab: chunked storage plus an intrusive freelist.
  std::vector<std::unique_ptr<Node[]>> slab_;
  std::uint32_t slab_size_ = 0;
  std::uint32_t free_head_ = kNil;

  // Timer wheel: near-future events, one intrusive chain per bucket
  // (selection within a bucket is by comparator, so chain order is
  // free).
  std::vector<std::uint32_t> bucket_head_ =
      std::vector<std::uint32_t>(kBuckets, kNil);
  std::array<std::uint64_t, kWords> occupied_{};
  std::uint64_t cursor_ = 0;  // absolute bucket; all lower buckets empty
  std::size_t wheel_count_ = 0;
  // Overflow: events beyond the wheel window and spilled bursts.
  // Binary heap managed with std::push_heap/pop_heap so compact() can
  // filter the underlying vector (std::priority_queue hides it).
  std::vector<FarEntry> far_;

  // Cached pop candidate (locate() fills): lets run_until peek at the
  // next fire time and then take it without a second scan, and survives
  // pushes of later-firing events — push_event either retargets the
  // cache at the new event (if it fires earlier, it IS the new minimum)
  // or keeps it with one comparator call, so the fire→reschedule cycle
  // of a steady-state workload never rescans the wheel.  Only a
  // cancellation of the cached event itself or a compact() forces a
  // rescan.
  enum class LocKind : std::uint8_t { kNone, kWheel, kFar };
  bool loc_valid_ = false;
  LocKind loc_kind_ = LocKind::kNone;
  std::uint64_t loc_bucket_ = 0;   // absolute bucket of the candidate
  std::uint32_t loc_idx_ = kNil;   // slab index of the candidate
  std::uint32_t loc_prev_ = kNil;  // chain predecessor (kNil = head)
  Time loc_time_ = 0;
  std::uint64_t loc_key_ = 0;      // candidate's tie key and sequence,
  std::uint64_t loc_seq_ = 0;      // kept so pushes can compare cheaply

  // Wheel-front cache: what the last chain scan learned about the
  // lowest occupied bucket.  w1 is the comparator minimum of the whole
  // wheel (bucket order is time order, so the front bucket's minimum
  // beats every later bucket); w2 is the runner-up within that same
  // bucket — kNone means w1 is alone, kUnknown means untracked live
  // events remain and the bucket must be rescanned when w1 goes.
  // Pushes and pops maintain this in O(1), so the steady-state
  // fire→reschedule cycle touches chains only when the front bucket
  // drains.
  enum class W2 : std::uint8_t { kNone, kKnown, kUnknown };
  bool wf_valid_ = false;
  bool w2_more_ = false;  // bucket held live events beyond w1 and w2
  W2 w2_state_ = W2::kNone;
  std::uint64_t wf_bucket_ = 0;
  std::uint32_t w1_idx_ = kNil;
  std::uint32_t w1_prev_ = kNil;
  std::uint32_t w2_idx_ = kNil;
  std::uint32_t w2_prev_ = kNil;

  std::vector<TimerSlot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t cancelled_ = 0;
  bool stop_requested_ = false;

  std::size_t live_ = 0;
  std::uint64_t next_root_ = 0;
  std::unordered_map<std::uint64_t, std::coroutine_handle<>> roots_;
  std::vector<std::string> failures_;
  std::ostream* trace_os_ = nullptr;
  trace::Recorder* recorder_ = nullptr;
};

inline void TimerHandle::cancel() {
  if (engine_ != nullptr) engine_->timer_cancel(slot1_, gen_);
}

inline bool TimerHandle::pending() const {
  return engine_ != nullptr && engine_->timer_pending(slot1_, gen_);
}

struct Engine::Root::promise_type {
  Engine* engine = nullptr;
  std::uint64_t id = 0;

  // The driver coroutine is a member coroutine of Engine: parameters are
  // (Engine* this, id, name, body).
  promise_type(Engine& e, std::uint64_t root_id, std::string&, Task<>&)
      : engine(&e), id(root_id) {}

  Root get_return_object() {
    auto h = std::coroutine_handle<promise_type>::from_promise(*this);
    engine->roots_.emplace(id, h);
    return Root{h};
  }
  std::suspend_always initial_suspend() noexcept { return {}; }
  std::suspend_never final_suspend() noexcept { return {}; }
  void return_void() {}
  // Root frames recycle through the same pool as Task frames.
  static void* operator new(std::size_t n) {
    return detail::CallablePool::allocate(n);
  }
  static void operator delete(void* p, std::size_t n) noexcept {
    detail::CallablePool::release(p, n);
  }
  void unhandled_exception() {
    // drive() catches everything; reaching here is a bug.
    RELYNX_ASSERT_MSG(false, "engine root leaked an exception");
  }
  ~promise_type() {
    // Frame is being destroyed: either normal completion (final_suspend
    // never suspends) or engine teardown.  Unregister in both cases.
    if (engine) engine->roots_.erase(id);
  }
};

}  // namespace sim
