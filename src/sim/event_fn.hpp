// EventFn: the engine's event callback.
//
// A move-only type-erased callable sized for the discrete-event hot
// path.  std::function was measured to heap-allocate for nearly every
// event the media and kernels schedule (its small-buffer is 16 bytes;
// a frame-delivery closure — FrameHandler* plus a moved net::Frame —
// is 64), so each simulated event paid an allocator round trip before
// any work happened.  EventFn gives those closures 64 bytes of inline
// storage, and routes the rare oversized capture through a
// thread-local size-class freelist so even the spill path stops
// touching the global allocator in steady state.
//
// Engines are strictly single-threaded, so a thread-local pool is
// exactly one pool per engine-carrying worker (sweep:: runs one engine
// per thread); block reuse order cannot alter simulation behaviour
// because no simulated decision reads an address.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace sim {
namespace detail {

// Freelist of heap blocks for callables that do not fit inline,
// bucketed by 64-byte size class.  Blocks above 1 KiB (no simulated
// workload produces one) fall through to operator new directly.
class CallablePool {
 public:
  static constexpr std::size_t kStride = 64;
  static constexpr std::size_t kClasses = 16;
  static constexpr std::size_t kBinCap = 128;  // blocks kept per class

  static void* allocate(std::size_t bytes) {
    const std::size_t cls = (bytes + kStride - 1) / kStride;
    if (cls == 0 || cls > kClasses) return ::operator new(bytes);
    std::vector<void*>& bin = bins()[cls - 1];
    if (!bin.empty()) {
      void* p = bin.back();
      bin.pop_back();
      return p;
    }
    return ::operator new(cls * kStride);
  }

  static void release(void* p, std::size_t bytes) noexcept {
    const std::size_t cls = (bytes + kStride - 1) / kStride;
    if (cls == 0 || cls > kClasses) {
      ::operator delete(p);
      return;
    }
    std::vector<void*>& bin = bins()[cls - 1];
    if (bin.size() < kBinCap && bin.capacity() > bin.size()) {
      bin.push_back(p);
      return;
    }
    if (bin.size() < kBinCap) {
      // Growing the bin allocates; keep that out of the noexcept path
      // by reserving first (terminate on OOM is acceptable here).
      bin.reserve(kBinCap);
      bin.push_back(p);
      return;
    }
    ::operator delete(p);
  }

 private:
  struct Bins {
    std::vector<void*> by_class[kClasses];
    ~Bins() {
      for (std::vector<void*>& bin : by_class)
        for (void* p : bin) ::operator delete(p);
    }
  };
  static std::vector<void*>* bins() {
    thread_local Bins tls;
    return tls.by_class;
  }
};

}  // namespace detail

class EventFn {
 public:
  // Sized so a frame-delivery closure (handler pointer + net::Frame)
  // stays inline; see the header comment.  Alignment is capped at
  // pointer grain to keep the engine's event records compact — the
  // rare over-aligned capture takes the heap path.
  static constexpr std::size_t kInlineSize = 64;
  static constexpr std::size_t kInlineAlign = alignof(void*);

  EventFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): callable wrapper
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize && alignof(Fn) <= kInlineAlign &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      void* block = detail::CallablePool::allocate(sizeof(Fn));
      ::new (block) Fn(std::forward<F>(f));
      *reinterpret_cast<void**>(buf_) = block;
      ops_ = &kHeapOps<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(buf_, other.buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  void operator()() { ops_->invoke(buf_); }
  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-construct into dst from src's storage, then destroy src's
    // residue.  Lets containers of EventFn relocate without knowing
    // the erased type.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static Fn* as(void* buf) noexcept {
    return std::launder(reinterpret_cast<Fn*>(buf));
  }

  template <typename Fn>
  static constexpr Ops kInlineOps{
      [](void* buf) { (*as<Fn>(buf))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn(std::move(*as<Fn>(src)));
        as<Fn>(src)->~Fn();
      },
      [](void* buf) noexcept { as<Fn>(buf)->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps{
      [](void* buf) { (**reinterpret_cast<Fn**>(buf))(); },
      [](void* dst, void* src) noexcept {
        *reinterpret_cast<void**>(dst) = *reinterpret_cast<void**>(src);
      },
      [](void* buf) noexcept {
        Fn* p = *reinterpret_cast<Fn**>(buf);
        p->~Fn();
        detail::CallablePool::release(p, sizeof(Fn));
      },
  };

  alignas(kInlineAlign) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace sim
