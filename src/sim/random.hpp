// Deterministic pseudo-random source (xoshiro256**).
//
// Every stochastic element of the simulation (CSMA backoff, drop
// injection, workload think times) draws from an explicitly seeded Rng so
// a run is a pure function of its seed; <random> engines are avoided
// because their distributions are not specified bit-for-bit across
// standard library implementations.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/assert.hpp"

namespace sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound).
  std::uint64_t next_below(std::uint64_t bound) {
    RELYNX_ASSERT(bound > 0);
    // Lemire's method without the rejection loop is fine here: the
    // simulator does not need perfectly unbiased draws, only
    // deterministic and well-spread ones.
    const unsigned __int128 m =
        static_cast<unsigned __int128>(next_u64()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi) {
    RELYNX_ASSERT(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool next_bool(double probability_true) {
    return next_double() < probability_true;
  }

  // Exponentially distributed with the given mean (for arrival processes).
  double next_exponential(double mean) {
    double u = next_double();
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  // Derive an independent stream (e.g. one per node) from this one.
  Rng fork() { return Rng(next_u64() ^ 0xa02bdbf7bb3c0a7ULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace sim
