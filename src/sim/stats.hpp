// Measurement helpers: scalar accumulators, histograms, (x, y) series.
//
// Benchmarks accumulate simulated-time observations here and print the
// paper-style tables from them.  Welford's algorithm keeps the variance
// numerically stable over long runs.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace sim {

class Accumulator {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::int64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double total() const {
    return mean_ * static_cast<double>(n_);
  }

  void merge(const Accumulator& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    mean_ = (na * mean_ + nb * other.mean_) / (na + nb);
    m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// HDR-style log-linear histogram for latency-style observations (>= 0).
//
// Each power-of-two octave is split into 32 sub-buckets, so a bucket
// midpoint is within 1/64 (~1.6%) of every value the bucket absorbs —
// tight enough to quote tail quantiles from midpoints (tests pin the
// p50/p99 relative error at <= 2%).  Observations are scaled by 2^20
// into fixed point so sub-microsecond latencies in milliseconds still
// resolve; the bucket index is a couple of shifts via std::bit_width,
// not a scan, because add() sits on the load generator's per-RPC hot
// path.
class Histogram {
 public:
  void add(double x) {
    acc_.add(x);
    ++buckets_[bucket_index(x)];
  }

  [[nodiscard]] const Accumulator& summary() const { return acc_; }

  // Quantile from bucket midpoints, clamped into [min, max]; relative
  // error is bounded by the sub-bucket resolution.
  [[nodiscard]] double quantile(double q) const {
    RELYNX_ASSERT(q >= 0.0 && q <= 1.0);
    const auto n = acc_.count();
    if (n == 0) return 0.0;
    auto target = static_cast<std::int64_t>(q * static_cast<double>(n - 1));
    for (std::size_t b = 0; b < kBucketCount; ++b) {
      if (target < buckets_[b]) {
        return std::clamp(bucket_mid(b), acc_.min(), acc_.max());
      }
      target -= buckets_[b];
    }
    return acc_.max();
  }

 private:
  static constexpr int kSubBucketBits = 5;  // 32 sub-buckets per octave
  static constexpr std::uint64_t kSubBuckets = 1ull << kSubBucketBits;
  static constexpr double kScale = 0x1p20;  // fixed-point resolution 2^-20
  // Indices 0..kSubBuckets-1 are the exact linear region; each further
  // octave (up to 2^63 scaled) contributes kSubBuckets more.
  static constexpr std::size_t kBucketCount =
      (64 - kSubBucketBits + 1) * static_cast<std::size_t>(kSubBuckets);

  [[nodiscard]] static std::size_t bucket_index(double x) {
    if (x <= 0.0) return 0;
    const double scaled = x * kScale;
    if (scaled >= 0x1p63) return kBucketCount - 1;  // saturate the far tail
    const auto u = static_cast<std::uint64_t>(scaled);
    if (u < kSubBuckets) return static_cast<std::size_t>(u);
    const int shift = std::bit_width(u) - 1 - kSubBucketBits;
    const std::uint64_t sub = (u >> shift) - kSubBuckets;
    return (static_cast<std::size_t>(shift) + 1) *
               static_cast<std::size_t>(kSubBuckets) +
           static_cast<std::size_t>(sub);
  }

  [[nodiscard]] static double bucket_mid(std::size_t b) {
    if (b < kSubBuckets) return (static_cast<double>(b) + 0.5) / kScale;
    const std::size_t shift = b / kSubBuckets - 1;
    const std::uint64_t sub = b % kSubBuckets;
    const double lo =
        std::ldexp(static_cast<double>(kSubBuckets + sub), static_cast<int>(shift));
    const double width = std::ldexp(1.0, static_cast<int>(shift));
    return (lo + 0.5 * width) / kScale;
  }

  std::int64_t buckets_[kBucketCount] = {};
  Accumulator acc_;
};

// Named (x, y) series for figure-style sweeps.
struct SeriesPoint {
  double x;
  double y;
};

class Series {
 public:
  explicit Series(std::string name) : name_(std::move(name)) {}

  void add(double x, double y) { points_.push_back({x, y}); }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<SeriesPoint>& points() const {
    return points_;
  }

  // x of the first point where this series' y rises above other's
  // (linear interpolation between samples); NaN when it never crosses.
  [[nodiscard]] double crossover_x(const Series& other) const;

 private:
  std::string name_;
  std::vector<SeriesPoint> points_;
};

inline double Series::crossover_x(const Series& other) const {
  const auto& a = points_;
  const auto& b = other.points_;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 1; i < n; ++i) {
    RELYNX_ASSERT_MSG(a[i].x == b[i].x, "series must share x samples");
    const double d0 = a[i - 1].y - b[i - 1].y;
    const double d1 = a[i].y - b[i].y;
    if (d0 > 0.0 && d1 <= 0.0) {
      // falling crossover (this series drops below other)
      const double t = d0 / (d0 - d1);
      return a[i - 1].x + t * (a[i].x - a[i - 1].x);
    }
    if (d0 < 0.0 && d1 >= 0.0) {
      const double t = -d0 / (d1 - d0);
      return a[i - 1].x + t * (a[i].x - a[i - 1].x);
    }
  }
  return std::numeric_limits<double>::quiet_NaN();
}

}  // namespace sim
