// Measurement helpers: scalar accumulators, histograms, (x, y) series.
//
// Benchmarks accumulate simulated-time observations here and print the
// paper-style tables from them.  Welford's algorithm keeps the variance
// numerically stable over long runs.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace sim {

class Accumulator {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::int64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double total() const {
    return mean_ * static_cast<double>(n_);
  }

  void merge(const Accumulator& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    mean_ = (na * mean_ + nb * other.mean_) / (na + nb);
    m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Power-of-two bucketed histogram for latency-style observations (>= 0).
class Histogram {
 public:
  void add(double x) {
    acc_.add(x);
    std::size_t b = 0;
    double bound = 1.0;
    while (x >= bound && b + 1 < kBuckets) {
      bound *= 2.0;
      ++b;
    }
    ++buckets_[b];
  }

  [[nodiscard]] const Accumulator& summary() const { return acc_; }

  // Approximate quantile from bucket midpoints; exact enough for reporting.
  [[nodiscard]] double quantile(double q) const {
    RELYNX_ASSERT(q >= 0.0 && q <= 1.0);
    const auto n = acc_.count();
    if (n == 0) return 0.0;
    auto target = static_cast<std::int64_t>(q * static_cast<double>(n - 1));
    double lo = 0.0, hi = 1.0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      if (target < buckets_[b]) return (lo + hi) / 2.0;
      target -= buckets_[b];
      lo = hi;
      hi *= 2.0;
    }
    return acc_.max();
  }

 private:
  static constexpr std::size_t kBuckets = 64;
  std::int64_t buckets_[kBuckets] = {};
  Accumulator acc_;
};

// Named (x, y) series for figure-style sweeps.
struct SeriesPoint {
  double x;
  double y;
};

class Series {
 public:
  explicit Series(std::string name) : name_(std::move(name)) {}

  void add(double x, double y) { points_.push_back({x, y}); }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<SeriesPoint>& points() const {
    return points_;
  }

  // x of the first point where this series' y rises above other's
  // (linear interpolation between samples); NaN when it never crosses.
  [[nodiscard]] double crossover_x(const Series& other) const;

 private:
  std::string name_;
  std::vector<SeriesPoint> points_;
};

inline double Series::crossover_x(const Series& other) const {
  const auto& a = points_;
  const auto& b = other.points_;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 1; i < n; ++i) {
    RELYNX_ASSERT_MSG(a[i].x == b[i].x, "series must share x samples");
    const double d0 = a[i - 1].y - b[i - 1].y;
    const double d1 = a[i].y - b[i].y;
    if (d0 > 0.0 && d1 <= 0.0) {
      // falling crossover (this series drops below other)
      const double t = d0 / (d0 - d1);
      return a[i - 1].x + t * (a[i].x - a[i - 1].x);
    }
    if (d0 < 0.0 && d1 >= 0.0) {
      const double t = -d0 / (d1 - d0);
      return a[i - 1].x + t * (a[i].x - a[i - 1].x);
    }
  }
  return std::numeric_limits<double>::quiet_NaN();
}

}  // namespace sim
