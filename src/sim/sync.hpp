// Coroutine synchronization for simulated processes.
//
// All wakeups are routed through the engine's event queue (never resumed
// inline), so the interleaving of simulated processes is governed purely
// by (time, sequence) order — the property the protocol tests depend on.
//
//   WaitList  — FIFO parking lot; building block for everything else
//   Gate      — one-shot broadcast ("the server is up")
//   OneShot<T>— single-producer single-consumer completion with a value
//               (a kernel call in flight)
//   Mailbox<T>— unbounded FIFO channel, many producers / many consumers
#pragma once

#include <coroutine>
#include <deque>
#include <optional>
#include <utility>

#include "common/assert.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace sim {

class WaitList {
 public:
  explicit WaitList(Engine& engine) : engine_(&engine) {}
  WaitList(const WaitList&) = delete;
  WaitList& operator=(const WaitList&) = delete;

  // Awaitable: always parks the caller; a later wake_one/wake_all
  // schedules resumption through the event queue.
  [[nodiscard]] auto wait() {
    struct Awaiter {
      WaitList* list;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const {
        list->parked_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  void wake_one() {
    if (parked_.empty()) return;
    auto h = parked_.front();
    parked_.pop_front();
    engine_->schedule(0, [h] { h.resume(); });
  }

  void wake_all() {
    while (!parked_.empty()) wake_one();
  }

  [[nodiscard]] std::size_t waiting() const { return parked_.size(); }

 private:
  Engine* engine_;
  std::deque<std::coroutine_handle<>> parked_;
};

class Gate {
 public:
  explicit Gate(Engine& engine) : waiters_(engine) {}

  void open() {
    open_ = true;
    waiters_.wake_all();
  }

  [[nodiscard]] bool is_open() const { return open_; }

  [[nodiscard]] Task<> wait() {
    while (!open_) co_await waiters_.wait();
  }

 private:
  bool open_ = false;
  WaitList waiters_;
};

template <typename T>
class OneShot {
 public:
  explicit OneShot(Engine& engine) : waiter_(engine) {}

  void fulfill(T value) {
    RELYNX_ASSERT_MSG(!value_.has_value(), "OneShot fulfilled twice");
    value_.emplace(std::move(value));
    waiter_.wake_one();
  }

  [[nodiscard]] bool fulfilled() const { return value_.has_value(); }

  // At most one consumer, exactly one take.
  [[nodiscard]] Task<T> take() {
    while (!value_.has_value()) {
      RELYNX_ASSERT_MSG(waiter_.waiting() == 0,
                        "OneShot has more than one consumer");
      co_await waiter_.wait();
    }
    T out = std::move(*value_);
    value_.reset();
    co_return out;
  }

 private:
  std::optional<T> value_;
  WaitList waiter_;
};

template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Engine& engine) : waiters_(engine) {}

  void put(T value) {
    items_.push_back(std::move(value));
    waiters_.wake_one();
  }

  [[nodiscard]] Task<T> get() {
    while (items_.empty()) co_await waiters_.wait();
    T out = std::move(items_.front());
    items_.pop_front();
    co_return out;
  }

  [[nodiscard]] bool try_get(T& out) {
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }
  void clear() { items_.clear(); }

 private:
  std::deque<T> items_;
  WaitList waiters_;
};

}  // namespace sim
