// sim::Task<T> — the coroutine type for all simulated code.
//
// Tasks are lazy (they do not run until awaited or explicitly started)
// and chain continuations with symmetric transfer, so a simulated
// process can call "kernel routines" that are themselves coroutines with
// plain `co_await kernel.send(...)` syntax and no scheduler round trips
// on call/return.  Exceptions propagate across co_await exactly like
// ordinary calls, which is how LYNX run-time exceptions are delivered.
//
// Coroutine hygiene (CppCoreGuidelines CP.coro): process bodies are free
// functions or member functions, never capturing lambdas; parameters
// that must survive a suspension are taken by value.
#pragma once

#include <coroutine>
#include <cstddef>
#include <exception>
#include <utility>
#include <variant>

#include "common/assert.hpp"
#include "sim/event_fn.hpp"

namespace sim {

template <typename T>
class Task;

namespace detail {

struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }
  template <typename Promise>
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) const noexcept {
    return h.promise().continuation;
  }
  void await_resume() const noexcept {}
};

struct PromiseBase {
  std::coroutine_handle<> continuation = std::noop_coroutine();

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }

  // Coroutine frames are the dominant allocation of a simulated run
  // (every kernel routine is a Task); route them through the same
  // thread-local freelist the engine uses for oversized event
  // closures, so a steady-state workload recycles a handful of warm
  // blocks instead of hammering the global allocator.
  static void* operator new(std::size_t n) {
    return CallablePool::allocate(n);
  }
  static void operator delete(void* p, std::size_t n) noexcept {
    CallablePool::release(p, n);
  }
};

}  // namespace detail

// Task<T>: a coroutine producing one T (or void) when awaited.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::variant<std::monostate, T, std::exception_ptr> outcome;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { outcome.template emplace<1>(std::move(v)); }
    void unhandled_exception() {
      outcome.template emplace<2>(std::current_exception());
    }
  };

  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  Task(Task&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (h_) h_.destroy();
      h_ = std::exchange(other.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (h_) h_.destroy();
  }

  [[nodiscard]] bool valid() const { return h_ != nullptr; }

  auto operator co_await() && {
    struct Awaiter {
      Handle h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) const noexcept {
        h.promise().continuation = cont;
        return h;  // symmetric transfer into the child
      }
      T await_resume() const {
        auto& outcome = h.promise().outcome;
        if (outcome.index() == 2) {
          std::rethrow_exception(std::get<2>(outcome));
        }
        RELYNX_ASSERT_MSG(outcome.index() == 1,
                          "task awaited before completion");
        return std::move(std::get<1>(outcome));
      }
    };
    RELYNX_ASSERT_MSG(h_, "co_await on empty Task");
    return Awaiter{h_};
  }

 private:
  explicit Task(Handle h) : h_(h) {}
  Handle h_ = nullptr;
  template <typename>
  friend class Task;
  friend class Engine;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    std::exception_ptr error;
    bool done = false;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() { done = true; }
    void unhandled_exception() { error = std::current_exception(); }
  };

  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  Task(Task&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      if (h_) h_.destroy();
      h_ = std::exchange(other.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() {
    if (h_) h_.destroy();
  }

  [[nodiscard]] bool valid() const { return h_ != nullptr; }

  auto operator co_await() && {
    struct Awaiter {
      Handle h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) const noexcept {
        h.promise().continuation = cont;
        return h;
      }
      void await_resume() const {
        if (h.promise().error) std::rethrow_exception(h.promise().error);
      }
    };
    RELYNX_ASSERT_MSG(h_, "co_await on empty Task");
    return Awaiter{h_};
  }

 private:
  explicit Task(Handle h) : h_(h) {}
  Handle h_ = nullptr;
  friend class Engine;
};

}  // namespace sim
