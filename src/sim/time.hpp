// Simulated time.
//
// The whole reproduction is a deterministic discrete-event simulation;
// simulated time is a signed 64-bit count of nanoseconds.  That gives
// ~292 years of range, far beyond any experiment here, with enough
// resolution for Chrysalis's microcoded operations (microsecond scale)
// and the bit times of a 10 Mbit/s ring (100 ns/bit).
#pragma once

#include <cstdint>

namespace sim {

using Time = std::int64_t;      // absolute simulated nanoseconds
using Duration = std::int64_t;  // simulated nanoseconds

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1000;
inline constexpr Duration kMillisecond = 1000 * kMicrosecond;
inline constexpr Duration kSecond = 1000 * kMillisecond;

[[nodiscard]] constexpr Duration nsec(std::int64_t n) { return n; }
[[nodiscard]] constexpr Duration usec(std::int64_t n) { return n * kMicrosecond; }
[[nodiscard]] constexpr Duration msec(std::int64_t n) { return n * kMillisecond; }
[[nodiscard]] constexpr Duration sec(std::int64_t n) { return n * kSecond; }

[[nodiscard]] constexpr double to_usec(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}
[[nodiscard]] constexpr double to_msec(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

// Time to clock `bits` onto a medium of `bits_per_second`.
[[nodiscard]] constexpr Duration transmission_time(std::int64_t bits,
                                                   std::int64_t bits_per_second) {
  // round up to whole nanoseconds
  return (bits * kSecond + bits_per_second - 1) / bits_per_second;
}

}  // namespace sim
