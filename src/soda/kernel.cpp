#include "soda/kernel.hpp"

#include <algorithm>

#include "trace/trace.hpp"

namespace soda {

// ===================== Network =====================

Network::Network(sim::Engine& engine, std::size_t nodes, sim::Rng rng,
                 net::CsmaBusParams bus_params, Costs costs)
    : engine_(&engine),
      costs_(costs),
      bus_(std::make_unique<net::CsmaBus>(engine, rng, bus_params)),
      medium_(bus_.get()) {
  kernels_.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    kernels_.push_back(std::make_unique<Kernel>(
        *this, net::NodeId(static_cast<std::uint32_t>(i))));
  }
}

Network::Network(sim::Engine& engine, std::size_t nodes, net::Medium& medium,
                 Costs costs)
    : engine_(&engine), costs_(costs), medium_(&medium) {
  kernels_.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    kernels_.push_back(std::make_unique<Kernel>(
        *this, net::NodeId(static_cast<std::uint32_t>(i))));
  }
}

Network::~Network() = default;

Kernel& Network::kernel(net::NodeId node) {
  RELYNX_ASSERT(node.value() < kernels_.size());
  return *kernels_[node.value()];
}

Pid Network::create_process(net::NodeId node) {
  const Pid pid = pids_.next();
  process_node_.emplace(pid, node);
  kernel(node).register_process(pid);
  return pid;
}

Kernel& Network::kernel_of(Pid pid) { return kernel(node_of(pid)); }

net::NodeId Network::node_of(Pid pid) const {
  auto it = process_node_.find(pid);
  RELYNX_ASSERT_MSG(it != process_node_.end(), "unknown pid");
  return it->second;
}

bool Network::alive(Pid pid) const {
  return process_node_.contains(pid) && !dead_.contains(pid);
}

void Network::terminate(Pid pid) {
  if (!alive(pid)) return;
  dead_.insert(pid);
  kernel_of(pid).terminate_process(pid);
}

std::uint64_t Network::total_frames() const {
  std::uint64_t n = 0;
  for (const auto& k : kernels_) n += k->frames_emitted();
  return n;
}

// ===================== Kernel plumbing =====================

Kernel::Kernel(Network& network, net::NodeId node)
    : network_(&network), node_(node),
      packer_(network.engine(), network.medium(), node,
              form::Params{network.costs().form_delay,
                           network.costs().form_max_bytes}) {
  network_->medium().attach(node_,
                            [this](const net::Frame& f) { on_frame(f); });
}

void Kernel::transmit(net::NodeId dst, WireFrame frame, std::size_t bytes,
                      std::uint64_t trace) {
  attach_frag_ack(dst, frame);
  if (v2_acks()) {
    // The frontier can never legitimately exceed the live fragment
    // that carries it — clamp so a frame is never self-screening.
    if (auto* rf = std::get_if<ReqFrag>(&frame)) {
      if (rf->tseq > 0) rf->tseq_base = std::min(tx_frontier(dst), rf->tseq);
    } else if (auto* af = std::get_if<AcceptFrag>(&frame)) {
      if (af->tseq > 0) af->tseq_base = std::min(tx_frontier(dst), af->tseq);
    }
  }
  ++frames_out_;
  if (auto* rec = trace::get(network_->engine())) {
    rec->instant(node_.value(), "wire", "frame.tx", trace, frame.index(),
                 bytes);
  }
  net::Frame out{node_, dst, bytes, std::move(frame)};
  out.trace_id = trace;
  packer_.submit(std::move(out));
}

bool Kernel::acks_enabled() const {
  return network_->costs().ack_timeout > 0;
}

bool Kernel::v2_acks() const {
  return acks_enabled() && network_->costs().cumulative_acks;
}

// ---- ack protocol v2: receiver side ------------------------------------

bool Kernel::transport_dup(net::NodeId from, std::uint64_t tseq) {
  if (tseq == 0) return false;
  const PeerRx& rx = peer_rx_[from];
  return tseq <= rx.watermark || rx.ooo.contains(tseq);
}

void Kernel::record_tseq(net::NodeId from, std::uint64_t tseq) {
  if (tseq == 0) return;
  PeerRx& rx = peer_rx_[from];
  if (tseq <= rx.watermark) return;
  rx.ooo.insert(tseq);
  while (rx.ooo.contains(rx.watermark + 1)) {
    rx.ooo.erase(rx.watermark + 1);
    ++rx.watermark;
  }
}

void Kernel::advance_base(net::NodeId from, std::uint64_t base,
                          std::uint64_t trace) {
  if (base <= 1) return;
  PeerRx& rx = peer_rx_[from];
  if (base - 1 <= rx.watermark) return;
  // Every tseq below `base` is acked or abandoned at the sender: a
  // retransmission-exhausted send to a crashed node leaves a permanent
  // hole that would otherwise pin the watermark (and with it every
  // later send) forever.  Jump over it and ack so the sender learns.
  rx.watermark = base - 1;
  while (!rx.ooo.empty() && *rx.ooo.begin() <= rx.watermark) {
    rx.ooo.erase(rx.ooo.begin());
  }
  while (rx.ooo.contains(rx.watermark + 1)) {
    rx.ooo.erase(rx.watermark + 1);
    ++rx.watermark;
  }
  owe_transport_ack(from, trace);
}

std::uint64_t Kernel::tx_frontier(net::NodeId dst) {
  std::uint64_t base = peer_tx_[dst].next_tseq;
  for (const auto& [req, ts] : transport_) {
    if (ts.dst != dst) continue;
    for (std::size_t i = 0; i < ts.tseq.size(); ++i) {
      if (!ts.acked[i]) base = std::min(base, ts.tseq[i]);
    }
  }
  for (const auto& [req, pa] : pending_accepts_) {
    if (pa.dst != dst) continue;
    for (std::size_t i = 0; i < pa.tseq.size(); ++i) {
      if (!pa.acked[i]) base = std::min(base, pa.tseq[i]);
    }
  }
  return base;
}

void Kernel::owe_transport_ack(net::NodeId to, std::uint64_t trace) {
  PeerRx& rx = peer_rx_[to];
  rx.owed_trace = trace;
  if (rx.ack_owed) return;  // the pending ack's deadline covers this one
  rx.ack_owed = true;
  const sim::Duration delay = network_->costs().ack_coalesce_delay;
  if (delay <= 0) {
    flush_transport_ack(to);
    return;
  }
  rx.ack_timer = network_->engine().schedule_cancellable(
      delay, [this, to] { flush_transport_ack(to); });
}

void Kernel::flush_transport_ack(net::NodeId to) {
  auto it = peer_rx_.find(to);
  if (it == peer_rx_.end() || !it->second.ack_owed) return;
  PeerRx& rx = it->second;
  rx.ack_owed = false;
  rx.ack_timer.cancel();
  transmit(to, TransportAck{rx.watermark}, 8, rx.owed_trace);
}

void Kernel::reack_now(net::NodeId to, std::uint64_t trace) {
  PeerRx& rx = peer_rx_[to];
  rx.ack_owed = false;
  rx.ack_timer.cancel();
  transmit(to, TransportAck{rx.watermark}, 8, trace);
}

void Kernel::ack_req_frag(net::NodeId from, const ReqFrag& f) {
  if (!acks_enabled()) return;
  if (f.tseq > 0) {
    record_tseq(from, f.tseq);
    owe_transport_ack(from, f.trace);
  } else {
    transmit(from, ReqAck{f.req, f.frag_index}, 8, f.trace);
  }
}

void Kernel::attach_frag_ack(net::NodeId dst, WireFrame& frame) {
  if (!v2_acks()) return;
  auto it = peer_rx_.find(dst);
  if (it == peer_rx_.end() || !it->second.ack_owed) return;
  PeerRx& rx = it->second;
  if (auto* rf = std::get_if<ReqFrag>(&frame)) {
    rf->has_ack = true;
    rf->ack_seq = rx.watermark;
  } else if (auto* af = std::get_if<AcceptFrag>(&frame)) {
    af->has_ack = true;
    af->ack_seq = rx.watermark;
  } else {
    return;
  }
  rx.ack_owed = false;
  rx.ack_timer.cancel();
  if (auto* rec = trace::get(network_->engine())) {
    rec->instant(node_.value(), "kernel", "ack.piggyback", rx.owed_trace,
                 rx.watermark, 0);
  }
}

// ---- ack protocol v2: sender side --------------------------------------

void Kernel::apply_cumulative_ack(net::NodeId from, std::uint64_t watermark) {
  const Costs& costs = network_->costs();
  const sim::Time now = network_->engine().now();
  for (auto& [req, ts] : transport_) {
    if (ts.dst != from || ts.tseq.empty()) continue;
    bool all = true;
    bool any_new = false;
    for (std::size_t i = 0; i < ts.tseq.size(); ++i) {
      if (!ts.acked[i] && ts.tseq[i] <= watermark) {
        ts.acked[i] = true;
        any_new = true;
      }
      all = all && ts.acked[i];
    }
    if (all && any_new && costs.adaptive_rto && ts.attempts == 1 &&
        ts.first_sent_at > 0) {
      // Karn's rule: only unretransmitted exchanges produce samples.
      peer_tx_[from].rtt.observe(now - ts.first_sent_at);
      ts.first_sent_at = 0;
    }
  }
  std::vector<ReqId> finished;
  for (auto& [req, pa] : pending_accepts_) {
    if (pa.dst != from || pa.tseq.empty()) continue;
    bool all = true;
    bool any_new = false;
    for (std::size_t i = 0; i < pa.tseq.size(); ++i) {
      if (!pa.acked[i] && pa.tseq[i] <= watermark) {
        pa.acked[i] = true;
        any_new = true;
      }
      all = all && pa.acked[i];
    }
    if (all) {
      if (any_new && costs.adaptive_rto && pa.attempts == 1 &&
          pa.first_sent_at > 0) {
        peer_tx_[from].rtt.observe(now - pa.first_sent_at);
      }
      finished.push_back(req);
    }
  }
  for (const ReqId req : finished) {
    auto it = pending_accepts_.find(req);
    it->second.timer.cancel();
    pending_accepts_.erase(it);
  }
}

void Kernel::handle(const TransportAck& f, net::NodeId from) {
  apply_cumulative_ack(from, f.watermark);
}

void Kernel::on_frame(const net::Frame& frame) {
  if (std::any_cast<form::Batch>(&frame.body) != nullptr) {
    on_batch(frame);
    return;
  }
  const auto& wf = frame.as<WireFrame>();
  sim::Duration cost = network_->costs().frame_processing;
  if (const auto* rf = std::get_if<ReqFrag>(&wf)) {
    cost += network_->costs().per_byte_copy *
            static_cast<sim::Duration>(rf->data.size());
  } else if (const auto* af = std::get_if<AcceptFrag>(&wf)) {
    cost += network_->costs().per_byte_copy *
            static_cast<sim::Duration>(af->data.size());
  }
  if (auto* rec = trace::get(network_->engine())) {
    rec->instant(node_.value(), "wire", "frame.rx", frame.trace_id, frame.id,
                 frame.payload_bytes);
  }
  network_->engine().schedule(cost, [this, wf, src = frame.src] {
    std::visit([this, src](const auto& m) { handle(m, src); }, wf);
  });
}

// A form::Batch arrived: one frame absorption for the whole batch, then
// a cheap length-prefixed walk demultiplexes the enclosures.  All
// enclosures dispatch in one scheduled event, in submission order, so
// per-link FIFO is preserved exactly as if they had been separate
// frames (src/form/, DESIGN.md §14).
void Kernel::on_batch(const net::Frame& frame) {
  const auto& batch = frame.as<form::Batch>();
  const Costs& costs = network_->costs();
  sim::Duration cost = costs.frame_processing;
  for (const net::Frame& sub : batch.frames) {
    cost += costs.form_enclosure_processing;
    const auto& wf = sub.as<WireFrame>();
    if (const auto* rf = std::get_if<ReqFrag>(&wf)) {
      cost += costs.per_byte_copy * static_cast<sim::Duration>(rf->data.size());
    } else if (const auto* af = std::get_if<AcceptFrag>(&wf)) {
      cost += costs.per_byte_copy * static_cast<sim::Duration>(af->data.size());
    }
  }
  if (auto* rec = trace::get(network_->engine())) {
    rec->instant(node_.value(), "wire", "batch.rx", frame.trace_id, frame.id,
                 batch.frames.size());
    for (const net::Frame& sub : batch.frames) {
      rec->instant(node_.value(), "wire", "frame.rx", sub.trace_id, frame.id,
                   sub.payload_bytes);
    }
  }
  std::vector<WireFrame> enclosed;
  enclosed.reserve(batch.frames.size());
  for (const net::Frame& sub : batch.frames) {
    enclosed.push_back(sub.as<WireFrame>());
  }
  network_->engine().schedule(
      cost, [this, enclosed = std::move(enclosed), src = frame.src] {
        for (const WireFrame& wf : enclosed) {
          std::visit([this, src](const auto& m) { handle(m, src); }, wf);
        }
      });
}

void Kernel::register_process(Pid pid) {
  processes_.insert(pid);
  handler_open_[pid] = true;
  interrupts_.emplace(
      pid, std::make_unique<sim::Mailbox<Interrupt>>(network_->engine()));
}

void Kernel::terminate_process(Pid pid) {
  if (!processes_.contains(pid)) return;
  // Crash interrupts for everything parked here and unaccepted.
  std::vector<ParkedRequest> doomed;
  for (auto& [id, parked] : parked_) {
    if (parked.target == pid) doomed.push_back(parked);
  }
  for (const ParkedRequest& parked : doomed) {
    parked_.erase(parked.id);
    transmit(parked.from_node, CrashNote{parked.id, pid}, 16);
  }
  // This process's own outstanding requests die quietly with it.
  std::vector<ReqId> mine;
  for (auto& [id, out] : outstanding_) {
    if (out.from == pid) mine.push_back(id);
  }
  for (ReqId id : mine) {
    per_pair_[pair_key(outstanding_[id].from, outstanding_[id].target)]--;
    outstanding_.erase(id);
    drop_transport(id);
  }
  advertised_.erase(pid);
  handler_open_.erase(pid);
  interrupts_.erase(pid);
  processes_.erase(pid);
}

void Kernel::raise(Pid pid, Interrupt intr) {
  network_->engine().schedule(
      network_->costs().interrupt_delivery,
      [this, pid, intr = std::move(intr)] {
        auto it = interrupts_.find(pid);
        if (it == interrupts_.end()) return;  // died meanwhile
        it->second->put(intr);
      });
}

// ===================== names =====================

sim::Task<Name> Kernel::generate_name(Pid caller) {
  co_await network_->engine().sleep(network_->costs().call_overhead);
  (void)caller;
  co_return network_->new_name();
}

sim::Task<Status> Kernel::advertise(Pid caller, Name name) {
  co_await network_->engine().sleep(network_->costs().call_overhead);
  if (!processes_.contains(caller)) co_return Status::kProcessDead;
  advertised_[caller].insert(name);
  co_return Status::kOk;
}

sim::Task<Status> Kernel::unadvertise(Pid caller, Name name) {
  co_await network_->engine().sleep(network_->costs().call_overhead);
  auto it = advertised_.find(caller);
  if (it == advertised_.end() || it->second.erase(name) == 0) {
    co_return Status::kNotAdvertised;
  }
  co_return Status::kOk;
}

sim::Task<std::optional<Pid>> Kernel::discover(Pid caller, Name name) {
  co_await network_->engine().sleep(network_->costs().call_overhead);
  (void)caller;
  const std::uint64_t qid = next_qid_++;
  sim::OneShot<std::optional<Pid>> slot(network_->engine());
  discovers_[qid] = DiscoverWait{&slot, false};

  // Unreliable broadcast query; replies race the timeout.  Routed
  // through the packer so the broadcast cannot overtake queued unicasts.
  ++frames_out_;
  packer_.submit_broadcast(
      net::Frame{node_, net::NodeId::invalid(), 16,
                 WireFrame(DiscoverQuery{qid, name, node_})});
  network_->engine().schedule(network_->costs().discover_timeout,
                              [this, qid] {
                                auto it = discovers_.find(qid);
                                if (it == discovers_.end()) return;
                                if (!it->second.settled) {
                                  it->second.settled = true;
                                  it->second.slot->fulfill(std::nullopt);
                                }
                              });
  std::optional<Pid> found = co_await slot.take();
  discovers_.erase(qid);
  co_return found;
}

// ===================== request =====================

void Kernel::send_request_frags(const Outstanding& out,
                                const std::vector<bool>* skip) {
  const std::size_t mtu = network_->costs().mtu_bytes;
  const std::size_t len = out.data.size();
  const auto frag_count = static_cast<std::uint32_t>(
      len == 0 ? 1 : (len + mtu - 1) / mtu);
  // v2 wire: each fragment carries the per-peer transport sequence it
  // was assigned at first transmission (stored on the tracker).
  const std::vector<std::uint64_t>* tseqs = nullptr;
  if (auto tt = transport_.find(out.id);
      tt != transport_.end() && !tt->second.tseq.empty()) {
    tseqs = &tt->second.tseq;
  }
  for (std::uint32_t i = 0; i < frag_count; ++i) {
    if (skip != nullptr && i < skip->size() && (*skip)[i]) continue;
    const std::size_t lo = static_cast<std::size_t>(i) * mtu;
    const std::size_t hi = std::min(len, lo + mtu);
    ReqFrag frag{out.id,  out.from,       out.target,
                 out.name, out.oob,       out.data.size(),
                 out.recv_limit, i,       frag_count,
                 Payload(out.data.begin() + static_cast<std::ptrdiff_t>(lo),
                         out.data.begin() + static_cast<std::ptrdiff_t>(hi)),
                 out.trace};
    if (tseqs != nullptr && i < tseqs->size()) frag.tseq = (*tseqs)[i];
    transmit(out.target_node, std::move(frag), 24 + (hi - lo), out.trace);
  }
}

void Kernel::send_accept_frags(const PendingAccept& pa,
                               const std::vector<bool>* skip) {
  const std::size_t mtu = network_->costs().mtu_bytes;
  const std::size_t give = pa.reply.size();
  const auto frag_count = static_cast<std::uint32_t>(
      give == 0 ? 1 : (give + mtu - 1) / mtu);
  for (std::uint32_t i = 0; i < frag_count; ++i) {
    if (skip != nullptr && i < skip->size() && (*skip)[i]) continue;
    const std::size_t lo = static_cast<std::size_t>(i) * mtu;
    const std::size_t hi = std::min(give, lo + mtu);
    AcceptFrag frag{pa.req, pa.oob, pa.delivered, pa.reply_total, i,
                    frag_count,
                    Payload(pa.reply.begin() + static_cast<std::ptrdiff_t>(lo),
                            pa.reply.begin() + static_cast<std::ptrdiff_t>(hi)),
                    pa.trace};
    if (i < pa.tseq.size()) frag.tseq = pa.tseq[i];
    transmit(pa.dst, std::move(frag), 24 + (hi - lo), pa.trace);
  }
}

// ---- transport-level retransmission (Costs::ack_timeout > 0) ----------

void Kernel::drop_transport(ReqId req) {
  auto it = transport_.find(req);
  if (it == transport_.end()) return;
  it->second.timer.cancel();
  transport_.erase(it);
}

void Kernel::note_done(ReqId req) {
  if (!done_set_.insert(req).second) return;
  done_fifo_.push_back(req);
  if (done_fifo_.size() > 64) {
    done_set_.erase(done_fifo_.front());
    done_fifo_.pop_front();
  }
}

void Kernel::arm_transport_timer(ReqId req) {
  auto it = transport_.find(req);
  if (it == transport_.end()) return;
  const sim::Duration rto = it->second.cur_rto > 0
                                ? it->second.cur_rto
                                : network_->costs().ack_timeout;
  it->second.timer = network_->engine().schedule_cancellable(
      rto, [this, req] { on_transport_timeout(req); });
}

void Kernel::on_transport_timeout(ReqId req) {
  auto tt = transport_.find(req);
  if (tt == transport_.end()) return;
  auto it = outstanding_.find(req);
  if (it == outstanding_.end()) {  // resolved while the timer was armed
    transport_.erase(tt);
    return;
  }
  TransportSend& ts = tt->second;
  const bool all_acked =
      std::all_of(ts.acked.begin(), ts.acked.end(), [](bool b) { return b; });
  if (all_acked) {
    // The wire leg is done; the rendezvous itself may take arbitrarily
    // long (accept is the target's business) — stop watching.
    transport_.erase(tt);
    return;
  }
  if (ts.attempts >= network_->costs().max_transport_attempts) {
    // Nothing but silence: the hint was stale, the path is cut, or the
    // target is gone.  SODA can only ever conclude this by timeout.
    Outstanding& out = it->second;
    CrashInterrupt intr{out.id, out.target};
    const Pid from_pid = out.from;
    per_pair_[pair_key(out.from, out.target)]--;
    outstanding_.erase(it);
    transport_.erase(tt);
    raise(from_pid, intr);
    return;
  }
  ++ts.attempts;
  ++retries_;
  if (ts.cur_rto > 0) {  // exponential backoff, as Charlotte's v2
    ts.cur_rto = std::min(ts.cur_rto * 2, network_->costs().rto_max);
  }
  if (auto* rec = trace::get(network_->engine())) {
    rec->instant(node_.value(), "kernel", "req.retransmit", it->second.trace,
                 req.value(), static_cast<std::uint64_t>(ts.attempts));
  }
  send_request_frags(it->second, &ts.acked);
  arm_transport_timer(req);
}

void Kernel::arm_accept_timer(ReqId req) {
  auto it = pending_accepts_.find(req);
  if (it == pending_accepts_.end()) return;
  const sim::Duration rto = it->second.cur_rto > 0
                                ? it->second.cur_rto
                                : network_->costs().ack_timeout;
  it->second.timer = network_->engine().schedule_cancellable(
      rto, [this, req] { on_accept_timeout(req); });
}

void Kernel::on_accept_timeout(ReqId req) {
  auto it = pending_accepts_.find(req);
  if (it == pending_accepts_.end()) return;
  PendingAccept& pa = it->second;
  if (pa.attempts >= network_->costs().max_transport_attempts) {
    // We accepted but cannot reach the requester.  Best effort: tell it
    // the rendezvous failed (the note itself may be lost; the requester
    // side then never learns, which is exactly SODA's failure mode).
    transmit(pa.dst, CrashNote{pa.req, Pid::invalid()}, 16, pa.trace);
    pending_accepts_.erase(it);
    return;
  }
  ++pa.attempts;
  ++retries_;
  if (pa.cur_rto > 0) {
    pa.cur_rto = std::min(pa.cur_rto * 2, network_->costs().rto_max);
  }
  if (auto* rec = trace::get(network_->engine())) {
    rec->instant(node_.value(), "kernel", "accept.retransmit", pa.trace,
                 req.value(), static_cast<std::uint64_t>(pa.attempts));
  }
  send_accept_frags(pa, &pa.acked);
  arm_accept_timer(req);
}

void Kernel::handle(const ReqAck& f, net::NodeId /*from*/) {
  auto it = transport_.find(f.req);
  if (it == transport_.end()) return;
  if (f.frag_index < it->second.acked.size()) {
    it->second.acked[f.frag_index] = true;
  }
}

void Kernel::handle(const AcceptAck& f, net::NodeId /*from*/) {
  auto it = pending_accepts_.find(f.req);
  if (it == pending_accepts_.end()) return;
  PendingAccept& pa = it->second;
  if (f.frag_index < pa.acked.size()) pa.acked[f.frag_index] = true;
  if (std::all_of(pa.acked.begin(), pa.acked.end(),
                  [](bool b) { return b; })) {
    pa.timer.cancel();
    pending_accepts_.erase(it);
  }
}

sim::Task<Result<ReqId>> Kernel::request(Pid caller, Pid target, Name name,
                                         Oob oob, Payload send_data,
                                         std::size_t recv_limit,
                                         std::uint64_t trace) {
  const Costs& costs = network_->costs();
  const std::size_t len = send_data.size();
  const std::size_t mtu = costs.mtu_bytes;
  const auto frags = static_cast<sim::Duration>(
      len == 0 ? 1 : (len + mtu - 1) / mtu);
  co_await network_->engine().sleep(
      costs.call_overhead + costs.frame_processing * frags +
      costs.per_byte_copy * static_cast<sim::Duration>(len));

  if (!processes_.contains(caller)) co_return common::Err(Status::kProcessDead);
  if (!network_->process_exists(target)) {
    co_return common::Err(Status::kNoSuchProcess);
  }
  auto& pair_count = per_pair_[pair_key(caller, target)];
  if (pair_count >= costs.max_outstanding_per_pair) {
    co_return common::Err(Status::kTooManyRequests);
  }
  ++pair_count;

  const ReqId id = network_->new_req();
  Outstanding out{id,   caller, target, network_->node_of(target),
                  name, oob,    std::move(send_data), recv_limit, 0, trace};
  const auto frag_count = static_cast<std::size_t>(frags);
  if (acks_enabled()) {
    // The tracker goes in before the fragments leave: send_request_frags
    // reads the assigned tseqs from it (v2 wire).
    TransportSend ts;
    ts.acked.assign(frag_count, false);
    ts.dst = out.target_node;
    if (costs.cumulative_acks) {
      PeerTx& tx = peer_tx_[out.target_node];
      ts.tseq.resize(frag_count);
      for (std::uint64_t& s : ts.tseq) s = tx.next_tseq++;
      if (costs.adaptive_rto) {
        ts.cur_rto =
            tx.rtt.rto(costs.ack_timeout, costs.rto_min, costs.rto_max);
      }
    }
    ts.first_sent_at = network_->engine().now();
    transport_.emplace(id, std::move(ts));
  }
  send_request_frags(out);
  outstanding_.emplace(id, std::move(out));
  if (acks_enabled()) arm_transport_timer(id);
  co_return id;
}

void Kernel::schedule_retry(ReqId req) {
  ++retries_;
  if (auto it = outstanding_.find(req); it != outstanding_.end()) {
    if (auto* rec = trace::get(network_->engine())) {
      rec->instant(node_.value(), "kernel", "req.retry", it->second.trace,
                   req.value(), static_cast<std::uint64_t>(it->second.attempts));
    }
  }
  network_->engine().schedule(network_->costs().retry_interval,
                              [this, req] {
                                auto it = outstanding_.find(req);
                                if (it == outstanding_.end()) return;
                                send_request_frags(it->second);
                              });
}

void Kernel::park_and_interrupt(ParkedRequest parked) {
  RequestInterrupt intr{parked.id, parked.from, parked.name, parked.oob,
                        parked.data.size(), parked.recv_limit, parked.trace};
  const Pid target = parked.target;
  parked_.emplace(parked.id, std::move(parked));
  raise(target, intr);
}

// ===================== accept =====================

sim::Task<Result<Payload>> Kernel::accept(Pid caller, ReqId request, Oob oob,
                                          Payload reply_data,
                                          std::size_t recv_limit) {
  const Costs& costs = network_->costs();
  auto it = parked_.find(request);
  if (it == parked_.end() || it->second.target != caller) {
    co_await network_->engine().sleep(costs.call_overhead);
    co_return common::Err(Status::kNoSuchRequest);
  }
  ParkedRequest parked = std::move(it->second);
  parked_.erase(it);
  // Claim the request the instant it leaves parked_: the accept's local
  // processing below takes simulated time, and a retransmitted ReqFrag
  // landing in that window would otherwise pass the duplicate check in
  // handle(ReqFrag) and be parked — and serviced — a second time.
  note_done(request);

  const std::size_t take = std::min(parked.data.size(), recv_limit);
  Payload taken(parked.data.begin(),
                parked.data.begin() + static_cast<std::ptrdiff_t>(take));
  const std::size_t give = std::min(reply_data.size(), parked.recv_limit);
  reply_data.resize(give);

  const std::size_t mtu = costs.mtu_bytes;
  const auto frag_count = static_cast<std::uint32_t>(
      give == 0 ? 1 : (give + mtu - 1) / mtu);
  co_await network_->engine().sleep(
      costs.call_overhead +
      costs.per_byte_copy * static_cast<sim::Duration>(take + give) +
      costs.frame_processing * frag_count);

  PendingAccept pa;
  pa.req = request;
  pa.dst = parked.from_node;
  pa.oob = oob;
  pa.delivered = take;
  pa.reply_total = give;
  pa.reply = std::move(reply_data);
  pa.acked.assign(frag_count, false);
  pa.attempts = 1;
  pa.trace = parked.trace;
  if (acks_enabled()) {
    const Costs& c = network_->costs();
    if (c.cumulative_acks) {
      PeerTx& tx = peer_tx_[pa.dst];
      pa.tseq.resize(frag_count);
      for (std::uint64_t& s : pa.tseq) s = tx.next_tseq++;
      if (c.adaptive_rto) {
        pa.cur_rto = tx.rtt.rto(c.ack_timeout, c.rto_min, c.rto_max);
      }
    }
    pa.first_sent_at = network_->engine().now();
  }
  if (acks_enabled()) {
    // Tracker first, fragments second (like the request path): the
    // frontier scan in tx_frontier must see this accept's live tseqs,
    // or the fragments would carry a tseq_base beyond themselves and
    // the receiver would screen them as duplicates.
    auto [pit, inserted] = pending_accepts_.emplace(request, std::move(pa));
    send_accept_frags(pit->second);
    arm_accept_timer(request);
  } else {
    send_accept_frags(pa);
  }
  co_return taken;
}

// ===================== frame handlers =====================

void Kernel::handle(const ReqFrag& f, net::NodeId from) {
  // A piggybacked cumulative ack applies no matter what becomes of the
  // fragment itself.
  if (f.has_ack) apply_cumulative_ack(from, f.ack_seq);

  // v2 wire: transport-level duplicates are screened by the per-peer
  // watermark before any request-level state is consulted — the peer is
  // retransmitting because its ack was lost, so re-ack immediately
  // (never coalesced) and drop.  Unlike the done_set_ below, the
  // watermark never forgets, so arbitrarily-delayed duplicates cannot
  // be serviced twice.
  if (acks_enabled() && f.tseq > 0) {
    advance_base(from, f.tseq_base, f.trace);
    if (transport_dup(from, f.tseq)) {
      reack_now(from, f.trace);
      return;
    }
  }

  // Whole-request duplicates: already parked here, or already accepted
  // (a retransmission raced the accept).  Re-ack — the first ack may
  // have been lost — but don't park twice.
  if (parked_.contains(f.req) || done_set_.contains(f.req)) {
    ack_req_frag(from, f);
    return;
  }

  // Reassemble (single-frag fast path skips the buffer).  Mid-reassembly
  // fragments carry no verdict and are safe to ack immediately; the
  // COMPLETING fragment is only acked once the request is accepted for
  // parking.  If it were acked before a NACK and the NACK frame then
  // lost, the requester's transport tracker would retire with nothing
  // left to retransmit — a lost NACK must leave an unacked fragment
  // behind so retransmission re-elicits the verdict.
  if (f.frag_count > 1) {
    Reassembly& r = req_reassembly_[f.req];
    if (r.data.empty()) r.data.resize(f.send_total);
    if (r.have.empty()) r.have.resize(f.frag_count, false);
    if (f.frag_index >= r.have.size()) return;
    if (r.have[f.frag_index]) {
      ack_req_frag(from, f);
      return;
    }
    r.have[f.frag_index] = true;
    const std::size_t lo = static_cast<std::size_t>(f.frag_index) *
                           network_->costs().mtu_bytes;
    std::copy(f.data.begin(), f.data.end(),
              r.data.begin() + static_cast<std::ptrdiff_t>(lo));
    if (++r.seen < f.frag_count) {
      ack_req_frag(from, f);
      return;
    }
  }

  // The request is whole: evaluate it.  On a NACK, un-see the completing
  // fragment (keeping the rest of the buffer) so a retransmission of
  // just that fragment re-runs this verdict.
  const auto nack = [&](NackReason reason) {
    if (f.frag_count > 1) {
      auto it = req_reassembly_.find(f.req);
      if (it != req_reassembly_.end()) {
        it->second.have[f.frag_index] = false;
        --it->second.seen;
      }
    }
    transmit(from, ReqNack{f.req, reason}, 12, f.trace);
  };
  if (!processes_.contains(f.target)) {
    nack(NackReason::kDead);
    return;
  }
  auto adv = advertised_.find(f.target);
  if (adv == advertised_.end() || !adv->second.contains(f.name)) {
    nack(NackReason::kNoName);
    return;
  }
  if (!handler_open_[f.target]) {
    nack(NackReason::kClosed);
    return;
  }

  ack_req_frag(from, f);
  Payload data;
  if (f.frag_count > 1) {
    data = std::move(req_reassembly_[f.req].data);
    req_reassembly_.erase(f.req);
  } else {
    data = f.data;
  }
  park_and_interrupt(ParkedRequest{f.req, f.from, from, f.target, f.name,
                                   f.oob, std::move(data), f.send_total,
                                   f.recv_limit, f.trace});
}

void Kernel::handle(const ReqNack& f, net::NodeId /*from*/) {
  auto it = outstanding_.find(f.req);
  if (it == outstanding_.end()) return;
  Outstanding& out = it->second;
  switch (f.reason) {
    case NackReason::kDead: {
      CrashInterrupt intr{out.id, out.target};
      const Pid from_pid = out.from;
      per_pair_[pair_key(out.from, out.target)]--;
      outstanding_.erase(it);
      drop_transport(f.req);
      raise(from_pid, intr);
      return;
    }
    case NackReason::kClosed:
    case NackReason::kNoName: {
      if (++out.attempts >= network_->costs().max_request_attempts) {
        RejectInterrupt intr{out.id, out.target, out.name};
        const Pid from_pid = out.from;
        per_pair_[pair_key(out.from, out.target)]--;
        outstanding_.erase(it);
        drop_transport(f.req);
        raise(from_pid, intr);
        return;
      }
      schedule_retry(f.req);
      return;
    }
  }
}

void Kernel::handle(const AcceptFrag& f, net::NodeId from) {
  if (f.has_ack) apply_cumulative_ack(from, f.ack_seq);
  // Ack even when the request is already resolved here: the accepter
  // may be retransmitting because *its* acks were lost.  AcceptFrags
  // carry no verdict, so v2 records the tseq at receipt; duplicates are
  // screened by the watermark and re-acked immediately.
  if (acks_enabled()) {
    if (f.tseq > 0) {
      advance_base(from, f.tseq_base, f.trace);
      if (transport_dup(from, f.tseq)) {
        reack_now(from, f.trace);
        return;
      }
      record_tseq(from, f.tseq);
      owe_transport_ack(from, f.trace);
    } else {
      transmit(from, AcceptAck{f.req, f.frag_index}, 8, f.trace);
    }
  }
  auto it = outstanding_.find(f.req);
  if (it == outstanding_.end()) return;

  Payload data;
  if (f.frag_count > 1) {
    Reassembly& r = accept_reassembly_[f.req];
    if (r.data.empty()) r.data.resize(f.reply_total);
    if (r.have.empty()) r.have.resize(f.frag_count, false);
    if (f.frag_index >= r.have.size() || r.have[f.frag_index]) return;
    r.have[f.frag_index] = true;
    const std::size_t lo = static_cast<std::size_t>(f.frag_index) *
                           network_->costs().mtu_bytes;
    std::copy(f.data.begin(), f.data.end(),
              r.data.begin() + static_cast<std::ptrdiff_t>(lo));
    if (++r.seen < f.frag_count) return;
    data = std::move(r.data);
    accept_reassembly_.erase(f.req);
  } else {
    data = f.data;
  }

  Outstanding& out = it->second;
  if (data.size() > out.recv_limit) data.resize(out.recv_limit);
  CompletionInterrupt intr{f.req, f.oob, std::move(data), f.delivered,
                           f.trace};
  const Pid from_pid = out.from;
  per_pair_[pair_key(out.from, out.target)]--;
  outstanding_.erase(it);
  drop_transport(f.req);
  raise(from_pid, intr);
}

void Kernel::handle(const CrashNote& f, net::NodeId /*from*/) {
  auto it = outstanding_.find(f.req);
  if (it == outstanding_.end()) return;
  CrashInterrupt intr{f.req, f.target};
  const Pid from_pid = it->second.from;
  per_pair_[pair_key(it->second.from, it->second.target)]--;
  outstanding_.erase(it);
  drop_transport(f.req);
  raise(from_pid, intr);
}

void Kernel::announce_reboot() {
  ++frames_out_;
  if (auto* rec = trace::get(network_->engine())) {
    rec->instant(node_.value(), "kernel", "node.reboot", 0, node_.value(), 0);
  }
  packer_.submit_broadcast(net::Frame{
      node_, net::NodeId::invalid(), 16, WireFrame(RebootNote{node_})});
}

void Kernel::handle(const RebootNote& f, net::NodeId /*from*/) {
  // Everything we had rendezvoused at that node — parked or accepted —
  // died with its old incarnation; the reply will never come.
  std::vector<ReqId> doomed;
  for (const auto& [id, out] : outstanding_) {
    if (network_->node_of(out.target) == f.node) doomed.push_back(id);
  }
  for (const ReqId id : doomed) {
    Outstanding& out = outstanding_.at(id);
    CrashInterrupt intr{out.id, out.target};
    const Pid from_pid = out.from;
    per_pair_[pair_key(out.from, out.target)]--;
    outstanding_.erase(id);
    drop_transport(id);
    raise(from_pid, intr);
  }
}

void Kernel::handle(const DiscoverQuery& f, net::NodeId /*from*/) {
  for (const auto& [pid, names] : advertised_) {
    if (names.contains(f.name)) {
      transmit(f.from_node, DiscoverReply{f.qid, f.name, pid}, 16);
      return;
    }
  }
}

void Kernel::handle(const DiscoverReply& f, net::NodeId /*from*/) {
  auto it = discovers_.find(f.qid);
  if (it == discovers_.end() || it->second.settled) return;
  it->second.settled = true;
  it->second.slot->fulfill(f.pid);
}

// ===================== interrupts =====================

sim::Task<Interrupt> Kernel::next_interrupt(Pid caller) {
  auto it = interrupts_.find(caller);
  RELYNX_ASSERT_MSG(it != interrupts_.end(),
                    "next_interrupt by unknown process");
  Interrupt intr = co_await it->second->get();
  co_return intr;
}

bool Kernel::interrupt_pending(Pid caller) {
  auto it = interrupts_.find(caller);
  return it != interrupts_.end() && !it->second->empty();
}

void Kernel::close_handler(Pid caller) { handler_open_[caller] = false; }
void Kernel::open_handler(Pid caller) { handler_open_[caller] = true; }

bool Kernel::handler_open(Pid caller) const {
  auto it = handler_open_.find(caller);
  return it != handler_open_.end() && it->second;
}

}  // namespace soda
