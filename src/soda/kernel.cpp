#include "soda/kernel.hpp"

#include <algorithm>

namespace soda {

// ===================== Network =====================

Network::Network(sim::Engine& engine, std::size_t nodes, sim::Rng rng,
                 net::CsmaBusParams bus_params, Costs costs)
    : engine_(&engine),
      costs_(costs),
      bus_(std::make_unique<net::CsmaBus>(engine, rng, bus_params)) {
  kernels_.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    kernels_.push_back(std::make_unique<Kernel>(
        *this, net::NodeId(static_cast<std::uint32_t>(i))));
  }
}

Network::~Network() = default;

Kernel& Network::kernel(net::NodeId node) {
  RELYNX_ASSERT(node.value() < kernels_.size());
  return *kernels_[node.value()];
}

Pid Network::create_process(net::NodeId node) {
  const Pid pid = pids_.next();
  process_node_.emplace(pid, node);
  kernel(node).register_process(pid);
  return pid;
}

Kernel& Network::kernel_of(Pid pid) { return kernel(node_of(pid)); }

net::NodeId Network::node_of(Pid pid) const {
  auto it = process_node_.find(pid);
  RELYNX_ASSERT_MSG(it != process_node_.end(), "unknown pid");
  return it->second;
}

bool Network::alive(Pid pid) const {
  return process_node_.contains(pid) && !dead_.contains(pid);
}

void Network::terminate(Pid pid) {
  if (!alive(pid)) return;
  dead_.insert(pid);
  kernel_of(pid).terminate_process(pid);
}

std::uint64_t Network::total_frames() const {
  std::uint64_t n = 0;
  for (const auto& k : kernels_) n += k->frames_emitted();
  return n;
}

// ===================== Kernel plumbing =====================

Kernel::Kernel(Network& network, net::NodeId node)
    : network_(&network), node_(node) {
  network_->bus().attach(node_, [this](const net::Frame& f) { on_frame(f); });
}

void Kernel::transmit(net::NodeId dst, WireFrame frame, std::size_t bytes) {
  ++frames_out_;
  network_->bus().send(net::Frame{node_, dst, bytes, std::move(frame)});
}

void Kernel::on_frame(const net::Frame& frame) {
  const auto& wf = frame.as<WireFrame>();
  sim::Duration cost = network_->costs().frame_processing;
  if (const auto* rf = std::get_if<ReqFrag>(&wf)) {
    cost += network_->costs().per_byte_copy *
            static_cast<sim::Duration>(rf->data.size());
  } else if (const auto* af = std::get_if<AcceptFrag>(&wf)) {
    cost += network_->costs().per_byte_copy *
            static_cast<sim::Duration>(af->data.size());
  }
  network_->engine().schedule(cost, [this, wf, src = frame.src] {
    std::visit([this, src](const auto& m) { handle(m, src); }, wf);
  });
}

void Kernel::register_process(Pid pid) {
  processes_.insert(pid);
  handler_open_[pid] = true;
  interrupts_.emplace(
      pid, std::make_unique<sim::Mailbox<Interrupt>>(network_->engine()));
}

void Kernel::terminate_process(Pid pid) {
  if (!processes_.contains(pid)) return;
  // Crash interrupts for everything parked here and unaccepted.
  std::vector<ParkedRequest> doomed;
  for (auto& [id, parked] : parked_) {
    if (parked.target == pid) doomed.push_back(parked);
  }
  for (const ParkedRequest& parked : doomed) {
    parked_.erase(parked.id);
    transmit(parked.from_node, CrashNote{parked.id, pid}, 16);
  }
  // This process's own outstanding requests die quietly with it.
  std::vector<ReqId> mine;
  for (auto& [id, out] : outstanding_) {
    if (out.from == pid) mine.push_back(id);
  }
  for (ReqId id : mine) {
    per_pair_[pair_key(outstanding_[id].from, outstanding_[id].target)]--;
    outstanding_.erase(id);
  }
  advertised_.erase(pid);
  handler_open_.erase(pid);
  interrupts_.erase(pid);
  processes_.erase(pid);
}

void Kernel::raise(Pid pid, Interrupt intr) {
  network_->engine().schedule(
      network_->costs().interrupt_delivery,
      [this, pid, intr = std::move(intr)] {
        auto it = interrupts_.find(pid);
        if (it == interrupts_.end()) return;  // died meanwhile
        it->second->put(intr);
      });
}

// ===================== names =====================

sim::Task<Name> Kernel::generate_name(Pid caller) {
  co_await network_->engine().sleep(network_->costs().call_overhead);
  (void)caller;
  co_return network_->new_name();
}

sim::Task<Status> Kernel::advertise(Pid caller, Name name) {
  co_await network_->engine().sleep(network_->costs().call_overhead);
  if (!processes_.contains(caller)) co_return Status::kProcessDead;
  advertised_[caller].insert(name);
  co_return Status::kOk;
}

sim::Task<Status> Kernel::unadvertise(Pid caller, Name name) {
  co_await network_->engine().sleep(network_->costs().call_overhead);
  auto it = advertised_.find(caller);
  if (it == advertised_.end() || it->second.erase(name) == 0) {
    co_return Status::kNotAdvertised;
  }
  co_return Status::kOk;
}

sim::Task<std::optional<Pid>> Kernel::discover(Pid caller, Name name) {
  co_await network_->engine().sleep(network_->costs().call_overhead);
  (void)caller;
  const std::uint64_t qid = next_qid_++;
  sim::OneShot<std::optional<Pid>> slot(network_->engine());
  discovers_[qid] = DiscoverWait{&slot, false};

  // Unreliable broadcast query; replies race the timeout.
  ++frames_out_;
  network_->bus().broadcast(
      net::Frame{node_, net::NodeId::invalid(), 16,
                 WireFrame(DiscoverQuery{qid, name, node_})});
  network_->engine().schedule(network_->costs().discover_timeout,
                              [this, qid] {
                                auto it = discovers_.find(qid);
                                if (it == discovers_.end()) return;
                                if (!it->second.settled) {
                                  it->second.settled = true;
                                  it->second.slot->fulfill(std::nullopt);
                                }
                              });
  std::optional<Pid> found = co_await slot.take();
  discovers_.erase(qid);
  co_return found;
}

// ===================== request =====================

void Kernel::send_request_frags(const Outstanding& out) {
  const std::size_t mtu = network_->costs().mtu_bytes;
  const std::size_t len = out.data.size();
  const auto frag_count = static_cast<std::uint32_t>(
      len == 0 ? 1 : (len + mtu - 1) / mtu);
  for (std::uint32_t i = 0; i < frag_count; ++i) {
    const std::size_t lo = static_cast<std::size_t>(i) * mtu;
    const std::size_t hi = std::min(len, lo + mtu);
    ReqFrag frag{out.id,  out.from,       out.target,
                 out.name, out.oob,       out.data.size(),
                 out.recv_limit, i,       frag_count,
                 Payload(out.data.begin() + static_cast<std::ptrdiff_t>(lo),
                         out.data.begin() + static_cast<std::ptrdiff_t>(hi))};
    transmit(out.target_node, std::move(frag), 24 + (hi - lo));
  }
}

sim::Task<Result<ReqId>> Kernel::request(Pid caller, Pid target, Name name,
                                         Oob oob, Payload send_data,
                                         std::size_t recv_limit) {
  const Costs& costs = network_->costs();
  const std::size_t len = send_data.size();
  const std::size_t mtu = costs.mtu_bytes;
  const auto frags = static_cast<sim::Duration>(
      len == 0 ? 1 : (len + mtu - 1) / mtu);
  co_await network_->engine().sleep(
      costs.call_overhead + costs.frame_processing * frags +
      costs.per_byte_copy * static_cast<sim::Duration>(len));

  if (!processes_.contains(caller)) co_return common::Err(Status::kProcessDead);
  if (!network_->process_exists(target)) {
    co_return common::Err(Status::kNoSuchProcess);
  }
  auto& pair_count = per_pair_[pair_key(caller, target)];
  if (pair_count >= costs.max_outstanding_per_pair) {
    co_return common::Err(Status::kTooManyRequests);
  }
  ++pair_count;

  const ReqId id = network_->new_req();
  Outstanding out{id,   caller, target, network_->node_of(target),
                  name, oob,    std::move(send_data), recv_limit, 0};
  send_request_frags(out);
  outstanding_.emplace(id, std::move(out));
  co_return id;
}

void Kernel::schedule_retry(ReqId req) {
  ++retries_;
  network_->engine().schedule(network_->costs().retry_interval,
                              [this, req] {
                                auto it = outstanding_.find(req);
                                if (it == outstanding_.end()) return;
                                send_request_frags(it->second);
                              });
}

void Kernel::park_and_interrupt(ParkedRequest parked) {
  RequestInterrupt intr{parked.id, parked.from, parked.name, parked.oob,
                        parked.data.size(), parked.recv_limit};
  const Pid target = parked.target;
  parked_.emplace(parked.id, std::move(parked));
  raise(target, intr);
}

// ===================== accept =====================

sim::Task<Result<Payload>> Kernel::accept(Pid caller, ReqId request, Oob oob,
                                          Payload reply_data,
                                          std::size_t recv_limit) {
  const Costs& costs = network_->costs();
  auto it = parked_.find(request);
  if (it == parked_.end() || it->second.target != caller) {
    co_await network_->engine().sleep(costs.call_overhead);
    co_return common::Err(Status::kNoSuchRequest);
  }
  ParkedRequest parked = std::move(it->second);
  parked_.erase(it);

  const std::size_t take = std::min(parked.data.size(), recv_limit);
  Payload taken(parked.data.begin(),
                parked.data.begin() + static_cast<std::ptrdiff_t>(take));
  const std::size_t give = std::min(reply_data.size(), parked.recv_limit);
  reply_data.resize(give);

  const std::size_t mtu = costs.mtu_bytes;
  const auto frag_count = static_cast<std::uint32_t>(
      give == 0 ? 1 : (give + mtu - 1) / mtu);
  co_await network_->engine().sleep(
      costs.call_overhead +
      costs.per_byte_copy * static_cast<sim::Duration>(take + give) +
      costs.frame_processing * frag_count);

  for (std::uint32_t i = 0; i < frag_count; ++i) {
    const std::size_t lo = static_cast<std::size_t>(i) * mtu;
    const std::size_t hi = std::min(give, lo + mtu);
    AcceptFrag frag{request, oob,  take, give, i, frag_count,
                    Payload(reply_data.begin() + static_cast<std::ptrdiff_t>(lo),
                            reply_data.begin() + static_cast<std::ptrdiff_t>(hi))};
    transmit(parked.from_node, std::move(frag), 24 + (hi - lo));
  }
  co_return taken;
}

// ===================== frame handlers =====================

void Kernel::handle(const ReqFrag& f, net::NodeId from) {
  // Reassemble (single-frag fast path skips the buffer).
  Payload data;
  if (f.frag_count > 1) {
    Reassembly& r = req_reassembly_[f.req];
    if (r.data.empty()) r.data.resize(f.send_total);
    const std::size_t lo = static_cast<std::size_t>(f.frag_index) *
                           network_->costs().mtu_bytes;
    std::copy(f.data.begin(), f.data.end(),
              r.data.begin() + static_cast<std::ptrdiff_t>(lo));
    if (++r.seen < f.frag_count) return;
    data = std::move(r.data);
    req_reassembly_.erase(f.req);
  } else {
    data = f.data;
  }

  if (!processes_.contains(f.target)) {
    transmit(from, ReqNack{f.req, NackReason::kDead}, 12);
    return;
  }
  auto adv = advertised_.find(f.target);
  if (adv == advertised_.end() || !adv->second.contains(f.name)) {
    transmit(from, ReqNack{f.req, NackReason::kNoName}, 12);
    return;
  }
  if (!handler_open_[f.target]) {
    transmit(from, ReqNack{f.req, NackReason::kClosed}, 12);
    return;
  }
  park_and_interrupt(ParkedRequest{f.req, f.from, from, f.target, f.name,
                                   f.oob, std::move(data), f.send_total,
                                   f.recv_limit});
}

void Kernel::handle(const ReqNack& f, net::NodeId /*from*/) {
  auto it = outstanding_.find(f.req);
  if (it == outstanding_.end()) return;
  Outstanding& out = it->second;
  switch (f.reason) {
    case NackReason::kDead: {
      CrashInterrupt intr{out.id, out.target};
      const Pid from_pid = out.from;
      per_pair_[pair_key(out.from, out.target)]--;
      outstanding_.erase(it);
      raise(from_pid, intr);
      return;
    }
    case NackReason::kClosed:
    case NackReason::kNoName: {
      if (++out.attempts >= network_->costs().max_request_attempts) {
        RejectInterrupt intr{out.id, out.target, out.name};
        const Pid from_pid = out.from;
        per_pair_[pair_key(out.from, out.target)]--;
        outstanding_.erase(it);
        raise(from_pid, intr);
        return;
      }
      schedule_retry(f.req);
      return;
    }
  }
}

void Kernel::handle(const AcceptFrag& f, net::NodeId /*from*/) {
  auto it = outstanding_.find(f.req);
  if (it == outstanding_.end()) return;

  Payload data;
  if (f.frag_count > 1) {
    Reassembly& r = accept_reassembly_[f.req];
    if (r.data.empty()) r.data.resize(f.reply_total);
    const std::size_t lo = static_cast<std::size_t>(f.frag_index) *
                           network_->costs().mtu_bytes;
    std::copy(f.data.begin(), f.data.end(),
              r.data.begin() + static_cast<std::ptrdiff_t>(lo));
    if (++r.seen < f.frag_count) return;
    data = std::move(r.data);
    accept_reassembly_.erase(f.req);
  } else {
    data = f.data;
  }

  Outstanding& out = it->second;
  if (data.size() > out.recv_limit) data.resize(out.recv_limit);
  CompletionInterrupt intr{f.req, f.oob, std::move(data), f.delivered};
  const Pid from_pid = out.from;
  per_pair_[pair_key(out.from, out.target)]--;
  outstanding_.erase(it);
  raise(from_pid, intr);
}

void Kernel::handle(const CrashNote& f, net::NodeId /*from*/) {
  auto it = outstanding_.find(f.req);
  if (it == outstanding_.end()) return;
  CrashInterrupt intr{f.req, f.target};
  const Pid from_pid = it->second.from;
  per_pair_[pair_key(it->second.from, it->second.target)]--;
  outstanding_.erase(it);
  raise(from_pid, intr);
}

void Kernel::handle(const DiscoverQuery& f, net::NodeId /*from*/) {
  for (const auto& [pid, names] : advertised_) {
    if (names.contains(f.name)) {
      transmit(f.from_node, DiscoverReply{f.qid, f.name, pid}, 16);
      return;
    }
  }
}

void Kernel::handle(const DiscoverReply& f, net::NodeId /*from*/) {
  auto it = discovers_.find(f.qid);
  if (it == discovers_.end() || it->second.settled) return;
  it->second.settled = true;
  it->second.slot->fulfill(f.pid);
}

// ===================== interrupts =====================

sim::Task<Interrupt> Kernel::next_interrupt(Pid caller) {
  auto it = interrupts_.find(caller);
  RELYNX_ASSERT_MSG(it != interrupts_.end(),
                    "next_interrupt by unknown process");
  Interrupt intr = co_await it->second->get();
  co_return intr;
}

bool Kernel::interrupt_pending(Pid caller) {
  auto it = interrupts_.find(caller);
  return it != interrupts_.end() && !it->second->empty();
}

void Kernel::close_handler(Pid caller) { handler_open_[caller] = false; }
void Kernel::open_handler(Pid caller) { handler_open_[caller] = true; }

bool Kernel::handler_open(Pid caller) const {
  auto it = handler_open_.find(caller);
  return it != handler_open_.end() && it->second;
}

}  // namespace soda
