// The simulated SODA kernel (paper §4.1).
//
// One Kernel per node (client processor + kernel processor pair), all on
// a 1 Mbit/s CSMA bus.  Processes advertise names, make requests
// against (pid, name) pairs, feel software interrupts, and accept past
// requests; `discover` finds advertisers by unreliable broadcast.
//
// Two modelling choices, documented against the paper:
//  * Request *data* ships with the request descriptor and parks at the
//    target kernel, so "accepting a request does not even block the
//    accepter" (§4.2) holds literally: accept hands back the parked
//    bytes at local-memory speed and queues the reply leg.  Total wire
//    cost per completed operation is identical to transfer-at-accept.
//  * Requests that find the target's handler closed (or the name not
//    yet advertised) are NACKed and retried by the requesting kernel —
//    "Requests are delayed; the requesting kernel retries periodically
//    in an attempt to get through (the requesting user can proceed)."
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <variant>
#include <vector>

#include "common/result.hpp"
#include "common/rtt_estimator.hpp"
#include "form/packer.hpp"
#include "net/csma_bus.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "soda/types.hpp"

namespace soda {

class Network;

using Interrupt = std::variant<RequestInterrupt, CompletionInterrupt,
                               CrashInterrupt, RejectInterrupt>;

template <typename T>
using Result = common::Result<T, Status>;

class Kernel {
 public:
  Kernel(Network& network, net::NodeId node);
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  [[nodiscard]] net::NodeId node() const { return node_; }

  // ---- kernel calls -----------------------------------------------------
  [[nodiscard]] sim::Task<Name> generate_name(Pid caller);
  [[nodiscard]] sim::Task<Status> advertise(Pid caller, Name name);
  [[nodiscard]] sim::Task<Status> unadvertise(Pid caller, Name name);
  [[nodiscard]] sim::Task<std::optional<Pid>> discover(Pid caller, Name name);

  // Non-blocking: returns the request id; outcome arrives as a
  // CompletionInterrupt / CrashInterrupt / RejectInterrupt.  `trace` is
  // the causal identity of the RPC (rides every fragment, NACK retry,
  // and the completion) — 0 for untraced traffic.
  [[nodiscard]] sim::Task<Result<ReqId>> request(Pid caller, Pid target,
                                                 Name name, Oob oob,
                                                 Payload send_data,
                                                 std::size_t recv_limit,
                                                 std::uint64_t trace = 0);

  // Accept a previously-signalled request: returns the requester's
  // parked data (truncated to recv_limit) and queues the reply leg.
  [[nodiscard]] sim::Task<Result<Payload>> accept(Pid caller, ReqId request,
                                                  Oob oob, Payload reply_data,
                                                  std::size_t recv_limit);

  // ---- software interrupts ------------------------------------------------
  [[nodiscard]] sim::Task<Interrupt> next_interrupt(Pid caller);
  [[nodiscard]] bool interrupt_pending(Pid caller);
  void close_handler(Pid caller);  // mask: requests get NACK-deferred
  void open_handler(Pid caller);
  [[nodiscard]] bool handler_open(Pid caller) const;

  // ---- lifecycle -----------------------------------------------------------
  void register_process(Pid pid);
  void terminate_process(Pid pid);
  // A node that comes back after a crash announces itself: one
  // broadcast "I rebooted" frame.  Peer kernels conclude that every
  // rendezvous they had parked or accepted at that node died with it
  // and raise CrashInterrupts for those requests.  This is SODA's lazy
  // counterpart to Charlotte's absolute node-down notice: nothing is
  // learned while the node is down (silence is handled by transport
  // exhaustion), only when it returns.
  void announce_reboot();

  // ---- instrumentation -------------------------------------------------------
  [[nodiscard]] std::uint64_t frames_emitted() const { return frames_out_; }
  [[nodiscard]] std::uint64_t retries() const { return retries_; }
  [[nodiscard]] const form::Packer& packer() const { return packer_; }

 private:
  friend class Network;

  struct ParkedRequest {  // at the target kernel, awaiting accept
    ReqId id;
    Pid from;
    net::NodeId from_node;
    Pid target;
    Name name;
    Oob oob{};
    Payload data;
    std::size_t send_total = 0;
    std::size_t recv_limit = 0;
    std::uint64_t trace = 0;
  };
  struct Outstanding {  // at the requester kernel
    ReqId id;
    Pid from;
    Pid target;
    net::NodeId target_node;
    Name name;
    Oob oob{};
    Payload data;
    std::size_t recv_limit = 0;
    int attempts = 0;
    std::uint64_t trace = 0;
  };
  struct Reassembly {
    std::uint32_t expected = 0;
    std::uint32_t seen = 0;
    Payload data;
    // Which fragment indices arrived; lets duplicated fragments (ack
    // lost, retransmission raced the original) be counted once.
    std::vector<bool> have;
  };
  struct TransportSend {  // requester side, one per unresolved request
    int attempts = 1;
    std::vector<bool> acked;  // per request fragment
    sim::TimerHandle timer;
    // v2 wire: per-peer transport sequence number of each fragment,
    // assigned once and reused verbatim across retransmissions.
    net::NodeId dst;
    std::vector<std::uint64_t> tseq;
    sim::Time first_sent_at = 0;  // Karn: sample only unretransmitted
    sim::Duration cur_rto = 0;    // 0 = fixed ack_timeout (v1)
  };
  struct PendingAccept {  // accepter side, until AcceptAcks arrive
    ReqId req;
    net::NodeId dst;
    Oob oob{};
    std::size_t delivered = 0;
    std::size_t reply_total = 0;
    Payload reply;
    std::vector<bool> acked;  // per accept fragment
    int attempts = 1;
    sim::TimerHandle timer;
    std::uint64_t trace = 0;
    std::vector<std::uint64_t> tseq;  // as TransportSend::tseq
    sim::Time first_sent_at = 0;
    sim::Duration cur_rto = 0;
  };
  // v2 per-peer transport state.  One sequence-number stream covers
  // every fragment this kernel sends to `peer`, so a single cumulative
  // watermark acknowledges request and accept legs alike.
  struct PeerTx {  // sender side
    std::uint64_t next_tseq = 1;
    common::RttEstimator rtt;
  };
  struct PeerRx {  // receiver side
    std::uint64_t watermark = 0;      // all tseq <= watermark received
    std::set<std::uint64_t> ooo;      // received above the watermark
    bool ack_owed = false;
    std::uint64_t owed_trace = 0;
    sim::TimerHandle ack_timer;       // standalone-ack fallback
  };
  struct DiscoverWait {
    // Non-owning: the OneShot lives in the discover() coroutine frame,
    // which strictly outlives the map entry (discover erases it after
    // take() resumes).
    sim::OneShot<std::optional<Pid>>* slot = nullptr;
    bool settled = false;
  };

  // wire frames — public so tests and fault-injection tooling can
  // inspect frame bodies on the medium (the Charlotte wire:: idiom).
 public:
  struct ReqFrag {
    ReqId req;
    Pid from;
    Pid target;
    Name name;
    Oob oob{};
    std::size_t send_total = 0;
    std::size_t recv_limit = 0;
    std::uint32_t frag_index = 0;
    std::uint32_t frag_count = 1;
    Payload data;
    std::uint64_t trace = 0;
    // v2 wire descriptor: per-peer transport sequence (0 = v1 frame) and
    // an optional piggybacked cumulative ack for the reverse direction.
    std::uint64_t tseq = 0;
    // Sender frontier: every tseq below this is acked or abandoned
    // (retransmission exhaustion at a crashed peer) — the receiver may
    // jump its watermark to tseq_base - 1 so abandoned holes cannot
    // stall the cumulative ack stream forever.
    std::uint64_t tseq_base = 0;
    bool has_ack = false;
    std::uint64_t ack_seq = 0;
  };
  enum class NackReason : std::uint8_t { kClosed, kNoName, kDead };
  struct ReqNack {
    ReqId req;
    NackReason reason;
  };
  struct AcceptFrag {
    ReqId req;
    Oob oob{};
    std::size_t delivered = 0;  // bytes of requester's data taken
    std::size_t reply_total = 0;
    std::uint32_t frag_index = 0;
    std::uint32_t frag_count = 1;
    Payload data;
    std::uint64_t trace = 0;
    std::uint64_t tseq = 0;       // v2 wire descriptor, as ReqFrag
    std::uint64_t tseq_base = 0;  // sender frontier, as ReqFrag
    bool has_ack = false;
    std::uint64_t ack_seq = 0;
  };
  struct CrashNote {
    ReqId req;
    Pid target;
  };
  // Transport acks (only exchanged when Costs::ack_timeout > 0).
  struct ReqAck {
    ReqId req;
    std::uint32_t frag_index = 0;
  };
  struct AcceptAck {
    ReqId req;
    std::uint32_t frag_index = 0;
  };
  struct DiscoverQuery {
    std::uint64_t qid;
    Name name;
    net::NodeId from_node;
  };
  struct DiscoverReply {
    std::uint64_t qid;
    Name name;
    Pid pid;
  };
  struct RebootNote {
    net::NodeId node;
  };
  // v2 wire: one cumulative standalone ack — "every fragment you sent me
  // with tseq <= watermark arrived".  Appended to the variant so the
  // frame.tx indices of the v1 frames are unchanged.
  struct TransportAck {
    std::uint64_t watermark = 0;
  };
  using WireFrame = std::variant<ReqFrag, ReqNack, AcceptFrag, CrashNote,
                                 DiscoverQuery, DiscoverReply, ReqAck,
                                 AcceptAck, RebootNote, TransportAck>;

 private:
  void on_frame(const net::Frame& frame);
  void on_batch(const net::Frame& frame);
  void handle(const ReqFrag& f, net::NodeId from);
  void handle(const ReqNack& f, net::NodeId from);
  void handle(const AcceptFrag& f, net::NodeId from);
  void handle(const CrashNote& f, net::NodeId from);
  void handle(const DiscoverQuery& f, net::NodeId from);
  void handle(const DiscoverReply& f, net::NodeId from);
  void handle(const ReqAck& f, net::NodeId from);
  void handle(const AcceptAck& f, net::NodeId from);
  void handle(const RebootNote& f, net::NodeId from);
  void handle(const TransportAck& f, net::NodeId from);

  // `trace` stamps the outgoing net::Frame (and the frame.tx record);
  // pass the fragment's trace where one exists, 0 for protocol frames.
  void transmit(net::NodeId dst, WireFrame frame, std::size_t bytes,
                std::uint64_t trace = 0);
  // skip[i] == true suppresses fragment i (already acknowledged).
  void send_request_frags(const Outstanding& out,
                          const std::vector<bool>* skip = nullptr);
  void send_accept_frags(const PendingAccept& pa,
                         const std::vector<bool>* skip = nullptr);
  void schedule_retry(ReqId req);
  [[nodiscard]] bool acks_enabled() const;
  // v2 wire selected (cumulative_acks && acks_enabled).
  [[nodiscard]] bool v2_acks() const;
  void arm_transport_timer(ReqId req);
  void on_transport_timeout(ReqId req);
  void arm_accept_timer(ReqId req);
  void on_accept_timeout(ReqId req);
  void drop_transport(ReqId req);  // cancels the retransmit timer
  void note_done(ReqId req);       // remember accepted reqs for re-acking
  // ---- v2 transport helpers ----
  // Receiver: is this a transport-level duplicate from `from`?
  [[nodiscard]] bool transport_dup(net::NodeId from, std::uint64_t tseq);
  // Receiver: mark tseq received and advance the watermark through the
  // out-of-order set.
  void record_tseq(net::NodeId from, std::uint64_t tseq);
  // Receiver: the sender promised never to (re)transmit below `base`;
  // jump the watermark over abandoned holes (crash recovery).
  void advance_base(net::NodeId from, std::uint64_t base,
                    std::uint64_t trace);
  // Sender: lowest unacked live tseq bound for `dst` (next_tseq if
  // none) — stamped on every outgoing v2 data fragment.
  [[nodiscard]] std::uint64_t tx_frontier(net::NodeId dst);
  // Receiver: owe `to` a cumulative ack; flushed standalone after
  // ack_coalesce_delay unless a reverse-leg fragment picks it up first.
  void owe_transport_ack(net::NodeId to, std::uint64_t trace);
  void flush_transport_ack(net::NodeId to);
  // Receiver: a duplicate means the peer is retransmitting — its ack was
  // lost.  Re-ack the watermark immediately, never coalesced.
  void reack_now(net::NodeId to, std::uint64_t trace);
  // Receiver: v1 acks frag-by-frag, v2 records the tseq and owes a
  // cumulative ack.  Used for every acknowledged ReqFrag.
  void ack_req_frag(net::NodeId from, const ReqFrag& f);
  // Sender: a cumulative watermark from `from` arrived (standalone or
  // piggybacked); retire acked fragments and feed the RTT estimator.
  void apply_cumulative_ack(net::NodeId from, std::uint64_t watermark);
  // Sender: attach an owed ack to an outgoing data fragment bound for
  // `dst`, if one is pending there.
  void attach_frag_ack(net::NodeId dst, WireFrame& frame);
  void raise(Pid pid, Interrupt intr);
  void park_and_interrupt(ParkedRequest parked);
  [[nodiscard]] std::uint64_t pair_key(Pid a, Pid b) const {
    return (a.value() < b.value())
               ? (static_cast<std::uint64_t>(a.value()) << 32) | b.value()
               : (static_cast<std::uint64_t>(b.value()) << 32) | a.value();
  }

  Network* network_;
  net::NodeId node_;
  form::Packer packer_;
  std::unordered_set<Pid> processes_;
  std::unordered_map<Pid, std::unordered_set<Name>> advertised_;
  std::unordered_map<Pid, bool> handler_open_;
  std::unordered_map<Pid, std::unique_ptr<sim::Mailbox<Interrupt>>>
      interrupts_;
  std::unordered_map<ReqId, ParkedRequest> parked_;
  std::unordered_map<ReqId, Reassembly> req_reassembly_;
  std::unordered_map<ReqId, Outstanding> outstanding_;
  std::unordered_map<ReqId, Reassembly> accept_reassembly_;
  std::unordered_map<ReqId, AcceptFrag> accept_header_;
  std::unordered_map<ReqId, TransportSend> transport_;
  std::unordered_map<ReqId, PendingAccept> pending_accepts_;
  std::unordered_map<net::NodeId, PeerTx> peer_tx_;
  std::unordered_map<net::NodeId, PeerRx> peer_rx_;
  // Requests already accepted here; duplicated ReqFrags for them are
  // re-acked and dropped instead of being parked twice.
  std::deque<ReqId> done_fifo_;
  std::unordered_set<ReqId> done_set_;
  std::unordered_map<std::uint64_t, int> per_pair_;
  std::unordered_map<std::uint64_t, DiscoverWait> discovers_;
  std::uint64_t next_qid_ = 1;
  std::uint64_t frames_out_ = 0;
  std::uint64_t retries_ = 0;
};

// A SODA network: N single-process nodes on a CSMA bus.
class Network {
 public:
  Network(sim::Engine& engine, std::size_t nodes, sim::Rng rng,
          net::CsmaBusParams bus_params = {}, Costs costs = {});
  // Runs the network over an externally-owned medium (typically a
  // fault::FaultyMedium wrapping a CsmaBus).  The medium must outlive
  // the network; bus() is unavailable in this mode.
  Network(sim::Engine& engine, std::size_t nodes, net::Medium& medium,
          Costs costs = {});
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;
  ~Network();

  [[nodiscard]] sim::Engine& engine() { return *engine_; }
  [[nodiscard]] const Costs& costs() const { return costs_; }
  [[nodiscard]] net::CsmaBus& bus() {
    RELYNX_ASSERT_MSG(bus_ != nullptr, "network runs on an external medium");
    return *bus_;
  }
  [[nodiscard]] net::Medium& medium() { return *medium_; }
  [[nodiscard]] std::size_t node_count() const { return kernels_.size(); }

  [[nodiscard]] Kernel& kernel(net::NodeId node);
  [[nodiscard]] Pid create_process(net::NodeId node);
  [[nodiscard]] Kernel& kernel_of(Pid pid);
  [[nodiscard]] net::NodeId node_of(Pid pid) const;
  [[nodiscard]] bool alive(Pid pid) const;
  [[nodiscard]] bool process_exists(Pid pid) const {
    return process_node_.contains(pid);
  }
  void terminate(Pid pid);

  [[nodiscard]] std::uint64_t total_frames() const;

 private:
  friend class Kernel;
  [[nodiscard]] Name new_name() { return names_.next(); }
  [[nodiscard]] ReqId new_req() { return reqs_.next(); }

  sim::Engine* engine_;
  Costs costs_;
  std::unique_ptr<net::CsmaBus> bus_;  // null when medium is external
  net::Medium* medium_;                // the wire all kernels use
  std::vector<std::unique_ptr<Kernel>> kernels_;
  std::unordered_map<Pid, net::NodeId> process_node_;
  std::unordered_set<Pid> dead_;
  common::IdAllocator<Pid> pids_;
  common::IdAllocator<Name> names_;
  common::IdAllocator<ReqId> reqs_;
};

}  // namespace soda
