// The simulated SODA kernel (paper §4.1).
//
// One Kernel per node (client processor + kernel processor pair), all on
// a 1 Mbit/s CSMA bus.  Processes advertise names, make requests
// against (pid, name) pairs, feel software interrupts, and accept past
// requests; `discover` finds advertisers by unreliable broadcast.
//
// Two modelling choices, documented against the paper:
//  * Request *data* ships with the request descriptor and parks at the
//    target kernel, so "accepting a request does not even block the
//    accepter" (§4.2) holds literally: accept hands back the parked
//    bytes at local-memory speed and queues the reply leg.  Total wire
//    cost per completed operation is identical to transfer-at-accept.
//  * Requests that find the target's handler closed (or the name not
//    yet advertised) are NACKed and retried by the requesting kernel —
//    "Requests are delayed; the requesting kernel retries periodically
//    in an attempt to get through (the requesting user can proceed)."
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <variant>
#include <vector>

#include "common/result.hpp"
#include "form/packer.hpp"
#include "net/csma_bus.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "soda/types.hpp"

namespace soda {

class Network;

using Interrupt = std::variant<RequestInterrupt, CompletionInterrupt,
                               CrashInterrupt, RejectInterrupt>;

template <typename T>
using Result = common::Result<T, Status>;

class Kernel {
 public:
  Kernel(Network& network, net::NodeId node);
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  [[nodiscard]] net::NodeId node() const { return node_; }

  // ---- kernel calls -----------------------------------------------------
  [[nodiscard]] sim::Task<Name> generate_name(Pid caller);
  [[nodiscard]] sim::Task<Status> advertise(Pid caller, Name name);
  [[nodiscard]] sim::Task<Status> unadvertise(Pid caller, Name name);
  [[nodiscard]] sim::Task<std::optional<Pid>> discover(Pid caller, Name name);

  // Non-blocking: returns the request id; outcome arrives as a
  // CompletionInterrupt / CrashInterrupt / RejectInterrupt.  `trace` is
  // the causal identity of the RPC (rides every fragment, NACK retry,
  // and the completion) — 0 for untraced traffic.
  [[nodiscard]] sim::Task<Result<ReqId>> request(Pid caller, Pid target,
                                                 Name name, Oob oob,
                                                 Payload send_data,
                                                 std::size_t recv_limit,
                                                 std::uint64_t trace = 0);

  // Accept a previously-signalled request: returns the requester's
  // parked data (truncated to recv_limit) and queues the reply leg.
  [[nodiscard]] sim::Task<Result<Payload>> accept(Pid caller, ReqId request,
                                                  Oob oob, Payload reply_data,
                                                  std::size_t recv_limit);

  // ---- software interrupts ------------------------------------------------
  [[nodiscard]] sim::Task<Interrupt> next_interrupt(Pid caller);
  [[nodiscard]] bool interrupt_pending(Pid caller);
  void close_handler(Pid caller);  // mask: requests get NACK-deferred
  void open_handler(Pid caller);
  [[nodiscard]] bool handler_open(Pid caller) const;

  // ---- lifecycle -----------------------------------------------------------
  void register_process(Pid pid);
  void terminate_process(Pid pid);
  // A node that comes back after a crash announces itself: one
  // broadcast "I rebooted" frame.  Peer kernels conclude that every
  // rendezvous they had parked or accepted at that node died with it
  // and raise CrashInterrupts for those requests.  This is SODA's lazy
  // counterpart to Charlotte's absolute node-down notice: nothing is
  // learned while the node is down (silence is handled by transport
  // exhaustion), only when it returns.
  void announce_reboot();

  // ---- instrumentation -------------------------------------------------------
  [[nodiscard]] std::uint64_t frames_emitted() const { return frames_out_; }
  [[nodiscard]] std::uint64_t retries() const { return retries_; }
  [[nodiscard]] const form::Packer& packer() const { return packer_; }

 private:
  friend class Network;

  struct ParkedRequest {  // at the target kernel, awaiting accept
    ReqId id;
    Pid from;
    net::NodeId from_node;
    Pid target;
    Name name;
    Oob oob{};
    Payload data;
    std::size_t send_total = 0;
    std::size_t recv_limit = 0;
    std::uint64_t trace = 0;
  };
  struct Outstanding {  // at the requester kernel
    ReqId id;
    Pid from;
    Pid target;
    net::NodeId target_node;
    Name name;
    Oob oob{};
    Payload data;
    std::size_t recv_limit = 0;
    int attempts = 0;
    std::uint64_t trace = 0;
  };
  struct Reassembly {
    std::uint32_t expected = 0;
    std::uint32_t seen = 0;
    Payload data;
    // Which fragment indices arrived; lets duplicated fragments (ack
    // lost, retransmission raced the original) be counted once.
    std::vector<bool> have;
  };
  struct TransportSend {  // requester side, one per unresolved request
    int attempts = 1;
    std::vector<bool> acked;  // per request fragment
    sim::TimerHandle timer;
  };
  struct PendingAccept {  // accepter side, until AcceptAcks arrive
    ReqId req;
    net::NodeId dst;
    Oob oob{};
    std::size_t delivered = 0;
    std::size_t reply_total = 0;
    Payload reply;
    std::vector<bool> acked;  // per accept fragment
    int attempts = 1;
    sim::TimerHandle timer;
    std::uint64_t trace = 0;
  };
  struct DiscoverWait {
    // Non-owning: the OneShot lives in the discover() coroutine frame,
    // which strictly outlives the map entry (discover erases it after
    // take() resumes).
    sim::OneShot<std::optional<Pid>>* slot = nullptr;
    bool settled = false;
  };

  // wire frames
  struct ReqFrag {
    ReqId req;
    Pid from;
    Pid target;
    Name name;
    Oob oob{};
    std::size_t send_total = 0;
    std::size_t recv_limit = 0;
    std::uint32_t frag_index = 0;
    std::uint32_t frag_count = 1;
    Payload data;
    std::uint64_t trace = 0;
  };
  enum class NackReason : std::uint8_t { kClosed, kNoName, kDead };
  struct ReqNack {
    ReqId req;
    NackReason reason;
  };
  struct AcceptFrag {
    ReqId req;
    Oob oob{};
    std::size_t delivered = 0;  // bytes of requester's data taken
    std::size_t reply_total = 0;
    std::uint32_t frag_index = 0;
    std::uint32_t frag_count = 1;
    Payload data;
    std::uint64_t trace = 0;
  };
  struct CrashNote {
    ReqId req;
    Pid target;
  };
  // Transport acks (only exchanged when Costs::ack_timeout > 0).
  struct ReqAck {
    ReqId req;
    std::uint32_t frag_index = 0;
  };
  struct AcceptAck {
    ReqId req;
    std::uint32_t frag_index = 0;
  };
  struct DiscoverQuery {
    std::uint64_t qid;
    Name name;
    net::NodeId from_node;
  };
  struct DiscoverReply {
    std::uint64_t qid;
    Name name;
    Pid pid;
  };
  struct RebootNote {
    net::NodeId node;
  };
  using WireFrame = std::variant<ReqFrag, ReqNack, AcceptFrag, CrashNote,
                                 DiscoverQuery, DiscoverReply, ReqAck,
                                 AcceptAck, RebootNote>;

  void on_frame(const net::Frame& frame);
  void on_batch(const net::Frame& frame);
  void handle(const ReqFrag& f, net::NodeId from);
  void handle(const ReqNack& f, net::NodeId from);
  void handle(const AcceptFrag& f, net::NodeId from);
  void handle(const CrashNote& f, net::NodeId from);
  void handle(const DiscoverQuery& f, net::NodeId from);
  void handle(const DiscoverReply& f, net::NodeId from);
  void handle(const ReqAck& f, net::NodeId from);
  void handle(const AcceptAck& f, net::NodeId from);
  void handle(const RebootNote& f, net::NodeId from);

  // `trace` stamps the outgoing net::Frame (and the frame.tx record);
  // pass the fragment's trace where one exists, 0 for protocol frames.
  void transmit(net::NodeId dst, WireFrame frame, std::size_t bytes,
                std::uint64_t trace = 0);
  // skip[i] == true suppresses fragment i (already acknowledged).
  void send_request_frags(const Outstanding& out,
                          const std::vector<bool>* skip = nullptr);
  void send_accept_frags(const PendingAccept& pa,
                         const std::vector<bool>* skip = nullptr);
  void schedule_retry(ReqId req);
  [[nodiscard]] bool acks_enabled() const;
  void arm_transport_timer(ReqId req);
  void on_transport_timeout(ReqId req);
  void arm_accept_timer(ReqId req);
  void on_accept_timeout(ReqId req);
  void drop_transport(ReqId req);  // cancels the retransmit timer
  void note_done(ReqId req);       // remember accepted reqs for re-acking
  void raise(Pid pid, Interrupt intr);
  void park_and_interrupt(ParkedRequest parked);
  [[nodiscard]] std::uint64_t pair_key(Pid a, Pid b) const {
    return (a.value() < b.value())
               ? (static_cast<std::uint64_t>(a.value()) << 32) | b.value()
               : (static_cast<std::uint64_t>(b.value()) << 32) | a.value();
  }

  Network* network_;
  net::NodeId node_;
  form::Packer packer_;
  std::unordered_set<Pid> processes_;
  std::unordered_map<Pid, std::unordered_set<Name>> advertised_;
  std::unordered_map<Pid, bool> handler_open_;
  std::unordered_map<Pid, std::unique_ptr<sim::Mailbox<Interrupt>>>
      interrupts_;
  std::unordered_map<ReqId, ParkedRequest> parked_;
  std::unordered_map<ReqId, Reassembly> req_reassembly_;
  std::unordered_map<ReqId, Outstanding> outstanding_;
  std::unordered_map<ReqId, Reassembly> accept_reassembly_;
  std::unordered_map<ReqId, AcceptFrag> accept_header_;
  std::unordered_map<ReqId, TransportSend> transport_;
  std::unordered_map<ReqId, PendingAccept> pending_accepts_;
  // Requests already accepted here; duplicated ReqFrags for them are
  // re-acked and dropped instead of being parked twice.
  std::deque<ReqId> done_fifo_;
  std::unordered_set<ReqId> done_set_;
  std::unordered_map<std::uint64_t, int> per_pair_;
  std::unordered_map<std::uint64_t, DiscoverWait> discovers_;
  std::uint64_t next_qid_ = 1;
  std::uint64_t frames_out_ = 0;
  std::uint64_t retries_ = 0;
};

// A SODA network: N single-process nodes on a CSMA bus.
class Network {
 public:
  Network(sim::Engine& engine, std::size_t nodes, sim::Rng rng,
          net::CsmaBusParams bus_params = {}, Costs costs = {});
  // Runs the network over an externally-owned medium (typically a
  // fault::FaultyMedium wrapping a CsmaBus).  The medium must outlive
  // the network; bus() is unavailable in this mode.
  Network(sim::Engine& engine, std::size_t nodes, net::Medium& medium,
          Costs costs = {});
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;
  ~Network();

  [[nodiscard]] sim::Engine& engine() { return *engine_; }
  [[nodiscard]] const Costs& costs() const { return costs_; }
  [[nodiscard]] net::CsmaBus& bus() {
    RELYNX_ASSERT_MSG(bus_ != nullptr, "network runs on an external medium");
    return *bus_;
  }
  [[nodiscard]] net::Medium& medium() { return *medium_; }
  [[nodiscard]] std::size_t node_count() const { return kernels_.size(); }

  [[nodiscard]] Kernel& kernel(net::NodeId node);
  [[nodiscard]] Pid create_process(net::NodeId node);
  [[nodiscard]] Kernel& kernel_of(Pid pid);
  [[nodiscard]] net::NodeId node_of(Pid pid) const;
  [[nodiscard]] bool alive(Pid pid) const;
  [[nodiscard]] bool process_exists(Pid pid) const {
    return process_node_.contains(pid);
  }
  void terminate(Pid pid);

  [[nodiscard]] std::uint64_t total_frames() const;

 private:
  friend class Kernel;
  [[nodiscard]] Name new_name() { return names_.next(); }
  [[nodiscard]] ReqId new_req() { return reqs_.next(); }

  sim::Engine* engine_;
  Costs costs_;
  std::unique_ptr<net::CsmaBus> bus_;  // null when medium is external
  net::Medium* medium_;                // the wire all kernels use
  std::vector<std::unique_ptr<Kernel>> kernels_;
  std::unordered_map<Pid, net::NodeId> process_node_;
  std::unordered_set<Pid> dead_;
  common::IdAllocator<Pid> pids_;
  common::IdAllocator<Name> names_;
  common::IdAllocator<ReqId> reqs_;
};

}  // namespace soda
