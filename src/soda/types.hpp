// SODA interface types (paper §4.1).
//
// SODA — "Simplified Operating system for Distributed Applications" — is
// closer to a communications protocol than an operating system.  Every
// process advertises *names*; communication is a request/accept
// rendezvous addressed by (process id, name): the requester says how
// much it wants to send and how much it is willing to receive (put /
// get / signal / exchange), the target feels a software interrupt, and
// when the target later accepts, data moves in both directions
// simultaneously and the requester feels a completion interrupt.  A
// small amount of out-of-band data rides on both the request and the
// accept.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/strong_id.hpp"
#include "host/process.hpp"
#include "sim/time.hpp"

namespace soda {

using host::Pid;

struct NameTag {
  static const char* prefix() { return "name"; }
};
// Advertised names: unique over space and time (GenerateName).
using Name = common::StrongId<NameTag>;

struct ReqTag {
  static const char* prefix() { return "req"; }
};
using ReqId = common::StrongId<ReqTag>;

using Payload = std::vector<std::uint8_t>;

// "a small amount of out-of-band information": two 32-bit words.  The
// paper (§4.2.1) worries that ~48 bits are needed for LYNX's
// self-descriptive message info; 64 bits is the simulated limit, and the
// LYNX backend packs into it (that packing is itself part of the
// reproduction).
using Oob = std::array<std::uint32_t, 2>;

enum class RequestKind : std::uint8_t { kSignal, kPut, kGet, kExchange };

[[nodiscard]] constexpr RequestKind classify(std::size_t send_bytes,
                                             std::size_t recv_bytes) {
  if (send_bytes == 0 && recv_bytes == 0) return RequestKind::kSignal;
  if (recv_bytes == 0) return RequestKind::kPut;
  if (send_bytes == 0) return RequestKind::kGet;
  return RequestKind::kExchange;
}

enum class Status : std::uint8_t {
  kOk,
  kNoSuchProcess,
  kNotAdvertised,    // accept/unadvertise of a name the caller doesn't hold
  kNoSuchRequest,    // accept of an unknown/already-accepted request
  kTooManyRequests,  // outstanding-per-pair limit hit (paper §4.2.1)
  kProcessDead,
  kHandlerState,     // open/close called redundantly
};

[[nodiscard]] constexpr const char* to_string(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kNoSuchProcess: return "no-such-process";
    case Status::kNotAdvertised: return "not-advertised";
    case Status::kNoSuchRequest: return "no-such-request";
    case Status::kTooManyRequests: return "too-many-requests";
    case Status::kProcessDead: return "process-dead";
    case Status::kHandlerState: return "handler-state";
  }
  return "?";
}

// ---- software interrupts ---------------------------------------------------

// The target feels this when (its id, one of its advertised names) is
// named in a request.  Data stays parked in the kernel until accept.
struct RequestInterrupt {
  ReqId request;
  Pid from;
  Name name;
  Oob oob{};
  std::size_t send_bytes = 0;  // what the requester wants to send
  std::size_t recv_bytes = 0;  // what the requester is willing to receive
  // Causal identity carried by the request (trace::TraceId, 0 =
  // untraced) — lets the accepter's runtime continue the chain.
  std::uint64_t trace = 0;
};

// The requester feels this when its request is accepted.
struct CompletionInterrupt {
  ReqId request;
  Oob oob{};          // out-of-band from the accepter
  Payload data;       // what the accepter sent back (<= our recv limit)
  std::size_t delivered = 0;  // how much of our send the accepter took
  std::uint64_t trace = 0;    // inherited from the original request
};

// The requester feels this when the target dies before accepting.
struct CrashInterrupt {
  ReqId request;
  Pid target;
};

// The requester feels this when retries exhausted: nobody at that
// (pid, name) — the name was never advertised or has been unadvertised.
struct RejectInterrupt {
  ReqId request;
  Pid target;
  Name name;
};

// Cost model, nominally PDP-11/23 client+kernel processor pairs.  SODA
// was designed for speed: few frames, little kernel bookkeeping.  The
// slow 1 Mbit/s wire (and fragmentation) is charged by the bus model.
struct Costs {
  sim::Duration call_overhead = sim::usec(500);      // client->kernel word
  sim::Duration frame_processing = sim::usec(1800);  // per frame each side
  sim::Duration interrupt_delivery = sim::usec(700);
  sim::Duration per_byte_copy = sim::nsec(400);
  sim::Duration retry_interval = sim::msec(15);      // kernel retry of
                                                     // delayed requests
  sim::Duration discover_timeout = sim::msec(30);
  int max_request_attempts = 8;  // then RejectInterrupt
  std::size_t mtu_bytes = 256;   // fragmentation threshold
  int max_outstanding_per_pair = 8;
  // ---- RPC formation (src/form/, DESIGN.md §14) ----
  // Wire frames posted to the same destination node within form_delay of
  // each other are packed into one form::Batch frame of up to
  // form_max_bytes; the receiver pays frame_processing once plus
  // form_enclosure_processing per enclosure to demultiplex.  0 = today's
  // frame-per-message wire (the default).  Note form_max_bytes is a
  // *batch* budget, distinct from mtu_bytes (which splits user payloads
  // into fragments *before* formation sees them).
  sim::Duration form_delay = sim::Duration(0);
  std::size_t form_max_bytes = 1024;
  sim::Duration form_enclosure_processing = sim::usec(200);
  // Transport-level per-fragment acknowledgement + retransmission, for
  // running over an impaired medium.  0 disables both directions (the
  // seed behaviour: unicast bus frames are reliable, so SODA's only
  // retries are the NACK-driven ones above).  When enabled, unacked
  // fragments are retransmitted every ack_timeout; after
  // max_transport_attempts of silence the kernel gives up and raises a
  // CrashInterrupt — SODA's *eventual* timeout, the counterpoint to
  // Charlotte's prompt absolute notice (§2, §4.1).
  sim::Duration ack_timeout = sim::Duration(0);
  int max_transport_attempts = 6;
  // ---- ack protocol v2 (DESIGN.md §12) ----
  // With cumulative_acks the per-fragment standalone ReqAck/AcceptAck
  // wire is replaced by per-peer transport sequence numbers: the
  // receiver acknowledges a cumulative fragment watermark that coalesces
  // for ack_coalesce_delay hoping to ride a reverse-leg fragment (the
  // request's ack on the accept, the accept's ack on the next request),
  // falling back to one standalone TransportAck frame at the deadline.
  // false = the v1 per-fragment-ack wire, kept for the regression
  // battery.  Only meaningful when ack_timeout > 0.
  bool cumulative_acks = true;
  sim::Duration ack_coalesce_delay = sim::msec(3);
  // Jacobson/Karels per-peer RTO (Karn's rule for samples, timeout
  // doubling per retransmission); ack_timeout is then only the initial
  // RTO before the first sample.  false = fixed ack_timeout re-armed
  // verbatim, the v1 behaviour.
  bool adaptive_rto = true;
  sim::Duration rto_min = sim::msec(10);
  sim::Duration rto_max = sim::msec(2000);
};

}  // namespace soda
