// Parallel parameter sweeps for the benchmark harness.
//
// Each sweep point runs a fresh deterministic simulation; points are
// independent, so they fan out across a thread pool and come back in
// input order.
#pragma once

#include <functional>
#include <type_traits>
#include <vector>

#include "sweep/thread_pool.hpp"

namespace sweep {

// Runs fn(point) for every point, in parallel, preserving input order.
template <typename P, typename R>
[[nodiscard]] std::vector<R> map(const std::vector<P>& points,
                                 std::function<R(const P&)> fn,
                                 ThreadPool& pool) {
  std::vector<std::future<R>> futures;
  futures.reserve(points.size());
  for (const P& p : points) {
    futures.push_back(pool.enqueue([&fn, p] { return fn(p); }));
  }
  std::vector<R> out;
  out.reserve(points.size());
  for (auto& f : futures) out.push_back(f.get());
  return out;
}

// Convenience: sweep with a one-off pool.
template <typename P, typename R>
[[nodiscard]] std::vector<R> map(const std::vector<P>& points,
                                 std::function<R(const P&)> fn) {
  ThreadPool pool;
  return map<P, R>(points, std::move(fn), pool);
}

// Generalized overload: any callable, result type deduced — the shape
// capacity searches and the explorer use (the std::function overloads
// above predate it and stay for the explicit-argument call sites).
template <typename P, typename F,
          typename R = std::invoke_result_t<F&, const P&>,
          typename = std::enable_if_t<std::is_invocable_v<F&, const P&>>>
[[nodiscard]] std::vector<R> map(const std::vector<P>& points, F fn,
                                 ThreadPool& pool) {
  std::vector<std::future<R>> futures;
  futures.reserve(points.size());
  for (const P& p : points) {
    futures.push_back(pool.enqueue([&fn, p] { return fn(p); }));
  }
  std::vector<R> out;
  out.reserve(points.size());
  for (auto& f : futures) out.push_back(f.get());
  return out;
}

}  // namespace sweep
