// Parallel parameter sweeps for the benchmark harness.
//
// Each sweep point runs a fresh deterministic simulation; points are
// independent, so they fan out across a thread pool and come back in
// input order.
#pragma once

#include <functional>
#include <vector>

#include "sweep/thread_pool.hpp"

namespace sweep {

// Runs fn(point) for every point, in parallel, preserving input order.
template <typename P, typename R>
[[nodiscard]] std::vector<R> map(const std::vector<P>& points,
                                 std::function<R(const P&)> fn,
                                 ThreadPool& pool) {
  std::vector<std::future<R>> futures;
  futures.reserve(points.size());
  for (const P& p : points) {
    futures.push_back(pool.enqueue([&fn, p] { return fn(p); }));
  }
  std::vector<R> out;
  out.reserve(points.size());
  for (auto& f : futures) out.push_back(f.get());
  return out;
}

// Convenience: sweep with a one-off pool.
template <typename P, typename R>
[[nodiscard]] std::vector<R> map(const std::vector<P>& points,
                                 std::function<R(const P&)> fn) {
  ThreadPool pool;
  return map<P, R>(points, std::move(fn), pool);
}

}  // namespace sweep
