// A work-queue thread pool (the CppCoreGuidelines CP.61 shape: callers
// enqueue callables and get futures; no raw threads in user code).
//
// The simulation engine itself is single-threaded and deterministic;
// host parallelism lives HERE, in the benchmark harness, which runs many
// independent Engines (seeds, sweep points) concurrently.
#pragma once

#include <algorithm>  // std::max (used in the default thread count)
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace sweep {

class ThreadPool {
 public:
  explicit ThreadPool(
      unsigned threads = std::max(1u, std::thread::hardware_concurrency())) {
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::scoped_lock lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  // Enqueue a callable; returns a future for its result.  Tasks must not
  // enqueue-and-wait on the same pool (classic deadlock) — sweeps are
  // flat fan-outs, so this never arises here.
  template <typename F>
  [[nodiscard]] auto enqueue(F fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> result = task->get_future();
    {
      std::scoped_lock lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock lock(mutex_);
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (stopping_ && queue_.empty()) return;
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      job();
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace sweep
