#include "trace/perfetto.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <set>
#include <unordered_map>

namespace trace {

namespace {

std::string escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

class Emitter {
 public:
  explicit Emitter(std::ostream& os) : os_(&os) { *os_ << "[\n"; }
  ~Emitter() { *os_ << "\n]\n"; }

  std::ostream& event() {
    if (!first_) *os_ << ",\n";
    first_ = false;
    return *os_;
  }

 private:
  std::ostream* os_;
  bool first_ = true;
};

void put_ts(std::ostream& os, sim::Time t) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3f", sim::to_usec(t));
  os << buf;
}

}  // namespace

void write_chrome_trace(const Recorder& rec, std::ostream& os) {
  const std::vector<Record> records = rec.snapshot();

  sim::Time max_at = 0;
  std::set<std::uint32_t> nodes;
  std::set<std::pair<std::uint32_t, std::uint32_t>> node_tracks;
  std::unordered_map<SpanId, const Record*> open;
  for (const Record& r : records) {
    max_at = std::max(max_at, r.at);
    if (r.kind == Kind::kCtxPush || r.kind == Kind::kCtxPop) continue;
    nodes.insert(r.node);
    node_tracks.insert({r.node, r.track});
  }

  Emitter out(os);

  for (std::uint32_t node : nodes) {
    out.event() << "{\"ph\":\"M\",\"pid\":" << node
                << ",\"name\":\"process_name\",\"args\":{\"name\":\"node "
                << node << "\"}}";
  }
  for (const auto& [node, track] : node_tracks) {
    out.event() << "{\"ph\":\"M\",\"pid\":" << node << ",\"tid\":" << track
                << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
                << escaped(rec.track_name(track)) << "\"}}";
  }

  for (const Record& r : records) {
    switch (r.kind) {
      case Kind::kSpanBegin:
        open.emplace(r.span, &r);
        break;
      case Kind::kSpanEnd: {
        auto it = open.find(r.span);
        if (it == open.end()) break;  // begin record was overwritten
        const Record& b = *it->second;
        auto& ev = out.event();
        ev << "{\"ph\":\"X\",\"name\":\"" << escaped(rec.label_name(b.label))
           << "\",\"cat\":\"span\",\"pid\":" << b.node
           << ",\"tid\":" << b.track << ",\"ts\":";
        put_ts(ev, b.at);
        ev << ",\"dur\":";
        put_ts(ev, r.at - b.at);
        ev << ",\"args\":{\"trace\":" << b.trace << ",\"a\":" << b.a
           << ",\"b\":" << b.b << "}}";
        open.erase(it);
        break;
      }
      case Kind::kInstant: {
        auto& ev = out.event();
        ev << "{\"ph\":\"i\",\"s\":\"t\",\"name\":\""
           << escaped(rec.label_name(r.label)) << "\",\"cat\":\"instant\""
           << ",\"pid\":" << r.node << ",\"tid\":" << r.track << ",\"ts\":";
        put_ts(ev, r.at);
        ev << ",\"args\":{\"trace\":" << r.trace << ",\"a\":" << r.a
           << ",\"b\":" << r.b << "}}";
        break;
      }
      case Kind::kText: {
        const std::string* msg = rec.text_of(r.seq);
        auto& ev = out.event();
        ev << "{\"ph\":\"i\",\"s\":\"t\",\"name\":\""
           << escaped(rec.label_name(r.label)) << "\",\"cat\":\"text\""
           << ",\"pid\":" << r.node << ",\"tid\":" << r.track << ",\"ts\":";
        put_ts(ev, r.at);
        ev << ",\"args\":{\"message\":\""
           << escaped(msg != nullptr ? *msg : std::string("<evicted>"))
           << "\"}}";
        break;
      }
      case Kind::kCtxPush:
      case Kind::kCtxPop:
        break;  // stream bookkeeping, not timeline content
    }
  }

  // Spans still open when the run ended (servers parked mid-receive):
  // export what is known, clipped to the end of the recording.
  for (const auto& [id, begin] : open) {
    (void)id;
    const Record& b = *begin;
    auto& ev = out.event();
    ev << "{\"ph\":\"X\",\"name\":\"" << escaped(rec.label_name(b.label))
       << "\",\"cat\":\"span.open\",\"pid\":" << b.node
       << ",\"tid\":" << b.track << ",\"ts\":";
    put_ts(ev, b.at);
    ev << ",\"dur\":";
    put_ts(ev, max_at - b.at);
    ev << ",\"args\":{\"trace\":" << b.trace << ",\"a\":" << b.a
       << ",\"b\":" << b.b << "}}";
  }
}

bool write_chrome_trace_file(const Recorder& rec, const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_trace(rec, os);
  return static_cast<bool>(os);
}

}  // namespace trace
