// Chrome trace-event JSON export (loadable in Perfetto / about:tracing).
//
// Spans are exported as "X" complete events, paired by span id at export
// time rather than as B/E pairs: interleaved coroutines on one simulated
// node routinely violate the per-thread begin/end nesting that B/E
// requires, while X events carry their own duration.  Layout: pid = the
// simulated node (named via "M" metadata), tid = the interned track
// ("runtime", "backend", "kernel", "wire", "fault", ...), ts/dur in
// microseconds of simulated time.  The TraceId rides in args.trace so
// one RPC can be followed across every node of the timeline.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace trace {

void write_chrome_trace(const Recorder& rec, std::ostream& os);

// Convenience: write to `path`; returns false (and writes nothing) if
// the file cannot be opened.
bool write_chrome_trace_file(const Recorder& rec, const std::string& path);

}  // namespace trace
