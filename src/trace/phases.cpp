#include "trace/phases.hpp"

#include <unordered_map>

namespace trace {

PhaseTable::PhaseTable(const Recorder& rec, TraceId filter) {
  std::unordered_map<SpanId, const Record*> open;
  std::unordered_map<std::string, std::size_t> index;
  for (const Record& r : rec.snapshot()) {
    if (r.kind == Kind::kSpanBegin) {
      if (filter == 0 || r.trace == filter) open.emplace(r.span, &r);
    } else if (r.kind == Kind::kSpanEnd) {
      auto it = open.find(r.span);
      if (it == open.end()) continue;
      const Record& b = *it->second;
      const std::string& label = rec.label_name(b.label);
      auto [slot, fresh] = index.emplace(label, rows_.size());
      if (fresh) rows_.push_back(PhaseRow{label, 0, 0.0});
      PhaseRow& row = rows_[slot->second];
      ++row.count;
      row.total_ms += sim::to_msec(r.at - b.at);
      open.erase(it);
    }
  }
}

const PhaseRow* PhaseTable::find(std::string_view label) const {
  for (const PhaseRow& row : rows_) {
    if (row.label == label) return &row;
  }
  return nullptr;
}

std::uint64_t PhaseTable::count(std::string_view label) const {
  const PhaseRow* row = find(label);
  return row == nullptr ? 0 : row->count;
}

double PhaseTable::total_ms(std::string_view label) const {
  const PhaseRow* row = find(label);
  return row == nullptr ? 0.0 : row->total_ms;
}

double PhaseTable::mean_ms(std::string_view label) const {
  const PhaseRow* row = find(label);
  return row == nullptr ? 0.0 : row->mean_ms();
}

void PhaseTable::print(FILE* out) const {
  std::fprintf(out, "%-28s %8s %12s %12s\n", "phase", "count", "total ms",
               "mean ms");
  for (const PhaseRow& row : rows_) {
    std::fprintf(out, "%-28s %8llu %12.3f %12.3f\n", row.label.c_str(),
                 static_cast<unsigned long long>(row.count), row.total_ms,
                 row.mean_ms());
  }
}

}  // namespace trace
