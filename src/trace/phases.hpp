// Per-phase latency decomposition from trace spans.
//
// The paper's headline tables (E3/E5/E7) are decompositions of one RPC
// into phases — gather, kernel send, wire, wait, scatter.  PhaseTable
// pairs span begin/end records and aggregates durations by span label,
// so those tables fall straight out of the recorded stream instead of
// ad-hoc timers.  Filter by TraceId to decompose a single causal chain,
// or leave 0 to aggregate everything.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace trace {

struct PhaseRow {
  std::string label;
  std::uint64_t count = 0;
  double total_ms = 0.0;
  [[nodiscard]] double mean_ms() const {
    return count == 0 ? 0.0 : total_ms / static_cast<double>(count);
  }
};

class PhaseTable {
 public:
  // Aggregates all paired spans in `rec`; when `filter` is nonzero only
  // spans carrying that TraceId contribute.
  explicit PhaseTable(const Recorder& rec, TraceId filter = 0);

  [[nodiscard]] const std::vector<PhaseRow>& rows() const { return rows_; }
  [[nodiscard]] std::uint64_t count(std::string_view label) const;
  [[nodiscard]] double total_ms(std::string_view label) const;
  [[nodiscard]] double mean_ms(std::string_view label) const;

  void print(FILE* out = stdout) const;

 private:
  [[nodiscard]] const PhaseRow* find(std::string_view label) const;
  std::vector<PhaseRow> rows_;  // in first-seen order
};

}  // namespace trace
