// The fixed-size structured trace record (modelled on Motr's addb2).
//
// Every observable step of an RPC — runtime phases, kernel frames,
// fault injections, legacy text traces — is one 64-byte POD appended to
// a per-node ring.  Records never hold host pointers or host time, only
// simulated time and small interned indices, so the stream for a run is
// a pure function of (seed, plan, workload) and can be digested for
// determinism checks exactly like `fault::digest()`.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace trace {

// A causal identity threaded through one RPC end to end: allocated by
// the client runtime, carried in the wire frames, reused by the server
// for its reply.  0 means "untraced".
using TraceId = std::uint64_t;

// Pairs a kSpanBegin with its kSpanEnd.  0 is never a live span.
using SpanId = std::uint64_t;

enum class Kind : std::uint8_t {
  kSpanBegin,  // span = id, a/b = extra args
  kSpanEnd,    // span = id
  kInstant,    // point event
  kText,       // legacy category/message; message in the side table
  kCtxPush,    // dim + a = value
  kCtxPop,     // closes the innermost push
};

// Context-stack dimensions, outermost first by convention.
enum class Dim : std::uint8_t {
  kNone = 0,
  kNode,
  kProcess,
  kThread,
  kLink,
  kRpc,
};

[[nodiscard]] const char* to_string(Kind kind);
[[nodiscard]] const char* to_string(Dim dim);

struct Record {
  sim::Time at = 0;          // simulated time of emission
  Kind kind{};
  Dim dim = Dim::kNone;      // kCtxPush/kCtxPop only
  std::uint16_t label = 0;   // interned label (span/instant name, category)
  std::uint32_t node = 0;    // emitting node
  std::uint32_t track = 0;   // interned track within the node
  std::uint32_t pad = 0;
  SpanId span = 0;           // kSpanBegin/kSpanEnd pairing key
  TraceId trace = 0;         // causal identity, 0 if untraced
  std::uint64_t a = 0;       // event-specific payload (frame id, bytes, ...)
  std::uint64_t b = 0;
  std::uint64_t seq = 0;     // global emission order across all rings
};

static_assert(sizeof(Record) == 64, "records are fixed-size by design");

}  // namespace trace
