#include "trace/trace.hpp"

#include <algorithm>
#include <ostream>

namespace trace {

namespace {
constexpr std::uint64_t kFnvPrime = 1099511628211ull;
}  // namespace

const char* to_string(Kind kind) {
  switch (kind) {
    case Kind::kSpanBegin: return "span-begin";
    case Kind::kSpanEnd: return "span-end";
    case Kind::kInstant: return "instant";
    case Kind::kText: return "text";
    case Kind::kCtxPush: return "ctx-push";
    case Kind::kCtxPop: return "ctx-pop";
  }
  return "?";
}

const char* to_string(Dim dim) {
  switch (dim) {
    case Dim::kNone: return "none";
    case Dim::kNode: return "node";
    case Dim::kProcess: return "process";
    case Dim::kThread: return "thread";
    case Dim::kLink: return "link";
    case Dim::kRpc: return "rpc";
  }
  return "?";
}

Recorder::Recorder(sim::Engine& engine, std::size_t ring_capacity)
    : engine_(&engine), capacity_(std::max<std::size_t>(ring_capacity, 8)) {
  if (engine_->recorder() == nullptr) {
    engine_->set_recorder(this);
    attached_ = true;
  }
}

Recorder::~Recorder() {
  if (attached_ && engine_->recorder() == this) {
    engine_->set_recorder(nullptr);
  }
}

void Recorder::fold(std::uint64_t v) {
  // FNV-1a, one byte at a time, little-endian field order — the same
  // discipline as fault::digest() so the two pins compose.
  for (int i = 0; i < 8; ++i) {
    digest_ ^= (v >> (8 * i)) & 0xFF;
    digest_ *= kFnvPrime;
  }
}

void Recorder::fold_bytes(std::string_view bytes) {
  for (unsigned char c : bytes) {
    digest_ ^= c;
    digest_ *= kFnvPrime;
  }
}

std::uint16_t Recorder::intern_label(std::string_view name) {
  auto it = label_ids_.find(std::string(name));
  if (it != label_ids_.end()) return it->second;
  const auto id = static_cast<std::uint16_t>(labels_.size());
  labels_.emplace_back(name);
  label_ids_.emplace(labels_.back(), id);
  fold_bytes(name);  // digest covers names, not just indices
  return id;
}

std::uint32_t Recorder::intern_track(std::string_view name) {
  auto it = track_ids_.find(std::string(name));
  if (it != track_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(tracks_.size());
  tracks_.emplace_back(name);
  track_ids_.emplace(tracks_.back(), id);
  fold_bytes(name);
  return id;
}

void Recorder::emit(Record rec) {
  rec.at = engine_->now();
  rec.seq = next_seq_++;
  ++emitted_;
  fold(static_cast<std::uint64_t>(rec.at));
  fold((static_cast<std::uint64_t>(rec.kind) << 8) |
       static_cast<std::uint64_t>(rec.dim));
  fold((static_cast<std::uint64_t>(rec.label) << 32) | rec.node);
  fold(rec.track);
  fold(rec.span);
  fold(rec.trace);
  fold(rec.a);
  fold(rec.b);
  Ring& ring = rings_[rec.node];
  if (ring.slots.size() < capacity_) {
    ring.slots.push_back(rec);
    return;
  }
  const Record& victim = ring.slots[ring.head];
  if (victim.kind == Kind::kText) texts_.erase(victim.seq);
  ++overwritten_;
  ring.slots[ring.head] = rec;
  ring.head = (ring.head + 1) % capacity_;
}

SpanId Recorder::begin_span(std::uint32_t node, const char* track,
                            const char* label, TraceId trace,
                            std::uint64_t a, std::uint64_t b) {
  if (!enabled_) return 0;
  const SpanId id = ++next_span_;
  Record rec;
  rec.kind = Kind::kSpanBegin;
  rec.label = intern_label(label);
  rec.node = node;
  rec.track = intern_track(track);
  rec.span = id;
  rec.trace = trace;
  rec.a = a;
  rec.b = b;
  emit(rec);
  return id;
}

void Recorder::end_span(std::uint32_t node, SpanId span) {
  if (!enabled_ || span == 0) return;
  Record rec;
  rec.kind = Kind::kSpanEnd;
  rec.node = node;
  rec.span = span;
  emit(rec);
}

void Recorder::instant(std::uint32_t node, const char* track,
                       const char* label, TraceId trace, std::uint64_t a,
                       std::uint64_t b) {
  if (!enabled_) return;
  Record rec;
  rec.kind = Kind::kInstant;
  rec.label = intern_label(label);
  rec.node = node;
  rec.track = intern_track(track);
  rec.trace = trace;
  rec.a = a;
  rec.b = b;
  emit(rec);
}

void Recorder::text(std::uint32_t node, const char* category,
                    std::string_view message) {
  if (!enabled_) return;
  Record rec;
  rec.kind = Kind::kText;
  rec.label = intern_label(category);
  rec.node = node;
  rec.track = intern_track("text");
  rec.a = message.size();
  fold_bytes(message);
  const std::uint64_t seq = next_seq_;  // emit() assigns this seq
  emit(rec);
  texts_.emplace(seq, std::string(message));
}

void Recorder::push_context(Dim dim, std::uint64_t value) {
  if (!enabled_) return;
  ctx_.emplace_back(dim, value);
  Record rec;
  rec.kind = Kind::kCtxPush;
  rec.dim = dim;
  rec.a = value;
  emit(rec);
}

void Recorder::pop_context() {
  if (!enabled_) return;
  RELYNX_ASSERT_MSG(!ctx_.empty(), "context pop without push");
  Record rec;
  rec.kind = Kind::kCtxPop;
  rec.dim = ctx_.back().first;
  rec.a = ctx_.back().second;
  ctx_.pop_back();
  emit(rec);
}

std::vector<Record> Recorder::snapshot() const {
  std::vector<Record> out;
  out.reserve(retained());
  for (const auto& [node, ring] : rings_) {
    (void)node;
    out.insert(out.end(), ring.slots.begin(), ring.slots.end());
  }
  std::sort(out.begin(), out.end(),
            [](const Record& x, const Record& y) { return x.seq < y.seq; });
  return out;
}

const std::string* Recorder::text_of(std::uint64_t seq) const {
  auto it = texts_.find(seq);
  return it == texts_.end() ? nullptr : &it->second;
}

std::size_t Recorder::retained() const {
  std::size_t n = 0;
  for (const auto& [node, ring] : rings_) {
    (void)node;
    n += ring.slots.size();
  }
  return n;
}

std::size_t Recorder::allocated_slots() const {
  std::size_t n = 0;
  for (const auto& [node, ring] : rings_) {
    (void)node;
    n += ring.slots.capacity();
  }
  return n;
}

void render_text(const Recorder& rec, std::ostream& os) {
  for (const Record& r : rec.snapshot()) {
    if (r.kind != Kind::kText) continue;
    const std::string* msg = rec.text_of(r.seq);
    os << "[" << sim::to_usec(r.at) << "us] " << rec.label_name(r.label)
       << ": " << (msg != nullptr ? *msg : std::string("<evicted>")) << "\n";
  }
}

}  // namespace trace
