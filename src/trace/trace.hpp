// The structured event recorder (the repo's "observability before
// scale" subsystem).
//
// One Recorder per Engine.  Instrumentation sites go through the
// trace::get(engine) gate, which costs one pointer load and one branch
// when recording is compiled in but disabled, and is constant-folded
// away entirely when RELYNX_TRACE_ENABLED is 0:
//
//   if (auto* r = trace::get(engine)) {
//     r->instant(node, "wire", "frame.tx", msg.trace, frame_id, bytes);
//   }
//
// Storage is a fixed-capacity overwriting ring of 64-byte records per
// node (allocated lazily — a disabled recorder allocates nothing).  The
// determinism digest is folded record-by-record AT EMISSION TIME, so it
// covers the full event stream even after old records have been
// overwritten: same (seed, plan, workload) => same digest, mirroring
// fault::digest().
//
// The context stack (node/process/thread/link/rpc, addb2-style) brackets
// synchronous scopes with kCtxPush/kCtxPop records, making the stream
// self-describing.  It is NOT valid across a co_await — a coroutine that
// suspends mid-scope would interleave with others — so causal identity
// across suspension points travels as an explicit TraceId instead.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/engine.hpp"
#include "trace/record.hpp"

#ifndef RELYNX_TRACE_ENABLED
#define RELYNX_TRACE_ENABLED 1
#endif

namespace trace {

class Recorder {
 public:
  // Attaches itself to the engine (and detaches on destruction) so
  // instrumentation sites can reach it via trace::get(engine).
  explicit Recorder(sim::Engine& engine,
                    std::size_t ring_capacity = 1u << 15);
  ~Recorder();
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  void enable(bool on = true) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  // ---- causal identity ------------------------------------------------
  [[nodiscard]] TraceId new_trace() { return ++next_trace_; }

  // ---- emission -------------------------------------------------------
  [[nodiscard]] SpanId begin_span(std::uint32_t node, const char* track,
                                  const char* label, TraceId trace,
                                  std::uint64_t a = 0, std::uint64_t b = 0);
  void end_span(std::uint32_t node, SpanId span);
  void instant(std::uint32_t node, const char* track, const char* label,
               TraceId trace, std::uint64_t a = 0, std::uint64_t b = 0);
  // Legacy sim::Engine::trace(category, message) lands here.
  void text(std::uint32_t node, const char* category,
            std::string_view message);

  // ---- context stack (synchronous scopes only) ------------------------
  void push_context(Dim dim, std::uint64_t value);
  void pop_context();
  [[nodiscard]] std::size_t context_depth() const { return ctx_.size(); }

  // ---- interning ------------------------------------------------------
  [[nodiscard]] std::uint16_t intern_label(std::string_view name);
  [[nodiscard]] std::uint32_t intern_track(std::string_view name);
  [[nodiscard]] const std::string& label_name(std::uint16_t id) const {
    return labels_[id];
  }
  [[nodiscard]] const std::string& track_name(std::uint32_t id) const {
    return tracks_[id];
  }
  [[nodiscard]] std::size_t label_count() const { return labels_.size(); }

  // ---- inspection -----------------------------------------------------
  // All retained records, merged across rings, in emission order.
  [[nodiscard]] std::vector<Record> snapshot() const;
  // Message body of a kText record (by its seq), or nullptr if evicted.
  [[nodiscard]] const std::string* text_of(std::uint64_t seq) const;

  [[nodiscard]] std::uint64_t total_emitted() const { return emitted_; }
  [[nodiscard]] std::uint64_t overwritten() const { return overwritten_; }
  [[nodiscard]] std::size_t retained() const;
  // Ring slots currently allocated across all nodes (0 while disabled:
  // the zero-allocation contract is tested).
  [[nodiscard]] std::size_t allocated_slots() const;
  [[nodiscard]] std::size_t ring_capacity() const { return capacity_; }

  // Order-sensitive FNV-1a over every record (and interned name / text
  // byte) ever emitted.  kEmptyDigest until the first record.
  [[nodiscard]] std::uint64_t digest() const { return digest_; }
  static constexpr std::uint64_t kEmptyDigest = 14695981039346656037ull;

  [[nodiscard]] sim::Engine& engine() { return *engine_; }

 private:
  struct Ring {
    std::vector<Record> slots;  // grows to capacity, then wraps
    std::size_t head = 0;       // next overwrite position once full
  };

  void emit(Record rec);
  void fold(std::uint64_t v);
  void fold_bytes(std::string_view bytes);

  sim::Engine* engine_;
  std::size_t capacity_;
  bool enabled_ = true;
  bool attached_ = false;

  std::unordered_map<std::uint32_t, Ring> rings_;
  std::vector<std::string> labels_;
  std::vector<std::string> tracks_;
  std::unordered_map<std::string, std::uint16_t> label_ids_;
  std::unordered_map<std::string, std::uint32_t> track_ids_;
  std::unordered_map<std::uint64_t, std::string> texts_;  // seq -> message
  std::vector<std::pair<Dim, std::uint64_t>> ctx_;

  TraceId next_trace_ = 0;
  SpanId next_span_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t emitted_ = 0;
  std::uint64_t overwritten_ = 0;
  std::uint64_t digest_ = kEmptyDigest;
};

// The gate every instrumentation site goes through.  Returns nullptr
// unless recording is compiled in, a recorder is attached, and it is
// runtime-enabled; with RELYNX_TRACE_ENABLED=0 it is constexpr nullptr
// and the dependent code folds away.
#if RELYNX_TRACE_ENABLED
[[nodiscard]] inline Recorder* get(sim::Engine& engine) {
  Recorder* rec = engine.recorder();
  return (rec != nullptr && rec->enabled()) ? rec : nullptr;
}
#else
[[nodiscard]] constexpr Recorder* get(sim::Engine&) { return nullptr; }
#endif

// RAII span for scopes that may exit by exception or early co_return.
// Safe across co_await (the frame owns it); end() is idempotent.
//
// Holds the Engine, not the Recorder: a frame parked across co_await can
// outlive the Recorder (e.g. an Engine torn down mid-run destroys parked
// frames after a later-declared Recorder is already gone), so end()
// re-resolves through trace::get() — the Recorder detaches from the
// Engine in its destructor, turning a dead recorder into a no-op.
class SpanScope {
 public:
  SpanScope() = default;
  SpanScope(Recorder* rec, std::uint32_t node, const char* track,
            const char* label, TraceId trace, std::uint64_t a = 0,
            std::uint64_t b = 0)
      : node_(node) {
    if (rec != nullptr) {
      engine_ = &rec->engine();
      span_ = rec->begin_span(node, track, label, trace, a, b);
    }
  }
  SpanScope(SpanScope&& other) noexcept { *this = std::move(other); }
  SpanScope& operator=(SpanScope&& other) noexcept {
    end();
    engine_ = other.engine_;
    node_ = other.node_;
    span_ = other.span_;
    other.engine_ = nullptr;
    return *this;
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;
  ~SpanScope() { end(); }

  void end() {
    if (engine_ != nullptr) {
      if (Recorder* rec = get(*engine_)) rec->end_span(node_, span_);
      engine_ = nullptr;
    }
  }

 private:
  sim::Engine* engine_ = nullptr;
  std::uint32_t node_ = 0;
  SpanId span_ = 0;
};

// RAII context-stack frame for synchronous scopes.
class CtxScope {
 public:
  CtxScope(Recorder* rec, Dim dim, std::uint64_t value) : rec_(rec) {
    if (rec_ != nullptr) rec_->push_context(dim, value);
  }
  CtxScope(const CtxScope&) = delete;
  CtxScope& operator=(const CtxScope&) = delete;
  ~CtxScope() {
    if (rec_ != nullptr) rec_->pop_context();
  }

 private:
  Recorder* rec_;
};

// Renders retained records back into the legacy "[123us] category:
// message" text form — the adapter that keeps sim::Engine::set_trace
// output available from the structured stream.
void render_text(const Recorder& rec, std::ostream& os);

}  // namespace trace
