// Ack protocol v2 regression pins (DESIGN.md "Charlotte ack protocol
// v2"): the cumulative-ack watermark, the counters that travel with a
// moved end, retransmit accounting on the re-ack race, and the
// piggyback/coalescing machinery.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "../support/co_check.hpp"
#include "charlotte/kernel.hpp"
#include "fault/faulty_medium.hpp"
#include "net/token_ring.hpp"
#include "sim/engine.hpp"

namespace charlotte {
namespace {

using net::NodeId;

Payload bytes(std::string s) { return Payload(s.begin(), s.end()); }
std::string text(const Payload& p) { return std::string(p.begin(), p.end()); }

// A medium that keeps a copy of the first data (Msg) frame leaving
// `watch_src` and can re-inject it later — the "duplicate delayed by the
// network for an arbitrarily long time" that windowed dedup schemes
// cannot screen.
class ReplayMedium final : public net::Medium {
 public:
  ReplayMedium(net::Medium& inner, NodeId watch_src)
      : inner_(&inner), watch_src_(watch_src) {}

  void attach(NodeId node, net::FrameHandler handler) override {
    inner_->attach(node, std::move(handler));
  }
  void send(net::Frame frame) override {
    stamp(frame);
    if (!captured_.has_value() && frame.src == watch_src_ &&
        std::holds_alternative<wire::Msg>(frame.as<wire::KernelFrame>())) {
      captured_ = frame;  // same id: a duplicate, not a new frame
    }
    inner_->send(std::move(frame));
  }
  void broadcast(net::Frame frame) override {
    stamp(frame);
    inner_->broadcast(std::move(frame));
  }
  [[nodiscard]] std::uint64_t frames_sent() const override {
    return inner_->frames_sent();
  }
  [[nodiscard]] std::uint64_t bytes_sent() const override {
    return inner_->bytes_sent();
  }

  void replay() {
    ASSERT_TRUE(captured_.has_value()) << "no Msg frame was captured";
    inner_->send(net::Frame(*captured_));
  }

 private:
  net::Medium* inner_;
  NodeId watch_src_;
  std::optional<net::Frame> captured_;
};

sim::Task<> send_one(Cluster* cl, Pid me, EndId end, std::string body,
                     std::vector<std::string>* log) {
  Kernel& k = cl->kernel_of(me);
  CO_CHECK_EQ(co_await k.send(me, end, bytes(body)), Status::kOk);
  Completion c = co_await k.wait(me);
  CO_CHECK_EQ(c.status, Status::kOk);
  CO_CHECK_EQ(c.direction, Direction::kSend);
  if (log != nullptr) log->push_back("sent:" + std::to_string(c.length));
}

sim::Task<> recv_one(Cluster* cl, Pid me, EndId end,
                     std::vector<std::string>* log) {
  Kernel& k = cl->kernel_of(me);
  CO_CHECK_EQ(co_await k.receive(me, end, 4096), Status::kOk);
  Completion c = co_await k.wait(me);
  CO_CHECK_EQ(c.status, Status::kOk);
  CO_CHECK_EQ(c.direction, Direction::kReceive);
  log->push_back("got:" + text(c.data));
}

sim::Task<> send_n(Cluster* cl, Pid me, EndId end, int n) {
  for (int i = 0; i < n; ++i) {
    co_await send_one(cl, me, end, "m" + std::to_string(i), nullptr);
  }
}

sim::Task<> recv_n(Cluster* cl, Pid me, EndId end, int n,
                   std::vector<std::string>* log) {
  for (int i = 0; i < n; ++i) {
    co_await recv_one(cl, me, end, log);
  }
}

// Satellite regression: the old dedup state was a 16-entry deque of
// recently delivered seqs, so a duplicate delayed past 16 subsequent
// deliveries fell out of the window and was serviced twice.  The
// watermark is windowless: the duplicate of delivery #1 is screened no
// matter how many deliveries intervene.  (This test delivers twenty
// messages between the original and its replayed copy; on the deque
// implementation the copy is delivered again and the final receive
// yields "m0" instead of "fresh".)
TEST(CharlotteAckProtocol, DelayedDuplicateBeyondOldWindowIsScreened) {
  sim::Engine e;
  net::TokenRing ring(e);
  ReplayMedium medium(ring, NodeId(0));
  Cluster cluster(e, 2, medium);

  Pid pa = cluster.create_process(NodeId(0));
  Pid pb = cluster.create_process(NodeId(1));
  LinkPair link = cluster.bootstrap_link(pa, pb);

  std::vector<std::string> log;
  constexpr int kRounds = 20;  // > the old window of 16
  e.spawn("send-20", send_n(&cluster, pa, link.end1, kRounds));
  e.spawn("recv-20", recv_n(&cluster, pb, link.end2, kRounds, &log));
  e.run();
  ASSERT_EQ(log.size(), static_cast<std::size_t>(kRounds));
  ASSERT_EQ(log.front(), "got:m0");

  // The network "finds" the long-lost duplicate of delivery #1, then a
  // genuinely new message follows.  Exactly one receive is posted: it
  // must yield the new message, not the duplicate.
  medium.replay();
  std::vector<std::string> tail;
  e.spawn("send-fresh", send_one(&cluster, pa, link.end1, "fresh", &tail));
  e.spawn("recv-fresh", recv_one(&cluster, pb, link.end2, &tail));
  e.run();

  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0], "got:fresh") << "replayed duplicate was re-delivered";
  EXPECT_EQ(tail[1], "sent:5");
  EXPECT_TRUE(e.process_failures().empty());
}

// The watermark must travel with a moved end.  Sequence numbers are
// per-end, so after an enclosure move the new kernel must resume the
// end's receive watermark where the old one stopped — otherwise a
// retransmit chasing the moved end (here: because the original ack was
// dropped) is delivered a second time at the new location.
TEST(CharlotteAckProtocol, WatermarkTravelsWithMovedEnd) {
  sim::Engine e;
  net::TokenRing ring(e);
  // Drop exactly the first MsgAck (node1 -> node0, in flight ~27 ms).
  fault::FaultyMedium fm(
      e, ring, 7,
      fault::Plan{}.drop_between(sim::msec(25), sim::msec(30), 1.0, NodeId(1),
                                 NodeId(0)));
  Costs costs;
  costs.ack_coalesce_delay = 0;
  costs.send_retransmit_timeout = sim::msec(60);
  costs.max_send_attempts = 8;
  Cluster cluster(e, 3, fm, costs);

  Pid pa = cluster.create_process(NodeId(0));
  Pid pb = cluster.create_process(NodeId(1));
  Pid pc = cluster.create_process(NodeId(2));
  LinkPair ab = cluster.bootstrap_link(pa, pb);   // the link under test
  LinkPair carry = cluster.bootstrap_link(pb, pc);  // moves ab.end2 to pc

  std::vector<std::string> log_b;
  std::vector<std::string> log_c;
  std::vector<std::string> log_a;

  auto b_prog = [](Cluster* cl, Pid me, EndId recv_end, EndId carry_end,
                   std::vector<std::string>* log) -> sim::Task<> {
    co_await recv_one(cl, me, recv_end, log);
    // Hand the freshly used end to pc while its (dropped-ack) delivery
    // is still being retransmitted by pa.
    Kernel& k = cl->kernel_of(me);
    CO_CHECK_EQ(co_await k.send(me, carry_end, bytes("carry"), recv_end),
                Status::kOk);
    Completion c = co_await k.wait(me);
    CO_CHECK_EQ(c.status, Status::kOk);
    log->push_back("moved");
  };
  auto c_prog = [](Cluster* cl, Pid me, EndId carry_end,
                   std::vector<std::string>* log) -> sim::Task<> {
    Kernel& k = cl->kernel_of(me);
    CO_CHECK_EQ(co_await k.receive(me, carry_end, 4096), Status::kOk);
    Completion c = co_await k.wait(me);
    CO_CHECK_EQ(c.status, Status::kOk);
    CO_CHECK(c.enclosure.valid());
    log->push_back("adopted");
    // One receive on the adopted end: with the carried watermark it
    // yields pa's second message; without it, the chased retransmit of
    // the first message would be delivered again here.
    co_await recv_one(cl, me, c.enclosure, log);
  };
  auto a_prog = [](Cluster* cl, Pid me, EndId end,
                   std::vector<std::string>* log) -> sim::Task<> {
    co_await send_one(cl, me, end, "m1", log);
    co_await send_one(cl, me, end, "m2", log);
  };

  e.spawn("b", b_prog(&cluster, pb, ab.end2, carry.end1, &log_b));
  e.spawn("c", c_prog(&cluster, pc, carry.end2, &log_c));
  e.spawn("a", a_prog(&cluster, pa, ab.end1, &log_a));
  e.run();

  ASSERT_EQ(log_b.size(), 2u);
  EXPECT_EQ(log_b[0], "got:m1");
  EXPECT_EQ(log_b[1], "moved");
  ASSERT_EQ(log_c.size(), 2u);
  EXPECT_EQ(log_c[0], "adopted");
  EXPECT_EQ(log_c[1], "got:m2")
      << "retransmit of m1 was re-delivered at the end's new home";
  ASSERT_EQ(log_a.size(), 2u);  // both sends completed exactly once
  EXPECT_TRUE(e.process_failures().empty());
}

// Satellite bugfix: a re-ack racing a just-armed retransmit timer.  The
// first copy of the message is dropped; the timeout retransmit gets
// through and its ack races the next timer tick.  With the v1 fixed
// timeout the tick wins: one spurious retransmit goes out and is billed
// to `retransmits_`.  With the adaptive RTO the backed-off tick loses
// the race and the counter records exactly the one real retransmission.
// Both runs must deliver exactly once either way.
std::uint64_t run_reack_race(bool adaptive, std::vector<std::string>* log) {
  sim::Engine e;
  net::TokenRing ring(e);
  // The only Msg copy in [17, 19) ms is the original transmission
  // (at ~18 ms); the retransmit leaves at ~33 ms, after the window.
  fault::FaultyMedium fm(
      e, ring, 11,
      fault::Plan{}.drop_between(sim::msec(17), sim::msec(19), 1.0, NodeId(0),
                                 NodeId(1)));
  Costs costs;
  costs.ack_coalesce_delay = 0;
  costs.send_retransmit_timeout = sim::msec(15);
  costs.adaptive_rto = adaptive;
  Cluster cluster(e, 2, fm, costs);

  Pid pa = cluster.create_process(NodeId(0));
  Pid pb = cluster.create_process(NodeId(1));
  LinkPair link = cluster.bootstrap_link(pa, pb);

  e.spawn("recv", recv_one(&cluster, pb, link.end2, log));
  e.spawn("send", send_one(&cluster, pa, link.end1, "m1", log));
  e.run();
  EXPECT_TRUE(e.process_failures().empty());
  return cluster.kernel(NodeId(0)).nack_retransmits();
}

TEST(CharlotteAckProtocol, ReackRaceDoesNotInflateRetransmitsUnderBackoff) {
  std::vector<std::string> fixed_log;
  const std::uint64_t fixed = run_reack_race(false, &fixed_log);
  ASSERT_EQ(fixed_log.size(), 2u);
  EXPECT_EQ(fixed_log[0], "got:m1");
  // v1 pacing: the 30 ms tick fires before the ~51 ms ack arrival —
  // a spurious second retransmit is in flight and billed.
  EXPECT_EQ(fixed, 2u);

  std::vector<std::string> adaptive_log;
  const std::uint64_t adaptive = run_reack_race(true, &adaptive_log);
  ASSERT_EQ(adaptive_log.size(), 2u);
  EXPECT_EQ(adaptive_log[0], "got:m1");
  // Backoff doubles the second interval (15 -> 30 ms from the
  // retransmission): the ack wins and the stats stay honest.
  EXPECT_EQ(adaptive, 1u);
  EXPECT_LT(adaptive, fixed);
}

// Piggybacking: with kernel costs fast enough that reverse-direction
// data leaves within the coalescing window, owed acks ride on data
// frames and the wire carries fewer frames than with coalescing
// disabled — for the identical workload and identical delivery log.
TEST(CharlotteAckProtocol, PiggybackedAcksSaveStandaloneFrames) {
  auto run = [](sim::Duration coalesce, std::vector<std::string>* log) {
    sim::Engine e;
    Costs costs;
    costs.call_overhead = sim::usec(200);
    costs.frame_processing = sim::usec(200);
    costs.ack_coalesce_delay = coalesce;
    Cluster cluster(e, 2, net::TokenRingParams{}, costs);
    Pid pa = cluster.create_process(NodeId(0));
    Pid pb = cluster.create_process(NodeId(1));
    LinkPair link = cluster.bootstrap_link(pa, pb);

    auto ping = [](Cluster* cl, Pid me, EndId end,
                   std::vector<std::string>* lg) -> sim::Task<> {
      for (int i = 0; i < 8; ++i) {
        co_await send_one(cl, me, end, "ping", nullptr);
        co_await recv_one(cl, me, end, lg);
      }
    };
    auto pong = [](Cluster* cl, Pid me, EndId end,
                   std::vector<std::string>* lg) -> sim::Task<> {
      for (int i = 0; i < 8; ++i) {
        co_await recv_one(cl, me, end, lg);
        co_await send_one(cl, me, end, "pong", nullptr);
      }
    };
    e.spawn("ping", ping(&cluster, pa, link.end1, log));
    e.spawn("pong", pong(&cluster, pb, link.end2, log));
    e.run();
    EXPECT_TRUE(e.process_failures().empty());
    return cluster.total_frames();
  };

  std::vector<std::string> log_off;
  std::vector<std::string> log_on;
  const std::uint64_t frames_off = run(0, &log_off);            // v1 wire
  const std::uint64_t frames_on = run(sim::msec(2), &log_on);   // v2 wire
  EXPECT_EQ(log_off, log_on);  // identical semantics either way
  ASSERT_EQ(log_on.size(), 16u);
  // 16 deliveries each way; with coalescing the pong side's acks (and
  // the ping side's, except for the final exchange) piggyback.
  EXPECT_LT(frames_on, frames_off);
}

}  // namespace
}  // namespace charlotte
