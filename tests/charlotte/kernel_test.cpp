// Unit / integration tests for the simulated Charlotte kernel.
//
// Test programs are written as simulated-process coroutines making
// kernel calls, exactly the way the LYNX run-time package will.
#include "charlotte/kernel.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/engine.hpp"

#include "../support/co_check.hpp"

namespace charlotte {
namespace {

using net::NodeId;

Payload bytes(std::string s) { return Payload(s.begin(), s.end()); }
std::string text(const Payload& p) { return std::string(p.begin(), p.end()); }

struct World {
  sim::Engine engine;
  Cluster cluster{engine, 4};
};

// -------- MakeLink basics ------------------------------------------------

sim::Task<> make_link_prog(Cluster* cl, Pid pid, LinkPair* out) {
  auto result = co_await cl->kernel_of(pid).make_link(pid);
  CO_CHECK(result.ok());
  *out = result.value();
}

TEST(CharlotteKernel, MakeLinkReturnsTwoDistinctEnds) {
  World w;
  Pid p = w.cluster.create_process(NodeId(0));
  LinkPair pair;
  w.engine.spawn("p", make_link_prog(&w.cluster, p, &pair));
  w.engine.run();
  EXPECT_TRUE(pair.end1.valid());
  EXPECT_TRUE(pair.end2.valid());
  EXPECT_NE(pair.end1, pair.end2);
  EXPECT_GT(w.engine.now(), 0);  // the call charged CPU time
}

// -------- simple send/receive across nodes -------------------------------

// One process creates a link; since both ends start in one process, the
// common bootstrap is: parent makes a link, keeps end1, and the test
// harness "loads" the child with end2 (as the Crystal loader did).
// grant_end simulates that loader hand-off for tests.
sim::Task<> sender_prog(Cluster* cl, Pid pid, EndId end, std::string body,
                        std::vector<std::string>* log) {
  Kernel& k = cl->kernel_of(pid);
  Status st = co_await k.send(pid, end, bytes(body));
  CO_CHECK_EQ(st, Status::kOk);
  Completion c = co_await k.wait(pid);
  CO_CHECK_EQ(c.status, Status::kOk);
  CO_CHECK_EQ(c.direction, Direction::kSend);
  log->push_back("sent:" + std::to_string(c.length));
}

sim::Task<> receiver_prog(Cluster* cl, Pid pid, EndId end,
                          std::vector<std::string>* log) {
  Kernel& k = cl->kernel_of(pid);
  Status st = co_await k.receive(pid, end, 4096);
  CO_CHECK_EQ(st, Status::kOk);
  Completion c = co_await k.wait(pid);
  CO_CHECK_EQ(c.status, Status::kOk);
  CO_CHECK_EQ(c.direction, Direction::kReceive);
  log->push_back("got:" + text(c.data));
}

// Shorthand for the loader hand-off.
struct Bootstrap {
  static LinkPair link_between(Cluster& cl, Pid a, Pid b) {
    return cl.bootstrap_link(a, b);
  }
};

TEST(CharlotteKernel, CrossNodeSendReceive) {
  World w;
  Pid pa = w.cluster.create_process(NodeId(0));
  Pid pb = w.cluster.create_process(NodeId(1));
  LinkPair pair = Bootstrap::link_between(w.cluster, pa, pb);

  std::vector<std::string> log;
  w.engine.spawn("recv", receiver_prog(&w.cluster, pb, pair.end2, &log));
  w.engine.spawn("send", sender_prog(&w.cluster, pa, pair.end1, "hello", &log));
  w.engine.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "got:hello");
  EXPECT_EQ(log[1], "sent:5");
  EXPECT_TRUE(w.engine.process_failures().empty());
}

TEST(CharlotteKernel, SendBeforeReceiveIsHeldByKernel) {
  // The paper: "retransmitted requests will be delayed by the kernel"
  // until a Receive is posted.  Here: send first, post receive later.
  World w;
  Pid pa = w.cluster.create_process(NodeId(0));
  Pid pb = w.cluster.create_process(NodeId(1));
  LinkPair pair = Bootstrap::link_between(w.cluster, pa, pb);

  std::vector<std::string> log;
  w.engine.spawn("send", sender_prog(&w.cluster, pa, pair.end1, "early", &log));
  w.engine.run();  // sender blocks in wait(); message parked at B's kernel
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(w.engine.live_processes(), 1u);

  w.engine.spawn("recv", receiver_prog(&w.cluster, pb, pair.end2, &log));
  w.engine.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "got:early");
}

TEST(CharlotteKernel, ReceiveTruncatesToPostedLength) {
  World w;
  Pid pa = w.cluster.create_process(NodeId(0));
  Pid pb = w.cluster.create_process(NodeId(1));
  LinkPair pair = Bootstrap::link_between(w.cluster, pa, pb);

  std::vector<std::string> log;
  auto recv_small = [](Cluster* cl, Pid pid, EndId end,
                       std::vector<std::string>* lg) -> sim::Task<> {
    Kernel& k = cl->kernel_of(pid);
    CO_CHECK_EQ(co_await k.receive(pid, end, 3), Status::kOk);
    Completion c = co_await k.wait(pid);
    lg->push_back("got:" + text(c.data));
  };
  w.engine.spawn("recv", recv_small(&w.cluster, pb, pair.end2, &log));
  w.engine.spawn("send",
                 sender_prog(&w.cluster, pa, pair.end1, "truncate-me", &log));
  w.engine.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "got:tru");
  EXPECT_EQ(log[1], "sent:3");  // sender learns the delivered length
}

// -------- one outstanding activity per direction --------------------------

sim::Task<> double_send_prog(Cluster* cl, Pid pid, EndId end,
                             std::vector<Status>* out) {
  Kernel& k = cl->kernel_of(pid);
  out->push_back(co_await k.send(pid, end, bytes("one")));
  out->push_back(co_await k.send(pid, end, bytes("two")));
}

TEST(CharlotteKernel, SecondSendWithoutWaitIsRejected) {
  World w;
  Pid pa = w.cluster.create_process(NodeId(0));
  Pid pb = w.cluster.create_process(NodeId(1));
  LinkPair pair = Bootstrap::link_between(w.cluster, pa, pb);
  std::vector<Status> sts;
  w.engine.spawn("p", double_send_prog(&w.cluster, pa, pair.end1, &sts));
  w.engine.run();
  ASSERT_EQ(sts.size(), 2u);
  EXPECT_EQ(sts[0], Status::kOk);
  EXPECT_EQ(sts[1], Status::kActivityPending);
}

TEST(CharlotteKernel, SendOnForeignEndRejected) {
  World w;
  Pid pa = w.cluster.create_process(NodeId(0));
  Pid pb = w.cluster.create_process(NodeId(1));
  LinkPair pair = Bootstrap::link_between(w.cluster, pa, pb);
  std::vector<Status> sts;
  auto prog = [](Cluster* cl, Pid pid, EndId end,
                 std::vector<Status>* out) -> sim::Task<> {
    out->push_back(co_await cl->kernel_of(pid).send(pid, end, {}));
  };
  // pa tries to send on pb's end (which lives on another node: unknown
  // there) and on a bogus id.
  w.engine.spawn("p", prog(&w.cluster, pa, pair.end2, &sts));
  w.engine.spawn("q", prog(&w.cluster, pa, EndId(999), &sts));
  w.engine.run();
  ASSERT_EQ(sts.size(), 2u);
  EXPECT_EQ(sts[0], Status::kNoSuchEnd);
  EXPECT_EQ(sts[1], Status::kNoSuchEnd);
}

// -------- cancel ----------------------------------------------------------

TEST(CharlotteKernel, CancelReceiveBeforeArrivalSucceeds) {
  World w;
  Pid pa = w.cluster.create_process(NodeId(0));
  Pid pb = w.cluster.create_process(NodeId(1));
  LinkPair pair = Bootstrap::link_between(w.cluster, pa, pb);
  std::vector<Status> sts;
  auto prog = [](Cluster* cl, Pid pid, EndId end,
                 std::vector<Status>* out) -> sim::Task<> {
    Kernel& k = cl->kernel_of(pid);
    out->push_back(co_await k.receive(pid, end, 100));
    out->push_back(co_await k.cancel(pid, end, Direction::kReceive));
    out->push_back(co_await k.cancel(pid, end, Direction::kReceive));
  };
  w.engine.spawn("p", prog(&w.cluster, pb, pair.end2, &sts));
  w.engine.run();
  ASSERT_EQ(sts.size(), 3u);
  EXPECT_EQ(sts[0], Status::kOk);
  EXPECT_EQ(sts[1], Status::kOk);          // cancel succeeded
  EXPECT_EQ(sts[2], Status::kNoActivity);  // nothing left to cancel
}

sim::Task<> recv_then_late_cancel(Cluster* cl, Pid pid, EndId end,
                                  std::vector<std::string>* log) {
  Kernel& k = cl->kernel_of(pid);
  CO_CHECK_EQ(co_await k.receive(pid, end, 100), Status::kOk);
  // Busy-wait (in simulated time) until the message has landed, then try
  // to cancel: the paper's §3.2.1 "Cancel will fail" scenario.
  while (!k.completion_ready(pid)) {
    co_await cl->engine().sleep(sim::msec(5));
  }
  Status st = co_await k.cancel(pid, end, Direction::kReceive);
  log->push_back(std::string("cancel:") + to_string(st));
  Completion c = co_await k.wait(pid);
  log->push_back("got:" + text(c.data));
}

TEST(CharlotteKernel, CancelReceiveAfterArrivalFails) {
  World w;
  Pid pa = w.cluster.create_process(NodeId(0));
  Pid pb = w.cluster.create_process(NodeId(1));
  LinkPair pair = Bootstrap::link_between(w.cluster, pa, pb);
  std::vector<std::string> recv_log;
  std::vector<std::string> send_log;
  w.engine.spawn("recv",
                 recv_then_late_cancel(&w.cluster, pb, pair.end2, &recv_log));
  w.engine.spawn("send",
                 sender_prog(&w.cluster, pa, pair.end1, "surprise", &send_log));
  w.engine.run();
  ASSERT_EQ(recv_log.size(), 2u);
  EXPECT_EQ(recv_log[0], "cancel:cancel-too-late");
  EXPECT_EQ(recv_log[1], "got:surprise");
  ASSERT_EQ(send_log.size(), 1u);
  EXPECT_EQ(send_log[0], "sent:8");
}

TEST(CharlotteKernel, CancelSendBeforeDeliverySucceeds) {
  World w;
  Pid pa = w.cluster.create_process(NodeId(0));
  Pid pb = w.cluster.create_process(NodeId(1));
  LinkPair pair = Bootstrap::link_between(w.cluster, pa, pb);
  std::vector<std::string> log;
  auto prog = [](Cluster* cl, Pid pid, EndId end,
                 std::vector<std::string>* lg) -> sim::Task<> {
    Kernel& k = cl->kernel_of(pid);
    CO_CHECK_EQ(co_await k.send(pid, end, bytes("doomed")), Status::kOk);
    CO_CHECK_EQ(co_await k.cancel(pid, end, Direction::kSend), Status::kOk);
    Completion c = co_await k.wait(pid);
    lg->push_back(std::string("send-outcome:") + to_string(c.status));
  };
  // No receiver is ever posted, so the cancel always wins.
  w.engine.spawn("p", prog(&w.cluster, pa, pair.end1, &log));
  w.engine.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "send-outcome:cancelled");
}

// -------- enclosures (moving link ends) -----------------------------------

// A creates a data link D (two ends) and ships end2 of D to B over the
// transfer link T.  Then A and B exchange a message over D to prove the
// moved end works.
sim::Task<> enclosure_sender(Cluster* cl, Pid pid, EndId tend, EndId keep,
                             EndId give, std::vector<std::string>* log) {
  Kernel& k = cl->kernel_of(pid);
  CO_CHECK_EQ(co_await k.send(pid, tend, bytes("take-this"), give), Status::kOk);
  Completion c = co_await k.wait(pid);
  CO_CHECK_EQ(c.status, Status::kOk);
  log->push_back("moved");
  // now talk over the data link
  CO_CHECK_EQ(co_await k.send(pid, keep, bytes("over-moved-link")), Status::kOk);
  c = co_await k.wait(pid);
  CO_CHECK_EQ(c.status, Status::kOk);
  log->push_back("spoke");
}

sim::Task<> enclosure_receiver(Cluster* cl, Pid pid, EndId tend,
                               std::vector<std::string>* log) {
  Kernel& k = cl->kernel_of(pid);
  CO_CHECK_EQ(co_await k.receive(pid, tend, 100), Status::kOk);
  Completion c = co_await k.wait(pid);
  CO_CHECK_EQ(c.status, Status::kOk);
  CO_CHECK(c.enclosure.valid());
  log->push_back("received-end");
  EndId mine = c.enclosure;
  CO_CHECK_EQ(co_await k.receive(pid, mine, 100), Status::kOk);
  c = co_await k.wait(pid);
  CO_CHECK_EQ(c.status, Status::kOk);
  log->push_back("heard:" + text(c.data));
}

TEST(CharlotteKernel, EnclosureMovesEndAcrossNodes) {
  World w;
  Pid pa = w.cluster.create_process(NodeId(0));
  Pid pb = w.cluster.create_process(NodeId(2));
  LinkPair t = Bootstrap::link_between(w.cluster, pa, pb);

  // A makes the data link entirely inside itself.
  LinkPair d;
  w.engine.spawn("mk", make_link_prog(&w.cluster, pa, &d));
  w.engine.run();

  std::vector<std::string> log;
  w.engine.spawn("recv", enclosure_receiver(&w.cluster, pb, t.end2, &log));
  w.engine.spawn("send", enclosure_sender(&w.cluster, pa, t.end1, d.end1,
                                          d.end2, &log));
  w.engine.run();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0], "received-end");
  EXPECT_EQ(log[1], "moved");
  EXPECT_EQ(log[2], "heard:over-moved-link");
  EXPECT_EQ(log[3], "spoke");
  EXPECT_TRUE(w.engine.process_failures().empty());
  EXPECT_GT(w.cluster.total_move_frames(), 0u);
}

TEST(CharlotteKernel, CannotEncloseCarrierOrPeer) {
  World w;
  Pid pa = w.cluster.create_process(NodeId(0));
  LinkPair d;
  w.engine.spawn("mk", make_link_prog(&w.cluster, pa, &d));
  w.engine.run();
  std::vector<Status> sts;
  auto prog = [](Cluster* cl, Pid pid, EndId end, EndId enc,
                 std::vector<Status>* out) -> sim::Task<> {
    out->push_back(co_await cl->kernel_of(pid).send(pid, end, {}, enc));
  };
  w.engine.spawn("p1", prog(&w.cluster, pa, d.end1, d.end1, &sts));
  w.engine.spawn("p2", prog(&w.cluster, pa, d.end1, d.end2, &sts));
  w.engine.run();
  ASSERT_EQ(sts.size(), 2u);
  EXPECT_EQ(sts[0], Status::kBadEnclosure);
  EXPECT_EQ(sts[1], Status::kBadEnclosure);
}

// -------- destroy & termination -------------------------------------------

sim::Task<> blocked_receiver(Cluster* cl, Pid pid, EndId end,
                             std::vector<std::string>* log) {
  Kernel& k = cl->kernel_of(pid);
  CO_CHECK_EQ(co_await k.receive(pid, end, 100), Status::kOk);
  Completion c = co_await k.wait(pid);
  log->push_back(std::string("recv-outcome:") + to_string(c.status));
}

sim::Task<> destroyer(Cluster* cl, Pid pid, EndId end) {
  co_await cl->engine().sleep(sim::msec(20));
  Status st = co_await cl->kernel_of(pid).destroy(pid, end);
  CO_CHECK_EQ(st, Status::kOk);
}

TEST(CharlotteKernel, DestroyFailsPeersBlockedReceive) {
  World w;
  Pid pa = w.cluster.create_process(NodeId(0));
  Pid pb = w.cluster.create_process(NodeId(1));
  LinkPair pair = Bootstrap::link_between(w.cluster, pa, pb);
  std::vector<std::string> log;
  w.engine.spawn("recv", blocked_receiver(&w.cluster, pb, pair.end2, &log));
  w.engine.spawn("destroy", destroyer(&w.cluster, pa, pair.end1));
  w.engine.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "recv-outcome:link-destroyed");
}

TEST(CharlotteKernel, SendOnDestroyedLinkFails) {
  World w;
  Pid pa = w.cluster.create_process(NodeId(0));
  Pid pb = w.cluster.create_process(NodeId(1));
  LinkPair pair = Bootstrap::link_between(w.cluster, pa, pb);
  std::vector<std::string> log;
  auto prog = [](Cluster* cl, Pid pid, EndId end,
                 std::vector<std::string>* lg) -> sim::Task<> {
    Kernel& k = cl->kernel_of(pid);
    // wait for the destroy to propagate
    co_await cl->engine().sleep(sim::msec(100));
    Status st = co_await k.send(pid, end, bytes("x"));
    if (st == Status::kOk) {
      Completion c = co_await k.wait(pid);
      st = c.status;
    }
    lg->push_back(std::string("send:") + to_string(st));
  };
  w.engine.spawn("destroy", destroyer(&w.cluster, pa, pair.end1));
  w.engine.spawn("send", prog(&w.cluster, pb, pair.end2, &log));
  w.engine.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "send:link-destroyed");
}

TEST(CharlotteKernel, ProcessTerminationDestroysItsLinks) {
  World w;
  Pid pa = w.cluster.create_process(NodeId(0));
  Pid pb = w.cluster.create_process(NodeId(1));
  LinkPair pair = Bootstrap::link_between(w.cluster, pa, pb);
  std::vector<std::string> log;
  w.engine.spawn("recv", blocked_receiver(&w.cluster, pb, pair.end2, &log));
  w.engine.schedule(sim::msec(30), [&] { w.cluster.terminate(pa); });
  w.engine.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "recv-outcome:link-destroyed");
  EXPECT_FALSE(w.cluster.kernel_of(pa).process_alive(pa));
}

// -------- figure 1: both ends moved simultaneously ------------------------

// Processes A and D hold link 3.  A passes its end to B while D passes
// its end to C, concurrently.  Afterwards B->C must still work.
sim::Task<> fig1_mover(Cluster* cl, Pid pid, EndId via, EndId moving) {
  Kernel& k = cl->kernel_of(pid);
  CO_CHECK_EQ(co_await k.send(pid, via, bytes("end"), moving), Status::kOk);
  Completion c = co_await k.wait(pid);
  CO_CHECK_EQ(c.status, Status::kOk);
}

sim::Task<> fig1_taker_speaker(Cluster* cl, Pid pid, EndId via,
                               std::vector<std::string>* log) {
  Kernel& k = cl->kernel_of(pid);
  CO_CHECK_EQ(co_await k.receive(pid, via, 100), Status::kOk);
  Completion c = co_await k.wait(pid);
  CO_CHECK_EQ(c.status, Status::kOk);
  CO_CHECK(c.enclosure.valid());
  EndId mine = c.enclosure;
  CO_CHECK_EQ(co_await k.send(pid, mine, bytes("across-link3")), Status::kOk);
  c = co_await k.wait(pid);
  log->push_back(std::string("b-send:") + to_string(c.status));
}

sim::Task<> fig1_taker_listener(Cluster* cl, Pid pid, EndId via,
                                std::vector<std::string>* log) {
  Kernel& k = cl->kernel_of(pid);
  CO_CHECK_EQ(co_await k.receive(pid, via, 100), Status::kOk);
  Completion c = co_await k.wait(pid);
  CO_CHECK_EQ(c.status, Status::kOk);
  CO_CHECK(c.enclosure.valid());
  EndId mine = c.enclosure;
  CO_CHECK_EQ(co_await k.receive(pid, mine, 100), Status::kOk);
  c = co_await k.wait(pid);
  CO_CHECK_EQ(c.status, Status::kOk);
  log->push_back("c-heard:" + text(c.data));
}

TEST(CharlotteKernel, Figure1SimultaneousMoveOfBothEnds) {
  World w;
  Pid a = w.cluster.create_process(NodeId(0));
  Pid b = w.cluster.create_process(NodeId(1));
  Pid c = w.cluster.create_process(NodeId(2));
  Pid d = w.cluster.create_process(NodeId(3));
  LinkPair ab = Bootstrap::link_between(w.cluster, a, b);  // link 1
  LinkPair dc = Bootstrap::link_between(w.cluster, d, c);  // link 2
  // link 3 starts as A<->D: make in A, transplant one end to D.
  LinkPair l3 = Bootstrap::link_between(w.cluster, a, d);

  std::vector<std::string> log;
  w.engine.spawn("A", fig1_mover(&w.cluster, a, ab.end1, l3.end1));
  w.engine.spawn("D", fig1_mover(&w.cluster, d, dc.end1, l3.end2));
  w.engine.spawn("B", fig1_taker_speaker(&w.cluster, b, ab.end2, &log));
  w.engine.spawn("C", fig1_taker_listener(&w.cluster, c, dc.end2, &log));
  w.engine.run();
  ASSERT_EQ(log.size(), 2u) << "B and C must both finish";
  EXPECT_EQ(log[0], "c-heard:across-link3");
  EXPECT_EQ(log[1], "b-send:ok");
  EXPECT_TRUE(w.engine.process_failures().empty());
}

// -------- determinism ------------------------------------------------------

TEST(CharlotteKernel, RunsAreDeterministic) {
  auto run = [] {
    World w;
    Pid pa = w.cluster.create_process(NodeId(0));
    Pid pb = w.cluster.create_process(NodeId(1));
    LinkPair pair = Bootstrap::link_between(w.cluster, pa, pb);
    std::vector<std::string> log;
    w.engine.spawn("recv", receiver_prog(&w.cluster, pb, pair.end2, &log));
    w.engine.spawn("send",
                   sender_prog(&w.cluster, pa, pair.end1, "det", &log));
    w.engine.run();
    return std::pair(w.engine.now(), log);
  };
  auto r1 = run();
  auto r2 = run();
  EXPECT_EQ(r1.first, r2.first);
  EXPECT_EQ(r1.second, r2.second);
}

}  // namespace
}  // namespace charlotte
