// Kernel-level edge cases around moving Charlotte link ends: stale
// senders chasing a moved end (MsgNackMoved retransmission), serial
// move chains, and cancel racing delivery.
#include "charlotte/kernel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "../support/co_check.hpp"
#include "sim/engine.hpp"

namespace charlotte {
namespace {

using net::NodeId;

Payload bytes(std::string s) { return Payload(s.begin(), s.end()); }
std::string text(const Payload& p) { return std::string(p.begin(), p.end()); }

struct World {
  sim::Engine engine;
  Cluster cluster{engine, 6};
};

// A chain: the end hops P0 -> P1 -> ... -> Pn while the fixed-end
// holder stays put; then the fixed end sends and the kernel must chase
// the current location through NACKs / home updates.
sim::Task<> chain_hop(Cluster* cl, Pid from, Pid to, EndId via_end,
                      EndId moving) {
  Kernel& k = cl->kernel_of(from);
  CO_CHECK_EQ(co_await k.send(from, via_end, bytes("hop"), moving),
              Status::kOk);
  Completion c = co_await k.wait(from);
  CO_CHECK_EQ(c.status, Status::kOk);
  (void)to;
}

sim::Task<> chain_recv_end(Cluster* cl, Pid me, EndId via, EndId* out) {
  Kernel& k = cl->kernel_of(me);
  CO_CHECK_EQ(co_await k.receive(me, via, 100), Status::kOk);
  Completion c = co_await k.wait(me);
  CO_CHECK_EQ(c.status, Status::kOk);
  CO_CHECK(c.enclosure.valid());
  *out = c.enclosure;
}

TEST(CharlotteMoveChase, FixedEndReachesEndAfterSerialHops) {
  World w;
  // P0..P3 in a chain; F is the fixed-end holder.
  std::vector<Pid> p;
  for (int i = 0; i < 4; ++i) {
    p.push_back(w.cluster.create_process(NodeId(static_cast<std::uint32_t>(i))));
  }
  Pid f = w.cluster.create_process(NodeId(4));

  // transfer links p[i] <-> p[i+1]
  std::vector<LinkPair> xfer;
  for (int i = 0; i < 3; ++i) {
    xfer.push_back(w.cluster.bootstrap_link(p[static_cast<std::size_t>(i)],
                                            p[static_cast<std::size_t>(i) + 1]));
  }
  // the mobile link: F <-> p0
  LinkPair mobile = w.cluster.bootstrap_link(f, p[0]);

  // hop the end down the chain
  std::vector<EndId> got(3);
  w.engine.spawn("h0", chain_hop(&w.cluster, p[0], p[1], xfer[0].end1,
                                 mobile.end2));
  w.engine.spawn("r0", chain_recv_end(&w.cluster, p[1], xfer[0].end2,
                                      &got[0]));
  w.engine.run();
  w.engine.spawn("h1",
                 chain_hop(&w.cluster, p[1], p[2], xfer[1].end1, got[0]));
  w.engine.spawn("r1", chain_recv_end(&w.cluster, p[2], xfer[1].end2,
                                      &got[1]));
  w.engine.run();
  w.engine.spawn("h2",
                 chain_hop(&w.cluster, p[2], p[3], xfer[2].end1, got[1]));
  w.engine.spawn("r2", chain_recv_end(&w.cluster, p[3], xfer[2].end2,
                                      &got[2]));
  w.engine.run();

  // now F (whose peer_node was updated by the home on every hop, or is
  // stale if notifications raced) sends on the mobile link
  std::vector<std::string> log;
  w.engine.spawn("send", [](Cluster* cl, Pid me, EndId end,
                            std::vector<std::string>* lg) -> sim::Task<> {
    Kernel& k = cl->kernel_of(me);
    CO_CHECK_EQ(co_await k.send(me, end, bytes("find-me")), Status::kOk);
    Completion c = co_await k.wait(me);
    lg->push_back(std::string("send:") + to_string(c.status));
  }(&w.cluster, f, mobile.end1, &log));
  w.engine.spawn("recv", [](Cluster* cl, Pid me, EndId end,
                            std::vector<std::string>* lg) -> sim::Task<> {
    Kernel& k = cl->kernel_of(me);
    CO_CHECK_EQ(co_await k.receive(me, end, 100), Status::kOk);
    Completion c = co_await k.wait(me);
    lg->push_back("got:" + text(c.data));
  }(&w.cluster, p[3], got[2], &log));
  w.engine.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "got:find-me");
  EXPECT_EQ(log[1], "send:ok");
  EXPECT_TRUE(w.engine.process_failures().empty());
}

TEST(CharlotteMoveChase, SendRacingMoveIsRetransmitted) {
  // F sends to the mobile end WHILE it is being moved from A to B: the
  // message may land at A after the end left and must be NACKed to the
  // new location.
  World w;
  Pid a = w.cluster.create_process(NodeId(0));
  Pid b = w.cluster.create_process(NodeId(1));
  Pid f = w.cluster.create_process(NodeId(2));
  LinkPair xfer = w.cluster.bootstrap_link(a, b);
  LinkPair mobile = w.cluster.bootstrap_link(f, a);

  std::vector<std::string> log;
  // A ships the end to B.
  w.engine.spawn("ship",
                 chain_hop(&w.cluster, a, b, xfer.end1, mobile.end2));
  EndId at_b;
  w.engine.spawn("take", chain_recv_end(&w.cluster, b, xfer.end2, &at_b));
  // F fires immediately — racing the move.
  w.engine.spawn("race", [](Cluster* cl, Pid me, EndId end,
                            std::vector<std::string>* lg) -> sim::Task<> {
    Kernel& k = cl->kernel_of(me);
    CO_CHECK_EQ(co_await k.send(me, end, bytes("racer")), Status::kOk);
    Completion c = co_await k.wait(me);
    lg->push_back(std::string("send:") + to_string(c.status));
  }(&w.cluster, f, mobile.end1, &log));
  w.engine.run();
  ASSERT_TRUE(at_b.valid());

  // B eventually receives the racer on the moved end.
  w.engine.spawn("recv", [](Cluster* cl, Pid me, EndId end,
                            std::vector<std::string>* lg) -> sim::Task<> {
    Kernel& k = cl->kernel_of(me);
    CO_CHECK_EQ(co_await k.receive(me, end, 100), Status::kOk);
    Completion c = co_await k.wait(me);
    lg->push_back("got:" + text(c.data));
  }(&w.cluster, b, at_b, &log));
  w.engine.run();
  ASSERT_EQ(log.size(), 2u);
  // completion order depends on whether the racer landed before or
  // after the hop; both entries must be present either way
  std::sort(log.begin(), log.end());
  EXPECT_EQ(log[0], "got:racer");
  EXPECT_EQ(log[1], "send:ok");
  EXPECT_TRUE(w.engine.process_failures().empty());
}

TEST(CharlotteMoveChase, CancelLosesWhenReceiverAlreadyGotIt) {
  World w;
  Pid a = w.cluster.create_process(NodeId(0));
  Pid b = w.cluster.create_process(NodeId(1));
  LinkPair pair = w.cluster.bootstrap_link(a, b);
  std::vector<std::string> log;
  // B posts the receive first, so delivery happens promptly; A's cancel
  // must lose the race and the send completes Ok.
  w.engine.spawn("recv", [](Cluster* cl, Pid me, EndId end,
                            std::vector<std::string>* lg) -> sim::Task<> {
    Kernel& k = cl->kernel_of(me);
    CO_CHECK_EQ(co_await k.receive(me, end, 100), Status::kOk);
    Completion c = co_await k.wait(me);
    lg->push_back("got:" + text(c.data));
  }(&w.cluster, b, pair.end2, &log));
  w.engine.spawn("send", [](Cluster* cl, Pid me, EndId end,
                            std::vector<std::string>* lg) -> sim::Task<> {
    Kernel& k = cl->kernel_of(me);
    CO_CHECK_EQ(co_await k.send(me, end, bytes("fast")), Status::kOk);
    // wait long enough for the delivery to complete, then cancel
    co_await cl->engine().sleep(sim::msec(200));
    Status st = co_await k.cancel(me, end, Direction::kSend);
    lg->push_back(std::string("cancel:") + to_string(st));
    Completion c = co_await k.wait(me);
    lg->push_back(std::string("send:") + to_string(c.status));
  }(&w.cluster, a, pair.end1, &log));
  w.engine.run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], "got:fast");
  // the activity already completed, so there is nothing left to cancel
  EXPECT_EQ(log[1], "cancel:no-activity");
  EXPECT_EQ(log[2], "send:ok");
}

}  // namespace
}  // namespace charlotte
