// The reference model itself: clean runs on every substrate must
// conform, and each conformance rule must actually fire when fed a
// stream that violates it.  Synthetic streams are emitted straight into
// a Recorder — the model only sees records, so the test can forge any
// interleaving the kernels could (or must never) produce.
#include <gtest/gtest.h>

#include <string>

#include "check/explorer.hpp"
#include "check/reference_model.hpp"
#include "sim/engine.hpp"
#include "trace/trace.hpp"

namespace check {
namespace {

TEST(Conformance, CleanRunsConformOnAllSubstrates) {
  for (load::Substrate substrate : load::all_substrates()) {
    RunConfig cfg;
    cfg.substrate = substrate;
    const RunVerdict v = run_one(cfg);
    EXPECT_TRUE(v.ok) << load::to_string(substrate) << ": " << v.failure;
    EXPECT_EQ(v.calls_checked, 8u) << load::to_string(substrate);
    EXPECT_GT(v.records, 0u) << load::to_string(substrate);
  }
}

TEST(Conformance, CleanRunsConformUnderAckStormPlan) {
  // Loss the kernels are built to recover from must not register as a
  // divergence: retransmit + dedup + re-ack converge to the same
  // conforming stream.
  for (load::Substrate substrate :
       {load::Substrate::kCharlotte, load::Substrate::kSoda}) {
    RunConfig cfg;
    cfg.substrate = substrate;
    cfg.plan = PlanSpec::kAckStorm;
    const RunVerdict v = run_one(cfg);
    EXPECT_TRUE(v.ok) << load::to_string(substrate) << ": " << v.failure;
    EXPECT_EQ(v.calls_checked, 8u) << load::to_string(substrate);
  }
}

// ---- synthetic streams: one per rule ---------------------------------

// Emits the full conforming skeleton of one RPC on `trace`; the
// violating tests perturb it.
struct Script {
  sim::Engine engine;
  trace::Recorder rec{engine};

  trace::SpanId begin(const char* label, std::uint64_t trace) {
    return rec.begin_span(0, "runtime", label, trace);
  }
  void end(trace::SpanId s) { rec.end_span(0, s); }
  void instant(const char* label, std::uint64_t trace, std::uint64_t a = 0) {
    rec.instant(0, "runtime", label, trace, a);
  }

  void conforming_rpc(std::uint64_t trace) {
    const auto call = begin("call", trace);
    const auto gather = begin("call.gather", trace);
    end(gather);
    const auto send = begin("call.send", trace);
    end(send);
    const auto wait = begin("call.wait", trace);
    const auto served = begin("recv.scatter", trace);
    end(served);
    const auto rgather = begin("reply.gather", trace);
    end(rgather);
    const auto rsend = begin("reply.send", trace);
    end(rsend);
    end(wait);
    const auto scatter = begin("call.scatter", trace);
    end(scatter);
    end(call);
  }
};

std::string rule_of(const ReferenceModel& m) {
  return m.divergence().has_value() ? m.divergence()->rule : "";
}

TEST(Conformance, ConformingScriptPasses) {
  Script s;
  s.conforming_rpc(1);
  s.conforming_rpc(2);
  ReferenceModel m;
  EXPECT_TRUE(m.replay(s.rec));
  EXPECT_EQ(m.calls_checked(), 2u);
}

TEST(Conformance, DoubleDeliveryIsCaught) {
  // The exact semantic the dedup / re-ack machinery protects: one
  // request serviced twice.
  Script s;
  const auto call = s.begin("call", 1);
  s.end(s.begin("call.gather", 1));
  s.end(s.begin("call.send", 1));
  const auto wait = s.begin("call.wait", 1);
  s.end(s.begin("recv.scatter", 1));
  s.end(s.begin("recv.scatter", 1));  // duplicate delivery
  ReferenceModel m;
  EXPECT_FALSE(m.replay(s.rec));
  EXPECT_EQ(rule_of(m), "single-delivery");
  EXPECT_FALSE(m.divergence()->context.empty());
  (void)call;
  (void)wait;
}

TEST(Conformance, ServiceWithoutRequestIsCaught) {
  Script s;
  s.end(s.begin("recv.scatter", 7));
  ReferenceModel m;
  EXPECT_FALSE(m.replay(s.rec));
  EXPECT_EQ(rule_of(m), "service-after-send");
}

TEST(Conformance, ReplyWithoutServiceIsCaught) {
  Script s;
  const auto call = s.begin("call", 1);
  s.end(s.begin("call.gather", 1));
  s.end(s.begin("call.send", 1));
  s.end(s.begin("reply.send", 1));  // never serviced
  ReferenceModel m;
  EXPECT_FALSE(m.replay(s.rec));
  EXPECT_EQ(rule_of(m), "reply-after-serve");
  (void)call;
}

TEST(Conformance, SecondReplyIsCaught) {
  Script s;
  const auto call = s.begin("call", 1);
  s.end(s.begin("call.gather", 1));
  s.end(s.begin("call.send", 1));
  s.end(s.begin("recv.scatter", 1));
  s.end(s.begin("reply.send", 1));
  s.end(s.begin("reply.send", 1));  // answered twice
  ReferenceModel m;
  EXPECT_FALSE(m.replay(s.rec));
  EXPECT_EQ(rule_of(m), "reply-after-serve");
  (void)call;
}

TEST(Conformance, ScatterOfUnsentReplyIsCaught) {
  Script s;
  const auto call = s.begin("call", 1);
  s.end(s.begin("call.gather", 1));
  s.end(s.begin("call.send", 1));
  const auto wait = s.begin("call.wait", 1);
  s.end(wait);
  s.end(s.begin("call.scatter", 1));  // no server-side reply exists
  ReferenceModel m;
  EXPECT_FALSE(m.replay(s.rec));
  EXPECT_EQ(rule_of(m), "reply-consumption");
  (void)call;
}

TEST(Conformance, PhaseOrderIsEnforced) {
  Script s;
  const auto call = s.begin("call", 1);
  s.end(s.begin("call.send", 1));  // send before gather
  ReferenceModel m;
  EXPECT_FALSE(m.replay(s.rec));
  EXPECT_EQ(rule_of(m), "phase-order");
  (void)call;
}

TEST(Conformance, DisallowedErrorKindIsCaught) {
  Script s;
  const auto call = s.begin("call", 1);
  s.instant("rpc.error", 1,
            static_cast<std::uint64_t>(lynx::ErrorKind::kLinkDestroyed));
  s.end(call);
  ReferenceModel m;
  EXPECT_FALSE(m.replay(s.rec));
  EXPECT_EQ(rule_of(m), "error-surface");
}

TEST(Conformance, AllowedErrorKindPasses) {
  Script s;
  const auto call = s.begin("call", 1);
  s.instant("rpc.error", 1,
            static_cast<std::uint64_t>(lynx::ErrorKind::kLinkDestroyed));
  s.end(call);
  Expectation exp;
  exp.allowed_errors = {lynx::ErrorKind::kLinkDestroyed};
  ReferenceModel m(exp);
  EXPECT_TRUE(m.replay(s.rec)) << m.divergence()->render();
}

TEST(Conformance, UnexpectedScreeningRejectIsCaught) {
  Script s;
  s.instant("req.reject", 3);
  ReferenceModel m;
  EXPECT_FALSE(m.replay(s.rec));
  EXPECT_EQ(rule_of(m), "screening");

  Expectation exp;
  exp.allow_rejects = true;
  ReferenceModel permissive(exp);
  EXPECT_TRUE(permissive.replay(s.rec));
}

TEST(Conformance, TraceZeroErrorIsCaught) {
  // An error raised outside any call's causal chain (e.g. "call on
  // destroyed link" thrown before a trace is allocated) still lands on
  // the runtime track, as a trace-0 instant — R8 must see it.  This is
  // exactly how the planted re-ack bug's second-order damage surfaces.
  Script s;
  s.conforming_rpc(1);
  s.instant("rpc.error", 0,
            static_cast<std::uint64_t>(lynx::ErrorKind::kLinkDestroyed));
  ReferenceModel m;
  EXPECT_FALSE(m.replay(s.rec));
  EXPECT_EQ(rule_of(m), "error-surface");
  EXPECT_EQ(m.divergence()->trace, 0u);
}

TEST(Conformance, LinkDeathIsAllowedByDefaultAndOptOutCatchesIt) {
  // Orderly termination destroys links (§2.1), so a death notice after
  // a completed exchange is normal teardown...
  Script s;
  s.conforming_rpc(1);
  s.instant("link.dead", 0, 1);
  ReferenceModel m;
  EXPECT_TRUE(m.replay(s.rec));

  // ...but a scenario that keeps every process alive can forbid it.
  Expectation strict;
  strict.allow_link_death = false;
  ReferenceModel pinned(strict);
  EXPECT_FALSE(pinned.replay(s.rec));
  EXPECT_EQ(pinned.divergence()->rule, "link-death");
}

TEST(Conformance, SilentlyDroppedCallIsCaught) {
  // A call whose span closes cleanly but that was never served: the
  // "kernel lost the request and nobody noticed" shape.
  Script s;
  const auto call = s.begin("call", 1);
  s.end(s.begin("call.gather", 1));
  s.end(s.begin("call.send", 1));
  const auto wait = s.begin("call.wait", 1);
  s.end(wait);
  s.end(call);
  ReferenceModel m;
  EXPECT_FALSE(m.replay(s.rec));
  EXPECT_EQ(rule_of(m), "completion");
}

TEST(Conformance, InFlightCallAtEndOfRunIsCaught) {
  Script s;
  const auto call = s.begin("call", 1);
  s.end(s.begin("call.gather", 1));
  (void)call;  // never closed
  ReferenceModel m;
  EXPECT_FALSE(m.replay(s.rec));
  EXPECT_EQ(rule_of(m), "incomplete-call");

  Expectation exp;
  exp.require_completion = false;
  ReferenceModel lax(exp);
  EXPECT_TRUE(lax.replay(s.rec));
}

TEST(Conformance, RingOverflowIsItselfADivergence) {
  sim::Engine e;
  trace::Recorder rec(e, 4);  // tiny ring: guaranteed to wrap
  for (int i = 0; i < 64; ++i) rec.instant(0, "runtime", "rpc.error", 1, 0);
  ReferenceModel m;
  EXPECT_FALSE(m.replay(rec));
  EXPECT_EQ(m.divergence()->rule, "ring-overflow");
}

TEST(Conformance, DivergenceRenderCarriesCausalContext) {
  Script s;
  s.conforming_rpc(1);
  const auto call = s.begin("call", 2);
  s.end(s.begin("call.gather", 2));
  s.end(s.begin("call.send", 2));
  s.end(s.begin("recv.scatter", 2));
  s.end(s.begin("recv.scatter", 2));
  (void)call;
  ReferenceModel m;
  ASSERT_FALSE(m.replay(s.rec));
  const Divergence& d = *m.divergence();
  EXPECT_EQ(d.trace, 2u);
  // Context holds only trace-2 history: the begin/end chatter of the
  // healthy trace 1 must not drown the story.
  ASSERT_GE(d.context.size(), 4u);
  const std::string text = d.render();
  EXPECT_NE(text.find("single-delivery"), std::string::npos);
  EXPECT_NE(text.find("recv.scatter"), std::string::npos);
}

}  // namespace
}  // namespace check
