// The explorer driver: seeded interleavings really change the schedule
// (digests move) without changing semantics (every run conforms), the
// planted Charlotte re-ack bug is caught and shrunk, and repro tokens
// round-trip to the exact failing universe.
#include <gtest/gtest.h>

#include <set>

#include "check/explorer.hpp"

namespace check {
namespace {

TEST(Explorer, RunsAreDeterministic) {
  for (sim::TieBreak tie :
       {sim::TieBreak::kFifo, sim::TieBreak::kSeededPermutation}) {
    RunConfig cfg;
    cfg.tie = tie;
    cfg.seed = 7;
    const RunVerdict a = run_one(cfg);
    const RunVerdict b = run_one(cfg);
    EXPECT_TRUE(a.ok) << a.failure;
    EXPECT_EQ(a.trace_digest, b.trace_digest) << sim::to_string(tie);
    EXPECT_EQ(a.records, b.records) << sim::to_string(tie);
  }
}

TEST(Explorer, SeededPermutationExploresDistinctSchedules) {
  // Different seeds must actually select different interleavings —
  // otherwise the sweep is a single run in disguise.  All of them must
  // still conform: tie-break order is not allowed to change semantics.
  std::set<std::uint64_t> digests;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RunConfig cfg;
    cfg.tie = sim::TieBreak::kSeededPermutation;
    cfg.seed = seed;
    const RunVerdict v = run_one(cfg);
    ASSERT_TRUE(v.ok) << "seed " << seed << ": " << v.failure;
    digests.insert(v.trace_digest);
  }
  EXPECT_GT(digests.size(), 5u);
}

TEST(Explorer, FifoSeedsShareOneScheduleOnCleanCharlotte) {
  // Control for the test above: under FIFO with no fault plan the seed
  // feeds nothing (token ring and workload are deterministic), so every
  // seed replays the identical stream.
  std::set<std::uint64_t> digests;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    RunConfig cfg;
    cfg.seed = seed;
    const RunVerdict v = run_one(cfg);
    ASSERT_TRUE(v.ok) << v.failure;
    digests.insert(v.trace_digest);
  }
  EXPECT_EQ(digests.size(), 1u);
}

TEST(Explorer, PlantedReackBugIsCaught) {
  RunConfig cfg;
  cfg.plan = PlanSpec::kAckStorm;
  cfg.inject_reack_bug = true;
  const RunVerdict v = run_one(cfg);
  ASSERT_FALSE(v.ok);
  ASSERT_TRUE(v.divergence.has_value()) << v.failure;
  // The bug surfaces as a spurious link failure on a call whose request
  // (and usually reply) actually got through.
  EXPECT_EQ(v.divergence->rule, "error-surface");
  EXPECT_FALSE(v.divergence->context.empty());
}

TEST(Explorer, PlantedBugShrinksToScheduleIndependence) {
  // The re-ack bug is semantic, not schedule-sensitive: shrinking must
  // drive the permuted prefix all the way to zero, and the shrunk
  // config must still fail.
  RunConfig cfg;
  cfg.tie = sim::TieBreak::kSeededPermutation;
  cfg.seed = 3;
  cfg.plan = PlanSpec::kAckStorm;
  cfg.inject_reack_bug = true;
  ASSERT_FALSE(run_one(cfg).ok);
  std::uint64_t probes = 0;
  const RunConfig min = shrink(cfg, &probes);
  EXPECT_EQ(min.horizon, 0u);
  EXPECT_GE(probes, 1u);
  EXPECT_FALSE(run_one(min).ok);
}

TEST(Explorer, StormPlansDeterministicOnSodaV2Wire) {
  // The SODA universe now runs the v2 cumulative-ack wire (watermarks,
  // piggybacked acks, adaptive RTO, frontier repair).  Under the full
  // drop plans — ack-storm (server->client dark for 250 ms) and
  // batch-storm (both directions dark, formation on) — with seeded
  // schedule permutation on top, every universe must conform and digest
  // bit-identically run over run, and distinct seeds must explore
  // distinct schedules.
  for (PlanSpec plan : {PlanSpec::kAckStorm, PlanSpec::kBatchStorm}) {
    std::set<std::uint64_t> digests;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      RunConfig cfg;
      cfg.substrate = load::Substrate::kSoda;
      cfg.tie = sim::TieBreak::kSeededPermutation;
      cfg.seed = seed;
      cfg.plan = plan;
      const RunVerdict a = run_one(cfg);
      const RunVerdict b = run_one(cfg);
      ASSERT_TRUE(a.ok) << to_string(plan) << " seed " << seed << ": "
                        << a.failure;
      ASSERT_EQ(a.trace_digest, b.trace_digest)
          << to_string(plan) << " seed " << seed;
      ASSERT_EQ(a.records, b.records) << to_string(plan) << " seed " << seed;
      digests.insert(a.trace_digest);
    }
    EXPECT_GT(digests.size(), 5u) << to_string(plan);
  }
}

TEST(Explorer, ChrysalisBackendV2Deterministic) {
  // No medium to impair on the Butterfly, so the Chrysalis "new wire"
  // (batched drains, cheap-flag fast path, consumed-notice coalescing)
  // is explored through schedule permutation alone — with notice
  // formation armed so the enqueue_many batching timers are in play
  // too.  Conform + bit-identical digests, per seed, run over run.
  std::set<std::uint64_t> digests;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RunConfig cfg;
    cfg.substrate = load::Substrate::kChrysalis;
    cfg.tie = sim::TieBreak::kSeededPermutation;
    cfg.seed = seed;
    cfg.formation = true;
    const RunVerdict a = run_one(cfg);
    const RunVerdict b = run_one(cfg);
    ASSERT_TRUE(a.ok) << "seed " << seed << ": " << a.failure;
    ASSERT_EQ(a.trace_digest, b.trace_digest) << "seed " << seed;
    ASSERT_EQ(a.records, b.records) << "seed " << seed;
    digests.insert(a.trace_digest);
  }
  EXPECT_GT(digests.size(), 5u);
}

TEST(Explorer, SodaAcceptWindowRegression) {
  // Found by this explorer's first 100-seed sweep: soda::Kernel::accept
  // removed the request from parked_ but only marked it done after its
  // simulated processing delay, so a retransmitted ReqFrag landing in
  // that window was parked — and serviced — twice ("single-delivery").
  // These are the two FIFO universes that reproduced it; they must stay
  // clean forever.
  for (std::uint64_t seed : {21ull, 75ull}) {
    RunConfig cfg;
    cfg.substrate = load::Substrate::kSoda;
    cfg.seed = seed;
    const RunVerdict v = run_one(cfg);
    EXPECT_TRUE(v.ok) << "seed " << seed << ": " << v.failure;
  }
}

TEST(Explorer, TokensRoundTrip) {
  RunConfig cfg;
  cfg.substrate = load::Substrate::kSoda;
  cfg.tie = sim::TieBreak::kSeededPermutation;
  cfg.seed = 42;
  cfg.horizon = 17;
  cfg.plan = PlanSpec::kAckStorm;
  cfg.channels = 3;
  cfg.calls = 9;
  cfg.bytes = 128;
  cfg.inject_reack_bug = true;
  const auto parsed = parse_token(to_json(cfg));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->substrate, cfg.substrate);
  EXPECT_EQ(parsed->tie, cfg.tie);
  EXPECT_EQ(parsed->seed, cfg.seed);
  EXPECT_EQ(parsed->horizon, cfg.horizon);
  EXPECT_EQ(parsed->plan, cfg.plan);
  EXPECT_EQ(parsed->channels, cfg.channels);
  EXPECT_EQ(parsed->calls, cfg.calls);
  EXPECT_EQ(parsed->bytes, cfg.bytes);
  EXPECT_EQ(parsed->inject_reack_bug, cfg.inject_reack_bug);

  // Defaults stay defaults when omitted from the token.
  const auto bare = parse_token(
      R"({"v":1,"substrate":"charlotte","tie":"fifo","seed":5,"plan":"none"})");
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(bare->horizon, sim::TiePolicy::kNoHorizon);
  EXPECT_EQ(bare->channels, 2);
  EXPECT_EQ(bare->calls, 4);
  EXPECT_FALSE(bare->inject_reack_bug);

  EXPECT_FALSE(parse_token("{}").has_value());
  EXPECT_FALSE(parse_token("not json at all").has_value());
  EXPECT_FALSE(
      parse_token(R"({"substrate":"vms","tie":"fifo","seed":1,"plan":"none"})")
          .has_value());
}

TEST(Explorer, SweepIsCleanAcrossSubstratesPoliciesAndPlans) {
  ExploreOptions opts;
  opts.seeds = 3;
  opts.plans = {PlanSpec::kNone, PlanSpec::kAckStorm};
  const ExploreResult res = explore(opts);
  // 3 substrates x plans (chrysalis skips ack-storm) x 2 policies x 3
  // seeds = (2*2 + 2*2 + 1*2) * 3 = 30.
  EXPECT_EQ(res.runs, 30u);
  for (const FailureReport& f : res.failures) {
    ADD_FAILURE() << f.token() << "\n" << f.verdict.failure;
  }
}

TEST(Explorer, ParallelSweepMatchesSequentialSweep) {
  // ExploreOptions::threads fans run_one out over a host thread pool;
  // every field of the result — run counts, the order-sensitive sweep
  // digest, and any failures — must be identical for any thread count,
  // because each RunConfig runs on its own private Engine.
  ExploreOptions opts;
  opts.seeds = 4;
  opts.plans = {PlanSpec::kNone, PlanSpec::kAckStorm};
  const ExploreResult seq = explore(opts);
  opts.threads = 4;
  const ExploreResult par = explore(opts);
  EXPECT_EQ(par.runs, seq.runs);
  EXPECT_EQ(par.shrink_runs, seq.shrink_runs);
  EXPECT_EQ(par.sweep_digest, seq.sweep_digest);
  EXPECT_NE(par.sweep_digest, 0u);
  EXPECT_EQ(par.failures.size(), seq.failures.size());
}

TEST(Explorer, ExploreCatchesAndMinimizesPlantedBug) {
  ExploreOptions opts;
  opts.substrates = {load::Substrate::kCharlotte};
  opts.policies = {sim::TieBreak::kSeededPermutation};
  opts.seeds = 2;
  opts.plans = {PlanSpec::kAckStorm};
  opts.inject_reack_bug = true;
  const ExploreResult res = explore(opts);
  EXPECT_EQ(res.runs, 2u);
  ASSERT_EQ(res.failures.size(), 2u);
  for (const FailureReport& f : res.failures) {
    EXPECT_EQ(f.minimized.horizon, 0u) << f.token();
    EXPECT_FALSE(f.verdict.ok);
    // The emitted token replays to the same failure.
    const auto parsed = parse_token(f.token());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_FALSE(run_one(*parsed).ok);
  }
  EXPECT_GT(res.shrink_runs, 0u);
}

TEST(Explorer, ChrysalisSkipsFaultPlans) {
  ExploreOptions opts;
  opts.substrates = {load::Substrate::kChrysalis};
  opts.seeds = 2;
  opts.plans = {PlanSpec::kAckStorm};
  const ExploreResult res = explore(opts);
  EXPECT_EQ(res.runs, 0u);
  EXPECT_TRUE(res.failures.empty());
}

}  // namespace
}  // namespace check
