// The replica workload inside the explorer: crash/restart universes
// (including primary crash mid-commit) stay linearizable across the
// seed sweep, tokens round-trip with the new workload/stale fields
// (and without them, for pre-replica tokens), and the planted
// stale-read bug is caught by the linearizability oracle — the
// checker's proof that it can see replication bugs at all.
#include <gtest/gtest.h>

#include <set>

#include "check/explorer.hpp"

namespace check {
namespace {

RunConfig replica_cfg(PlanSpec plan, load::Substrate s, std::uint64_t seed) {
  RunConfig cfg;
  cfg.workload = Workload::kReplica;
  cfg.substrate = s;
  cfg.plan = plan;
  cfg.seed = seed;
  return cfg;
}

TEST(ReplicaExplorer, CleanRunsConformOnAllSubstrates) {
  for (load::Substrate s : load::all_substrates()) {
    const RunVerdict v = run_one(replica_cfg(PlanSpec::kNone, s, 7));
    EXPECT_TRUE(v.ok) << load::to_string(s) << ": " << v.failure;
    // 2 clients x 4 ops went through the linearizability oracle.
    EXPECT_EQ(v.calls_checked, 8u) << load::to_string(s);
  }
}

TEST(ReplicaExplorer, RunsAreDeterministic) {
  for (sim::TieBreak tie :
       {sim::TieBreak::kFifo, sim::TieBreak::kSeededPermutation}) {
    RunConfig cfg = replica_cfg(PlanSpec::kPrimaryBounce,
                                load::Substrate::kCharlotte, 7);
    cfg.tie = tie;
    const RunVerdict a = run_one(cfg);
    const RunVerdict b = run_one(cfg);
    EXPECT_TRUE(a.ok) << a.failure;
    EXPECT_EQ(a.trace_digest, b.trace_digest) << sim::to_string(tie);
    EXPECT_EQ(a.records, b.records) << sim::to_string(tie);
  }
}

TEST(ReplicaExplorer, CrashPlansStayLinearizableAcrossSeeds) {
  // A slice of the acceptance sweep (check_explorer runs the full 100
  // seeds): every crash plan on every substrate, a handful of seeds,
  // under the permutation policy so schedules genuinely differ.
  for (PlanSpec plan : {PlanSpec::kPrimaryCrash, PlanSpec::kPrimaryBounce,
                        PlanSpec::kBackupBounce}) {
    for (load::Substrate s : load::all_substrates()) {
      for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        RunConfig cfg = replica_cfg(plan, s, seed);
        cfg.tie = sim::TieBreak::kSeededPermutation;
        const RunVerdict v = run_one(cfg);
        EXPECT_TRUE(v.ok) << to_string(plan) << " on " << load::to_string(s)
                          << " seed " << seed << ": " << v.failure;
      }
    }
  }
}

TEST(ReplicaExplorer, SeededPermutationExploresDistinctSchedules) {
  std::set<std::uint64_t> digests;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    RunConfig cfg = replica_cfg(PlanSpec::kPrimaryBounce,
                                load::Substrate::kCharlotte, seed);
    cfg.tie = sim::TieBreak::kSeededPermutation;
    const RunVerdict v = run_one(cfg);
    ASSERT_TRUE(v.ok) << "seed " << seed << ": " << v.failure;
    digests.insert(v.trace_digest);
  }
  EXPECT_GT(digests.size(), 4u);
}

TEST(ReplicaExplorer, PlantedStaleReadBugIsCaught) {
  for (load::Substrate s : load::all_substrates()) {
    RunConfig cfg = replica_cfg(PlanSpec::kNone, s, 1);
    cfg.inject_stale_bug = true;
    const RunVerdict v = run_one(cfg);
    ASSERT_FALSE(v.ok) << load::to_string(s)
                       << ": stale read slipped past the oracle";
    EXPECT_NE(v.failure.find("linearizability"), std::string::npos)
        << v.failure;
  }
}

TEST(ReplicaExplorer, TokenRoundTripsWithWorkloadFields) {
  RunConfig cfg = replica_cfg(PlanSpec::kPrimaryCrash,
                              load::Substrate::kSoda, 42);
  cfg.tie = sim::TieBreak::kSeededPermutation;
  cfg.horizon = 17;
  cfg.inject_stale_bug = true;
  const std::string token = to_json(cfg);
  EXPECT_NE(token.find("\"workload\":\"replica\""), std::string::npos);
  EXPECT_NE(token.find("\"plan\":\"primary-crash\""), std::string::npos);
  EXPECT_NE(token.find("\"stale\":1"), std::string::npos);
  const auto parsed = parse_token(token);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->workload, Workload::kReplica);
  EXPECT_EQ(parsed->plan, PlanSpec::kPrimaryCrash);
  EXPECT_EQ(parsed->substrate, load::Substrate::kSoda);
  EXPECT_EQ(parsed->seed, 42u);
  EXPECT_EQ(parsed->horizon, 17u);
  EXPECT_TRUE(parsed->inject_stale_bug);
  EXPECT_EQ(to_json(*parsed), token);
}

TEST(ReplicaExplorer, PreReplicaTokensStillParseAsEcho) {
  // Tokens minted before the workload field existed must keep meaning
  // what they meant: the echo workload at default knobs.
  const auto parsed = parse_token(
      "{\"v\":1,\"substrate\":\"charlotte\",\"tie\":\"perm\",\"seed\":17,"
      "\"plan\":\"ack-storm\",\"channels\":2,\"calls\":4,\"bytes\":32}");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->workload, Workload::kEcho);
  EXPECT_FALSE(parsed->inject_stale_bug);
  // And the echo serialization is unchanged: no workload/stale fields.
  EXPECT_EQ(to_json(*parsed).find("workload"), std::string::npos);
  EXPECT_EQ(to_json(*parsed).find("stale"), std::string::npos);
}

TEST(ReplicaExplorer, SweepSkipsInapplicablePlanCombos) {
  // Echo sweeps must not run crash plans; replica sweeps must not run
  // the ack storm.  Run counts expose the skip logic directly.
  ExploreOptions echo;
  echo.seeds = 1;
  echo.policies = {sim::TieBreak::kFifo};
  echo.plans = {PlanSpec::kNone, PlanSpec::kPrimaryCrash};
  const ExploreResult e = explore(echo);
  EXPECT_EQ(e.runs, 3u);  // kNone x 3 substrates only
  EXPECT_TRUE(e.failures.empty());

  ExploreOptions rep;
  rep.workload = Workload::kReplica;
  rep.seeds = 1;
  rep.policies = {sim::TieBreak::kFifo};
  rep.plans = {PlanSpec::kNone, PlanSpec::kAckStorm, PlanSpec::kBackupBounce};
  const ExploreResult r = explore(rep);
  EXPECT_EQ(r.runs, 6u);  // {kNone, kBackupBounce} x 3 substrates
  EXPECT_TRUE(r.failures.empty());
}

}  // namespace
}  // namespace check
