// Replays every checked-in repro token (tests/check/repro/tokens.jsonl)
// and asserts each still fails with the recorded divergence rule.  The
// corpus is how a failure found by a long exploration sweep becomes a
// permanent, named regression test: the explorer emits the minimized
// token, a human appends it here, CI replays it forever.
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "check/explorer.hpp"

#ifndef RELYNX_REPRO_CORPUS
#error "build must define RELYNX_REPRO_CORPUS (path to tokens.jsonl)"
#endif

namespace check {
namespace {

struct Entry {
  std::string token;
  std::string rule;
  int line = 0;
};

std::string rule_field(const std::string& line) {
  const std::string needle = "\"rule\":\"";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return "";
  const std::size_t start = pos + needle.size();
  const std::size_t end = line.find('"', start);
  if (end == std::string::npos) return "";
  return line.substr(start, end - start);
}

std::vector<Entry> load_corpus() {
  std::ifstream in(RELYNX_REPRO_CORPUS);
  EXPECT_TRUE(in.good()) << "missing corpus: " << RELYNX_REPRO_CORPUS;
  std::vector<Entry> out;
  std::string line;
  int n = 0;
  while (std::getline(in, line)) {
    ++n;
    if (line.empty() || line[0] == '#') continue;
    out.push_back({line, rule_field(line), n});
  }
  return out;
}

TEST(ReproCorpus, EveryTokenStillFailsForItsRecordedReason) {
  const std::vector<Entry> corpus = load_corpus();
  ASSERT_FALSE(corpus.empty());
  for (const Entry& e : corpus) {
    SCOPED_TRACE("tokens.jsonl:" + std::to_string(e.line));
    const auto cfg = parse_token(e.token);
    ASSERT_TRUE(cfg.has_value()) << e.token;
    const RunVerdict v = run_one(*cfg);
    EXPECT_FALSE(v.ok) << "token no longer reproduces: " << e.token;
    ASSERT_TRUE(v.divergence.has_value()) << v.failure;
    EXPECT_EQ(v.divergence->rule, e.rule) << v.failure;
  }
}

TEST(ReproCorpus, TokensAreMinimized) {
  // Corpus discipline: permuted-tie tokens carry an explicit shrunk
  // horizon (a full-horizon token means nobody ran the shrinker).
  for (const Entry& e : load_corpus()) {
    const auto cfg = parse_token(e.token);
    ASSERT_TRUE(cfg.has_value()) << e.token;
    if (cfg->tie != sim::TieBreak::kFifo) {
      EXPECT_NE(cfg->horizon, sim::TiePolicy::kNoHorizon) << e.token;
    }
  }
}

}  // namespace
}  // namespace check
