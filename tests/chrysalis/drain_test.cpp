// Batched dual-queue drains and the cheap-flag fast path (DESIGN.md
// "ack protocol v2", Chrysalis half): dequeue_many must be
// FIFO-equivalent to a one-notice-at-a-time loop, the uncontended
// single-notice delivery must bypass the queue machinery entirely, and
// the batched drain must collapse the per-notice dispatch count.
#include "chrysalis/kernel.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "../support/co_check.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"

namespace chrysalis {
namespace {

using net::NodeId;

struct World {
  sim::Engine engine;
  Kernel kernel{engine};
};

// Producer: N notices in seeded bursts — a burst of 1..8 enqueues
// back-to-back, then a gap long enough that the consumer usually drains
// dry and re-arms.  The mix exercises ready-data drains, partial
// drains, and the would-block path in one run.
sim::Task<> burst_produce(sim::Engine* e, Kernel* k, Pid me, DqId q, int n,
                          std::uint64_t seed) {
  sim::Rng rng(seed);
  int sent = 0;
  while (sent < n) {
    const auto burst = static_cast<int>(rng.next_range(1, 8));
    for (int i = 0; i < burst && sent < n; ++i) {
      CO_CHECK_EQ(co_await k->enqueue(me, q, static_cast<std::uint32_t>(sent)),
                  Status::kOk);
      ++sent;
    }
    co_await e->sleep(sim::usec(rng.next_range(50, 2000)));
  }
}

// Consumer, batched: every wakeup drains all ready notices through one
// dequeue_many dispatch (the v2 pump loop).
sim::Task<> drain_batched(Kernel* k, Pid me, DqId q, EventId ev, int n,
                          std::vector<std::uint32_t>* log) {
  while (static_cast<int>(log->size()) < n) {
    auto out = co_await k->dequeue_many(me, q, ev, 16);
    CO_CHECK(out.ok());
    if (out.value().would_block) {
      auto datum = co_await k->wait_event(me, ev);
      CO_CHECK(datum.ok());
      log->push_back(datum.value());
      continue;
    }
    for (const std::uint32_t d : out.value().data) log->push_back(d);
  }
}

// Consumer, v1: one notice per wakeup.
sim::Task<> drain_single(Kernel* k, Pid me, DqId q, EventId ev, int n,
                         std::vector<std::uint32_t>* log) {
  while (static_cast<int>(log->size()) < n) {
    auto datum = co_await k->dequeue_wait(me, q, ev);
    CO_CHECK(datum.ok());
    log->push_back(datum.value());
  }
}

// The batched drain must deliver the exact FIFO sequence the
// one-at-a-time loop delivers, under the same seeded burst schedule.
TEST(ChrysalisDrain, BatchedDrainPreservesFifoOrder) {
  constexpr int kNotices = 60;
  auto run = [](bool batched) {
    World w;
    Pid prod = w.kernel.create_process(NodeId(0));
    Pid cons = w.kernel.create_process(NodeId(1));
    std::vector<std::uint32_t> log;
    w.engine.spawn("setup", [](World* world, Pid p, Pid c, bool use_batched,
                               std::vector<std::uint32_t>* lg) -> sim::Task<> {
      Kernel& k = world->kernel;
      auto q = co_await k.make_dual_queue(c, 64);
      CO_CHECK(q.ok());
      auto ev = co_await k.make_event(c);
      CO_CHECK(ev.ok());
      world->engine.spawn(
          "produce", burst_produce(&world->engine, &k, p, q.value(), kNotices,
                                   /*seed=*/99));
      if (use_batched) {
        world->engine.spawn(
            "drain", drain_batched(&k, c, q.value(), ev.value(), kNotices, lg));
      } else {
        world->engine.spawn(
            "drain", drain_single(&k, c, q.value(), ev.value(), kNotices, lg));
      }
    }(&w, prod, cons, batched, &log));
    w.engine.run();
    EXPECT_TRUE(w.engine.process_failures().empty());
    return log;
  };

  const std::vector<std::uint32_t> batched = run(true);
  const std::vector<std::uint32_t> single = run(false);
  ASSERT_EQ(batched.size(), static_cast<std::size_t>(kNotices));
  for (int i = 0; i < kNotices; ++i) {
    EXPECT_EQ(batched[static_cast<std::size_t>(i)],
              static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(batched, single);
}

// An uncontended single-notice delivery — consumer parked on an empty
// queue, one producer — must ride the cheap flag: the datum goes
// straight to the consumer's event block and neither side touches the
// deque (zero queue allocations, counted by the sim).
TEST(ChrysalisDrain, CheapFlagFastPathSkipsQueueMachinery) {
  constexpr int kCycles = 10;
  World w;
  Pid prod = w.kernel.create_process(NodeId(0));
  Pid cons = w.kernel.create_process(NodeId(1));
  std::vector<std::uint32_t> log;
  std::uint64_t allocs_before = 0;
  std::uint64_t fast_before = 0;

  w.engine.spawn("setup", [](World* world, Pid p, Pid c,
                             std::vector<std::uint32_t>* lg,
                             std::uint64_t* allocs0,
                             std::uint64_t* fast0) -> sim::Task<> {
    Kernel& k = world->kernel;
    sim::Engine& e = world->engine;
    auto q = co_await k.make_dual_queue(c, 64);
    CO_CHECK(q.ok());
    auto ev = co_await k.make_event(c);
    CO_CHECK(ev.ok());
    *allocs0 = k.queue_allocs();
    *fast0 = k.fast_deliveries();
    e.spawn("produce", [](sim::Engine* eng, Kernel* kk, Pid me,
                          DqId qq) -> sim::Task<> {
      for (int i = 0; i < kCycles; ++i) {
        // Arrive well after the consumer has parked: queue empty, flag
        // armed — the uncontended case the fast path exists for.
        co_await eng->sleep(sim::msec(5));
        CO_CHECK_EQ(co_await kk->enqueue(me, qq, static_cast<std::uint32_t>(i)),
                    Status::kOk);
      }
    }(&e, &k, p, q.value()));
    e.spawn("drain",
            drain_single(&k, c, q.value(), ev.value(), kCycles, lg));
  }(&w, prod, cons, &log, &allocs_before, &fast_before));
  w.engine.run();

  ASSERT_EQ(log.size(), static_cast<std::size_t>(kCycles));
  for (int i = 0; i < kCycles; ++i) {
    EXPECT_EQ(log[static_cast<std::size_t>(i)], static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(w.kernel.fast_deliveries() - fast_before,
            static_cast<std::uint64_t>(kCycles));
  EXPECT_EQ(w.kernel.queue_allocs() - allocs_before, 0u)
      << "fast-path delivery touched the deque";
  EXPECT_TRUE(w.engine.process_failures().empty());
}

// The dispatch-count pin: draining 32 parked notices takes 32 kernel
// dispatches one-at-a-time but exactly 2 dequeue_many dispatches at
// drain_max_notices = 16 — the 16x per-wakeup op ratio the backend's
// pump relies on (each dispatch is a primitive_call on the wire; extra
// notices in a batch cost only dq_dequeue_extra).
TEST(ChrysalisDrain, BatchedDrainCollapsesDispatchCount) {
  constexpr int kParked = 32;
  auto run = [](bool batched, std::uint64_t* drain_ops) {
    World w;
    Pid prod = w.kernel.create_process(NodeId(0));
    Pid cons = w.kernel.create_process(NodeId(1));
    std::vector<std::uint32_t> log;
    w.engine.spawn("setup", [](World* world, Pid p, Pid c, bool use_batched,
                               std::uint64_t* ops_out,
                               std::vector<std::uint32_t>* lg) -> sim::Task<> {
      Kernel& k = world->kernel;
      auto q = co_await k.make_dual_queue(c, 64);
      CO_CHECK(q.ok());
      auto ev = co_await k.make_event(c);
      CO_CHECK(ev.ok());
      // Park all 32 notices first: the consumer is not running yet, so
      // every datum lands in the deque.
      for (int i = 0; i < kParked; ++i) {
        CO_CHECK_EQ(co_await k.enqueue(p, q.value(),
                                       static_cast<std::uint32_t>(i)),
                    Status::kOk);
      }
      const std::uint64_t ops_before = k.microcode_ops();
      if (use_batched) {
        co_await drain_batched(&k, c, q.value(), ev.value(), kParked, lg);
      } else {
        co_await drain_single(&k, c, q.value(), ev.value(), kParked, lg);
      }
      *ops_out = k.microcode_ops() - ops_before;
    }(&w, prod, cons, batched, drain_ops, &log));
    w.engine.run();
    EXPECT_TRUE(w.engine.process_failures().empty());
    EXPECT_EQ(log.size(), static_cast<std::size_t>(kParked));
    return log;
  };

  std::uint64_t single_ops = 0;
  std::uint64_t batched_ops = 0;
  const auto log_single = run(false, &single_ops);
  const auto log_batched = run(true, &batched_ops);
  EXPECT_EQ(log_single, log_batched);
  EXPECT_EQ(single_ops, static_cast<std::uint64_t>(kParked));
  EXPECT_EQ(batched_ops, 2u);  // 32 notices / 16 per drain
}

}  // namespace
}  // namespace chrysalis
