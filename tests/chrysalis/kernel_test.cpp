// Unit tests for the simulated Chrysalis kernel.
#include "chrysalis/kernel.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../support/co_check.hpp"
#include "sim/engine.hpp"

namespace chrysalis {
namespace {

using net::NodeId;

struct World {
  sim::Engine engine;
  Kernel kernel{engine};
};

// ---- memory objects -------------------------------------------------------

sim::Task<> object_roundtrip(Kernel* k, Pid a, Pid b,
                             std::vector<std::string>* log) {
  auto obj = co_await k->make_object(a, 256);
  CO_CHECK(obj.ok());
  const MemId id = obj.value();

  std::vector<std::uint8_t> msg = {'h', 'i', '!', 0};
  CO_CHECK_EQ(co_await k->block_write(a, id, 16, msg), Status::kOk);

  // b can't touch it before mapping
  auto denied = co_await k->block_read(b, id, 16, 4);
  CO_CHECK(!denied.ok());
  CO_CHECK_EQ(denied.error(), Status::kNotMapped);

  CO_CHECK_EQ(co_await k->map(b, id), Status::kOk);
  auto got = co_await k->block_read(b, id, 16, 4);
  CO_CHECK(got.ok());
  log->push_back(std::string(got.value().begin(), got.value().end() - 1));
}

TEST(ChrysalisKernel, SharedObjectRoundTrip) {
  World w;
  Pid a = w.kernel.create_process(NodeId(0));
  Pid b = w.kernel.create_process(NodeId(1));
  std::vector<std::string> log;
  w.engine.spawn("p", object_roundtrip(&w.kernel, a, b, &log));
  w.engine.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "hi!");
  EXPECT_TRUE(w.engine.process_failures().empty());
}

sim::Task<> refcount_prog(Kernel* k, Pid a, Pid b,
                          std::vector<std::string>* log) {
  auto obj = co_await k->make_object(a, 64);
  CO_CHECK(obj.ok());
  const MemId id = obj.value();
  CO_CHECK_EQ(co_await k->map(b, id), Status::kOk);
  // a marks it releasable and unmaps; object must survive (b still maps)
  k->release_when_unreferenced(id);
  CO_CHECK_EQ(co_await k->unmap(a, id), Status::kOk);
  CO_CHECK(k->object_exists(id));
  // b unmaps: refcount hits zero, object reclaimed
  CO_CHECK_EQ(co_await k->unmap(b, id), Status::kOk);
  CO_CHECK(!k->object_exists(id));
  log->push_back("reclaimed");
}

TEST(ChrysalisKernel, ReferenceCountReclaimsAtZero) {
  World w;
  Pid a = w.kernel.create_process(NodeId(0));
  Pid b = w.kernel.create_process(NodeId(1));
  std::vector<std::string> log;
  w.engine.spawn("p", refcount_prog(&w.kernel, a, b, &log));
  w.engine.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "reclaimed");
}

sim::Task<> flags_prog(Kernel* k, Pid a, std::vector<std::uint16_t>* out) {
  auto obj = co_await k->make_object(a, 8);
  CO_CHECK(obj.ok());
  const MemId id = obj.value();
  out->push_back((co_await k->fetch_or16(a, id, 0, 0x0005)).value());
  out->push_back((co_await k->fetch_or16(a, id, 0, 0x0002)).value());
  out->push_back((co_await k->fetch_and16(a, id, 0, 0xFFFE)).value());
  out->push_back((co_await k->read16(a, id, 0)).value());
}

TEST(ChrysalisKernel, AtomicFlagOpsReturnOldValue) {
  World w;
  Pid a = w.kernel.create_process(NodeId(0));
  std::vector<std::uint16_t> out;
  w.engine.spawn("p", flags_prog(&w.kernel, a, &out));
  w.engine.run();
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], 0x0000);
  EXPECT_EQ(out[1], 0x0005);
  EXPECT_EQ(out[2], 0x0007);
  EXPECT_EQ(out[3], 0x0006);
}

TEST(ChrysalisKernel, BadOffsetRejected) {
  World w;
  Pid a = w.kernel.create_process(NodeId(0));
  auto prog = [](Kernel* k, Pid pid, std::vector<Status>* out) -> sim::Task<> {
    auto obj = co_await k->make_object(pid, 16);
    CO_CHECK(obj.ok());
    out->push_back(co_await k->write16(pid, obj.value(), 15, 1));
    out->push_back(co_await k->write16(pid, obj.value(), 14, 1));
  };
  std::vector<Status> out;
  w.engine.spawn("p", prog(&w.kernel, a, &out));
  w.engine.run();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], Status::kBadOffset);
  EXPECT_EQ(out[1], Status::kOk);
}

// ---- event blocks ----------------------------------------------------------

sim::Task<> event_owner(Kernel* k, Pid me, EventId* slot, sim::Gate* ready,
                        std::vector<std::uint32_t>* got) {
  auto ev = co_await k->make_event(me);
  CO_CHECK(ev.ok());
  *slot = ev.value();
  ready->open();
  got->push_back((co_await k->wait_event(me, ev.value())).value());
  got->push_back((co_await k->wait_event(me, ev.value())).value());
}

sim::Task<> event_poster(Kernel* k, Pid me, EventId* slot, sim::Gate* ready) {
  co_await ready->wait();
  CO_CHECK_EQ(co_await k->post(me, *slot, 111), Status::kOk);
  CO_CHECK_EQ(co_await k->post(me, *slot, 222), Status::kOk);
}

TEST(ChrysalisKernel, EventBlockCarriesDatum) {
  World w;
  Pid a = w.kernel.create_process(NodeId(0));
  Pid b = w.kernel.create_process(NodeId(1));
  EventId slot;
  sim::Gate ready(w.engine);
  std::vector<std::uint32_t> got;
  w.engine.spawn("owner", event_owner(&w.kernel, a, &slot, &ready, &got));
  w.engine.spawn("poster", event_poster(&w.kernel, b, &slot, &ready));
  w.engine.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], 111u);
  EXPECT_EQ(got[1], 222u);
}

TEST(ChrysalisKernel, OnlyOwnerMayWait) {
  World w;
  Pid a = w.kernel.create_process(NodeId(0));
  Pid b = w.kernel.create_process(NodeId(1));
  auto prog = [](Kernel* k, Pid owner, Pid thief,
                 std::vector<Status>* out) -> sim::Task<> {
    auto ev = co_await k->make_event(owner);
    CO_CHECK(ev.ok());
    auto res = co_await k->wait_event(thief, ev.value());
    out->push_back(res.ok() ? Status::kOk : res.error());
  };
  std::vector<Status> out;
  w.engine.spawn("p", prog(&w.kernel, a, b, &out));
  w.engine.run();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Status::kNotOwner);
}

// ---- dual queues ------------------------------------------------------------

sim::Task<> dq_consumer(Kernel* k, Pid me, DqId q,
                        std::vector<std::uint32_t>* got, int n) {
  auto ev = co_await k->make_event(me);
  CO_CHECK(ev.ok());
  for (int i = 0; i < n; ++i) {
    auto v = co_await k->dequeue_wait(me, q, ev.value());
    CO_CHECK(v.ok());
    got->push_back(v.value());
  }
}

sim::Task<> dq_producer(Kernel* k, Pid me, DqId q, std::uint32_t base,
                        int n) {
  for (int i = 0; i < n; ++i) {
    CO_CHECK_EQ(
        co_await k->enqueue(me, q, base + static_cast<std::uint32_t>(i)),
        Status::kOk);
  }
}

TEST(ChrysalisKernel, DualQueueDataThenWaiters) {
  World w;
  Pid a = w.kernel.create_process(NodeId(0));
  Pid b = w.kernel.create_process(NodeId(1));
  DqId q;
  {
    auto mk = [](Kernel* k, Pid pid, DqId* out) -> sim::Task<> {
      auto r = co_await k->make_dual_queue(pid, 16);
      CO_CHECK(r.ok());
      *out = r.value();
    };
    w.engine.spawn("mk", mk(&w.kernel, a, &q));
    w.engine.run();
  }
  std::vector<std::uint32_t> got;
  // Consumer starts first: queue empty -> event name parked; producer's
  // enqueues post the event instead of storing data.
  w.engine.spawn("consumer", dq_consumer(&w.kernel, a, q, &got, 5));
  w.engine.spawn("producer", dq_producer(&w.kernel, b, q, 100, 5));
  w.engine.run();
  EXPECT_EQ(got, (std::vector<std::uint32_t>{100, 101, 102, 103, 104}));
  EXPECT_TRUE(w.engine.process_failures().empty());
}

TEST(ChrysalisKernel, DualQueueBuffersWhenNoWaiter) {
  World w;
  Pid a = w.kernel.create_process(NodeId(0));
  Pid b = w.kernel.create_process(NodeId(1));
  DqId q;
  {
    auto mk = [](Kernel* k, Pid pid, DqId* out) -> sim::Task<> {
      auto r = co_await k->make_dual_queue(pid, 16);
      CO_CHECK(r.ok());
      *out = r.value();
    };
    w.engine.spawn("mk", mk(&w.kernel, a, &q));
    w.engine.run();
  }
  std::vector<std::uint32_t> got;
  w.engine.spawn("producer", dq_producer(&w.kernel, b, q, 7, 3));
  w.engine.run();  // all three parked as data
  w.engine.spawn("consumer", dq_consumer(&w.kernel, a, q, &got, 3));
  w.engine.run();
  EXPECT_EQ(got, (std::vector<std::uint32_t>{7, 8, 9}));
}

TEST(ChrysalisKernel, DualQueueCapacityIsEnforced) {
  World w;
  Pid a = w.kernel.create_process(NodeId(0));
  auto prog = [](Kernel* k, Pid pid, std::vector<Status>* out) -> sim::Task<> {
    auto r = co_await k->make_dual_queue(pid, 2);
    CO_CHECK(r.ok());
    out->push_back(co_await k->enqueue(pid, r.value(), 1));
    out->push_back(co_await k->enqueue(pid, r.value(), 2));
    out->push_back(co_await k->enqueue(pid, r.value(), 3));
  };
  std::vector<Status> out;
  w.engine.spawn("p", prog(&w.kernel, a, &out));
  w.engine.run();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], Status::kOk);
  EXPECT_EQ(out[1], Status::kOk);
  EXPECT_EQ(out[2], Status::kQueueFull);
}

// ---- termination handlers -----------------------------------------------------

TEST(ChrysalisKernel, TerminationHandlerRunsBeforeReaping) {
  World w;
  Pid a = w.kernel.create_process(NodeId(0));
  std::vector<std::string> log;
  w.kernel.set_termination_handler(a, [&] { log.push_back("cleanup"); });
  w.engine.schedule(sim::msec(1), [&] { w.kernel.terminate(a); });
  w.engine.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "cleanup");
  EXPECT_FALSE(w.kernel.alive(a));
}

TEST(ChrysalisKernel, TerminationUnmapsAndReclaims) {
  World w;
  Pid a = w.kernel.create_process(NodeId(0));
  MemId id;
  auto prog = [](Kernel* k, Pid pid, MemId* out) -> sim::Task<> {
    auto obj = co_await k->make_object(pid, 32);
    CO_CHECK(obj.ok());
    *out = obj.value();
    k->release_when_unreferenced(obj.value());
  };
  w.engine.spawn("p", prog(&w.kernel, a, &id));
  w.engine.run();
  EXPECT_TRUE(w.kernel.object_exists(id));
  w.kernel.terminate(a);
  EXPECT_FALSE(w.kernel.object_exists(id));
}

// ---- cost sanity ------------------------------------------------------------

TEST(ChrysalisKernel, RemoteCostsMoreThanLocal) {
  // Same program run by a process co-resident with the object vs remote.
  auto run = [](NodeId proc_node) {
    sim::Engine e;
    Kernel k(e);
    Pid owner = k.create_process(NodeId(0));
    Pid user = k.create_process(proc_node);
    auto prog = [](Kernel* kk, Pid o, Pid u) -> sim::Task<> {
      auto obj = co_await kk->make_object(o, 1024);
      CO_CHECK(obj.ok());
      CO_CHECK_EQ(co_await kk->map(u, obj.value()), Status::kOk);
      std::vector<std::uint8_t> data(1000, 0xAB);
      CO_CHECK_EQ(co_await kk->block_write(u, obj.value(), 0, data),
                  Status::kOk);
    };
    e.spawn("p", prog(&k, owner, user));
    e.run();
    return e.now();
  };
  EXPECT_GT(run(NodeId(5)), run(NodeId(0)));
}

}  // namespace
}  // namespace chrysalis
