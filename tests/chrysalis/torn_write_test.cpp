// The §5.2 non-atomic 32-bit write: "Atomic changes to quantities larger
// than 16 bits (including dual queue names) are relatively costly.  The
// recipient of a moved link therefore writes the name of its dual queue
// into the new memory object in a non-atomic fashion.  It is possible
// that the process at the non-moving end of the link will read an
// invalid name, but only after setting flags."
//
// The simulated kernel models the tear: write32 commits the low half at
// call time and the high half after the charged delay.  These tests pin
// the tear down and verify the ordering discipline that makes it safe.
#include "chrysalis/kernel.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "../support/co_check.hpp"
#include "sim/engine.hpp"

namespace chrysalis {
namespace {

using net::NodeId;

TEST(ChrysalisTornWrite, ConcurrentReaderCanSeeTornValue) {
  sim::Engine engine;
  Kernel kernel(engine);
  Pid writer = kernel.create_process(NodeId(0));
  // co-resident reader: its 16-bit reads are fast enough to land inside
  // the 32-bit write's tear window
  Pid reader = kernel.create_process(NodeId(0));

  MemId obj;
  engine.spawn("setup", [](Kernel* k, Pid w, Pid r, MemId* out) -> sim::Task<> {
    auto o = co_await k->make_object(w, 16);
    CO_CHECK(o.ok());
    *out = o.value();
    CO_CHECK_EQ(co_await k->map(r, o.value()), Status::kOk);
    CO_CHECK_EQ(co_await k->write32(w, o.value(), 0, 0xAAAAAAAAu),
                Status::kOk);
  }(&kernel, writer, reader, &obj));
  engine.run();

  // Writer overwrites with 0x55555555; reader samples DURING the write.
  std::vector<std::uint32_t> samples;
  engine.spawn("writer", [](Kernel* k, Pid w, MemId o) -> sim::Task<> {
    (void)co_await k->write32(w, o, 0, 0x55555555u);
  }(&kernel, writer, obj));
  engine.spawn("reader", [](Kernel* k, Pid r, MemId o,
                            std::vector<std::uint32_t>* out) -> sim::Task<> {
    // sample immediately (mid-tear) and then after the dust settles
    auto v1 = co_await k->read16(r, o, 0);  // low half
    auto v2 = co_await k->read16(r, o, 2);  // high half
    CO_CHECK(v1.ok());
    CO_CHECK(v2.ok());
    out->push_back(static_cast<std::uint32_t>(v1.value()) |
                   (static_cast<std::uint32_t>(v2.value()) << 16));
    co_await k->engine().sleep(sim::msec(1));
    auto v3 = co_await k->read32(r, o, 0);
    CO_CHECK(v3.ok());
    out->push_back(v3.value());
  }(&kernel, reader, obj, &samples));
  engine.run();

  ASSERT_EQ(samples.size(), 2u);
  // Mid-tear: low half already new (0x5555), high half still old
  // (0xAAAA) — the torn value the paper warns about.
  EXPECT_EQ(samples[0], 0xAAAA5555u);
  // After completion: consistent new value.
  EXPECT_EQ(samples[1], 0x55555555u);
}

TEST(ChrysalisTornWrite, SixteenBitWritesAreNotTorn) {
  sim::Engine engine;
  Kernel kernel(engine);
  Pid writer = kernel.create_process(NodeId(0));
  Pid reader = kernel.create_process(NodeId(1));
  MemId obj;
  engine.spawn("setup", [](Kernel* k, Pid w, Pid r, MemId* out) -> sim::Task<> {
    auto o = co_await k->make_object(w, 16);
    CO_CHECK(o.ok());
    *out = o.value();
    CO_CHECK_EQ(co_await k->map(r, o.value()), Status::kOk);
  }(&kernel, writer, reader, &obj));
  engine.run();

  std::vector<std::uint16_t> samples;
  engine.spawn("writer", [](Kernel* k, Pid w, MemId o) -> sim::Task<> {
    (void)co_await k->write16(w, o, 0, 0xBEEF);
  }(&kernel, writer, obj));
  engine.spawn("reader", [](Kernel* k, Pid r, MemId o,
                            std::vector<std::uint16_t>* out) -> sim::Task<> {
    auto v = co_await k->read16(r, o, 0);
    CO_CHECK(v.ok());
    out->push_back(v.value());
  }(&kernel, reader, obj, &samples));
  engine.run();
  ASSERT_EQ(samples.size(), 1u);
  // atomic16: either wholly old (0) or wholly new (0xBEEF)
  EXPECT_TRUE(samples[0] == 0 || samples[0] == 0xBEEF);
}

// The safety argument of §5.2: flag-before-name on the sender, name-
// before-flags on the mover, guarantees no lost wakeups even with torn
// names.  This is validated end-to-end by the LYNX move tests; here we
// check the primitive ordering the backend depends on: fetch_or16
// publishes at call time (before its charged delay elapses).
TEST(ChrysalisTornWrite, AtomicOpsPublishAtCallTime) {
  sim::Engine engine;
  Kernel kernel(engine);
  Pid a = kernel.create_process(NodeId(0));
  Pid b = kernel.create_process(NodeId(1));
  MemId obj;
  engine.spawn("setup", [](Kernel* k, Pid w, Pid r, MemId* out) -> sim::Task<> {
    auto o = co_await k->make_object(w, 8);
    CO_CHECK(o.ok());
    *out = o.value();
    CO_CHECK_EQ(co_await k->map(r, o.value()), Status::kOk);
  }(&kernel, a, b, &obj));
  engine.run();

  std::vector<std::uint16_t> old_values;
  // Both processes fetch_or different bits "simultaneously" (same sim
  // instant): each must see a consistent linearization — exactly one of
  // them observes the other's bit already set, never both zero-zero
  // with a lost update.
  engine.spawn("a", [](Kernel* k, Pid p, MemId o,
                       std::vector<std::uint16_t>* out) -> sim::Task<> {
    auto v = co_await k->fetch_or16(p, o, 0, 0x0001);
    CO_CHECK(v.ok());
    out->push_back(v.value());
  }(&kernel, a, obj, &old_values));
  engine.spawn("b", [](Kernel* k, Pid p, MemId o,
                       std::vector<std::uint16_t>* out) -> sim::Task<> {
    auto v = co_await k->fetch_or16(p, o, 0, 0x0002);
    CO_CHECK(v.ok());
    out->push_back(v.value());
  }(&kernel, b, obj, &old_values));
  engine.spawn("check", [](Kernel* k, Pid p, MemId o) -> sim::Task<> {
    co_await k->engine().sleep(sim::msec(1));
    auto v = co_await k->read16(p, o, 0);
    CO_CHECK(v.ok());
    CO_CHECK_EQ(v.value(), 0x0003);  // no lost update
  }(&kernel, a, obj));
  engine.run();
  ASSERT_EQ(old_values.size(), 2u);
  // exactly one saw the other's bit
  const int seen = (old_values[0] != 0 ? 1 : 0) +
                   (old_values[1] != 0 ? 1 : 0);
  EXPECT_EQ(seen, 1);
  EXPECT_TRUE(engine.process_failures().empty());
}

}  // namespace
}  // namespace chrysalis
