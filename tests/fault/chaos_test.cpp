// Chaos tests: the three kernels running over an impaired medium.
//
// The point of the suite is the paper's §2/§3.1 contrast made
// executable: under a cut link, Charlotte (full link-state knowledge)
// raises an *absolute* failure notice — kLinkFailed — while SODA
// (hints + timeout) first retries and only eventually gives up or,
// if the cut heals in time, converges as if nothing happened.
// Chrysalis needs no test here: its processes share one Butterfly
// memory and never touch a Medium, so the fault layer has nothing to
// break.  Every scenario runs under an InvariantChecker.
#include <gtest/gtest.h>

#include <string>
#include <variant>
#include <vector>

#include "../support/co_check.hpp"
#include "charlotte/kernel.hpp"
#include "fault/faulty_medium.hpp"
#include "fault/invariant_checker.hpp"
#include "net/csma_bus.hpp"
#include "net/token_ring.hpp"
#include "sim/engine.hpp"
#include "soda/kernel.hpp"

namespace fault {
namespace {

using net::NodeId;

// ===================== Charlotte under link cuts =====================

charlotte::Payload ch_bytes(std::string s) {
  return charlotte::Payload(s.begin(), s.end());
}

// Wires a FaultyMedium's topology events into a Charlotte cluster: cuts
// become sever() notices, crashes become node-down notices.  This is
// the "distributed kernel knows the state of every link" half of the
// paper's contrast.
void wire_charlotte_notices(FaultyMedium& fm, charlotte::Cluster& cluster) {
  fm.observe_faults([&cluster](const FaultRecord& r) {
    if (r.kind == FaultKind::kCut) cluster.sever(r.src, r.dst);
  });
  fm.on_crash([&cluster](NodeId n) { cluster.notify_node_down(n); });
}

sim::Task<> ch_expect_failed_send(charlotte::Cluster* cl, charlotte::Pid me,
                                  charlotte::EndId end,
                                  std::vector<std::string>* log) {
  charlotte::Kernel& k = cl->kernel_of(me);
  charlotte::Status st = co_await k.send(me, end, ch_bytes("doomed"));
  CO_CHECK_EQ(st, charlotte::Status::kOk);  // posted fine; the wire is cut
  charlotte::Completion c = co_await k.wait(me);
  log->push_back(std::string("send:") + charlotte::to_string(c.status));
}

sim::Task<> ch_expect_failed_recv(charlotte::Cluster* cl, charlotte::Pid me,
                                  charlotte::EndId end,
                                  std::vector<std::string>* log) {
  charlotte::Kernel& k = cl->kernel_of(me);
  charlotte::Status st = co_await k.receive(me, end, 4096);
  CO_CHECK_EQ(st, charlotte::Status::kOk);
  charlotte::Completion c = co_await k.wait(me);
  log->push_back(std::string("recv:") + charlotte::to_string(c.status));
}

TEST(Chaos, CharlotteCutGivesPromptAbsoluteFailureNotice) {
  // The fault layer tells the cluster about the cut (as Charlotte's
  // real distributed kernel would know); both pending activities fail
  // with kLinkFailed immediately — no retransmission needed, and in
  // fact no retransmit timer is even enabled.
  sim::Engine e;
  net::TokenRing ring(e);
  FaultyMedium fm(e, ring, 21,
                  Plan{}.cut_link(sim::msec(200), NodeId(0), NodeId(1)));
  InvariantChecker check(fm);
  charlotte::Cluster cluster(e, 2, fm);
  wire_charlotte_notices(fm, cluster);

  charlotte::Pid a = cluster.create_process(NodeId(0));
  charlotte::Pid b = cluster.create_process(NodeId(1));
  charlotte::LinkPair link = cluster.bootstrap_link(a, b);

  std::vector<std::string> log;
  // Both sides park a receive; neither would ever learn anything from
  // the (silent) wire.  The notice is what fails them — promptly, and
  // with no retransmit machinery enabled at all.
  e.spawn("recv-a", ch_expect_failed_recv(&cluster, a, link.end1, &log));
  e.spawn("recv-b", ch_expect_failed_recv(&cluster, b, link.end2, &log));
  e.run();

  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "recv:link-failed");
  EXPECT_EQ(log[1], "recv:link-failed");
  // The notice arrived at the cut, not after some timeout-and-retry
  // dance: the run ends as soon as the failure fans out.
  EXPECT_LT(e.now(), sim::msec(250));
  EXPECT_TRUE(check.ok()) << check.violations().front();
  EXPECT_TRUE(e.process_failures().empty());
}

TEST(Chaos, CharlotteRetransmitExhaustionDeclaresLinkFailed) {
  // No notice wiring this time: the kernel must *discover* the failure
  // through its own retransmission protocol and still end with the
  // same absolute kLinkFailed — never a silent hang.
  sim::Engine e;
  net::TokenRing ring(e);
  FaultyMedium fm(e, ring, 22,
                  Plan{}.cut_link(0, NodeId(0), NodeId(1)));
  InvariantChecker check(fm);
  charlotte::Costs costs;
  costs.send_retransmit_timeout = sim::msec(100);
  charlotte::Cluster cluster(e, 2, fm, costs);

  charlotte::Pid a = cluster.create_process(NodeId(0));
  charlotte::Pid b = cluster.create_process(NodeId(1));
  charlotte::LinkPair link = cluster.bootstrap_link(a, b);

  std::vector<std::string> log;
  e.spawn("send", ch_expect_failed_send(&cluster, a, link.end1, &log));
  e.run();

  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], "send:link-failed");
  EXPECT_GT(cluster.kernel(NodeId(0)).nack_retransmits(), 0u);
  EXPECT_TRUE(check.ok()) << check.violations().front();
  EXPECT_TRUE(e.process_failures().empty());
}

TEST(Chaos, CharlotteSurvivesLossyRingWithRetransmission) {
  // Background loss, no cut: every Msg/Ack eventually gets through and
  // the round trip completes exactly once (the dedupe ring absorbs
  // retransmitted copies).
  sim::Engine e;
  net::TokenRing ring(e);
  FaultyMedium fm(e, ring, 23,
                  Plan{}.background({.drop_prob = 0.3}));
  InvariantChecker check(fm);
  charlotte::Costs costs;
  costs.send_retransmit_timeout = sim::msec(100);
  charlotte::Cluster cluster(e, 2, fm, costs);

  charlotte::Pid a = cluster.create_process(NodeId(0));
  charlotte::Pid b = cluster.create_process(NodeId(1));
  charlotte::LinkPair link = cluster.bootstrap_link(a, b);

  std::vector<std::string> log;
  constexpr int kRounds = 8;
  auto sender = [](charlotte::Cluster* cl, charlotte::Pid me,
                   charlotte::EndId end,
                   std::vector<std::string>* lg) -> sim::Task<> {
    charlotte::Kernel& k = cl->kernel_of(me);
    for (int i = 0; i < kRounds; ++i) {
      CO_CHECK_EQ(co_await k.send(me, end, ch_bytes("hello")),
                  charlotte::Status::kOk);
      charlotte::Completion c = co_await k.wait(me);
      CO_CHECK_EQ(c.status, charlotte::Status::kOk);
    }
    lg->push_back("send:done");
  };
  auto receiver = [](charlotte::Cluster* cl, charlotte::Pid me,
                     charlotte::EndId end,
                     std::vector<std::string>* lg) -> sim::Task<> {
    charlotte::Kernel& k = cl->kernel_of(me);
    for (int i = 0; i < kRounds; ++i) {
      CO_CHECK_EQ(co_await k.receive(me, end, 4096), charlotte::Status::kOk);
      charlotte::Completion c = co_await k.wait(me);
      CO_CHECK_EQ(c.status, charlotte::Status::kOk);
      CO_CHECK_EQ(std::string(c.data.begin(), c.data.end()), "hello");
    }
    lg->push_back("recv:done");
  };
  e.spawn("recv", receiver(&cluster, b, link.end2, &log));
  e.spawn("send", sender(&cluster, a, link.end1, &log));
  e.run();

  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "recv:done");
  EXPECT_EQ(log[1], "send:done");
  EXPECT_GT(fm.injected_drops(), 0u);
  EXPECT_TRUE(check.ok()) << check.violations().front();
  EXPECT_TRUE(e.process_failures().empty());
}

// ===================== SODA under cuts and loss =====================

soda::Payload so_bytes(std::string s) {
  return soda::Payload(s.begin(), s.end());
}

sim::Task<> so_server(soda::Network* nw, soda::Pid me, soda::Name* out,
                      sim::Gate* ready, std::vector<std::string>* log) {
  soda::Kernel& k = nw->kernel_of(me);
  soda::Name n = co_await k.generate_name(me);
  CO_CHECK_EQ(co_await k.advertise(me, n), soda::Status::kOk);
  *out = n;
  ready->open();
  soda::Interrupt intr = co_await k.next_interrupt(me);
  auto* req = std::get_if<soda::RequestInterrupt>(&intr);
  CO_CHECK(req != nullptr);
  auto taken = co_await k.accept(me, req->request, soda::Oob{1, 0},
                                 so_bytes("pong"), 4096);
  CO_CHECK(taken.ok());
  log->push_back("server-got:" +
                 std::string(taken.value().begin(), taken.value().end()));
}

sim::Task<> so_client(soda::Network* nw, soda::Pid me, soda::Pid server,
                      soda::Name* name, sim::Gate* ready,
                      std::vector<std::string>* log) {
  co_await ready->wait();
  soda::Kernel& k = nw->kernel_of(me);
  auto req = co_await k.request(me, server, *name, soda::Oob{}, so_bytes("ping"),
                                4096);
  CO_CHECK(req.ok());
  soda::Interrupt intr = co_await k.next_interrupt(me);
  if (auto* done = std::get_if<soda::CompletionInterrupt>(&intr)) {
    log->push_back("client-got:" +
                   std::string(done->data.begin(), done->data.end()));
  } else if (std::get_if<soda::CrashInterrupt>(&intr) != nullptr) {
    log->push_back("client-crashnote");
  } else {
    log->push_back("client-rejected");
  }
}

soda::Costs soda_ack_costs() {
  soda::Costs c;
  c.ack_timeout = sim::msec(10);
  return c;
}

TEST(Chaos, SodaConvergesWhenCutHealsBeforeTimeout) {
  // The cut opens just as the request goes out and heals well inside
  // the retransmission budget: SODA's per-fragment acks + retries carry
  // the rendezvous through with no application-visible anomaly.  This
  // is the "out-of-date hints" half of the contrast — nothing tells
  // SODA about the cut; it just keeps trying.
  sim::Engine e;
  net::CsmaBus bus(e, sim::Rng(7));
  FaultyMedium fm(e, bus, 31,
                  Plan{}
                      .cut_link(sim::msec(4), NodeId(0), NodeId(1))
                      .heal_all(sim::msec(30)));
  InvariantChecker check(fm);
  soda::Network nw(e, 2, fm, soda_ack_costs());

  soda::Pid s = nw.create_process(NodeId(0));
  soda::Pid c = nw.create_process(NodeId(1));
  soda::Name name;
  sim::Gate ready(e);
  std::vector<std::string> log;
  e.spawn("server", so_server(&nw, s, &name, &ready, &log));
  e.spawn("client", so_client(&nw, c, s, &name, &ready, &log));
  e.run();

  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "server-got:ping");
  EXPECT_EQ(log[1], "client-got:pong");
  EXPECT_GT(nw.kernel(NodeId(1)).retries(), 0u);
  EXPECT_TRUE(check.ok()) << check.violations().front();
  EXPECT_TRUE(e.process_failures().empty());
}

TEST(Chaos, SodaEventuallyTimesOutOnPermanentCut) {
  // The same scenario without the heal: no notice ever arrives, so the
  // client burns through max_transport_attempts and concludes — by
  // timeout alone — that the target is gone (CrashInterrupt).
  sim::Engine e;
  net::CsmaBus bus(e, sim::Rng(7));
  FaultyMedium fm(e, bus, 32,
                  Plan{}.cut_link(sim::msec(4), NodeId(0), NodeId(1)));
  InvariantChecker check(fm);
  soda::Network nw(e, 2, fm, soda_ack_costs());

  soda::Pid s = nw.create_process(NodeId(0));
  soda::Pid c = nw.create_process(NodeId(1));
  soda::Name name;
  sim::Gate ready(e);
  std::vector<std::string> log;
  e.spawn("server", so_server(&nw, s, &name, &ready, &log));
  e.spawn("client", so_client(&nw, c, s, &name, &ready, &log));
  e.run();

  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log.back(), "client-crashnote");
  EXPECT_TRUE(check.ok()) << check.violations().front();
}

TEST(Chaos, SodaSurvivesDuplicatingLossyBus) {
  // Heavy background impairment, duplicates included: the per-fragment
  // bitmaps and the done-ring must keep the exchange exactly-once.
  sim::Engine e;
  net::CsmaBus bus(e, sim::Rng(7));
  FaultyMedium fm(e, bus, 33,
                  Plan{}.background({.drop_prob = 0.2,
                                     .duplicate_prob = 0.2,
                                     .max_jitter = sim::usec(400)}));
  InvariantChecker check(fm);
  soda::Network nw(e, 2, fm, soda_ack_costs());

  soda::Pid s = nw.create_process(NodeId(0));
  soda::Pid c = nw.create_process(NodeId(1));
  soda::Name name;
  sim::Gate ready(e);
  std::vector<std::string> log;
  e.spawn("server", so_server(&nw, s, &name, &ready, &log));
  e.spawn("client", so_client(&nw, c, s, &name, &ready, &log));
  e.run();

  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], "server-got:ping");
  EXPECT_EQ(log[1], "client-got:pong");
  EXPECT_TRUE(check.ok()) << check.violations().front();
  EXPECT_TRUE(e.process_failures().empty());
}

// ===================== seed sweep =====================

TEST(Chaos, HundredSeedSweepHoldsInvariants) {
  // 100 different fault universes; every run must hold all medium-level
  // invariants, and the rendezvous must always *resolve* — completion
  // or crash notice, never a hang (the engine drains either way).
  int converged = 0;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    sim::Engine e;
    net::CsmaBus bus(e, sim::Rng(7));
    FaultyMedium fm(e, bus, seed,
                    Plan{}.background({.drop_prob = 0.15,
                                       .duplicate_prob = 0.1,
                                       .corrupt_prob = 0.05,
                                       .max_jitter = sim::usec(300)}));
    InvariantChecker check(fm);
    soda::Network nw(e, 3, fm, soda_ack_costs());

    soda::Pid s = nw.create_process(NodeId(0));
    soda::Pid c = nw.create_process(NodeId(1));
    soda::Name name;
    sim::Gate ready(e);
    std::vector<std::string> log;
    e.spawn("server", so_server(&nw, s, &name, &ready, &log));
    e.spawn("client", so_client(&nw, c, s, &name, &ready, &log));
    e.run();

    ASSERT_TRUE(check.ok())
        << "seed " << seed << ": " << check.violations().front();
    ASSERT_TRUE(e.process_failures().empty()) << "seed " << seed;
    if (log.size() == 2 && log[1] == "client-got:pong") ++converged;
  }
  // Impairment is stiff but survivable; most universes should converge.
  EXPECT_GT(converged, 60);
}

}  // namespace
}  // namespace fault
