// The FaultyMedium contract at the LYNX layer: a server node that
// crashes while a lynx::call() is in flight must surface as an error
// (kLinkDestroyed) at the caller or deliver exactly once — never hang
// — on every substrate.  Each substrate earns it differently:
// Charlotte by the distributed kernel's absolute node-down notice,
// SODA by the crashed node's reboot announcement (nothing is learned
// while it is down — the lazy hint philosophy), Chrysalis by plain
// process termination inside the shared Butterfly.  A second set of
// scenarios checks that connect_any() works against a node that
// crashed and came back with a fresh process.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "charlotte/kernel.hpp"
#include "chrysalis/kernel.hpp"
#include "fault/faulty_medium.hpp"
#include "fault/invariant_checker.hpp"
#include "load/fleet.hpp"
#include "lynx/connect.hpp"
#include "lynx/lynx.hpp"
#include "net/csma_bus.hpp"
#include "net/token_ring.hpp"
#include "sim/engine.hpp"
#include "soda/kernel.hpp"

namespace fault {
namespace {

using net::NodeId;

// A two-node world (server node 0, client node 1) with the same
// crash-semantics wiring as replica::Group: Charlotte crashes fan out
// as node-down notices, SODA runs transport acks (calls into a dead
// node die by exhaustion) and announces reboots (calls parked at the
// dead node die when it returns), Chrysalis has no medium at all.
struct World {
  sim::Engine engine;
  std::unique_ptr<net::TokenRing> ring;
  std::unique_ptr<net::CsmaBus> bus;
  std::unique_ptr<FaultyMedium> medium;
  std::unique_ptr<InvariantChecker> invariants;
  std::unique_ptr<charlotte::Cluster> cluster;
  lynx::SodaDirectory directory;
  std::unique_ptr<soda::Network> network;
  std::unique_ptr<chrysalis::Kernel> kernel;
  load::Substrate substrate;
  // Every incarnation ever started, so teardown outlives the engine.
  std::vector<std::unique_ptr<lynx::Process>> procs;

  explicit World(load::Substrate s) : substrate(s) {
    switch (s) {
      case load::Substrate::kCharlotte: {
        ring = std::make_unique<net::TokenRing>(engine);
        medium = std::make_unique<FaultyMedium>(engine, *ring, 1);
        invariants = std::make_unique<InvariantChecker>(*medium);
        cluster = std::make_unique<charlotte::Cluster>(engine, 2, *medium);
        medium->on_crash(
            [this](NodeId n) { cluster->notify_node_down(n); });
        break;
      }
      case load::Substrate::kSoda: {
        net::CsmaBusParams p;
        p.broadcast_drop_prob = 0.0;
        bus = std::make_unique<net::CsmaBus>(engine, sim::Rng(1), p);
        medium = std::make_unique<FaultyMedium>(engine, *bus, 1);
        invariants = std::make_unique<InvariantChecker>(*medium);
        soda::Costs costs;
        costs.ack_timeout = sim::msec(10);
        network = std::make_unique<soda::Network>(engine, 2, *medium, costs);
        medium->on_restart(
            [this](NodeId n) { network->kernel(n).announce_reboot(); });
        break;
      }
      case load::Substrate::kChrysalis: {
        kernel = std::make_unique<chrysalis::Kernel>(engine,
                                                     net::ButterflyParams{});
        break;
      }
    }
  }

  ~World() { engine.shutdown(); }

  lynx::Process* add_process(std::string name, std::uint32_t node) {
    const NodeId nid(node);
    std::unique_ptr<lynx::Process> p;
    switch (substrate) {
      case load::Substrate::kCharlotte:
        p = std::make_unique<lynx::Process>(
            engine, std::move(name),
            lynx::make_charlotte_backend(*cluster, nid),
            lynx::vax_runtime_costs());
        break;
      case load::Substrate::kSoda:
        p = std::make_unique<lynx::Process>(
            engine, std::move(name),
            lynx::make_soda_backend(*network, directory, nid),
            lynx::pdp11_runtime_costs());
        break;
      case load::Substrate::kChrysalis:
        p = std::make_unique<lynx::Process>(
            engine, std::move(name),
            lynx::make_chrysalis_backend(*kernel, nid),
            lynx::mc68000_runtime_costs());
        break;
    }
    p->start();
    procs.push_back(std::move(p));
    return procs.back().get();
  }

  // Crash semantics borrowed from replica::Group: medium first (a dead
  // node cannot transmit its teardown), then process termination.
  void crash(std::uint32_t node, lynx::Process* victim) {
    if (medium != nullptr) medium->crash(NodeId(node));
    victim->terminate();
  }

  void restart(std::uint32_t node) {
    if (medium != nullptr) medium->restart(NodeId(node));
  }

  [[nodiscard]] bool invariants_ok() const {
    return invariants == nullptr || invariants->ok();
  }
};

struct CallOutcome {
  bool done = false;
  bool ok = false;
  std::optional<lynx::ErrorKind> error;
};

// Coroutine bodies are free functions (CP.51); spawn sites wrap them.
sim::Task<> wire_pair(lynx::Process* server, lynx::Process* client,
                      lynx::LinkHandle* server_end,
                      lynx::LinkHandle* client_end) {
  auto [se, ce] = co_await lynx::connect_any(*server, *client);
  *server_end = se;
  *client_end = ce;
}

// Serves the first request, then has the harness crash this node a
// hair later — while the client's call is parked awaiting the reply —
// and parks on a receive() the crash will kill.
sim::Task<> serve_one_then_crash(lynx::ThreadCtx& ctx, lynx::LinkHandle link,
                                 std::function<void()> crash) {
  ctx.enable_requests(link);
  (void)co_await ctx.receive();
  crash();
  try {
    (void)co_await ctx.receive();
  } catch (const lynx::LynxError&) {
    // Terminated mid-park; nothing to do.
  }
}

sim::Task<> serve_calls(lynx::ThreadCtx& ctx, lynx::LinkHandle link, int n) {
  ctx.enable_requests(link);
  for (int i = 0; i < n; ++i) {
    lynx::Incoming in = co_await ctx.receive();
    lynx::Message rep;
    rep.args = in.msg.args;
    co_await ctx.reply(in, std::move(rep));
  }
}

sim::Task<> call_once(lynx::ThreadCtx& ctx, lynx::LinkHandle link,
                      CallOutcome* out) {
  try {
    lynx::Message req;
    req.op = "ping";
    req.args.push_back(std::int64_t{7});
    (void)co_await ctx.call(link, std::move(req));
    out->ok = true;
  } catch (const lynx::LynxError& e) {
    out->error = e.kind();
  }
  out->done = true;
}

TEST(CrashCall, CrashDuringInFlightCallSurfacesOrDeliversNeverHangs) {
  for (load::Substrate s : load::all_substrates()) {
    World w(s);
    lynx::Process* server = w.add_process("server", 0);
    lynx::Process* client = w.add_process("client", 1);
    lynx::LinkHandle server_end;
    lynx::LinkHandle client_end;
    w.engine.spawn("wire",
                   wire_pair(server, client, &server_end, &client_end));
    w.engine.run();
    ASSERT_TRUE(server_end.valid()) << load::to_string(s);

    CallOutcome out;
    World* wp = &w;
    server->spawn_thread("srv", [wp, server, server_end](lynx::ThreadCtx& c) {
      return serve_one_then_crash(c, server_end, [wp, server] {
        wp->engine.schedule(sim::usec(1), [wp, server] {
          wp->crash(0, server);
          // The node returns (empty — no new process) a while later:
          // on SODA this is the reboot announcement that fails the
          // parked call; on Charlotte the earlier node-down notice
          // already did.
          wp->engine.schedule(sim::msec(100), [wp] { wp->restart(0); });
        });
      });
    });
    client->spawn_thread("cli", [client_end, &out](lynx::ThreadCtx& c) {
      return call_once(c, client_end, &out);
    });

    const bool finished = w.engine.run_until(sim::sec(30));
    EXPECT_TRUE(finished) << load::to_string(s) << ": engine wedged";
    ASSERT_TRUE(out.done) << load::to_string(s) << ": call hung forever";
    // The request was consumed and the server died before replying, so
    // the only conforming outcome is the absolute error; a completed
    // call would have meant exactly-once delivery, also acceptable in
    // general, but impossible in this construction.
    EXPECT_FALSE(out.ok) << load::to_string(s);
    ASSERT_TRUE(out.error.has_value()) << load::to_string(s);
    EXPECT_EQ(*out.error, lynx::ErrorKind::kLinkDestroyed)
        << load::to_string(s) << ": " << lynx::to_string(*out.error);
    EXPECT_TRUE(w.invariants_ok()) << load::to_string(s);
    EXPECT_TRUE(client->thread_failures().empty()) << load::to_string(s);
  }
}

TEST(CrashCall, ConnectAnyReachesRestartedServerNode) {
  for (load::Substrate s : load::all_substrates()) {
    World w(s);
    lynx::Process* old_server = w.add_process("server", 0);
    lynx::Process* client = w.add_process("client", 1);
    lynx::LinkHandle server_end;
    lynx::LinkHandle client_end;
    w.engine.spawn("wire",
                   wire_pair(old_server, client, &server_end, &client_end));
    w.engine.run();
    ASSERT_TRUE(server_end.valid()) << load::to_string(s);

    // Crash the server node outright, then bring the node back.
    w.crash(0, old_server);
    w.engine.schedule(sim::msec(50), [&w] { w.restart(0); });
    w.engine.run();

    // A fresh process on the restarted node must be reachable by
    // connect_any, and a call over the new link must complete.
    lynx::Process* new_server = w.add_process("server2", 0);
    lynx::LinkHandle new_server_end;
    lynx::LinkHandle new_client_end;
    w.engine.spawn("rewire", wire_pair(new_server, client, &new_server_end,
                                       &new_client_end));
    const bool wired = w.engine.run_until(sim::sec(30));
    ASSERT_TRUE(wired) << load::to_string(s) << ": rewire wedged";
    ASSERT_TRUE(new_server_end.valid())
        << load::to_string(s) << ": connect_any never completed";

    CallOutcome out;
    new_server->spawn_thread("srv", [new_server_end](lynx::ThreadCtx& c) {
      return serve_calls(c, new_server_end, 1);
    });
    client->spawn_thread("cli", [new_client_end, &out](lynx::ThreadCtx& c) {
      return call_once(c, new_client_end, &out);
    });
    const bool finished = w.engine.run_until(sim::sec(30));
    EXPECT_TRUE(finished) << load::to_string(s) << ": engine wedged";
    ASSERT_TRUE(out.done) << load::to_string(s) << ": call hung";
    EXPECT_TRUE(out.ok) << load::to_string(s) << ": call failed"
                        << (out.error ? lynx::to_string(*out.error) : "");
    EXPECT_TRUE(w.invariants_ok()) << load::to_string(s);
  }
}

}  // namespace
}  // namespace fault
